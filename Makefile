# VYRD reproduction — common workflows.

GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-snapshot fuzz serve-smoke explore-smoke soak-smoke linearize-smoke shard-smoke fleet-smoke ltl-smoke dpor-smoke tables examples check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The injected Table 1 bugs are intentional data races; tests exercising
# them skip themselves under the detector (see internal/racecheck), so this
# gates the correct implementations and the checker itself.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: proves the bench harness still runs without
# measuring anything. CI runs this.
bench-smoke:
	$(GO) test -run=NONE -bench=Table3 -benchtime=1x .

# Regenerate the checked-in benchmark snapshot (environment + table rows,
# including exploration throughput, shrink results and the sink-codec
# durability A/B).
bench-snapshot:
	$(GO) run ./cmd/vyrdbench -table all -json BENCH_PR10.json
	$(GO) test -run=NONE -bench 'AppendParallel|OnlinePipeline' -cpu 1,4,8 ./internal/wal/

# Short fuzz smoke over the log codecs: a few seconds per target keeps the
# corpus seeds honest without turning CI into a fuzzing farm. Each -fuzz
# regex must match exactly one target, hence the anchors.
fuzz:
	$(GO) test -run=NONE -fuzz='^FuzzEntryRoundTrip$$' -fuzztime=10s ./internal/event/
	$(GO) test -run=NONE -fuzz='^FuzzEntryRoundTripGob$$' -fuzztime=5s ./internal/event/
	$(GO) test -run=NONE -fuzz='^FuzzTornFrames$$' -fuzztime=5s ./internal/event/
	$(GO) test -run=NONE -fuzz='^FuzzRecoverArbitraryBytes$$' -fuzztime=10s ./internal/event/
	$(GO) test -run=NONE -fuzz='^FuzzReproRoundTrip$$' -fuzztime=5s ./internal/sched/
	$(GO) test -run=NONE -fuzz='^FuzzLinearizeArbitraryHistory$$' -fuzztime=10s ./internal/linearize/
	$(GO) test -run=NONE -fuzz='^FuzzShardMerge$$' -fuzztime=10s ./internal/wal/
	$(GO) test -run=NONE -fuzz='^FuzzParseProp$$' -fuzztime=10s ./internal/ltl/

# Race-enabled loopback round trip through the remote verification service:
# a concurrent harness run of the composed subject shipped over TCP to a
# vyrdd-shaped server running the production registry, checked modularly,
# verdict compared against in-process checking. CI runs this.
serve-smoke:
	$(GO) test -race -count=1 -run '^TestServeSmokeComposed$$' ./internal/remote/

# Fixed-seed schedule exploration finds every planted bug within the
# budget, violating seeds replay byte-identically, and the shrinker
# halves schedule length on the exemplars. Runs without -race: the
# planted bugs are intentional data races. CI runs this.
explore-smoke:
	$(GO) test -count=1 -run '^TestExploreSmoke$$|^TestShrinkHalvesScheduleLength$$' ./internal/explore/

# Crash/recover/replay chaos soak: 200 seeded byte-level crash points in
# fault mode plus a handful of SIGKILLed child processes in proc mode,
# every recovered prefix re-checked against its uninterrupted reference.
# Race-enabled; any failure prints a vyrdsoak/1 repro string. CI runs this.
soak-smoke:
	$(GO) run -race ./cmd/vyrdsoak -mode fault -seed 1 -iters 200 -ops 12 -sync 8
	$(GO) run -race ./cmd/vyrdsoak -mode proc -seed 1 -iters 6 -ops 60 -sync 4 -k 3000 -kill 60ms

# Race-enabled differential verdict suite: refinement vs the
# linearizability engine over every registry subject, offline, online
# (wal + Multi fan-out) and through a vyrdd loopback session. Under -race
# the planted-race legs self-skip (intentional data races); `make test`
# runs them detector-free. CI runs this.
linearize-smoke:
	$(GO) test -race -count=1 -run '^TestLinearizeMatchesRefinement$$|^TestDifferentialSoundnessDirection$$' ./internal/bench/
	$(GO) test -count=1 -run '^TestLinearizeMatchesRefinement$$|^TestDifferentialSoundnessDirection$$' ./internal/bench/

# Race-enabled sharded-capture smoke: the k-way merge property tests and
# the window/wake stress under the detector, plus the sharded-vs-global
# verdict parity suite (clean legs; the planted-race legs self-skip under
# -race and run detector-free in `make test`). CI runs this.
shard-smoke:
	$(GO) test -race -count=1 -run '^TestSharded|^TestOpenSelectsBackend$$' ./internal/wal/
	$(GO) test -race -count=1 -run '^TestShardedVerdictParity$$' ./internal/bench/
	$(GO) test -count=1 -run '^TestShardedVerdictParity$$' ./internal/bench/
	$(GO) test -race -count=1 -run '^TestParallel' ./internal/linearize/

# Race-enabled fleet-tier smoke: scheduler-vs-goroutine verdict parity
# over every registry subject (the planted-race leg self-skips under the
# detector and runs in the plain pass), the scheduler/ring/tenant unit
# suites, tenant quotas enforced as pure backpressure, consistent-hash
# redirect, kill-one-node failover replaying the journal, and the
# session-supersede attach race. CI runs this.
fleet-smoke:
	$(GO) test -race -count=1 ./internal/fleet/...
	$(GO) test -race -count=1 -run '^TestFleetVerdictParity$$' ./internal/bench/
	$(GO) test -count=1 -run '^TestFleetVerdictParity$$' ./internal/bench/
	$(GO) test -race -count=1 -run '^TestTenant|^TestCluster|^TestSessionSupersedeRace$$|^TestOpsPrometheusText$$' ./internal/remote/
	$(GO) test -race -count=1 -run '^TestSegment' ./internal/linearize/

# Race-enabled temporal-engine smoke: the property parser/evaluator
# suites and the ledger subject under the detector (the planted lock
# inversion is hint-gated and race-clean by design), the built-in
# property library clean across offline/online/vyrdd legs for every
# registry subject, and the schedule search finding + shrinking +
# replaying the planted lock-order inversion (vyrdx exits 2 on a found
# violation, hence the inverted exit check). CI runs this.
ltl-smoke:
	$(GO) test -race -count=1 ./internal/ltl/ ./internal/ledger/
	$(GO) test -race -count=1 -run '^TestTemporalCleanSubjects$$|^TestTemporalPropsOverride$$' ./internal/bench/
	$(GO) test -count=1 -run '^TestExploreTemporalFindsLockReversal$$' ./internal/explore/
	$(GO) build -o vyrdx.smoke ./cmd/vyrdx
	./vyrdx.smoke -mode ltl -seeds 300 -stress 100 > /dev/null; st=$$?; rm -f vyrdx.smoke; test $$st -eq 2

# Race-enabled DPOR smoke: the exhaustive-enumeration coverage gate (every
# Mazurkiewicz class of two tiny configurations visited, verdicts agree),
# the fingerprint dedup-counter suite, the weak-memory atomics subjects
# (clean variants silent, planted one-step races found — all accesses
# atomic, so the detector stays quiet by design), and the vyrdx exit-code
# contract under -strategy dpor. The PCT-vs-DPOR differential additionally
# runs detector-free so the lock-based planted-race subjects join the A/B.
# CI runs this.
dpor-smoke:
	$(GO) test -race -count=1 -run '^TestDPORCoversAllEquivalenceClasses$$' ./internal/explore/
	$(GO) test -race -count=1 -run '^TestFingerprintDedup$$' ./internal/sched/
	$(GO) test -race -count=1 -run '^TestStrategyDifferential$$|^TestWeakMemoryCleanVariants$$' ./internal/bench/
	$(GO) test -count=1 -run '^TestStrategyDifferential$$' ./internal/bench/
	$(GO) test -race -count=1 ./cmd/vyrdx/ ./internal/tstack/ ./internal/seqlock/

# Regenerate the paper's evaluation tables (Section 7).
tables:
	$(GO) run ./cmd/vyrdbench -table all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/boxwood
	$(GO) run ./examples/javalib
	$(GO) run ./examples/atomized
	$(GO) run ./examples/scanfs

check: build vet test race fuzz serve-smoke explore-smoke soak-smoke linearize-smoke shard-smoke fleet-smoke ltl-smoke dpor-smoke

# Remove test binaries, profiles and fuzzing leftovers.
clean:
	rm -f *.test */*.test */*/*.test *.out *.prof
	$(GO) clean -testcache
