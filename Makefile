# VYRD reproduction — common workflows.

GO ?= go

.PHONY: all build vet test race bench fuzz tables examples check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The injected Table 1 bugs are intentional data races; tests exercising
# them skip themselves under the detector (see internal/racecheck), so this
# gates the correct implementations and the checker itself.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz smoke over the log codec: a few seconds per target keeps the
# corpus seeds honest without turning CI into a fuzzing farm.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzEntryRoundTrip -fuzztime=10s ./internal/event/

# Regenerate the paper's evaluation tables (Section 7).
tables:
	$(GO) run ./cmd/vyrdbench -table all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/boxwood
	$(GO) run ./examples/javalib
	$(GO) run ./examples/atomized
	$(GO) run ./examples/scanfs

check: build vet test race fuzz
