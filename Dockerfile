# Build stage: static binaries for the fleet tier. The module is
# dependency-free, so no module download step is needed.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -o /out/vyrdd ./cmd/vyrdd \
 && CGO_ENABLED=0 go build -o /out/vyrdload ./cmd/vyrdload

# Runtime stage: one image serves both roles; compose picks the
# entrypoint. scratch would do, but alpine keeps a shell for debugging
# inside the cluster.
FROM alpine:3.19
COPY --from=build /out/vyrdd /usr/local/bin/vyrdd
COPY --from=build /out/vyrdload /usr/local/bin/vyrdload
EXPOSE 7669 7670
ENTRYPOINT ["vyrdd"]
