// Package repro's root benchmarks regenerate the paper's evaluation as
// testing.B benchmarks: one family per table (Tables 1-3 of Section 7),
// plus ablation benchmarks for the design choices DESIGN.md calls out
// (incremental view fingerprints, logging levels, checker throughput).
//
// cmd/vyrdbench produces the paper-shaped table renderings; these
// benchmarks expose the same measurements through `go test -bench`.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/linearize"
	"repro/internal/spec"
	"repro/vyrd"
)

func benchConfig(threads, ops int, seed int64, level vyrd.Level) harness.Config {
	return harness.Config{
		Threads:      threads,
		OpsPerThread: ops,
		KeyPool:      16,
		Shrink:       true,
		Seed:         seed,
		Level:        level,
	}
}

// BenchmarkTable1TimeToDetection measures, per subject, a full
// run-and-detect cycle on the buggy implementation with fail-fast view
// refinement, reporting the average number of methods executed before the
// first violation (the Table 1 metric) alongside ns/op.
func BenchmarkTable1TimeToDetection(b *testing.B) {
	for _, s := range bench.Subjects() {
		s := s
		for _, mode := range []core.Mode{core.ModeIO, core.ModeView} {
			mode := mode
			b.Run(s.Name+"/"+mode.String(), func(b *testing.B) {
				b.ReportAllocs()
				var methods, detected int64
				for i := 0; i < b.N; i++ {
					res := harness.Run(s.Buggy, benchConfig(8, 400, int64(i)+1, vyrd.LevelView))
					opts := []core.Option{core.WithMode(mode), core.WithFailFast(true)}
					if mode == core.ModeView {
						opts = append(opts, core.WithReplayer(s.Buggy.NewReplayer()))
					}
					rep, err := core.CheckEntries(res.Log.Snapshot(), s.Buggy.NewSpec(), opts...)
					if err != nil {
						b.Fatal(err)
					}
					if v := rep.First(); v != nil {
						methods += v.MethodsCompleted
						detected++
					}
				}
				if detected > 0 {
					b.ReportMetric(float64(methods)/float64(detected), "methods-to-detection")
				}
				b.ReportMetric(float64(detected)/float64(b.N), "detection-rate")
			})
		}
	}
}

// BenchmarkTable2LoggingOverhead measures the workload cost per logging
// level for each Table 2 subject; comparing the off/io/view variants gives
// the logging overheads the paper reports.
func BenchmarkTable2LoggingOverhead(b *testing.B) {
	subjects := []string{"Multiset-Vector", "java.util.Vector", "java.util.StringBuffer", "BLinkTree", "Cache"}
	levels := []vyrd.Level{vyrd.LevelOff, vyrd.LevelIO, vyrd.LevelView}
	for _, name := range subjects {
		s, ok := bench.SubjectByName(name)
		if !ok {
			b.Fatalf("unknown subject %s", name)
		}
		for _, level := range levels {
			level := level
			s := s
			b.Run(s.Name+"/"+level.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					harness.Run(s.Correct, benchConfig(8, 500, int64(i)+1, level))
				}
			})
		}
	}
}

// BenchmarkTable3Breakdown measures the four stages of Table 3 — program
// alone, program+logging, program+logging+online VYRD, and offline VYRD —
// for the paper's configurations.
func BenchmarkTable3Breakdown(b *testing.B) {
	cells := []struct {
		name    string
		threads int
		ops     int
	}{
		{"java.util.Vector", 20, 200},
		{"java.util.StringBuffer", 10, 30},
		{"BLinkTree", 10, 600},
		{"Cache", 10, 500},
	}
	for _, cell := range cells {
		s, ok := bench.SubjectByName(cell.name)
		if !ok {
			b.Fatalf("unknown subject %s", cell.name)
		}
		cfgOff := benchConfig(cell.threads, cell.ops, 1, vyrd.LevelOff)
		cfgView := benchConfig(cell.threads, cell.ops, 1, vyrd.LevelView)

		b.Run(s.Name+"/prog-alone", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				harness.Run(s.Correct, cfgOff)
			}
		})
		b.Run(s.Name+"/prog+logging", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				harness.Run(s.Correct, cfgView)
			}
		})
		b.Run(s.Name+"/prog+logging+vyrd-online", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				log := vyrd.NewLog(vyrd.LevelView)
				wait, err := log.StartChecker(s.Correct.NewSpec(),
					vyrd.WithMode(core.ModeView), vyrd.WithReplayer(s.Correct.NewReplayer()))
				if err != nil {
					b.Fatal(err)
				}
				harness.RunOnLog(s.Correct, cfgView, log)
				if rep := wait(); !rep.Ok() {
					b.Fatalf("unexpected violations:\n%s", rep)
				}
			}
		})
		b.Run(s.Name+"/vyrd-offline", func(b *testing.B) {
			b.ReportAllocs()
			res := harness.Run(s.Correct, cfgView)
			entries := res.Log.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.CheckEntries(entries, s.Correct.NewSpec(),
					core.WithMode(core.ModeView), core.WithReplayer(s.Correct.NewReplayer()))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Ok() {
					b.Fatalf("unexpected violations:\n%s", rep)
				}
			}
		})
	}
}

// BenchmarkAblationCheckerModes compares the checker's offline throughput
// in I/O vs view mode over the same recorded trace — the cost of the extra
// visibility view refinement buys (the Table 1 CPU-ratio column).
func BenchmarkAblationCheckerModes(b *testing.B) {
	s, _ := bench.SubjectByName("BLinkTree")
	res := harness.Run(s.Correct, benchConfig(8, 1000, 1, vyrd.LevelView))
	entries := res.Log.Snapshot()
	b.Run("io", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckEntries(entries, s.Correct.NewSpec(), core.WithMode(core.ModeIO))
			if err != nil || !rep.Ok() {
				b.Fatalf("%v %v", err, rep)
			}
		}
	})
	b.Run("view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckEntries(entries, s.Correct.NewSpec(),
				core.WithMode(core.ModeView), core.WithReplayer(s.Correct.NewReplayer()))
			if err != nil || !rep.Ok() {
				b.Fatalf("%v %v", err, rep)
			}
		}
	})
}

// BenchmarkAblationQuiescentOnly contrasts per-commit view checking with
// the commit-atomicity-style quiescent-only granularity (Section 8) on
// buggy Cache traces: the metric of interest is the detection rate — under
// continuous load quiescent points are rare (Section 5.2), so the coarser
// granularity misses transient corruption.
func BenchmarkAblationQuiescentOnly(b *testing.B) {
	s, _ := bench.SubjectByName("Cache")
	variants := []struct {
		name string
		opt  []core.Option
	}{
		{"per-commit", nil},
		{"quiescent-only", []core.Option{core.WithQuiescentViewOnly(true)}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var detected, methods int64
			for i := 0; i < b.N; i++ {
				res := harness.Run(s.Buggy, benchConfig(8, 400, int64(i)+1, vyrd.LevelView))
				opts := append([]core.Option{
					core.WithMode(core.ModeView),
					core.WithReplayer(s.Buggy.NewReplayer()),
					core.WithFailFast(true),
				}, v.opt...)
				rep, err := core.CheckEntries(res.Log.Snapshot(), s.Buggy.NewSpec(), opts...)
				if err != nil {
					b.Fatal(err)
				}
				if f := rep.First(); f != nil {
					detected++
					methods += f.MethodsCompleted
				}
			}
			b.ReportMetric(float64(detected)/float64(b.N), "detection-rate")
			if detected > 0 {
				b.ReportMetric(float64(methods)/float64(detected), "methods-to-detection")
			}
		})
	}
}

// BenchmarkBaselineEnumerationVsVyrd pits the Section 2 strawman — naive
// linearizability enumeration over call/return-only traces — against the
// commit-driven VYRD check, on synthetic traces whose overlap width is
// controlled: batches of `width` fully-overlapped inserts of distinct
// elements, each batch separated by a quiescent observer. VYRD is linear in
// the trace regardless of width (the commit order pins the witness);
// the baseline's explored state set grows exponentially with the width.
func BenchmarkBaselineEnumerationVsVyrd(b *testing.B) {
	for _, width := range []int{2, 6, 10} {
		entries := overlappedTrace(20, width)
		b.Run(fmt.Sprintf("width-%d/vyrd-commit-driven", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := core.CheckEntries(entries, spec.NewMultiset(), core.WithMode(core.ModeIO))
				if err != nil || !rep.Ok() {
					b.Fatalf("%v %v", err, rep)
				}
			}
		})
		b.Run(fmt.Sprintf("width-%d/naive-enumeration", width), func(b *testing.B) {
			var states int64
			for i := 0; i < b.N; i++ {
				lin := linearize.CheckBruteTrace(entries, spec.NewMultiset(), linearize.NewMultisetModel(), 0)
				if !lin.Linearizable {
					b.Fatalf("baseline rejected a correct trace: %s", lin)
				}
				states += lin.StatesExplored
			}
			b.ReportMetric(float64(states)/float64(b.N), "states-explored")
		})
	}
}

// overlappedTrace builds `batches` batches of `width` fully-overlapped
// inserts (distinct elements, committed in call order) separated by
// quiescent lookups — correct by construction.
func overlappedTrace(batches, width int) []vyrd.Entry {
	log := vyrd.NewLog(vyrd.LevelIO)
	probes := make([]*vyrd.Probe, width)
	for i := range probes {
		probes[i] = log.NewProbe()
	}
	extra := log.NewProbe()
	elt := 0
	for bt := 0; bt < batches; bt++ {
		invs := make([]*vyrd.Invocation, width)
		for i := 0; i < width; i++ {
			invs[i] = probes[i].Call("Insert", elt+i)
		}
		for i := 0; i < width; i++ {
			invs[i].Commit("x")
		}
		for i := 0; i < width; i++ {
			invs[i].Return(true)
		}
		elt += width
		inv := extra.Call("LookUp", 1_000_000)
		inv.Return(false)
	}
	log.Close()
	return log.Snapshot()
}

// BenchmarkOnlinePipeline measures the full online checking pipeline over
// the bounded-memory log: harness threads appending through the lock-free
// segmented log with a truncation window while the verification thread
// replays view refinement concurrently. Reported metrics are the log
// entries checked per second and the peak entries retained (which stays
// O(window) no matter how long the run is).
// The sink=v2 / sink=v3 variants additionally attach a persisting encoder
// sink, A/B-ing the pre-checksum and CRC-checksummed framings on the same
// workload: the v3 append throughput must stay within 10% of v2, and
// bytes/entry makes the 4-bytes-per-frame checksum cost visible.
func BenchmarkOnlinePipeline(b *testing.B) {
	s, _ := bench.SubjectByName("Multiset-Vector")
	run := func(b *testing.B, codec vyrd.Codec, attach bool) {
		cfg := benchConfig(4, 2000, 1, vyrd.LevelView)
		cfg.LogOptions = vyrd.LogOptions{SegmentSize: 256, Window: 1 << 12, SinkCodec: codec}
		b.ReportAllocs()
		var entries, peak, lag, sunk int64
		for i := 0; i < b.N; i++ {
			log := vyrd.NewLogWith(cfg.Level, cfg.LogOptions)
			var cw countingWriter
			if attach {
				if err := log.AttachSink(&cw); err != nil {
					b.Fatal(err)
				}
			}
			wait, err := log.StartChecker(s.Correct.NewSpec(),
				vyrd.WithMode(core.ModeView), vyrd.WithReplayer(s.Correct.NewReplayer()))
			if err != nil {
				b.Fatal(err)
			}
			harness.RunOnLog(s.Correct, cfg, log)
			if rep := wait(); !rep.Ok() {
				b.Fatalf("unexpected violations:\n%s", rep)
			}
			if attach {
				if err := log.SinkErr(); err != nil {
					b.Fatal(err)
				}
				sunk += cw.n
			}
			st := log.Stats()
			entries += st.Appends
			if st.PeakRetainedEntries > peak {
				peak = st.PeakRetainedEntries
			}
			if st.MaxVerifierLag > lag {
				lag = st.MaxVerifierLag
			}
		}
		b.ReportMetric(float64(entries)/b.Elapsed().Seconds(), "entries/sec")
		b.ReportMetric(float64(peak), "peak-retained-entries")
		b.ReportMetric(float64(lag), "max-verifier-lag")
		if attach && entries > 0 {
			b.ReportMetric(float64(sunk)/float64(entries), "bytes/entry")
		}
	}
	b.Run("nosink", func(b *testing.B) { run(b, vyrd.CodecBinary, false) })
	b.Run("sink=v2", func(b *testing.B) { run(b, vyrd.CodecBinaryV2, true) })
	b.Run("sink=v3", func(b *testing.B) { run(b, vyrd.CodecBinary, true) })
}

// countingWriter discards its input, keeping only the byte count — the
// sink target for throughput benchmarks that must not measure disk.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// codecTrace records one BLinkTree workload and returns the entries plus
// both persisted encodings of them — the shared fixture for the codec and
// offline-replay A/B benchmarks.
func codecTrace(b *testing.B) (entries []vyrd.Entry, binBytes, gobBytes []byte) {
	b.Helper()
	s, _ := bench.SubjectByName("BLinkTree")
	res := harness.Run(s.Correct, benchConfig(8, 500, 1, vyrd.LevelView))
	entries = res.Log.Snapshot()
	for _, c := range []vyrd.Codec{vyrd.CodecBinary, vyrd.CodecGob} {
		var buf bytes.Buffer
		enc := event.NewEncoderCodec(&buf, c)
		for _, e := range entries {
			if err := enc.Encode(e); err != nil {
				b.Fatal(err)
			}
		}
		if c == vyrd.CodecBinary {
			binBytes = buf.Bytes()
		} else {
			gobBytes = buf.Bytes()
		}
	}
	return entries, binBytes, gobBytes
}

// BenchmarkCodecGobVsBinary is the pure serialization A/B behind the
// FormatVersion 2 switch: encode and decode the same recorded trace with
// the legacy gob codec and the framed binary codec. bytes/entry makes the
// size cost visible alongside the speed and allocation differences.
func BenchmarkCodecGobVsBinary(b *testing.B) {
	entries, binBytes, gobBytes := codecTrace(b)
	streams := map[string][]byte{"binary": binBytes, "gob": gobBytes}
	for _, c := range []vyrd.Codec{vyrd.CodecBinary, vyrd.CodecGob} {
		c := c
		b.Run("encode/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := event.NewEncoderCodec(io.Discard, c)
				for _, e := range entries {
					if err := enc.Encode(e); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(streams[c.String()]))/float64(len(entries)), "bytes/entry")
		})
		b.Run("decode/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			data := streams[c.String()]
			for i := 0; i < b.N; i++ {
				dec := event.NewDecoderCodec(bytes.NewReader(data), c)
				n := 0
				for {
					if _, err := dec.Decode(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != len(entries) {
					b.Fatalf("decoded %d of %d entries", n, len(entries))
				}
			}
		})
	}
}

// BenchmarkOfflineReplay measures end-to-end offline verification from a
// persisted stream — decode plus view-mode check — across the three replay
// paths: the legacy gob stream decoded sequentially, the binary stream
// decoded sequentially, and the binary stream decoded on the parallel
// worker pool feeding the sequential checker (CheckStream). The headline
// metric is entries/sec of persisted log replayed.
func BenchmarkOfflineReplay(b *testing.B) {
	entries, binBytes, gobBytes := codecTrace(b)
	s, _ := bench.SubjectByName("BLinkTree")
	check := func(b *testing.B, rep *vyrd.Report, err error) {
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Ok() {
			b.Fatalf("unexpected violations:\n%s", rep)
		}
	}
	opts := func() []vyrd.Option {
		return []vyrd.Option{vyrd.WithMode(vyrd.ModeView), vyrd.WithReplayer(s.Correct.NewReplayer())}
	}
	b.Run("gob-sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			decoded, err := vyrd.ReadLogCodec(bytes.NewReader(gobBytes), vyrd.CodecGob)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := vyrd.CheckEntries(decoded, s.Correct.NewSpec(), opts()...)
			check(b, rep, err)
		}
		b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "entries/sec")
	})
	b.Run("binary-sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := vyrd.CheckStream(bytes.NewReader(binBytes), 1, s.Correct.NewSpec(), opts()...)
			check(b, rep, err)
		}
		b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "entries/sec")
	})
	b.Run("binary-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := vyrd.CheckStream(bytes.NewReader(binBytes), 0, s.Correct.NewSpec(), opts()...)
			check(b, rep, err)
		}
		b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "entries/sec")
	})
}

// BenchmarkAblationDiagnostics measures the cost of keeping viewS clones
// for exact diffs (WithDiagnostics) versus fingerprint-only comparison —
// the incremental-computation design choice of Section 6.4.
func BenchmarkAblationDiagnostics(b *testing.B) {
	s, _ := bench.SubjectByName("Cache")
	res := harness.Run(s.Correct, benchConfig(8, 500, 1, vyrd.LevelView))
	entries := res.Log.Snapshot()
	b.Run("fingerprint-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckEntries(entries, s.Correct.NewSpec(),
				core.WithMode(core.ModeView), core.WithReplayer(s.Correct.NewReplayer()))
			if err != nil || !rep.Ok() {
				b.Fatalf("%v %v", err, rep)
			}
		}
	})
	b.Run("with-diagnostic-clones", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckEntries(entries, s.Correct.NewSpec(),
				core.WithMode(core.ModeView), core.WithReplayer(s.Correct.NewReplayer()),
				core.WithDiagnostics(true))
			if err != nil || !rep.Ok() {
				b.Fatalf("%v %v", err, rep)
			}
		}
	})
}
