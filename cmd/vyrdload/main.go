// Command vyrdload is the fleet load generator: it simulates N
// instrumented clients by streaming a recorded registry-subject log
// into a vyrdd server (or a routed cluster) over N concurrent sessions,
// holds every session open at a barrier to establish the concurrent-
// session count the box actually carries, then races the streams to a
// verdict and reports aggregate entries/sec.
//
// Usage:
//
//	vyrdload -addr 127.0.0.1:7669 -n 1000
//	vyrdload -nodes 10.0.0.1:7669,10.0.0.2:7669 -n 2000 -subject BLinkTree
//
// With -ops the generator scrapes the server's /metrics at peak and
// reports the server-observed sessions_active next to its own count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/fleet/load"
	"repro/internal/remote"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vyrdload", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7669", "vyrdd address (single node)")
		nodesCSV = fs.String("nodes", "", "comma-separated cluster membership; overrides -addr and routes sessions by key")
		n        = fs.Int("n", 1000, "concurrent sessions to open")
		subject  = fs.String("subject", "Multiset-Array", "registry subject whose recorded log each session streams")
		mode     = fs.String("mode", "", "verdict mode per session (io, view, linearize, ltl; empty = server default)")
		tenant   = fs.String("tenant", "load", "tenant token the sessions are accounted under")
		seed     = fs.Int64("seed", 1, "harness seed for the recorded log")
		window   = fs.Int("window", 1<<10, "per-session client resend window")
		batch    = fs.Int("batch", 64, "entries per shipped frame")
		opsURL   = fs.String("ops", "", "server ops base URL (http://host:port); scraped for sessions_active at peak")
		jsonOut  = fs.Bool("json", false, "emit the run stats as JSON on stdout")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
	)
	fs.Parse(args)

	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	s, ok := bench.SubjectByName(*subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "vyrdload: unknown subject %q\n", *subject)
		return 2
	}
	entries := bench.CleanRun(s, *seed)
	logf("vyrdload: subject %s: %d entries per session", s.Name, len(entries))

	var nodes []string
	if *nodesCSV != "" {
		for _, nd := range strings.Split(*nodesCSV, ",") {
			if nd = strings.TrimSpace(nd); nd != "" {
				nodes = append(nodes, nd)
			}
		}
	}

	serverActive := -1
	cfg := load.Config{
		Addr:     *addr,
		Nodes:    nodes,
		Sessions: *n,
		Spec:     s.Name,
		Mode:     *mode,
		Tenant:   *tenant,
		Entries:  entries,
		Window:   *window,
		Batch:    *batch,
		Logf:     logf,
	}
	if *opsURL != "" {
		cfg.AtPeak = func() {
			if a, err := scrapeActive(*opsURL); err == nil {
				serverActive = a
			} else {
				logf("vyrdload: ops scrape: %v", err)
			}
		}
	}

	st, err := load.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdload: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := struct {
			load.Stats
			Subject       string `json:"subject"`
			ServerActive  int    `json:"server_sessions_active,omitempty"`
			EntriesPerRun int    `json:"entries_per_session"`
		}{st, s.Name, serverActive, len(entries)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		fmt.Printf("sessions=%d open-at-peak=%d failed=%d verdicts-ok=%d entries=%d elapsed=%.2fs entries/sec=%.0f\n",
			st.Sessions, st.Opened, st.Failed, st.VerdictsOk, st.Entries,
			float64(st.ElapsedNS)/1e9, st.EntriesPerSec)
		if serverActive >= 0 {
			fmt.Printf("server sessions_active at peak: %d\n", serverActive)
		}
	}
	if st.Failed > 0 {
		return 1
	}
	return 0
}

// scrapeActive pulls sessions_active out of the server's JSON /metrics.
func scrapeActive(base string) (int, error) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics?format=json")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m remote.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	return m.SessionsActive, nil
}
