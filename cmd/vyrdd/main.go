// Command vyrdd is the VYRD verification server: it accepts remote
// log-shipping connections (see vyrd.AttachRemote and internal/remote) and
// runs one refinement-checker pipeline per session, taking the paper's
// "verification on spare cores" deployment (Section 6) off-box entirely.
//
// Usage:
//
//	vyrdd -listen :7669 -ops :7670
//	vyrdd -list
//
// Every evaluation subject's specification is served by name, plus the
// composed "BLinkTree+Store" modular stack. The ops listener serves
// GET /healthz and GET /metrics (JSON, or Prometheus text with
// ?format=prom). On SIGINT/SIGTERM the server drains: listeners close,
// in-flight sessions get -drain to finish and receive normal verdicts,
// and whatever remains is force-finished with a verdict over the prefix
// received so far.
//
// The fleet tier:
//
//	-workers N       multiplex all sessions over an N-worker checker
//	                 pool (0 = one goroutine pipeline per session)
//	-slice N         scheduler time-slice budget, entries per turn
//	-max-sessions/-max-eps/-max-window-bytes
//	                 per-tenant quotas (admission, ingest rate, window
//	                 memory); overruns throttle via delayed acks
//	-cluster A,B,C   static membership list for consistent-hash routing
//	-self A          this node's own address in -cluster
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/remote"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vyrdd", flag.ExitOnError)
	var (
		listen   = fs.String("listen", ":7669", "verification protocol listen address")
		opsAddr  = fs.String("ops", "", "HTTP ops listen address (/healthz, /metrics); empty disables")
		window   = fs.Int("window", remote.DefaultWindow, "per-session log window (entries retained ahead of the checker)")
		ackEvery = fs.Int("ackevery", remote.DefaultAckEvery, "ack cadence in entries")
		drain    = fs.Duration("drain", remote.DefaultDrainTimeout, "shutdown drain deadline for in-flight sessions")
		quiet    = fs.Bool("quiet", false, "suppress per-connection logging")
		list     = fs.Bool("list", false, "list served specs and exit")

		workers     = fs.Int("workers", 0, "checker pool size: sessions time-slice over this many workers (0 = goroutine per session)")
		slice       = fs.Int("slice", 0, "scheduler slice budget in entries (0 = default)")
		maxSessions = fs.Int("max-sessions", 0, "per-tenant concurrent session quota (0 = unlimited)")
		maxEPS      = fs.Int("max-eps", 0, "per-tenant ingest rate quota, entries/sec (0 = unlimited)")
		maxWindowB  = fs.Int64("max-window-bytes", 0, "per-tenant retained window memory quota in bytes (0 = unlimited)")
		cluster     = fs.String("cluster", "", "comma-separated static cluster membership for consistent-hash session routing")
		self        = fs.String("self", "", "this node's address in -cluster")
	)
	fs.Parse(args)

	registry := bench.Registry()
	if *list {
		for _, name := range registry.Names() {
			fmt.Println(name)
		}
		return 0
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	srvLogf := logf
	if *quiet {
		srvLogf = nil
	}
	var nodes []string
	if *cluster != "" {
		for _, n := range strings.Split(*cluster, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
	}
	srv, err := remote.NewServer(remote.ServerOptions{
		Registry:     registry,
		Window:       *window,
		AckEvery:     *ackEvery,
		DrainTimeout: *drain,
		Workers:      *workers,
		SliceBudget:  *slice,
		Quotas: fleet.Quotas{
			MaxSessions:      *maxSessions,
			MaxEntriesPerSec: *maxEPS,
			MaxWindowBytes:   *maxWindowB,
		},
		Cluster: nodes,
		Self:    *self,
		Logf:    srvLogf,
	})
	if err != nil {
		logf("vyrdd: %v", err)
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("vyrdd: %v", err)
		return 2
	}
	logf("vyrdd: serving %d specs on %s", len(registry.Names()), ln.Addr())
	if *workers > 0 {
		logf("vyrdd: fleet scheduler on: %d workers, slice budget %d entries",
			*workers, max(*slice, fleet.DefaultSliceBudget))
	}
	if len(nodes) > 0 {
		logf("vyrdd: cluster routing on: self=%s members=%v", *self, nodes)
	}

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			logf("vyrdd: ops: %v", err)
			return 2
		}
		opsSrv = &http.Server{Handler: remote.OpsHandler(srv)}
		go opsSrv.Serve(opsLn)
		logf("vyrdd: ops surface on http://%s", opsLn.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logf("vyrdd: %v: draining (deadline %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		srv.Shutdown(ctx)
		if opsSrv != nil {
			opsSrv.Close()
		}
		m := srv.Metrics()
		logf("vyrdd: drained: sessions=%d entries=%d violations=%d",
			m.SessionsFinished, m.EntriesTotal, m.ViolationsTotal)
		return 0
	case err := <-serveErr:
		if err != nil {
			logf("vyrdd: %v", err)
			return 2
		}
		return 0
	}
}
