// Command vyrdsoak is the chaos soak harness: it crashes log-producing
// runs at seeded points, recovers each torn log, replays the recovered
// prefix through the checker, and asserts the verdict matches what an
// uninterrupted reference run says about the same prefix (internal/soak).
//
//	vyrdsoak -subject Multiset-Array -iters 200            fast in-process crash loop
//	vyrdsoak -subject Multiset-Array -mode proc -iters 20  real SIGKILLed child processes
//	vyrdsoak -repro 'vyrdsoak/1;subject=...;...'           replay a campaign (or one iteration)
//
// Exit code 0 means every iteration's recovered-prefix verdict matched its
// reference; 1 means a recovery invariant broke (the message carries the
// single-iteration repro string) or the arguments were bad.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/bench"
	"repro/internal/sched"
	"repro/internal/soak"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		repro   = flag.String("repro", "", "run a campaign from its repro string (overrides the shape flags)")
		subject = flag.String("subject", "Multiset-Array", "registry subject name")
		threads = flag.Int("threads", 3, "harness threads")
		ops     = flag.Int("ops", 8, "operations per thread")
		pool    = flag.Int("pool", 4, "key pool size")
		seed    = flag.Int64("seed", 1, "base seed (iteration i derives from seed+i)")
		iters   = flag.Int("iters", 200, "crash/recover/replay iterations")
		mode    = flag.String("mode", "fault", "crash mode: fault (in-process faultfs) or proc (SIGKILLed child)")
		sync    = flag.Int("sync", 16, "sink sync-point cadence in entries")
		d       = flag.Int("d", 3, "PCT depth for proc-mode controlled schedules")
		k       = flag.Int("k", 300, "PCT schedule length for proc-mode controlled schedules")
		kill    = flag.Duration("kill", 50*time.Millisecond, "proc mode: kill delay window per iteration")
		buggy   = flag.Bool("buggy", false, "soak the buggy variant of the subject (verdicts must still match)")
		verbose = flag.Bool("v", false, "print a progress line per iteration")

		// The hidden child side of proc mode (see soak.RunChild).
		child      = flag.Bool("child", false, "internal: run as a proc-mode producer child")
		childSched = flag.String("sched", "", "internal: child's controlled-schedule repro string")
		childOut   = flag.String("o", "", "internal: child's log file path")
	)
	flag.Parse()

	if *child {
		return runChild(*childSched, *childOut, *sync, *buggy)
	}

	var sp soak.Spec
	if *repro != "" {
		var err error
		sp, err = soak.ParseRepro(*repro)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdsoak: %v\n", err)
			return 1
		}
	} else {
		sp = soak.Spec{
			Subject: *subject, Threads: *threads, Ops: *ops, KeyPool: *pool,
			Seed: *seed, Iters: *iters, SyncEvery: *sync, D: *d, K: *k,
		}
		switch *mode {
		case "fault":
			sp.Mode = soak.ModeFault
		case "proc":
			sp.Mode = soak.ModeProc
		default:
			fmt.Fprintf(os.Stderr, "vyrdsoak: unknown mode %q (want fault or proc)\n", *mode)
			return 1
		}
	}

	sub, ok := bench.SubjectByName(sp.Subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "vyrdsoak: unknown subject %q\n", sp.Subject)
		return 1
	}
	tgt := sub.Correct
	if *buggy {
		tgt = sub.Buggy
	}

	cfg := soak.Config{Target: tgt, Spec: sp, KillWindow: *kill}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if sp.Mode == soak.ModeProc {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdsoak: %v\n", err)
			return 1
		}
		cfg.ChildCommand = func(schedRepro, path string, syncEvery int) *exec.Cmd {
			args := []string{"-child", "-sched", schedRepro, "-o", path, "-sync", strconv.Itoa(syncEvery)}
			if *buggy {
				args = append(args, "-buggy")
			}
			return exec.Command(exe, args...)
		}
	}

	fmt.Printf("soaking %s (%s)\nrepro: %s\n", sp.Subject, tgt.Name, sp.Repro())
	res, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdsoak: FAIL: %v\n", err)
		return 1
	}
	fmt.Printf("ok: %s\n", res)
	return 0
}

// runChild is the producer side: replay the controlled schedule to the
// output file and (usually) get SIGKILLed partway through.
func runChild(schedRepro, out string, sync int, buggy bool) int {
	if schedRepro == "" || out == "" {
		fmt.Fprintln(os.Stderr, "vyrdsoak: -child requires -sched and -o")
		return 1
	}
	csp, err := sched.ParseRepro(schedRepro)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdsoak: %v\n", err)
		return 1
	}
	sub, ok := bench.SubjectByName(csp.Subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "vyrdsoak: unknown subject %q\n", csp.Subject)
		return 1
	}
	tgt := sub.Correct
	if buggy {
		tgt = sub.Buggy
	}
	if err := soak.RunChild(tgt, schedRepro, out, sync); err != nil {
		fmt.Fprintf(os.Stderr, "vyrdsoak: child: %v\n", err)
		return 1
	}
	return 0
}
