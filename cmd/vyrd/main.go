// Command vyrd exercises one of the repository's concurrent data structures
// under the random test harness of the paper's Section 7.1 and checks the
// recorded execution for refinement violations.
//
// Usage:
//
//	vyrd -subject BLinkTree -bug -threads 8 -ops 400 -mode view
//	vyrd -list
//
// With -bug the subject runs with its Table 1 injected concurrency error;
// without it, the correct implementation runs and the expected outcome is a
// clean report. -mode selects I/O or view refinement, or "linearize": the
// linearizability engine, which reads call/return actions alone and so also
// verifies subjects with no commit-point annotations (try
// -subject Multiset-NoCommit, whose instrumentation refinement rejects by
// construction). -mode=ltl runs the temporal engine instead: streaming LTL3
// properties over the execution log (internal/ltl), either the subject's
// built-in property set or a property file given with -props:
//
//	vyrd -subject Ledger-LockPair -mode ltl
//	vyrd -subject Multiset-Array -mode ltl -props props.ltl
//
// -online checks concurrently with the workload on a
// verification goroutine instead of offline from the recorded log; -save
// persists the log for later offline checking with -load ("-load -" streams
// the log from stdin). Loaded binary logs decode on a parallel worker pool
// (-decoders); version-1 gob artifacts are read with -codec gob.
//
// A log left behind by a crashed producer is repaired with -recover: the
// torn tail past the last valid frame is truncated in place and the
// recovery report printed. Combine with -load to check the recovered
// prefix in the same invocation:
//
//	vyrd -subject BLinkTree -recover crash.log -load crash.log
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/harness"
	"repro/internal/linearize"
	"repro/internal/wal"
	"repro/vyrd"
)

// linearizeStates bounds the linearizability engine's search; harness-shaped
// logs stay far below it, and hitting it reports an aborted verdict rather
// than hanging the CLI.
const linearizeStates = 1 << 24

func main() {
	var (
		list    = flag.Bool("list", false, "list subjects and exit")
		subject = flag.String("subject", "Multiset-Vector", "subject to exercise (see -list)")
		bug     = flag.Bool("bug", false, "enable the subject's injected concurrency error")
		threads = flag.Int("threads", 8, "application threads")
		ops     = flag.Int("ops", 400, "method calls per thread")
		pool    = flag.Int("pool", 16, "key pool size (shrinks over the run)")
		seed    = flag.Int64("seed", 1, "harness random seed")
		mode    = flag.String("mode", "view", "verdict mode: io or view refinement, linearize (commit-annotation-free linearizability), or ltl (temporal properties)")
		props   = flag.String("props", "", "property file for -mode=ltl (default: the subject's built-in property set)")
		online  = flag.Bool("online", false, "check online, concurrently with the workload")
		failFst = flag.Bool("failfast", true, "stop at the first violation")
		save    = flag.String("save", "", "persist the recorded log to this file")
		load    = flag.String("load", "", "skip the run; offline-check a previously saved log")
		recov   = flag.String("recover", "", "repair a crashed producer's log in place (truncate the torn tail) before any -load")
		shards  = flag.Int("shards", 0, "capture shards for the live run (0/1 = single-counter log; >1 = sharded per-core capture, merged for checking)")
		codec   = flag.String("codec", "binary", "persisted log codec for -load: binary (current) or gob (version-1 artifacts)")
		workers = flag.Int("decoders", 0, "-load decode workers for binary logs (0 = GOMAXPROCS, 1 = sequential)")
		dump    = flag.Bool("dump", false, "print the witness interleaving before the report (Section 4.1 debugging view)")
		quiesc  = flag.Bool("quiescent", false, "compare views only at quiescent states (the commit-atomicity ablation of Section 8)")
		asJSON  = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	jsonOutput = *asJSON

	if *list {
		for _, s := range bench.AllSubjects() {
			fmt.Printf("%-24s injected error: %s\n", s.Name, s.BugName)
		}
		for _, s := range bench.TemporalSubjects() {
			fmt.Printf("%-24s injected error: %s (temporal)\n", s.Name, s.BugName)
		}
		for _, s := range bench.LinearizeOnlySubjects() {
			fmt.Printf("%-24s injected error: %s (linearize-only)\n", s.Name, s.BugName)
		}
		return
	}

	s, ok := bench.SubjectByName(*subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "vyrd: unknown subject %q (try -list)\n", *subject)
		os.Exit(2)
	}
	target := s.Correct
	if *bug {
		target = s.Buggy
	}

	var checkMode core.Mode
	lin, temporal := false, false
	switch *mode {
	case "io":
		checkMode = core.ModeIO
	case "view":
		checkMode = core.ModeView
	case "linearize":
		lin = true
	case "ltl":
		temporal = true
	default:
		fmt.Fprintf(os.Stderr, "vyrd: unknown mode %q (io, view, linearize or ltl)\n", *mode)
		os.Exit(2)
	}

	// -mode=linearize swaps the verdict engine: the linearizability checker
	// reads call/return actions alone, so it also verifies subjects with no
	// commit-point annotations (e.g. Multiset-NoCommit).
	var linSpec *linearize.Spec
	if lin {
		var err error
		linSpec, err = bench.LinearizeSpec(*subject)
		if err != nil {
			fatal(err)
		}
	}
	checkLin := func(entries []vyrd.Entry) *vyrd.Report {
		return linearize.CheckEntries(entries, linSpec, linearize.Options{MaxStates: linearizeStates})
	}

	// -mode=ltl swaps in the temporal engine: streaming LTL3 properties
	// over the raw log. -props overrides the subject's built-in set.
	var propSet *vyrd.PropSet
	if temporal {
		var sources []string
		if *props != "" {
			data, err := os.ReadFile(*props)
			if err != nil {
				fatal(err)
			}
			sources = []string{string(data)}
		}
		var err error
		propSet, err = bench.NewTemporalSet(*subject, sources)
		if err != nil {
			fatal(err)
		}
	}
	checkLTL := func(entries []vyrd.Entry) *vyrd.Report {
		return vyrd.CheckTemporal(propSet, entries)
	}

	var opts []vyrd.Option
	if !lin && !temporal {
		opts = []vyrd.Option{vyrd.WithMode(checkMode), vyrd.WithFailFast(*failFst), vyrd.WithDiagnostics(true)}
		if checkMode == core.ModeView {
			opts = append(opts, vyrd.WithReplayer(target.NewReplayer()))
		}
		if *quiesc {
			opts = append(opts, vyrd.WithQuiescentViewOnly(true))
		}
	}

	// The command touches the filesystem only through the faultfs seam, so
	// tests (and fault campaigns) can substitute an injecting FS.
	fsys := faultfs.FS(faultfs.OS{})

	if *recov != "" {
		_, rep, err := wal.RecoverPath(fsys, *recov)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vyrd: recover %s: %s\n", *recov, rep)
		if *load == "" {
			os.Exit(0)
		}
	}

	if *load != "" {
		// "-load -" reads the framed log from stdin, so shell pipelines
		// compose: a vyrdd session capture, a decompressor, a generator.
		var f faultfs.File = os.Stdin
		if *load != "-" {
			var err error
			f, err = fsys.Open(*load)
			if err != nil {
				fatal(err)
			}
		}
		if *codec == "binary" && !*dump && !lin && !temporal {
			// Stream straight into the checker: the parallel decode pool
			// feeds the sequential checker without materializing the log.
			report, err := vyrd.CheckStream(f, *workers, target.NewSpec(), opts...)
			if err != nil {
				fatal(err)
			}
			finish(report)
		}
		var entries []vyrd.Entry
		var err error
		switch *codec {
		case "binary":
			// The framed binary format decodes on a worker pool, re-sequenced
			// into log order before checking.
			entries, err = vyrd.ReadLogParallel(f, *workers)
		case "gob":
			entries, err = vyrd.ReadLogCodec(f, vyrd.CodecGob)
		default:
			fmt.Fprintf(os.Stderr, "vyrd: unknown codec %q (binary or gob)\n", *codec)
			os.Exit(2)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *dump {
			core.WriteWitness(os.Stdout, entries)
		}
		if lin {
			finish(checkLin(entries))
		}
		if temporal {
			finish(checkLTL(entries))
		}
		report, err := vyrd.CheckEntries(entries, target.NewSpec(), opts...)
		if err != nil {
			fatal(err)
		}
		finish(report)
	}

	runLevel := levelFor(checkMode)
	if temporal {
		// Temporal properties read write actions (lock events, commit
		// payloads), so the run must capture at the view level.
		runLevel = vyrd.LevelView
	}
	cfg := harness.Config{
		Threads:      *threads,
		OpsPerThread: *ops,
		KeyPool:      *pool,
		Shrink:       true,
		Seed:         *seed,
		Level:        runLevel,
	}

	// With -save the log runs fail-stop: a sink that can no longer persist
	// (disk full, injected fault) stops the producer at its next append
	// instead of racing ahead of a file that silently stopped growing.
	// With -shards N the capture layer is the sharded shard group: each
	// harness thread appends to its own shard and the checker (and any
	// -save sink) reads the k-way merged total order, so verdicts and the
	// on-disk format are unchanged.
	log := vyrd.NewLogWith(cfg.Level, vyrd.LogOptions{FailStop: *save != "", Shards: *shards})
	if *save != "" {
		f, err := fsys.Create(*save)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := log.AttachSink(f); err != nil {
			fatal(err)
		}
	}

	var wait func() *vyrd.Report
	if *online {
		if lin {
			wait = log.StartEntryChecker(linearize.NewChecker(linSpec, linearize.Options{MaxStates: linearizeStates}))
		} else if temporal {
			wait = log.StartEntryChecker(vyrd.NewTemporalChecker(propSet, *failFst))
		} else {
			var err error
			wait, err = log.StartChecker(target.NewSpec(), opts...)
			if err != nil {
				fatal(err)
			}
		}
	}

	res := harness.RunOnLog(target, cfg, log)
	fmt.Printf("ran %s: %d threads x %d ops = %d methods in %v (%d log entries)\n",
		target.Name, cfg.Threads, cfg.OpsPerThread, res.Methods, res.Elapsed, log.Len())
	if err := log.SinkErr(); err != nil {
		fatal(err)
	}

	if *dump {
		core.WriteWitness(os.Stdout, log.Snapshot())
	}
	var report *vyrd.Report
	switch {
	case *online:
		report = wait()
	case lin:
		report = checkLin(log.Snapshot())
	case temporal:
		report = checkLTL(log.Snapshot())
	default:
		var err error
		report, err = vyrd.CheckEntries(log.Snapshot(), target.NewSpec(), opts...)
		if err != nil {
			fatal(err)
		}
	}
	finish(report)
}

func levelFor(m core.Mode) vyrd.Level {
	if m == core.ModeView {
		return vyrd.LevelView
	}
	return vyrd.LevelIO
}

func finish(report *vyrd.Report) {
	if jsonOutput {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(report)
	}
	if !report.Ok() {
		os.Exit(1)
	}
	os.Exit(0)
}

// jsonOutput mirrors the -json flag for finish (set in main).
var jsonOutput bool

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vyrd:", err)
	os.Exit(2)
}
