package main

import (
	"bytes"
	"os"
	"os/exec"
	"testing"

	"repro/vyrd"
)

// TestMain lets the test binary double as the vyrd command: when re-exec'd
// with VYRD_MAIN_RUN=1 it runs main() (and exits through finish's exit
// codes) instead of the test suite, so exit-code behavior is pinned by a
// real process boundary.
func TestMain(m *testing.M) {
	if os.Getenv("VYRD_MAIN_RUN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// streamLog records a single-threaded multiset trace through the probe API
// and returns the serialized binary log, the exact bytes `vyrd -save`
// would produce (or a vyrdd capture would ship).
func streamLog(t *testing.T, violate bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	log := vyrd.NewLog(vyrd.LevelIO)
	if err := log.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	p := log.NewProbe()
	for i := 0; i < 20; i++ {
		inv := p.Call("Insert", i%5)
		inv.Commit("")
		inv.Return(true)
	}
	if violate {
		// LookUp of a never-inserted element returning true: an observer
		// violation under the multiset specification.
		inv := p.Call("LookUp", 999)
		inv.Return(true)
	}
	log.Close()
	if err := log.SinkErr(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadStdinExitCodes pins the shell contract of `vyrd -load -`: the
// framed binary log streams in on stdin, and the process exits 0 on a
// clean check and 1 on a refinement violation.
func TestLoadStdinExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		violate bool
		want    int
	}{
		{"clean", false, 0},
		{"violation", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0],
				"-subject", "Multiset-Array", "-mode", "io", "-load", "-")
			cmd.Env = append(os.Environ(), "VYRD_MAIN_RUN=1")
			cmd.Stdin = bytes.NewReader(streamLog(t, tc.violate))
			out, err := cmd.CombinedOutput()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("re-exec: %v\n%s", err, out)
			}
			if code != tc.want {
				t.Errorf("exit code %d, want %d\noutput:\n%s", code, tc.want, out)
			}
		})
	}
}
