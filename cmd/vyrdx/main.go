// Command vyrdx explores schedules: it runs registry subjects under the
// controlled PCT scheduler (internal/sched) across many seeds, reports the
// first refinement violation per subject with a minimized repro string,
// and replays repro strings deterministically.
//
//	vyrdx                          explore the planted-bug subjects
//	vyrdx -subjects Cache-TornUpdate -seeds 500
//	vyrdx -repro 'vyrdsched/1;subject=...;...'   replay one schedule
//	vyrdx -stress 200              uncontrolled-stress comparison runs
//
// With -strategy=dpor the search is driven by dynamic partial-order
// reduction instead of PCT seeds: the first schedule is the pure
// run-to-completion one, every later schedule reverses one observed
// dependent pair at a planted backtrack point, and sleep sets prune
// schedules provably equivalent to ones already run. The budget then
// counts distinct Mazurkiewicz classes rather than random seeds, and the
// default subject list grows by the weak-memory atomics subjects, whose
// one-step race windows are what DPOR's access-typed dependence analysis
// is for:
//
//	vyrdx -strategy dpor           DPOR search over the planted-bug subjects
//	vyrdx -strategy dpor -subjects Seqlock-TornRead
//
// With -mode=ltl the search target changes engine: each schedule's log is
// checked against temporal (LTL3) properties instead of the refinement
// checker — the subject's built-in property set (internal/bench), or a
// property file given with -props. The default subject list becomes the
// temporal planted-bug subjects (e.g. Ledger-LockPair, whose hint-gated
// reversed lock acquisition corrupts no state and is invisible to
// refinement, but leaves a lock-order inversion in the log):
//
//	vyrdx -mode ltl                find the planted lock-order inversion
//	vyrdx -mode ltl -repro '...'   replay a temporal witness
//
// Exit code 0 means no violation was found (or a replayed schedule
// passed); 2 means a violation was found (or replayed); 1 is an error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/sched"
)

// verifierFor resolves the verdict engine for one subject: refinement, or
// the temporal engine over the subject's built-in or file-provided
// property set.
func verifierFor(mode, propsFile, subject string) (explore.Verifier, error) {
	switch mode {
	case "refine":
		return explore.Refinement(), nil
	case "ltl":
		var sources []string
		if propsFile != "" {
			data, err := os.ReadFile(propsFile)
			if err != nil {
				return nil, err
			}
			sources = []string{string(data)}
		} else {
			sources = bench.BuiltinProps(subject)
		}
		return explore.Temporal(sources)
	}
	return nil, fmt.Errorf("unknown mode %q (refine or ltl)", mode)
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		repro    = flag.String("repro", "", "replay one schedule from its repro string and print the verdict")
		subjects = flag.String("subjects", "", "comma-separated subject names (default: the planted-bug exploration subjects)")
		seeds    = flag.Int("seeds", 2000, "schedule budget per subject")
		seed     = flag.Int64("seed", 0, "base seed (schedules use seed, seed+1, ...)")
		shrink   = flag.Bool("shrink", true, "minimize each violating schedule before reporting")
		stress   = flag.Int("stress", 0, "additionally run N uncontrolled stress iterations per subject for comparison")
		buggy    = flag.Bool("buggy", true, "explore the buggy variant of each subject (false: the correct one)")
		mode     = flag.String("mode", "refine", "verdict engine: refine (refinement checker) or ltl (temporal properties)")
		props    = flag.String("props", "", "property file for -mode=ltl (default: each subject's built-in property set)")
		strategy = flag.String("strategy", "pct", "schedule search strategy: pct (randomized priorities) or dpor (partial-order reduction)")
	)
	flag.Parse()

	if *strategy != "pct" && *strategy != sched.StrategyDPOR {
		fmt.Fprintf(os.Stderr, "vyrdx: unknown strategy %q (pct or dpor)\n", *strategy)
		return 1
	}
	if *strategy == sched.StrategyDPOR && *mode == "ltl" {
		// DPOR's dependence relation is derived from the refinement probes'
		// access annotations; the temporal subjects' hint-gated windows are
		// not annotated that way, so the combination would silently explore
		// a wrong equivalence.
		fmt.Fprintf(os.Stderr, "vyrdx: -strategy dpor requires -mode refine\n")
		return 1
	}

	if *repro != "" {
		return replay(*repro, *buggy, *mode, *props)
	}

	var subs []bench.Subject
	if *subjects == "" {
		if *mode == "ltl" {
			subs = bench.TemporalSubjects()
		} else {
			subs = bench.ExplorationSubjects()
			if *strategy == sched.StrategyDPOR {
				subs = append(subs, bench.WeakMemorySubjects()...)
			}
		}
	} else {
		for _, name := range strings.Split(*subjects, ",") {
			s, ok := bench.SubjectByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "vyrdx: unknown subject %q\n", name)
				return 1
			}
			subs = append(subs, s)
		}
	}

	foundAny := false
	for _, s := range subs {
		tgt := s.Buggy
		if !*buggy {
			tgt = s.Correct
		}
		base := bench.ExploreSpec(s.Name)
		base.Seed = *seed
		verifier, err := verifierFor(*mode, *props, s.Name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdx: %s: %v\n", s.Name, err)
			return 1
		}

		var found *explore.Found
		var st explore.Stats
		if *strategy == sched.StrategyDPOR {
			found, st, err = explore.ExploreDPORWith(tgt, base, *seeds, verifier)
		} else {
			found, st, err = explore.ExploreWith(tgt, base, *seeds, verifier)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdx: %s: %v\n", s.Name, err)
			return 1
		}
		fmt.Printf("%s: %d schedules in %v (%.0f schedules/sec, %d free-runs)\n",
			s.Name, st.Schedules, st.Elapsed.Round(1e6), st.SchedulesPerSec(), st.FreeRuns)
		if *strategy == sched.StrategyDPOR {
			fmt.Printf("%s: %d equivalence classes, %d sleep-set pruned, exhausted=%v\n",
				s.Name, st.Classes, st.Pruned, st.Exhausted)
		}
		if found == nil {
			fmt.Printf("%s: no violation within %d schedules\n", s.Name, *seeds)
		} else {
			foundAny = true
			fmt.Printf("%s: violation (%s) at schedule %d/%d, steps=%d\n",
				s.Name, found.Run.FirstKind(), found.SchedulesTried, *seeds, found.Run.Sched.Steps)
			rep := found.Run
			if *shrink {
				min, shr, err := explore.ShrinkRunWith(tgt, found.Run, verifier)
				if err != nil {
					fmt.Fprintf(os.Stderr, "vyrdx: %s: shrink: %v\n", s.Name, err)
					return 1
				}
				fmt.Printf("%s: shrunk %d -> %d steps in %d runs\n",
					s.Name, shr.StepsBefore, shr.StepsAfter, shr.Runs)
				rep = min
			}
			if err := explore.WriteReportWith(os.Stdout, tgt, rep, verifier); err != nil {
				fmt.Fprintf(os.Stderr, "vyrdx: %s: report: %v\n", s.Name, err)
				return 1
			}
		}

		if *stress > 0 {
			at, elapsed, err := explore.StressWith(tgt, base, *stress, verifier)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vyrdx: %s: stress: %v\n", s.Name, err)
				return 1
			}
			if at > 0 {
				fmt.Printf("%s: uncontrolled stress found a violation at run %d/%d (%v)\n",
					s.Name, at, *stress, elapsed.Round(1e6))
			} else {
				fmt.Printf("%s: uncontrolled stress found nothing in %d runs (%v)\n",
					s.Name, *stress, elapsed.Round(1e6))
			}
		}
	}
	if foundAny {
		return 2
	}
	return 0
}

// replay parses a repro string, runs it twice, verifies the runs agree
// byte-for-byte, and prints the report.
func replay(s string, buggy bool, mode, props string) int {
	sp, err := sched.ParseRepro(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdx: %v\n", err)
		return 1
	}
	sub, ok := bench.SubjectByName(sp.Subject)
	if !ok {
		fmt.Fprintf(os.Stderr, "vyrdx: unknown subject %q in repro string\n", sp.Subject)
		return 1
	}
	tgt := sub.Buggy
	if !buggy {
		tgt = sub.Correct
	}
	verifier, err := verifierFor(mode, props, sub.Name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdx: %v\n", err)
		return 1
	}
	r1, err := explore.RunSpecWith(tgt, sp, verifier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdx: %v\n", err)
		return 1
	}
	if r1.Sched.FreeRun {
		fmt.Fprintf(os.Stderr, "vyrdx: schedule fell back to free-running; not reproducible\n")
		return 1
	}
	r2, err := explore.RunSpecWith(tgt, sp, verifier)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vyrdx: %v\n", err)
		return 1
	}
	if !explore.SameVerdict(r1, r2) {
		fmt.Fprintf(os.Stderr, "vyrdx: replay nondeterminism: two runs of the same spec disagree\n")
		return 1
	}
	fmt.Printf("replayed twice, byte-identical (%d entries, %d bytes)\n",
		len(r1.Entries), len(r1.LogBytes))
	if err := explore.WriteReportWith(os.Stdout, tgt, r1, verifier); err != nil {
		fmt.Fprintf(os.Stderr, "vyrdx: report: %v\n", err)
		return 1
	}
	if r1.Violating() {
		return 2
	}
	return 0
}
