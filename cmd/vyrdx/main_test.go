package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/explore"
)

// TestMain lets the test binary double as the vyrdx command: re-exec'd with
// VYRDX_MAIN_RUN=1 it runs main() and exits through run()'s codes, so the
// shell contract is pinned by a real process boundary, not by calling run()
// in-process.
func TestMain(m *testing.M) {
	if os.Getenv("VYRDX_MAIN_RUN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// vyrdx re-execs the test binary as the command and returns exit code and
// combined output.
func vyrdx(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "VYRDX_MAIN_RUN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestExitCodes pins the documented shell contract — 0 no violation, 2
// violation found, 1 error — and that -strategy dpor changes none of it.
// The subject is the atomics seqlock: race-detector-clean (the planted bug
// is all-atomic), correct variant silent within 25 controlled schedules
// under both strategies, buggy variant found well within 40 by both.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean-pct", []string{"-subjects", "Seqlock-TornRead", "-buggy=false", "-seeds", "25"}, 0},
		{"clean-dpor", []string{"-subjects", "Seqlock-TornRead", "-buggy=false", "-seeds", "25", "-strategy", "dpor"}, 0},
		{"violation-pct", []string{"-subjects", "Seqlock-TornRead", "-seeds", "40"}, 2},
		{"violation-dpor", []string{"-subjects", "Seqlock-TornRead", "-seeds", "40", "-strategy", "dpor"}, 2},
		{"unknown-subject", []string{"-subjects", "NoSuchSubject"}, 1},
		{"unknown-strategy", []string{"-strategy", "bfs"}, 1},
		{"dpor-with-ltl", []string{"-strategy", "dpor", "-mode", "ltl"}, 1},
		{"bad-repro", []string{"-repro", "not-a-repro-string"}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, out := vyrdx(t, tc.args...)
			if code != tc.want {
				t.Errorf("exit code %d, want %d\noutput:\n%s", code, tc.want, out)
			}
		})
	}
}

// TestDPORReproReplaysThroughCLI closes the loop the repro string promises:
// a violating schedule found under -strategy dpor in-process replays
// through `vyrdx -repro` — the script round-trips the grammar — and the
// replayed violation exits 2 like any other.
func TestDPORReproReplaysThroughCLI(t *testing.T) {
	s, ok := bench.SubjectByName("Seqlock-TornRead")
	if !ok {
		t.Fatal("Seqlock-TornRead not in registry")
	}
	found, _, err := explore.ExploreDPOR(s.Buggy, bench.ExploreSpec(s.Name), 40)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Fatal("dpor found no violation in 40 schedules")
	}
	repro := found.Run.Spec.Repro()
	if !strings.Contains(repro, "strategy=dpor") {
		t.Fatalf("repro string does not carry the strategy: %s", repro)
	}
	code, out := vyrdx(t, "-repro", repro)
	if code != 2 {
		t.Fatalf("replay exit code %d, want 2\nrepro: %s\noutput:\n%s", code, repro, out)
	}
	if !strings.Contains(out, "replayed twice, byte-identical") {
		t.Fatalf("replay did not report byte-identical runs\noutput:\n%s", out)
	}
}
