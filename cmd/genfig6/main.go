// Command genfig6 regenerates the committed trace artifact
// vyrd/testdata/fig6.log: the paper's Fig. 6 buggy-FindSlot execution,
// recorded at view level through a log sink, with the trailing LookUp(5)
// that exposes the lost element to I/O refinement.
//
// The artifact pins the persisted log format: TestPersistedFig6Artifact
// decodes it offline and checks it in both modes. Regenerate it (and bump
// event.FormatVersion) whenever the wire shape of event.Entry changes:
//
//	go generate ./vyrd
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/linearize"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

func main() {
	out := flag.String("o", "vyrd/testdata/fig6.log", "output artifact path")
	corruptAt := flag.Int("corrupt-at", -1, "after the self-check, XOR the byte at this offset (reproducible corrupted-artifact generation)")
	corruptXor := flag.Int("corrupt-xor", 0x41, "XOR mask for -corrupt-at")
	nocommit := flag.Bool("nocommit", false, "generate the annotation-free artifact instead (correct multiset, call/return-only instrumentation; pass -o vyrd/testdata/fig6_nocommit.log)")
	flag.Parse()

	if *nocommit {
		genNoCommit(*out)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}

	log := vyrd.NewLog(vyrd.LevelView)
	if err := log.AttachSink(f); err != nil {
		fatal(err)
	}

	// The Fig. 6 schedule, forced deterministically: T2's buggy FindSlot
	// reads slot 0 as empty and pauses in the race window; T1 inserts (5,6)
	// into slots 0 and 1; T2 resumes and overwrites slot 0 with 7, losing
	// element 5.
	m := multiset.New(8, multiset.BugFindSlotAcquire)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	t2Entered := make(chan struct{})
	t1Done := make(chan struct{})
	var gateOnce sync.Once
	m.RaceWindow = func(i int) {
		if i == 0 {
			gateOnce.Do(func() {
				close(t2Entered)
				<-t1Done
			})
		}
	}

	done := make(chan bool)
	go func() { done <- m.InsertPair(p2, 7, 8) }()
	<-t2Entered
	m.RaceWindow = nil
	if !m.InsertPair(p1, 5, 6) {
		fatal(fmt.Errorf("T1 InsertPair failed"))
	}
	close(t1Done)
	if !<-done {
		fatal(fmt.Errorf("T2 InsertPair failed"))
	}

	// The paper's LookUp(5): the implementation lost 5, so I/O refinement
	// sees an observer violation here.
	if m.LookUp(p1, 5) {
		fatal(fmt.Errorf("implementation still contains 5; the bug did not trigger"))
	}
	log.Close()
	if err := log.SinkErr(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	// Self-check: the artifact must reproduce the paper's detections.
	g, err := os.Open(*out)
	if err != nil {
		fatal(err)
	}
	defer g.Close()
	entries, err := vyrd.ReadLog(g)
	if err != nil {
		fatal(err)
	}
	ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		fatal(err)
	}
	viewRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()), vyrd.WithDiagnostics(true))
	if err != nil {
		fatal(err)
	}
	if ioRep.Ok() || ioRep.First().Kind != vyrd.ViolationObserver {
		fatal(fmt.Errorf("artifact does not reproduce the I/O observer violation:\n%s", ioRep))
	}
	if viewRep.Ok() || viewRep.First().Kind != vyrd.ViolationView {
		fatal(fmt.Errorf("artifact does not reproduce the view violation:\n%s", viewRep))
	}
	fmt.Printf("genfig6: wrote %s (%d entries, format v%d; view detection after %d methods, I/O after %d)\n",
		*out, len(entries), vyrd.LogFormatVersion,
		viewRep.First().MethodsCompleted, ioRep.First().MethodsCompleted)

	// The corrupted variant for the recovery golden test: flip one byte at
	// a fixed offset of the (already self-checked) artifact, so the
	// committed file and its RecoveryReport are reproducible bit for bit.
	if *corruptAt >= 0 {
		data, err := os.ReadFile(*out)
		if err != nil {
			fatal(err)
		}
		if *corruptAt >= len(data) {
			fatal(fmt.Errorf("-corrupt-at %d beyond the %d-byte artifact", *corruptAt, len(data)))
		}
		data[*corruptAt] ^= byte(*corruptXor)
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("genfig6: corrupted byte %d (xor %#x) of %s\n", *corruptAt, *corruptXor, *out)
	}
}

// genNoCommit writes the annotation-free artifact: the CORRECT multiset
// driven through call/return-only probes (the implementation runs with a
// nil probe, so the log carries no commit actions, writes or view events),
// with two genuinely overlapped InsertPairs and a quiescent LookUp. The
// artifact pins the verdict split that motivates the linearizability
// engine: I/O refinement rejects it as an instrumentation violation (a
// mutator execution finished without a commit action), while the
// linearizability check verifies it from the call/return behavior alone.
func genNoCommit(out string) {
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	log := vyrd.NewLog(vyrd.LevelIO)
	if err := log.AttachSink(f); err != nil {
		fatal(err)
	}

	// Single-goroutine generation, so the committed bytes are reproducible:
	// the overlap lives in the log (T2's InsertPair call precedes T1's whole
	// execution; its return follows), not in the scheduler.
	m := multiset.New(8, multiset.BugNone)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	inv2 := p2.Call("InsertPair", 7, 8)
	inv1 := p1.Call("InsertPair", 5, 6)
	ok1 := m.InsertPair(nil, 5, 6)
	inv1.Return(ok1)
	ok2 := m.InsertPair(nil, 7, 8)
	inv2.Return(ok2)
	if !ok1 || !ok2 {
		fatal(fmt.Errorf("InsertPair failed (%v, %v)", ok1, ok2))
	}
	invL := p1.Call("LookUp", 5)
	okL := m.LookUp(nil, 5)
	invL.Return(okL)
	if !okL {
		fatal(fmt.Errorf("correct multiset lost element 5"))
	}

	log.Close()
	if err := log.SinkErr(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	// Self-check: refinement must reject (instrumentation), the
	// linearizability engine must verify.
	g, err := os.Open(out)
	if err != nil {
		fatal(err)
	}
	defer g.Close()
	entries, err := vyrd.ReadLog(g)
	if err != nil {
		fatal(err)
	}
	ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		fatal(err)
	}
	if ioRep.Ok() || ioRep.First().Kind != vyrd.ViolationInstrumentation {
		fatal(fmt.Errorf("artifact is not refinement-rejected as annotation-free:\n%s", ioRep))
	}
	linRep := linearize.CheckEntries(entries, linearize.MultisetSpec(), linearize.Options{})
	if !linRep.Ok() {
		fatal(fmt.Errorf("linearizability check rejected the annotation-free artifact:\n%s", linRep))
	}
	fmt.Printf("genfig6: wrote %s (%d entries, format v%d; refinement rejects with %s, linearizability verifies)\n",
		out, len(entries), vyrd.LogFormatVersion, ioRep.First().Kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genfig6:", err)
	os.Exit(1)
}
