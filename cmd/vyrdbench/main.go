// Command vyrdbench regenerates the evaluation tables of the paper
// (Section 7): Table 1 (time to detection, I/O vs view refinement),
// Table 2 (logging overhead by level) and Table 3 (running-time breakdown
// with online and offline checking).
//
// Usage:
//
//	vyrdbench -table all
//	vyrdbench -table 1 -reps 10 -ops 800
//	vyrdbench -table explore -budget 2000
//	vyrdbench -table 3 -scale 20
//	vyrdbench -table all -json bench.json
//	vyrdbench -table 3 -cpuprofile cpu.out -memprofile mem.out
//
// Absolute times are this machine's; the paper's shapes are what the tables
// are compared on (see EXPERIMENTS.md). With -json the same rows are also
// written as a machine-readable snapshot (environment + rows), which is how
// checked-in artifacts like BENCH_PR2.json are produced.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	var (
		table      = flag.String("table", "all", "which table to regenerate: 1, 2, 3, log, explore, durability, linearize, append, fleet, ltl or all")
		reps       = flag.Int("reps", 0, "repetitions per cell (0 = per-table default)")
		ops        = flag.Int("ops", 0, "Table 1/2 and log-pipeline ops per thread (0 = default)")
		scale      = flag.Int("scale", 0, "Table 3 method-count scale factor (0 = default)")
		seed       = flag.Int64("seed", 1, "base random seed")
		subject    = flag.String("subject", "", "restrict Table 1 to one subject")
		window     = flag.Int("window", 0, "log-pipeline truncation window in entries (0 = default)")
		budget     = flag.Int("budget", 2000, "exploration schedule budget per subject")
		shards     = flag.Int("shards", 0, "append-scaling shard count for the sharded rows (0 = one per proc)")
		sessions   = flag.Int("sessions", 0, "fleet-table concurrent session target (0 = default 1000)")
		workers    = flag.Int("workers", 0, "fleet-table checker pool width (0 = 2×GOMAXPROCS)")
		jsonPath   = flag.String("json", "", "also write the rows as a JSON snapshot to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	snap := bench.NewSnapshot()

	runTable1 := func() {
		cfg := bench.DefaultTable1Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		var rows []bench.Table1Row
		if *subject != "" {
			s, ok := bench.SubjectByName(*subject)
			if !ok {
				fmt.Fprintf(os.Stderr, "vyrdbench: unknown subject %q\n", *subject)
				os.Exit(2)
			}
			rows = bench.Table1Subject(s, cfg)
		} else {
			rows = bench.Table1(cfg)
		}
		snap.Table1 = rows
		bench.WriteTable1(os.Stdout, rows)
	}

	runTable2 := func() {
		cfg := bench.DefaultTable2Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		snap.Table2 = bench.Table2(cfg)
		bench.WriteTable2(os.Stdout, snap.Table2)
	}

	runTable3 := func() {
		cfg := bench.DefaultTable3Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		snap.Table3 = bench.Table3(cfg)
		bench.WriteTable3(os.Stdout, snap.Table3)
	}

	runLogPipeline := func() {
		cfg := bench.DefaultLogPipelineConfig()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		if *window > 0 {
			cfg.Window = *window
		}
		snap.LogPipeline = bench.LogPipeline(cfg)
		bench.WriteLogPipeline(os.Stdout, cfg, snap.LogPipeline)
	}

	runExplore := func() {
		rows, err := bench.ExploreTable(*budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: explore: %v\n", err)
			os.Exit(1)
		}
		snap.Explore = rows
		bench.WriteExploreTable(os.Stdout, rows)
	}

	runLinearize := func() {
		cfg := bench.DefaultLinearizeConfig()
		rows, err := bench.LinearizeTable(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: linearize: %v\n", err)
			os.Exit(1)
		}
		snap.Linearize = rows
		bench.WriteLinearizeTable(os.Stdout, rows)
		prows, err := bench.LinearizeParallelTable([]int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: linearize parallel: %v\n", err)
			os.Exit(1)
		}
		snap.LinearizeParallel = prows
		fmt.Println()
		bench.WriteLinearizeParallelTable(os.Stdout, prows)
		mrows, err := bench.LinearizeMemoTable([]int{8, 64})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: linearize memo: %v\n", err)
			os.Exit(1)
		}
		snap.LinearizeMemo = mrows
		fmt.Println()
		bench.WriteLinearizeMemoTable(os.Stdout, mrows)
	}

	runAppendScaling := func() {
		cfg := bench.DefaultAppendScalingConfig()
		cfg.Shards = *shards
		if *ops > 0 {
			cfg.Entries = *ops
		}
		snap.AppendScaling = bench.AppendScaling(cfg)
		bench.WriteAppendScaling(os.Stdout, cfg, snap.AppendScaling)
	}

	runFleet := func() {
		cfg := bench.DefaultFleetConfig()
		cfg.Seed = *seed
		if *sessions > 0 {
			cfg.Sessions = *sessions
		}
		if *workers > 0 {
			cfg.Workers = *workers
		}
		if *subject != "" {
			cfg.Subject = *subject
		}
		rows, err := bench.FleetTable(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: fleet: %v\n", err)
			os.Exit(1)
		}
		snap.Fleet = rows
		bench.WriteFleetTable(os.Stdout, rows)
	}

	runLTL := func() {
		cfg := bench.DefaultLTLConfig()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		if *subject != "" {
			cfg.Subject = *subject
		}
		rows, err := bench.LTLTable(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: ltl: %v\n", err)
			os.Exit(1)
		}
		snap.LTL = rows
		bench.WriteLTLTable(os.Stdout, cfg, rows)
		orows, err := bench.LTLOnlineTable(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: ltl online: %v\n", err)
			os.Exit(1)
		}
		snap.LTLOnline = orows
		fmt.Println()
		bench.WriteLTLOnlineTable(os.Stdout, orows)
	}

	runDurability := func() {
		cfg := bench.DefaultDurabilityConfig()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		snap.Durability = bench.Durability(cfg)
		bench.WriteDurability(os.Stdout, cfg, snap.Durability)
	}

	switch *table {
	case "1":
		runTable1()
	case "2":
		runTable2()
	case "3":
		runTable3()
	case "log":
		runLogPipeline()
	case "explore":
		runExplore()
	case "durability":
		runDurability()
	case "linearize":
		runLinearize()
	case "append":
		runAppendScaling()
	case "fleet":
		runFleet()
	case "ltl":
		runLTL()
	case "all":
		runTable1()
		fmt.Println()
		runTable2()
		fmt.Println()
		runTable3()
		fmt.Println()
		runLogPipeline()
		fmt.Println()
		runExplore()
		fmt.Println()
		runDurability()
		fmt.Println()
		runLinearize()
		fmt.Println()
		runAppendScaling()
		fmt.Println()
		runFleet()
		fmt.Println()
		runLTL()
	default:
		fmt.Fprintf(os.Stderr, "vyrdbench: unknown table %q (1, 2, 3, log, explore, durability, linearize, append, fleet, ltl or all)\n", *table)
		os.Exit(2)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: %v\n", err)
			os.Exit(1)
		}
		if err := snap.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vyrdbench: wrote snapshot to %s\n", *jsonPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "vyrdbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
