// Command vyrdbench regenerates the evaluation tables of the paper
// (Section 7): Table 1 (time to detection, I/O vs view refinement),
// Table 2 (logging overhead by level) and Table 3 (running-time breakdown
// with online and offline checking).
//
// Usage:
//
//	vyrdbench -table all
//	vyrdbench -table 1 -reps 10 -ops 800
//	vyrdbench -table 3 -scale 20
//
// Absolute times are this machine's; the paper's shapes are what the tables
// are compared on (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to regenerate: 1, 2, 3, log or all")
		reps    = flag.Int("reps", 0, "repetitions per cell (0 = per-table default)")
		ops     = flag.Int("ops", 0, "Table 1/2 and log-pipeline ops per thread (0 = default)")
		scale   = flag.Int("scale", 0, "Table 3 method-count scale factor (0 = default)")
		seed    = flag.Int64("seed", 1, "base random seed")
		subject = flag.String("subject", "", "restrict Table 1 to one subject")
		window  = flag.Int("window", 0, "log-pipeline truncation window in entries (0 = default)")
	)
	flag.Parse()

	runTable1 := func() {
		cfg := bench.DefaultTable1Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		var rows []bench.Table1Row
		if *subject != "" {
			s, ok := bench.SubjectByName(*subject)
			if !ok {
				fmt.Fprintf(os.Stderr, "vyrdbench: unknown subject %q\n", *subject)
				os.Exit(2)
			}
			rows = bench.Table1Subject(s, cfg)
		} else {
			rows = bench.Table1(cfg)
		}
		bench.WriteTable1(os.Stdout, rows)
	}

	runTable2 := func() {
		cfg := bench.DefaultTable2Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		bench.WriteTable2(os.Stdout, bench.Table2(cfg))
	}

	runTable3 := func() {
		cfg := bench.DefaultTable3Config()
		cfg.Seed = *seed
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		bench.WriteTable3(os.Stdout, bench.Table3(cfg))
	}

	runLogPipeline := func() {
		cfg := bench.DefaultLogPipelineConfig()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.OpsPerThread = *ops
		}
		if *window > 0 {
			cfg.Window = *window
		}
		bench.WriteLogPipeline(os.Stdout, cfg, bench.LogPipeline(cfg))
	}

	switch *table {
	case "1":
		runTable1()
	case "2":
		runTable2()
	case "3":
		runTable3()
	case "log":
		runLogPipeline()
	case "all":
		runTable1()
		fmt.Println()
		runTable2()
		fmt.Println()
		runTable3()
		fmt.Println()
		runLogPipeline()
	default:
		fmt.Fprintf(os.Stderr, "vyrdbench: unknown table %q (1, 2, 3, log or all)\n", *table)
		os.Exit(2)
	}
}
