package vyrd

import "repro/internal/ltl"

// PropSet is a parsed set of temporal (LTL3) properties over log entries;
// see internal/ltl for the property language. A set is checked by the
// temporal engine, the third verdict engine next to refinement and
// linearizability:
//
//	set, err := vyrd.ParseProps("no-rev: !F {kind=write, method=lock-acq, arg0=1}")
//	wait := log.StartEntryChecker(vyrd.NewTemporalChecker(set, true))
type PropSet = ltl.Set

// ParseProps parses a property document: one "name: formula" per line,
// '#' comments, blank lines ignored, bare formulas auto-named.
func ParseProps(src string) (*PropSet, error) { return ltl.ParseProps(src) }

// NewTemporalChecker builds the streaming temporal checker over the set:
// an EntryChecker for Log.StartEntryChecker or any cursor driver. With
// failFast the checker stops at the first refuted property.
func NewTemporalChecker(s *PropSet, failFast bool) EntryChecker {
	return ltl.NewChecker(s, ltl.WithFailFast(failFast))
}

// CheckTemporal offline-checks a recorded trace against the property set.
func CheckTemporal(s *PropSet, entries []Entry) *Report {
	return ltl.CheckEntries(s, entries)
}
