package vyrd_test

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/view"
	"repro/vyrd"
)

// counterSpec is a minimal executable specification for the examples: a
// single shared counter with Add (mutator) and Get (observer).
type counterSpec struct {
	n     int
	table *view.Table
}

func newCounterSpec() *counterSpec {
	s := &counterSpec{}
	s.Reset()
	return s
}

func (s *counterSpec) Reset() {
	s.n = 0
	s.table = view.NewTable()
	s.table.Set("n", "0")
}

func (s *counterSpec) View() *view.Table       { return s.table }
func (s *counterSpec) IsMutator(m string) bool { return m == "Add" }
func (s *counterSpec) apply(delta int)         { s.n += delta; s.table.Set("n", strconv.Itoa(s.n)) }

func (s *counterSpec) ApplyMutator(m string, args []event.Value, ret event.Value) error {
	if m != "Add" || len(args) != 1 {
		return fmt.Errorf("unknown mutator %s%v", m, args)
	}
	if ret != nil {
		return fmt.Errorf("Add returns nothing")
	}
	s.apply(event.MustInt(args[0]))
	return nil
}

func (s *counterSpec) CheckObserver(m string, args []event.Value, ret event.Value) bool {
	got, ok := event.Int(ret)
	return m == "Get" && ok && got == s.n
}

// counterReplayer reconstructs the counter from "add" writes.
type counterReplayer struct {
	n     int
	table *view.Table
}

func newCounterReplayer() *counterReplayer {
	r := &counterReplayer{}
	r.Reset()
	return r
}

func (r *counterReplayer) Reset() {
	r.n = 0
	r.table = view.NewTable()
	r.table.Set("n", "0")
}

func (r *counterReplayer) View() *view.Table { return r.table }
func (r *counterReplayer) Invariants() error { return nil }

func (r *counterReplayer) Apply(op string, args []event.Value) error {
	if op != "add" || len(args) != 1 {
		return fmt.Errorf("unknown op %s%v", op, args)
	}
	r.n += event.MustInt(args[0])
	r.table.Set("n", strconv.Itoa(r.n))
	return nil
}

var (
	_ core.Spec     = (*counterSpec)(nil)
	_ core.Replayer = (*counterReplayer)(nil)
)

// Example records a tiny instrumented execution and checks it with I/O
// refinement.
func Example() {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()

	inv := p.Call("Add", 2)
	inv.Commit("added")
	inv.Return(nil)

	inv = p.Call("Get")
	inv.Return(2)

	log.Close()
	report, err := vyrd.Check(log, newCounterSpec())
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Ok())
	// Output: true
}

// ExampleCheck_violation shows a refinement violation: the observer claims
// a value the witness interleaving cannot produce.
func ExampleCheck_violation() {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()

	inv := p.Call("Add", 2)
	inv.Commit("added")
	inv.Return(nil)

	inv = p.Call("Get")
	inv.Return(5) // the counter is 2; no state in the window yields 5

	log.Close()
	report, _ := vyrd.Check(log, newCounterSpec())
	fmt.Println(report.Ok(), report.First().Kind)
	// Output: false observer
}

// ExampleWithReplayer checks view refinement: the committed write must
// reproduce the specification's state transition in the replica.
func ExampleWithReplayer() {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()

	inv := p.Call("Add", 2)
	inv.CommitWrite("added", "add", 2) // commit + its write, atomically
	inv.Return(nil)

	// A corrupted execution would log a different write, e.g. "add", 3 —
	// view refinement flags it at this very commit.
	log.Close()
	report, err := vyrd.Check(log, newCounterSpec(), vyrd.WithReplayer(newCounterReplayer()))
	if err != nil {
		panic(err)
	}
	fmt.Println(report.Ok(), report.ViewsCompared)
	// Output: true 1
}

// ExampleLog_startChecker runs the verification thread online, concurrently
// with the instrumented execution, as the paper's architecture does.
func ExampleLog_startChecker() {
	log := vyrd.NewLog(vyrd.LevelView)
	wait, err := log.StartChecker(newCounterSpec(), vyrd.WithReplayer(newCounterReplayer()))
	if err != nil {
		panic(err)
	}

	p := log.NewProbe()
	for i := 0; i < 3; i++ {
		inv := p.Call("Add", 1)
		inv.CommitWrite("added", "add", 1)
		inv.Return(nil)
	}
	log.Close()

	report := wait()
	fmt.Println(report.Ok(), report.CommitsApplied)
	// Output: true 3
}

// ExampleInvocation_beginCommitBlock groups several writes into a commit
// block that the checker applies atomically at the commit action.
func ExampleInvocation_beginCommitBlock() {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()

	inv := p.Call("Add", 5)
	inv.BeginCommitBlock()
	p.Write("add", 2)
	p.Write("add", 3)
	inv.Commit("added-in-two-steps")
	inv.EndCommitBlock()
	inv.Return(nil)

	log.Close()
	report, _ := vyrd.Check(log, newCounterSpec(), vyrd.WithReplayer(newCounterReplayer()))
	fmt.Println(report.Ok())
	// Output: true
}
