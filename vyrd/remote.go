package vyrd

import (
	"repro/internal/remote"
)

// Remote verification: ship the execution log to a vyrdd server instead of
// (or in addition to) checking in-process. The sink attaches at the same
// seam as file persistence, so instrumented code does not change — only
// the place the verdict comes from does.

// RemoteOptions configures AttachRemote (see remote.ClientOptions; the
// handshake fields are surfaced directly).
type RemoteOptions struct {
	// Addr is the vyrdd server, "host:port".
	Addr string
	// Spec names the registered specification to check against.
	Spec string
	// Mode is "io", "view", "linearize", "ltl", or "" for the server-side
	// default.
	Mode string
	// Props carries the property sources for Mode "ltl", one
	// "name: formula" line per element; empty selects the spec's built-in
	// property set on the server.
	Props []string
	// FailFast stops the remote checker at the first violation.
	FailFast bool
	// Modular runs the spec's module fan-out instead of a single checker.
	Modular bool
	// Window bounds the client's resend buffer in entries (0 = default).
	// Once the window fills with unacknowledged entries, shipping blocks,
	// which chains into the log's own backpressure.
	Window int
	// Logf, when non-nil, receives connection-level events.
	Logf func(format string, args ...any)
}

// RemoteSink ships a log's entries to a vyrdd verification server. It is
// bounded (never buffers more than Window entries), survives connection
// drops (reconnect with exponential backoff, lossless resume), and
// delivers the server's verdict after Log.Close.
type RemoteSink struct {
	c *remote.Client
}

// RemoteStats is a snapshot of the shipping client's counters.
type RemoteStats = remote.ClientStats

// RemoteVerdict is the server's final answer for a session.
type RemoteVerdict = remote.Verdict

// AttachRemote connects this log to a vyrdd server: every entry (including
// those already appended and still retained) is shipped to a fresh
// server-side checker session. Close drains the stream, sends the
// end-of-log marker and waits for the verdict, which Verdict then returns.
func (l *Log) AttachRemote(opts RemoteOptions) (*RemoteSink, error) {
	c, err := remote.NewClient(remote.ClientOptions{
		Addr: opts.Addr,
		Hello: remote.Hello{
			Spec:     opts.Spec,
			Mode:     opts.Mode,
			Props:    opts.Props,
			FailFast: opts.FailFast,
			Modular:  opts.Modular,
		},
		Window: opts.Window,
		Logf:   opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	if err := l.wal.AttachEntrySink(c); err != nil {
		c.Close()
		return nil, err
	}
	return &RemoteSink{c: c}, nil
}

// Verdict returns the server's verdict, available after Log.Close has
// returned (nil if the stream failed first — see the log's SinkErr).
func (s *RemoteSink) Verdict() *RemoteVerdict { return s.c.Verdict() }

// Stats snapshots the shipping counters (entries sent/acked, buffered and
// peak-buffered, reconnects).
func (s *RemoteSink) Stats() RemoteStats { return s.c.Stats() }

// Err returns the client's terminal failure, if any.
func (s *RemoteSink) Err() error { return s.c.Err() }
