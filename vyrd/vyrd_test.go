package vyrd_test

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

func TestNilProbeIsNoOp(t *testing.T) {
	var p *vyrd.Probe
	inv := p.Call("Insert", 1)
	p.Write("op", 1)
	inv.Commit("label")
	inv.CommitWrite("label", "op", 1)
	inv.BeginCommitBlock()
	inv.EndCommitBlock()
	inv.Return(true)
	if p.Tid() != 0 {
		t.Fatal("nil probe has a tid")
	}
}

func TestLevelOffRecordsNothing(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelOff)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	p.Write("op", 1)
	inv.Commit("x")
	inv.Return(true)
	if log.Len() != 0 {
		t.Fatalf("LevelOff recorded %d entries", log.Len())
	}
}

func TestLevelIODropsWrites(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	p.Write("op", 1)           // dropped
	inv.BeginCommitBlock()     // dropped
	inv.CommitWrite("x", "op") // commit kept, write payload dropped
	inv.EndCommitBlock()       // dropped
	inv.Return(true)
	entries := log.Snapshot()
	if len(entries) != 3 {
		t.Fatalf("LevelIO recorded %d entries: %v", len(entries), entries)
	}
	if entries[1].WOp != "" {
		t.Fatal("LevelIO kept the commit-write payload")
	}
}

func TestLevelViewRecordsEverything(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	inv.BeginCommitBlock()
	p.Write("op", 1)
	inv.Commit("x")
	inv.EndCommitBlock()
	inv.Return(true)
	if log.Len() != 6 {
		t.Fatalf("LevelView recorded %d entries", log.Len())
	}
}

func TestProbesGetDistinctTids(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	w := log.NewWorkerProbe()
	if p1.Tid() == p2.Tid() || p1.Tid() == w.Tid() {
		t.Fatal("duplicate tids")
	}
	inv := w.Call("Compress")
	inv.Commit("x")
	inv.Return(nil)
	for _, e := range log.Snapshot() {
		if !e.Worker {
			t.Fatal("worker probe entries not marked")
		}
	}
}

func TestEndToEndRoundTripThroughFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	inv := p.Call("Insert", 3)
	inv.Commit("done")
	inv.Return(true)
	inv = p.Call("LookUp", 3)
	inv.Return(true)
	log.Close()

	rep, err := vyrd.Check(log, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() || rep.MethodsCompleted != 2 {
		t.Fatalf("report: %s", rep)
	}
}

func TestOnlineCheckerViaFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	wait, err := log.StartChecker(spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		t.Fatal(err)
	}
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	inv.Commit("x")
	inv.Return(true)
	log.Close()
	rep := wait()
	if !rep.Ok() || rep.CommitsApplied != 1 {
		t.Fatalf("online report: %s", rep)
	}
}

func TestPersistAndReload(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	var buf bytes.Buffer
	if err := log.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	p := log.NewProbe()
	inv := p.Call("Insert", 5)
	inv.Commit("x")
	inv.Return(true)
	log.Close()
	if err := log.SinkErr(); err != nil {
		t.Fatal(err)
	}

	entries, err := vyrd.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := vyrd.CheckEntries(entries, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("reloaded trace: %s", rep)
	}
}

func TestViolationSurfacesThroughFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()
	inv := p.Call("Delete", 9)
	inv.Commit("x")
	inv.Return(true) // claims removal of an element never inserted
	log.Close()
	rep, err := vyrd.Check(log, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || rep.First().Kind != vyrd.ViolationIO {
		t.Fatalf("report: %s", rep)
	}
}

// TestPersistedFig6Artifact loads the committed trace artifact — the
// Fig. 6 buggy-FindSlot execution recorded through a log sink — and checks
// it offline in both modes: view refinement catches the lost element at
// the overwriting commit, and the trailing LookUp(5) exposes it to I/O
// refinement too. Guards the persistence format against drift.
func TestPersistedFig6Artifact(t *testing.T) {
	f, err := os.Open("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty artifact")
	}

	ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		t.Fatal(err)
	}
	if ioRep.Ok() || ioRep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("I/O check of the artifact: %s", ioRep)
	}

	viewRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()), vyrd.WithDiagnostics(true))
	if err != nil {
		t.Fatal(err)
	}
	if viewRep.Ok() || viewRep.First().Kind != vyrd.ViolationView {
		t.Fatalf("view check of the artifact: %s", viewRep)
	}
	// View detection precedes I/O detection in the witness, as the paper's
	// Fig. 6 discussion describes.
	if viewRep.First().MethodsCompleted > ioRep.First().MethodsCompleted {
		t.Fatalf("view detected later than I/O: %d vs %d",
			viewRep.First().MethodsCompleted, ioRep.First().MethodsCompleted)
	}
}

// TestGoldenV1GobArtifact pins the version-1 migration story: the committed
// gob-format Fig. 6 trace must be rejected by the default (binary, version
// 2) reader with an explicit format-version mismatch, and must still decode
// under CodecGob to the same verdicts as the current artifact.
func TestGoldenV1GobArtifact(t *testing.T) {
	data, err := os.ReadFile("testdata/fig6_v1_gob.log")
	if err != nil {
		t.Fatal(err)
	}

	// The default reader refuses the old stream loudly, not with a garbled
	// decode somewhere mid-file.
	_, err = vyrd.ReadLog(bytes.NewReader(data))
	if !errors.Is(err, vyrd.ErrLogFormatMismatch) {
		t.Fatalf("v1 artifact under the v2 reader: got %v, want ErrLogFormatMismatch", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("mismatch error does not mention the version: %v", err)
	}

	// Explicit gob decoding still reads it, and the trace means the same
	// thing it did when written: view refinement flags the lost element.
	entries, err := vyrd.ReadLogCodec(bytes.NewReader(data), vyrd.CodecGob)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty artifact")
	}
	rep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("view check of the v1 artifact: %s", rep)
	}

	// Same verdicts as the current (version 2) artifact of the same run.
	f, err := os.Open("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v2, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	v2Rep, err := vyrd.CheckEntries(v2, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() != v2Rep.Ok() || rep.TotalViolations != v2Rep.TotalViolations ||
		rep.First().MethodsCompleted != v2Rep.First().MethodsCompleted {
		t.Fatalf("v1/v2 artifacts disagree:\nv1: %s\nv2: %s", rep, v2Rep)
	}
}
