package vyrd_test

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/harness"
	"repro/internal/linearize"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

func TestNilProbeIsNoOp(t *testing.T) {
	var p *vyrd.Probe
	inv := p.Call("Insert", 1)
	p.Write("op", 1)
	inv.Commit("label")
	inv.CommitWrite("label", "op", 1)
	inv.BeginCommitBlock()
	inv.EndCommitBlock()
	inv.Return(true)
	if p.Tid() != 0 {
		t.Fatal("nil probe has a tid")
	}
}

func TestLevelOffRecordsNothing(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelOff)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	p.Write("op", 1)
	inv.Commit("x")
	inv.Return(true)
	if log.Len() != 0 {
		t.Fatalf("LevelOff recorded %d entries", log.Len())
	}
}

func TestLevelIODropsWrites(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	p.Write("op", 1)           // dropped
	inv.BeginCommitBlock()     // dropped
	inv.CommitWrite("x", "op") // commit kept, write payload dropped
	inv.EndCommitBlock()       // dropped
	inv.Return(true)
	entries := log.Snapshot()
	if len(entries) != 3 {
		t.Fatalf("LevelIO recorded %d entries: %v", len(entries), entries)
	}
	if entries[1].WOp != "" {
		t.Fatal("LevelIO kept the commit-write payload")
	}
}

func TestLevelViewRecordsEverything(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	inv.BeginCommitBlock()
	p.Write("op", 1)
	inv.Commit("x")
	inv.EndCommitBlock()
	inv.Return(true)
	if log.Len() != 6 {
		t.Fatalf("LevelView recorded %d entries", log.Len())
	}
}

func TestProbesGetDistinctTids(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	w := log.NewWorkerProbe()
	if p1.Tid() == p2.Tid() || p1.Tid() == w.Tid() {
		t.Fatal("duplicate tids")
	}
	inv := w.Call("Compress")
	inv.Commit("x")
	inv.Return(nil)
	for _, e := range log.Snapshot() {
		if !e.Worker {
			t.Fatal("worker probe entries not marked")
		}
	}
}

func TestEndToEndRoundTripThroughFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	inv := p.Call("Insert", 3)
	inv.Commit("done")
	inv.Return(true)
	inv = p.Call("LookUp", 3)
	inv.Return(true)
	log.Close()

	rep, err := vyrd.Check(log, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() || rep.MethodsCompleted != 2 {
		t.Fatalf("report: %s", rep)
	}
}

func TestOnlineCheckerViaFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	wait, err := log.StartChecker(spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		t.Fatal(err)
	}
	p := log.NewProbe()
	inv := p.Call("Insert", 1)
	inv.Commit("x")
	inv.Return(true)
	log.Close()
	rep := wait()
	if !rep.Ok() || rep.CommitsApplied != 1 {
		t.Fatalf("online report: %s", rep)
	}
}

func TestPersistAndReload(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	var buf bytes.Buffer
	if err := log.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	p := log.NewProbe()
	inv := p.Call("Insert", 5)
	inv.Commit("x")
	inv.Return(true)
	log.Close()
	if err := log.SinkErr(); err != nil {
		t.Fatal(err)
	}

	entries, err := vyrd.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := vyrd.CheckEntries(entries, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("reloaded trace: %s", rep)
	}
}

func TestViolationSurfacesThroughFacade(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelIO)
	p := log.NewProbe()
	inv := p.Call("Delete", 9)
	inv.Commit("x")
	inv.Return(true) // claims removal of an element never inserted
	log.Close()
	rep, err := vyrd.Check(log, spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || rep.First().Kind != vyrd.ViolationIO {
		t.Fatalf("report: %s", rep)
	}
}

// TestPersistedFig6Artifact loads the committed trace artifact — the
// Fig. 6 buggy-FindSlot execution recorded through a log sink — and checks
// it offline in both modes: view refinement catches the lost element at
// the overwriting commit, and the trailing LookUp(5) exposes it to I/O
// refinement too. Guards the persistence format against drift.
func TestPersistedFig6Artifact(t *testing.T) {
	f, err := os.Open("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty artifact")
	}

	ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		t.Fatal(err)
	}
	if ioRep.Ok() || ioRep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("I/O check of the artifact: %s", ioRep)
	}

	viewRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()), vyrd.WithDiagnostics(true))
	if err != nil {
		t.Fatal(err)
	}
	if viewRep.Ok() || viewRep.First().Kind != vyrd.ViolationView {
		t.Fatalf("view check of the artifact: %s", viewRep)
	}
	// View detection precedes I/O detection in the witness, as the paper's
	// Fig. 6 discussion describes.
	if viewRep.First().MethodsCompleted > ioRep.First().MethodsCompleted {
		t.Fatalf("view detected later than I/O: %d vs %d",
			viewRep.First().MethodsCompleted, ioRep.First().MethodsCompleted)
	}
}

// TestPersistedNoCommitArtifact loads the committed annotation-free trace
// (correct multiset, call/return-only instrumentation — no commit actions)
// and pins the verdict split that motivates the linearizability engine:
// refinement rejects the log as an instrumentation violation, because it
// fundamentally needs the commit annotations the subject does not have,
// while the linearizability check verifies the same log from call/return
// behavior alone.
func TestPersistedNoCommitArtifact(t *testing.T) {
	f, err := os.Open("testdata/fig6_nocommit.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty artifact")
	}
	for _, e := range entries {
		if e.Kind != event.KindCall && e.Kind != event.KindReturn {
			t.Fatalf("annotation-free artifact contains a %v entry at #%d", e.Kind, e.Seq)
		}
	}

	ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
	if err != nil {
		t.Fatal(err)
	}
	if ioRep.Ok() || ioRep.First().Kind != vyrd.ViolationInstrumentation {
		t.Fatalf("refinement should reject the annotation-free log as an instrumentation violation:\n%s", ioRep)
	}

	linRep := linearize.CheckEntries(entries, linearize.MultisetSpec(), linearize.Options{})
	if !linRep.Ok() {
		t.Fatalf("linearizability check rejected the annotation-free artifact:\n%s", linRep)
	}
	if linRep.Mode != vyrd.ModeLinearize {
		t.Fatalf("linearize report in mode %s", linRep.Mode)
	}
}

// TestNoCommitSubjectLiveRun verifies an annotation-free subject
// end-to-end from a live concurrent run: the harness drives the NoCommit
// multiset wrapper (implementation uninstrumented, probes logging only
// calls and returns), refinement rejects the resulting log, and the
// linearizability engine verifies it.
func TestNoCommitSubjectLiveRun(t *testing.T) {
	target := multiset.NoCommitTarget(32, multiset.BugNone)
	for seed := int64(1); seed <= 3; seed++ {
		res := harness.Run(target, harness.Config{
			Threads: 3, OpsPerThread: 25, KeyPool: 8, Shrink: true,
			Seed: seed, Level: vyrd.LevelIO,
		})
		entries := res.Log.Snapshot()
		ioRep, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO))
		if err != nil {
			t.Fatal(err)
		}
		if ioRep.Ok() {
			t.Fatalf("seed %d: refinement accepted a commit-free log", seed)
		}
		linRep := linearize.CheckEntries(entries, linearize.MultisetSpec(),
			linearize.Options{MaxStates: 5_000_000})
		if linRep.LogErr != "" {
			t.Fatalf("seed %d: linearize gave up: %s", seed, linRep.LogErr)
		}
		if !linRep.Ok() {
			t.Fatalf("seed %d: linearizability rejected a correct annotation-free run:\n%s", seed, linRep)
		}
	}
}

// TestGoldenV1GobArtifact pins the version-1 migration story: the committed
// gob-format Fig. 6 trace must be rejected by the default (binary, version
// 2) reader with an explicit format-version mismatch, and must still decode
// under CodecGob to the same verdicts as the current artifact.
func TestGoldenV1GobArtifact(t *testing.T) {
	data, err := os.ReadFile("testdata/fig6_v1_gob.log")
	if err != nil {
		t.Fatal(err)
	}

	// The default reader refuses the old stream loudly, not with a garbled
	// decode somewhere mid-file.
	_, err = vyrd.ReadLog(bytes.NewReader(data))
	if !errors.Is(err, vyrd.ErrLogFormatMismatch) {
		t.Fatalf("v1 artifact under the v2 reader: got %v, want ErrLogFormatMismatch", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("mismatch error does not mention the version: %v", err)
	}

	// Explicit gob decoding still reads it, and the trace means the same
	// thing it did when written: view refinement flags the lost element.
	entries, err := vyrd.ReadLogCodec(bytes.NewReader(data), vyrd.CodecGob)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty artifact")
	}
	rep, err := vyrd.CheckEntries(entries, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("view check of the v1 artifact: %s", rep)
	}

	// Same verdicts as the current (version 2) artifact of the same run.
	f, err := os.Open("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v2, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	v2Rep, err := vyrd.CheckEntries(v2, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() != v2Rep.Ok() || rep.TotalViolations != v2Rep.TotalViolations ||
		rep.First().MethodsCompleted != v2Rep.First().MethodsCompleted {
		t.Fatalf("v1/v2 artifacts disagree:\nv1: %s\nv2: %s", rep, v2Rep)
	}
}

// TestGoldenV2Artifact pins the version-2 migration story: the frozen
// FormatVersion-2 artifact (framed binary, written before per-frame
// checksums) must keep decoding under the current reader — sequential and
// parallel — to the same entries as the regenerated version-3 artifact,
// and the recovery scanner must call it clean.
func TestGoldenV2Artifact(t *testing.T) {
	data, err := os.ReadFile("testdata/fig6_v2.log")
	if err != nil {
		t.Fatal(err)
	}
	if got := data[len("VYRDLOG")]; got != 2 {
		t.Fatalf("artifact header declares version %d, the frozen file must stay version 2", got)
	}

	entries, err := vyrd.ReadLog(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v2 artifact under the current reader: %v", err)
	}
	par, err := vyrd.ReadLogParallel(bytes.NewReader(data), 4)
	if err != nil || len(par) != len(entries) {
		t.Fatalf("parallel read of the v2 artifact: %d entries, %v", len(par), err)
	}

	f, err := os.Open("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cur, err := vyrd.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cur) {
		t.Fatalf("v2 artifact has %d entries, current %d", len(entries), len(cur))
	}
	for i := range entries {
		a, b := entries[i], cur[i]
		if a.Seq != b.Seq || a.Tid != b.Tid || a.Kind != b.Kind || a.Method != b.Method {
			t.Fatalf("entry %d differs between v2 and v3 artifacts:\n%+v\n%+v", i, a, b)
		}
	}

	// Recovery scans v2 streams too (no checksums, but framing and sequence
	// contiguity): the artifact is fully valid.
	_, rep, err := vyrd.RecoverLogReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.FormatVersion != 2 || rep.BytesKept != int64(len(data)) ||
		rep.LastSeq != int64(len(entries)) {
		t.Fatalf("recovery scan of the clean v2 artifact: %s", rep)
	}
}

// TestGoldenV3CorruptArtifact pins recovery behavior byte-for-byte: the
// committed artifact is fig6.log with byte 120 XORed (see the go:generate
// line), so the default reader must refuse it with a checksum error and
// recovery must report exactly the frames before the damage.
func TestGoldenV3CorruptArtifact(t *testing.T) {
	data, err := os.ReadFile("testdata/fig6_v3_corrupt.log")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := vyrd.ReadLog(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted artifact under the default reader: %v, want a checksum error", err)
	}

	entries, rep, err := vyrd.RecoverLogReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := vyrd.RecoveryReport{
		FormatVersion:  3,
		FramesKept:     5,
		SyncMarkers:    0,
		LastSeq:        5,
		BytesKept:      114,
		BytesDropped:   307,
		FirstBadOffset: 114,
		Truncated:      false, // RecoverLogReader never repairs in place
	}
	if rep != want {
		t.Fatalf("recovery report drifted:\ngot  %+v\nwant %+v", rep, want)
	}
	if len(entries) != 5 {
		t.Fatalf("recovered %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Seq != int64(i+1) {
			t.Fatalf("recovered entry %d has seq %d", i, e.Seq)
		}
	}

	// The kept prefix is bytes the clean artifact also starts with, and the
	// recovered entries remain checkable.
	clean, err := os.ReadFile("testdata/fig6.log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:rep.BytesKept], clean[:rep.BytesKept]) {
		t.Fatal("recovered prefix differs from the clean artifact's prefix")
	}
	if _, err := vyrd.CheckEntries(entries, spec.NewMultiset(), vyrd.WithMode(vyrd.ModeIO)); err != nil {
		t.Fatalf("checking the recovered prefix: %v", err)
	}
}
