// Package vyrd is the public API of the VYRD runtime refinement checker
// (Elmas, Tasiran, Qadeer: "VYRD: VerifYing Concurrent Programs by Runtime
// Refinement-Violation Detection", PLDI 2005).
//
// VYRD checks, at runtime, that a concurrently-accessed data structure
// implementation refines a method-atomic executable specification. Use is in
// two phases:
//
//  1. Instrument the implementation. Create a Log, give each goroutine its
//     own Probe, and bracket every public method execution with
//     Probe.Call/Invocation.Return. Annotate exactly one commit action per
//     mutator execution (Invocation.Commit or Invocation.CommitWrite), and,
//     for view refinement, log the writes in the support of viewI
//     (Probe.Write inside Invocation.BeginCommitBlock/EndCommitBlock where
//     a group of writes must be treated as atomic).
//  2. Check the log. Construct a Checker over a Spec (and, for view
//     refinement, a Replayer) and either run it online on a verification
//     goroutine (Checker.Run on a Log cursor) or offline over a snapshot or
//     persisted file (Check / CheckEntries).
//
// A minimal round trip:
//
//	log := vyrd.NewLog(vyrd.LevelView)
//	p := log.NewProbe()          // one per goroutine
//	inv := p.Call("Insert", x)
//	// ... implementation work ...
//	inv.CommitWrite("inserted", "set-valid", slot)  // the commit action
//	inv.Return(true)
//	log.Close()
//	report, err := vyrd.Check(log, spec, vyrd.WithReplayer(replayer))
//
// Probes are nil-safe and level-aware: a nil *Probe, or a log constructed
// with LevelOff, makes every instrumentation call a no-op, so the same
// implementation code serves both instrumented and bare execution (the
// "program alone" baselines of the paper's Tables 2 and 3).
package vyrd

// The committed testdata/fig6.log artifact pins the persisted log format;
// regenerate it whenever the wire shape of event.Entry (and so
// LogFormatVersion) changes. The corrupted variant pins crash recovery's
// report byte-for-byte (fig6_v2.log and fig6_v1_gob.log are frozen
// old-version artifacts; they are never regenerated).
//go:generate go run repro/cmd/genfig6 -o testdata/fig6.log
//go:generate go run repro/cmd/genfig6 -o testdata/fig6_v3_corrupt.log -corrupt-at 120 -corrupt-xor 0x41
//go:generate go run repro/cmd/genfig6 -nocommit -o testdata/fig6_nocommit.log

import (
	"io"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/view"
	"repro/internal/wal"
)

// Re-exported core vocabulary. These are aliases, so values flow freely
// between the facade and the internal packages.
type (
	// Spec is an executable, method-atomic, deterministic specification.
	Spec = core.Spec
	// Replayer reconstructs implementation state from logged writes.
	Replayer = core.Replayer
	// Checker is the refinement verification engine.
	Checker = core.Checker
	// EntryChecker is the minimal streaming-verdict surface every engine
	// implements (the refinement Checker and the linearizability checker);
	// Log.StartEntryChecker and the modular fan-out drive it.
	EntryChecker = core.EntryChecker
	// Report summarizes one checking run.
	Report = core.Report
	// Violation describes one detected refinement violation.
	Violation = core.Violation
	// ViolationKind classifies a violation.
	ViolationKind = core.ViolationKind
	// Mode selects the refinement notion (ModeIO or ModeView).
	Mode = core.Mode
	// Option configures a Checker.
	Option = core.Option
	// Entry is one logged action.
	Entry = event.Entry
	// Value is a logged argument, return value or written datum.
	Value = event.Value
	// Access classifies what one scheduling step touches, for DPOR
	// schedule exploration (see Probe.SetAccessYield).
	Access = event.Access
	// Exceptional models exceptional method termination as a return value.
	Exceptional = event.Exceptional
	// Level selects how much of the execution is recorded.
	Level = wal.Level
	// Table is a view digest table (viewI / viewS).
	Table = view.Table
	// Codec selects a persisted stream encoding (CodecBinary/CodecGob).
	Codec = event.Codec
	// Module is one verified module of a modular (Fig. 10) check.
	Module = core.Module
	// ModuleReport pairs a module's name with its checking report.
	ModuleReport = core.ModuleReport
)

// Violation kinds.
const (
	ViolationIO              = core.ViolationIO
	ViolationObserver        = core.ViolationObserver
	ViolationView            = core.ViolationView
	ViolationInvariant       = core.ViolationInvariant
	ViolationInstrumentation = core.ViolationInstrumentation
	// ViolationLinearizability is reported by the linearizability engine
	// (internal/linearize): no serialization of the completed executions
	// matches their return values.
	ViolationLinearizability = core.ViolationLinearizability
	// ViolationTemporal is reported by the temporal engine (internal/ltl):
	// an LTL3 property over the log collapsed to false.
	ViolationTemporal = core.ViolationTemporal
)

// Refinement modes.
const (
	ModeIO   = core.ModeIO
	ModeView = core.ModeView
	// ModeLinearize labels reports of the linearizability engine; the
	// refinement Checker itself rejects it.
	ModeLinearize = core.ModeLinearize
	// ModeLTL labels reports of the temporal engine; the refinement
	// Checker itself rejects it.
	ModeLTL = core.ModeLTL
)

// Logging levels.
const (
	LevelOff  = wal.LevelOff
	LevelIO   = wal.LevelIO
	LevelView = wal.LevelView
)

// Stream codecs.
const (
	CodecBinary = event.CodecBinary
	CodecGob    = event.CodecGob
	// CodecBinaryV2 is the pre-checksum framed encoding (format version 2),
	// kept for measuring the checksum overhead and reading old artifacts.
	CodecBinaryV2 = event.CodecBinaryV2
)

// Checker options.
var (
	WithMode              = core.WithMode
	WithReplayer          = core.WithReplayer
	WithFailFast          = core.WithFailFast
	WithMaxViolations     = core.WithMaxViolations
	WithDiagnostics       = core.WithDiagnostics
	WithQuiescentViewOnly = core.WithQuiescentViewOnly
)

// NewTable returns an empty view digest table.
func NewTable() *Table { return view.NewTable() }

// NewChecker constructs a refinement checker over spec.
func NewChecker(spec Spec, opts ...Option) (*Checker, error) {
	return core.New(spec, opts...)
}

// Check verifies a quiesced or closed log offline and returns the report.
func Check(l *Log, spec Spec, opts ...Option) (*Report, error) {
	return core.CheckEntries(l.wal.Snapshot(), spec, opts...)
}

// CheckEntries verifies a recorded entry sequence offline.
func CheckEntries(entries []Entry, spec Spec, opts ...Option) (*Report, error) {
	return core.CheckEntries(entries, spec, opts...)
}

// CheckEntriesMulti verifies a recorded entry sequence through the modular
// fan-out: one Checker per module, each fed the projection of the log its
// filter (by default, its module tag) selects, running concurrently.
func CheckEntriesMulti(entries []Entry, mods ...Module) ([]ModuleReport, error) {
	return core.CheckEntriesMulti(entries, mods...)
}

// CheckStream verifies a persisted binary-format log stream offline with a
// parallel decode pool feeding the sequential checker (workers <= 0 uses
// GOMAXPROCS).
func CheckStream(r io.Reader, workers int, spec Spec, opts ...Option) (*Report, error) {
	return core.CheckStream(r, workers, spec, opts...)
}

// ReadLog decodes a persisted log stream (written via Log.AttachSink).
func ReadLog(r io.Reader) ([]Entry, error) { return wal.ReadFile(r) }

// ReadLogCodec decodes a persisted log stream written with the given
// codec. Version-1 artifacts (written before LogFormatVersion 2) are gob
// streams: read them with vyrd.CodecGob.
func ReadLogCodec(r io.Reader, c Codec) ([]Entry, error) { return wal.ReadFileCodec(r, c) }

// ReadLogParallel decodes a binary-format log stream with a parallel
// decode pool, preserving log order (workers <= 0 uses GOMAXPROCS).
func ReadLogParallel(r io.Reader, workers int) ([]Entry, error) {
	return wal.ReadFileParallel(r, workers)
}

// RecoveryReport describes the outcome of recovering a torn log file.
type RecoveryReport = wal.RecoveryReport

// CrashFile is the file surface log recovery needs (read + truncate);
// *os.File satisfies it.
type CrashFile = wal.CrashFile

// RecoverLog scans a crashed producer's log file for its longest valid
// prefix, truncates the torn tail in place, and returns the recovered
// entries. The repaired file is a valid stream every reader accepts; the
// entries are a true prefix of the crashed run's history, so checking them
// (CheckEntries, or CheckStream over the repaired file) yields a verdict
// about the run up to the crash.
func RecoverLog(f CrashFile) ([]Entry, RecoveryReport, error) { return wal.Recover(f) }

// RecoverLogReader scans a log stream that cannot be repaired in place
// (stdin, a pipe): same report, no truncation.
func RecoverLogReader(r io.Reader) ([]Entry, RecoveryReport, error) {
	return wal.RecoverReader(r)
}

// WitnessEntry is one method execution positioned in the witness
// interleaving (Section 4.1's debugging view).
type WitnessEntry = core.WitnessEntry

// Witness extracts the witness interleaving of a recorded trace: the
// method executions serialized in commit-action order.
func Witness(entries []Entry) []WitnessEntry { return core.Witness(entries) }

// WriteWitness renders the witness interleaving next to the implementation
// trace spans — the paper's Section 4.1 workflow for debugging commit-point
// selection.
func WriteWitness(w io.Writer, entries []Entry) { core.WriteWitness(w, entries) }

// RegisterValue registers a concrete value type for log persistence.
func RegisterValue(v Value) { event.RegisterValue(v) }
