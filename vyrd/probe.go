package vyrd

import (
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// Log is the shared execution log of one instrumented run. It wraps the
// internal write-ahead log — single-counter or sharded per-core capture,
// depending on LogOptions.Shards — and is the factory for per-goroutine
// probes and for the verification thread's cursor.
type Log struct {
	wal wal.Backend
}

// LogOptions tunes the log's storage pipeline: segment size, consumed-prefix
// truncation, and the bounded-memory window (see wal.Options).
type LogOptions = wal.Options

// LogStats is a snapshot of the log's pipeline counters (see wal.Stats).
type LogStats = wal.Stats

// LogFormatVersion is the version of the persisted log stream format.
const LogFormatVersion = event.FormatVersion

// ErrLogFormatMismatch reports that a persisted stream is not a VYRD log of
// the version this build reads (detect with errors.Is).
var ErrLogFormatMismatch = event.ErrFormatMismatch

// NewLog returns an empty log recording at the given level.
func NewLog(level Level) *Log { return &Log{wal: wal.New(level)} }

// NewLogWith returns an empty log with explicit storage options, e.g. for
// bounded-memory online checking of long runs:
//
//	log := vyrd.NewLogWith(vyrd.LevelView, vyrd.LogOptions{Window: 1 << 16})
//
// Setting Shards > 1 selects sharded per-core capture: each probe appends
// into its own shard and readers consume a deterministic k-way merge, so
// append throughput scales with cores instead of serializing on a global
// sequence counter.
func NewLogWith(level Level, opts LogOptions) *Log {
	return &Log{wal: wal.Open(level, opts)}
}

// Level reports the recording level.
func (l *Log) Level() Level { return l.wal.Level() }

// Len reports the number of entries appended so far.
func (l *Log) Len() int { return l.wal.Len() }

// Close marks the execution complete; online checkers drain and stop, and
// an attached sink is drained and flushed before Close returns.
func (l *Log) Close() { l.wal.Close() }

// Snapshot copies the retained entries appended so far, for offline
// checking (the whole log unless truncation released a prefix).
func (l *Log) Snapshot() []Entry { return l.wal.Snapshot() }

// AttachSink persists every entry (including those already appended) to w
// through an asynchronous buffered pipeline; Close flushes it.
func (l *Log) AttachSink(w io.Writer) error { return l.wal.AttachSink(w) }

// SinkErr returns the first persistence failure, if any. It is final once
// Close has returned.
func (l *Log) SinkErr() error { return l.wal.SinkErr() }

// Stats returns a snapshot of the log's pipeline counters.
func (l *Log) Stats() LogStats { return l.wal.Stats() }

// NewProbe allocates a probe for an application thread (Tid_app). Each
// goroutine performing logged actions needs its own probe.
func (l *Log) NewProbe() *Probe {
	tid := l.wal.NewTid()
	p := &Probe{log: l.wal.AppenderFor(tid), tid: tid, level: l.wal.Level()}
	p.modKey, p.specVar = moduleKeys("")
	return p
}

// NewWorkerProbe allocates a probe for an internal data-structure worker
// thread (Tid_ds), e.g. a compression or flush daemon.
func (l *Log) NewWorkerProbe() *Probe {
	tid := l.wal.NewTid()
	p := &Probe{log: l.wal.AppenderFor(tid), tid: tid, level: l.wal.Level(), worker: true}
	p.modKey, p.specVar = moduleKeys("")
	return p
}

// StartChecker constructs a checker over spec and runs it on a fresh
// verification goroutine reading this log from the beginning (the paper's
// online architecture, Section 4.2). The returned function blocks until the
// log is closed and drained (or the fail-fast checker stops) and yields the
// final report.
func (l *Log) StartChecker(spec Spec, opts ...Option) (wait func() *Report, err error) {
	c, err := core.New(spec, opts...)
	if err != nil {
		return nil, err
	}
	done := make(chan *Report, 1)
	cur := l.wal.Reader()
	go func() { done <- c.Run(cur) }()
	return func() *Report { return <-done }, nil
}

// StartEntryChecker runs any streaming entry checker — notably the
// linearizability engine's (internal/linearize.NewChecker), which needs no
// commit annotations — on a fresh verification goroutine reading this log
// from the beginning. The returned function blocks until the log is closed
// and drained and yields the final report.
func (l *Log) StartEntryChecker(c EntryChecker) (wait func() *Report) {
	done := make(chan *Report, 1)
	cur := l.wal.Reader()
	go func() { done <- core.RunChecker(c, cur) }()
	return func() *Report { return <-done }
}

// StartMultiChecker runs a modular (Fig. 10) check online: one Checker per
// module on its own goroutine, all fed from a single cursor over this log
// by a router goroutine. The returned function blocks until the log is
// closed and every module has drained, and yields the per-module reports.
func (l *Log) StartMultiChecker(mods ...Module) (wait func() []ModuleReport, err error) {
	m, err := core.NewMulti(mods...)
	if err != nil {
		return nil, err
	}
	done := make(chan []ModuleReport, 1)
	cur := l.wal.Reader()
	go func() { done <- m.Run(cur) }()
	return func() []ModuleReport { return <-done }, nil
}

// Probe performs the logging for one thread. All methods are safe to call on
// a nil probe (no-ops), so implementations can run uninstrumented; they are
// not safe for concurrent use by multiple goroutines.
type Probe struct {
	// log is the probe's append surface. Under sharded capture it is
	// pinned to one shard by the probe's tid, so a thread's entries stay
	// in program order within that shard and cores do not share append
	// cache lines.
	log    wal.Appender
	tid    int32
	level  Level
	worker bool

	// module/mod tag every logged entry for modular checking (Scoped).
	module string
	mod    event.Sym

	// inv is the reusable invocation record: well-formed runs have at most
	// one open invocation per thread, so Call hands out the same record
	// every time instead of allocating.
	inv Invocation

	// child memoizes the most recent Scoped derivation.
	child *Probe

	// yield, when set, is invoked at the start of every probe action,
	// before anything is appended to the log, carrying the action's
	// declared Access. It is the seam a controlled scheduler
	// (internal/sched) rides: each instrumentation boundary becomes a
	// scheduling point, with no extra annotation burden on
	// implementations, and the access lets the DPOR strategy decide which
	// step reorderings are worth exploring. nil (the default) costs one
	// predictable branch.
	yield func(event.Access)

	// modKey and specVar cache the module-scope keys every declared
	// access of this probe carries.
	modKey  uint64
	specVar uint64
}

// moduleKeys derives the access-module keys for a module tag.
func moduleKeys(module string) (modKey, specVar uint64) {
	return event.VarKey("mod", module), event.VarKey("spec", module)
}

// SetYield installs fn as the probe's scheduling hook, called at the start
// of every probe action before the corresponding log append. Controlled
// runs pass the owning sched.Task's Yield; nil removes the hook. The hook
// propagates to probes already derived via Scoped and to future ones.
// Hooks installed this way see no access information; SetAccessYield is
// the DPOR-aware variant.
func (p *Probe) SetYield(fn func()) {
	if fn == nil {
		p.SetAccessYield(nil)
		return
	}
	p.SetAccessYield(func(event.Access) { fn() })
}

// SetAccessYield installs fn as the probe's scheduling hook with access
// information: every probe action (and every annotated yield) declares
// what it is about to touch, so a DPOR scheduler can build the dependency
// relation online. nil removes the hook. The hook propagates to probes
// already derived via Scoped and to future ones.
func (p *Probe) SetAccessYield(fn func(event.Access)) {
	if p == nil {
		return
	}
	p.yield = fn
	if p.child != nil {
		p.child.SetAccessYield(fn)
	}
}

// Yield is an explicit scheduling point for instrumented implementations
// whose interesting race windows contain no probe action (e.g. between two
// unsynchronized memory writes). Under a controlled scheduler it parks the
// thread; otherwise it is a no-op, so correct builds pay nothing. The
// access is opaque — conservatively dependent with every non-local step;
// implementations that know what they touch should use YieldLoad,
// YieldStore or YieldRMW instead, which DPOR can commute.
func (p *Probe) Yield() {
	if p != nil && p.yield != nil {
		p.yield(event.Access{Kind: event.AccessOpaque})
	}
}

// YieldLoad is a scheduling point annotating an atomic load (including
// load-acquire) of the named shared variable. Two loads of the same
// variable are independent; a load conflicts only with stores and RMWs of
// the same (module, name) variable.
func (p *Probe) YieldLoad(name string) {
	if p != nil && p.yield != nil {
		p.yield(event.Access{Kind: event.AccessRead, Var: event.VarKey("m", p.module, name)})
	}
}

// YieldSpinLoad is YieldLoad for the retry iterations of a spin-wait
// (seqlock readers awaiting an even sequence, writers awaiting the current
// writer): it additionally tells a cooperative scheduler that re-granting
// this task cannot make progress until another task changes the awaited
// state, so the scheduler prefers every non-spinning task first and the
// loop cannot livelock a controlled run. The first iteration of a wait
// loop should use plain YieldLoad — it is an ordinary read that must
// interleave normally.
func (p *Probe) YieldSpinLoad(name string) {
	if p != nil && p.yield != nil {
		p.yield(event.Access{Kind: event.AccessRead, Var: event.VarKey("m", p.module, name), Spin: true})
	}
}

// YieldStore is a scheduling point annotating an atomic store (including
// store-release) to the named shared variable.
func (p *Probe) YieldStore(name string) {
	if p != nil && p.yield != nil {
		p.yield(event.Access{Kind: event.AccessWrite, Var: event.VarKey("m", p.module, name)})
	}
}

// YieldRMW is a scheduling point annotating an atomic read-modify-write
// (CAS, fetch-add, swap) of the named shared variable. Classified as a
// write: it conflicts with every other access of the variable except
// nothing — like a store, plus it also reads, which a store's conflict
// set already covers.
func (p *Probe) YieldRMW(name string) {
	if p != nil && p.yield != nil {
		p.yield(event.Access{Kind: event.AccessWrite, Var: event.VarKey("m", p.module, name)})
	}
}

// sched runs the scheduling hook at a probe action boundary.
func (p *Probe) sched(a event.Access) {
	if p.yield != nil {
		p.yield(a)
	}
}

// specRead is the access of a logged call/return action: a read of the
// module's spec-state trajectory (observer windows are judged against the
// spec states between call and return, so these log positions matter
// relative to commits but commute with each other).
func (p *Probe) specRead() event.Access {
	return event.Access{Kind: event.AccessRead, Module: p.modKey, Var: p.specVar}
}

// commitAccess is the access of a logged commit (or commit-block marker):
// it advances the module's spec state and, in view mode, digests the whole
// replica, so it conflicts with every logged action of the module.
func (p *Probe) commitAccess() event.Access {
	return event.Access{Kind: event.AccessCommit, Module: p.modKey}
}

// writeAccess is the access of a logged write action, keyed by operation
// and first integer argument when present (finer keys commute more; a
// missing or non-integer argument falls back to the coarser per-op key).
func (p *Probe) writeAccess(op string, args []Value) event.Access {
	key := []string{"w", p.module, op}
	if len(args) > 0 {
		if n, ok := event.Int(args[0]); ok {
			key = append(key, strconv.Itoa(n))
		}
	}
	return event.Access{Kind: event.AccessWrite, Module: p.modKey, Var: event.VarKey(key...)}
}

// Tid returns the probe's thread identifier (0 for a nil probe).
func (p *Probe) Tid() int32 {
	if p == nil {
		return 0
	}
	return p.tid
}

// Scoped returns a probe for the same thread whose entries carry the given
// module tag, for modular per-structure checking (Section 7.2, Fig. 10): a
// layered implementation logs each layer's actions under that layer's
// module, and a Multi checker routes each module's entries to its own
// refinement check. The tag is absolute, not nested — Scoped from an
// already-scoped probe switches the module. The derivation is memoized, so
// calling it on every operation is free after the first.
func (p *Probe) Scoped(module string) *Probe {
	if p == nil || p.module == module {
		return p
	}
	if p.child == nil || p.child.module != module {
		p.child = &Probe{log: p.log, tid: p.tid, level: p.level, worker: p.worker,
			module: module, mod: event.InternSym(module), yield: p.yield}
		p.child.modKey, p.child.specVar = moduleKeys(module)
	}
	return p.child
}

// active reports whether the probe records anything at all.
func (p *Probe) active() bool { return p != nil && p.level != LevelOff }

// viewActive reports whether the probe records view-level actions.
func (p *Probe) viewActive() bool { return p != nil && p.level == LevelView }

// Call records the invocation of a public method and returns the invocation
// handle used to record its commit and return. Arguments that alias mutable
// buffers must be snapshotted by the caller (see event.CloneBytes): the log
// records observed values.
func (p *Probe) Call(method string, args ...Value) *Invocation {
	if p == nil {
		return nil
	}
	p.sched(p.specRead())
	if !p.active() {
		return nil
	}
	sym := event.InternSym(method)
	p.log.Append(event.Entry{Tid: p.tid, Kind: event.KindCall, Method: method, Sym: sym,
		Args: args, Worker: p.worker, Module: p.module, Mod: p.mod})
	p.inv = Invocation{p: p, method: method, sym: sym}
	return &p.inv
}

// Write records an update to a shared variable in the support of viewI.
// Inside a commit block the checker buffers it and applies it atomically at
// the block's commit; outside, it is applied to the replica immediately.
// No-op below LevelView.
func (p *Probe) Write(op string, args ...Value) {
	if p == nil {
		return
	}
	p.sched(p.writeAccess(op, args))
	if !p.viewActive() {
		return
	}
	p.log.Append(event.Entry{Tid: p.tid, Kind: event.KindWrite, Method: op, Sym: event.InternSym(op),
		Args: args, Worker: p.worker, Module: p.module, Mod: p.mod})
}

// Invocation records the actions of one method execution. A nil *Invocation
// (from an inactive probe) is a valid no-op receiver. The record is owned
// by its probe and reused across calls; holding it past the method's Return
// is a bug (as is any overlap of method executions on one thread).
type Invocation struct {
	p      *Probe
	method string
	sym    event.Sym
}

// Commit records this execution's unique commit action (Section 4.1). label
// distinguishes the commit points of a method with several exit paths, for
// diagnostics.
func (inv *Invocation) Commit(label string) {
	if inv == nil {
		return
	}
	inv.p.sched(inv.p.commitAccess())
	inv.p.log.Append(event.Entry{
		Tid: inv.p.tid, Kind: event.KindCommit, Method: inv.method, Sym: inv.sym,
		Label: label, Worker: inv.p.worker, Module: inv.p.module, Mod: inv.p.mod,
	})
}

// CommitFused records the commit action without a scheduling point. It is
// for lock-free methods, where the commit must stay in the same scheduler
// step as the atomic operation that linearizes it: a controlled scheduler
// parking between a successful CAS and the commit append would let another
// method's effect commit first and log an order the implementation never
// took. The caller places a bare Yield (opaque) immediately before the
// linearizing operation, so the fused step — atomic op plus commit append
// — is declared conservatively dependent with everything; lock-based
// methods should keep using Commit, whose scheduling point is protected by
// the lock they hold.
func (inv *Invocation) CommitFused(label string) {
	if inv == nil {
		return
	}
	inv.p.log.Append(event.Entry{
		Tid: inv.p.tid, Kind: event.KindCommit, Method: inv.method, Sym: inv.sym,
		Label: label, Worker: inv.p.worker, Module: inv.p.module, Mod: inv.p.mod,
	})
}

// CommitWrite records the commit action together with the single write
// performed atomically with it — the common shape in which the commit is
// "the write that makes the new abstract state visible". Below LevelView the
// write payload is dropped and only the commit is recorded.
func (inv *Invocation) CommitWrite(label, op string, args ...Value) {
	if inv == nil {
		return
	}
	inv.p.sched(inv.p.commitAccess())
	e := event.Entry{
		Tid: inv.p.tid, Kind: event.KindCommit, Method: inv.method, Sym: inv.sym,
		Label: label, Worker: inv.p.worker, Module: inv.p.module, Mod: inv.p.mod,
	}
	if inv.p.viewActive() {
		e.WOp = op
		e.WSym = event.InternSym(op)
		e.WArgs = args
	}
	inv.p.log.Append(e)
}

// BeginCommitBlock marks the start of this execution's commit block
// (Section 5.2). The caller must guarantee (by inspection, static analysis
// or a runtime atomicity checker) that the block executes atomically; the
// view replay relies on it. No-op below LevelView.
func (inv *Invocation) BeginCommitBlock() {
	if inv == nil {
		return
	}
	inv.p.sched(inv.p.commitAccess())
	if !inv.p.viewActive() {
		return
	}
	inv.p.log.Append(event.Entry{Tid: inv.p.tid, Kind: event.KindBeginBlock, Worker: inv.p.worker,
		Module: inv.p.module, Mod: inv.p.mod})
}

// EndCommitBlock marks the end of the commit block.
func (inv *Invocation) EndCommitBlock() {
	if inv == nil {
		return
	}
	inv.p.sched(inv.p.commitAccess())
	if !inv.p.viewActive() {
		return
	}
	inv.p.log.Append(event.Entry{Tid: inv.p.tid, Kind: event.KindEndBlock, Worker: inv.p.worker,
		Module: inv.p.module, Mod: inv.p.mod})
}

// Return records the method's return action and value, closing the
// invocation.
func (inv *Invocation) Return(ret Value) {
	if inv == nil {
		return
	}
	inv.p.sched(inv.p.specRead())
	inv.p.log.Append(event.Entry{
		Tid: inv.p.tid, Kind: event.KindReturn, Method: inv.method, Sym: inv.sym,
		Ret: ret, Worker: inv.p.worker, Module: inv.p.module, Mod: inv.p.mod,
	})
}
