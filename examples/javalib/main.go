// Javalib: the known concurrency errors in java.util.Vector and
// java.util.StringBuffer (Section 7.4.1 of the paper), reproduced in the
// Go analogues and caught by VYRD.
//
// The Vector bug lives in an observer (lastIndexOf reads the element count
// non-atomically), so view refinement is no better at catching it than I/O
// refinement (Section 7.5). The StringBuffer bug corrupts state (append
// copies from an unprotected source buffer), so view refinement catches it
// at the corrupting commit.
//
// Run with: go run ./examples/javalib
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/jsbuffer"
	"repro/internal/jvector"
	"repro/vyrd"
)

func main() {
	fmt.Println("== java.util.Vector: taking length non-atomically in lastIndexOf() ==")
	detect(jvector.Target(jvector.BugLastIndexOf), core.ModeIO)
	fmt.Println()

	fmt.Println("== java.util.StringBuffer: copying from an unprotected StringBuffer ==")
	detect(jsbuffer.Target(jsbuffer.BugUnprotectedCopy), core.ModeView)
	fmt.Println()

	fmt.Println("== both correct implementations verify cleanly ==")
	for _, t := range []harness.Target{
		jvector.Target(jvector.BugNone),
		jsbuffer.Target(jsbuffer.BugNone),
	} {
		report, err := harness.Check(t, harness.Run(t, config(1)), core.ModeView, false)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", t.Name, verdict(report))
	}
}

func config(seed int64) harness.Config {
	return harness.Config{
		Threads:      8,
		OpsPerThread: 300,
		KeyPool:      16,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	}
}

func detect(t harness.Target, mode core.Mode) {
	for seed := int64(1); seed <= 100; seed++ {
		res := harness.Run(t, config(seed))
		report, err := harness.Check(t, res, mode, true)
		if err != nil {
			panic(err)
		}
		if !report.Ok() {
			fmt.Printf("detected (seed %d, %v mode):\n%s\n", seed, mode, report)
			return
		}
	}
	fmt.Println("the race did not manifest within 100 runs")
}

func verdict(r *vyrd.Report) string {
	if r.Ok() {
		return "no refinement violations"
	}
	return r.First().String()
}
