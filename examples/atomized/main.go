// Atomized: using the implementation itself as the specification
// (Section 4.4 of the paper). When no separate executable specification
// exists, an "atomized" interpretation of the same code — every method run
// to completion sequentially, with the observed return value supplied as an
// argument — serves as the specification for refinement checking.
//
// Here the concurrent array-based multiset is checked against an atomized
// instance of the very same implementation. The correct version refines its
// own atomization; the buggy FindSlot does not.
//
// Run with: go run ./examples/atomized
package main

import (
	"fmt"

	"repro/internal/atomized"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/vyrd"
)

const capacity = 16

func main() {
	fmt.Println("== concurrent multiset vs its own atomized interpretation ==")
	report := run(multiset.BugNone, 1)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== buggy FindSlot vs the atomized interpretation ==")
	for seed := int64(1); seed <= 100; seed++ {
		report = run(multiset.BugFindSlotAcquire, seed)
		if !report.Ok() {
			fmt.Printf("detected (seed %d):\n%s\n", seed, report)
			return
		}
	}
	fmt.Println("the race did not manifest within 100 runs")
}

func run(bug multiset.Bug, seed int64) *vyrd.Report {
	target := multiset.Target(capacity, bug)
	res := harness.Run(target, harness.Config{
		Threads:      6,
		OpsPerThread: 200,
		KeyPool:      12,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	})
	// The specification is the implementation, atomized (Section 4.4).
	spec := atomized.MultisetSpec(capacity)
	report, err := vyrd.CheckEntries(res.Log.Snapshot(), spec,
		vyrd.WithReplayer(multiset.NewReplayer()),
		vyrd.WithFailFast(true),
		vyrd.WithDiagnostics(true))
	if err != nil {
		panic(err)
	}
	return report
}
