// Scanfs: verifying a small write-optimized file system — the repository's
// reconstruction of the Scan file system the paper's earlier VYRD prototype
// was applied to (Section 7.3). The file system's data path (directory,
// inodes, write-back block cache, block store, flush/reclaim/defragment
// daemons) is checked against the simple abstraction applications rely on:
// a map from file names to contents.
//
// The run shows the correct file system verifying cleanly under heavy
// concurrency with all three maintenance daemons running, and then the Scan
// cache bug — an in-place dirty-block update without the cache lock, the
// sibling of the Boxwood cache bug — being caught by the replica invariant
// "clean blocks match the block store" at a flush commit.
//
// Run with: go run ./examples/scanfs
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/scanfs"
	"repro/vyrd"
)

func main() {
	fmt.Println("== ScanFS, correct, with flush/reclaim/defragment daemons ==")
	report := run(scanfs.Target(scanfs.BugNone), 1)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== ScanFS with the Section 7.3 cache bug ==")
	for seed := int64(1); seed <= 100; seed++ {
		report = run(scanfs.Target(scanfs.BugUnprotectedBlockWrite), seed)
		if !report.Ok() {
			fmt.Printf("detected (seed %d):\n%s\n", seed, report)
			return
		}
	}
	fmt.Println("the race did not manifest within 100 runs")
}

func run(t harness.Target, seed int64) *vyrd.Report {
	res := harness.Run(t, harness.Config{
		Threads:      8,
		OpsPerThread: 300,
		KeyPool:      12,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	})
	report, err := harness.Check(t, res, core.ModeView, true)
	if err != nil {
		panic(err)
	}
	return report
}
