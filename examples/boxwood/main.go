// Boxwood: the paper's modular verification of the storage stack
// (Section 7.2). The Cache + Chunk Manager combination is verified as an
// abstract data store, and the B-link tree is verified as an ordered map —
// each module against its own specification, each with its own replica and
// invariants, exactly as the paper decomposes the problem (the tree is
// checked assuming the store below it is correct, and vice versa).
//
// The run demonstrates four things:
//
//  1. the correct stack verifies cleanly under heavy concurrency, with the
//     compression/reclaim daemons running;
//  2. the cache bug the paper found in Boxwood (Section 7.2.2: the
//     dirty-entry copy is not protected by LOCK(clean)) is caught by the
//     runtime invariant "clean entries match the chunk manager";
//  3. the B-link tree duplicate-insert bug is caught by view refinement at
//     the commit that creates the duplicate; and
//  4. the composed stack of Fig. 10 — the tree's nodes stored as serialized
//     byte arrays in the cache — verifies cleanly with the same tree-level
//     specification and replica, storage detail abstracted away by viewI; and
//  5. the same composed stack checked modularly: tree and store entries
//     share one log under per-module tags, and a Multi checker verifies
//     both refinements concurrently, with the same verdicts as checking
//     each module's projection alone.
//
// Run with: go run ./examples/boxwood
package main

import (
	"fmt"

	"repro/internal/blinkstore"
	"repro/internal/blinktree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/vyrd"
)

func main() {
	fmt.Println("== Cache + Chunk Manager, correct ==")
	report := run(cache.Target(cache.BugNone), 1)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== BLinkTree, correct ==")
	report = run(blinktree.Target(6, blinktree.BugNone), 1)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== Cache with the Section 7.2.2 bug (unprotected dirty-entry write) ==")
	detect(cache.Target(cache.BugUnprotectedWrite))
	fmt.Println()

	fmt.Println("== BLinkTree allowing duplicated data nodes ==")
	detect(blinktree.Target(6, blinktree.BugDuplicateInsert))
	fmt.Println()

	fmt.Println("== Fig. 10 composition: BLinkTree over Cache + Chunk Manager ==")
	report = run(blinkstore.Target(6, blinkstore.BugNone), 1)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== Fig. 10, modular: tree and store checked concurrently from one log ==")
	runModular(1)
}

// runModular drives the composed tree with both layers instrumented and a
// Multi checker online: one verification goroutine per module, fed by a
// router from the shared log. It then re-checks each module's projection
// sequentially and confirms the verdicts agree.
func runModular(seed int64) {
	log := vyrd.NewLog(vyrd.LevelView)
	wait, err := log.StartMultiChecker(blinkstore.Modules()...)
	if err != nil {
		panic(err)
	}
	res := harness.RunOnLog(blinkstore.ComposedTarget(6, blinkstore.BugNone), harness.Config{
		Threads:      8,
		OpsPerThread: 300,
		KeyPool:      16,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	}, log)
	online := wait()
	for _, mr := range online {
		fmt.Printf("[%s] %s\n", mr.Module, mr.Report)
	}

	// Cross-check: each module alone over its projection of the same log.
	entries := res.Log.Snapshot()
	for i, mod := range blinkstore.Modules() {
		filter := core.FilterModule(mod.Name)
		var projected []vyrd.Entry
		for _, e := range entries {
			if filter(e) {
				projected = append(projected, e)
			}
		}
		seq, err := vyrd.CheckEntries(projected, mod.Spec, mod.Opts...)
		if err != nil {
			panic(err)
		}
		if seq.Ok() != online[i].Report.Ok() ||
			seq.TotalViolations != online[i].Report.TotalViolations {
			fmt.Printf("[%s] MISMATCH: sequential says ok=%v violations=%d\n",
				mod.Name, seq.Ok(), seq.TotalViolations)
		} else {
			fmt.Printf("[%s] sequential re-check agrees (ok=%v)\n", mod.Name, seq.Ok())
		}
	}
}

func run(t harness.Target, seed int64) *vyrd.Report {
	res := harness.Run(t, harness.Config{
		Threads:      8,
		OpsPerThread: 300,
		KeyPool:      16,
		Shrink:       true,
		Seed:         seed,
		Level:        vyrd.LevelView,
	})
	report, err := harness.Check(t, res, core.ModeView, true)
	if err != nil {
		panic(err)
	}
	return report
}

func detect(t harness.Target) {
	for seed := int64(1); seed <= 100; seed++ {
		report := run(t, seed)
		if !report.Ok() {
			fmt.Printf("detected (seed %d):\n%s\n", seed, report)
			return
		}
	}
	fmt.Println("the race did not manifest within 100 runs")
}
