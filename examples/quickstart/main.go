// Quickstart: instrument a small concurrent data structure, record its
// execution, and check it against an executable specification with VYRD.
//
// The subject is the paper's running example (Section 2): a multiset whose
// InsertPair(x, y) must insert both elements or neither. We run the correct
// implementation first (clean report), then the buggy FindSlot of Fig. 5
// (the slot-emptiness check happens before the slot lock is acquired) under
// contention until view refinement reports the lost element.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

func main() {
	fmt.Println("== correct implementation ==")
	report := runWorkload(multiset.BugNone)
	fmt.Println(report)
	fmt.Println()

	fmt.Println("== buggy FindSlot (Fig. 5: acquire moved after the emptiness check) ==")
	for attempt := 1; ; attempt++ {
		report = runWorkload(multiset.BugFindSlotAcquire)
		if !report.Ok() {
			fmt.Printf("detected on attempt %d:\n%s\n", attempt, report)
			return
		}
		if attempt >= 100 {
			fmt.Println("the race did not manifest within 100 attempts")
			return
		}
	}
}

// runWorkload drives concurrent InsertPair/Delete/LookUp traffic against
// one multiset instance and checks the recorded log with view refinement.
func runWorkload(bug multiset.Bug) *vyrd.Report {
	// 1. A log shared by every thread; LevelView records the writes view
	//    refinement replays.
	log := vyrd.NewLog(vyrd.LevelView)

	// 2. The instrumented implementation.
	m := multiset.New(16, bug)

	// 3. Concurrent workload: each goroutine gets its own probe.
	const threads = 4
	done := make(chan struct{})
	for t := 0; t < threads; t++ {
		p := log.NewProbe()
		go func(base int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				x := (base*13 + i*7) % 8
				m.InsertPair(p, x, (x+1)%8)
				m.Delete(p, x)
				m.LookUp(p, (x+1)%8)
			}
		}(t)
	}
	for t := 0; t < threads; t++ {
		<-done
	}
	log.Close()

	// 4. Check the recorded execution: the multiset specification provides
	//    viewS; the slot replayer reconstructs viewI from the logged writes.
	report, err := vyrd.Check(log, spec.NewMultiset(),
		vyrd.WithReplayer(multiset.NewReplayer()),
		vyrd.WithFailFast(true),
		vyrd.WithDiagnostics(true))
	if err != nil {
		panic(err)
	}
	return report
}
