package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec is a complete, self-contained description of one controlled run: the
// harness shape (subject, threads, ops, key pool), the scheduling seed, and
// the effective change points and skipped operations. A Spec round-trips
// through a one-line textual repro string so a violating schedule can be
// pasted into `vyrdx -repro` (or a bug report) and replayed exactly —
// including after the shrinker has edited ChangePoints and Skips away from
// their seed-derived defaults.
type Spec struct {
	// Subject names the registry subject (bench.SubjectByName).
	Subject string
	// Threads, Ops, KeyPool mirror harness.Config.
	Threads int
	Ops     int
	KeyPool int
	// Seed determines task priorities, change points (when ChangePoints is
	// nil), and every per-operation random draw in the harness.
	Seed int64
	// D and K are the PCT parameters change points are derived from.
	D int
	K int
	// ChangePoints, when non-nil, overrides seed derivation (shrunk
	// schedules). Ascending, distinct, each in [1, K].
	ChangePoints []int
	// Skips lists harness operations to drop, as (thread, op) pairs; the
	// harness draws each op's randomness from (Seed, thread, op) so a skip
	// does not perturb the remaining ops. Populated only by the shrinker.
	Skips []Skip
	// WorkerSteps bounds the maintenance daemon's iterations; 0 means the
	// harness default (Threads*Ops). The shrinker reduces it: daemon
	// passes often dominate a schedule's length without contributing to
	// the violation.
	WorkerSteps int
	// Strategy selects the scheduling strategy. Empty means PCT (the
	// original grammar, so every pre-strategy repro string still parses);
	// StrategyDPOR means the scripted scheduler replaying Script. No other
	// value is valid — "pct" is deliberately not an accepted spelling, so
	// each spec has exactly one textual form.
	Strategy string
	// Script is the decision script for StrategyDPOR: decision i grants
	// task Script[i] (see Options.Script). Valid task ids are [0, Threads]
	// — the harness registers Threads application tasks plus one
	// maintenance daemon with id Threads. A non-nil empty script (the pure
	// run-to-completion schedule) is distinct from nil, like ChangePoints.
	// Requires Strategy == StrategyDPOR.
	Script []int
}

// StrategyDPOR is the Spec.Strategy value for scripted DPOR schedules.
const StrategyDPOR = "dpor"

// Skip identifies one harness operation: op Op of thread Thread.
type Skip struct {
	Thread int
	Op     int
}

// reproPrefix versions the repro grammar; bump on incompatible change.
const reproPrefix = "vyrdsched/1"

// Options returns the scheduler options the spec describes.
func (sp Spec) Options() Options {
	if sp.Strategy == StrategyDPOR {
		script := sp.Script
		if script == nil {
			script = []int{}
		}
		// Seed still drives the harness's per-operation randomness; the
		// scripted scheduler itself ignores priorities and change points.
		return Options{Seed: sp.Seed, K: sp.K, ChangePoints: []int{}, Script: script}
	}
	return Options{Seed: sp.Seed, D: sp.D, K: sp.K, ChangePoints: sp.ChangePoints}
}

// EffectiveChangePoints returns the change points a run of this spec will
// use: the explicit list if set, else the seed-derived one.
func (sp Spec) EffectiveChangePoints() []int {
	if sp.ChangePoints != nil {
		return sp.ChangePoints
	}
	return DeriveChangePoints(sp.Seed, sp.D, sp.K)
}

// SkipSet returns the skips as a set keyed by (thread, op).
func (sp Spec) SkipSet() map[Skip]bool {
	m := make(map[Skip]bool, len(sp.Skips))
	for _, s := range sp.Skips {
		m[s] = true
	}
	return m
}

// Repro renders the spec as its one-line textual form.
func (sp Spec) Repro() string {
	var b strings.Builder
	b.WriteString(reproPrefix)
	fmt.Fprintf(&b, ";subject=%s", sp.Subject)
	fmt.Fprintf(&b, ";threads=%d;ops=%d;pool=%d", sp.Threads, sp.Ops, sp.KeyPool)
	fmt.Fprintf(&b, ";seed=%d;d=%d;k=%d", sp.Seed, sp.D, sp.K)
	if sp.Strategy != "" {
		fmt.Fprintf(&b, ";strategy=%s", sp.Strategy)
	}
	if sp.Script != nil {
		b.WriteString(";script=")
		for i, id := range sp.Script {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(id))
		}
	}
	if sp.WorkerSteps > 0 {
		fmt.Fprintf(&b, ";wsteps=%d", sp.WorkerSteps)
	}
	if sp.ChangePoints != nil {
		b.WriteString(";cp=")
		for i, cp := range sp.ChangePoints {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(cp))
		}
	}
	if len(sp.Skips) > 0 {
		b.WriteString(";skip=")
		for i, s := range sp.Skips {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d.%d", s.Thread, s.Op)
		}
	}
	return b.String()
}

// ParseRepro parses the textual form produced by Repro, validating every
// field. Malformed input returns an error; it never panics.
func ParseRepro(s string) (Spec, error) {
	var sp Spec
	parts := strings.Split(s, ";")
	if len(parts) == 0 || parts[0] != reproPrefix {
		return sp, fmt.Errorf("sched: repro string must start with %q", reproPrefix)
	}
	seen := make(map[string]bool)
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok || key == "" {
			return sp, fmt.Errorf("sched: malformed field %q (want key=value)", part)
		}
		if seen[key] {
			return sp, fmt.Errorf("sched: duplicate field %q", key)
		}
		seen[key] = true
		switch key {
		case "subject":
			if val == "" {
				return sp, fmt.Errorf("sched: empty subject")
			}
			sp.Subject = val
		case "threads":
			n, err := parseBounded(key, val, 1, maxTasks)
			if err != nil {
				return sp, err
			}
			sp.Threads = n
		case "ops":
			n, err := parseBounded(key, val, 1, 1<<20)
			if err != nil {
				return sp, err
			}
			sp.Ops = n
		case "pool":
			n, err := parseBounded(key, val, 1, 1<<20)
			if err != nil {
				return sp, err
			}
			sp.KeyPool = n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return sp, fmt.Errorf("sched: bad seed %q: %v", val, err)
			}
			sp.Seed = n
		case "d":
			n, err := parseBounded(key, val, 0, 1<<16)
			if err != nil {
				return sp, err
			}
			sp.D = n
		case "k":
			n, err := parseBounded(key, val, 2, 1<<30)
			if err != nil {
				return sp, err
			}
			sp.K = n
		case "wsteps":
			n, err := parseBounded(key, val, 1, 1<<20)
			if err != nil {
				return sp, err
			}
			sp.WorkerSteps = n
		case "cp":
			cps, err := parseChangePoints(val)
			if err != nil {
				return sp, err
			}
			sp.ChangePoints = cps
		case "skip":
			skips, err := parseSkips(val)
			if err != nil {
				return sp, err
			}
			sp.Skips = skips
		case "strategy":
			if val != StrategyDPOR {
				return sp, fmt.Errorf("sched: unknown strategy %q (only %q has a textual form; PCT omits the field)", val, StrategyDPOR)
			}
			sp.Strategy = val
		case "script":
			script, err := parseScript(val)
			if err != nil {
				return sp, err
			}
			sp.Script = script
		default:
			return sp, fmt.Errorf("sched: unknown field %q", key)
		}
	}
	for _, req := range []string{"subject", "threads", "ops", "pool", "seed", "d", "k"} {
		if !seen[req] {
			return sp, fmt.Errorf("sched: missing required field %q", req)
		}
	}
	for _, cp := range sp.ChangePoints {
		if cp < 1 || cp > sp.K {
			return sp, fmt.Errorf("sched: change point %d outside [1,%d]", cp, sp.K)
		}
	}
	for _, sk := range sp.Skips {
		if sk.Thread >= sp.Threads || sk.Op >= sp.Ops {
			return sp, fmt.Errorf("sched: skip %d.%d outside %dx%d run", sk.Thread, sk.Op, sp.Threads, sp.Ops)
		}
	}
	if sp.Strategy == StrategyDPOR && sp.ChangePoints != nil {
		return sp, fmt.Errorf("sched: cp is a PCT field; strategy=dpor schedules are scripted")
	}
	if sp.Script != nil && sp.Strategy != StrategyDPOR {
		return sp, fmt.Errorf("sched: script requires strategy=%s", StrategyDPOR)
	}
	for _, id := range sp.Script {
		// Valid ids are the Threads application tasks plus the maintenance
		// daemon registered after them (id == Threads).
		if id > sp.Threads {
			return sp, fmt.Errorf("sched: script task id %d outside [0,%d]", id, sp.Threads)
		}
	}
	return sp, nil
}

func parseScript(val string) ([]int, error) {
	// script= (empty script) is meaningful: the pure run-to-completion
	// schedule, distinct from absent script.
	if val == "" {
		return []int{}, nil
	}
	fields := strings.Split(val, ",")
	script := make([]int, 0, len(fields))
	for _, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sched: bad script task id %q", f)
		}
		script = append(script, n)
	}
	return script, nil
}

func parseBounded(key, val string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("sched: bad %s %q: %v", key, val, err)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("sched: %s=%d outside [%d,%d]", key, n, lo, hi)
	}
	return n, nil
}

func parseChangePoints(val string) ([]int, error) {
	// cp= (empty list) is meaningful: it pins "no preemptions", distinct
	// from absent cp which means "derive from seed".
	if val == "" {
		return []int{}, nil
	}
	fields := strings.Split(val, ",")
	cps := make([]int, 0, len(fields))
	prev := 0
	for _, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("sched: bad change point %q: %v", f, err)
		}
		if n <= prev {
			return nil, fmt.Errorf("sched: change points must be ascending and distinct (got %d after %d)", n, prev)
		}
		prev = n
		cps = append(cps, n)
	}
	return cps, nil
}

func parseSkips(val string) ([]Skip, error) {
	if val == "" {
		return nil, fmt.Errorf("sched: empty skip list")
	}
	fields := strings.Split(val, ",")
	skips := make([]Skip, 0, len(fields))
	seen := make(map[Skip]bool)
	for _, f := range fields {
		th, op, ok := strings.Cut(f, ".")
		if !ok {
			return nil, fmt.Errorf("sched: bad skip %q (want thread.op)", f)
		}
		t, err := strconv.Atoi(th)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("sched: bad skip thread %q", th)
		}
		o, err := strconv.Atoi(op)
		if err != nil || o < 0 {
			return nil, fmt.Errorf("sched: bad skip op %q", op)
		}
		s := Skip{Thread: t, Op: o}
		if seen[s] {
			return nil, fmt.Errorf("sched: duplicate skip %d.%d", t, o)
		}
		seen[s] = true
		skips = append(skips, s)
	}
	sort.Slice(skips, func(i, j int) bool {
		if skips[i].Thread != skips[j].Thread {
			return skips[i].Thread < skips[j].Thread
		}
		return skips[i].Op < skips[j].Op
	})
	return skips, nil
}
