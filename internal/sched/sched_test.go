package sched

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDeriveChangePoints(t *testing.T) {
	cps := DeriveChangePoints(42, 5, 100)
	if len(cps) != 5 {
		t.Fatalf("want 5 change points, got %v", cps)
	}
	seen := map[int]bool{}
	for i, cp := range cps {
		if cp < 1 || cp > 100 {
			t.Errorf("change point %d outside [1,100]", cp)
		}
		if seen[cp] {
			t.Errorf("duplicate change point %d", cp)
		}
		seen[cp] = true
		if i > 0 && cps[i-1] >= cp {
			t.Errorf("not ascending: %v", cps)
		}
	}
	if again := DeriveChangePoints(42, 5, 100); !reflect.DeepEqual(cps, again) {
		t.Errorf("not deterministic: %v vs %v", cps, again)
	}
	if other := DeriveChangePoints(43, 5, 100); reflect.DeepEqual(cps, other) {
		t.Errorf("seed does not influence change points: %v", cps)
	}
	if got := DeriveChangePoints(1, 0, 100); len(got) != 0 {
		t.Errorf("d=0 should derive no points, got %v", got)
	}
	// d > k clamps rather than spinning forever on a small sample space.
	if got := DeriveChangePoints(1, 50, 10); len(got) != 10 {
		t.Errorf("d>k should clamp to k, got %d points", len(got))
	}
}

// TestMutualExclusion pins the core property: between two scheduling
// points exactly one registered task runs, so a counter incremented
// non-atomically at every step never misses an update.
func TestMutualExclusion(t *testing.T) {
	s := New(Options{Seed: 7, D: 3, K: 100})
	const tasks, steps = 4, 25
	var running int32
	counter := 0 // intentionally unsynchronized: the scheduler serializes
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		task := s.Register("t")
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer task.Done()
			for j := 0; j < steps; j++ {
				task.Yield()
				if n := atomic.AddInt32(&running, 1); n != 1 {
					t.Errorf("%d tasks running concurrently", n)
				}
				counter++
				atomic.AddInt32(&running, -1)
			}
		}()
	}
	s.Start()
	wg.Wait()
	st := s.Wait()
	if counter != tasks*steps {
		t.Errorf("lost updates: counter=%d want %d", counter, tasks*steps)
	}
	if st.Steps != tasks*steps {
		t.Errorf("steps=%d want %d", st.Steps, tasks*steps)
	}
	if st.FreeRun {
		t.Error("unexpected free run")
	}
	if st.Demotions == 0 {
		t.Error("no change point fired in a 100-step schedule with d=3")
	}
}

// TestSeedChangesOrder pins that different seeds produce different
// interleavings (priorities actually matter).
func TestSeedChangesOrder(t *testing.T) {
	order := func(seed int64) []int {
		s := New(Options{Seed: seed, D: 0, K: 50})
		var mu sync.Mutex
		var got []int
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			task := s.Register("t")
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer task.Done()
				for j := 0; j < 4; j++ {
					task.Yield()
					mu.Lock()
					got = append(got, i)
					mu.Unlock()
				}
			}()
		}
		s.Start()
		wg.Wait()
		s.Wait()
		return got
	}
	a0, a0again := order(0), order(0)
	if !reflect.DeepEqual(a0, a0again) {
		t.Fatalf("same seed, different order: %v vs %v", a0, a0again)
	}
	for seed := int64(1); seed <= 8; seed++ {
		if b := order(seed); !reflect.DeepEqual(a0, b) {
			return // found a differing schedule, as expected
		}
	}
	t.Error("seeds 0..8 all produced the identical interleaving")
}

// TestStealOnBlockedTask pins the steal mechanism: a granted task that
// blocks on a mutex held by a parked task must not wedge the scheduler —
// the turn is stolen, the holder eventually releases, and the run
// completes without the deadlock valve.
func TestStealOnBlockedTask(t *testing.T) {
	s := New(Options{Seed: 3, D: 0, K: 100, StealTimeout: 2 * time.Millisecond})
	var mu sync.Mutex
	var wg sync.WaitGroup

	holder := s.Register("holder")
	blocker := s.Register("blocker")
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer holder.Done()
		holder.Yield()
		mu.Lock()
		holder.Yield() // parked while holding mu: the other task will block
		holder.Yield()
		mu.Unlock()
		holder.Yield()
	}()
	go func() {
		defer wg.Done()
		defer blocker.Done()
		blocker.Yield()
		mu.Lock() // blocks whenever the holder is parked inside its critical section
		mu.Unlock()
		blocker.Yield()
	}()
	s.Start()
	done := make(chan Stats, 1)
	go func() { wg.Wait(); done <- s.Wait() }()
	select {
	case st := <-done:
		if st.FreeRun {
			t.Errorf("deadlock valve fired; steal should have resolved the block: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scheduler wedged on a blocked grant")
	}
}

// TestDeadlockValve pins the last-resort behavior: when the target
// genuinely deadlocks, the scheduler releases all tasks into free-running
// mode and flags the run instead of hanging.
func TestDeadlockValve(t *testing.T) {
	s := New(Options{Seed: 1, D: 0, K: 10,
		StealTimeout: time.Millisecond, DeadlockTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		task := s.Register("t")
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer task.Done()
			task.Yield()
			<-release // unschedulable by the token: external dependency
			task.Yield()
		}()
	}
	s.Start()
	valve := make(chan Stats, 1)
	go func() { wg.Wait(); valve <- s.Wait() }()
	select {
	case st := <-valve:
		t.Fatalf("run finished without the valve? %+v", st)
	case <-time.After(300 * time.Millisecond):
	}
	close(release)
	select {
	case st := <-valve:
		if !st.FreeRun {
			t.Errorf("FreeRun not flagged: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("valve did not release the run")
	}
}

// TestAppQuiesced pins that daemons observe application completion.
func TestAppQuiesced(t *testing.T) {
	s := New(Options{Seed: 5, D: 0, K: 100})
	var wg sync.WaitGroup
	app := s.Register("app")
	daemon := s.RegisterDaemon("daemon")
	daemonIters := 0
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer app.Done()
		for i := 0; i < 3; i++ {
			app.Yield()
		}
	}()
	go func() {
		defer wg.Done()
		defer daemon.Done()
		for i := 0; i < 1000; i++ {
			daemon.Yield()
			if s.AppQuiesced() {
				return
			}
			daemonIters++
		}
	}()
	s.Start()
	wg.Wait()
	st := s.Wait()
	if daemonIters >= 1000 {
		t.Error("daemon never observed AppQuiesced")
	}
	if st.FreeRun {
		t.Error("unexpected free run")
	}
}

// TestNilTaskYield pins that nil tasks and probes without schedulers are
// no-ops, so uncontrolled runs share the controlled code path safely.
func TestNilTaskYield(t *testing.T) {
	var task *Task
	task.Yield()
	task.Done()
}
