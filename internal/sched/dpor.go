package sched

import "repro/internal/event"

// This file implements dynamic partial-order reduction (Flanagan &
// Godefroid, "Dynamic Partial-Order Reduction for Model Checking Software",
// POPL 2005) over the scripted scheduler. The engine never executes
// anything itself: the caller (internal/explore) alternates
//
//	script, ok := e.Next()      // next schedule prefix to run
//	... run it under Options{Script: script, Record: true} ...
//	e.Observe(sch.Trace())      // feed the recorded decisions back
//
// until Next reports an empty frontier or the caller's budget runs out.
// Each observed trace grows an explicit prefix tree of scheduling
// decisions; a vector-clock race analysis over the trace plants backtrack
// points at the decision nodes where a dependent cross-task pair could be
// reversed, and sleep sets prune backtrack choices whose exploration is
// provably covered by an already-explored sibling subtree.
//
// The scheduler's run-to-completion default past a script's end is what
// makes one planted divergence meaningful: the diverted task runs through
// its whole operation in the reordered window instead of yielding straight
// back. DPOR therefore works with short scripts — a prefix plus one
// reversal — and lets the default policy complete every run.

// dnode is one node of the decision prefix tree: the scheduler state
// reached by the script leading here. Fields describing the state
// (enabled, pending) are recorded on first visit; by structural
// determinism every replay of the same prefix reproduces them.
type dnode struct {
	parent *dnode
	choice int // decision taken at parent to reach this node
	depth  int

	enabled  []int          // task ids parked at this decision, ascending
	pending  []event.Access // declared accesses, parallel to enabled
	children map[int]*dnode
	access   map[int]event.Access // decision -> effective step access observed
	done     map[int]int          // decision -> 1-based exploration order from here
	queued   map[int]bool         // decisions ever pushed on the frontier
}

func newDnode(parent *dnode, choice int) *dnode {
	d := &dnode{
		parent:   parent,
		choice:   choice,
		children: make(map[int]*dnode),
		access:   make(map[int]event.Access),
		done:     make(map[int]int),
		queued:   make(map[int]bool),
	}
	if parent != nil {
		d.depth = parent.depth + 1
	}
	return d
}

// pendingOf returns task id's declared access at this node, degraded to
// opaque when the task was not recorded as enabled (conservative: opaque
// is dependent with everything, so the sleep set keeps fewer members and
// prunes less).
func (n *dnode) pendingOf(id int) event.Access {
	for i, e := range n.enabled {
		if e == id {
			return n.pending[i]
		}
	}
	return event.Access{Kind: event.AccessOpaque}
}

// script reconstructs the decision prefix from the root to this node.
func (n *dnode) script() []int {
	depth := n.depth
	s := make([]int, depth)
	for m := n; m.parent != nil; m = m.parent {
		depth--
		s[depth] = m.choice
	}
	return s
}

// DPORStats summarizes one exploration.
type DPORStats struct {
	// Schedules counts observed runs.
	Schedules int
	// Races counts backtrack points planted by the race analysis.
	Races int
	// Pruned counts frontier choices skipped by their sleep set.
	Pruned int
	// Frontier is the number of backtrack choices still queued.
	Frontier int
}

// DPOR is the exploration engine. Zero value is not usable; construct with
// NewDPOR. Not safe for concurrent use: the caller strictly alternates
// Next and Observe.
type DPOR struct {
	root    *dnode
	started bool
	// frontier is FIFO (breadth-first over divergence levels): every
	// single-reversal schedule of the seed trace runs before any
	// double-reversal one. Depth-first order (LIFO) spends the whole budget
	// permuting the trace's tail — the deepest races are re-planted on every
	// run — and in a budgeted exploration never reaches the mid-trace
	// reversals where a planted window bug lives. Both orders reach the same
	// fixpoint at exhaustion; breadth-first finds shallow bugs first, and the
	// sleep-set computation (asleep) derives each item's sleep set from the
	// tree rather than from exploration order, so it is order-independent.
	frontier []frontierItem
	head     int // frontier[:head] already popped
	stats    DPORStats
}

type frontierItem struct {
	n      *dnode
	choice int
}

// NewDPOR returns an engine whose first Next is the empty script: the pure
// run-to-completion schedule that seeds the tree.
func NewDPOR() *DPOR {
	return &DPOR{root: newDnode(nil, -1)}
}

// Stats returns the exploration counters so far.
func (e *DPOR) Stats() DPORStats {
	st := e.stats
	st.Frontier = len(e.frontier) - e.head
	return st
}

// Next returns the next schedule to run, or ok=false when the frontier is
// exhausted — every reversible race seen so far has been explored or
// sleep-pruned, i.e. the persistent-set exploration is complete for the
// observed state space.
func (e *DPOR) Next() ([]int, bool) {
	if !e.started {
		e.started = true
		return []int{}, true
	}
	for e.head < len(e.frontier) {
		it := e.frontier[e.head]
		e.head++
		if it.n.done[it.choice] != 0 {
			continue // explored meanwhile via another run's walk
		}
		if e.asleep(it.n, it.choice) {
			// Every schedule starting with this choice here is equivalent
			// to one reachable from an earlier-explored sibling subtree.
			// The choice is dropped, not marked done: done feeds the sleep
			// sets of later siblings, and a pruned subtree was never
			// actually explored, so nothing may defer to it. queued stays
			// set, so the choice is never re-planted either.
			e.stats.Pruned++
			continue
		}
		return append(it.n.script(), it.choice), true
	}
	return nil, false
}

// asleep computes the sleep set along the path to n and reports whether
// choice is in it. Walking from the root with an empty sleep set: at each
// node m whose path edge is d, the siblings explored *before* d was first
// explored join the set, and members whose pending access at m is
// dependent with d's step access are woken (removed) — executing d can
// change what they observe, so their subtrees are no longer covered.
//
// The before-d ordering is essential, not an optimization: sleeping on
// *every* other explored sibling would let two siblings each defer to the
// other (A pruned as covered by B's subtree, B pruned as covered by A's),
// which is a coverage hole. Strict ordering makes the deferral acyclic,
// exactly as in depth-first sleep sets where later siblings sleep earlier
// ones only.
func (e *DPOR) asleep(n *dnode, choice int) bool {
	path := n.script()
	sleep := make(map[int]bool)
	m := e.root
	for _, d := range path {
		da := m.access[d]
		before := m.done[d]
		for q, ord := range m.done {
			if q != d && ord < before {
				sleep[q] = true
			}
		}
		for q := range sleep {
			if event.Dependent(m.pendingOf(q), da) {
				delete(sleep, q)
			}
		}
		next := m.children[d]
		if next == nil {
			return false // path never fully observed; cannot prune
		}
		m = next
	}
	return sleep[choice]
}

// Observe feeds back the recorded trace of the run Next most recently
// requested: it grows the prefix tree along the trace, then runs the race
// analysis that plants backtrack points.
func (e *DPOR) Observe(trace []Step) {
	e.stats.Schedules++
	nodes := e.walk(trace)
	e.analyze(trace, nodes)
}

// walk threads the trace through the tree, recording node state on first
// visit and marking each taken decision done. nodes[i] is the node whose
// decision executed trace[i].
func (e *DPOR) walk(trace []Step) []*dnode {
	nodes := make([]*dnode, len(trace))
	cur := e.root
	for i, st := range trace {
		if cur.enabled == nil {
			cur.enabled = st.Enabled
			cur.pending = st.Pending
		}
		c := st.Task
		if cur.done[c] == 0 {
			cur.done[c] = len(cur.done) + 1
		}
		cur.access[c] = st.EffectiveAccess()
		nodes[i] = cur
		child := cur.children[c]
		if child == nil {
			child = newDnode(cur, c)
			cur.children[c] = child
		}
		cur = child
	}
	return nodes
}

// analyze runs the Flanagan-Godefroid backtrack-point computation over one
// observed trace. Happens-before is tracked with vector clocks joined on
// dependent pairs; at every decision point, for every enabled task p, the
// latest earlier event that is dependent with p's pending access, belongs
// to another task, and does not already happen-before p is a reversible
// race: exploring p at that event's node can reorder the pair. The
// backtrack choice is p itself when p was enabled there, else (p was only
// enabled later) every task enabled there, conservatively.
func (e *DPOR) analyze(trace []Step, nodes []*dnode) {
	maxTask := 0
	for _, st := range trace {
		if st.Task > maxTask {
			maxTask = st.Task
		}
		for _, q := range st.Enabled {
			if q > maxTask {
				maxTask = q
			}
		}
	}
	T := maxTask + 1
	clock := make([][]int, T) // per task: joined clocks of its executed events
	for t := range clock {
		clock[t] = make([]int, T)
	}
	ecv := make([][]int, len(trace)) // per event
	idx := make([]int, len(trace))   // event's 1-based index within its task
	count := make([]int, T)

	for d, st := range trace {
		// Backtrack analysis at the state before executing trace[d]. The
		// classic algorithm plants only the *maximal* dependent event not
		// ordered before p and relies on recursion to surface earlier races
		// one reversal at a time; under a schedule budget that recursion is
		// a long chain the exploration may never complete, so every
		// non-ordered dependent event is planted instead (earliest first —
		// planted windows cluster in early operations, when state is still
		// fresh). A superset of backtrack points keeps every persistent set
		// persistent, so soundness is unaffected; only the reduction is
		// coarser, and the queued/done maps bound the frontier to one entry
		// per (node, task) regardless of how many traces re-plant it.
		for k, p := range st.Enabled {
			ap := st.Pending[k]
			if ap.Kind == event.AccessLocal {
				continue
			}
			for i := 0; i < d; i++ {
				ti := trace[i].Task
				if ti == p || !event.Dependent(trace[i].EffectiveAccess(), ap) {
					continue
				}
				if idx[i] <= clock[p][ti] {
					// Already ordered before p: reordering is impossible.
					continue
				}
				// A dependent event not ordered before p: a reversible race
				// with p's next step.
				e.backtrack(nodes[i], p)
			}
		}
		// Execute trace[d]: join the clocks of its dependent predecessors.
		t := st.Task
		a := st.EffectiveAccess()
		cv := make([]int, T)
		copy(cv, clock[t])
		for i := 0; i < d; i++ {
			if trace[i].Task != t && event.Dependent(trace[i].EffectiveAccess(), a) {
				joinClock(cv, ecv[i])
			}
		}
		count[t]++
		cv[t] = count[t]
		idx[d] = count[t]
		ecv[d] = cv
		clock[t] = cv
	}
}

// backtrack plants p (or, when p was not enabled, every enabled task) as a
// pending choice at node n.
func (e *DPOR) backtrack(n *dnode, p int) {
	cand := n.enabled
	for _, q := range n.enabled {
		if q == p {
			cand = []int{p}
			break
		}
	}
	for _, q := range cand {
		if n.done[q] == 0 && !n.queued[q] {
			n.queued[q] = true
			e.frontier = append(e.frontier, frontierItem{n, q})
			e.stats.Races++
		}
	}
}

func joinClock(dst, src []int) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}
