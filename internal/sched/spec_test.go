package sched

import (
	"reflect"
	"strings"
	"testing"
)

func TestReproRoundTrip(t *testing.T) {
	specs := []Spec{
		{Subject: "Multiset-Array", Threads: 3, Ops: 8, KeyPool: 6, Seed: 42, D: 3, K: 176},
		{Subject: "Cache", Threads: 2, Ops: 4, KeyPool: 3, Seed: -7, D: 0, K: 64,
			ChangePoints: []int{}},
		{Subject: "BLinkTree", Threads: 4, Ops: 16, KeyPool: 8, Seed: 1 << 40, D: 5, K: 512,
			ChangePoints: []int{12, 57, 300},
			Skips:        []Skip{{0, 3}, {2, 7}}, WorkerSteps: 9},
	}
	for _, sp := range specs {
		s := sp.Repro()
		got, err := ParseRepro(s)
		if err != nil {
			t.Errorf("ParseRepro(%q): %v", s, err)
			continue
		}
		if !reflect.DeepEqual(got, sp) {
			t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v\n  str %s", sp, got, s)
		}
	}
}

func TestParseReproRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"vyrdsched/2;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2",
		"vyrdsched/1",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0", // missing k
		"vyrdsched/1;subject=;threads=1;ops=1;pool=1;seed=0;d=0;k=2",
		"vyrdsched/1;subject=X;threads=0;ops=1;pool=1;seed=0;d=0;k=2",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=zzz;d=0;k=2",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;cp=5,3", // not ascending
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;cp=0",   // below 1
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;cp=9",   // beyond k
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;skip=",  // empty skip
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;skip=1", // no dot
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;skip=0.5",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;skip=0.0,0.0",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;seed=1", // duplicate
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;bogus=1",
		"vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2;wsteps=0",
		"vyrdsched/1;nokeyvalue",
	}
	for _, s := range cases {
		if _, err := ParseRepro(s); err == nil {
			t.Errorf("ParseRepro(%q) accepted malformed input", s)
		}
	}
}

func TestEffectiveChangePointsMatchesScheduler(t *testing.T) {
	sp := Spec{Subject: "X", Threads: 2, Ops: 4, KeyPool: 2, Seed: 99, D: 4, K: 128}
	want := sp.EffectiveChangePoints()
	s := New(sp.Options())
	if got := s.ChangePoints(); !reflect.DeepEqual(got, want) {
		t.Errorf("scheduler derives %v, spec says %v", got, want)
	}
	// An explicit empty list means "no preemptions", not "derive".
	sp.ChangePoints = []int{}
	if got := New(sp.Options()).ChangePoints(); len(got) != 0 {
		t.Errorf("explicit empty list rederived: %v", got)
	}
	if !strings.Contains(sp.Repro(), ";cp=") {
		t.Error("explicit empty change-point list not rendered")
	}
}
