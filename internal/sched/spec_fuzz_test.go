package sched

import (
	"reflect"
	"testing"
)

// FuzzReproRoundTrip fuzzes the schedule repro-string codec: ParseRepro
// must never panic on arbitrary input, and any string it accepts must
// round-trip (Repro of the parsed spec re-parses to an equal spec) — the
// contract `vyrdx -repro <string>` relies on.
func FuzzReproRoundTrip(f *testing.F) {
	f.Add("vyrdsched/1;subject=Multiset-Array;threads=3;ops=8;pool=6;seed=42;d=3;k=176")
	f.Add("vyrdsched/1;subject=Cache;threads=2;ops=4;pool=3;seed=-7;d=0;k=64;cp=")
	f.Add("vyrdsched/1;subject=B;threads=4;ops=16;pool=8;seed=1;d=5;k=512;wsteps=9;cp=12,57;skip=0.3,2.7")
	f.Add("vyrdsched/1;subject=X;threads=1;ops=1;pool=1;seed=0;d=0;k=2")
	// DPOR scripted schedules: non-empty script, the meaningful empty
	// script (pure run-to-completion), and the invalid combinations the
	// parser must reject without panicking (script without strategy, PCT cp
	// with strategy, out-of-range script task id, unknown strategy).
	f.Add("vyrdsched/1;subject=T;threads=3;ops=4;pool=4;seed=0;d=3;k=300;strategy=dpor;script=0,2,1,3,0")
	f.Add("vyrdsched/1;subject=T;threads=2;ops=2;pool=2;seed=5;d=0;k=64;strategy=dpor;script=")
	f.Add("vyrdsched/1;subject=T;threads=2;ops=2;pool=2;seed=5;d=0;k=64;script=0,1")
	f.Add("vyrdsched/1;subject=T;threads=2;ops=2;pool=2;seed=5;d=0;k=64;strategy=dpor;cp=3")
	f.Add("vyrdsched/1;subject=T;threads=2;ops=2;pool=2;seed=5;d=0;k=64;strategy=dpor;script=7")
	f.Add("vyrdsched/1;subject=T;threads=2;ops=2;pool=2;seed=5;d=0;k=64;strategy=pct")
	f.Add("vyrdsched/2;subject=X")
	f.Add("")
	f.Add(";;;=;=;")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseRepro(s) // must not panic
		if err != nil {
			return
		}
		again, err := ParseRepro(sp.Repro())
		if err != nil {
			t.Fatalf("accepted %q but re-parse of %q failed: %v", s, sp.Repro(), err)
		}
		if !reflect.DeepEqual(sp, again) {
			t.Fatalf("round trip drift:\n  first  %+v\n  second %+v", sp, again)
		}
		// Every accepted spec must derive scheduler options without
		// panicking, and a scripted spec must actually be scripted: nil
		// Script normalizes to the empty script so the scheduler never
		// mistakes a DPOR spec for a seed-driven one.
		opts := sp.Options()
		if sp.Strategy == StrategyDPOR && opts.Script == nil {
			t.Fatalf("dpor spec %q produced a nil script in options", sp.Repro())
		}
		if sp.Strategy == "" && opts.Script != nil {
			t.Fatalf("pct spec %q produced a script in options", sp.Repro())
		}
	})
}
