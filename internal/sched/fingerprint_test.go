package sched

import (
	"testing"

	"repro/internal/event"
)

// step builds a synthetic recorded step for fingerprint tests; Enabled and
// Pending are irrelevant to canonicalization and left empty.
func step(task int, kind event.AccessKind, varKey uint64) Step {
	return Step{Task: task, Access: event.Access{Kind: kind, Var: varKey}}
}

// TestFingerprintDedup pins the three behaviors the class counter rests on:
// identical traces collide, commuting an independent adjacent pair
// collides (one class, counted once), and swapping a dependent pair does
// not (a genuinely different schedule, counted separately).
func TestFingerprintDedup(t *testing.T) {
	t.Run("identical-traces", func(t *testing.T) {
		mk := func() []Step {
			return []Step{
				step(1, event.AccessWrite, 7),
				step(2, event.AccessRead, 7),
				step(1, event.AccessWrite, 9),
			}
		}
		if Fingerprint(mk()) != Fingerprint(mk()) {
			t.Fatal("two identical traces fingerprint differently")
		}
	})

	t.Run("commuted-independent-pair", func(t *testing.T) {
		// Different tasks, different variables: swapping the adjacent pair
		// cannot change any observation, so both orders are one class.
		a := []Step{
			step(1, event.AccessWrite, 7),
			step(2, event.AccessWrite, 9),
		}
		b := []Step{
			step(2, event.AccessWrite, 9),
			step(1, event.AccessWrite, 7),
		}
		if Fingerprint(a) != Fingerprint(b) {
			t.Fatal("commuted independent pair split into two classes")
		}
	})

	t.Run("read-read-same-var", func(t *testing.T) {
		// Two loads of the same variable are independent too.
		a := []Step{
			step(1, event.AccessRead, 7),
			step(2, event.AccessRead, 7),
		}
		b := []Step{
			step(2, event.AccessRead, 7),
			step(1, event.AccessRead, 7),
		}
		if Fingerprint(a) != Fingerprint(b) {
			t.Fatal("commuted read-read pair split into two classes")
		}
	})

	t.Run("dependent-swap", func(t *testing.T) {
		// Write-write on the same variable: order is observable, the two
		// traces are distinct classes.
		a := []Step{
			step(1, event.AccessWrite, 7),
			step(2, event.AccessWrite, 7),
		}
		b := []Step{
			step(2, event.AccessWrite, 7),
			step(1, event.AccessWrite, 7),
		}
		if Fingerprint(a) == Fingerprint(b) {
			t.Fatal("dependent write-write swap collapsed into one class")
		}
	})

	t.Run("write-read-dependent", func(t *testing.T) {
		a := []Step{
			step(1, event.AccessWrite, 7),
			step(2, event.AccessRead, 7),
		}
		b := []Step{
			step(2, event.AccessRead, 7),
			step(1, event.AccessWrite, 7),
		}
		if Fingerprint(a) == Fingerprint(b) {
			t.Fatal("write-read swap on one variable collapsed into one class")
		}
	})

	t.Run("stolen-degrades-to-opaque", func(t *testing.T) {
		// A stolen turn's declared access is untrustworthy; its effective
		// access is opaque, dependent with everything, so the commuted pair
		// that collided above stops colliding when one side was stolen.
		a := []Step{
			{Task: 1, Access: event.Access{Kind: event.AccessWrite, Var: 7}, Stolen: true},
			step(2, event.AccessWrite, 9),
		}
		b := []Step{
			step(2, event.AccessWrite, 9),
			{Task: 1, Access: event.Access{Kind: event.AccessWrite, Var: 7}, Stolen: true},
		}
		if Fingerprint(a) == Fingerprint(b) {
			t.Fatal("stolen step treated as independent; must degrade to opaque")
		}
	})

	t.Run("canonical-is-stable", func(t *testing.T) {
		// Canonicalizing a canonical trace is a fixpoint, and longer
		// three-task shuffles of pairwise-independent steps all land on it.
		steps := []Step{
			step(1, event.AccessWrite, 1),
			step(2, event.AccessWrite, 2),
			step(3, event.AccessWrite, 3),
		}
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		want := Fingerprint(steps)
		for _, p := range perms {
			tr := []Step{steps[p[0]], steps[p[1]], steps[p[2]]}
			if Fingerprint(tr) != want {
				t.Fatalf("permutation %v of pairwise-independent steps is a new class", p)
			}
			can := Canonicalize(tr)
			if Fingerprint(can) != want {
				t.Fatalf("canonical form of permutation %v not a fixpoint", p)
			}
		}
	})
}
