package sched

// Delta-debugging shrinker for violating schedules. Given a Spec whose run
// violates, it searches for a locally-minimal variant that still violates
// in the same way, in two phases:
//
//  1. ddmin over the change-point list (Zeller/Hildebrandt): try dropping
//     chunks of preemption points, halving chunk size on failure, until no
//     single point can be removed. Fewer preemptions = fewer places a
//     human must look at in the witness interleaving.
//  2. greedy operation dropping: try skipping each (thread, op) harness
//     operation, keeping skips that preserve the violation, to fixpoint.
//     The harness derives each op's randomness from (seed, thread, op), so
//     dropping one op does not perturb the others.
//  3. worker-step reduction: try collapsing the maintenance daemon's
//     iteration budget (whose passes often dominate schedule length) to 1,
//     then by halving.
//
// A final ddmin pass over change points catches points made redundant by
// dropped ops. The predicate "still violates in the same way" is supplied
// by the caller (typically: first violation has the same Kind), so the
// shrinker never trades the bug under study for a different one.
//
// For StrategyDPOR specs the schedule is the decision script, not the
// change-point list, so phase 1 (and the final pass) run ddmin over Script
// instead: dropping a scripted decision hands that slot to the
// run-to-completion default, which usually absorbs the prefix decisions
// that merely marched threads to the race window.

// Outcome is what one run of a candidate spec reports back to the shrinker.
type Outcome struct {
	// Violating is true when the run still exhibits the violation being
	// minimized (same kind as the original, caller-defined).
	Violating bool
	// Steps is the schedule length (Stats.Steps); the quantity minimized.
	Steps int64
}

// RunFunc executes a candidate spec and classifies it. An error marks the
// candidate unusable (e.g. the run went free-run); it is treated as
// non-violating and skipped.
type RunFunc func(Spec) (Outcome, error)

// ShrinkStats reports what the shrinker accomplished.
type ShrinkStats struct {
	Runs               int
	StepsBefore        int64
	StepsAfter         int64
	ChangePointsBefore int
	ChangePointsAfter  int
	// ScriptBefore/ScriptAfter track the scripted-decision count for
	// StrategyDPOR specs (the DPOR analogue of the change-point columns).
	ScriptBefore      int
	ScriptAfter       int
	OpsDropped        int
	WorkerStepsBefore int
	WorkerStepsAfter  int
}

// Shrink minimizes a violating spec. The input spec must already violate
// under run (the caller has observed it); Shrink re-establishes that as its
// baseline and returns the original spec unchanged if it cannot reproduce.
// The returned spec always has an explicit ChangePoints list (PCT) or
// Script (StrategyDPOR).
func Shrink(sp Spec, run RunFunc) (Spec, ShrinkStats, error) {
	st := ShrinkStats{}
	dpor := sp.Strategy == StrategyDPOR
	if dpor {
		if sp.Script == nil {
			sp.Script = []int{}
		}
		st.ScriptBefore = len(sp.Script)
		st.ScriptAfter = len(sp.Script)
	} else {
		sp.ChangePoints = sp.EffectiveChangePoints()
		st.ChangePointsBefore = len(sp.ChangePoints)
	}
	if sp.WorkerSteps == 0 {
		// Materialize the harness default so the worker-step phase (and
		// the repro string) can pin and reduce it.
		sp.WorkerSteps = sp.Threads * sp.Ops
	}
	st.WorkerStepsBefore = sp.WorkerSteps
	st.WorkerStepsAfter = sp.WorkerSteps

	base, err := run(sp)
	st.Runs++
	if err != nil {
		return sp, st, err
	}
	st.StepsBefore = base.Steps
	st.StepsAfter = base.Steps
	st.ChangePointsAfter = len(sp.ChangePoints)
	if !base.Violating {
		return sp, st, nil
	}

	try := func(cand Spec) (bool, int64) {
		out, err := run(cand)
		st.Runs++
		if err != nil {
			return false, 0
		}
		return out.Violating, out.Steps
	}

	best := sp
	bestSteps := base.Steps
	accept := func(cand Spec, steps int64) {
		best = cand
		bestSteps = steps
	}

	// Phase 1: ddmin over the schedule's own representation — scripted
	// decisions for DPOR, preemption points for PCT.
	shrinkSched := func() {
		if dpor {
			script, steps := ddminInts(best.Script, func(cand []int) (bool, int64) {
				c := best
				c.Script = cand
				return try(c)
			})
			if script != nil {
				c := best
				c.Script = script
				accept(c, steps)
			}
			return
		}
		cps, steps := ddminInts(best.ChangePoints, func(cand []int) (bool, int64) {
			c := best
			c.ChangePoints = cand
			return try(c)
		})
		if cps != nil {
			c := best
			c.ChangePoints = cps
			accept(c, steps)
		}
	}

	shrinkSched()

	// Phase 2: drop whole harness operations, to fixpoint. Iterating in a
	// fixed order keeps the shrink deterministic for a given RunFunc.
	for changed := true; changed; {
		changed = false
		for th := 0; th < best.Threads; th++ {
			for op := 0; op < best.Ops; op++ {
				s := Skip{Thread: th, Op: op}
				if containsSkip(best.Skips, s) {
					continue
				}
				cand := best
				cand.Skips = appendSkip(best.Skips, s)
				if ok, steps := try(cand); ok {
					accept(cand, steps)
					st.OpsDropped++
					changed = true
				}
			}
		}
	}

	// Phase 3: reduce the maintenance daemon's iteration budget — jump to
	// 1 first (the common case: the daemon is irrelevant to the bug), then
	// fall back to halving.
	if best.WorkerSteps > 1 {
		cand := best
		cand.WorkerSteps = 1
		if ok, steps := try(cand); ok {
			accept(cand, steps)
		} else {
			for best.WorkerSteps > 1 {
				cand := best
				cand.WorkerSteps = best.WorkerSteps / 2
				ok, steps := try(cand)
				if !ok {
					break
				}
				accept(cand, steps)
			}
		}
	}

	// Dropped ops may have made some preemption points (or scripted
	// decisions) redundant.
	if st.OpsDropped > 0 {
		shrinkSched()
	}

	st.StepsAfter = bestSteps
	st.ChangePointsAfter = len(best.ChangePoints)
	st.ScriptAfter = len(best.Script)
	st.WorkerStepsAfter = best.WorkerSteps
	return best, st, nil
}

// ddminInts runs ddmin over a list of ints: returns the minimized list and
// its run's step count, or (nil, 0) if no reduction was found (including
// an empty input). The predicate must be monotone-ish in practice; ddmin
// only guarantees 1-minimality.
func ddminInts(list []int, test func([]int) (bool, int64)) ([]int, int64) {
	if len(list) == 0 {
		return nil, 0
	}
	cur := append([]int(nil), list...)
	var curSteps int64
	reduced := false
	n := 2
	for len(cur) >= 1 {
		chunk := (len(cur) + n - 1) / n
		advanced := false
		// Try each complement (the list minus one chunk).
		for i := 0; i < len(cur); i += chunk {
			cand := make([]int, 0, len(cur)-chunk)
			cand = append(cand, cur[:i]...)
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand = append(cand, cur[end:]...)
			if ok, steps := test(cand); ok {
				cur = cand
				curSteps = steps
				reduced = true
				if n > 2 {
					n--
				}
				advanced = true
				break
			}
		}
		if advanced {
			if len(cur) == 0 {
				break
			}
			continue
		}
		if chunk <= 1 {
			break
		}
		n *= 2
		if n > len(cur) {
			n = len(cur)
		}
	}
	if !reduced {
		return nil, 0
	}
	return cur, curSteps
}

func containsSkip(skips []Skip, s Skip) bool {
	for _, x := range skips {
		if x == s {
			return true
		}
	}
	return false
}

func appendSkip(skips []Skip, s Skip) []Skip {
	out := make([]Skip, 0, len(skips)+1)
	out = append(out, skips...)
	out = append(out, s)
	return out
}
