// Package sched implements controlled schedule exploration for the test
// harness: a cooperative scheduler that serializes the harness's worker
// goroutines and decides, at every instrumentation boundary, which one runs
// next. VYRD checks a *single* observed execution (Section 7); left to the
// OS scheduler, a stress harness keeps re-observing the same lucky
// interleavings and rare refinement violations go unseen. Driving the
// interleaving from a seeded pseudo-random scheduler turns the existing
// harness + checker pipeline into a reproducible bug-finding tool: an int64
// seed fully determines the schedule, so a violating seed *is* a
// counterexample that replays to the identical entry log and verdict.
//
// # Scheduling model
//
// Worker goroutines register as tasks and yield to the scheduler at every
// probe action (the vyrd.Probe seam: call, write, commit, return, block
// markers — see vyrd.Probe.SetYield), so no new annotation burden is placed
// on implementations. Exactly one task runs between two scheduling points;
// everyone else is parked. At each decision the scheduler grants the
// highest-priority parked task, PCT-style (Burckhardt et al., "A
// Randomized Scheduler with Probabilistic Guarantees of Finding Bugs",
// ASPLOS 2010): tasks get distinct random initial priorities drawn from the
// seed, and at d seed-chosen decision indices ("priority change points")
// the task about to run is demoted below everyone else, forcing a
// preemption exactly there. A schedule of length k with a bug requiring d
// ordering constraints is found with probability >= 1/(n·k^(d-1)).
//
// # Blocking, steals, and determinism
//
// Implementations take real sync.Mutex locks, and probe actions occur
// inside critical sections, so the granted task can block on a lock whose
// holder is parked at a scheduling point. The scheduler cannot observe
// lock state; it detects the situation by timeout (StealTimeout) and
// *steals* the turn: the blocked task is marked in-limbo and the
// next-highest parked task runs. A limbo task rejoins the parked set at
// its next scheduling point (it dashes there as soon as the lock is
// released, without appending anything to the log — probes yield *before*
// they append). Before every decision made while limbo tasks exist, the
// scheduler waits a short Grace for dashing tasks to park, so the decision
// set is a deterministic function of the token history rather than of dash
// timing. Both mechanisms are structural: whether a task blocks, and when
// its lock is released, depend only on the sequence of grants, so
// re-running a seed reproduces the same steals, the same decisions, and a
// byte-identical log. (The timeouts only bound *detection* of the
// structural facts; they must merely exceed the longest straight-line
// stretch between two scheduling points.)
//
// If every live task is blocked (a genuine deadlock in the target — a real
// finding), the scheduler waits DeadlockTimeout, then releases all tasks
// into free-running (uncontrolled) execution so the run can terminate; the
// run is flagged FreeRun and its schedule is not reproducible.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// Defaults for Options. The steal timeout must exceed the longest
// straight-line computation between two scheduling points (typically
// microseconds); the grace must exceed a limbo task's dash from lock
// release to its next scheduling point (also microseconds). Generous
// multiples keep the structural-determinism argument robust to OS jitter.
const (
	DefaultStealTimeout    = 1 * time.Millisecond
	DefaultGrace           = 300 * time.Microsecond
	DefaultDeadlockTimeout = 2 * time.Second
)

// cpSalt decorrelates the change-point stream from the priority stream, so
// supplying an explicit change-point list (e.g. a shrunk one) leaves the
// seed-derived task priorities untouched.
const cpSalt = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64

// Options parameterizes one controlled run.
type Options struct {
	// Seed determines task priorities and (when ChangePoints is nil) the
	// priority change points. A seed is a schedule.
	Seed int64
	// D is the number of priority change points (the PCT depth parameter:
	// bugs needing d ordering constraints want d-1 change points; 3 is a
	// good default for the planted two-constraint races).
	D int
	// K is the schedule-length estimate change points are sampled from
	// ([1, K]); decisions past K run without further preemption.
	K int
	// ChangePoints, when non-nil, is the explicit list of decision indices
	// at which the about-to-run task is demoted. nil derives D points from
	// Seed. The shrinker edits this list.
	ChangePoints []int
	// Script, when non-nil, switches the scheduler from PCT priorities to
	// scripted decisions: decision i grants the task with id Script[i]
	// (when it is parked; otherwise, and for every decision past the end
	// of the script, the run-to-completion default applies: keep granting
	// the previously-granted task while it is parked, else the lowest-id
	// parked task). A non-nil empty script is meaningful — the whole run
	// follows the default policy. DPOR-discovered schedules replay through
	// this field.
	Script []int
	// Record enables per-decision trace capture (Scheduler.Trace): the
	// enabled set, each enabled task's declared pending access, and the
	// granted task's step. DPOR both drives scripts and learns backtrack
	// points from these traces.
	Record bool
	// StealTimeout bounds how long the scheduler waits for the granted
	// task to reach a scheduling point before concluding it is blocked.
	StealTimeout time.Duration
	// Grace bounds how long each decision waits for in-limbo tasks to
	// reach a scheduling point.
	Grace time.Duration
	// DeadlockTimeout bounds how long the scheduler waits with no
	// grantable task before bailing out to free-running execution.
	DeadlockTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.K <= 1 {
		o.K = 512
	}
	if o.D < 0 {
		o.D = 0
	}
	if o.StealTimeout <= 0 {
		o.StealTimeout = DefaultStealTimeout
	}
	if o.Grace <= 0 {
		o.Grace = DefaultGrace
	}
	if o.DeadlockTimeout <= 0 {
		o.DeadlockTimeout = DefaultDeadlockTimeout
	}
	return o
}

// DeriveChangePoints returns the d distinct decision indices in [1, k]
// that seed selects as priority change points, ascending. It is the pure
// function behind Options.ChangePoints == nil, exposed so repro strings
// can materialize the list (and shrinkers can then edit it) without
// running anything.
func DeriveChangePoints(seed int64, d, k int) []int {
	if k < 2 {
		k = 2
	}
	if d > k {
		d = k
	}
	if d <= 0 {
		return []int{}
	}
	rng := rand.New(rand.NewSource(seed ^ cpSalt))
	seen := make(map[int]bool, d)
	cps := make([]int, 0, d)
	for len(cps) < d {
		s := 1 + rng.Intn(k)
		if !seen[s] {
			seen[s] = true
			cps = append(cps, s)
		}
	}
	sort.Ints(cps)
	return cps
}

// Stats summarizes one controlled run.
type Stats struct {
	// Tasks is the number of registered tasks.
	Tasks int
	// Steps counts scheduling decisions (grants); it is the schedule
	// length the shrinker minimizes.
	Steps int64
	// Demotions counts priority change points that actually fired.
	Demotions int64
	// Steals counts turns stolen from a blocked task.
	Steals int64
	// LimboParks counts stolen tasks rejoining at a scheduling point.
	LimboParks int64
	// FreeRun is true when the deadlock valve released all tasks into
	// uncontrolled execution; the run is then not reproducible.
	FreeRun bool
}

func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d steps=%d demotions=%d steals=%d freerun=%v",
		s.Tasks, s.Steps, s.Demotions, s.Steals, s.FreeRun)
}

// Step is one recorded scheduling decision (Options.Record): the enabled
// set the scheduler chose from, each enabled task's declared pending
// access, and the granted task. A trace ([]Step) is both a replayable
// script (project the Task fields) and the raw material for DPOR's race
// analysis and the canonical trace fingerprint.
type Step struct {
	// Task is the granted task's id.
	Task int
	// Access is what the granted step declared it would touch (its pending
	// access at grant time).
	Access event.Access
	// Stolen marks a step whose turn was stolen: the granted task blocked
	// on an implementation lock before reaching its next scheduling point.
	// Its declared access is then incomplete (the step also performed a
	// blocking acquire), so dependency analysis treats it as opaque.
	Stolen bool
	// Enabled lists the task ids parked at this decision, ascending.
	Enabled []int
	// Pending holds the declared access of each enabled task, parallel to
	// Enabled.
	Pending []event.Access
}

// EffectiveAccess is the access dependency analysis should use for the
// step: the declared access, degraded to opaque when the turn was stolen.
func (st Step) EffectiveAccess() event.Access {
	if st.Stolen {
		return event.Access{Kind: event.AccessOpaque}
	}
	return st.Access
}

type taskState uint8

const (
	stateNew taskState = iota
	stateParked
	stateRunning
	stateLimbo
	stateDone
)

// Task is one registered worker goroutine. The goroutine it belongs to
// calls Yield (or YieldAccess) at scheduling points and Done exactly once
// when finished.
type Task struct {
	s      *Scheduler
	id     int
	name   string
	daemon bool
	grant  chan struct{}

	// pending is the access the task declared at its most recent park: what
	// its next step will touch. Written by the task goroutine before its
	// park event is sent, read by the scheduler loop after receiving it
	// (the event channel orders the two), so no lock is needed.
	pending event.Access

	// Owned by the scheduler loop after Start.
	state taskState
	prio  int
}

// ID returns the task's registration index (thread ids in DPOR scripts).
func (t *Task) ID() int { return t.id }

// Name returns the task's registration name.
func (t *Task) Name() string { return t.name }

type evKind uint8

const (
	evPark evKind = iota
	evDone
)

type ev struct {
	t    *Task
	kind evKind
}

// maxTasks bounds registration so that the event channel (at most one
// outstanding event per task) can never block a sender.
const maxTasks = 255

// Scheduler is the controlled-concurrency scheduler for one run. Create
// with New, Register all tasks, Start, and Wait after the tasks finish.
type Scheduler struct {
	opts Options

	mu      sync.Mutex
	tasks   []*Task
	started bool

	events  chan ev
	free    chan struct{} // closed to release everyone into free-running
	freeRun atomic.Bool
	appLive atomic.Int32
	done    chan struct{}

	// Owned by the scheduler loop.
	cps       map[int]int // decision index -> change-point ordinal
	stats     Stats
	limbo     int
	liveCount int
	last      *Task  // most recently granted task (script-mode default)
	trace     []Step // recorded decisions (Options.Record)
}

// New returns a scheduler for one run. A zero Options{} is valid (seed 0,
// no change points derived unless D > 0).
func New(o Options) *Scheduler {
	o = o.withDefaults()
	if o.ChangePoints == nil {
		o.ChangePoints = DeriveChangePoints(o.Seed, o.D, o.K)
	}
	s := &Scheduler{
		opts:   o,
		events: make(chan ev, maxTasks+1),
		free:   make(chan struct{}),
		done:   make(chan struct{}),
		cps:    make(map[int]int, len(o.ChangePoints)),
	}
	for i, cp := range o.ChangePoints {
		s.cps[cp] = i
	}
	return s
}

// ChangePoints returns the effective change-point list (explicit or
// seed-derived), ascending; callers must not mutate it.
func (s *Scheduler) ChangePoints() []int { return s.opts.ChangePoints }

// Register adds an application task. All registration must happen before
// Start, from a single goroutine, in a deterministic order: the order is
// part of the schedule.
func (s *Scheduler) Register(name string) *Task { return s.register(name, false) }

// RegisterDaemon adds an internal maintenance task (a Tid_ds thread, e.g.
// a compression daemon). Daemon completion does not gate AppQuiesced.
func (s *Scheduler) RegisterDaemon(name string) *Task { return s.register(name, true) }

func (s *Scheduler) register(name string, daemon bool) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("sched: Register after Start")
	}
	if len(s.tasks) >= maxTasks {
		panic("sched: too many tasks")
	}
	t := &Task{s: s, id: len(s.tasks), name: name, daemon: daemon, grant: make(chan struct{}, 1)}
	s.tasks = append(s.tasks, t)
	if !daemon {
		s.appLive.Add(1)
	}
	return t
}

// Start assigns seed-derived priorities and launches the decision loop.
// Task goroutines may already be running (they block at their first
// scheduling point); the loop waits for every task to park or finish once
// before the first decision, so startup timing cannot influence it.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("sched: Start called twice")
	}
	s.started = true
	tasks := s.tasks
	s.mu.Unlock()

	perm := rand.New(rand.NewSource(s.opts.Seed)).Perm(len(tasks))
	for i, t := range tasks {
		t.prio = perm[i] + 1
	}
	s.liveCount = len(tasks)
	go s.loop()
}

// Wait blocks until every registered task has called Done (or the
// scheduler had nothing to do) and returns the run's stats.
func (s *Scheduler) Wait() Stats {
	<-s.done
	return s.stats
}

// AppQuiesced reports whether every application (non-daemon) task has
// finished. Daemon loops use it as their termination condition; reading it
// between scheduling points is deterministic because Done events are
// processed in token order.
func (s *Scheduler) AppQuiesced() bool { return s.appLive.Load() == 0 }

// Yield parks the calling task at a scheduling point until the scheduler
// grants it the next turn. Safe on a nil task (no-op), so uncontrolled
// runs can share code paths with controlled ones. The step's access is
// declared opaque — conservatively dependent with every non-local step;
// callers that know what the step touches use YieldAccess.
func (t *Task) Yield() {
	t.YieldAccess(event.Access{Kind: event.AccessOpaque})
}

// YieldAccess parks the calling task at a scheduling point, declaring what
// its next step (from this grant to its next scheduling point) is about to
// touch. The DPOR strategy reads these declarations off the recorded trace
// to build the dependency relation online.
func (t *Task) YieldAccess(a event.Access) {
	if t == nil {
		return
	}
	s := t.s
	if s.freeRun.Load() {
		return
	}
	t.pending = a
	s.events <- ev{t, evPark}
	select {
	case <-t.grant:
	case <-s.free:
	}
}

// Done marks the task finished. Must be called exactly once, after the
// task's last scheduling point.
func (t *Task) Done() {
	if t == nil {
		return
	}
	t.s.events <- ev{t, evDone}
}

func (s *Scheduler) loop() {
	defer close(s.done)
	s.stats.Tasks = s.liveCount

	// Start barrier: every task parks at its first scheduling point (or
	// finishes outright) before the first decision, so the initial pick
	// sees the full task set regardless of goroutine startup timing.
	for pending := s.liveCount; pending > 0; pending-- {
		s.handle(<-s.events)
	}

	for s.liveCount > 0 {
		if s.freeRun.Load() {
			s.handle(<-s.events)
			continue
		}
		if s.limbo > 0 {
			// Let stolen tasks that the previous turn may have unblocked
			// dash to their next scheduling point, so the decision set
			// depends on the token history, not on dash timing.
			s.graceWait()
		}
		t := s.pick()
		if t == nil {
			// No task is at a scheduling point: either a limbo task is
			// still dashing, or every live task is blocked — a genuine
			// deadlock in the target. Wait, then open the valve so the
			// run can terminate.
			select {
			case e := <-s.events:
				s.handle(e)
			case <-time.After(s.opts.DeadlockTimeout):
				s.enterFreeRun()
			}
			continue
		}
		t.state = stateRunning
		s.last = t
		if s.opts.Record {
			s.record(t)
		}
		t.grant <- struct{}{}
		s.await(t)
	}
}

// record captures the decision that granted t: the enabled set (parked
// tasks plus t itself, which pick just moved to running), each one's
// declared pending access, and t's step access.
func (s *Scheduler) record(t *Task) {
	st := Step{Task: t.id, Access: t.pending}
	for _, x := range s.tasks {
		if x == t || x.state == stateParked {
			st.Enabled = append(st.Enabled, x.id)
			st.Pending = append(st.Pending, x.pending)
		}
	}
	s.trace = append(s.trace, st)
}

// Trace returns the recorded decisions (Options.Record). Valid only after
// Wait has returned; callers must not mutate it.
func (s *Scheduler) Trace() []Step {
	return s.trace
}

// graceWait drains limbo parks for up to Grace.
func (s *Scheduler) graceWait() {
	deadline := time.NewTimer(s.opts.Grace)
	defer deadline.Stop()
	for s.limbo > 0 {
		select {
		case e := <-s.events:
			s.handle(e)
		case <-deadline.C:
			return
		}
	}
}

// pick selects the next task: the scripted one under Options.Script, else
// the highest-priority parked one after applying a pending change-point
// demotion to the task about to run.
func (s *Scheduler) pick() *Task {
	if s.opts.Script != nil {
		return s.pickScript()
	}
	best := s.best()
	if best == nil {
		return nil
	}
	s.stats.Steps++
	if i, ok := s.cps[int(s.stats.Steps)]; ok {
		// PCT change point: demote the task that was about to run below
		// every base priority, forcing a preemption here. Ordinal-indexed
		// values keep all priorities distinct.
		best.prio = -(i + 1)
		s.stats.Demotions++
		best = s.best()
	}
	return best
}

// pickScript applies the scripted strategy: decision i grants task
// Script[i] when that task is parked. Past the script's end — or when the
// scripted task cannot run (finished, or in limbo after a mutated script,
// e.g. a shrinker candidate) — the run-to-completion default applies: keep
// the previously-granted task running while it is parked, else grant the
// lowest-id parked task. Run-to-completion is what makes a single DPOR
// divergence meaningful: the diverted thread executes its whole operation
// through the reordered window instead of bouncing back after one step.
func (s *Scheduler) pickScript() *Task {
	var t *Task
	if idx := int(s.stats.Steps); idx < len(s.opts.Script) {
		if id := s.opts.Script[idx]; id >= 0 && id < len(s.tasks) && s.tasks[id].state == stateParked {
			t = s.tasks[id]
		}
	}
	if t == nil {
		// Run-to-completion default, with the same spin-wait deference as
		// best(): a task parked on a spin retry only runs when every
		// parked task is spinning.
		if s.last != nil && s.last.state == stateParked && !s.last.pending.Spin {
			t = s.last
		} else {
			var spin *Task
			for _, x := range s.tasks {
				if x.state != stateParked {
					continue
				}
				if x.pending.Spin {
					if spin == nil {
						spin = x
					}
					continue
				}
				t = x
				break
			}
			if t == nil {
				t = spin
			}
		}
	}
	if t == nil {
		return nil
	}
	s.stats.Steps++
	return t
}

// best returns the highest-priority parked task, preferring tasks not
// parked in a spin-wait retry: re-granting a spinner cannot make progress
// until another task changes the awaited state, so a spinning task wins
// only when every parked task is spinning (in which case some limbo or
// soon-to-park task must be the one to unblock them).
func (s *Scheduler) best() *Task {
	var best, bestSpin *Task
	for _, t := range s.tasks {
		if t.state != stateParked {
			continue
		}
		if t.pending.Spin {
			if bestSpin == nil || t.prio > bestSpin.prio {
				bestSpin = t
			}
		} else if best == nil || t.prio > best.prio {
			best = t
		}
	}
	if best != nil {
		return best
	}
	return bestSpin
}

// await waits for the granted task to reach its next scheduling point (or
// finish), stealing the turn if it appears blocked.
func (s *Scheduler) await(t *Task) {
	timer := time.NewTimer(s.opts.StealTimeout)
	defer timer.Stop()
	for {
		select {
		case e := <-s.events:
			s.handle(e)
			if e.t == t {
				return
			}
		case <-timer.C:
			// The granted task has not reached a scheduling point within
			// the steal timeout: it is blocked on an implementation lock
			// whose holder is parked. Steal the turn; the task rejoins at
			// its next scheduling point once the lock is released.
			t.state = stateLimbo
			s.limbo++
			s.stats.Steals++
			if s.opts.Record && len(s.trace) > 0 {
				// The step just granted never reached its next scheduling
				// point: its declared access is incomplete.
				s.trace[len(s.trace)-1].Stolen = true
			}
			return
		}
	}
}

func (s *Scheduler) handle(e ev) {
	t := e.t
	switch e.kind {
	case evPark:
		if t.state == stateLimbo {
			s.limbo--
			s.stats.LimboParks++
		}
		t.state = stateParked
	case evDone:
		if t.state == stateLimbo {
			s.limbo--
		}
		t.state = stateDone
		s.liveCount--
		if !t.daemon {
			s.appLive.Add(-1)
		}
	}
}

// enterFreeRun releases every task into uncontrolled execution. Used only
// by the deadlock valve; the run's schedule is no longer reproducible.
func (s *Scheduler) enterFreeRun() {
	s.stats.FreeRun = true
	s.freeRun.Store(true)
	close(s.free)
}
