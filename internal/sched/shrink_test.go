package sched

import (
	"testing"
)

// syntheticRun builds a RunFunc over a synthetic "program": the run
// violates iff every change point in `needCPs` is present and none of the
// ops in `needOps` is skipped. Steps shrink as change points and ops are
// removed, mimicking the real harness.
func syntheticRun(needCPs []int, needOps []Skip) RunFunc {
	return func(sp Spec) (Outcome, error) {
		skips := sp.SkipSet()
		for _, s := range needOps {
			if skips[s] {
				return Outcome{Violating: false, Steps: steps(sp)}, nil
			}
		}
		have := map[int]bool{}
		for _, cp := range sp.ChangePoints {
			have[cp] = true
		}
		for _, cp := range needCPs {
			if !have[cp] {
				return Outcome{Violating: false, Steps: steps(sp)}, nil
			}
		}
		return Outcome{Violating: true, Steps: steps(sp)}, nil
	}
}

func steps(sp Spec) int64 {
	ops := sp.Threads*sp.Ops - len(sp.Skips)
	return int64(ops*5 + len(sp.ChangePoints) + sp.WorkerSteps)
}

func TestShrinkReducesToNeeded(t *testing.T) {
	sp := Spec{Subject: "X", Threads: 3, Ops: 8, KeyPool: 4, Seed: 11, D: 6, K: 200}
	cps := sp.EffectiveChangePoints()
	if len(cps) != 6 {
		t.Fatalf("want 6 derived points, got %v", cps)
	}
	// The violation needs exactly one of the derived points and two ops.
	need := []int{cps[3]}
	needOps := []Skip{{0, 2}, {2, 5}}
	min, st, err := Shrink(sp, syntheticRun(need, needOps))
	if err != nil {
		t.Fatal(err)
	}
	if len(min.ChangePoints) != 1 || min.ChangePoints[0] != need[0] {
		t.Errorf("change points not minimized: %v (needed %v)", min.ChangePoints, need)
	}
	wantSkips := sp.Threads*sp.Ops - len(needOps)
	if len(min.Skips) != wantSkips {
		t.Errorf("ops not minimized: %d skips, want %d", len(min.Skips), wantSkips)
	}
	if min.WorkerSteps != 1 {
		t.Errorf("worker steps not minimized: %d", min.WorkerSteps)
	}
	if st.StepsAfter >= st.StepsBefore {
		t.Errorf("no step reduction: %d -> %d", st.StepsBefore, st.StepsAfter)
	}
	// The minimized spec must still violate.
	out, _ := syntheticRun(need, needOps)(min)
	if !out.Violating {
		t.Error("minimized spec no longer violates")
	}
	// And it must round-trip through its repro string.
	got, err := ParseRepro(min.Repro())
	if err != nil {
		t.Fatalf("minimized spec repro does not parse: %v", err)
	}
	if got.Repro() != min.Repro() {
		t.Errorf("repro drift: %q vs %q", got.Repro(), min.Repro())
	}
}

func TestShrinkKeepsNonReproducibleInput(t *testing.T) {
	sp := Spec{Subject: "X", Threads: 2, Ops: 2, KeyPool: 2, Seed: 1, D: 2, K: 50}
	min, st, err := Shrink(sp, func(Spec) (Outcome, error) {
		return Outcome{Violating: false, Steps: 10}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 1 {
		t.Errorf("non-violating baseline should stop after 1 run, ran %d", st.Runs)
	}
	if len(min.Skips) != 0 {
		t.Errorf("non-violating baseline was edited: %+v", min)
	}
}
