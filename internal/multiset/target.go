package multiset

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the array-based multiset to the random test harness
// (Section 7.1) with the operation mix used in the experiments.
func Target(capacity int, bug Bug) harness.Target {
	return harness.Target{
		Name: "Multiset-Array",
		New: func(log *vyrd.Log) harness.Instance {
			m := New(capacity, bug)
			return harness.Instance{Methods: methods(m)}
		},
		NewSpec:     func() core.Spec { return spec.NewMultiset() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}

func methods(m *Multiset) []harness.Method {
	return []harness.Method{
		{Name: "Insert", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			m.Insert(p, pick())
		}},
		{Name: "InsertPair", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			m.InsertPair(p, pick(), pick())
		}},
		{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			m.Delete(p, pick())
		}},
		{Name: "LookUp", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			m.LookUp(p, pick())
		}},
	}
}
