package multiset

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkCoarseLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewCoarseReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewMultiset(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestCoarseSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := NewCoarse(8, BugNone)
	if !m.Insert(p, 3) || !m.InsertPair(p, 4, 5) {
		t.Fatal("inserts failed")
	}
	if !m.LookUp(p, 4) || m.LookUp(p, 9) {
		t.Fatal("lookup results wrong")
	}
	if !m.Delete(p, 4) || m.Delete(p, 4) {
		t.Fatal("delete results wrong")
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkCoarseLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

// TestCoarseLoggingProducesFewerEntries quantifies Section 6.2's point:
// coarse logging "reduces logging contention and overhead".
func TestCoarseLoggingProducesFewerEntries(t *testing.T) {
	run := func(coarse bool) int {
		log := vyrd.NewLog(vyrd.LevelView)
		p := log.NewProbe()
		if coarse {
			m := NewCoarse(64, BugNone)
			for i := 0; i < 50; i++ {
				m.InsertPair(p, i, i+100)
				m.Delete(p, i)
			}
		} else {
			m := New(64, BugNone)
			for i := 0; i < 50; i++ {
				m.InsertPair(p, i, i+100)
				m.Delete(p, i)
			}
		}
		log.Close()
		return log.Len()
	}
	fine := run(false)
	coarse := run(true)
	if coarse >= fine {
		t.Fatalf("coarse logging (%d entries) not cheaper than fine (%d)", coarse, fine)
	}
	t.Logf("entries for the same workload: fine %d, coarse %d", fine, coarse)
}

// TestCoarseLoggingMissesFindSlotBug is the paper's Section 7.2.1
// observation inverted into a test: on the exact Fig. 6 schedule, view
// refinement over FINE-grained logging catches the FindSlot overwrite
// (TestFig6Deterministic), while the same schedule under COARSE logging
// passes — the coarse entries record the intended abstract effects, which
// are exactly what the specification expects, hiding the slot corruption.
// "Logging at this level of granularity was necessary for detecting the
// concurrency error."
func TestCoarseLoggingMissesFindSlotBug(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	m := NewCoarse(8, BugFindSlotAcquire)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	t2Entered := make(chan struct{})
	t1Done := make(chan struct{})
	var once sync.Once
	m.RaceWindow = func(i int) {
		if i == 0 {
			once.Do(func() {
				close(t2Entered)
				<-t1Done
			})
		}
	}

	done := make(chan bool)
	go func() { done <- m.InsertPair(p2, 7, 8) }()
	<-t2Entered
	m.RaceWindow = func(int) {}
	if !m.InsertPair(p1, 5, 6) {
		t.Fatal("T1 InsertPair failed")
	}
	close(t1Done)
	if !<-done {
		t.Fatal("T2 InsertPair failed")
	}

	// The bug really happened: element 5 is gone from the implementation.
	if m.LookUp(nil, 5) {
		t.Fatal("implementation still contains 5; the schedule did not trigger the bug")
	}
	log.Close()

	// Coarse-grained view refinement cannot see it on this trace.
	rep := checkCoarseLog(t, log, vyrd.ModeView)
	if !rep.Ok() {
		t.Fatalf("coarse logging unexpectedly detected the slot corruption:\n%s", rep)
	}
	// A trailing observer would still catch it through I/O refinement — the
	// granularity trade-off affects *when*, not *whether in principle*.
}

// TestCoarseConcurrentCorrect: the coarse instrumentation is also
// false-positive-free under contention.
func TestCoarseConcurrentCorrect(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	m := NewCoarse(64, BugNone)
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*17 + 3
			for i := 0; i < 250; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				k := x % 16
				switch x % 4 {
				case 0:
					m.Insert(p, k)
				case 1:
					m.InsertPair(p, k, (k+1)%16)
				case 2:
					m.Delete(p, k)
				case 3:
					m.LookUp(p, k)
				}
			}
		}(th)
	}
	wg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkCoarseLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}
