package multiset

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the slot array from the logged writes and maintains
// viewI over it: the multiset of elements held by valid slots, computed
// incrementally as Section 6.4 prescribes (the counts table is updated in
// O(1) per replayed write; the full array is never re-traversed).
//
// Write operations:
//
//	"slot-elt" i x     reserve slot i with element x (occupied, not valid)
//	"slot-clear" i     free slot i
//	"slot-valid" i b   set slot i's valid bit
//	"slot-move" from to   move a slot's content (vector compaction)
//
// The replica grows on demand, so the same replayer serves the fixed-size
// array of this package and the growable Multiset-Vector representation.
type Replayer struct {
	slots  []rslot
	counts map[int]int
	table  *view.Table
	// badValid counts slots that are valid but unoccupied: an invariant
	// violation tracked incrementally so Invariants is O(1).
	badValid int
}

type rslot struct {
	elt      int
	occupied bool
	valid    bool
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.slots = nil
	r.counts = make(map[int]int)
	r.table = view.NewTable()
	r.badValid = 0
}

// View implements core.Replayer. Keys are "e:<element>"; values are
// multiplicities — the same canonical form as the multiset specification's
// viewS, abstracting away slot positions entirely.
func (r *Replayer) View() *view.Table { return r.table }

func (r *Replayer) slot(i int) *rslot {
	for len(r.slots) <= i {
		r.slots = append(r.slots, rslot{})
	}
	return &r.slots[i]
}

// spaceE is the view key family of multiset elements, shared by name with
// the multiset specification so both views land in the same key universe.
var spaceE = view.NewSpace("e")

func (r *Replayer) count(elt, delta int) {
	n := r.counts[elt] + delta
	if n <= 0 {
		delete(r.counts, elt)
		r.table.DeleteInt(spaceE, int64(elt))
		return
	}
	r.counts[elt] = n
	r.table.SetInt(spaceE, int64(elt), int64(n))
}

func (r *Replayer) invariantDelta(before, after rslot) {
	if before.valid && !before.occupied {
		r.badValid--
	}
	if after.valid && !after.occupied {
		r.badValid++
	}
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "slot-elt":
		if len(args) != 2 {
			return fmt.Errorf("multiset replay: slot-elt wants index and element, got %v", args)
		}
		i, ok1 := event.Int(args[0])
		x, ok2 := event.Int(args[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("multiset replay: slot-elt non-integer args %v", args)
		}
		s := r.slot(i)
		before := *s
		// Overwriting a valid slot's element (only possible under the
		// FindSlot bug) changes the multiset contents.
		if s.valid && s.occupied {
			r.count(s.elt, -1)
			r.count(x, 1)
		}
		s.elt = x
		s.occupied = true
		r.invariantDelta(before, *s)
		return nil

	case "slot-clear":
		if len(args) != 1 {
			return fmt.Errorf("multiset replay: slot-clear wants index, got %v", args)
		}
		i, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("multiset replay: slot-clear non-integer arg %v", args)
		}
		s := r.slot(i)
		before := *s
		if s.valid && s.occupied {
			r.count(s.elt, -1)
		}
		s.occupied = false
		s.valid = false
		r.invariantDelta(before, *s)
		return nil

	case "slot-valid":
		if len(args) != 2 {
			return fmt.Errorf("multiset replay: slot-valid wants index and bool, got %v", args)
		}
		i, ok1 := event.Int(args[0])
		b, ok2 := args[1].(bool)
		if !ok1 || !ok2 {
			return fmt.Errorf("multiset replay: slot-valid bad args %v", args)
		}
		s := r.slot(i)
		before := *s
		if s.valid != b && s.occupied {
			if b {
				r.count(s.elt, 1)
			} else {
				r.count(s.elt, -1)
			}
		}
		s.valid = b
		r.invariantDelta(before, *s)
		return nil

	case "slot-move":
		if len(args) != 2 {
			return fmt.Errorf("multiset replay: slot-move wants from and to, got %v", args)
		}
		from, ok1 := event.Int(args[0])
		to, ok2 := event.Int(args[1])
		if !ok1 || !ok2 {
			return fmt.Errorf("multiset replay: slot-move non-integer args %v", args)
		}
		if from == to {
			return nil
		}
		src := r.slot(from)
		dst := r.slot(to)
		beforeSrc, beforeDst := *src, *dst
		// Compaction moves a slot's content; the multiset contents are
		// unchanged unless the destination held a valid element (which
		// correct compaction never overwrites).
		if dst.valid && dst.occupied {
			r.count(dst.elt, -1)
		}
		*dst = *src
		*src = rslot{}
		r.invariantDelta(beforeSrc, *src)
		r.invariantDelta(beforeDst, *dst)
		return nil
	}
	return fmt.Errorf("multiset replay: unknown op %q", op)
}

// Invariants implements core.Replayer: no slot may be valid without being
// occupied.
func (r *Replayer) Invariants() error {
	if r.badValid > 0 {
		return fmt.Errorf("%d slot(s) valid but unoccupied", r.badValid)
	}
	return nil
}

// Counts exposes the reconstructed element counts, for tests.
func (r *Replayer) Counts() map[int]int {
	out := make(map[int]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
