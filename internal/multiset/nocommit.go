package multiset

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// NoCommit wraps the multiset with call/return-only instrumentation: the
// inner implementation runs with a nil probe, so no commit actions, writes
// or view events are ever logged. This is the subject class VYRD's
// refinement checking cannot verify — a mutator execution with no commit
// action is an instrumentation violation — and exactly the class the
// linearizability engine opens up: a black-box library that cannot be
// annotated is checked from its call/return behavior alone.
type NoCommit struct {
	inner *Multiset
}

// NewNoCommit returns an annotation-free wrapper around a fresh multiset.
func NewNoCommit(n int, bug Bug) *NoCommit {
	return &NoCommit{inner: New(n, bug)}
}

// Insert logs only the call and return events around the uninstrumented
// operation.
func (m *NoCommit) Insert(p *vyrd.Probe, x int) bool {
	inv := p.Call("Insert", x)
	ok := m.inner.Insert(nil, x)
	inv.Return(ok)
	return ok
}

// InsertPair logs only call/return around the uninstrumented pair insert.
func (m *NoCommit) InsertPair(p *vyrd.Probe, x, y int) bool {
	inv := p.Call("InsertPair", x, y)
	ok := m.inner.InsertPair(nil, x, y)
	inv.Return(ok)
	return ok
}

// Delete logs only call/return around the uninstrumented delete.
func (m *NoCommit) Delete(p *vyrd.Probe, x int) bool {
	inv := p.Call("Delete", x)
	ok := m.inner.Delete(nil, x)
	inv.Return(ok)
	return ok
}

// LookUp logs only call/return around the uninstrumented membership test.
func (m *NoCommit) LookUp(p *vyrd.Probe, x int) bool {
	inv := p.Call("LookUp", x)
	ok := m.inner.LookUp(nil, x)
	inv.Return(ok)
	return ok
}

// NoCommitTarget adapts the annotation-free multiset to the harness. It is
// intentionally NOT part of the bench evaluation subjects: refinement
// checking rejects its logs by construction, so it lives outside the
// differential agreement suite and demonstrates the linearize-only path.
func NoCommitTarget(capacity int, bug Bug) harness.Target {
	return harness.Target{
		Name: "Multiset-NoCommit",
		New: func(log *vyrd.Log) harness.Instance {
			m := NewNoCommit(capacity, bug)
			return harness.Instance{Methods: []harness.Method{
				{Name: "Insert", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
					m.Insert(p, pick())
				}},
				{Name: "InsertPair", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
					m.InsertPair(p, pick(), pick())
				}},
				{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
					m.Delete(p, pick())
				}},
				{Name: "LookUp", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
					m.LookUp(p, pick())
				}},
			}}
		},
		NewSpec: func() core.Spec { return spec.NewMultiset() },
	}
}
