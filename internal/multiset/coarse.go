package multiset

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
	"repro/vyrd"
)

// This file implements the coarse-grained logging alternative of
// Section 6.2: instead of recording every shared-variable write ("slot-elt",
// "slot-valid", ...), each mutator logs a single data-structure-level entry
// describing its abstract effect ("ms-add x", "ms-pair x y", "ms-del x").
// Coarse logging is cheaper — and the paper's Section 7.2.1 observation is
// that it can be *too* coarse: the Fig. 5 FindSlot bug corrupts a slot
// another operation reserved, which fine-grained logging exposes to the
// replica and coarse logging hides (the coarse entry records the intended
// effect, not the observed slot state). TestCoarseLoggingMissesFindSlotBug
// demonstrates exactly that trade-off.

// Coarse wraps a Multiset with coarse-grained instrumentation. The
// underlying implementation (and its injected bug) is unchanged; only the
// logging granularity differs.
type Coarse struct {
	*Multiset
}

// NewCoarse returns a coarsely instrumented multiset.
func NewCoarse(n int, bug Bug) *Coarse {
	return &Coarse{Multiset: New(n, bug)}
}

// Insert adds one copy of x, logging its abstract effect only.
func (m *Coarse) Insert(p *vyrd.Probe, x int) bool {
	inv := p.Call("Insert", x)
	i := m.findSlot(nil, x) // slot writes are not logged at this granularity
	if i == -1 {
		inv.Commit("full")
		inv.Return(false)
		return false
	}
	s := &m.slots[i]
	s.mu.Lock()
	s.valid = true
	inv.CommitWrite("validated", "ms-add", x)
	s.mu.Unlock()
	inv.Return(true)
	return true
}

// InsertPair adds one copy of each of x and y, or neither.
func (m *Coarse) InsertPair(p *vyrd.Probe, x, y int) bool {
	inv := p.Call("InsertPair", x, y)
	i := m.findSlot(nil, x)
	if i == -1 {
		inv.Commit("full-x")
		inv.Return(false)
		return false
	}
	j := m.findSlot(nil, y)
	if j == -1 {
		m.release(nil, i)
		inv.Commit("full-y")
		inv.Return(false)
		return false
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	m.slots[lo].mu.Lock()
	if hi != lo {
		m.slots[hi].mu.Lock()
	}
	m.slots[i].valid = true
	m.slots[j].valid = true
	inv.CommitWrite("pair", "ms-pair", x, y)
	if hi != lo {
		m.slots[hi].mu.Unlock()
	}
	m.slots[lo].mu.Unlock()
	inv.Return(true)
	return true
}

// Delete removes one copy of x if found.
func (m *Coarse) Delete(p *vyrd.Probe, x int) bool {
	inv := p.Call("Delete", x)
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if s.occupied && s.valid && s.elt == x {
			s.valid = false
			s.occupied = false
			inv.CommitWrite("deleted", "ms-del", x)
			s.mu.Unlock()
			inv.Return(true)
			return true
		}
		s.mu.Unlock()
	}
	inv.Commit("not-found")
	inv.Return(false)
	return false
}

// LookUp reports membership (observer; identical to the fine-grained one).
func (m *Coarse) LookUp(p *vyrd.Probe, x int) bool {
	inv := p.Call("LookUp", x)
	found := false
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if s.occupied && s.valid && s.elt == x {
			found = true
		}
		s.mu.Unlock()
		if found {
			break
		}
	}
	inv.Return(found)
	return found
}

// CoarseReplayer reconstructs the multiset from coarse entries: the replica
// is the abstract counts directly, with no slot structure — which is
// precisely why slot-level corruption is invisible to it.
type CoarseReplayer struct {
	counts map[int]int
	table  *view.Table
}

// NewCoarseReplayer returns an empty coarse replica.
func NewCoarseReplayer() *CoarseReplayer {
	r := &CoarseReplayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *CoarseReplayer) Reset() {
	r.counts = make(map[int]int)
	r.table = view.NewTable()
}

// View implements core.Replayer.
func (r *CoarseReplayer) View() *view.Table { return r.table }

// Invariants implements core.Replayer: the coarse replica has no internal
// structure to check.
func (r *CoarseReplayer) Invariants() error { return nil }

func (r *CoarseReplayer) bump(x, delta int) {
	n := r.counts[x] + delta
	if n <= 0 {
		delete(r.counts, x)
		r.table.DeleteInt(spaceE, int64(x))
		return
	}
	r.counts[x] = n
	r.table.SetInt(spaceE, int64(x), int64(n))
}

// Apply implements core.Replayer.
func (r *CoarseReplayer) Apply(op string, args []event.Value) error {
	switch op {
	case "ms-add":
		if len(args) != 1 {
			return fmt.Errorf("coarse replay: ms-add wants one element, got %v", args)
		}
		r.bump(event.MustInt(args[0]), 1)
		return nil
	case "ms-pair":
		if len(args) != 2 {
			return fmt.Errorf("coarse replay: ms-pair wants two elements, got %v", args)
		}
		r.bump(event.MustInt(args[0]), 1)
		r.bump(event.MustInt(args[1]), 1)
		return nil
	case "ms-del":
		if len(args) != 1 {
			return fmt.Errorf("coarse replay: ms-del wants one element, got %v", args)
		}
		r.bump(event.MustInt(args[0]), -1)
		return nil
	}
	return fmt.Errorf("coarse replay: unknown op %q", op)
}
