// Package multiset implements the paper's running example (Section 2): a
// concurrently-accessed multiset of integers stored in an array of slots
// with per-slot locks and valid bits (Figs. 2 and 4), instrumented for VYRD
// refinement checking.
//
// Membership semantics: an element x is in the multiset iff some slot holds
// x with its valid bit set. FindSlot reserves a slot (occupied, not yet
// valid); the commit action of Insert/InsertPair is the setting of the valid
// bit(s), which is where the modified abstract state becomes visible to
// other threads (Section 2.1).
//
// The Bug parameter injects the buggy FindSlot of Fig. 5: the emptiness test
// is performed before acquiring the slot lock, so two concurrent FindSlot
// calls can both reserve the same slot and one element overwrites the other
// (the Fig. 6 refinement violation).
package multiset

import (
	"runtime"
	"sync"

	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugFindSlotAcquire moves the slot-emptiness check before the lock
	// acquisition (Fig. 5: "A[i] should be locked").
	BugFindSlotAcquire
	// BugDirtyPairVisibility sets InsertPair's two valid bits without
	// holding the slot locks, breaking the atomicity of the commit block
	// (Section 5.2's scenario: another thread can observe the dirty state
	// where x is in the multiset but y is not yet). The instrumentation
	// still declares the block, so the checker's replica stays atomic —
	// the discrepancy surfaces through observers that see the dirty state
	// the witness interleaving cannot produce.
	BugDirtyPairVisibility
	// BugTornPair is BugDirtyPairVisibility without the explicit
	// runtime.Gosched widening the race window: the torn state (x valid, y
	// not yet) is exposed only for the handful of instructions between the
	// two unprotected writes, so wall-clock stress essentially never
	// observes it. The window does contain probe actions, though, so the
	// controlled scheduler (internal/sched) can park the writer inside it
	// and run an observer — the planted bug for schedule exploration.
	BugTornPair
)

type slot struct {
	mu       sync.Mutex
	elt      int
	occupied bool
	valid    bool
}

// Multiset is the array-based implementation. All public methods take the
// calling goroutine's probe; a nil probe runs the method uninstrumented.
type Multiset struct {
	slots []slot
	bug   Bug

	// RaceWindow, when non-nil, is invoked in the buggy FindSlot between
	// the unprotected emptiness check and the lock acquisition. Tests use
	// it to force the Fig. 6 interleaving deterministically.
	RaceWindow func(i int)
}

// New returns an empty multiset with capacity n slots.
func New(n int, bug Bug) *Multiset {
	return &Multiset{slots: make([]slot, n), bug: bug}
}

// Cap returns the slot capacity.
func (m *Multiset) Cap() int { return len(m.slots) }

// findSlot looks for an available slot for element x, reserves it and
// returns its index, or returns -1 if the array is full (Fig. 2). The
// reservation write is logged as a plain (non-commit) write: a reserved
// slot is not yet valid, so it is outside the view's membership support.
func (m *Multiset) findSlot(p *vyrd.Probe, x int) int {
	if m.bug == BugFindSlotAcquire {
		return m.findSlotBuggy(p, x)
	}
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if !s.occupied {
			s.occupied = true
			s.elt = x
			p.Write("slot-elt", i, x)
			s.mu.Unlock()
			return i
		}
		s.mu.Unlock()
	}
	return -1
}

// findSlotBuggy is Fig. 5: the emptiness check happens without holding the
// slot lock, so the subsequent reservation can overwrite another thread's.
func (m *Multiset) findSlotBuggy(p *vyrd.Probe, x int) int {
	for i := range m.slots {
		s := &m.slots[i]
		if !s.occupied { // BUG: A[i] should be locked for this check
			if m.RaceWindow != nil {
				m.RaceWindow(i)
			} else {
				// Model OS preemption inside the race window: without a
				// yield, Go's cooperative scheduling on one core would make
				// the unprotected check effectively atomic and the injected
				// race unschedulable.
				runtime.Gosched()
			}
			p.Yield() // controlled-scheduler preemption point inside the race window
			s.mu.Lock()
			s.occupied = true
			s.elt = x
			p.Write("slot-elt", i, x)
			s.mu.Unlock()
			return i
		}
	}
	return -1
}

// release frees a previously reserved (not yet valid) slot, used by the
// failure path of InsertPair (Fig. 4 line 6).
func (m *Multiset) release(p *vyrd.Probe, i int) {
	s := &m.slots[i]
	s.mu.Lock()
	s.occupied = false
	s.valid = false
	p.Write("slot-clear", i)
	s.mu.Unlock()
}

// Insert adds one copy of x. It returns false (an unsuccessful termination,
// permitted by the specification) when no slot is available.
func (m *Multiset) Insert(p *vyrd.Probe, x int) bool {
	inv := p.Call("Insert", x)
	i := m.findSlot(p, x)
	if i == -1 {
		inv.Commit("full")
		inv.Return(false)
		return false
	}
	s := &m.slots[i]
	s.mu.Lock()
	s.valid = true
	inv.CommitWrite("validated", "slot-valid", i, true)
	s.mu.Unlock()
	inv.Return(true)
	return true
}

// InsertPair adds one copy of each of x and y, or neither (Fig. 4). The
// valid bits of both slots are set inside the commit block of lines 9-14;
// the commit action is the end of that block (Section 2.1).
func (m *Multiset) InsertPair(p *vyrd.Probe, x, y int) bool {
	inv := p.Call("InsertPair", x, y)
	i := m.findSlot(p, x)
	if i == -1 {
		inv.Commit("full-x")
		inv.Return(false)
		return false
	}
	j := m.findSlot(p, y)
	if j == -1 {
		m.release(p, i)
		inv.Commit("full-y")
		inv.Return(false)
		return false
	}
	if m.bug == BugDirtyPairVisibility || m.bug == BugTornPair {
		// BUG: the valid bits are set without the slot locks (and hence
		// without commit-block atomicity); between the two writes the
		// multiset exposes a state containing x but not y.
		inv.BeginCommitBlock()
		m.slots[i].valid = true
		p.Write("slot-valid", i, true)
		if m.bug == BugDirtyPairVisibility {
			if m.RaceWindow != nil {
				m.RaceWindow(j)
			} else {
				runtime.Gosched() // model preemption between the two writes
			}
		}
		p.Yield() // controlled-scheduler preemption point inside the torn window
		m.slots[j].valid = true
		p.Write("slot-valid", j, true)
		inv.Commit("pair")
		inv.EndCommitBlock()
		inv.Return(true)
		return true
	}

	// Lock both reserved slots in index order. (Fig. 4 locks A[i] then
	// A[j]; index order additionally keeps the locking deadlock-free even
	// when the injected FindSlot bug hands two threads the same slot.)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	inv.BeginCommitBlock()
	m.slots[lo].mu.Lock()
	if hi != lo {
		m.slots[hi].mu.Lock()
	}
	m.slots[i].valid = true
	p.Write("slot-valid", i, true)
	m.slots[j].valid = true
	p.Write("slot-valid", j, true)
	inv.Commit("pair")
	if hi != lo {
		m.slots[hi].mu.Unlock()
	}
	m.slots[lo].mu.Unlock()
	inv.EndCommitBlock()
	inv.Return(true)
	return true
}

// Delete removes one copy of x if a valid slot holding x is found. A false
// return ("not found") is always permitted by the specification: the scan
// may correctly miss an element inserted behind its front.
func (m *Multiset) Delete(p *vyrd.Probe, x int) bool {
	inv := p.Call("Delete", x)
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if s.occupied && s.valid && s.elt == x {
			inv.BeginCommitBlock()
			s.valid = false
			p.Write("slot-valid", i, false)
			s.occupied = false
			p.Write("slot-clear", i)
			inv.Commit("deleted")
			inv.EndCommitBlock()
			s.mu.Unlock()
			inv.Return(true)
			return true
		}
		s.mu.Unlock()
	}
	inv.Commit("not-found")
	inv.Return(false)
	return false
}

// LookUp reports whether x is in the multiset. It is an observer: only its
// call and return actions are logged (Section 4.3).
func (m *Multiset) LookUp(p *vyrd.Probe, x int) bool {
	inv := p.Call("LookUp", x)
	found := false
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if s.occupied && s.valid && s.elt == x {
			found = true
		}
		s.mu.Unlock()
		if found {
			break
		}
	}
	inv.Return(found)
	return found
}

// Contents returns the current multiset contents as element counts. It is
// not linearizable with concurrent mutators; tests use it on quiesced
// instances.
func (m *Multiset) Contents() map[int]int {
	out := make(map[int]int)
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		if s.occupied && s.valid {
			out[s.elt]++
		}
		s.mu.Unlock()
	}
	return out
}
