package multiset

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/vyrd"
)

// Section 4.1: "The runtime refinement check could fail either because the
// implementation truly does not refine the specification or because the
// witness interleaving obtained using the commit actions is wrong.
// Comparing the witness interleaving with the implementation trace reveals
// which one is the case."
//
// These tests reproduce that debugging workflow: a CORRECT multiset whose
// Insert is annotated at the wrong action — the slot reservation in
// FindSlot, before the valid bit is set — produces a refinement violation,
// because the witness interleaving claims the element is visible earlier
// than it actually is. Moving the annotation to the visibility point (the
// valid-bit write) makes the same schedule pass.

// misannotatedInsert is Insert with the commit action placed at the slot
// reservation instead of the validation — correct code, wrong annotation.
func misannotatedInsert(m *Multiset, p *vyrd.Probe, x int, pause func()) bool {
	inv := p.Call("Insert", x)
	// Reserve a slot, committing there (the wrong place).
	i := -1
	for idx := range m.slots {
		s := &m.slots[idx]
		s.mu.Lock()
		if !s.occupied {
			s.occupied = true
			s.elt = x
			p.Write("slot-elt", idx, x)
			inv.Commit("reserved") // WRONG: the element is not yet visible
			s.mu.Unlock()
			i = idx
			break
		}
		s.mu.Unlock()
	}
	if i == -1 {
		inv.Commit("full")
		inv.Return(false)
		return false
	}
	if pause != nil {
		pause()
	}
	s := &m.slots[i]
	s.mu.Lock()
	s.valid = true
	p.Write("slot-valid", i, true)
	s.mu.Unlock()
	inv.Return(true)
	return true
}

// annotatedInsert is the correctly annotated counterpart, with the same
// pause point for an identical schedule.
func annotatedInsert(m *Multiset, p *vyrd.Probe, x int, pause func()) bool {
	inv := p.Call("Insert", x)
	i := m.findSlot(p, x)
	if i == -1 {
		inv.Commit("full")
		inv.Return(false)
		return false
	}
	if pause != nil {
		pause()
	}
	s := &m.slots[i]
	s.mu.Lock()
	s.valid = true
	inv.CommitWrite("validated", "slot-valid", i, true)
	s.mu.Unlock()
	inv.Return(true)
	return true
}

// runAnnotationSchedule drives the deterministic schedule: the inserter
// pauses between its reservation and its validation; a concurrent LookUp
// observes the element as absent in that window.
func runAnnotationSchedule(t *testing.T, insert func(*Multiset, *vyrd.Probe, int, func()) bool) *vyrd.Log {
	t.Helper()
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(8, BugNone)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	paused := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	pause := func() {
		once.Do(func() {
			close(paused)
			<-resume
		})
	}

	done := make(chan bool)
	go func() { done <- insert(m, p1, 5, pause) }()
	<-paused
	// The element is reserved but not valid: a lookup correctly misses it.
	if m.LookUp(p2, 5) {
		t.Fatal("element visible before validation; implementation broken")
	}
	close(resume)
	if !<-done {
		t.Fatal("insert failed")
	}
	log.Close()
	return log
}

func TestMisannotatedCommitFailsCorrectCode(t *testing.T) {
	log := runAnnotationSchedule(t, misannotatedInsert)
	rep, err := vyrd.Check(log, spec.NewMultiset(),
		vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("the misannotated commit should produce a (spurious) violation")
	}
	// The witness view is the diagnosis aid: it shows the Insert committed
	// before the LookUp's window, revealing the annotation — not the
	// implementation — as the culprit.
	var buf bytes.Buffer
	vyrd.WriteWitness(&buf, log.Snapshot())
	out := buf.String()
	if !strings.Contains(out, "reserved") {
		t.Fatalf("witness dump does not show the suspect commit label:\n%s", out)
	}
	insertPos := strings.Index(out, "Insert[5]")
	lookupPos := strings.Index(out, "LookUp[5]")
	if insertPos < 0 || lookupPos < 0 || insertPos > lookupPos {
		t.Fatalf("witness should order the (mis)committed Insert before the LookUp:\n%s", out)
	}
}

func TestProperlyAnnotatedCommitPassesSameSchedule(t *testing.T) {
	log := runAnnotationSchedule(t, annotatedInsert)
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		opts := []vyrd.Option{vyrd.WithMode(mode)}
		if mode == vyrd.ModeView {
			opts = append(opts, vyrd.WithReplayer(NewReplayer()))
		}
		rep, err := vyrd.Check(log, spec.NewMultiset(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("correct annotation flagged in %v mode:\n%s", mode, rep)
		}
	}
}
