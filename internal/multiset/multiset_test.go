package multiset

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewMultiset(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

// TestSequentialOperations drives the full method surface single-threaded
// and checks both refinement modes pass.
func TestSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(8, BugNone)

	if !m.Insert(p, 3) {
		t.Fatal("Insert(3) failed on an empty multiset")
	}
	if !m.InsertPair(p, 4, 5) {
		t.Fatal("InsertPair(4,5) failed")
	}
	if !m.LookUp(p, 3) || !m.LookUp(p, 4) || !m.LookUp(p, 5) {
		t.Fatal("inserted elements not found")
	}
	if m.LookUp(p, 9) {
		t.Fatal("phantom element found")
	}
	if !m.Delete(p, 4) {
		t.Fatal("Delete(4) failed")
	}
	if m.LookUp(p, 4) {
		t.Fatal("deleted element still found")
	}
	if m.Delete(p, 4) {
		t.Fatal("second Delete(4) succeeded")
	}
	log.Close()

	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

// TestCapacityExhaustion: inserts beyond capacity fail and the failures
// refine the spec (failure leaves the state unchanged).
func TestCapacityExhaustion(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(2, BugNone)

	if !m.Insert(p, 1) || !m.Insert(p, 2) {
		t.Fatal("initial inserts failed")
	}
	if m.Insert(p, 3) {
		t.Fatal("insert into a full multiset succeeded")
	}
	if m.InsertPair(p, 4, 5) {
		t.Fatal("pair insert into a full multiset succeeded")
	}
	if !m.Delete(p, 1) {
		t.Fatal("delete failed")
	}
	// One free slot: InsertPair must fail and release its reservation.
	if m.InsertPair(p, 6, 7) {
		t.Fatal("pair insert with one free slot succeeded")
	}
	if !m.Insert(p, 8) {
		t.Fatal("slot was not released by the failing InsertPair")
	}
	log.Close()

	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

// TestFig6Deterministic forces the Fig. 6 overwrite with a fully
// deterministic schedule by driving the two threads through explicit
// channels keyed on the racing slot.
func TestFig6Deterministic(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(8, BugFindSlotAcquire)

	p1 := log.NewProbe()
	p2 := log.NewProbe()

	t2Entered := make(chan struct{})
	t1Done := make(chan struct{})
	var gateOnce sync.Once

	// T2 announces it is inside the race window for slot 0 and waits for T1
	// to finish its whole InsertPair(5,6).
	m.RaceWindow = func(i int) {
		if i == 0 {
			gateOnce.Do(func() {
				close(t2Entered)
				<-t1Done
			})
		}
	}

	done := make(chan bool)
	go func() {
		done <- m.InsertPair(p2, 7, 8)
	}()

	<-t2Entered // T2 has read slot 0 as empty and is paused.
	m.RaceWindow = nil
	if !m.InsertPair(p1, 5, 6) { // T1 inserts 5 at slot 0, 6 at slot 1.
		t.Fatal("T1 InsertPair failed")
	}
	close(t1Done) // T2 overwrites slot 0 with 7, then reserves slot 2 for 8.
	if !<-done {
		t.Fatal("T2 InsertPair failed")
	}
	log.Close()

	// View refinement detects the lost element 5 at T2's commit.
	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the Fig. 6 bug:\n%s\nlog:\n%v", rep, log.Snapshot())
	}
	v := rep.First()
	if v.Kind != vyrd.ViolationView {
		t.Fatalf("expected a view violation, got %v", v)
	}

	// I/O refinement alone cannot see it on this trace (no observers ran).
	ioRep := checkLog(t, log, vyrd.ModeIO)
	if !ioRep.Ok() {
		t.Fatalf("I/O refinement unexpectedly flagged the observer-free trace:\n%s", ioRep)
	}
}

// TestFig6IODetectionViaLookup extends the deterministic schedule with the
// paper's LookUp(5): I/O refinement then catches the bug as an observer
// violation.
func TestFig6IODetectionViaLookup(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelIO)
	m := New(8, BugFindSlotAcquire)

	p1 := log.NewProbe()
	p2 := log.NewProbe()

	t2Entered := make(chan struct{})
	t1Done := make(chan struct{})
	var gateOnce sync.Once
	m.RaceWindow = func(i int) {
		if i == 0 {
			gateOnce.Do(func() {
				close(t2Entered)
				<-t1Done
			})
		}
	}

	done := make(chan bool)
	go func() { done <- m.InsertPair(p2, 7, 8) }()
	<-t2Entered
	m.RaceWindow = nil
	if !m.InsertPair(p1, 5, 6) {
		t.Fatal("T1 InsertPair failed")
	}
	close(t1Done)
	if !<-done {
		t.Fatal("T2 InsertPair failed")
	}

	// The spec state is {5,6,7,8}; the implementation lost 5.
	if m.LookUp(p1, 5) {
		t.Fatal("implementation still contains 5; the bug did not trigger")
	}
	log.Close()

	rep := checkLog(t, log, vyrd.ModeIO)
	if rep.Ok() {
		t.Fatalf("I/O refinement missed the LookUp(5) discrepancy:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationObserver {
		t.Fatalf("expected an observer violation, got %v", rep.First())
	}
}

// TestConcurrentCorrectPassesBothModes hammers the correct implementation
// with concurrent threads; no violations may be reported (false-positive
// freedom under contention).
func TestConcurrentCorrectPassesBothModes(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(64, BugNone)

	const threads = 8
	const opsPerThread = 300
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*31 + 7
			for i := 0; i < opsPerThread; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				key := x % 16
				switch x % 5 {
				case 0:
					m.Insert(p, key)
				case 1:
					m.InsertPair(p, key, (key+1)%16)
				case 2:
					m.Delete(p, key)
				default:
					m.LookUp(p, key)
				}
			}
		}(th)
	}
	wg.Wait()
	log.Close()

	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive in %v mode:\n%s", mode, rep)
		}
	}
}

// TestReplayerMatchesImplementation replays a recorded run and compares the
// replica's reconstructed counts against the quiesced implementation.
func TestReplayerMatchesImplementation(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(32, BugNone)
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0, 1:
			m.Insert(p, i%7)
		case 2:
			m.InsertPair(p, i%7, (i+1)%7)
		case 3:
			m.Delete(p, i%7)
		}
	}
	log.Close()

	r := NewReplayer()
	for _, e := range log.Snapshot() {
		if e.Kind == event.KindWrite {
			if err := r.Apply(e.Method, e.Args); err != nil {
				t.Fatalf("replay: %v", err)
			}
		}
		if e.WOp != "" {
			if err := r.Apply(e.WOp, e.WArgs); err != nil {
				t.Fatalf("replay commit-write: %v", err)
			}
		}
	}
	want := m.Contents()
	got := r.Counts()
	if len(want) != len(got) {
		t.Fatalf("replica counts differ: got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("replica count for %d: got %d want %d", k, got[k], v)
		}
	}
}

// TestBugDirtyPairVisibility forces the Section 5.2 dirty-state scenario:
// the buggy InsertPair sets its two valid bits without commit-block
// atomicity, and a concurrent LookUp observes element x while the pair's
// commit has not yet happened. The observer's return value is valid at no
// state of its window, so I/O refinement flags it — demonstrating that the
// checker detects violations of the commit-block atomicity assumption
// rather than being fooled by them.
func TestBugDirtyPairVisibility(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(8, BugDirtyPairVisibility)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	midBlock := make(chan struct{})
	lookedUp := make(chan struct{})
	var once sync.Once
	m.RaceWindow = func(j int) {
		once.Do(func() {
			close(midBlock)
			<-lookedUp
		})
	}

	done := make(chan bool)
	go func() { done <- m.InsertPair(p1, 5, 6) }()
	<-midBlock
	// T2 observes the dirty state: 5 is visible, the pair has not committed.
	if !m.LookUp(p2, 5) {
		t.Fatal("dirty state not visible; the schedule did not expose the bug")
	}
	close(lookedUp)
	if !<-done {
		t.Fatal("InsertPair failed")
	}
	log.Close()

	rep := checkLog(t, log, vyrd.ModeIO)
	if rep.Ok() {
		t.Fatalf("I/O refinement missed the dirty read:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationObserver || rep.First().Method != "LookUp" {
		t.Fatalf("expected an observer violation on LookUp, got %v", rep.First())
	}
	// View mode must agree (same observer machinery).
	if rep := checkLog(t, log, vyrd.ModeView); rep.Ok() {
		t.Fatalf("view refinement missed the dirty read:\n%s", rep)
	}
}
