package harness_test

import (
	"testing"

	"repro/internal/blinkstore"
	"repro/internal/blinktree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/jsbuffer"
	"repro/internal/jvector"
	"repro/internal/mstree"
	"repro/internal/msvector"
	"repro/internal/multiset"
	"repro/internal/racecheck"
	"repro/internal/scanfs"
	"repro/vyrd"
)

// correctTargets enumerates every subject's correct implementation.
func correctTargets() []harness.Target {
	return []harness.Target{
		multiset.Target(128, multiset.BugNone),
		msvector.Target(msvector.BugNone),
		mstree.Target(mstree.BugNone),
		jvector.Target(jvector.BugNone),
		jsbuffer.Target(jsbuffer.BugNone),
		cache.Target(cache.BugNone),
		blinktree.Target(6, blinktree.BugNone),
		scanfs.Target(scanfs.BugNone),
		blinkstore.Target(6, blinkstore.BugNone),
	}
}

// buggyTargets enumerates every subject's injected bug (the Table 1 rows).
func buggyTargets() []harness.Target {
	return []harness.Target{
		multiset.Target(32, multiset.BugFindSlotAcquire),
		msvector.Target(msvector.BugFindSlotAcquire),
		mstree.Target(mstree.BugUnlockParent),
		jvector.Target(jvector.BugLastIndexOf),
		jsbuffer.Target(jsbuffer.BugUnprotectedCopy),
		cache.Target(cache.BugUnprotectedWrite),
		blinktree.Target(6, blinktree.BugDuplicateInsert),
		scanfs.Target(scanfs.BugUnprotectedBlockWrite),
		blinkstore.Target(6, blinkstore.BugDuplicateInsert),
	}
}

// TestCorrectTargetsNoFalsePositives is the load-bearing soundness test:
// every correct implementation, hammered concurrently with the shrinking
// key pool and its compression thread running, must produce zero
// violations in both refinement modes across several seeds.
func TestCorrectTargetsNoFalsePositives(t *testing.T) {
	for _, target := range correctTargets() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				cfg := harness.Config{
					Threads:      8,
					OpsPerThread: 250,
					KeyPool:      48,
					Shrink:       true,
					Seed:         seed,
					Level:        vyrd.LevelView,
				}
				res := harness.Run(target, cfg)
				for _, mode := range []core.Mode{core.ModeIO, core.ModeView} {
					rep, err := harness.Check(target, res, mode, false)
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, mode, err)
					}
					if !rep.Ok() {
						t.Fatalf("seed %d %v: false positive:\n%s", seed, mode, rep)
					}
				}
			}
		})
	}
}

// TestBuggyTargetsDetected runs each injected bug under heavy contention
// until a violation is found in view mode (and, with more repetitions
// allowed, in I/O mode). A bug that never manifests within the budget fails
// the test.
func TestBuggyTargetsDetected(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	for _, target := range buggyTargets() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			detected := false
			for seed := int64(1); seed <= 40 && !detected; seed++ {
				cfg := harness.Config{
					Threads:      8,
					OpsPerThread: 400,
					KeyPool:      16,
					Shrink:       true,
					Seed:         seed,
					Level:        vyrd.LevelView,
				}
				res := harness.Run(target, cfg)
				rep, err := harness.Check(target, res, core.ModeView, true)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Ok() {
					detected = true
					t.Logf("seed %d: detected after %d methods: %s",
						seed, rep.First().MethodsCompleted, rep.First())
				}
			}
			if !detected {
				t.Fatalf("bug in %s never detected across seeds", target.Name)
			}
		})
	}
}

// TestViewSubsumesIO: on any trace where I/O refinement (fail-fast) finds a
// violation, view refinement must find one too, at the same point or
// earlier in the witness interleaving.
func TestViewSubsumesIO(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	for _, target := range buggyTargets() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 20; seed++ {
				cfg := harness.Config{
					Threads:      8,
					OpsPerThread: 400,
					KeyPool:      16,
					Shrink:       true,
					Seed:         seed,
					Level:        vyrd.LevelView,
				}
				res := harness.Run(target, cfg)
				ioRep, err := harness.Check(target, res, core.ModeIO, true)
				if err != nil {
					t.Fatal(err)
				}
				if ioRep.Ok() {
					continue
				}
				viewRep, err := harness.Check(target, res, core.ModeView, true)
				if err != nil {
					t.Fatal(err)
				}
				if viewRep.Ok() {
					t.Fatalf("seed %d: I/O refinement found %s but view refinement found nothing",
						seed, ioRep.First())
				}
				if viewRep.First().MethodsCompleted > ioRep.First().MethodsCompleted {
					t.Fatalf("seed %d: view refinement detected later (%d methods) than I/O (%d methods)",
						seed, viewRep.First().MethodsCompleted, ioRep.First().MethodsCompleted)
				}
				return // one informative trace per target suffices
			}
			t.Skip("no I/O-detectable trace within the seed budget")
		})
	}
}

// TestOnlineCheckerMatchesOffline runs the checker online (concurrently
// with the workload, Table 3's architecture) and offline on the same trace
// and requires identical verdicts.
func TestOnlineCheckerMatchesOffline(t *testing.T) {
	target := multiset.Target(128, multiset.BugNone)
	cfg := harness.Config{
		Threads:      6,
		OpsPerThread: 200,
		KeyPool:      32,
		Shrink:       true,
		Seed:         7,
		Level:        vyrd.LevelView,
	}
	log := vyrd.NewLog(cfg.Level)
	wait, err := log.StartChecker(target.NewSpec(),
		vyrd.WithReplayer(target.NewReplayer()), vyrd.WithMode(vyrd.ModeView))
	if err != nil {
		t.Fatal(err)
	}
	res := harness.RunOnLog(target, cfg, log)
	onlineRep := wait()
	if !onlineRep.Ok() {
		t.Fatalf("online checker reported violations on a correct run:\n%s", onlineRep)
	}
	offlineRep, err := harness.Check(target, res, core.ModeView, false)
	if err != nil {
		t.Fatal(err)
	}
	if offlineRep.Ok() != onlineRep.Ok() ||
		offlineRep.CommitsApplied != onlineRep.CommitsApplied ||
		offlineRep.ObserversChecked != onlineRep.ObserversChecked {
		t.Fatalf("online/offline divergence:\nonline:  %s\noffline: %s", onlineRep, offlineRep)
	}
}
