package harness_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/racecheck"
	"repro/internal/sched"
	"repro/vyrd"
)

// controlledRun executes one controlled run of the target and returns the
// framed log bytes and the offline report.
func controlledRun(t *testing.T, tgt harness.Target, seed int64) ([]byte, *core.Report) {
	t.Helper()
	sch := sched.New(sched.Options{Seed: seed, D: 3, K: 400})
	log := vyrd.NewLogWith(vyrd.LevelView, vyrd.LogOptions{})
	var buf bytes.Buffer
	if err := log.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := harness.Config{
		Threads: 3, OpsPerThread: 8, KeyPool: 6,
		Seed: seed, Level: vyrd.LevelView, Sched: sch,
	}
	res := harness.RunOnLog(tgt, cfg, log)
	stats := sch.Wait()
	if stats.FreeRun {
		t.Fatalf("seed %d fell back to free-running", seed)
	}
	if err := log.SinkErr(); err != nil {
		t.Fatal(err)
	}
	rep, err := harness.Check(tgt, res, core.ModeView, false)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestControlledRunDeterminism pins the controlled scheduler's central
// contract: the same Config.Seed yields, across two fully independent Run
// invocations, a byte-identical framed log (FormatVersion-2 codec) and an
// identical checker report. A seed is a schedule.
func TestControlledRunDeterminism(t *testing.T) {
	if racecheck.Enabled {
		// Steal-on-block fires on a wall-clock timeout that assumes a
		// granted task reaches its next yield quickly unless it is
		// genuinely blocked; the race detector's order-of-magnitude
		// slowdown makes the timer fire on merely-slow tasks, and a
		// spurious steal is a real scheduling difference. Determinism is
		// a normal-build contract (CI's explore smoke runs without
		// -race).
		t.Skip("steal timing is perturbed under the race detector")
	}
	for _, sub := range []string{"Multiset-Array", "BLinkTree", "Cache"} {
		sub := sub
		t.Run(sub, func(t *testing.T) {
			tgt, ok := bench.SubjectByName(sub)
			if !ok {
				t.Fatalf("unknown subject %s", sub)
			}
			for seed := int64(0); seed < 5; seed++ {
				b1, r1 := controlledRun(t, tgt.Correct, seed)
				b2, r2 := controlledRun(t, tgt.Correct, seed)
				if !bytes.Equal(b1, b2) {
					t.Fatalf("seed %d: log bytes differ across runs (%d vs %d bytes)",
						seed, len(b1), len(b2))
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("seed %d: reports differ:\n  %+v\n  %+v", seed, r1, r2)
				}
				if len(b1) == 0 {
					t.Fatalf("seed %d: empty log", seed)
				}
			}
		})
	}
}

// TestControlledDifferentSeedsDiffer guards against the scheduler pinning
// one interleaving regardless of seed: across a handful of seeds at least
// two runs must produce different logs.
func TestControlledDifferentSeedsDiffer(t *testing.T) {
	tgt, _ := bench.SubjectByName("Multiset-Array")
	first, _ := controlledRun(t, tgt.Correct, 0)
	for seed := int64(1); seed <= 8; seed++ {
		b, _ := controlledRun(t, tgt.Correct, seed)
		if !bytes.Equal(first, b) {
			return
		}
	}
	t.Error("seeds 0..8 all produced byte-identical logs")
}

// TestUncontrolledPathUnchanged guards the existing stress path: a nil
// Sched must keep using the per-thread rng streams (not the per-op
// derivation), so seed-stable uncontrolled artifacts and tables from
// earlier PRs are unaffected. Two uncontrolled runs of a single-threaded
// config are deterministic, which makes them comparable.
func TestUncontrolledPathUnchanged(t *testing.T) {
	tgt, _ := bench.SubjectByName("Multiset-Array")
	run := func() []byte {
		log := vyrd.NewLogWith(vyrd.LevelView, vyrd.LogOptions{})
		var buf bytes.Buffer
		if err := log.AttachSink(&buf); err != nil {
			t.Fatal(err)
		}
		harness.RunOnLog(tgt.Correct, harness.Config{
			Threads: 1, OpsPerThread: 16, KeyPool: 6, Seed: 9, Level: vyrd.LevelView,
		}, log)
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("single-threaded uncontrolled runs with one seed diverged")
	}
}
