// Package harness implements the paper's test-harness recipe
// (Section 7.1): each test program generates a random pool of keys shared
// by all threads, creates a number of threads that concurrently issue
// random method calls with arguments drawn from the pool against the same
// data structure instance, and gradually reduces the pool over time to
// focus contention on a smaller region of the structure. Implementations
// with compression mechanisms run their compression thread continuously.
package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/sched"
	"repro/vyrd"
)

// Method is one operation the harness can issue: a name (for reporting), a
// selection weight, and the call itself. pick draws a key from the shared
// (shrinking) pool.
type Method struct {
	Name   string
	Weight int
	Run    func(p *vyrd.Probe, rng *rand.Rand, pick func() int)
}

// Instance is a data structure bound to a log, ready to be exercised.
type Instance struct {
	// Methods is the operation mix.
	Methods []Method
	// WorkerStep, when non-nil, performs one pass of the structure's
	// internal maintenance (compression, flushing, reclaiming); the harness
	// runs it continuously on a worker thread for the duration of the run.
	WorkerStep func(p *vyrd.Probe)
}

// Target describes a checkable subject: how to build an instance over a
// log, and how to build its specification and replica.
type Target struct {
	Name        string
	New         func(log *vyrd.Log) Instance
	NewSpec     func() core.Spec
	NewReplayer func() core.Replayer // nil when view refinement is unsupported
}

// Config parameterizes one run.
type Config struct {
	Threads      int
	OpsPerThread int
	// KeyPool is the size of the initial random key pool; the pool shrinks
	// to roughly a fifth of this over the run when Shrink is set.
	KeyPool int
	Shrink  bool
	Seed    int64
	Level   vyrd.Level
	// LogOptions tunes the log's storage pipeline (segment size, truncation,
	// bounded-memory window) for logs created by Run.
	LogOptions vyrd.LogOptions

	// Sched, when non-nil, runs the harness under the controlled scheduler:
	// every application thread (and the maintenance worker) registers as a
	// task and yields at each probe action, so the interleaving — and
	// therefore the log, byte for byte — is determined by the scheduler's
	// seed instead of the OS. The scheduler must be fresh (not started);
	// the harness registers its tasks and starts it. The caller owns
	// Sched.Wait for the run's scheduling stats.
	Sched *sched.Scheduler
	// SkipOp, when non-nil under Sched, drops operation op of thread
	// thread. Each operation draws its randomness from (Seed, thread, op),
	// so a skip does not perturb the remaining operations — the seam the
	// schedule shrinker uses to delete whole harness operations.
	SkipOp func(thread, op int) bool
	// WorkerSteps bounds the maintenance worker's iterations under Sched
	// (uncontrolled runs pace the worker by wall clock instead); 0 means
	// Threads*OpsPerThread. The worker also stops as soon as every
	// application task has finished.
	WorkerSteps int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 100
	}
	if c.KeyPool <= 0 {
		c.KeyPool = 64
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Log      *vyrd.Log
	Elapsed  time.Duration
	Methods  int64 // application method calls issued
	LogStats vyrd.LogStats
}

// Run exercises the target under the configuration and returns the closed
// log. The run itself performs no checking; pair it with Check, or with
// vyrd online checking started by the caller before Run.
func Run(t Target, cfg Config) Result {
	cfg = cfg.withDefaults()
	log := vyrd.NewLogWith(cfg.Level, cfg.LogOptions)
	return RunOnLog(t, cfg, log)
}

// RunOnLog is Run against a caller-provided log (so a caller can attach an
// online checker or a persistence sink first).
func RunOnLog(t Target, cfg Config, log *vyrd.Log) Result {
	cfg = cfg.withDefaults()
	inst := t.New(log)

	// The shared key pool (Section 7.1). Threads index a prefix whose
	// length shrinks as the run progresses.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	pool := make([]int, cfg.KeyPool)
	for i := range pool {
		pool[i] = seedRng.Intn(cfg.KeyPool * 4)
	}

	totalWeight := 0
	for _, m := range inst.Methods {
		totalWeight += m.Weight
	}
	if totalWeight == 0 {
		panic("harness: target has no weighted methods")
	}

	if cfg.Sched != nil {
		return runControlled(inst, cfg, log, pool, totalWeight)
	}

	stopWorker := make(chan struct{})
	var workerWg sync.WaitGroup
	if inst.WorkerStep != nil {
		workerWg.Add(1)
		wp := log.NewWorkerProbe()
		go func() {
			defer workerWg.Done()
			// The maintenance thread runs continuously (Section 7.1) but is
			// paced like a real daemon: an unthrottled loop over an
			// exclusive-lock pass would starve the application threads and
			// distort the logging-overhead measurements of Table 2.
			ticker := time.NewTicker(100 * time.Microsecond)
			defer ticker.Stop()
			for {
				select {
				case <-stopWorker:
					return
				case <-ticker.C:
					inst.WorkerStep(wp)
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		p := log.NewProbe()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(th)*7919 + 1))
		go func() {
			defer wg.Done()
			for op := 0; op < cfg.OpsPerThread; op++ {
				// Shrink the effective pool from 100% to ~20% over the run.
				limit := len(pool)
				if cfg.Shrink {
					progress := float64(op) / float64(cfg.OpsPerThread)
					limit = int(float64(len(pool)) * (1.0 - 0.8*progress))
					if limit < 1 {
						limit = 1
					}
				}
				pick := func() int { return pool[rng.Intn(limit)] }
				w := rng.Intn(totalWeight)
				for _, m := range inst.Methods {
					if w < m.Weight {
						m.Run(p, rng, pick)
						break
					}
					w -= m.Weight
				}
			}
		}()
	}
	wg.Wait()
	close(stopWorker)
	workerWg.Wait()
	elapsed := time.Since(start)
	log.Close()

	return Result{
		Log:      log,
		Elapsed:  elapsed,
		Methods:  int64(cfg.Threads) * int64(cfg.OpsPerThread),
		LogStats: log.Stats(),
	}
}

// opRNG derives the random stream for one harness operation. Keying it on
// (seed, thread, op) — rather than advancing one per-thread stream — means
// skipping an operation (Config.SkipOp) leaves every other operation's
// draws unchanged, which the schedule shrinker relies on.
func opRNG(seed int64, th, op int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(th)*1_000_003 + int64(op)*7919 + 12289))
}

// runControlled is the Config.Sched execution path: the same operation mix
// as the uncontrolled loop, but application threads and the maintenance
// worker run as scheduler tasks, parking at every probe action and at the
// top of every operation. All log appends therefore happen while holding
// the scheduling token, so the interleaving — and the log bytes — are a
// pure function of the scheduler's seed.
func runControlled(inst Instance, cfg Config, log *vyrd.Log, pool []int, totalWeight int) Result {
	sch := cfg.Sched

	// Register in a fixed order (threads ascending, then the worker):
	// registration order maps tasks to seed-derived priorities, so it is
	// part of the schedule.
	tasks := make([]*sched.Task, cfg.Threads)
	for th := range tasks {
		tasks[th] = sch.Register(fmt.Sprintf("t%d", th))
	}
	var worker *sched.Task
	if inst.WorkerStep != nil {
		worker = sch.RegisterDaemon("worker")
	}

	start := time.Now()
	var methods int64
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		p := log.NewProbe()
		task := tasks[th]
		p.SetAccessYield(task.YieldAccess)
		th := th
		go func() {
			defer wg.Done()
			defer task.Done()
			issued := int64(0)
			for op := 0; op < cfg.OpsPerThread; op++ {
				// Operation boundary: park even if the op is skipped (or
				// its method logs nothing), so every task reaches the
				// scheduler's start barrier and op boundaries are
				// scheduling points. The boundary step only does
				// thread-private work (rng setup, argument draws) up to
				// the method's first probe action, so it is declared
				// local — DPOR never needs to reorder two op boundaries.
				task.YieldAccess(event.Access{Kind: event.AccessLocal})
				if cfg.SkipOp != nil && cfg.SkipOp(th, op) {
					continue
				}
				rng := opRNG(cfg.Seed, th, op)
				limit := len(pool)
				if cfg.Shrink {
					progress := float64(op) / float64(cfg.OpsPerThread)
					limit = int(float64(len(pool)) * (1.0 - 0.8*progress))
					if limit < 1 {
						limit = 1
					}
				}
				pick := func() int { return pool[rng.Intn(limit)] }
				w := rng.Intn(totalWeight)
				for _, m := range inst.Methods {
					if w < m.Weight {
						m.Run(p, rng, pick)
						break
					}
					w -= m.Weight
				}
				issued++
			}
			atomic.AddInt64(&methods, issued)
		}()
	}
	if worker != nil {
		wg.Add(1)
		wp := log.NewWorkerProbe()
		wp.SetYield(worker.Yield)
		steps := cfg.WorkerSteps
		if steps <= 0 {
			steps = cfg.Threads * cfg.OpsPerThread
		}
		go func() {
			defer wg.Done()
			defer worker.Done()
			for i := 0; i < steps; i++ {
				worker.Yield()
				if sch.AppQuiesced() {
					return
				}
				inst.WorkerStep(wp)
			}
		}()
	}

	sch.Start()
	wg.Wait()
	elapsed := time.Since(start)
	log.Close()

	return Result{
		Log:      log,
		Elapsed:  elapsed,
		Methods:  methods,
		LogStats: log.Stats(),
	}
}

// Check verifies a run's log offline in the given mode, fail-fast. It
// returns the checker's report.
func Check(t Target, res Result, mode core.Mode, failFast bool) (*core.Report, error) {
	opts := []core.Option{core.WithMode(mode), core.WithFailFast(failFast)}
	if mode == core.ModeView {
		r := t.NewReplayer()
		if r == nil {
			return nil, errNoReplayer(t.Name)
		}
		opts = append(opts, core.WithReplayer(r))
	}
	return core.CheckEntries(res.Log.Snapshot(), t.NewSpec(), opts...)
}

type errNoReplayer string

func (e errNoReplayer) Error() string {
	return "harness: target " + string(e) + " does not support view refinement"
}
