package harness

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/vyrd"
)

// These white-box tests cover the harness mechanics themselves; the
// cross-subject behaviour lives in harness_test.go (black box).

// countingTarget records how the harness drives it.
func countingTarget(calls *atomic.Int64, keys *sync.Map, workerRuns *atomic.Int64) Target {
	return Target{
		Name: "counting",
		New: func(log *vyrd.Log) Instance {
			inst := Instance{
				Methods: []Method{
					{Name: "A", Weight: 3, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						calls.Add(1)
						keys.Store(pick(), true)
						inv := p.Call("Insert", 1)
						inv.Commit("x")
						inv.Return(true)
					}},
					{Name: "B", Weight: 1, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						calls.Add(1)
						keys.Store(pick(), true)
						inv := p.Call("LookUp", 1)
						inv.Return(true)
					}},
				},
			}
			if workerRuns != nil {
				inst.WorkerStep = func(p *vyrd.Probe) { workerRuns.Add(1) }
			}
			return inst
		},
		NewSpec:     func() core.Spec { return spec.NewMultiset() },
		NewReplayer: func() core.Replayer { return nil },
	}
}

func TestRunIssuesExactOpCount(t *testing.T) {
	var calls atomic.Int64
	var keys sync.Map
	res := Run(countingTarget(&calls, &keys, nil), Config{
		Threads: 3, OpsPerThread: 50, KeyPool: 8, Seed: 1, Level: vyrd.LevelIO,
	})
	if calls.Load() != 150 || res.Methods != 150 {
		t.Fatalf("calls %d, reported %d", calls.Load(), res.Methods)
	}
	if res.Log.Len() == 0 || res.Elapsed <= 0 {
		t.Fatalf("result not populated: %+v", res)
	}
}

func TestRunClosesLog(t *testing.T) {
	var calls atomic.Int64
	var keys sync.Map
	res := Run(countingTarget(&calls, &keys, nil), Config{
		Threads: 1, OpsPerThread: 5, Seed: 1, Level: vyrd.LevelIO,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("appending to the returned log should panic: Run must close it")
		}
	}()
	res.Log.NewProbe().Call("X", 1)
}

func TestKeysComeFromPool(t *testing.T) {
	var calls atomic.Int64
	var keys sync.Map
	Run(countingTarget(&calls, &keys, nil), Config{
		Threads: 2, OpsPerThread: 200, KeyPool: 4, Seed: 5, Level: vyrd.LevelOff,
	})
	distinct := 0
	keys.Range(func(_, _ any) bool { distinct++; return true })
	// 4 pool slots drawn from [0, 16): at most 4 distinct keys.
	if distinct > 4 {
		t.Fatalf("%d distinct keys from a pool of 4", distinct)
	}
}

func TestWorkerRunsAndStops(t *testing.T) {
	var calls atomic.Int64
	var keys sync.Map
	var workerRuns atomic.Int64
	Run(countingTarget(&calls, &keys, &workerRuns), Config{
		Threads: 2, OpsPerThread: 500, Seed: 1, Level: vyrd.LevelOff,
	})
	after := workerRuns.Load()
	if after == 0 {
		t.Skip("worker never scheduled on this run (tiny workload on one core)")
	}
	// The worker must have stopped with the run; no further increments.
	if workerRuns.Load() != after {
		t.Fatal("worker still running after Run returned")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Threads <= 0 || cfg.OpsPerThread <= 0 || cfg.KeyPool <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestCheckRejectsViewWithoutReplayer(t *testing.T) {
	var calls atomic.Int64
	var keys sync.Map
	target := countingTarget(&calls, &keys, nil)
	res := Run(target, Config{Threads: 1, OpsPerThread: 3, Seed: 1, Level: vyrd.LevelIO})
	if _, err := Check(target, res, core.ModeView, false); err == nil {
		t.Fatal("view check without a replayer should fail")
	}
	rep, err := Check(target, res, core.ModeIO, false)
	if err != nil || !rep.Ok() {
		t.Fatalf("io check: %v %v", err, rep)
	}
}
