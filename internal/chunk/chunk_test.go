package chunk

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	m := New()
	if v := m.Write(1, []byte{1, 2, 3}); v != 1 {
		t.Fatalf("first write version %d", v)
	}
	data, version, ok := m.Read(1)
	if !ok || version != 1 || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("Read = %x v%d %v", data, version, ok)
	}
}

func TestVersionsIncrement(t *testing.T) {
	m := New()
	for i := 1; i <= 5; i++ {
		if v := m.Write(7, []byte{byte(i)}); v != int64(i) {
			t.Fatalf("write %d got version %d", i, v)
		}
	}
	if m.Version(7) != 5 {
		t.Fatalf("Version = %d", m.Version(7))
	}
	if m.Version(99) != 0 {
		t.Fatal("unwritten handle has a version")
	}
}

func TestReadUnwritten(t *testing.T) {
	m := New()
	if _, _, ok := m.Read(42); ok {
		t.Fatal("read of an unwritten handle succeeded")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	m := New()
	m.Write(1, []byte{9})
	data, _, _ := m.Read(1)
	data[0] = 0
	again, _, _ := m.Read(1)
	if again[0] != 9 {
		t.Fatal("Read aliases the stored bytes")
	}
}

func TestWriteStoresCopy(t *testing.T) {
	m := New()
	buf := []byte{1}
	m.Write(1, buf)
	buf[0] = 2
	data, _, _ := m.Read(1)
	if data[0] != 1 {
		t.Fatal("Write aliases the caller's bytes")
	}
}

func TestHandlesSorted(t *testing.T) {
	m := New()
	for _, h := range []int{5, 1, 9, 3} {
		m.Write(h, nil)
	}
	hs := m.Handles()
	want := []int{1, 3, 5, 9}
	if len(hs) != len(want) {
		t.Fatalf("handles %v", hs)
	}
	for i := range want {
		if hs[i] != want[i] {
			t.Fatalf("handles %v", hs)
		}
	}
	if m.Len() != 4 {
		t.Fatalf("len %d", m.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := i % 4
				m.Write(h, []byte{byte(g), byte(i)})
				if data, _, ok := m.Read(h); ok && len(data) != 2 {
					t.Errorf("torn read: %x", data)
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 4 {
		t.Fatalf("len %d", m.Len())
	}
}

// TestQuickLastWriteWins: sequentially, a read always returns the most
// recently written bytes and the version equals the write count.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(writes [][]byte) bool {
		m := New()
		for i, w := range writes {
			if v := m.Write(3, w); v != int64(i+1) {
				return false
			}
			got, v, ok := m.Read(3)
			if !ok || v != int64(i+1) || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
