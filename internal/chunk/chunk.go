// Package chunk implements the Boxwood Chunk Manager abstraction the paper
// builds on (Section 7.2, Fig. 10): a thread-safe store of byte arrays,
// each identified by a unique handle and carrying a version number that is
// incremented after each write.
//
// As in the paper's modular verification of Cache + Chunk Manager
// (Section 7.2.1), this module is assumed correct: the cache above it is
// the instrumented subject. The package nonetheless carries its own test
// suite, since the whole stack rests on it.
package chunk

import (
	"sort"
	"sync"
)

// Manager is the handle-addressed byte-array store.
type Manager struct {
	mu      sync.Mutex
	entries map[int]*entry
}

type entry struct {
	data    []byte
	version int64
}

// New returns an empty manager.
func New() *Manager {
	return &Manager{entries: make(map[int]*entry)}
}

// Write stores a copy of data under handle and returns the new version
// number (1 for the first write).
func (m *Manager) Write(handle int, data []byte) int64 {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[handle]
	if e == nil {
		e = &entry{}
		m.entries[handle] = e
	}
	e.data = cp
	e.version++
	return e.version
}

// Read returns a copy of the bytes stored under handle and their version.
// ok is false when the handle has never been written.
func (m *Manager) Read(handle int) (data []byte, version int64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[handle]
	if e == nil {
		return nil, 0, false
	}
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, e.version, true
}

// Version returns the version of handle (0 when unwritten).
func (m *Manager) Version(handle int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[handle]; e != nil {
		return e.version
	}
	return 0
}

// Handles returns the written handles in ascending order.
func (m *Manager) Handles() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.entries))
	for h := range m.entries {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// Len returns the number of written handles.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
