package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Quotas is a per-tenant admission and fairness policy. Zero values
// mean unlimited. Enforcement never disconnects a live session: rate
// and memory overruns are served as delayed acks (the existing resend
// window backpressure), only admission of new sessions is refused.
type Quotas struct {
	// MaxSessions caps a tenant's concurrent sessions; the next Hello is
	// rejected with reason "tenant-quota".
	MaxSessions int `json:"max_sessions,omitempty"`
	// MaxEntriesPerSec caps a tenant's sustained aggregate ingest rate.
	// Overruns pause the ingest loop (a token bucket with one second of
	// burst), which delays acks and stalls the client's resend window.
	MaxEntriesPerSec int `json:"max_entries_per_sec,omitempty"`
	// MaxWindowBytes caps the tenant's aggregate retained window memory
	// across its session logs; ingest pauses while over it.
	MaxWindowBytes int64 `json:"max_window_bytes,omitempty"`
}

// Enabled reports whether any limit is set.
func (q Quotas) Enabled() bool {
	return q.MaxSessions > 0 || q.MaxEntriesPerSec > 0 || q.MaxWindowBytes > 0
}

// QuotaError is an admission refusal: the tenant is at its session cap.
type QuotaError struct {
	Tenant string
	Limit  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q is at its session quota (%d)", e.Tenant, e.Limit)
}

// DefaultTenant is the tenant token of a Hello that names none.
const DefaultTenant = "default"

// TenantMetrics is one tenant's slice of /metrics.
type TenantMetrics struct {
	Tenant        string `json:"tenant"`
	Sessions      int64  `json:"sessions"`
	SessionsTotal int64  `json:"sessions_total"`
	Rejected      int64  `json:"rejected_total"`
	ThrottleWaits int64  `json:"throttle_waits_total"`
	Entries       int64  `json:"entries_total"`
	// WindowBytes is the tenant's current retained window memory across
	// its session logs (filled by the server, which owns the sessions).
	WindowBytes int64 `json:"window_bytes"`
}

// TenantTable tracks per-tenant admission counts and rate buckets under
// one shared quota policy.
type TenantTable struct {
	quotas Quotas
	mu     sync.Mutex
	m      map[string]*Tenant
}

// NewTenantTable builds a table enforcing q on every tenant.
func NewTenantTable(q Quotas) *TenantTable {
	return &TenantTable{quotas: q, m: make(map[string]*Tenant)}
}

// Quotas returns the shared policy.
func (tt *TenantTable) Quotas() Quotas { return tt.quotas }

// lookup returns (creating if needed) the tenant record for name.
func (tt *TenantTable) lookup(name string) *Tenant {
	if name == "" {
		name = DefaultTenant
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	t := tt.m[name]
	if t == nil {
		t = &Tenant{name: name, quotas: tt.quotas}
		tt.m[name] = t
	}
	return t
}

// Admit charges one session against the tenant's session quota,
// returning the tenant record or a *QuotaError at the cap. The caller
// must Release exactly once per successful Admit.
func (tt *TenantTable) Admit(name string) (*Tenant, error) {
	t := tt.lookup(name)
	for {
		cur := t.sessions.Load()
		if tt.quotas.MaxSessions > 0 && cur >= int64(tt.quotas.MaxSessions) {
			t.rejected.Add(1)
			return nil, &QuotaError{Tenant: t.name, Limit: tt.quotas.MaxSessions}
		}
		if t.sessions.CompareAndSwap(cur, cur+1) {
			t.sessionsTotal.Add(1)
			return t, nil
		}
	}
}

// Snapshot lists every tenant's counters, sorted by name. WindowBytes
// is zero here; the server overlays it from its session table.
func (tt *TenantTable) Snapshot() []TenantMetrics {
	tt.mu.Lock()
	out := make([]TenantMetrics, 0, len(tt.m))
	for _, t := range tt.m {
		out = append(out, t.Metrics())
	}
	tt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Tenant is one tenant token's live accounting.
type Tenant struct {
	name   string
	quotas Quotas

	sessions      atomic.Int64
	sessionsTotal atomic.Int64
	rejected      atomic.Int64
	throttleWaits atomic.Int64
	entries       atomic.Int64

	// Token bucket for MaxEntriesPerSec: allowance is charged per batch
	// and refilled by wall time; a negative balance converts to an
	// ingest pause, which is what turns the quota into ack backpressure.
	rateMu     sync.Mutex
	allowance  float64
	lastRefill time.Time
}

// Name returns the tenant token.
func (t *Tenant) Name() string { return t.name }

// Release returns one admitted session.
func (t *Tenant) Release() { t.sessions.Add(-1) }

// Sessions reports the tenant's live session count.
func (t *Tenant) Sessions() int64 { return t.sessions.Load() }

// ThrottleWaits reports how many ingest pauses the tenant has absorbed.
func (t *Tenant) ThrottleWaits() int64 { return t.throttleWaits.Load() }

// NoteThrottle records an ingest pause enforced outside the rate bucket
// (the window-memory wait loop).
func (t *Tenant) NoteThrottle() { t.throttleWaits.Add(1) }

// RatePause charges n ingested entries against the tenant's rate quota
// and returns how long the ingest loop must pause to stay within it
// (zero when unlimited or within budget). Bursts up to one second of
// quota pass untouched.
func (t *Tenant) RatePause(n int) time.Duration {
	t.entries.Add(int64(n))
	rate := float64(t.quotas.MaxEntriesPerSec)
	if rate <= 0 || n <= 0 {
		return 0
	}
	t.rateMu.Lock()
	defer t.rateMu.Unlock()
	now := time.Now()
	if t.lastRefill.IsZero() {
		t.allowance = rate // one second of burst
	} else {
		t.allowance += now.Sub(t.lastRefill).Seconds() * rate
		if t.allowance > rate {
			t.allowance = rate
		}
	}
	t.lastRefill = now
	t.allowance -= float64(n)
	if t.allowance >= 0 {
		return 0
	}
	t.throttleWaits.Add(1)
	return time.Duration(-t.allowance / rate * float64(time.Second))
}

// Metrics snapshots the tenant's counters (WindowBytes left to the
// server overlay).
func (t *Tenant) Metrics() TenantMetrics {
	return TenantMetrics{
		Tenant:        t.name,
		Sessions:      t.sessions.Load(),
		SessionsTotal: t.sessionsTotal.Load(),
		Rejected:      t.rejected.Load(),
		ThrottleWaits: t.throttleWaits.Load(),
		Entries:       t.entries.Load(),
	}
}
