package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// collectEngine records every entry it is fed, in order.
type collectEngine struct {
	seqs []int64
}

func (c *collectEngine) Feed(e event.Entry) { c.seqs = append(c.seqs, e.Seq) }
func (c *collectEngine) Finish() []core.ModuleReport {
	return []core.ModuleReport{{Module: "collect", Report: &core.Report{}}}
}

// TestSchedulerDrainsManyTasks drives many concurrent producer/log/task
// triples over a two-worker pool: every task must see its own log's
// entries, in order, exactly once, and finish after close — the lost-
// wakeup hazards (append racing the idle transition, close racing a
// running slice) are exactly what the state machine must survive.
func TestSchedulerDrainsManyTasks(t *testing.T) {
	const (
		tasks   = 32
		entries = 400
	)
	s := NewScheduler(2, 64)
	defer s.Stop()

	type ses struct {
		lg     wal.Backend
		task   *Task
		engine *collectEngine
		recv   atomic.Int64
	}
	all := make([]*ses, tasks)
	for i := range all {
		lg := wal.Open(wal.LevelIO, wal.Options{Window: 128})
		ss := &ses{lg: lg, engine: &collectEngine{}}
		ss.task = s.Register(fmt.Sprintf("tenant-%d", i%3), lg.Reader(), ss.engine, ss.recv.Load, nil)
		all[i] = ss
	}

	var wg sync.WaitGroup
	for _, ss := range all {
		wg.Add(1)
		go func(ss *ses) {
			defer wg.Done()
			for seq := int64(1); seq <= entries; seq++ {
				ss.lg.Append(event.Entry{Seq: seq, Kind: event.KindCall, Method: "op"})
				ss.recv.Store(seq)
				ss.task.Wake()
				if seq%97 == 0 {
					// Let the task go idle sometimes, so the test
					// exercises the idle->queued wake path, not just
					// requeues.
					time.Sleep(200 * time.Microsecond)
				}
			}
			ss.lg.Close()
			ss.task.Close(entries)
		}(ss)
	}
	wg.Wait()

	for i, ss := range all {
		reports := ss.task.Wait()
		if len(reports) != 1 || reports[0].Module != "collect" {
			t.Fatalf("task %d: unexpected reports %v", i, reports)
		}
		if len(ss.engine.seqs) != entries {
			t.Fatalf("task %d: fed %d entries, want %d", i, len(ss.engine.seqs), entries)
		}
		for j, seq := range ss.engine.seqs {
			if seq != int64(j+1) {
				t.Fatalf("task %d: out of order at %d: got seq %d", i, j, seq)
			}
		}
		if got := ss.task.Fed(); got != entries {
			t.Fatalf("task %d: Fed()=%d, want %d", i, got, entries)
		}
	}

	st := s.Stats()
	if st.Finished != tasks {
		t.Fatalf("Stats.Finished=%d, want %d", st.Finished, tasks)
	}
	if st.EntriesFed != tasks*entries {
		t.Fatalf("Stats.EntriesFed=%d, want %d", st.EntriesFed, tasks*entries)
	}
	if st.Tasks != 0 {
		t.Fatalf("Stats.Tasks=%d after all finished, want 0", st.Tasks)
	}
	if st.Workers != 2 {
		t.Fatalf("Stats.Workers=%d, want 2", st.Workers)
	}
}

// TestSchedulerWaitIdempotent pins that Wait can be called repeatedly
// and from multiple goroutines (the fin path and a drain force-finish
// race exactly this way).
func TestSchedulerWaitIdempotent(t *testing.T) {
	s := NewScheduler(1, 0)
	defer s.Stop()
	lg := wal.Open(wal.LevelIO, wal.Options{Window: 16})
	var recv atomic.Int64
	task := s.Register("", lg.Reader(), &collectEngine{}, recv.Load, nil)
	lg.Append(event.Entry{Seq: 1, Kind: event.KindCall, Method: "op"})
	recv.Store(1)
	task.Wake()
	lg.Close()
	task.Close(1)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := task.Wait(); len(got) != 1 {
				t.Errorf("Wait returned %d reports, want 1", len(got))
			}
		}()
	}
	wg.Wait()
}

// TestSchedulerOnFed pins the consumption callback: the per-slice
// counts must sum to the entry total.
func TestSchedulerOnFed(t *testing.T) {
	s := NewScheduler(1, 7) // odd budget: slices of uneven size
	defer s.Stop()
	lg := wal.Open(wal.LevelIO, wal.Options{Window: 256})
	var recv, seen atomic.Int64
	task := s.Register("", lg.Reader(), &collectEngine{}, recv.Load, func(n int) {
		seen.Add(int64(n))
	})
	const entries = 100
	for seq := int64(1); seq <= entries; seq++ {
		lg.Append(event.Entry{Seq: seq, Kind: event.KindCall, Method: "op"})
		recv.Store(seq)
		task.Wake()
	}
	lg.Close()
	task.Close(entries)
	task.Wait()
	if seen.Load() != entries {
		t.Fatalf("onFed saw %d entries, want %d", seen.Load(), entries)
	}
}

func TestSchedulerDefaults(t *testing.T) {
	s := NewScheduler(0, 0)
	defer s.Stop()
	if s.Workers() <= 0 {
		t.Fatalf("default worker count %d", s.Workers())
	}
	if s.budget != DefaultSliceBudget {
		t.Fatalf("default budget %d, want %d", s.budget, DefaultSliceBudget)
	}
	// Stop is idempotent.
	s.Stop()
}

// snapshotEngine is a collectEngine whose Finish first runs a snapshot
// hook on the finishing worker.
type snapshotEngine struct {
	collectEngine
	snap func()
}

func (e *snapshotEngine) Finish() []core.ModuleReport {
	e.snap()
	return e.collectEngine.Finish()
}

// TestSchedulerTenantFairness is the DRR starvation gate: a tenant with
// one modest session must not be starved by a tenant with many hot
// sessions sharing the same single-worker pool. Under the old FIFO
// pickup every task got an equal share, so the noisy tenant's eight
// tasks took ~8x the service of the quiet tenant's one; under deficit
// round robin the two tenants split the worker evenly, so by the time
// the quiet session finishes the noisy tenant has been fed roughly the
// same entry count — not eight times it.
func TestSchedulerTenantFairness(t *testing.T) {
	const (
		noisyTasks   = 8
		noisyEntries = 4000
		quietEntries = 2000
	)
	s := NewScheduler(1, 16)
	defer s.Stop()

	appendAll := func(lg wal.Backend, n int64) {
		for seq := int64(1); seq <= n; seq++ {
			lg.Append(event.Entry{Seq: seq, Kind: event.KindCall, Method: "op"})
		}
	}

	// The noisy tenant: many tasks, every log fully appended up front so
	// each task is runnable the whole time.
	type ses struct {
		lg   wal.Backend
		task *Task
		recv atomic.Int64
	}
	noisy := make([]*ses, noisyTasks)
	for i := range noisy {
		lg := wal.Open(wal.LevelIO, wal.Options{Window: 1 << 13})
		ss := &ses{lg: lg}
		ss.task = s.Register("noisy", lg.Reader(), &collectEngine{}, ss.recv.Load, nil)
		appendAll(lg, noisyEntries)
		ss.recv.Store(noisyEntries)
		noisy[i] = ss
	}

	// The quiet engine snapshots the noisy tenant's consumption at the
	// exact instant the quiet session finishes (Finish runs on the worker
	// that drained it); measuring after Wait would let the now-uncontended
	// worker blast through the noisy backlog first.
	var noisyFedAtQuietFinish atomic.Int64
	quietLog := wal.Open(wal.LevelIO, wal.Options{Window: 1 << 13})
	var quietRecv atomic.Int64
	quiet := s.Register("quiet", quietLog.Reader(), &snapshotEngine{snap: func() {
		var sum int64
		for _, ss := range noisy {
			sum += ss.task.Fed()
		}
		noisyFedAtQuietFinish.Store(sum)
	}}, quietRecv.Load, nil)
	appendAll(quietLog, quietEntries)
	quietRecv.Store(quietEntries)
	quietLog.Close()

	// Wake the noisy tenant first — the worst case for the quiet one —
	// then race the quiet session to its verdict.
	for _, ss := range noisy {
		ss.task.Wake()
	}
	quiet.Close(quietEntries)

	quiet.Wait()
	noisyFed := noisyFedAtQuietFinish.Load()

	// DRR predicts noisyFed ~= quietEntries at this instant (each tenant
	// gets one quantum per round); FIFO pickup would predict ~8x. The 3x
	// bound leaves room for the noisy head start and in-flight slices
	// while cleanly separating the two regimes.
	if noisyFed > 3*quietEntries {
		t.Fatalf("noisy tenant fed %d entries by the time the quiet session (%d entries) finished; fair pickup predicts ~%d",
			noisyFed, quietEntries, quietEntries)
	}
	t.Logf("quiet finished after noisy tenant was fed %d entries (quiet=%d)", noisyFed, quietEntries)

	for _, ss := range noisy {
		ss.lg.Close()
		ss.task.Close(noisyEntries)
	}
	for _, ss := range noisy {
		ss.task.Wait()
	}
}
