// Package failover is the client side of a routed vyrdd fleet: a
// Runner streams one session's log to the cluster node that owns its
// key, follows handshake redirects, and — when the owner dies mid-
// stream — re-routes to the next node on the consistent-hash preference
// list and replays the journal from sequence 1. The replay rides the
// session-resume machinery's idempotence: a brand-new session on the
// survivor ingests everything (its resume point is 0), while a re-dial
// that lands back on a surviving original session skips the acked
// prefix by sequence number. Either way the stream the checker sees is
// exactly the producer's log, so the failover verdict equals the
// uninterrupted one.
package failover

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/fleet"
	"repro/internal/remote"
)

// Options configures a Runner.
type Options struct {
	// Nodes is the static cluster membership; it must match the servers'
	// own -cluster lists so both sides agree on the ring.
	Nodes []string
	// Key is the session routing key, hashed onto the ring. Required.
	Key string
	// Client is the per-attempt template: Hello (spec, mode, tenant...),
	// Window, batching, Dial, backoff. Addr, Session, Hello.Key and
	// Hello.Failover are managed by the runner.
	Client remote.ClientOptions
	// MaxFailovers bounds node switches across the session's lifetime
	// (0 = twice the cluster size).
	MaxFailovers int
	// Logf, when non-nil, receives one line per failover event.
	Logf func(format string, args ...any)
}

// Runner ships one session with redirect-and-failover routing. Not safe
// for concurrent use: like the wal sink that feeds a remote.Client, a
// single goroutine writes entries in sequence order.
type Runner struct {
	opts  Options
	prefs []string
	hop   int
	cl    *remote.Client

	journal   []event.Entry
	failovers int
}

// New builds a runner and its first client, aimed at the ring owner of
// the key (the server would redirect us there anyway; starting on the
// owner saves the round trip).
func New(opts Options) (*Runner, error) {
	if opts.Key == "" {
		return nil, fmt.Errorf("failover: Options.Key is required")
	}
	ring, err := fleet.NewRing(opts.Nodes, 0)
	if err != nil {
		return nil, err
	}
	if opts.MaxFailovers <= 0 {
		opts.MaxFailovers = 2 * len(opts.Nodes)
	}
	r := &Runner{opts: opts, prefs: ring.Prefs(opts.Key)}
	if err := r.newClient(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// newClient builds a fresh client for the current preference-list hop.
// Past hop zero the Hello carries Failover, telling the substitute node
// to serve the key even though the ring says another node owns it.
func (r *Runner) newClient() error {
	co := r.opts.Client
	co.Addr = r.prefs[r.hop%len(r.prefs)]
	co.Session = ""
	co.Hello.Key = r.opts.Key
	co.Hello.Failover = r.hop > 0
	cl, err := remote.NewClient(co)
	if err != nil {
		return err
	}
	r.cl = cl
	return nil
}

// Node returns the address the runner currently targets.
func (r *Runner) Node() string { return r.prefs[r.hop%len(r.prefs)] }

// Failovers reports how many node switches the session has survived.
func (r *Runner) Failovers() int { return r.failovers }

// Client exposes the current underlying client (stats, session token).
func (r *Runner) Client() *remote.Client { return r.cl }

// WriteEntry journals and ships one entry, failing over when the
// current node becomes unreachable. Entries must arrive in sequence
// order starting at 1, like any remote.Client stream.
func (r *Runner) WriteEntry(e event.Entry) error {
	r.journal = append(r.journal, e)
	for {
		err := r.cl.WriteEntry(e)
		if err == nil {
			return nil
		}
		if err = r.rotate(err); err != nil {
			return err
		}
	}
}

// Finish flushes the stream, waits for the verdict, and fails over as
// needed (a node death during Fin re-routes and replays like any other).
func (r *Runner) Finish() (*remote.Verdict, error) {
	for {
		err := r.cl.Flush()
		if err == nil {
			return r.cl.Verdict(), nil
		}
		if err = r.rotate(err); err != nil {
			return nil, err
		}
	}
}

// rotate moves to the next preference-list node after a terminal client
// failure and replays the journal into a fresh session there. Handshake
// refusals that are policy, not availability — a quota refusal, an
// unknown spec — are returned as-is: another node would refuse them the
// same way.
func (r *Runner) rotate(cause error) error {
	if rej, ok := remote.HandshakeReject(cause); ok && rej.Reason != remote.RejectRedirect {
		return cause
	}
	for {
		if r.failovers >= r.opts.MaxFailovers {
			return fmt.Errorf("failover: giving up after %d node switches: %w", r.failovers, cause)
		}
		r.failovers++
		r.hop++
		r.logf("failover: key %q: %s unreachable (%v), rerouting to %s (switch %d)",
			r.opts.Key, r.prefs[(r.hop-1)%len(r.prefs)], cause, r.Node(), r.failovers)
		if err := r.newClient(); err != nil {
			return err
		}
		if err := r.replay(); err == nil {
			return nil
		} else {
			cause = err
			if rej, ok := remote.HandshakeReject(err); ok && rej.Reason != remote.RejectRedirect {
				return err
			}
		}
	}
}

// replay feeds the whole journal into the current client — the
// recovered-log replay of the crash-resume path, done from memory. The
// server's dup-skip makes it idempotent wherever the session lands.
func (r *Runner) replay() error {
	for _, e := range r.journal {
		if err := r.cl.WriteEntry(e); err != nil {
			return err
		}
	}
	return nil
}
