package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a static vyrdd cluster membership
// list. Every node projects DefaultVnodes virtual points onto a 64-bit
// circle; a session key routes to the node owning the first point at or
// after the key's hash. Each member builds the ring from the same
// `-cluster` list, so routing decisions agree without coordination, and
// clients with the same list can pick the owner before dialing.
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int
}

// DefaultVnodes is the virtual-point count per node: enough to spread
// keys within a few percent of even on small clusters, cheap to build.
const DefaultVnodes = 64

// NewRing builds a ring over nodes with vnodes virtual points each
// (0 = DefaultVnodes). Node order does not matter; duplicate or empty
// node names are an error.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		if n == "" {
			return nil, fmt.Errorf("fleet: ring node %d is empty", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("fleet: duplicate ring node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a alone avalanches poorly on short keys with sequential
	// decimal suffixes ("load-0".."load-199" land almost entirely on one
	// node); a 64-bit finalizer restores uniformity on the circle.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the membership list the ring was built over.
func (r *Ring) Nodes() []string { return r.nodes }

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	for _, n := range r.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Owner returns the primary node for key.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.search(key)].node]
}

// Prefs returns the failover preference list for key: every node
// exactly once, in ring order starting at the primary. A client walks
// it left to right when the current node is unreachable.
func (r *Ring) Prefs(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.search(key), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
			if len(out) == len(r.nodes) {
				break
			}
		}
	}
	return out
}

// search finds the index of the first point at or after key's hash.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
