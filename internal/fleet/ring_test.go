package fleet

import (
	"fmt"
	"testing"
)

func TestRingOwnershipDeterministic(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"c:1", "a:1", "b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %q depends on membership order: %q vs %q",
				key, r1.Owner(key), r2.Owner(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		byNode[r.Owner(fmt.Sprintf("k%d", i))]++
	}
	for _, n := range nodes {
		got := byNode[n]
		// With 64 vnodes/node the spread is loose but every node must
		// carry a real share — an empty node means the ring is broken.
		if got < keys/len(nodes)/4 {
			t.Fatalf("node %s owns only %d/%d keys: %v", n, got, keys, byNode)
		}
	}
}

// TestRingSpreadsSequentialKeys pins the hash finalizer: real workloads
// key sessions with short sequential names ("load-0", "load-1", ...),
// which raw FNV-1a routed 99% to one node of a two-node ring. Every node
// must carry at least a quarter of its fair share of such keys.
func TestRingSpreadsSequentialKeys(t *testing.T) {
	nodes := []string{"10.0.0.1:7669", "10.0.0.2:7669"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"load-%d", "k%d", "session/%d"} {
		byNode := map[string]int{}
		const keys = 1000
		for i := 0; i < keys; i++ {
			byNode[r.Owner(fmt.Sprintf(pat, i))]++
		}
		for _, n := range nodes {
			if got := byNode[n]; got < keys/len(nodes)/4 {
				t.Fatalf("pattern %q: node %s owns only %d/%d keys: %v", pat, n, got, keys, byNode)
			}
		}
	}
}

func TestRingPrefs(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		prefs := r.Prefs(key)
		if len(prefs) != len(nodes) {
			t.Fatalf("Prefs(%q) = %v: want all %d nodes", key, prefs, len(nodes))
		}
		if prefs[0] != r.Owner(key) {
			t.Fatalf("Prefs(%q)[0] = %q, Owner = %q", key, prefs[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range prefs {
			if seen[n] {
				t.Fatalf("Prefs(%q) repeats %q: %v", key, n, prefs)
			}
			seen[n] = true
		}
	}
}

// TestRingStableUnderGrowth pins the consistent-hashing property: adding
// a node moves only the keys that land on the new node; everything else
// keeps its owner.
func TestRingStableUnderGrowth(t *testing.T) {
	small, err := NewRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		before, after := small.Owner(key), big.Owner(key)
		if before != after {
			if after != "d:1" {
				t.Fatalf("key %q moved %q -> %q without involving the new node", key, before, after)
			}
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding one node to three moved %d/%d keys", moved, keys)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestRingContains(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("a:1") || r.Contains("z:1") {
		t.Fatal("Contains is wrong")
	}
}
