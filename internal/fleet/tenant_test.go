package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTenantAdmitCap(t *testing.T) {
	tt := NewTenantTable(Quotas{MaxSessions: 2})
	a1, err := tt.Admit("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Admit("acme"); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Admit("acme"); err == nil {
		t.Fatal("third session admitted past MaxSessions=2")
	} else {
		var qe *QuotaError
		if !errors.As(err, &qe) || qe.Tenant != "acme" {
			t.Fatalf("want *QuotaError for acme, got %v", err)
		}
	}
	// Independent tenants have independent caps.
	if _, err := tt.Admit("other"); err != nil {
		t.Fatalf("unrelated tenant rejected: %v", err)
	}
	// Releasing frees a slot.
	a1.Release()
	if _, err := tt.Admit("acme"); err != nil {
		t.Fatalf("admit after release: %v", err)
	}

	m := a1.Metrics()
	if m.Rejected != 1 || m.SessionsTotal != 3 || m.Sessions != 2 {
		t.Fatalf("metrics %+v: want 1 rejection, 3 admits, 2 live", m)
	}
}

func TestTenantAdmitConcurrent(t *testing.T) {
	const cap = 16
	tt := NewTenantTable(Quotas{MaxSessions: cap})
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := tt.Admit("t"); err == nil {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if admitted != cap {
		t.Fatalf("admitted %d concurrent sessions, cap is %d", admitted, cap)
	}
}

func TestTenantRatePause(t *testing.T) {
	tt := NewTenantTable(Quotas{MaxEntriesPerSec: 1000})
	tn, err := tt.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	// Inside the one-second burst allowance: no pause.
	if d := tn.RatePause(500); d != 0 {
		t.Fatalf("pause %v while under burst", d)
	}
	// Blowing far past the allowance must demand a pause roughly equal to
	// the time the overrun takes to earn back at the quota rate.
	d := tn.RatePause(2000)
	if d <= 0 {
		t.Fatal("no pause after exceeding the rate")
	}
	if d > 5*time.Second {
		t.Fatalf("pause %v absurdly long for a 1500-entry debt at 1000/s", d)
	}
	if tn.ThrottleWaits() == 0 {
		t.Fatal("throttle not counted")
	}
}

func TestTenantRateUnlimited(t *testing.T) {
	tt := NewTenantTable(Quotas{})
	tn, err := tt.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	if d := tn.RatePause(1 << 20); d != 0 {
		t.Fatalf("pause %v with no rate quota", d)
	}
}

func TestTenantSnapshotSorted(t *testing.T) {
	tt := NewTenantTable(Quotas{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := tt.Admit(n); err != nil {
			t.Fatal(err)
		}
	}
	snap := tt.Snapshot()
	if len(snap) != 3 || snap[0].Tenant != "alpha" || snap[1].Tenant != "mid" || snap[2].Tenant != "zeta" {
		t.Fatalf("snapshot not sorted by tenant: %+v", snap)
	}
}
