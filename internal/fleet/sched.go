// Package fleet is vyrdd's multi-tenant service tier: a session
// scheduler that multiplexes many checker pipelines over a bounded
// worker pool, per-tenant admission quotas with ack-protocol
// backpressure, consistent-hash routing of session keys across a static
// cluster, a client-side failover runner riding the session-resume
// machinery, and a load generator that measures max-sessions/box.
//
// The scheduler replaces goroutine-per-session checking. A session
// becomes a Task: a log reader plus a checker engine. Ingest wakes the
// task after every append; a bounded pool of workers pops runnable
// tasks and feeds each a cooperative time slice (SliceBudget entries)
// before requeueing it, so thousands of mostly-idle sessions cost zero
// workers and a hot session cannot starve the rest.
//
// Task pickup is deficit-round-robin fair across tenants, not FIFO: each
// tenant owns a queue of its runnable tasks and a credit counter topped
// up by a fixed quantum of entries per round-robin visit. Workers serve
// the tenant at the head of the active ring while its credit lasts,
// charge the entries a slice actually consumed after the slice runs, and
// rotate to the next tenant when the credit is spent — so a tenant with
// a thousand hot sessions and a tenant with one split the pool evenly
// instead of 1000:1. Credit is reset when a tenant's queue drains, so
// idle tenants cannot bank service.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// Engine is the checker a scheduled task drives: entries in, one
// module-report slice out. The server adapts its three session shapes
// (single checker, linearizer, modular fan-out) onto it. Feed must be
// non-blocking and tolerate entries after a verdict is decided (the
// core.EntryChecker contract), because the scheduler always drains the
// log to keep the capture window from wedging ingest.
type Engine interface {
	Feed(e event.Entry)
	Finish() []core.ModuleReport
}

// Task lifecycle states. A task is in the run queue exactly when its
// state is taskQueued; taskRunWake marks a wake that arrived while a
// worker held the task, so the worker re-checks instead of idling it.
const (
	taskIdle int32 = iota
	taskQueued
	taskRunning
	taskRunWake
	taskDone
)

// Task is one session's entry in the scheduler: a reader over the
// session log, the engine consuming it, and the wake-state machine that
// keeps it runnable exactly while it has pending entries.
type Task struct {
	s      *Scheduler
	tq     *tenantQueue
	cur    wal.Reader
	engine Engine
	// appended reports how many entries have been appended to the log so
	// far (the server's contiguous ingest high-water mark). The idle
	// decision compares it against cur.Pos(): TryNext alone can be
	// transiently false on a sharded merge while entries exist.
	appended func() int64
	// onFed, when non-nil, observes every slice's consumption (window
	// accounting hooks).
	onFed func(n int)

	state      atomic.Int32
	closing    atomic.Bool
	closeTotal atomic.Int64
	fed        atomic.Int64
	done       chan []core.ModuleReport
}

// SchedStats is a point-in-time snapshot of the pool.
type SchedStats struct {
	// Workers is the pool size; Busy is how many are mid-slice.
	Workers int   `json:"workers"`
	Busy    int64 `json:"busy"`
	// Runnable is the run-queue length (sessions with pending entries
	// waiting for a worker); TenantsActive is how many tenants currently
	// hold runnable sessions (the DRR ring length).
	Runnable      int `json:"runnable"`
	TenantsActive int `json:"tenants_active"`
	// Tasks is the number of live registered tasks.
	Tasks int64 `json:"tasks"`
	// Slices and EntriesFed count cooperative time slices executed and
	// entries fed through engines since start.
	Slices     int64 `json:"slices_total"`
	EntriesFed int64 `json:"entries_fed_total"`
	// Finished counts tasks that drained a closed log and reported.
	Finished int64 `json:"tasks_finished_total"`
}

// Utilization is the busy fraction of the pool, 0..1.
func (st SchedStats) Utilization() float64 {
	if st.Workers == 0 {
		return 0
	}
	return float64(st.Busy) / float64(st.Workers)
}

// tenantQueue is one tenant's slot in the deficit-round-robin pickup: a
// FIFO of the tenant's runnable tasks plus the entry credit it has left
// this round. A tenantQueue is in the scheduler's active ring exactly
// while it holds at least one runnable task.
type tenantQueue struct {
	name   string
	credit int64
	tasks  []*Task
	head   int
	active bool
}

func (q *tenantQueue) runnable() int { return len(q.tasks) - q.head }

// Scheduler multiplexes tasks over a fixed worker pool.
type Scheduler struct {
	budget  int
	quantum int64
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	ring    []*tenantQueue
	stopped bool

	busy     atomic.Int64
	tasks    atomic.Int64
	slices   atomic.Int64
	entries  atomic.Int64
	finished atomic.Int64
	wg       sync.WaitGroup
}

// DefaultSliceBudget is the per-slice entry budget: small enough that a
// hot session yields within microseconds, large enough to amortize the
// queue round-trip.
const DefaultSliceBudget = 512

// QuantumSlices sizes the per-tenant DRR quantum as a multiple of the
// slice budget: each round-robin visit tops a tenant's credit up by this
// many full slices' worth of entries, so a busy tenant gets a meaningful
// burst per round without holding the pool hostage between rotations.
const QuantumSlices = 2

// NewScheduler starts a pool of workers time-slicing by budget entries
// (0 picks defaults: 2x GOMAXPROCS workers, DefaultSliceBudget).
func NewScheduler(workers, budget int) *Scheduler {
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	if budget <= 0 {
		budget = DefaultSliceBudget
	}
	s := &Scheduler{
		budget:  budget,
		quantum: int64(QuantumSlices * budget),
		workers: workers,
		tenants: make(map[string]*tenantQueue),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Register adds a session to the scheduler under a tenant (empty means
// the default tenant); tasks sharing a tenant share that tenant's DRR
// queue and credit. The task starts idle; the first Wake makes it
// runnable. appended must report the log's append high-water mark; onFed
// (optional) observes per-slice consumption.
func (s *Scheduler) Register(tenant string, cur wal.Reader, engine Engine, appended func() int64, onFed func(n int)) *Task {
	s.mu.Lock()
	q := s.tenants[tenant]
	if q == nil {
		q = &tenantQueue{name: tenant}
		s.tenants[tenant] = q
	}
	s.mu.Unlock()
	t := &Task{
		s:        s,
		tq:       q,
		cur:      cur,
		engine:   engine,
		appended: appended,
		onFed:    onFed,
		done:     make(chan []core.ModuleReport, 1),
	}
	s.tasks.Add(1)
	return t
}

// Wake marks the task runnable after an append (or close). It is safe
// from any goroutine and idempotent: a queued or about-to-requeue task
// is left alone, an idle task is enqueued, a running task is flagged so
// its worker re-checks before idling.
func (t *Task) Wake() {
	for {
		switch t.state.Load() {
		case taskQueued, taskRunWake, taskDone:
			return
		case taskIdle:
			if t.state.CompareAndSwap(taskIdle, taskQueued) {
				t.s.push(t)
				return
			}
		case taskRunning:
			if t.state.CompareAndSwap(taskRunning, taskRunWake) {
				return
			}
		}
	}
}

// Close tells the task its log has been closed with total entries
// appended; once the reader reaches that position the worker finishes
// the engine and publishes the reports. Call after the log's Close.
func (t *Task) Close(total int64) {
	t.closeTotal.Store(total)
	t.closing.Store(true)
	t.Wake()
}

// Wait blocks until the task has drained its closed log and returns the
// engine's reports. Idempotent.
func (t *Task) Wait() []core.ModuleReport {
	reports := <-t.done
	t.done <- reports // re-arm for idempotent waits
	return reports
}

// Fed reports how many entries this task's engine has consumed.
func (t *Task) Fed() int64 { return t.fed.Load() }

// push appends a task to its tenant's run queue, activating the tenant
// in the DRR ring if it was drained. A tenant re-activating with credit
// left re-enters at the front of the ring: its queue emptied mid-round
// (typically the one task a worker is re-queueing right now), so it
// resumes the interrupted visit instead of waiting out a full rotation —
// without this, a one-session tenant could spend at most one slice per
// round no matter its quantum.
func (s *Scheduler) push(t *Task) {
	s.mu.Lock()
	q := t.tq
	q.tasks = append(q.tasks, t)
	if !q.active {
		q.active = true
		if q.credit > 0 {
			s.ring = append(s.ring, nil)
			copy(s.ring[1:], s.ring)
			s.ring[0] = q
		} else {
			s.ring = append(s.ring, q)
		}
	}
	s.mu.Unlock()
	s.cond.Signal()
}

// pop blocks for the next runnable task, picked deficit-round-robin
// across tenants; nil means the pool stopped. The head tenant of the
// ring is served while it has credit; a tenant out of credit is topped
// up by one quantum and rotated to the back, so every loop iteration
// either returns a task or strictly advances some tenant toward being
// servable.
func (s *Scheduler) pop() *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.ring) > 0 {
			q := s.ring[0]
			if q.credit <= 0 {
				q.credit += s.quantum
				if len(s.ring) > 1 {
					copy(s.ring, s.ring[1:])
					s.ring[len(s.ring)-1] = q
				}
				continue
			}
			t := q.tasks[q.head]
			q.tasks[q.head] = nil
			q.head++
			if q.runnable() == 0 {
				// Queue drained: leave the ring. Credit is kept — the
				// popped task is usually mid-slice and about to requeue,
				// and charging decides whether the tenant truly went
				// idle (and forfeits the remainder) once the slice ran.
				q.tasks = q.tasks[:0]
				q.head = 0
				q.active = false
				s.ring = s.ring[1:]
			}
			return t
		}
		if s.stopped {
			return nil
		}
		s.cond.Wait()
	}
}

// charge debits a slice's actual consumption against the task's tenant
// after the slice ran and the task decided its next state (DRR with
// post-slice charging: the cost of a slice is only known once the reader
// has been drained). Even an empty slice costs one entry, so a tenant
// whose tasks spin without progress (e.g. a sharded merge not yet
// provable) still drains its credit and rotates. A tenant that is out of
// the ring at charge time has gone idle — nothing requeued — and
// forfeits its leftover credit, so an idle tenant cannot bank service.
func (s *Scheduler) charge(q *tenantQueue, n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	q.credit -= int64(n)
	if !q.active {
		q.credit = 0
	}
	s.mu.Unlock()
}

func (s *Scheduler) worker() {
	for {
		t := s.pop()
		if t == nil {
			return
		}
		t.state.Store(taskRunning)
		s.busy.Add(1)
		s.runSlice(t)
		s.busy.Add(-1)
	}
}

// runSlice feeds the task up to the entry budget, then decides its next
// state: finish (closed log fully drained), requeue (entries pending),
// or idle (nothing pending — raced against Wake via the state CAS).
func (s *Scheduler) runSlice(t *Task) {
	s.slices.Add(1)
	n := 0
	// Charge after the state machine below settles the task's next state,
	// so a requeue has already re-activated the tenant and only a tenant
	// that truly went idle forfeits credit.
	defer func() { s.charge(t.tq, n) }()
	for n < s.budget {
		e, ok := t.cur.TryNext()
		if !ok {
			break
		}
		t.engine.Feed(e)
		n++
	}
	if n > 0 {
		t.fed.Add(int64(n))
		s.entries.Add(int64(n))
		if t.onFed != nil {
			t.onFed(n)
		}
	}
	for {
		pos := int64(t.cur.Pos())
		if t.closing.Load() && pos >= t.closeTotal.Load() {
			// Closed and drained: finish exactly once (the task runs on
			// at most one worker, and taskDone stops future wakes).
			t.state.Store(taskDone)
			reports := t.engine.Finish()
			s.tasks.Add(-1)
			s.finished.Add(1)
			t.done <- reports
			return
		}
		if t.appended()-pos > 0 {
			// Entries pending (TryNext may still have refused them: a
			// sharded merge proves order lazily) — stay runnable. Yield
			// when the slice made no progress so a not-yet-mergeable
			// task does not monopolize its worker.
			t.state.Store(taskQueued)
			s.push(t)
			if n == 0 {
				runtime.Gosched()
			}
			return
		}
		// Nothing pending: transition to idle unless a wake raced in
		// after the pending check (CAS fails, state is taskRunWake).
		if t.state.CompareAndSwap(taskRunning, taskIdle) {
			return
		}
		t.state.Store(taskRunning)
	}
}

// Stats snapshots the pool gauges.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	runnable := 0
	for _, q := range s.ring {
		runnable += q.runnable()
	}
	active := len(s.ring)
	s.mu.Unlock()
	return SchedStats{
		Workers:       s.workers,
		Busy:          s.busy.Load(),
		Runnable:      runnable,
		TenantsActive: active,
		Tasks:         s.tasks.Load(),
		Slices:        s.slices.Load(),
		EntriesFed:    s.entries.Load(),
		Finished:      s.finished.Load(),
	}
}

// Stop shuts the pool down after every registered task has finished
// (the server force-finishes sessions before calling it). Idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
