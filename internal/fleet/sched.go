// Package fleet is vyrdd's multi-tenant service tier: a session
// scheduler that multiplexes many checker pipelines over a bounded
// worker pool, per-tenant admission quotas with ack-protocol
// backpressure, consistent-hash routing of session keys across a static
// cluster, a client-side failover runner riding the session-resume
// machinery, and a load generator that measures max-sessions/box.
//
// The scheduler replaces goroutine-per-session checking. A session
// becomes a Task: a log reader plus a checker engine. Ingest wakes the
// task after every append; a bounded pool of workers pops runnable
// tasks and feeds each a cooperative time slice (SliceBudget entries)
// before requeueing it, so thousands of mostly-idle sessions cost zero
// workers and a hot session cannot starve the rest.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/wal"
)

// Engine is the checker a scheduled task drives: entries in, one
// module-report slice out. The server adapts its three session shapes
// (single checker, linearizer, modular fan-out) onto it. Feed must be
// non-blocking and tolerate entries after a verdict is decided (the
// core.EntryChecker contract), because the scheduler always drains the
// log to keep the capture window from wedging ingest.
type Engine interface {
	Feed(e event.Entry)
	Finish() []core.ModuleReport
}

// Task lifecycle states. A task is in the run queue exactly when its
// state is taskQueued; taskRunWake marks a wake that arrived while a
// worker held the task, so the worker re-checks instead of idling it.
const (
	taskIdle int32 = iota
	taskQueued
	taskRunning
	taskRunWake
	taskDone
)

// Task is one session's entry in the scheduler: a reader over the
// session log, the engine consuming it, and the wake-state machine that
// keeps it runnable exactly while it has pending entries.
type Task struct {
	s      *Scheduler
	cur    wal.Reader
	engine Engine
	// appended reports how many entries have been appended to the log so
	// far (the server's contiguous ingest high-water mark). The idle
	// decision compares it against cur.Pos(): TryNext alone can be
	// transiently false on a sharded merge while entries exist.
	appended func() int64
	// onFed, when non-nil, observes every slice's consumption (window
	// accounting hooks).
	onFed func(n int)

	state      atomic.Int32
	closing    atomic.Bool
	closeTotal atomic.Int64
	fed        atomic.Int64
	done       chan []core.ModuleReport
}

// SchedStats is a point-in-time snapshot of the pool.
type SchedStats struct {
	// Workers is the pool size; Busy is how many are mid-slice.
	Workers int   `json:"workers"`
	Busy    int64 `json:"busy"`
	// Runnable is the run-queue length (sessions with pending entries
	// waiting for a worker).
	Runnable int `json:"runnable"`
	// Tasks is the number of live registered tasks.
	Tasks int64 `json:"tasks"`
	// Slices and EntriesFed count cooperative time slices executed and
	// entries fed through engines since start.
	Slices     int64 `json:"slices_total"`
	EntriesFed int64 `json:"entries_fed_total"`
	// Finished counts tasks that drained a closed log and reported.
	Finished int64 `json:"tasks_finished_total"`
}

// Utilization is the busy fraction of the pool, 0..1.
func (st SchedStats) Utilization() float64 {
	if st.Workers == 0 {
		return 0
	}
	return float64(st.Busy) / float64(st.Workers)
}

// Scheduler multiplexes tasks over a fixed worker pool.
type Scheduler struct {
	budget  int
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Task
	head    int
	stopped bool

	busy     atomic.Int64
	tasks    atomic.Int64
	slices   atomic.Int64
	entries  atomic.Int64
	finished atomic.Int64
	wg       sync.WaitGroup
}

// DefaultSliceBudget is the per-slice entry budget: small enough that a
// hot session yields within microseconds, large enough to amortize the
// queue round-trip.
const DefaultSliceBudget = 512

// NewScheduler starts a pool of workers time-slicing by budget entries
// (0 picks defaults: 2x GOMAXPROCS workers, DefaultSliceBudget).
func NewScheduler(workers, budget int) *Scheduler {
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	if budget <= 0 {
		budget = DefaultSliceBudget
	}
	s := &Scheduler{budget: budget, workers: workers}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
	return s
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// Register adds a session to the scheduler. The task starts idle; the
// first Wake makes it runnable. appended must report the log's append
// high-water mark; onFed (optional) observes per-slice consumption.
func (s *Scheduler) Register(cur wal.Reader, engine Engine, appended func() int64, onFed func(n int)) *Task {
	t := &Task{
		s:        s,
		cur:      cur,
		engine:   engine,
		appended: appended,
		onFed:    onFed,
		done:     make(chan []core.ModuleReport, 1),
	}
	s.tasks.Add(1)
	return t
}

// Wake marks the task runnable after an append (or close). It is safe
// from any goroutine and idempotent: a queued or about-to-requeue task
// is left alone, an idle task is enqueued, a running task is flagged so
// its worker re-checks before idling.
func (t *Task) Wake() {
	for {
		switch t.state.Load() {
		case taskQueued, taskRunWake, taskDone:
			return
		case taskIdle:
			if t.state.CompareAndSwap(taskIdle, taskQueued) {
				t.s.push(t)
				return
			}
		case taskRunning:
			if t.state.CompareAndSwap(taskRunning, taskRunWake) {
				return
			}
		}
	}
}

// Close tells the task its log has been closed with total entries
// appended; once the reader reaches that position the worker finishes
// the engine and publishes the reports. Call after the log's Close.
func (t *Task) Close(total int64) {
	t.closeTotal.Store(total)
	t.closing.Store(true)
	t.Wake()
}

// Wait blocks until the task has drained its closed log and returns the
// engine's reports. Idempotent.
func (t *Task) Wait() []core.ModuleReport {
	reports := <-t.done
	t.done <- reports // re-arm for idempotent waits
	return reports
}

// Fed reports how many entries this task's engine has consumed.
func (t *Task) Fed() int64 { return t.fed.Load() }

// push appends a task to the run queue.
func (s *Scheduler) push(t *Task) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	s.cond.Signal()
}

// pop blocks for the next runnable task; nil means the pool stopped.
func (s *Scheduler) pop() *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.head < len(s.queue) {
			t := s.queue[s.head]
			s.queue[s.head] = nil
			s.head++
			if s.head == len(s.queue) {
				s.queue = s.queue[:0]
				s.head = 0
			}
			return t
		}
		if s.stopped {
			return nil
		}
		s.cond.Wait()
	}
}

func (s *Scheduler) worker() {
	for {
		t := s.pop()
		if t == nil {
			return
		}
		t.state.Store(taskRunning)
		s.busy.Add(1)
		s.runSlice(t)
		s.busy.Add(-1)
	}
}

// runSlice feeds the task up to the entry budget, then decides its next
// state: finish (closed log fully drained), requeue (entries pending),
// or idle (nothing pending — raced against Wake via the state CAS).
func (s *Scheduler) runSlice(t *Task) {
	s.slices.Add(1)
	n := 0
	for n < s.budget {
		e, ok := t.cur.TryNext()
		if !ok {
			break
		}
		t.engine.Feed(e)
		n++
	}
	if n > 0 {
		t.fed.Add(int64(n))
		s.entries.Add(int64(n))
		if t.onFed != nil {
			t.onFed(n)
		}
	}
	for {
		pos := int64(t.cur.Pos())
		if t.closing.Load() && pos >= t.closeTotal.Load() {
			// Closed and drained: finish exactly once (the task runs on
			// at most one worker, and taskDone stops future wakes).
			t.state.Store(taskDone)
			reports := t.engine.Finish()
			s.tasks.Add(-1)
			s.finished.Add(1)
			t.done <- reports
			return
		}
		if t.appended()-pos > 0 {
			// Entries pending (TryNext may still have refused them: a
			// sharded merge proves order lazily) — stay runnable. Yield
			// when the slice made no progress so a not-yet-mergeable
			// task does not monopolize its worker.
			t.state.Store(taskQueued)
			s.push(t)
			if n == 0 {
				runtime.Gosched()
			}
			return
		}
		// Nothing pending: transition to idle unless a wake raced in
		// after the pending check (CAS fails, state is taskRunWake).
		if t.state.CompareAndSwap(taskRunning, taskIdle) {
			return
		}
		t.state.Store(taskRunning)
	}
}

// Stats snapshots the pool gauges.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	runnable := len(s.queue) - s.head
	s.mu.Unlock()
	return SchedStats{
		Workers:    s.workers,
		Busy:       s.busy.Load(),
		Runnable:   runnable,
		Tasks:      s.tasks.Load(),
		Slices:     s.slices.Load(),
		EntriesFed: s.entries.Load(),
		Finished:   s.finished.Load(),
	}
}

// Stop shuts the pool down after every registered task has finished
// (the server force-finishes sessions before calling it). Idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}
