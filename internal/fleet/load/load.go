// Package load is the vyrdload engine: it simulates N instrumented
// clients streaming recorded subject logs into a vyrdd fleet at once,
// holds them all open at a barrier to establish the true concurrent-
// session count on the box, then races the streams to completion to
// measure aggregate checked entries/sec — the two numbers a capacity
// plan needs (max-sessions/box, entries/sec/fleet).
package load

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/fleet/failover"
	"repro/internal/remote"
)

// Config describes one load run.
type Config struct {
	// Addr targets a single vyrdd node. Nodes, when set instead, routes
	// every session by key across the cluster (redirects followed,
	// failover enabled).
	Addr  string
	Nodes []string
	// Sessions is how many concurrent sessions to open.
	Sessions int
	// Spec is the registry spec each session checks against; Mode is the
	// verdict engine ("" = server default).
	Spec string
	Mode string
	// Tenant accounts every session under one tenant token.
	Tenant string
	// Entries is the recorded log each session streams (sequence numbers
	// 1..n, the shape harness runs and wal snapshots produce).
	Entries []event.Entry
	// Window and Batch tune each session's client (0 = small defaults
	// sized for thousands of concurrent clients in one process).
	Window int
	Batch  int
	// Dial, when non-nil, replaces net.Dial (tests inject transports).
	Dial func(addr string) (net.Conn, error)
	// OpenTimeout bounds phase one, waiting for all sessions to be open
	// at once (0 = 60s).
	OpenTimeout time.Duration
	// AtPeak, when non-nil, runs once while every opened session is
	// simultaneously live and idle at the barrier — the place to sample
	// the server's own sessions_active gauge.
	AtPeak func()
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Stats is the outcome of a load run.
type Stats struct {
	// Sessions is the configured count; Opened is how many were open
	// simultaneously at the barrier; Failed counts sessions that errored
	// at any point.
	Sessions int `json:"sessions"`
	Opened   int `json:"opened"`
	Failed   int `json:"failed"`
	// VerdictsOk counts sessions whose final verdict passed.
	VerdictsOk int `json:"verdicts_ok"`
	// Entries is the total streamed after the barrier; EntriesPerSec is
	// the aggregate checked-ingest rate over the measured phase.
	Entries       int64   `json:"entries"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	EntriesPerSec float64 `json:"entries_per_sec"`
}

// Run executes one load run.
func Run(cfg Config) (Stats, error) {
	if cfg.Sessions <= 0 {
		return Stats{}, fmt.Errorf("load: Sessions must be positive")
	}
	if len(cfg.Entries) < 2 {
		return Stats{}, fmt.Errorf("load: need at least two entries per session (one to open, the rest to stream)")
	}
	if cfg.Addr == "" && len(cfg.Nodes) == 0 {
		return Stats{}, fmt.Errorf("load: Addr or Nodes is required")
	}
	window := cfg.Window
	if window <= 0 {
		window = 1 << 10
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 64
	}
	openTimeout := cfg.OpenTimeout
	if openTimeout <= 0 {
		openTimeout = 60 * time.Second
	}

	type shipper interface {
		WriteEntry(e event.Entry) error
	}
	newSession := func(i int) (shipper, func() (*remote.Verdict, error), func() string, error) {
		co := remote.ClientOptions{
			Hello:         remote.Hello{Spec: cfg.Spec, Mode: cfg.Mode, Tenant: cfg.Tenant},
			Window:        window,
			BatchEntries:  batch,
			Dial:          cfg.Dial,
			FlushInterval: 5 * time.Millisecond,
		}
		if len(cfg.Nodes) > 0 {
			r, err := failover.New(failover.Options{
				Nodes:  cfg.Nodes,
				Key:    fmt.Sprintf("load-%d", i),
				Client: co,
			})
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Finish, func() string { return r.Client().Session() }, nil
		}
		co.Addr = cfg.Addr
		cl, err := remote.NewClient(co)
		if err != nil {
			return nil, nil, nil, err
		}
		finish := func() (*remote.Verdict, error) {
			if err := cl.Flush(); err != nil {
				return nil, err
			}
			return cl.Verdict(), nil
		}
		return cl, finish, cl.Session, nil
	}

	var (
		opened     atomic.Int64
		failed     atomic.Int64
		verdictsOk atomic.Int64
		streamed   atomic.Int64

		ready sync.WaitGroup
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	ready.Add(cfg.Sessions)
	openDeadline := time.Now().Add(openTimeout)

	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			isReady := false
			defer func() {
				if !isReady {
					ready.Done()
				}
			}()
			sh, finish, session, err := newSession(i)
			if err != nil {
				failed.Add(1)
				return
			}
			// Phase one: open the session with the first entry, then
			// prove the handshake completed (token assigned) before
			// joining the barrier — "open" means the server holds a live
			// session, not just that we queued bytes locally.
			if err := sh.WriteEntry(cfg.Entries[0]); err != nil {
				failed.Add(1)
				return
			}
			for session() == "" {
				if time.Now().After(openDeadline) {
					failed.Add(1)
					return
				}
				time.Sleep(time.Millisecond)
			}
			opened.Add(1)
			isReady = true
			ready.Done()
			<-start

			// Phase two (measured): stream the rest and collect the
			// verdict.
			for _, e := range cfg.Entries[1:] {
				if err := sh.WriteEntry(e); err != nil {
					failed.Add(1)
					return
				}
			}
			streamed.Add(int64(len(cfg.Entries) - 1))
			v, err := finish()
			if err != nil {
				failed.Add(1)
				return
			}
			if v != nil && v.Ok() {
				verdictsOk.Add(1)
			}
		}(i)
	}

	ready.Wait()
	if cfg.Logf != nil {
		cfg.Logf("load: %d/%d sessions open, starting measured stream", opened.Load(), cfg.Sessions)
	}
	if cfg.AtPeak != nil {
		cfg.AtPeak()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	st := Stats{
		Sessions:   cfg.Sessions,
		Opened:     int(opened.Load()),
		Failed:     int(failed.Load()),
		VerdictsOk: int(verdictsOk.Load()),
		Entries:    streamed.Load(),
		ElapsedNS:  elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		st.EntriesPerSec = float64(st.Entries) / elapsed.Seconds()
	}
	return st, nil
}
