package tstack

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the Treiber stack to the random test harness. The mix
// leans on Push and Pop (the pair carrying the planted publication race);
// Top gives the observer surface I/O refinement judges windows against.
// There is no maintenance worker and no replayer: the subject is checked
// in I/O mode, where Pop's self-validating return value already exposes
// the lost-suffix bug.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "TreiberStack-PublishRace",
		New: func(log *vyrd.Log) harness.Instance {
			s := New(bug)
			return harness.Instance{Methods: methods(s)}
		},
		NewSpec: func() core.Spec { return spec.NewStack() },
	}
}

func methods(s *Stack) []harness.Method {
	return []harness.Method{
		{Name: "Push", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			s.Push(p, pick())
		}},
		{Name: "Pop", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
			s.Pop(p)
		}},
		{Name: "Top", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
			s.Top(p)
		}},
	}
}
