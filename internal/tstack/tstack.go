// Package tstack implements a Treiber stack (Treiber, "Systems Programming:
// Coping with Parallelism", 1986): a lock-free LIFO over a single
// atomically-updated head pointer. It is the repository's first
// atomics-based subject — there is no lock for the controlled scheduler to
// steal around, every shared access is a sync/atomic operation, and the
// interesting interleavings live between individual loads, stores and CAS
// steps rather than between critical sections. Each such step is annotated
// for DPOR through the probe's access-typed yields (YieldLoad/YieldStore/
// Yield), so the scheduler knows which reorderings can matter.
//
// The planted bug (BugPublishBeforeLink) publishes a pushed node with its
// next pointer still nil and links it only after the CAS — the classic
// publish-before-initialize ordering error a release/acquire discipline
// exists to prevent. A Pop landing in the window pops the new node and
// installs its nil next as the head, silently discarding the rest of the
// stack; the next Pop returns -1 while the specification stack is
// non-empty, an I/O refinement violation. Every access is atomic, so the
// buggy interleaving is invisible to the race detector — only refinement
// checking over an explored schedule catches it.
package tstack

import (
	"sync/atomic"

	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation: a node's next pointer is
	// linked before the CAS publishes the node.
	BugNone Bug = iota
	// BugPublishBeforeLink publishes the node first and links next after,
	// with a scheduling point (YieldStore) in the window so controlled
	// schedules can park the pusher mid-publication.
	BugPublishBeforeLink
)

type node struct {
	val  int
	next atomic.Pointer[node]
}

// Stack is the lock-free LIFO.
type Stack struct {
	head atomic.Pointer[node]
	bug  Bug
}

// New returns an empty stack.
func New(bug Bug) *Stack {
	return &Stack{bug: bug}
}

// Push pushes v. The commit is fused with the successful CAS (the step is
// declared opaque by the bare Yield before it): a scheduling point between
// the CAS and the commit append would let a concurrent Pop of the new node
// commit first and log an order the implementation never took.
func (s *Stack) Push(p *vyrd.Probe, v int) {
	inv := p.Call("Push", v)
	n := &node{val: v}
	for {
		p.YieldLoad("head")
		h := s.head.Load()
		if s.bug == BugPublishBeforeLink && h != nil {
			// BUG: publish before linking. With h == nil the unlinked
			// next happens to be correct, so the empty-stack path is
			// taken below even under the bug.
			p.Yield()
			if s.head.CompareAndSwap(h, n) {
				inv.CommitFused("pushed")
				// The window: n is reachable with a nil next. A Pop that
				// runs here truncates the stack to nothing.
				p.YieldStore("next")
				n.next.Store(h)
				inv.Return(nil)
				return
			}
			continue
		}
		n.next.Store(h) // n is still private: no annotation needed
		p.Yield()       // opaque: CAS + fused commit
		if s.head.CompareAndSwap(h, n) {
			inv.CommitFused("pushed")
			inv.Return(nil)
			return
		}
	}
}

// Pop pops and returns the top value, or -1 when the stack is empty. Both
// linearization points — the nil head load and the successful CAS — fuse
// their commit into the step, so each head inspection is declared opaque.
func (s *Stack) Pop(p *vyrd.Probe) int {
	inv := p.Call("Pop")
	for {
		p.Yield() // opaque: head load + (empty case) fused commit
		h := s.head.Load()
		if h == nil {
			inv.CommitFused("empty")
			inv.Return(-1)
			return -1
		}
		p.YieldLoad("next")
		nx := h.next.Load()
		p.Yield() // opaque: CAS + fused commit
		if s.head.CompareAndSwap(h, nx) {
			inv.CommitFused("popped")
			inv.Return(h.val)
			return h.val
		}
	}
}

// Top returns the top value without removing it, or -1 when empty
// (observer: only call and return are logged).
func (s *Stack) Top(p *vyrd.Probe) int {
	inv := p.Call("Top")
	p.YieldLoad("head")
	h := s.head.Load()
	if h == nil {
		inv.Return(-1)
		return -1
	}
	inv.Return(h.val)
	return h.val
}
