package tstack

import (
	"sync"
	"testing"

	"repro/vyrd"
)

func probe(t *testing.T) *vyrd.Probe {
	t.Helper()
	log := vyrd.NewLog(vyrd.LevelIO)
	t.Cleanup(func() { log.Close() })
	return log.NewProbe()
}

// TestSequentialLIFO pins the uncontended semantics of both variants: with
// no concurrency the planted publish window is harmless, so correct and
// buggy stacks alike must behave as a stack.
func TestSequentialLIFO(t *testing.T) {
	for _, bug := range []Bug{BugNone, BugPublishBeforeLink} {
		s := New(bug)
		p := probe(t)
		if got := s.Pop(p); got != -1 {
			t.Fatalf("bug=%d: Pop of empty = %d, want -1", bug, got)
		}
		for i := 1; i <= 5; i++ {
			s.Push(p, i)
			if got := s.Top(p); got != i {
				t.Fatalf("bug=%d: Top after Push(%d) = %d", bug, i, got)
			}
		}
		for i := 5; i >= 1; i-- {
			if got := s.Pop(p); got != i {
				t.Fatalf("bug=%d: Pop = %d, want %d", bug, got, i)
			}
		}
		if got := s.Pop(p); got != -1 {
			t.Fatalf("bug=%d: Pop after drain = %d, want -1", bug, got)
		}
	}
}

// TestConcurrentCorrectLosesNothing hammers the correct stack from real
// goroutines (free-running: the yields are no-ops without a scheduler) and
// checks conservation — every pushed value pops exactly once. Run under
// -race this also certifies the implementation is detector-clean, the
// property that makes the planted bug a DPOR-only catch.
func TestConcurrentCorrectLosesNothing(t *testing.T) {
	const workers, per = 4, 500
	s := New(BugNone)
	log := vyrd.NewLog(vyrd.LevelIO)
	defer log.Close()

	var wg sync.WaitGroup
	popped := make([][]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := log.NewProbe()
			for i := 0; i < per; i++ {
				s.Push(p, w*per+i)
				if v := s.Pop(p); v != -1 {
					popped[w] = append(popped[w], v)
				}
			}
		}()
	}
	wg.Wait()

	p := log.NewProbe()
	seen := make(map[int]bool, workers*per)
	count := 0
	record := func(v int) {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
		count++
	}
	for _, vs := range popped {
		for _, v := range vs {
			record(v)
		}
	}
	for {
		v := s.Pop(p)
		if v == -1 {
			break
		}
		record(v)
	}
	if count != workers*per {
		t.Fatalf("popped %d values, pushed %d", count, workers*per)
	}
}
