package view

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyTable(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 || tb.Hash() != 0 {
		t.Fatalf("empty table: len %d hash %x", tb.Len(), tb.Hash())
	}
	if _, ok := tb.Get("x"); ok {
		t.Fatal("Get on empty table returned a value")
	}
	if s := tb.String(); s != "{}" {
		t.Fatalf("empty table renders as %q", s)
	}
}

func TestSetGetDelete(t *testing.T) {
	tb := NewTable()
	tb.Set("a", "1")
	tb.Set("b", "2")
	if v, ok := tb.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	tb.Set("a", "3")
	if v, _ := tb.Get("a"); v != "3" {
		t.Fatalf("overwrite lost: %q", v)
	}
	tb.Delete("a")
	if _, ok := tb.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if tb.Len() != 1 {
		t.Fatalf("len after delete: %d", tb.Len())
	}
	// Deleting an absent key is a no-op.
	h := tb.Hash()
	tb.Delete("zzz")
	if tb.Hash() != h {
		t.Fatal("deleting an absent key changed the hash")
	}
}

func TestHashOrderIndependence(t *testing.T) {
	a := NewTable()
	b := NewTable()
	pairs := [][2]string{{"x", "1"}, {"y", "2"}, {"z", "3"}, {"w", "4"}}
	for _, p := range pairs {
		a.Set(p[0], p[1])
	}
	for i := len(pairs) - 1; i >= 0; i-- {
		b.Set(pairs[i][0], pairs[i][1])
	}
	if a.Hash() != b.Hash() || !a.Equal(b) {
		t.Fatal("insertion order affected the fingerprint")
	}
}

func TestHashReturnsToZero(t *testing.T) {
	tb := NewTable()
	tb.Set("a", "1")
	tb.Set("b", "2")
	tb.Delete("a")
	tb.Delete("b")
	if tb.Hash() != 0 || tb.Len() != 0 {
		t.Fatalf("emptied table: hash %x len %d", tb.Hash(), tb.Len())
	}
}

func TestSetSameValueIsStable(t *testing.T) {
	tb := NewTable()
	tb.Set("k", "v")
	h := tb.Hash()
	tb.Set("k", "v")
	if tb.Hash() != h {
		t.Fatal("re-setting the same value changed the hash")
	}
}

func TestLengthPrefixPreventsConcatenationCollisions(t *testing.T) {
	a := NewTable()
	b := NewTable()
	a.Set("ab", "c")
	b.Set("a", "bc")
	if a.Hash() == b.Hash() {
		t.Fatal(`("ab","c") and ("a","bc") collide`)
	}
}

func TestEqualDetectsValueDifference(t *testing.T) {
	a := NewTable()
	b := NewTable()
	a.Set("k", "1")
	b.Set("k", "2")
	if a.Equal(b) {
		t.Fatal("tables with different values compare equal")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := NewTable()
	a.Set("k", "1")
	c := a.Clone()
	a.Set("k", "2")
	if v, _ := c.Get("k"); v != "1" {
		t.Fatalf("clone tracked the original: %q", v)
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("clone of clone differs")
	}
}

func TestKeysSorted(t *testing.T) {
	tb := NewTable()
	for _, k := range []string{"m", "a", "z", "b"} {
		tb.Set(k, "v")
	}
	keys := tb.Keys()
	want := []string{"a", "b", "m", "z"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestDiffClassification(t *testing.T) {
	vi := NewTable() // conventionally viewI
	vs := NewTable() // conventionally viewS
	vi.Set("only-i", "1")
	vs.Set("only-s", "2")
	vi.Set("both", "x")
	vs.Set("both", "y")
	ds := vi.Diff(vs, 0)
	if len(ds) != 3 {
		t.Fatalf("expected 3 deltas, got %v", ds)
	}
	kinds := map[string]DeltaKind{}
	for _, d := range ds {
		kinds[d.Key] = d.Kind
	}
	if kinds["only-i"] != DeltaMissing || kinds["only-s"] != DeltaExtra || kinds["both"] != DeltaChanged {
		t.Fatalf("wrong classification: %v", ds)
	}
	// Deltas are sorted by key and the rendering mentions both sides.
	if ds[0].Key > ds[1].Key || ds[1].Key > ds[2].Key {
		t.Fatalf("deltas unsorted: %v", ds)
	}
	if !strings.Contains(FormatDeltas(ds), "viewS") {
		t.Fatalf("rendering: %s", FormatDeltas(ds))
	}
}

func TestDiffLimit(t *testing.T) {
	a := NewTable()
	b := NewTable()
	for i := 0; i < 10; i++ {
		a.Set(fmt.Sprintf("k%02d", i), "v")
	}
	if ds := a.Diff(b, 3); len(ds) != 3 {
		t.Fatalf("limit ignored: %d deltas", len(ds))
	}
	if ds := a.Diff(b, 0); len(ds) != 10 {
		t.Fatalf("limit 0 should be unlimited: %d deltas", len(ds))
	}
}

func TestFormatDeltasEmpty(t *testing.T) {
	if s := FormatDeltas(nil); s != "(views equal)" {
		t.Fatalf("empty deltas render as %q", s)
	}
}

func TestReset(t *testing.T) {
	tb := NewTable()
	tb.Set("a", "1")
	tb.Reset()
	if tb.Len() != 0 || tb.Hash() != 0 {
		t.Fatal("reset did not clear the table")
	}
}

// TestQuickIncrementalHashMatchesRebuild is the property at the heart of
// Section 6.4's incremental computation: applying any sequence of sets and
// deletes incrementally yields the same fingerprint as building a fresh
// table with the final contents.
func TestQuickIncrementalHashMatchesRebuild(t *testing.T) {
	type op struct {
		Del bool
		K   uint8
		V   uint8
	}
	f := func(ops []op) bool {
		inc := NewTable()
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.K%32)
			if o.Del {
				inc.Delete(k)
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", o.V)
				inc.Set(k, v)
				model[k] = v
			}
		}
		rebuilt := NewTable()
		for k, v := range model {
			rebuilt.Set(k, v)
		}
		return inc.Hash() == rebuilt.Hash() && inc.Equal(rebuilt) && inc.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEqualIffNoDiff: Equal and an empty Diff agree for arbitrary
// table pairs.
func TestQuickEqualIffNoDiff(t *testing.T) {
	f := func(aPairs, bPairs map[uint8]uint8, share bool) bool {
		a := NewTable()
		b := NewTable()
		for k, v := range aPairs {
			a.Set(fmt.Sprintf("k%d", k), fmt.Sprintf("v%d", v))
		}
		src := bPairs
		if share {
			src = aPairs // force the equal case to be exercised
		}
		for k, v := range src {
			b.Set(fmt.Sprintf("k%d", k), fmt.Sprintf("v%d", v))
		}
		return a.Equal(b) == (len(a.Diff(b, 0)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSingleDeltaChangesHash: any single-pair change to a random table
// changes its fingerprint (the detection property view comparison relies
// on).
func TestQuickSingleDeltaChangesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		tb := NewTable()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			tb.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", rng.Intn(100)))
		}
		h := tb.Hash()
		k := fmt.Sprintf("k%d", rng.Intn(n))
		old, _ := tb.Get(k)
		switch rng.Intn(2) {
		case 0:
			tb.Delete(k)
		case 1:
			tb.Set(k, old+"'")
		}
		if tb.Hash() == h {
			t.Fatalf("trial %d: single-pair change left the fingerprint unchanged", trial)
		}
	}
}

func BenchmarkSet(b *testing.B) {
	tb := NewTable()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Set(keys[i%len(keys)], "v")
	}
}

func BenchmarkHashCompare(b *testing.B) {
	a := NewTable()
	c := NewTable()
	for i := 0; i < 1024; i++ {
		k := fmt.Sprintf("k%d", i)
		a.Set(k, "v")
		c.Set(k, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Hash() != c.Hash() {
			b.Fatal("hashes differ")
		}
	}
}

func BenchmarkDeepEqual(b *testing.B) {
	a := NewTable()
	c := NewTable()
	for i := 0; i < 1024; i++ {
		k := fmt.Sprintf("k%d", i)
		a.Set(k, "v")
		c.Set(k, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.Equal(c) {
			b.Fatal("tables differ")
		}
	}
}
