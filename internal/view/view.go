// Package view implements the hypothetical view variables of Section 5 of
// the paper: canonical representations of abstract data-structure contents,
// computed on both the specification state (viewS) and the replica state
// reconstructed from the log (viewI), and compared at every mutator commit.
//
// A view is a Table: a finite map from canonical keys to canonical values.
// For a multiset, keys are elements and values are multiplicities; for a
// B-link tree, keys are the stored keys and values the stored data; the
// indexing structure, hash functions and so on are abstracted away
// (Section 5: "viewI might be defined as the list of the (key, value)
// pairs, thus abstracting away the structure of the tree").
//
// To avoid re-traversing the entire state at each commit (Section 6.4), a
// Table maintains an order-independent 64-bit fingerprint incrementally:
// each (key, value) pair contributes a mixed hash, and the table fingerprint
// is the XOR of the contributions. Set and Delete update the fingerprint in
// O(1); equality of fingerprints is the fast path of view comparison, and
// Diff provides the exact comparison used for diagnostics and as a
// collision guard in tests.
package view

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an incrementally fingerprinted map from canonical keys to
// canonical values. The zero value is not usable; construct with NewTable.
type Table struct {
	m    map[string]string
	hash uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{m: make(map[string]string)}
}

// pairHash mixes one (key, value) pair into a 64-bit contribution. It uses
// FNV-1a over a length-prefixed encoding followed by a finalizer, so that
// contributions of distinct pairs are effectively independent and the XOR
// aggregate detects any single-pair discrepancy.
func pairHash(k, v string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		// Length prefix prevents ("ab","c") colliding with ("a","bc").
		n := uint64(len(s))
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(n >> (8 * i)))
			h *= prime64
		}
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(k)
	mix(v)
	// splitmix64-style finalizer; XOR-aggregation needs well-spread bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Set maps key to value, replacing any previous value.
func (t *Table) Set(key, value string) {
	if old, ok := t.m[key]; ok {
		if old == value {
			return
		}
		t.hash ^= pairHash(key, old)
	}
	t.m[key] = value
	t.hash ^= pairHash(key, value)
}

// Delete removes key. Deleting an absent key is a no-op.
func (t *Table) Delete(key string) {
	if old, ok := t.m[key]; ok {
		t.hash ^= pairHash(key, old)
		delete(t.m, key)
	}
}

// Get returns the value for key and whether it is present.
func (t *Table) Get(key string) (string, bool) {
	v, ok := t.m[key]
	return v, ok
}

// Len reports the number of pairs in the table.
func (t *Table) Len() int { return len(t.m) }

// Hash returns the order-independent fingerprint of the table contents.
// Equal contents always have equal fingerprints; unequal contents collide
// with probability ~2^-64 per comparison.
func (t *Table) Hash() uint64 { return t.hash }

// Reset removes all pairs.
func (t *Table) Reset() {
	t.m = make(map[string]string)
	t.hash = 0
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{m: make(map[string]string, len(t.m)), hash: t.hash}
	for k, v := range t.m {
		c.m[k] = v
	}
	return c
}

// Keys returns the keys in sorted order.
func (t *Table) Keys() []string {
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Equal reports whether the two tables hold identical contents. It first
// compares fingerprints and sizes, then verifies pair by pair, so it never
// reports a false positive even under a fingerprint collision.
func (t *Table) Equal(o *Table) bool {
	if t.hash != o.hash || len(t.m) != len(o.m) {
		return false
	}
	for k, v := range t.m {
		if ov, ok := o.m[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// DeltaKind classifies one discrepancy between two tables.
type DeltaKind uint8

const (
	// DeltaMissing: the key is present here but absent in the other table.
	DeltaMissing DeltaKind = iota + 1
	// DeltaExtra: the key is absent here but present in the other table.
	DeltaExtra
	// DeltaChanged: the key is present in both with different values.
	DeltaChanged
)

// Delta is one discrepancy found by Diff.
type Delta struct {
	Kind         DeltaKind
	Key          string
	Value, Other string
}

// String renders the delta for diagnostics.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaMissing:
		return fmt.Sprintf("only in viewI: %s=%s", d.Key, d.Value)
	case DeltaExtra:
		return fmt.Sprintf("only in viewS: %s=%s", d.Key, d.Other)
	case DeltaChanged:
		return fmt.Sprintf("differs at %s: viewI=%s viewS=%s", d.Key, d.Value, d.Other)
	}
	return fmt.Sprintf("delta(%d) %s", d.Kind, d.Key)
}

// Diff returns the discrepancies between t (conventionally viewI) and o
// (conventionally viewS), sorted by key, capped at limit entries (limit <= 0
// means unlimited). An empty result means the tables are equal.
func (t *Table) Diff(o *Table, limit int) []Delta {
	var out []Delta
	for k, v := range t.m {
		if ov, ok := o.m[k]; !ok {
			out = append(out, Delta{Kind: DeltaMissing, Key: k, Value: v})
		} else if ov != v {
			out = append(out, Delta{Kind: DeltaChanged, Key: k, Value: v, Other: ov})
		}
	}
	for k, ov := range o.m {
		if _, ok := t.m[k]; !ok {
			out = append(out, Delta{Kind: DeltaExtra, Key: k, Other: ov})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// String renders the full table contents in sorted key order.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range t.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, t.m[k])
	}
	b.WriteByte('}')
	return b.String()
}

// FormatDeltas renders a bounded diff for violation messages.
func FormatDeltas(ds []Delta) string {
	if len(ds) == 0 {
		return "(views equal)"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}
