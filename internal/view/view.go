// Package view implements the hypothetical view variables of Section 5 of
// the paper: canonical representations of abstract data-structure contents,
// computed on both the specification state (viewS) and the replica state
// reconstructed from the log (viewI), and compared at every mutator commit.
//
// A view is a Table: a finite map from canonical keys to canonical values.
// For a multiset, keys are elements and values are multiplicities; for a
// B-link tree, keys are the stored keys and values the stored data; the
// indexing structure, hash functions and so on are abstracted away
// (Section 5: "viewI might be defined as the list of the (key, value)
// pairs, thus abstracting away the structure of the tree").
//
// To avoid re-traversing the entire state at each commit (Section 6.4), a
// Table maintains an order-independent 64-bit fingerprint incrementally:
// each (key, value) pair contributes a mixed hash, and the table fingerprint
// is the XOR of the contributions. Set and Delete update the fingerprint in
// O(1); equality of fingerprints is the fast path of view comparison, and
// Diff provides the exact comparison used for diagnostics and as a
// collision guard in tests.
//
// Keys come in two disjoint universes. The original string universe
// (Set/Delete/Get) renders arbitrary canonical keys. The integer universe
// (SetInt/DeleteInt/GetInt/SetIntBytes) keys pairs by (Space, int64) —
// a Space is an interned key family like "k" or "h" with a precomputed
// hash seed — so the hot specs and replayers update the fingerprint with
// pure integer mixing: no key-string building, no string hashing, no
// allocation. The two universes never alias: a pair set via SetInt is a
// different pair from one set via Set, even if they render identically.
package view

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Space is an interned integer-key family ("k:" keys of a tree view, "h:"
// handles of a store view). Its hash seed is precomputed at registration,
// so per-update hashing starts from the seed instead of re-mixing the
// family name. The zero Space is not usable; construct with NewSpace.
type Space struct {
	id   uint32
	seed uint64
}

var spaceReg = struct {
	sync.Mutex
	byName map[string]Space
	names  []string // index id-1
}{byName: make(map[string]Space)}

// NewSpace interns a key family by name and returns its Space. Calling it
// again with the same name returns the identical Space, so specs and
// replayers that must agree on a view's key universe simply use the same
// name. Typically called once per package at init time.
func NewSpace(name string) Space {
	spaceReg.Lock()
	defer spaceReg.Unlock()
	if sp, ok := spaceReg.byName[name]; ok {
		return sp
	}
	spaceReg.names = append(spaceReg.names, name)
	sp := Space{id: uint32(len(spaceReg.names)), seed: mix64(strHash(name) ^ 0xa24baed4963ee407)}
	spaceReg.byName[name] = sp
	return sp
}

// Name returns the name the space was registered under.
func (sp Space) Name() string {
	spaceReg.Lock()
	defer spaceReg.Unlock()
	if sp.id == 0 || int(sp.id) > len(spaceReg.names) {
		return ""
	}
	return spaceReg.names[sp.id-1]
}

// ikey is an integer-universe key.
type ikey struct {
	space uint32
	k     int64
}

// ival is an integer-universe value with its cached pair-hash contribution.
// A value is either an int64 (isBytes false) or an immutable byte string.
type ival struct {
	h       uint64
	num     int64
	b       []byte
	isBytes bool
}

func (v ival) equal(o ival) bool {
	if v.isBytes != o.isBytes {
		return false
	}
	if v.isBytes {
		return string(v.b) == string(o.b)
	}
	return v.num == o.num
}

// render returns the canonical string form used by Diff/String.
func (v ival) render() string {
	if v.isBytes {
		return fmt.Sprintf("0x%x", v.b)
	}
	return strconv.FormatInt(v.num, 10)
}

// sval is a string-universe value with its cached pair-hash contribution.
type sval struct {
	h uint64
	v string
}

// Table is an incrementally fingerprinted map from canonical keys to
// canonical values. The zero value is not usable; construct with NewTable.
type Table struct {
	m    map[string]sval
	im   map[ikey]ival
	hash uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{m: make(map[string]sval), im: make(map[ikey]ival)}
}

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// mix64 is the splitmix64 finalizer; XOR-aggregation needs well-spread
// bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// strHash is FNV-1a with a length prefix (so ("ab","c") cannot collide
// with ("a","bc") when chained).
func strHash(s string) uint64 {
	h := uint64(offset64)
	n := uint64(len(s))
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(n >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func bytesHash(b []byte) uint64 {
	h := uint64(offset64)
	n := uint64(len(b))
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(n >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// pairHash mixes one string-universe (key, value) pair into a 64-bit
// contribution; contributions of distinct pairs are effectively independent
// and the XOR aggregate detects any single-pair discrepancy.
func pairHash(k, v string) uint64 {
	return mix64(mix64(strHash(k)) ^ strHash(v))
}

// pairHashInt mixes one integer-universe pair from the space's precomputed
// seed: three multiply-xor rounds over machine words, no string traversal.
func pairHashInt(sp Space, key int64, vkind uint64, v uint64) uint64 {
	h := mix64(sp.seed ^ uint64(key))
	return mix64(h ^ vkind*prime64 ^ v)
}

const (
	vkindNum   = 1
	vkindBytes = 2
)

// Set maps key to value in the string universe, replacing any previous
// value.
func (t *Table) Set(key, value string) {
	old, ok := t.m[key]
	if ok && old.v == value {
		return
	}
	nv := sval{h: pairHash(key, value), v: value}
	if ok {
		t.hash ^= old.h
	}
	t.m[key] = nv
	t.hash ^= nv.h
}

// Delete removes key from the string universe. Deleting an absent key is a
// no-op.
func (t *Table) Delete(key string) {
	if old, ok := t.m[key]; ok {
		t.hash ^= old.h
		delete(t.m, key)
	}
}

// Get returns the string-universe value for key and whether it is present.
func (t *Table) Get(key string) (string, bool) {
	v, ok := t.m[key]
	return v.v, ok
}

// SetInt maps (sp, key) to an integer value. The fingerprint update is
// allocation-free integer mixing.
func (t *Table) SetInt(sp Space, key, value int64) {
	ik := ikey{space: sp.id, k: key}
	old, ok := t.im[ik]
	if ok && !old.isBytes && old.num == value {
		return
	}
	nv := ival{h: pairHashInt(sp, key, vkindNum, uint64(value)), num: value}
	if ok {
		t.hash ^= old.h
	}
	t.im[ik] = nv
	t.hash ^= nv.h
}

// SetIntBytes maps (sp, key) to a byte-string value. The caller must treat
// b as immutable after the call (the table keeps the reference; no copy is
// made).
func (t *Table) SetIntBytes(sp Space, key int64, b []byte) {
	ik := ikey{space: sp.id, k: key}
	old, ok := t.im[ik]
	if ok && old.isBytes && string(old.b) == string(b) {
		return
	}
	nv := ival{h: pairHashInt(sp, key, vkindBytes, bytesHash(b)), b: b, isBytes: true}
	if ok {
		t.hash ^= old.h
	}
	t.im[ik] = nv
	t.hash ^= nv.h
}

// DeleteInt removes (sp, key). Deleting an absent key is a no-op.
func (t *Table) DeleteInt(sp Space, key int64) {
	ik := ikey{space: sp.id, k: key}
	if old, ok := t.im[ik]; ok {
		t.hash ^= old.h
		delete(t.im, ik)
	}
}

// GetInt returns the integer value for (sp, key) and whether it is present
// with an integer value.
func (t *Table) GetInt(sp Space, key int64) (int64, bool) {
	v, ok := t.im[ikey{space: sp.id, k: key}]
	if !ok || v.isBytes {
		return 0, false
	}
	return v.num, true
}

// GetIntBytes returns the byte-string value for (sp, key) and whether it is
// present with a byte-string value.
func (t *Table) GetIntBytes(sp Space, key int64) ([]byte, bool) {
	v, ok := t.im[ikey{space: sp.id, k: key}]
	if !ok || !v.isBytes {
		return nil, false
	}
	return v.b, true
}

// Len reports the number of pairs in the table across both universes.
func (t *Table) Len() int { return len(t.m) + len(t.im) }

// Hash returns the order-independent fingerprint of the table contents.
// Equal contents always have equal fingerprints; unequal contents collide
// with probability ~2^-64 per comparison.
func (t *Table) Hash() uint64 { return t.hash }

// Reset removes all pairs.
func (t *Table) Reset() {
	t.m = make(map[string]sval)
	t.im = make(map[ikey]ival)
	t.hash = 0
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		m:    make(map[string]sval, len(t.m)),
		im:   make(map[ikey]ival, len(t.im)),
		hash: t.hash,
	}
	for k, v := range t.m {
		c.m[k] = v
	}
	for k, v := range t.im {
		c.im[k] = v
	}
	return c
}

// renderKey gives the canonical rendering of an integer-universe key,
// matching the "name:key" convention of the string universe.
func renderKey(ik ikey) string {
	return Space{id: ik.space}.Name() + ":" + strconv.FormatInt(ik.k, 10)
}

// Keys returns the rendered keys of both universes in sorted order.
func (t *Table) Keys() []string {
	keys := make([]string, 0, t.Len())
	for k := range t.m {
		keys = append(keys, k)
	}
	for ik := range t.im {
		keys = append(keys, renderKey(ik))
	}
	sort.Strings(keys)
	return keys
}

// Equal reports whether the two tables hold identical contents. It first
// compares fingerprints and sizes, then verifies pair by pair, so it never
// reports a false positive even under a fingerprint collision.
func (t *Table) Equal(o *Table) bool {
	if t.hash != o.hash || len(t.m) != len(o.m) || len(t.im) != len(o.im) {
		return false
	}
	for k, v := range t.m {
		if ov, ok := o.m[k]; !ok || ov.v != v.v {
			return false
		}
	}
	for ik, v := range t.im {
		if ov, ok := o.im[ik]; !ok || !ov.equal(v) {
			return false
		}
	}
	return true
}

// DeltaKind classifies one discrepancy between two tables.
type DeltaKind uint8

const (
	// DeltaMissing: the key is present here but absent in the other table.
	DeltaMissing DeltaKind = iota + 1
	// DeltaExtra: the key is absent here but present in the other table.
	DeltaExtra
	// DeltaChanged: the key is present in both with different values.
	DeltaChanged
)

// Delta is one discrepancy found by Diff.
type Delta struct {
	Kind         DeltaKind
	Key          string
	Value, Other string
}

// String renders the delta for diagnostics.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaMissing:
		return fmt.Sprintf("only in viewI: %s=%s", d.Key, d.Value)
	case DeltaExtra:
		return fmt.Sprintf("only in viewS: %s=%s", d.Key, d.Other)
	case DeltaChanged:
		return fmt.Sprintf("differs at %s: viewI=%s viewS=%s", d.Key, d.Value, d.Other)
	}
	return fmt.Sprintf("delta(%d) %s", d.Kind, d.Key)
}

// Diff returns the discrepancies between t (conventionally viewI) and o
// (conventionally viewS), sorted by key, capped at limit entries (limit <= 0
// means unlimited). An empty result means the tables hold pairwise-equal
// contents within each universe. A pair that one table keeps in the string
// universe and the other in the integer universe is reported as a
// changed/missing rendered key — such a mismatch is a real discrepancy (the
// fingerprints differ too), typically a spec and replayer that disagree on
// a key's universe.
func (t *Table) Diff(o *Table, limit int) []Delta {
	var out []Delta
	tr, or := t.rendered(), o.rendered()
	for k, v := range tr {
		if ov, ok := or[k]; !ok {
			out = append(out, Delta{Kind: DeltaMissing, Key: k, Value: v})
		} else if ov != v {
			out = append(out, Delta{Kind: DeltaChanged, Key: k, Value: v, Other: ov})
		}
	}
	for k, ov := range or {
		if _, ok := tr[k]; !ok {
			out = append(out, Delta{Kind: DeltaExtra, Key: k, Other: ov})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// rendered flattens both universes to rendered (key, value) strings, for
// the cold diagnostic paths (Diff, String). A string-universe pair and an
// integer-universe pair that render to the same key compare by rendered
// value, which keeps diagnostics readable; Equal and the fingerprint remain
// strict about the universes.
func (t *Table) rendered() map[string]string {
	r := make(map[string]string, t.Len())
	for k, v := range t.m {
		r[k] = v.v
	}
	for ik, v := range t.im {
		r[renderKey(ik)] = v.render()
	}
	return r
}

// String renders the full table contents in sorted key order.
func (t *Table) String() string {
	r := t.rendered()
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, r[k])
	}
	b.WriteByte('}')
	return b.String()
}

// FormatDeltas renders a bounded diff for violation messages.
func FormatDeltas(ds []Delta) string {
	if len(ds) == 0 {
		return "(views equal)"
	}
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}
