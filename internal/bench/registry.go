package bench

import (
	"repro/internal/blinkstore"
	"repro/internal/core"
	"repro/internal/remote"
)

// Registry builds the remote-verification spec registry over every
// evaluation, exploration and linearize-only subject: one factory per
// subject name (spec + replayer of the correct implementation — the server
// checks *logs*, so it needs only the specification side, plus the
// linearizability checker for "linearize" sessions), and the composed
// Fig. 10 stack under its modular name for Hello.Modular sessions.
func Registry() *remote.Registry {
	r := remote.NewRegistry()
	all := append(AllSubjects(), ExplorationSubjects()...)
	all = append(all, WeakMemorySubjects()...)
	all = append(all, TemporalSubjects()...)
	all = append(all, LinearizeOnlySubjects()...)
	for _, s := range all {
		t := s.Correct
		f := remote.SpecFactory{Name: s.Name, NewSpec: t.NewSpec}
		if t.NewReplayer != nil {
			f.NewReplayer = func() core.Replayer { return t.NewReplayer() }
		}
		f.NewLinearizer = NewLinearizer(s.Name)
		f.NewTemporal = NewTemporal(s.Name)
		if err := r.Register(f); err != nil {
			panic(err) // subject names are unique by construction
		}
	}
	if err := r.Register(remote.SpecFactory{
		Name:        "BLinkTree+Store",
		NewSpec:     blinkstore.ComposedTarget(6, blinkstore.BugNone).NewSpec,
		NewModules:  blinkstore.Modules,
		NewTemporal: NewTemporal("BLinkTree+Store"),
	}); err != nil {
		panic(err)
	}
	return r
}
