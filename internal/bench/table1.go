package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/vyrd"
)

// Table1Row is one cell row of the paper's Table 1: the average number of
// methods executed before the first error was detected, per refinement
// mode, plus the CPU-time ratio of view-mode checking to I/O-mode checking
// on the same traces.
type Table1Row struct {
	Subject  string
	Bug      string
	Threads  int
	Reps     int // traces that contributed to the averages
	IOAvg    float64
	ViewAvg  float64
	IOMiss   int // traces where I/O refinement found nothing
	ViewMiss int // traces where view refinement found nothing
	CPURatio float64
}

// Table1Config parameterizes the experiment.
type Table1Config struct {
	Reps         int // traces per (subject, threads) cell
	OpsPerThread int
	Seed         int64
}

// DefaultTable1Config mirrors the scale of the paper's runs, scaled to this
// machine.
func DefaultTable1Config() Table1Config {
	return Table1Config{Reps: 5, OpsPerThread: 400, Seed: 1}
}

// table1Threads reproduces the thread counts of the paper's rows.
func table1Threads(subject string) []int {
	switch subject {
	case "BLinkTree":
		return []int{2, 4, 8, 10, 16, 25, 32}
	case "Cache":
		return []int{4, 8, 10, 16, 25, 32}
	}
	return []int{4, 8, 16, 32}
}

// Table1 runs the time-to-detection experiment for every subject and thread
// count of the paper's Table 1.
func Table1(cfg Table1Config) []Table1Row {
	var rows []Table1Row
	for _, s := range Subjects() {
		for _, threads := range table1Threads(s.Name) {
			rows = append(rows, table1Cell(s, threads, cfg))
		}
	}
	return rows
}

// Table1Subject runs the experiment for a single subject (all of its
// thread counts).
func Table1Subject(s Subject, cfg Table1Config) []Table1Row {
	var rows []Table1Row
	for _, threads := range table1Threads(s.Name) {
		rows = append(rows, table1Cell(s, threads, cfg))
	}
	return rows
}

func table1Cell(s Subject, threads int, cfg Table1Config) Table1Row {
	row := Table1Row{Subject: s.Name, Bug: s.BugName, Threads: threads, Reps: cfg.Reps}
	var ioSum, viewSum float64
	var ioN, viewN int
	var ioTime, viewTime float64
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed + int64(rep)*104729
		res := harness.Run(s.Buggy, baseConfig(threads, cfg.OpsPerThread, seed, vyrd.LevelView))

		ioRep, _, err := checkTimed(s.Buggy, res, core.ModeIO, true)
		if err != nil {
			panic(err)
		}
		viewRep, _, err := checkTimed(s.Buggy, res, core.ModeView, true)
		if err != nil {
			panic(err)
		}
		if v := ioRep.First(); v != nil {
			ioSum += float64(v.MethodsCompleted)
			ioN++
		} else {
			row.IOMiss++
		}
		if v := viewRep.First(); v != nil {
			viewSum += float64(v.MethodsCompleted)
			viewN++
		} else {
			row.ViewMiss++
		}

		// CPU ratio is measured over the whole trace (no fail-fast), as in
		// the paper: "running VYRD in view refinement mode to ... I/O
		// refinement only mode on the same trace".
		_, ioFull, err := checkTimed(s.Buggy, res, core.ModeIO, false)
		if err != nil {
			panic(err)
		}
		_, viewFull, err := checkTimed(s.Buggy, res, core.ModeView, false)
		if err != nil {
			panic(err)
		}
		ioTime += ioFull.Seconds()
		viewTime += viewFull.Seconds()
	}
	if ioN > 0 {
		row.IOAvg = ioSum / float64(ioN)
	}
	if viewN > 0 {
		row.ViewAvg = viewSum / float64(viewN)
	}
	if ioTime > 0 {
		row.CPURatio = viewTime / ioTime
	}
	return row
}

// WriteTable1 renders the rows in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1. Time to detection of error")
	fmt.Fprintln(tw, "Program\tError\t#Thrd\t#Mthds I/O Ref.\t#Mthds View Ref.\tCPU view/IO")
	prev := ""
	for _, r := range rows {
		name, bug := "", ""
		if r.Subject != prev {
			name, bug = r.Subject, r.Bug
			prev = r.Subject
		}
		io := "not detected"
		if r.IOAvg > 0 {
			io = fmt.Sprintf("%.0f", r.IOAvg)
			if r.IOMiss > 0 {
				io += fmt.Sprintf(" (%d/%d missed)", r.IOMiss, r.Reps)
			}
		}
		view := "not detected"
		if r.ViewAvg > 0 {
			view = fmt.Sprintf("%.0f", r.ViewAvg)
			if r.ViewMiss > 0 {
				view += fmt.Sprintf(" (%d/%d missed)", r.ViewMiss, r.Reps)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.2f\n", name, bug, r.Threads, io, view, r.CPURatio)
	}
	tw.Flush()
}
