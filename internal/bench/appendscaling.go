package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/event"
	"repro/internal/wal"
)

// AppendScalingConfig shapes the capture-scaling table: raw append
// throughput and full online-pipeline throughput (producers plus the
// k-way-merge drain), measured for the single-counter log and the sharded
// shard group at each GOMAXPROCS setting. This is the PR's headline
// ablation: the global backend serializes every append on one RMW cache
// line, the sharded backend's producers share nothing on the hot path.
type AppendScalingConfig struct {
	// Procs lists the GOMAXPROCS settings to measure (the -cpu axis).
	Procs []int
	// Shards is the shard count for the sharded rows (0 = match Procs,
	// one shard per core — the deployment default).
	Shards int
	// Entries is the total appends per cell, split across one producer
	// goroutine per proc.
	Entries int
}

// DefaultAppendScalingConfig sizes cells long enough that per-entry cost
// dominates goroutine start/stop noise.
func DefaultAppendScalingConfig() AppendScalingConfig {
	return AppendScalingConfig{Procs: []int{1, 4, 8}, Entries: 400_000}
}

// AppendScalingRow is one (backend, procs) cell. Throughputs are
// entries/sec; Append is producers only over a truncating unbounded-window
// log, Pipeline adds a checker-side reader draining the merged total order
// through a bounded window — the deployment shape of online checking.
type AppendScalingRow struct {
	Backend        string // "global" (single-counter) or "sharded"
	Procs          int
	Shards         int // 0 for the global backend
	Entries        int
	AppendNS       int64
	AppendPerSec   float64
	PipelineNS     int64
	PipelinePerSec float64
}

// appendScalingProduce fans cfg.Entries appends over procs producer
// goroutines, each with its own shard-pinned Appender, and returns the
// wall-clock for the whole batch.
func appendScalingProduce(lg wal.Backend, procs, entries int) time.Duration {
	var wg sync.WaitGroup
	per := entries / procs
	start := time.Now()
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := lg.AppenderFor(lg.NewTid())
			e := event.Entry{Kind: event.KindCall, Method: "Op"}
			for i := 0; i < per; i++ {
				a.Append(e)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// AppendScaling measures both backends at each proc count. GOMAXPROCS is
// set per cell and restored; on a box with fewer cores than the largest
// proc setting the extra producers time-slice, so the table records
// contention behavior, not true parallel speedup — the snapshot's NumCPU
// field says which reading applies.
func AppendScaling(cfg AppendScalingConfig) []AppendScalingRow {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var rows []AppendScalingRow
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		for _, backend := range []string{"global", "sharded"} {
			shards := 0
			if backend == "sharded" {
				shards = cfg.Shards
				if shards <= 0 {
					shards = procs
				}
			}
			row := AppendScalingRow{Backend: backend, Procs: procs, Shards: shards, Entries: cfg.Entries}

			// Append cell: producers only, truncation keeps memory flat.
			lg := wal.Open(wal.LevelView, wal.Options{SegmentSize: 1024, Truncate: true, Shards: shards})
			el := appendScalingProduce(lg, procs, cfg.Entries)
			lg.Close()
			row.AppendNS = el.Nanoseconds()
			row.AppendPerSec = float64(cfg.Entries) / el.Seconds()

			// Pipeline cell: a reader drains the merged stream through a
			// bounded window while the producers run.
			lg = wal.Open(wal.LevelView, wal.Options{SegmentSize: 4096, Window: 1 << 16, Shards: shards})
			// Register the reader before any producer starts: a cursor opens
			// at the oldest *retained* entry, and an unobserved window log is
			// free to run ahead and release its prefix first.
			cur := lg.Reader()
			done := make(chan int64)
			go func() {
				var n int64
				for {
					if _, ok := cur.Next(); !ok {
						break
					}
					n++
				}
				done <- n
			}()
			el = appendScalingProduce(lg, procs, cfg.Entries)
			lg.Close()
			if n := <-done; n != int64((cfg.Entries/procs)*procs) {
				panic(fmt.Sprintf("bench: pipeline drained %d of %d entries", n, cfg.Entries))
			}
			row.PipelineNS = el.Nanoseconds()
			row.PipelinePerSec = float64(cfg.Entries) / el.Seconds()

			rows = append(rows, row)
		}
	}
	return rows
}

// WriteAppendScaling renders the capture-scaling rows with a per-proc
// speedup column (sharded over global at the same proc count).
func WriteAppendScaling(w io.Writer, cfg AppendScalingConfig, rows []AppendScalingRow) {
	fmt.Fprintf(w, "Capture scaling: single-counter vs sharded append, %d entries per cell (NumCPU=%d)\n",
		cfg.Entries, runtime.NumCPU())
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Procs\tBackend\tShards\tAppend/s\tAppend time\tPipeline/s\tPipeline time\tAppend speedup")
	byProc := map[int]float64{}
	for _, r := range rows {
		if r.Backend == "global" {
			byProc[r.Procs] = r.AppendPerSec
		}
	}
	for _, r := range rows {
		speedup := "-"
		if g := byProc[r.Procs]; r.Backend == "sharded" && g > 0 {
			speedup = fmt.Sprintf("%.2fx", r.AppendPerSec/g)
		}
		shards := "-"
		if r.Shards > 0 {
			shards = fmt.Sprintf("%d", r.Shards)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.2fM\t%s\t%.2fM\t%s\t%s\n",
			r.Procs, r.Backend, shards,
			r.AppendPerSec/1e6, time.Duration(r.AppendNS).Round(time.Millisecond),
			r.PipelinePerSec/1e6, time.Duration(r.PipelineNS).Round(time.Millisecond),
			speedup)
	}
	tw.Flush()
}
