package bench_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/racecheck"
	"repro/internal/remote"
	"repro/vyrd"
)

// startDiffServer brings up a vyrdd-shaped server over the full bench
// registry for the remote differential legs.
func startDiffServer(tb testing.TB) string {
	tb.Helper()
	srv, err := remote.NewServer(remote.ServerOptions{Registry: bench.Registry()})
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// remoteLinearize ships a recorded log to the server as a "linearize"
// session and returns the remote verdict report.
func remoteLinearize(t *testing.T, addr, subject string, entries []vyrd.Entry) *core.Report {
	t.Helper()
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: subject, Mode: "linearize"},
	})
	if err != nil {
		t.Fatalf("%s: NewClient: %v", subject, err)
	}
	for _, e := range entries {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("%s: WriteEntry #%d: %v", subject, e.Seq, err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("%s: Flush: %v", subject, err)
	}
	v := cl.Verdict()
	if v == nil {
		t.Fatalf("%s: no remote verdict", subject)
	}
	return v.Report()
}

// TestLinearizeMatchesRefinement is the differential verdict suite: for
// every registry subject, the refinement checker and the linearizability
// engine must agree — on clean runs of the correct implementations and on
// the planted-race witnesses schedule exploration finds — through every
// deployment surface: offline over recorded entries, online through the
// wal pipeline and core.Multi fan-out, and remotely through a vyrdd
// session. A divergence fails with the schedule repro string, replayable
// with vyrdx.
func TestLinearizeMatchesRefinement(t *testing.T) {
	addr := startDiffServer(t)

	t.Run("clean", func(t *testing.T) {
		for _, s := range bench.AllSubjects() {
			if _, err := bench.LinearizeSpec(s.Name); err != nil {
				t.Fatalf("registry subject without a linearize spec: %v", err)
			}
			s := s
			t.Run(s.Name, func(t *testing.T) {
				entries := bench.CleanRun(s, 1)

				off, err := bench.Differential(s.Name, s.Correct, entries, "")
				if err != nil {
					t.Fatal(err)
				}
				if !off.Refinement.Ok() {
					t.Fatalf("refinement flagged a clean run:\n%s", off.Refinement)
				}
				if !off.Agree() {
					t.Fatalf("offline divergence on a clean run:\n%s", off)
				}

				on, err := bench.DifferentialOnline(s.Name, s.Correct, entries, "")
				if err != nil {
					t.Fatal(err)
				}
				if !on.Agree() {
					t.Fatalf("online divergence on a clean run:\n%s", on)
				}

				rep := remoteLinearize(t, addr, s.Name, entries)
				if rep.Ok() != off.Refinement.Ok() {
					t.Fatalf("remote divergence on a clean run: remote linearize ok=%v, local refinement ok=%v\n%s",
						rep.Ok(), off.Refinement.Ok(), rep)
				}
				if rep.Mode != core.ModeLinearize {
					t.Fatalf("remote verdict in mode %s, want linearize", rep.Mode)
				}
			})
		}
	})

	t.Run("planted-race", func(t *testing.T) {
		if racecheck.Enabled {
			t.Skip("planted bugs are intentional data races; the detector would abort before the checkers verdict")
		}
		for _, s := range bench.ExplorationSubjects() {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				entries, repro, skipped, err := bench.SurfacedRaceWitness(s, 2000)
				if err != nil {
					t.Fatal(err)
				}
				if skipped > 0 {
					t.Logf("%d earlier witnesses violated refinement only (corrupted state not yet observed at the call/return surface)", skipped)
				}

				off, err := bench.Differential(s.Name, s.Buggy, entries, repro)
				if err != nil {
					t.Fatal(err)
				}
				if off.Refinement.Ok() {
					t.Fatalf("witness schedule no longer violates refinement\nrepro: %s", repro)
				}
				if !off.Agree() {
					t.Fatalf("offline divergence on a planted-race witness:\n%s", off)
				}

				on, err := bench.DifferentialOnline(s.Name, s.Buggy, entries, repro)
				if err != nil {
					t.Fatal(err)
				}
				if !on.Agree() {
					t.Fatalf("online divergence on a planted-race witness:\n%s", on)
				}

				rep := remoteLinearize(t, addr, s.Name, entries)
				if rep.Ok() {
					t.Fatalf("remote linearize session missed the planted race\nrepro: %s\nlocal linearize:\n%s",
						repro, off.Linearize)
				}
				if k := rep.First().Kind; k != core.ViolationLinearizability {
					t.Fatalf("remote violation kind %s, want linearizability", k)
				}
			})
		}
	})
}

// TestDifferentialSoundnessDirection pins the one implication soundness
// guarantees unconditionally: whenever the engine rejects a complete log,
// commit-pinned I/O refinement rejects it too (a linearizability failure
// means NO serialization matches the returns, commit-ordered or not). The
// converse is the gap commit annotations close and is not asserted.
func TestDifferentialSoundnessDirection(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("planted bugs are intentional data races; the detector would abort before the checkers verdict")
	}
	for _, s := range bench.ExplorationSubjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			entries, repro, err := bench.RaceWitness(s, 600)
			if err != nil {
				t.Fatal(err)
			}
			d, err := bench.Differential(s.Name, s.Buggy, entries, repro)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Linearize.Ok() && d.Refinement.Ok() {
				t.Fatalf("soundness violated: linearizability failed where refinement passed\n%s", d)
			}
		})
	}
}

// TestExploreLevelIsView documents why the witness comparison is
// meaningful: exploration checks these targets under view refinement, the
// strongest verdict in the repo, so agreement with the linearizability
// engine is an empirical result, not an implication.
func TestExploreLevelIsView(t *testing.T) {
	for _, s := range bench.ExplorationSubjects() {
		if explore.Mode(s.Buggy) != core.ModeView {
			t.Fatalf("%s: exploration mode %s", s.Name, explore.Mode(s.Buggy))
		}
	}
}
