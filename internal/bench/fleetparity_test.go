package bench_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/racecheck"
	"repro/internal/remote"
)

// startFleetDiffServer is startDiffServer with the bounded-pool scheduler
// on: every session's checker pipeline time-slices over two workers
// instead of owning a goroutine. The small slice budget forces many
// scheduler turns per session so parity covers the requeue machinery, not
// just a single drain.
func startFleetDiffServer(tb testing.TB) string {
	tb.Helper()
	srv, err := remote.NewServer(remote.ServerOptions{
		Registry:    bench.Registry(),
		Workers:     2,
		SliceBudget: 64,
	})
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestFleetVerdictParity pins goroutine-vs-scheduler verdict parity on
// every registry subject (ISSUE 8 acceptance): multiplexing checker work
// over a bounded pool must not change a single verdict.
//
//   - scheduler-direct: the recorded entries stream through a wal window
//     into the Multi fan-out driven by fleet scheduler slices on a shared
//     two-worker pool — the resulting core.Summary of both engines must be
//     identical to the goroutine-run baseline, field for field;
//   - vyrdd loopback: the same entries shipped over TCP to a Workers=2
//     server and to a goroutine-per-session server — equal remote
//     verdicts.
//
// The planted-race leg replays exploration witnesses through both legs: a
// violation both engines flag under the goroutine baseline must survive
// the pool.
func TestFleetVerdictParity(t *testing.T) {
	baseAddr := startDiffServer(t)
	fleetAddr := startFleetDiffServer(t)

	// One shared pool for every scheduler-direct leg: subjects contend for
	// two workers, which is the deployment shape the claim is about.
	sched := fleet.NewScheduler(2, 64)
	defer sched.Stop()

	t.Run("clean", func(t *testing.T) {
		for _, s := range bench.AllSubjects() {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				entries := bench.CleanRun(s, 1)

				base, err := bench.DifferentialOnline(s.Name, s.Correct, entries, "")
				if err != nil {
					t.Fatal(err)
				}
				schd, err := bench.DifferentialScheduled(s.Name, s.Correct, entries, "", sched)
				if err != nil {
					t.Fatal(err)
				}
				if !schd.Refinement.Ok() || !schd.Agree() {
					t.Fatalf("scheduler broke the clean-run verdict:\n%s", schd)
				}
				if base.Refinement.Summary() != schd.Refinement.Summary() {
					t.Fatalf("refinement summary divergence:\ngoroutine: %+v\nscheduler: %+v",
						base.Refinement.Summary(), schd.Refinement.Summary())
				}
				if base.Linearize.Summary() != schd.Linearize.Summary() {
					t.Fatalf("linearize summary divergence:\ngoroutine: %+v\nscheduler: %+v",
						base.Linearize.Summary(), schd.Linearize.Summary())
				}

				repBase := remoteLinearize(t, baseAddr, s.Name, entries)
				repFleet := remoteLinearize(t, fleetAddr, s.Name, entries)
				if repBase.Ok() != repFleet.Ok() {
					t.Fatalf("vyrdd loopback scheduler vs goroutine divergence: goroutine ok=%v, scheduler ok=%v\ngoroutine:\n%s\nscheduler:\n%s",
						repBase.Ok(), repFleet.Ok(), repBase, repFleet)
				}
				if repBase.Summary() != repFleet.Summary() {
					t.Fatalf("vyrdd loopback summary divergence:\ngoroutine: %+v\nscheduler: %+v",
						repBase.Summary(), repFleet.Summary())
				}
			})
		}
	})

	t.Run("planted-race", func(t *testing.T) {
		if racecheck.Enabled {
			t.Skip("planted bugs are intentional data races; the detector would abort before the checkers verdict")
		}
		for _, s := range bench.ExplorationSubjects() {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				entries, repro, _, err := bench.SurfacedRaceWitness(s, 2000)
				if err != nil {
					t.Fatal(err)
				}
				schd, err := bench.DifferentialScheduled(s.Name, s.Buggy, entries, repro, sched)
				if err != nil {
					t.Fatal(err)
				}
				if schd.Refinement.Ok() || schd.Linearize.Ok() {
					t.Fatalf("scheduler lost a violation both engines flag under the goroutine baseline:\n%s", schd)
				}
				repFleet := remoteLinearize(t, fleetAddr, s.Name, entries)
				if repFleet.Ok() {
					t.Fatalf("scheduler-mode vyrdd session lost the violation:\n%s", repFleet)
				}
			})
		}
	})
}
