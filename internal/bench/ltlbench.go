package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ltl"
	"repro/vyrd"
)

// LTLConfig parameterizes the temporal-engine cost table: a recorded
// clean run of one subject scanned through the streaming evaluator at
// each property-count x formula-shape cell, plus an online A/B of the
// refinement-only pipeline against the same pipeline carrying four
// active temporal properties.
type LTLConfig struct {
	Subject      string
	Threads      int
	OpsPerThread int
	Seed         int64
	// Counts is the property-count sweep (properties monitored at once).
	Counts []int
	// Reps replays the recorded log this many times per cell and keeps
	// the best rate (steady-state cost, not first-run noise).
	Reps int
}

// DefaultLTLConfig sizes the run long enough that per-entry progression
// cost dominates setup.
func DefaultLTLConfig() LTLConfig {
	return LTLConfig{
		Subject:      "Multiset-Array",
		Threads:      4,
		OpsPerThread: 2000,
		Seed:         1,
		Counts:       []int{1, 2, 4, 8},
		Reps:         3,
	}
}

// LTLRow is one offline-sweep cell: entries/sec through the streaming
// evaluator with Props properties of the given shape armed at once.
type LTLRow struct {
	Shape         string // "shallow" (depth-2) or "deep" (depth-6)
	Props         int
	Entries       int64
	Elapsed       time.Duration
	EntriesPerSec float64
	// Inconclusive/Satisfied record the verdict mix, pinning that the
	// sweep props stay armed for the whole log instead of deciding early
	// (a decided monitor costs nothing and would flatter the rate).
	Satisfied    int64
	Inconclusive int64
}

// LTLOnlineRow is one online A/B leg: the live pipeline's end-to-end
// entries/sec with the given engine riding the wal cursor.
type LTLOnlineRow struct {
	Engine        string
	Entries       int64
	Elapsed       time.Duration
	EntriesPerSec float64
	// Ratio is this leg's rate over the refinement-only baseline (the
	// baseline row reports 1).
	Ratio float64
}

// sweepProps builds n distinct properties of the requested shape. The
// shallow shape is a depth-2 safety formula (one G over one atom); the
// deep shape nests X/U/| under G to depth 6, the cost profile of the
// built-in library's response properties. Both stay undecided on clean
// logs so every entry pays full progression.
func sweepProps(n int, shape string) []string {
	props := make([]string, n)
	for i := range props {
		tid := i%3 + 1
		if shape == "shallow" {
			props[i] = fmt.Sprintf("shallow-%d: G !{kind=call, tid=%d, method=never-%d}", i, tid, i)
		} else {
			props[i] = fmt.Sprintf(
				"deep-%d: G (!{kind=call, tid=%d} | X (!{kind=return, tid=%d} U ({kind=return, tid=%d} | {kind=commit, tid=%d})))",
				i, tid, tid, tid, tid)
		}
	}
	return props
}

// LTLTable records one clean run and scans it through the streaming
// evaluator at every cell of the props x shape grid.
func LTLTable(cfg LTLConfig) ([]LTLRow, error) {
	s, ok := SubjectByName(cfg.Subject)
	if !ok {
		return nil, fmt.Errorf("unknown subject %q", cfg.Subject)
	}
	res := harness.Run(s.Correct, baseConfig(cfg.Threads, cfg.OpsPerThread, cfg.Seed, vyrd.LevelView))
	entries := res.Log.Snapshot()

	var rows []LTLRow
	for _, shape := range []string{"shallow", "deep"} {
		for _, n := range cfg.Counts {
			set := ltl.NewSet()
			for _, src := range sweepProps(n, shape) {
				if err := set.AddSource(src); err != nil {
					return nil, fmt.Errorf("sweep prop: %w", err)
				}
			}
			var best time.Duration
			var rep *core.Report
			for r := 0; r < cfg.Reps; r++ {
				start := time.Now()
				rep = ltl.CheckEntries(set, entries)
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
			}
			if rep.PropsViolated != 0 {
				return nil, fmt.Errorf("%s x%d: sweep prop violated on a clean run: %s", shape, n, rep)
			}
			rows = append(rows, LTLRow{
				Shape:         shape,
				Props:         n,
				Entries:       int64(len(entries)),
				Elapsed:       best,
				EntriesPerSec: float64(len(entries)) / best.Seconds(),
				Satisfied:     rep.PropsSatisfied,
				Inconclusive:  rep.PropsInconclusive,
			})
		}
	}
	return rows, nil
}

// LTLOnlineTable is the ISSUE 9 throughput criterion: the online pipeline
// carrying four active temporal properties must hold at least half the
// refinement-only pipeline's entries/sec. Both legs run the same workload
// shape with the checker riding the wal cursor, elapsed measured from
// workload start to verdict.
func LTLOnlineTable(cfg LTLConfig) ([]LTLOnlineRow, error) {
	s, ok := SubjectByName(cfg.Subject)
	if !ok {
		return nil, fmt.Errorf("unknown subject %q", cfg.Subject)
	}
	t := s.Correct

	runLeg := func(engine string) (LTLOnlineRow, error) {
		hcfg := baseConfig(cfg.Threads, cfg.OpsPerThread, cfg.Seed, vyrd.LevelView)
		log := vyrd.NewLog(hcfg.Level)
		var wait func() *core.Report
		switch engine {
		case "refinement":
			w, err := log.StartChecker(t.NewSpec(),
				core.WithMode(core.ModeView), core.WithReplayer(t.NewReplayer()))
			if err != nil {
				return LTLOnlineRow{}, err
			}
			wait = w
		case "ltl-4-props":
			set := ltl.NewSet()
			for _, src := range ltl.CallsReturnProps(harnessTids) {
				if err := set.AddSource(src); err != nil {
					return LTLOnlineRow{}, err
				}
			}
			wait = log.StartEntryChecker(ltl.NewChecker(set))
		default:
			return LTLOnlineRow{}, fmt.Errorf("unknown engine %q", engine)
		}
		start := time.Now()
		harness.RunOnLog(t, hcfg, log)
		rep := wait()
		elapsed := time.Since(start)
		if !rep.Ok() {
			return LTLOnlineRow{}, fmt.Errorf("%s leg flagged a clean run: %s", engine, rep)
		}
		appends := log.Stats().Appends
		return LTLOnlineRow{
			Engine:        engine,
			Entries:       appends,
			Elapsed:       elapsed,
			EntriesPerSec: float64(appends) / elapsed.Seconds(),
		}, nil
	}

	var rows []LTLOnlineRow
	for _, engine := range []string{"refinement", "ltl-4-props"} {
		var best LTLOnlineRow
		for r := 0; r < cfg.Reps; r++ {
			row, err := runLeg(engine)
			if err != nil {
				return nil, err
			}
			if best.Engine == "" || row.EntriesPerSec > best.EntriesPerSec {
				best = row
			}
		}
		rows = append(rows, best)
	}
	base := rows[0].EntriesPerSec
	for i := range rows {
		rows[i].Ratio = rows[i].EntriesPerSec / base
	}
	return rows, nil
}

// WriteLTLTable renders the offline sweep.
func WriteLTLTable(w io.Writer, cfg LTLConfig, rows []LTLRow) {
	fmt.Fprintf(w, "Temporal engine: streaming LTL3 scan of a recorded %s run (best of %d reps)\n",
		cfg.Subject, cfg.Reps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Shape\tProps\tEntries\tElapsed\tEntries/sec\tSatisfied\tInconclusive")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.0f\t%d\t%d\n",
			r.Shape, r.Props, r.Entries, r.Elapsed.Round(time.Microsecond),
			r.EntriesPerSec, r.Satisfied, r.Inconclusive)
	}
	tw.Flush()
}

// WriteLTLOnlineTable renders the online A/B.
func WriteLTLOnlineTable(w io.Writer, rows []LTLOnlineRow) {
	fmt.Fprintln(w, "Online pipeline A/B: refinement-only vs four active temporal properties")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Engine\tEntries\tElapsed\tEntries/sec\tvs refinement")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%.2fx\n",
			r.Engine, r.Entries, r.Elapsed.Round(time.Millisecond), r.EntriesPerSec, r.Ratio)
	}
	tw.Flush()
}
