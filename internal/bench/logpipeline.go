package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/msvector"
	"repro/internal/multiset"
	"repro/vyrd"
)

// LogPipelineConfig parameterizes the log-pipeline stress report: a long
// online checking run against correct subjects with consumed-prefix
// truncation and a bounded retention window, reporting the log's pipeline
// counters (wal.Stats) instead of detection times.
type LogPipelineConfig struct {
	Threads      int
	OpsPerThread int
	// Window bounds the entries retained ahead of the verification thread;
	// appenders block past it (the O(window) memory mode).
	Window int
	// SegmentSize is the log's storage chunk; kept small relative to Window
	// so truncation has segment boundaries to release.
	SegmentSize int
	Seed        int64
}

// DefaultLogPipelineConfig sizes the run long enough that truncation
// releases storage many times over.
func DefaultLogPipelineConfig() LogPipelineConfig {
	return LogPipelineConfig{
		Threads:      4,
		OpsPerThread: 4000,
		Window:       1 << 12,
		SegmentSize:  256,
		Seed:         1,
	}
}

// LogPipelineRow is one subject's outcome. Report and Stats serialize
// through the shared machine-readable shapes (core.Summary, the
// JSON-tagged wal.Stats), so a -json snapshot row and a vyrdd /metrics
// session parse identically.
type LogPipelineRow struct {
	Name    string
	Methods int64
	Elapsed time.Duration
	Report  core.Summary
	Stats   vyrd.LogStats
}

// LogPipeline runs correct subjects with view-level online checking over a
// truncating, window-bounded log and collects the pipeline counters.
func LogPipeline(cfg LogPipelineConfig) []LogPipelineRow {
	targets := []harness.Target{
		msvector.Target(msvector.BugNone),
		multiset.Target(64, multiset.BugNone),
	}
	rows := make([]LogPipelineRow, 0, len(targets))
	for _, t := range targets {
		hcfg := baseConfig(cfg.Threads, cfg.OpsPerThread, cfg.Seed, vyrd.LevelView)
		hcfg.LogOptions = vyrd.LogOptions{SegmentSize: cfg.SegmentSize, Window: cfg.Window}
		log := vyrd.NewLogWith(hcfg.Level, hcfg.LogOptions)
		wait, err := log.StartChecker(t.NewSpec(),
			core.WithMode(core.ModeView), core.WithReplayer(t.NewReplayer()))
		if err != nil {
			panic("bench: " + err.Error())
		}
		res := harness.RunOnLog(t, hcfg, log)
		rep := wait()
		rows = append(rows, LogPipelineRow{
			Name:    t.Name,
			Methods: res.Methods,
			Elapsed: res.Elapsed,
			Report:  rep.Summary(),
			Stats:   log.Stats(),
		})
	}
	return rows
}

// WriteLogPipeline renders the log-pipeline report.
func WriteLogPipeline(w io.Writer, cfg LogPipelineConfig, rows []LogPipelineRow) {
	fmt.Fprintf(w, "Log pipeline: online view checking, truncation window %d entries (segments of %d)\n",
		cfg.Window, cfg.SegmentSize)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Subject\tMethods\tEntries\tElapsed\tCheck\tPeakRetained\tTruncated\tBlockedWaits\tMaxLag")
	for _, r := range rows {
		check := "ok"
		if !r.Report.Ok {
			check = "VIOLATION"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\t%dseg\t%d\t%d\n",
			r.Name, r.Methods, r.Stats.Appends, r.Elapsed.Round(time.Millisecond),
			check, r.Stats.PeakRetainedEntries, r.Stats.TruncatedSegments,
			r.Stats.BlockedWaits, r.Stats.MaxVerifierLag)
	}
	tw.Flush()
	for _, r := range rows {
		fmt.Fprintf(w, "  %s: %s\n", r.Name, r.Stats)
	}
}
