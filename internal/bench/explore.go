package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/explore"
	"repro/internal/sched"
)

// ExploreSpec returns the base schedule-exploration spec for a subject:
// the harness shape (threads/ops/pool) and PCT parameters (d, k) that
// vyrdx, the exploration bench rows, and the CI smoke all share, so a
// repro string printed by one replays under the others. K is sized to the
// observed schedule lengths of each shape (a few probe yields per op per
// thread, plus daemon passes).
func ExploreSpec(subject string) sched.Spec {
	sp := sched.Spec{Subject: subject, Threads: 3, Ops: 8, KeyPool: 4, D: 3, K: 300}
	switch subject {
	case "Multiset-TornPair":
		sp.K = 200 // no daemon: schedules are shorter
	case "Cache-TornUpdate":
		// Fewer, fatter ops: each Write copies a 32-byte buffer with
		// yields inside, so schedules are long per op.
		sp.Ops, sp.KeyPool = 6, 6
	case "TreiberStack-PublishRace":
		// Lock-free: a handful of ops suffices — the publish window is one
		// step wide, so depth matters less than ordering, and the shorter
		// trace keeps the first-level race frontier small.
		sp.Ops = 4
	case "Seqlock-TornRead":
		// Spin-wait retries stretch schedules; keep ops low and the step
		// cap generous enough for waited-out write windows.
		sp.Ops, sp.K = 6, 400
	case "Ledger-LockPair":
		// The inversion needs a Deposit parked in its one-yield hint
		// window while another thread runs a whole Transfer; short
		// schedules with frequent transfers reach it quickly.
		sp.Ops, sp.K = 10, 200
	}
	return sp
}

// ExploreRow is one subject x strategy schedule-exploration summary: the
// budget, where the first violation was found (0 = not found), the
// exploration throughput and class coverage, and what the shrinker did to
// the violating schedule.
type ExploreRow struct {
	Subject         string
	BugName         string
	Strategy        string  // "pct" or "dpor"
	Budget          int     // schedule budget given to exploration
	FoundAt         int     // 1-based schedule index of first violation; 0 = none
	Violation       string  // kind of the first violation
	SchedulesPerSec float64 `json:"SchedulesPerSec"`
	// Classes counts distinct Mazurkiewicz equivalence classes among the
	// schedules run before stopping: schedules-per-class is the dedup
	// overhead of a strategy (PCT re-runs equivalent schedules; DPOR aims
	// for one schedule per class).
	Classes int
	// Pruned counts sleep-set-pruned schedules (DPOR only).
	Pruned int
	// Exhausted is true when DPOR emptied its frontier within the budget.
	Exhausted   bool  `json:",omitempty"`
	StepsBefore int64 // violating schedule length before shrinking
	StepsAfter  int64 // and after
	Repro       string
}

// ExploreStrategies are the search strategies the explore table compares.
var ExploreStrategies = []string{"pct", sched.StrategyDPOR}

// ExploreTable runs schedule exploration over every planted-bug subject —
// the lock-based exploration set plus the weak-memory atomics set — under
// both strategies with the given budget, shrinking each violating schedule.
// Rows come out grouped by subject, PCT before DPOR, so the per-subject A/B
// reads top-to-bottom.
func ExploreTable(budget int) ([]ExploreRow, error) {
	var rows []ExploreRow
	subjects := append(ExplorationSubjects(), WeakMemorySubjects()...)
	for _, s := range subjects {
		for _, strat := range ExploreStrategies {
			base := ExploreSpec(s.Name)
			var found *explore.Found
			var st explore.Stats
			var err error
			if strat == sched.StrategyDPOR {
				found, st, err = explore.ExploreDPOR(s.Buggy, base, budget)
			} else {
				found, st, err = explore.Explore(s.Buggy, base, budget)
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Name, strat, err)
			}
			row := ExploreRow{
				Subject:         s.Name,
				BugName:         s.BugName,
				Strategy:        strat,
				Budget:          budget,
				SchedulesPerSec: st.SchedulesPerSec(),
				Classes:         st.Classes,
				Pruned:          st.Pruned,
				Exhausted:       st.Exhausted,
			}
			if found != nil {
				row.FoundAt = found.SchedulesTried
				row.Violation = found.Run.FirstKind().String()
				min, shr, err := explore.ShrinkRun(s.Buggy, found.Run)
				if err != nil {
					return nil, fmt.Errorf("%s/%s: shrink: %w", s.Name, strat, err)
				}
				row.StepsBefore = shr.StepsBefore
				row.StepsAfter = shr.StepsAfter
				row.Repro = min.Spec.Repro()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteExploreTable renders the exploration rows.
func WriteExploreTable(w io.Writer, rows []ExploreRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Subject\tBug\tStrategy\tFound at\tClasses\tSched/s\tShrink (steps)\tViolation")
	for _, r := range rows {
		found := "not found"
		shrink := "-"
		if r.FoundAt > 0 {
			found = fmt.Sprintf("schedule %d/%d", r.FoundAt, r.Budget)
			shrink = fmt.Sprintf("%d -> %d", r.StepsBefore, r.StepsAfter)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%.0f\t%s\t%s\n",
			r.Subject, r.BugName, r.Strategy, found, r.Classes, r.SchedulesPerSec, shrink, r.Violation)
	}
	tw.Flush()
	for _, r := range rows {
		if r.Repro != "" {
			fmt.Fprintf(w, "repro %s (%s): %s\n", r.Subject, r.Strategy, r.Repro)
		}
	}
}
