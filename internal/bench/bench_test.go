package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/racecheck"
)

// The bench package is exercised at full scale by cmd/vyrdbench; these
// tests validate the machinery at miniature scale.

func TestSubjectsComplete(t *testing.T) {
	subjects := Subjects()
	if len(subjects) != 6 {
		t.Fatalf("expected the 6 Table 1 subjects, got %d", len(subjects))
	}
	for _, s := range subjects {
		if s.Correct.New == nil || s.Buggy.New == nil || s.Correct.NewSpec == nil || s.Correct.NewReplayer == nil {
			t.Fatalf("subject %s incompletely wired", s.Name)
		}
		if _, ok := SubjectByName(s.Name); !ok {
			t.Fatalf("SubjectByName misses %s", s.Name)
		}
	}
	if _, ok := SubjectByName("nope"); ok {
		t.Fatal("SubjectByName invented a subject")
	}
}

func TestTable1SingleCellRuns(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	s, _ := SubjectByName("Multiset-Vector")
	row := table1Cell(s, 4, Table1Config{Reps: 2, OpsPerThread: 150, Seed: 1})
	if row.Subject != "Multiset-Vector" || row.Threads != 4 {
		t.Fatalf("row metadata: %+v", row)
	}
	if row.ViewAvg == 0 && row.ViewMiss == row.Reps {
		t.Log("bug did not manifest at this tiny scale; acceptable for the sanity test")
	}
	if row.CPURatio <= 0 {
		t.Fatalf("CPU ratio not measured: %+v", row)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, []Table1Row{row})
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("rendering: %s", buf.String())
	}
}

func TestTable2Runs(t *testing.T) {
	rows := Table2(Table2Config{Threads: 2, OpsPerThread: 60, Reps: 1, Seed: 1})
	if len(rows) != 5 {
		t.Fatalf("expected 5 Table 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.ProgAlone <= 0 {
			t.Fatalf("row %s has no baseline time", r.Subject)
		}
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Overhead of logging") {
		t.Fatalf("rendering: %s", buf.String())
	}
}

func TestTable3Runs(t *testing.T) {
	rows := Table3(Table3Config{Scale: 1, Reps: 1, Seed: 1})
	if len(rows) != 4 {
		t.Fatalf("expected 4 Table 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.ProgAlone <= 0 || r.ProgLogging <= 0 || r.ProgPlusVyrd <= 0 || r.VyrdOffline <= 0 {
			t.Fatalf("row %s has an unmeasured stage: %+v", r.Subject, r)
		}
	}
	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Running time breakdown") {
		t.Fatalf("rendering: %s", buf.String())
	}
}
