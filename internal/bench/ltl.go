package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/ltl"
)

// harnessTids is the application thread-id range the harness assigns
// (probes are numbered from 1; every bench run uses at most 4 application
// threads). Built-in properties are instantiated per tid, so the list must
// cover the tids that actually appear; extra tids cost one vacuous monitor
// each. Maintenance-worker tids are deliberately not covered: worker
// activity (e.g. Compress) follows a different call discipline.
var harnessTids = []int{1, 2, 3, 4}

// ledgerLocks enumerates the ledger's lock identifiers.
func ledgerLocks() []int {
	locks := make([]int, ledger.NumAccounts)
	for i := range locks {
		locks[i] = i
	}
	return locks
}

// BuiltinProps returns the built-in temporal property sources for a
// registered subject: every subject gets the call-eventually-returns
// liveness set; subjects whose mutator inventory is known additionally get
// the commit-before-return discipline, and the ledger gets its lock-order
// and seal-latch properties. The clean-subject suite pins that none of
// these is ever violated on a correct run.
func BuiltinProps(subject string) []string {
	props := ltl.CallsReturnProps(harnessTids)
	switch subject {
	case "Ledger-LockPair":
		props = append(props,
			ltl.LockReversalProp("no-lock-reversal", ledger.LockAcqOp, ledger.LockRelOp,
				ledgerLocks(), harnessTids))
		props = append(props,
			ltl.CommitBeforeReturnProps([]string{"Deposit", "Transfer", "Seal"}, harnessTids)...)
		props = append(props,
			ltl.SealedKeyProps(ledger.SetOp, ledger.SealOp, ledgerLocks())...)
	case "Multiset-Array", "Multiset-TornPair":
		props = append(props,
			ltl.CommitBeforeReturnProps([]string{"Insert", "InsertPair", "Delete"}, harnessTids)...)
	}
	return props
}

// NewTemporalSet parses the property sources for a subject: the caller's
// own properties when given, the subject's built-ins otherwise.
func NewTemporalSet(subject string, props []string) (*ltl.Set, error) {
	if len(props) == 0 {
		props = BuiltinProps(subject)
	}
	set := ltl.NewSet()
	for _, src := range props {
		if err := set.AddSource(src); err != nil {
			return nil, fmt.Errorf("subject %s: %w", subject, err)
		}
	}
	if len(set.Props()) == 0 {
		return nil, fmt.Errorf("subject %s: empty property set", subject)
	}
	return set, nil
}

// NewTemporal builds the remote.SpecFactory hook for "ltl" sessions
// against the named subject.
func NewTemporal(subject string) func(props []string, failFast bool) (core.EntryChecker, error) {
	return func(props []string, failFast bool) (core.EntryChecker, error) {
		set, err := NewTemporalSet(subject, props)
		if err != nil {
			return nil, err
		}
		return ltl.NewChecker(set, ltl.WithFailFast(failFast)), nil
	}
}
