package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/ltl"
	"repro/internal/remote"
	"repro/vyrd"
)

// temporalCleanSubjects is every subject the registry serves, i.e. every
// name a vyrdd client can open an "ltl" session against.
func temporalCleanSubjects() []bench.Subject {
	all := append(bench.AllSubjects(), bench.ExplorationSubjects()...)
	all = append(all, bench.TemporalSubjects()...)
	all = append(all, bench.LinearizeOnlySubjects()...)
	return all
}

// remoteTemporal ships a recorded log to the server as an "ltl" session
// (built-in property set) and returns the remote verdict report.
func remoteTemporal(t *testing.T, addr, subject string, entries []vyrd.Entry) *core.Report {
	t.Helper()
	cl, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: subject, Mode: "ltl"},
	})
	if err != nil {
		t.Fatalf("%s: NewClient: %v", subject, err)
	}
	for _, e := range entries {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("%s: WriteEntry #%d: %v", subject, e.Seq, err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("%s: Flush: %v", subject, err)
	}
	v := cl.Verdict()
	if v == nil {
		t.Fatalf("%s: no remote verdict", subject)
	}
	return v.Report()
}

func assertNoTemporalViolation(t *testing.T, subject, leg string, rep *core.Report) {
	t.Helper()
	if rep == nil {
		t.Fatalf("%s/%s: no report", subject, leg)
	}
	if rep.Mode != core.ModeLTL {
		t.Fatalf("%s/%s: mode %v, want ltl", subject, leg, rep.Mode)
	}
	if rep.PropsViolated != 0 || rep.TotalViolations != 0 {
		t.Fatalf("%s/%s: built-in property refuted on a correct run: %s", subject, leg, rep)
	}
	total := rep.PropsSatisfied + rep.PropsViolated + rep.PropsInconclusive
	if total == 0 {
		t.Fatalf("%s/%s: no properties monitored", subject, leg)
	}
}

// TestTemporalCleanSubjects pins the built-in property library sound on
// correct implementations: for every registry subject, a clean run reports
// every property satisfied or inconclusive — never violated — through all
// three deployment surfaces (offline over recorded entries, online through
// the wal pipeline, and a vyrdd "ltl" session).
func TestTemporalCleanSubjects(t *testing.T) {
	addr := startDiffServer(t)
	for _, s := range temporalCleanSubjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			set, err := bench.NewTemporalSet(s.Name, nil)
			if err != nil {
				t.Fatalf("built-in props: %v", err)
			}

			// Offline over a recorded clean run.
			entries := bench.CleanRun(s, 7)
			assertNoTemporalViolation(t, s.Name, "offline", ltl.CheckEntries(set, entries))

			// Online: the checker rides the wal cursor while the workload
			// runs.
			set2, _ := bench.NewTemporalSet(s.Name, nil)
			log := vyrd.NewLog(explore.Level(s.Correct))
			wait := log.StartEntryChecker(ltl.NewChecker(set2))
			harness.RunOnLog(s.Correct, harness.Config{
				Threads: 3, OpsPerThread: 24, KeyPool: 6, Shrink: true,
				Seed: 11, Level: explore.Level(s.Correct),
			}, log)
			assertNoTemporalViolation(t, s.Name, "online", wait())

			// Remote: a vyrdd "ltl" session over the same recorded run.
			assertNoTemporalViolation(t, s.Name, "vyrdd", remoteTemporal(t, addr, s.Name, entries))
		})
	}
}

// TestTemporalPropsOverride pins the handshake property override: a client
// shipping its own property set gets verdicts for exactly those properties,
// and an unparsable set rejects the handshake.
func TestTemporalPropsOverride(t *testing.T) {
	addr := startDiffServer(t)
	s, _ := bench.SubjectByName("Ledger-LockPair")
	entries := bench.CleanRun(s, 3)

	cl, err := remote.NewClient(remote.ClientOptions{
		Addr: addr,
		Hello: remote.Hello{
			Spec: s.Name, Mode: "ltl",
			Props: []string{"ever-commits: F {kind=commit}"},
		},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	for _, e := range entries {
		if err := cl.WriteEntry(e); err != nil {
			t.Fatalf("WriteEntry: %v", err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rep := cl.Verdict().Report()
	if rep.PropsSatisfied != 1 || rep.PropsViolated+rep.PropsInconclusive != 0 {
		t.Fatalf("override session: %s", rep)
	}

	// A malformed property set must reject the handshake; rejects are
	// terminal and surface at the next flush.
	cl2, err := remote.NewClient(remote.ClientOptions{
		Addr:  addr,
		Hello: remote.Hello{Spec: s.Name, Mode: "ltl", Props: []string{"x: ("}},
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := cl2.Flush(); err == nil {
		t.Fatal("malformed props: session accepted")
	}
}
