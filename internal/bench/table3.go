package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/vyrd"
)

// Table3Row is one row of the paper's Table 3: the running-time breakdown
// of the program alone, the program with logging, the program with logging
// plus the online VYRD verification thread, and offline VYRD checking of
// the recorded trace.
type Table3Row struct {
	Subject string
	Threads int
	Methods int // per thread, as the paper reports "#Thrd/#Mthd"

	ProgAlone    time.Duration
	ProgLogging  time.Duration
	ProgPlusVyrd time.Duration // program + logging + online view checking
	VyrdOffline  time.Duration // offline view checking of the same trace
}

// Table3Config parameterizes the experiment. Scale multiplies the paper's
// per-thread method counts (its absolute counts finish too quickly on a
// modern machine to measure; scale >= 1 keeps the thread/method ratios).
type Table3Config struct {
	Scale int
	Reps  int
	Seed  int64
}

// DefaultTable3Config uses the paper's exact thread/method counts scaled
// 10x.
func DefaultTable3Config() Table3Config {
	return Table3Config{Scale: 10, Reps: 3, Seed: 1}
}

// table3Cells reproduces the paper's "#Thrd/#Mthd" configurations.
func table3Cells() []struct {
	Subject string
	Threads int
	Methods int
} {
	return []struct {
		Subject string
		Threads int
		Methods int
	}{
		{"java.util.Vector", 20, 200},
		{"java.util.StringBuffer", 10, 30},
		{"BLinkTree", 10, 600},
		{"Cache", 10, 500},
	}
}

// Table3 runs the breakdown for every configuration of the paper's Table 3.
func Table3(cfg Table3Config) []Table3Row {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	var rows []Table3Row
	for _, cell := range table3Cells() {
		s, ok := SubjectByName(cell.Subject)
		if !ok {
			continue
		}
		rows = append(rows, table3Row(s, cell.Threads, cell.Methods*cfg.Scale, cfg))
	}
	return rows
}

func table3Row(s Subject, threads, ops int, cfg Table3Config) Table3Row {
	row := Table3Row{Subject: s.Name, Threads: threads, Methods: ops}

	medianOf := func(f func(rep int) time.Duration) time.Duration {
		durs := make([]time.Duration, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			durs = append(durs, f(rep))
		}
		return median(durs)
	}

	// Program alone: logging off.
	row.ProgAlone = medianOf(func(rep int) time.Duration {
		res := harness.Run(s.Correct, baseConfig(threads, ops, cfg.Seed+int64(rep), vyrd.LevelOff))
		return res.Elapsed
	})

	// Program + logging (view level, as offline checking will need it).
	var recorded harness.Result
	row.ProgLogging = medianOf(func(rep int) time.Duration {
		res := harness.Run(s.Correct, baseConfig(threads, ops, cfg.Seed+int64(rep), vyrd.LevelView))
		recorded = res
		return res.Elapsed
	})

	// Program + logging + VYRD online: the verification thread consumes the
	// log concurrently; measured end to end (workload plus checker drain).
	row.ProgPlusVyrd = medianOf(func(rep int) time.Duration {
		log := vyrd.NewLog(vyrd.LevelView)
		wait, err := log.StartChecker(s.Correct.NewSpec(),
			vyrd.WithMode(core.ModeView), vyrd.WithReplayer(s.Correct.NewReplayer()))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		harness.RunOnLog(s.Correct, baseConfig(threads, ops, cfg.Seed+int64(rep), vyrd.LevelView), log)
		rep2 := wait()
		elapsed := time.Since(start)
		if !rep2.Ok() {
			panic(fmt.Sprintf("table 3: unexpected violations in correct %s:\n%s", s.Name, rep2))
		}
		return elapsed
	})

	// VYRD alone (offline): check the recorded trace.
	entries := recorded.Log.Snapshot()
	row.VyrdOffline = medianOf(func(rep int) time.Duration {
		start := time.Now()
		r, err := core.CheckEntries(entries, s.Correct.NewSpec(),
			core.WithMode(core.ModeView), core.WithReplayer(s.Correct.NewReplayer()))
		if err != nil {
			panic(err)
		}
		if !r.Ok() {
			panic(fmt.Sprintf("table 3: unexpected violations in correct %s:\n%s", s.Name, r))
		}
		return time.Since(start)
	})
	return row
}

// WriteTable3 renders the rows in the paper's layout.
func WriteTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 3. Running time breakdown")
	fmt.Fprintln(tw, "Program\t#Thrd/#Mthd\tProg. alone\tProg.+logging\tProg.+logging+VYRD\tVYRD alone (off-line)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d/%d\t%v\t%v\t%v\t%v\n", r.Subject, r.Threads, r.Methods,
			r.ProgAlone.Round(time.Microsecond), r.ProgLogging.Round(time.Microsecond),
			r.ProgPlusVyrd.Round(time.Microsecond), r.VyrdOffline.Round(time.Microsecond))
	}
	tw.Flush()
}
