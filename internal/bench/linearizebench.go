package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/spec"
	"repro/vyrd"
)

// LinearizeConfig shapes the linearizability scaling table: synthetic
// java.util.Vector histories with a controlled overlap width, checked by
// the strawman brute-force search, the production engine, and commit-pinned
// I/O refinement over the same log.
type LinearizeConfig struct {
	// Widths lists the overlap widths to measure (concurrently open
	// AddElement executions per history).
	Widths []int
	// BruteBudget bounds the strawman's state exploration; histories it
	// cannot decide within the budget are reported as aborted. This is the
	// table's stand-in for "did not finish": the strawman's state count
	// grows with the number of distinct interleavings (w! for w distinct
	// appends), so past width ~8 no practical budget decides it.
	BruteBudget int64
}

// DefaultLinearizeConfig returns the checked-in table shape: widths 2-32,
// with a strawman budget generous enough to decide width 8 (~10^5 states)
// and hopeless for width 12 and beyond (>10^8 states).
func DefaultLinearizeConfig() LinearizeConfig {
	return LinearizeConfig{
		Widths:      []int{2, 4, 6, 8, 12, 16, 24, 32},
		BruteBudget: 1 << 20,
	}
}

// LinearizeRow is one overlap width's measurement across the three
// checkers. Times are wall-clock for one verdict over the same history.
type LinearizeRow struct {
	Width        int
	Ops          int   // method executions in the history
	BruteStates  int64 // states the strawman explored before deciding or aborting
	BruteNS      int64
	BruteAborted bool // strawman hit its budget; verdict unknown
	EngineStates int64
	EngineNS     int64
	RefinementNS int64 // commit-pinned I/O refinement over the same entries
}

// linearizeHistory records a synthetic Vector history of the given overlap
// width through the real probe pipeline: w AddElement executions open
// before any returns, each committing (for the refinement column; the
// linearizability checkers never look at commits) and returning, then a
// quiescent Size observer pinning the final length. Distinct elements make
// every interleaving a distinct specification state — the strawman's
// worst case and exactly the history family of the paper's Section 2
// scaling argument.
func linearizeHistory(width int) []vyrd.Entry {
	lg := vyrd.NewLog(vyrd.LevelIO)
	invs := make([]*vyrd.Invocation, width)
	for i := 0; i < width; i++ {
		invs[i] = lg.NewProbe().Call("AddElement", i)
	}
	for i := 0; i < width; i++ {
		invs[i].Commit("added")
		invs[i].Return(nil)
	}
	p := lg.NewProbe()
	inv := p.Call("Size")
	inv.Return(width)
	lg.Close()
	return lg.Snapshot()
}

// LinearizeTable measures the three checkers over one synthetic history per
// width. The histories are deterministic, so rows are reproducible
// modulo machine speed.
func LinearizeTable(cfg LinearizeConfig) ([]LinearizeRow, error) {
	var rows []LinearizeRow
	for _, w := range cfg.Widths {
		entries := linearizeHistory(w)
		row := LinearizeRow{Width: w, Ops: w + 1}

		start := time.Now()
		br := linearize.CheckBruteTrace(entries, spec.NewVector(), linearize.NewVectorModel(), cfg.BruteBudget)
		row.BruteNS = time.Since(start).Nanoseconds()
		row.BruteStates = br.StatesExplored
		row.BruteAborted = br.Aborted
		if !br.Aborted && !br.Linearizable {
			return nil, fmt.Errorf("bench: strawman refuted a correct width-%d history", w)
		}

		start = time.Now()
		en := linearize.CheckTrace(entries, linearize.VectorSpec(), linearize.Options{})
		row.EngineNS = time.Since(start).Nanoseconds()
		row.EngineStates = en.StatesExplored
		if en.Aborted || !en.Linearizable {
			return nil, fmt.Errorf("bench: engine failed a correct width-%d history: %s", w, en)
		}

		start = time.Now()
		ref, err := core.CheckEntries(entries, spec.NewVector(), core.WithMode(core.ModeIO))
		row.RefinementNS = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("bench: refinement at width %d: %w", w, err)
		}
		if !ref.Ok() {
			return nil, fmt.Errorf("bench: refinement rejected a correct width-%d history:\n%s", w, ref)
		}

		rows = append(rows, row)
	}
	return rows, nil
}

// LinearizeMemoRow is one session-count point of the segment memo cache
// measurement: the same recorded FixedDomain history streamed repeatedly
// (the fleet shape — many sessions replaying one producer's log), cold
// first, then warm. The hit rate and the warm/cold time ratio quantify
// what the persistent cache buys a multi-session box.
type LinearizeMemoRow struct {
	Sessions int // repeated streams of the identical history
	Ops      int
	ColdNS   int64 // first stream: populates the cache
	WarmNS   int64 // mean of the remaining streams
	Lookups  int64
	Hits     int64
	HitRate  float64
	Entries  int // distinct cached searches after the run
}

// linearizeMemoHistory records a repetitive multiset history through the
// real probe pipeline: rounds of width overlapping Inserts on a small key
// domain, each closed by a LookUp observer. Quiescent cuts after every
// round make it interval-checkable, and the small domain makes the same
// (frontier state, segment) pairs recur — the workload the segment memo
// cache exists for. (The Vector histories of the main table never touch
// the cache: order-sensitive specs defer to one engine search at Finish.)
func linearizeMemoHistory(rounds, width int) []vyrd.Entry {
	lg := vyrd.NewLog(vyrd.LevelIO)
	for r := 0; r < rounds; r++ {
		k := r % 3
		invs := make([]*vyrd.Invocation, width)
		for i := 0; i < width; i++ {
			invs[i] = lg.NewProbe().Call("Insert", k)
		}
		for i := 0; i < width; i++ {
			invs[i].Commit("ins")
			invs[i].Return(true)
		}
		look := lg.NewProbe().Call("LookUp", k)
		look.Return(true)
		del := lg.NewProbe().Call("Delete", k)
		del.Return(true)
	}
	lg.Close()
	return lg.Snapshot()
}

// LinearizeMemoTable measures the segment memo cache across repeated
// streams of one history, as fleet sessions replay it.
func LinearizeMemoTable(sessions []int) ([]LinearizeMemoRow, error) {
	entries := linearizeMemoHistory(64, 4)
	sp := linearize.MultisetSpec()
	var rows []LinearizeMemoRow
	for _, n := range sessions {
		if n < 2 {
			return nil, fmt.Errorf("bench: memo row needs at least 2 sessions (cold + warm)")
		}
		linearize.ResetSegmentCache()
		start := time.Now()
		rep := linearize.CheckEntries(entries, sp, linearize.Options{})
		coldNS := time.Since(start).Nanoseconds()
		if !rep.Ok() {
			return nil, fmt.Errorf("bench: memo history flagged cold: %s", rep)
		}
		start = time.Now()
		for i := 1; i < n; i++ {
			rep := linearize.CheckEntries(entries, sp, linearize.Options{})
			if !rep.Ok() {
				return nil, fmt.Errorf("bench: memo history flagged warm (session %d): %s", i, rep)
			}
		}
		warmNS := time.Since(start).Nanoseconds() / int64(n-1)
		st := linearize.SegmentCacheStats()
		row := LinearizeMemoRow{
			Sessions: n,
			Ops:      int(rep.MethodsCompleted),
			ColdNS:   coldNS,
			WarmNS:   warmNS,
			Lookups:  st.Lookups,
			Hits:     st.Hits,
			Entries:  st.Entries,
		}
		if st.Lookups > 0 {
			row.HitRate = float64(st.Hits) / float64(st.Lookups)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteLinearizeMemoTable renders the memo-cache rows.
func WriteLinearizeMemoTable(w io.Writer, rows []LinearizeMemoRow) {
	fmt.Fprintln(w, "Segment memo cache: identical multiset history streamed by N sessions (cold populates, warm hits)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sessions\tOps\tCold\tWarm/avg\tLookups\tHits\tHit rate\tCached")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\t%d\t%d\t%.1f%%\t%d\n",
			r.Sessions, r.Ops,
			time.Duration(r.ColdNS).Round(time.Microsecond),
			time.Duration(r.WarmNS).Round(time.Microsecond),
			r.Lookups, r.Hits, 100*r.HitRate, r.Entries)
	}
	tw.Flush()
}

// LinearizeParallelRow is one worker-pool width's measurement over a fixed
// partitioned history: the same component searches fanned over Parallel
// workers. Serial (width 1) is the baseline the speedup column divides by.
type LinearizeParallelRow struct {
	Workers    int
	Components int
	Ops        int
	States     int64
	NS         int64
}

// linearizeParallelHistory records a partitioned multiset history through
// the real probe pipeline: keys independent element families, each with
// rounds of width overlapping Inserts closed by a LookUp observer — many
// components of equal, nontrivial search cost, the shape the per-component
// worker pool is built for.
func linearizeParallelHistory(keys, width, rounds int) []vyrd.Entry {
	lg := vyrd.NewLog(vyrd.LevelIO)
	for k := 0; k < keys; k++ {
		for r := 0; r < rounds; r++ {
			invs := make([]*vyrd.Invocation, width)
			for i := 0; i < width; i++ {
				invs[i] = lg.NewProbe().Call("Insert", k)
			}
			for i := 0; i < width; i++ {
				invs[i].Commit("ins")
				invs[i].Return(true)
			}
			look := lg.NewProbe().Call("LookUp", k)
			look.Return(true)
		}
	}
	lg.Close()
	return lg.Snapshot()
}

// LinearizeParallelTable measures the component fan-out at each worker-pool
// width over one deterministic history. The verdict, witness and state
// count are pinned identical across widths by the parallel_test suite; this
// table records the wall-clock effect alone.
func LinearizeParallelTable(widths []int) ([]LinearizeParallelRow, error) {
	entries := linearizeParallelHistory(32, 6, 24)
	sp := linearize.MultisetSpec()
	ops := linearize.Extract(entries, sp.IsMutator)
	var rows []LinearizeParallelRow
	for _, workers := range widths {
		start := time.Now()
		res := linearize.Check(ops, sp, linearize.Options{MaxStates: 1 << 24, Parallel: workers})
		ns := time.Since(start).Nanoseconds()
		if res.Aborted || !res.Linearizable {
			return nil, fmt.Errorf("bench: parallel linearize (%d workers) failed a correct history: %s", workers, res.String())
		}
		rows = append(rows, LinearizeParallelRow{
			Workers:    workers,
			Components: res.Components,
			Ops:        len(ops),
			States:     res.StatesExplored,
			NS:         ns,
		})
	}
	return rows, nil
}

// WriteLinearizeParallelTable renders the worker-width scaling rows.
func WriteLinearizeParallelTable(w io.Writer, prows []LinearizeParallelRow) {
	fmt.Fprintln(w, "Parallel component checking: one partitioned multiset history, worker-pool width sweep")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workers\tComponents\tOps\tStates\tTime\tSpeedup")
	var base float64
	for _, r := range prows {
		if r.Workers <= 1 {
			base = float64(r.NS)
			break
		}
	}
	for _, r := range prows {
		speedup := "-"
		if base > 0 && r.Workers > 1 {
			speedup = fmt.Sprintf("%.2fx", base/float64(r.NS))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\t%s\n",
			r.Workers, r.Components, r.Ops, r.States,
			time.Duration(r.NS).Round(time.Microsecond), speedup)
	}
	tw.Flush()
}

// WriteLinearizeTable renders the scaling rows: the strawman's state count
// explodes with width until it aborts, while the engine and the
// commit-pinned refinement checker stay effectively linear.
func WriteLinearizeTable(w io.Writer, rows []LinearizeRow) {
	fmt.Fprintln(w, "Linearizability checking: strawman vs engine vs refinement (synthetic Vector, w overlapped appends)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Width\tOps\tStrawman states\tStrawman time\tEngine states\tEngine time\tRefinement time")
	for _, r := range rows {
		brute := fmt.Sprintf("%v", time.Duration(r.BruteNS).Round(time.Microsecond))
		if r.BruteAborted {
			brute = fmt.Sprintf("DNF (>%s)", time.Duration(r.BruteNS).Round(time.Microsecond))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%v\t%v\n",
			r.Width, r.Ops, r.BruteStates, brute,
			r.EngineStates, time.Duration(r.EngineNS).Round(time.Microsecond),
			time.Duration(r.RefinementNS).Round(time.Microsecond))
	}
	tw.Flush()
}
