package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/linearize"
	"repro/internal/wal"
	"repro/vyrd"
)

// LinearizeSpec maps a subject name to its linearizability spec family —
// the functional model, observer classification and partition keys the
// engine checks call/return histories against. Every evaluation and
// exploration subject resolves; the composed modular stack does not (its
// log interleaves two vocabularies and is checked per module instead).
func LinearizeSpec(subject string) (*linearize.Spec, error) {
	switch subject {
	case "Multiset-Array", "Multiset-Vector", "Multiset-BinaryTree", "Multiset-TornPair", "Multiset-NoCommit":
		return linearize.MultisetSpec(), nil
	case "java.util.Vector":
		return linearize.VectorSpec(), nil
	case "java.util.StringBuffer":
		return linearize.StringBufferSpec(4), nil
	case "BLinkTree", "BLinkTree-on-Cache", "BLinkTree-DroppedLock":
		return linearize.KVSpec(), nil
	case "Cache", "Cache-TornUpdate":
		return linearize.StoreSpec(), nil
	case "ScanFS":
		return linearize.FSSpec(), nil
	}
	return nil, fmt.Errorf("bench: no linearizability spec for subject %q", subject)
}

// linearizeBudget bounds a differential linearizability search. Real
// harness traces stay far below it; hitting it surfaces as LogErr rather
// than a verdict.
const linearizeBudget = 1 << 24

// NewLinearizer builds the streaming linearizability checker for a
// subject, or nil if the subject has no linearize spec (the shape the
// remote SpecFactory wants).
func NewLinearizer(subject string) func() core.EntryChecker {
	sp, err := LinearizeSpec(subject)
	if err != nil {
		return nil
	}
	return func() core.EntryChecker {
		return linearize.NewChecker(sp, linearize.Options{MaxStates: linearizeBudget})
	}
}

// DifferentialVerdict is both engines' verdicts over one recorded log: the
// refinement checker in the subject's natural mode (view when it has a
// replayer) and the linearizability engine over the same entries.
type DifferentialVerdict struct {
	Subject    string
	Refinement *core.Report
	Linearize  *core.Report
	// Repro carries the controlled-schedule repro string when the log came
	// from exploration, so a divergence is replayable with vyrdx.
	Repro string
}

// Agree reports whether the verdicts match. Soundness only guarantees one
// direction (a linearizability failure implies a refinement failure on the
// same complete log); the differential suite asserts empirical agreement
// in both directions on clean runs and planted-race witnesses.
func (d DifferentialVerdict) Agree() bool {
	return d.Refinement.Ok() == d.Linearize.Ok()
}

// String renders the disagreement shape for test failures: both verdicts
// and the repro string to replay the schedule under vyrdx.
func (d DifferentialVerdict) String() string {
	repro := d.Repro
	if repro == "" {
		repro = "(uncontrolled run; no schedule repro)"
	}
	return fmt.Sprintf("subject %s: refinement ok=%v, linearizability ok=%v\nrepro: %s\nrefinement:\n%s\nlinearizability:\n%s",
		d.Subject, d.Refinement.Ok(), d.Linearize.Ok(), repro, d.Refinement, d.Linearize)
}

// Differential checks one recorded log with both engines offline.
func Differential(subject string, t harness.Target, entries []vyrd.Entry, repro string) (DifferentialVerdict, error) {
	sp, err := LinearizeSpec(subject)
	if err != nil {
		return DifferentialVerdict{}, err
	}
	opts := []core.Option{core.WithMode(explore.Mode(t))}
	if explore.Mode(t) == core.ModeView {
		opts = append(opts, core.WithReplayer(t.NewReplayer()))
	}
	ref, err := core.CheckEntries(entries, t.NewSpec(), opts...)
	if err != nil {
		return DifferentialVerdict{}, err
	}
	lin := linearize.CheckEntries(entries, sp, linearize.Options{MaxStates: linearizeBudget})
	if lin.LogErr != "" {
		return DifferentialVerdict{}, fmt.Errorf("bench: linearize gave up on %s: %s", subject, lin.LogErr)
	}
	return DifferentialVerdict{Subject: subject, Refinement: ref, Linearize: lin, Repro: repro}, nil
}

// DifferentialOnline checks the same log through the online plumbing: the
// entries stream through a windowed wal pipeline into a core.Multi fan-out
// running the refinement checker and the linearizability checker
// concurrently, each on its own goroutine — the deployment shape of
// running both verdict engines against one live execution.
func DifferentialOnline(subject string, t harness.Target, entries []vyrd.Entry, repro string) (DifferentialVerdict, error) {
	return DifferentialOnlineOn(subject, t, entries, repro, wal.Options{Window: 1 << 12})
}

// DifferentialOnlineOn is DifferentialOnline over an explicitly configured
// capture backend — the seam the sharded-vs-global parity suite drives:
// the same entries replayed through a single-counter log and a sharded
// shard group must produce the same verdicts. The replay producer below
// is one goroutine feeding an already-ordered stream, so a sharded
// backend is forced into ticket mode: the recorded order is the causal
// order, and timestamp merge keys could swap entries whose appends land
// in one clock tick on different shards (live capture orders them by the
// subject's own lock handoffs; a replay loop has no such handoffs).
func DifferentialOnlineOn(subject string, t harness.Target, entries []vyrd.Entry, repro string, lopts wal.Options) (DifferentialVerdict, error) {
	if lopts.Shards > 1 {
		lopts.Tickets = true
	}
	sp, err := LinearizeSpec(subject)
	if err != nil {
		return DifferentialVerdict{}, err
	}
	all := func(vyrd.Entry) bool { return true }
	refOpts := []core.Option{core.WithMode(explore.Mode(t))}
	if explore.Mode(t) == core.ModeView {
		refOpts = append(refOpts, core.WithReplayer(t.NewReplayer()))
	}
	m, err := core.NewMulti(
		core.Module{Name: "refinement", Spec: t.NewSpec(), Filter: all, Opts: refOpts},
		core.Module{Name: "linearize", Filter: all, NewChecker: func() (core.EntryChecker, error) {
			return linearize.NewChecker(sp, linearize.Options{MaxStates: linearizeBudget}), nil
		}},
	)
	if err != nil {
		return DifferentialVerdict{}, err
	}
	if lopts.Window <= 0 {
		lopts.Window = 1 << 12
	}
	lg := wal.Open(wal.LevelView, lopts)
	// Register the reader before the producer starts: an unobserved window
	// log is a bounded recent-suffix buffer and may release its prefix.
	cur := lg.Reader()
	go func() {
		for _, e := range entries {
			lg.Append(e)
		}
		lg.Close()
	}()
	reports := m.Run(cur)
	d := DifferentialVerdict{Subject: subject, Repro: repro}
	for _, mr := range reports {
		switch mr.Module {
		case "refinement":
			d.Refinement = mr.Report
		case "linearize":
			d.Linearize = mr.Report
		}
	}
	if d.Refinement == nil || d.Linearize == nil {
		return DifferentialVerdict{}, fmt.Errorf("bench: fan-out lost a module report")
	}
	if d.Linearize.LogErr != "" {
		return DifferentialVerdict{}, fmt.Errorf("bench: linearize gave up on %s: %s", subject, d.Linearize.LogErr)
	}
	return d, nil
}

// CleanRun produces one uncontrolled run of the subject's correct
// implementation at the I/O level, for clean-log differential rows.
func CleanRun(s Subject, seed int64) []vyrd.Entry {
	return CleanRunOn(s, seed, vyrd.LogOptions{})
}

// CleanRunOn is CleanRun over an explicitly configured capture backend —
// with LogOptions.Shards > 1 the harness threads append through
// shard-pinned probes and the returned snapshot is the k-way merged total
// order, the live-capture half of the sharded parity suite.
func CleanRunOn(s Subject, seed int64, lopts vyrd.LogOptions) []vyrd.Entry {
	res := harness.Run(s.Correct, harness.Config{
		Threads:      3,
		OpsPerThread: 24,
		KeyPool:      6,
		Shrink:       true,
		Seed:         seed,
		Level:        explore.Level(s.Correct),
		LogOptions:   lopts,
	})
	return res.Log.Snapshot()
}

// RaceWitness explores the subject's planted race under controlled
// scheduling until refinement flags a schedule, and returns that witness
// log with its repro string. The search is deterministic: same subject,
// same budget, same witness.
func RaceWitness(s Subject, budget int) ([]vyrd.Entry, string, error) {
	found, _, err := explore.Explore(s.Buggy, ExploreSpec(s.Name), budget)
	if err != nil {
		return nil, "", err
	}
	if found == nil {
		return nil, "", fmt.Errorf("bench: no violating schedule for %s in %d tries", s.Name, budget)
	}
	return found.Run.Entries, found.Run.Spec.Repro(), nil
}

// SurfacedRaceWitness explores until a schedule where the planted race has
// reached the call/return surface: refinement rejects it AND the
// linearizability engine rejects it. The earliest refinement witnesses are
// often linearizable histories — the replica or view fingerprint is already
// corrupted while every return value still has an innocent explanation;
// that head start is exactly the paper's Section 2 argument for commit
// annotations. SkippedLinClean counts those, so callers can report the gap.
func SurfacedRaceWitness(s Subject, budget int) (entries []vyrd.Entry, repro string, skippedLinClean int, err error) {
	sp, err := LinearizeSpec(s.Name)
	if err != nil {
		return nil, "", 0, err
	}
	base := ExploreSpec(s.Name)
	for i := 0; i < budget; i++ {
		ssp := base
		ssp.Seed = base.Seed + int64(i)
		ssp.ChangePoints, ssp.Skips = nil, nil
		r, rerr := explore.RunSpec(s.Buggy, ssp)
		if rerr != nil {
			return nil, "", skippedLinClean, rerr
		}
		if r.Sched.FreeRun || !r.Violating() {
			continue
		}
		lin := linearize.CheckEntries(r.Entries, sp, linearize.Options{MaxStates: linearizeBudget})
		if lin.LogErr != "" {
			return nil, "", skippedLinClean, fmt.Errorf("bench: linearize gave up on %s: %s", s.Name, lin.LogErr)
		}
		if lin.Ok() {
			skippedLinClean++
			continue
		}
		return r.Entries, r.Spec.Repro(), skippedLinClean, nil
	}
	return nil, "", skippedLinClean, fmt.Errorf(
		"bench: no surfaced race witness for %s in %d schedules (%d refinement-only witnesses skipped)",
		s.Name, budget, skippedLinClean)
}
