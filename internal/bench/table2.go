package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/harness"
	"repro/vyrd"
)

// Table2Row is one row of the paper's Table 2: the running time of the
// unmodified program (logging off) and the added cost of logging at the
// I/O and view levels, for the correct implementation of each subject.
type Table2Row struct {
	Subject   string
	Threads   int
	Ops       int // per thread
	ProgAlone time.Duration
	IOLog     time.Duration // additional time with I/O-level logging
	ViewLog   time.Duration // additional time with view-level logging
}

// Table2Config parameterizes the experiment.
type Table2Config struct {
	Threads      int
	OpsPerThread int
	Reps         int // medians over this many runs
	Seed         int64
}

// DefaultTable2Config scales the paper's workloads to this machine.
func DefaultTable2Config() Table2Config {
	return Table2Config{Threads: 8, OpsPerThread: 2000, Reps: 5, Seed: 1}
}

// table2Subjects lists the paper's Table 2 rows.
func table2Subjects() []string {
	return []string{"Multiset-Vector", "java.util.Vector", "java.util.StringBuffer", "BLinkTree", "Cache"}
}

// Table2 measures logging overhead per level for every Table 2 subject.
func Table2(cfg Table2Config) []Table2Row {
	var rows []Table2Row
	for _, name := range table2Subjects() {
		s, ok := SubjectByName(name)
		if !ok {
			continue
		}
		rows = append(rows, table2Row(s, cfg))
	}
	return rows
}

func table2Row(s Subject, cfg Table2Config) Table2Row {
	measure := func(level vyrd.Level) time.Duration {
		durs := make([]time.Duration, 0, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			res := harness.Run(s.Correct, baseConfig(cfg.Threads, cfg.OpsPerThread, cfg.Seed+int64(rep), level))
			durs = append(durs, res.Elapsed)
		}
		return median(durs)
	}
	alone := measure(vyrd.LevelOff)
	io := measure(vyrd.LevelIO)
	view := measure(vyrd.LevelView)
	return Table2Row{
		Subject:   s.Name,
		Threads:   cfg.Threads,
		Ops:       cfg.OpsPerThread,
		ProgAlone: alone,
		IOLog:     maxDuration(0, io-alone),
		ViewLog:   maxDuration(0, view-alone),
	}
}

func median(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// WriteTable2 renders the rows in the paper's layout.
func WriteTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 2. Overhead of logging")
	fmt.Fprintln(tw, "Implementation\tProgram\tI/O Ref. logging\tView Ref. logging")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t+%v\t+%v\n", r.Subject, r.ProgAlone.Round(time.Microsecond),
			r.IOLog.Round(time.Microsecond), r.ViewLog.Round(time.Microsecond))
	}
	tw.Flush()
}
