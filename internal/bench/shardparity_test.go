package bench_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/racecheck"
	"repro/internal/remote"
	"repro/internal/wal"
	"repro/vyrd"
)

// parityShards is the shard count the parity legs run capture with.
const parityShards = 4

// startShardedDiffServer is startDiffServer with sharded per-session
// capture enabled, for the vyrdd-loopback parity leg.
func startShardedDiffServer(tb testing.TB) string {
	tb.Helper()
	srv, err := remote.NewServer(remote.ServerOptions{
		Registry: bench.Registry(),
		Shards:   parityShards,
	})
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestShardedVerdictParity pins sharded-vs-global verdict parity on every
// registry subject across all three deployment legs (ISSUE 7 acceptance):
//
//   - offline: a live concurrent harness run captured on a sharded log,
//     its merged snapshot checked by both engines — verdicts must match
//     the global-capture run of the same subject;
//   - online: the same recorded entries replayed through a single-counter
//     log and a sharded shard group into the Multi fan-out — identical
//     verdicts entry-stream for entry-stream;
//   - vyrdd loopback: the entries shipped over TCP to a server whose
//     per-session capture is sharded — remote verdict equal to the global
//     server's.
//
// The planted-race leg replays an exploration witness through the sharded
// online pipeline: a history both engines reject on global capture must
// still be rejected through the merge.
func TestShardedVerdictParity(t *testing.T) {
	globalAddr := startDiffServer(t)
	shardAddr := startShardedDiffServer(t)

	t.Run("clean", func(t *testing.T) {
		for _, s := range bench.AllSubjects() {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				// Offline leg: live sharded capture. The harness threads
				// append concurrently through shard-pinned probes; the
				// snapshot is the k-way merged total order.
				entries := bench.CleanRunOn(s, 1, vyrd.LogOptions{Shards: parityShards})
				off, err := bench.Differential(s.Name, s.Correct, entries, "")
				if err != nil {
					t.Fatal(err)
				}
				if !off.Refinement.Ok() || !off.Agree() {
					t.Fatalf("sharded capture broke the clean-run verdict:\n%s", off)
				}

				// Online leg: same entries, both backends, same verdicts.
				onG, err := bench.DifferentialOnline(s.Name, s.Correct, entries, "")
				if err != nil {
					t.Fatal(err)
				}
				onS, err := bench.DifferentialOnlineOn(s.Name, s.Correct, entries, "",
					wal.Options{Window: 1 << 12, Shards: parityShards})
				if err != nil {
					t.Fatal(err)
				}
				if onG.Refinement.Ok() != onS.Refinement.Ok() || onG.Linearize.Ok() != onS.Linearize.Ok() {
					t.Fatalf("online sharded vs global divergence:\nglobal:\n%s\nsharded:\n%s", onG, onS)
				}
				if !onS.Agree() {
					t.Fatalf("online sharded divergence:\n%s", onS)
				}

				// Loopback leg: remote verdicts agree between a sharded
				// and a single-counter server.
				repG := remoteLinearize(t, globalAddr, s.Name, entries)
				repS := remoteLinearize(t, shardAddr, s.Name, entries)
				if repG.Ok() != repS.Ok() {
					t.Fatalf("vyrdd loopback sharded vs global divergence: global ok=%v, sharded ok=%v\nglobal:\n%s\nsharded:\n%s",
						repG.Ok(), repS.Ok(), repG, repS)
				}
			})
		}
	})

	t.Run("planted-race", func(t *testing.T) {
		if racecheck.Enabled {
			t.Skip("planted bugs are intentional data races; the detector would abort before the checkers verdict")
		}
		for _, s := range bench.ExplorationSubjects() {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				entries, repro, _, err := bench.SurfacedRaceWitness(s, 2000)
				if err != nil {
					t.Fatal(err)
				}
				onS, err := bench.DifferentialOnlineOn(s.Name, s.Buggy, entries, repro,
					wal.Options{Window: 1 << 12, Shards: parityShards})
				if err != nil {
					t.Fatal(err)
				}
				if onS.Refinement.Ok() || onS.Linearize.Ok() {
					t.Fatalf("sharded pipeline lost a violation both engines flag on global capture:\n%s", onS)
				}
				repS := remoteLinearize(t, shardAddr, s.Name, entries)
				if repS.Ok() {
					t.Fatalf("sharded vyrdd session lost the violation:\n%s", repS)
				}
			})
		}
	})
}
