package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// Snapshot is the machine-readable form of one vyrdbench run: the rows of
// whichever tables were regenerated, plus enough environment description to
// interpret the absolute numbers. Checked-in snapshots (BENCH_PR2.json)
// record the box a PR's performance claims were measured on.
type Snapshot struct {
	GoVersion string
	GOOS      string
	GOARCH    string
	NumCPU    int

	Table1      []Table1Row      `json:",omitempty"`
	Table2      []Table2Row      `json:",omitempty"`
	Table3      []Table3Row      `json:",omitempty"`
	LogPipeline []LogPipelineRow `json:",omitempty"`
	Explore     []ExploreRow     `json:",omitempty"`
	Durability  []DurabilityRow  `json:",omitempty"`
	Linearize   []LinearizeRow   `json:",omitempty"`
	// LinearizeParallel is the worker-pool width sweep over one partitioned
	// history (rides along with -table linearize).
	LinearizeParallel []LinearizeParallelRow `json:",omitempty"`
	// LinearizeMemo is the segment memo cache hit-rate measurement over
	// repeated identical histories (rides along with -table linearize).
	LinearizeMemo []LinearizeMemoRow `json:",omitempty"`
	// AppendScaling is the sharded-vs-global capture throughput grid
	// (-table append).
	AppendScaling []AppendScalingRow `json:",omitempty"`
	// Fleet is the multi-session capacity row: concurrent sessions held
	// open against one scheduler-mode server and the aggregate checked
	// entries/sec (-table fleet).
	Fleet []FleetRow `json:",omitempty"`
	// LTL is the temporal-engine cost grid (props x formula shape) and
	// LTLOnline the refinement-vs-ltl online pipeline A/B (-table ltl).
	LTL       []LTLRow       `json:",omitempty"`
	LTLOnline []LTLOnlineRow `json:",omitempty"`
}

// NewSnapshot returns a Snapshot describing the current environment, ready
// for table rows.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
