package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestLogPipelineBoundedRetention is the end-to-end acceptance check for the
// bounded-memory online mode: a full harness run with view-level online
// checking over a windowed, truncating log must check clean, retain at most
// Window plus two segments of entries at its peak, and actually release
// storage along the way.
func TestLogPipelineBoundedRetention(t *testing.T) {
	cfg := DefaultLogPipelineConfig()
	cfg.OpsPerThread = 800
	cfg.Window = 1 << 10
	cfg.SegmentSize = 128
	rows := LogPipeline(cfg)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	bound := int64(cfg.Window + 2*cfg.SegmentSize)
	for _, r := range rows {
		if !r.Report.Ok {
			t.Errorf("%s: online check reported a violation on a correct subject", r.Name)
		}
		if r.Stats.PeakRetainedEntries > bound {
			t.Errorf("%s: peak retained %d entries exceeds bound %d (stats: %s)",
				r.Name, r.Stats.PeakRetainedEntries, bound, r.Stats)
		}
		if r.Stats.TruncatedSegments == 0 {
			t.Errorf("%s: truncation never released a segment (stats: %s)", r.Name, r.Stats)
		}
		if r.Stats.Appends == 0 {
			t.Errorf("%s: no entries logged", r.Name)
		}
	}

	var buf bytes.Buffer
	WriteLogPipeline(&buf, cfg, rows)
	out := buf.String()
	for _, want := range []string{"PeakRetained", "Truncated", "BlockedWaits", rows[0].Name} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
