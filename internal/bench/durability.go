package bench

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/harness"
	"repro/internal/msvector"
	"repro/internal/wal"
	"repro/vyrd"
)

// DurabilityConfig parameterizes the sink-codec A/B behind the
// FormatVersion 3 switch: the same seeded workload recorded through the
// persisting encoder sink in the pre-checksum (v2) and CRC-checksummed
// (v3) framings. The claim the rows defend: per-frame checksums cost four
// bytes per frame and leave append throughput within 10% of v2.
type DurabilityConfig struct {
	Threads      int
	OpsPerThread int
	// SyncEvery is the sync-marker/fsync cadence in entries (v3 only; the
	// v2 framing has no markers, so the cadence degrades to plain flushes).
	SyncEvery int
	Seed      int64
}

// DefaultDurabilityConfig sizes the run long enough that the encoder sink,
// not the harness, dominates.
func DefaultDurabilityConfig() DurabilityConfig {
	return DurabilityConfig{Threads: 4, OpsPerThread: 4000, SyncEvery: 1024, Seed: 1}
}

// DurabilityRow is one codec's outcome, plus the recovery scan rate over
// the stream it produced (the torn-tail scanner reads every frame, so its
// throughput is the recovery-time bound for a crashed log of this shape).
type DurabilityRow struct {
	Codec         string
	Methods       int64
	Entries       int64
	Bytes         int64
	Elapsed       time.Duration
	EntriesPerSec float64
	BytesPerEntry float64
	RecoverMBps   float64
}

// Durability records the workload once per codec and scans each stream
// back through the recovery path.
func Durability(cfg DurabilityConfig) []DurabilityRow {
	t := msvector.Target(msvector.BugNone)
	rows := make([]DurabilityRow, 0, 2)
	for _, codec := range []vyrd.Codec{vyrd.CodecBinaryV2, vyrd.CodecBinary} {
		hcfg := baseConfig(cfg.Threads, cfg.OpsPerThread, cfg.Seed, vyrd.LevelView)
		hcfg.LogOptions = vyrd.LogOptions{SyncEvery: cfg.SyncEvery, SinkCodec: codec}
		log := vyrd.NewLogWith(hcfg.Level, hcfg.LogOptions)
		var buf bytes.Buffer
		if err := log.AttachSink(&buf); err != nil {
			panic("bench: " + err.Error())
		}
		res := harness.RunOnLog(t, hcfg, log)
		if err := log.SinkErr(); err != nil {
			panic("bench: sink: " + err.Error())
		}
		entries := log.Stats().Appends
		row := DurabilityRow{
			Codec:   codec.String(),
			Methods: res.Methods,
			Entries: entries,
			Bytes:   int64(buf.Len()),
			Elapsed: res.Elapsed,
		}
		if s := res.Elapsed.Seconds(); s > 0 {
			row.EntriesPerSec = float64(entries) / s
		}
		if entries > 0 {
			row.BytesPerEntry = float64(buf.Len()) / float64(entries)
		}
		start := time.Now()
		recovered, rep, err := wal.RecoverReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic("bench: recover: " + err.Error())
		}
		if !rep.Clean() || int64(len(recovered)) != entries {
			panic(fmt.Sprintf("bench: recovery of an intact %s stream kept %d of %d entries",
				codec, len(recovered), entries))
		}
		if s := time.Since(start).Seconds(); s > 0 {
			row.RecoverMBps = float64(buf.Len()) / (1 << 20) / s
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteDurability renders the sink-codec A/B.
func WriteDurability(w io.Writer, cfg DurabilityConfig, rows []DurabilityRow) {
	fmt.Fprintf(w, "Durability: persisting sink codec A/B, sync cadence %d entries\n", cfg.SyncEvery)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Codec\tMethods\tEntries\tBytes\tElapsed\tEntries/s\tBytes/entry\tRecover MB/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%.0f\t%.2f\t%.1f\n",
			r.Codec, r.Methods, r.Entries, r.Bytes, r.Elapsed.Round(time.Millisecond),
			r.EntriesPerSec, r.BytesPerEntry, r.RecoverMBps)
	}
	tw.Flush()
	if len(rows) == 2 && rows[0].EntriesPerSec > 0 {
		fmt.Fprintf(w, "  v3/v2 append throughput: %.3f; checksum cost: %+.2f bytes/entry\n",
			rows[1].EntriesPerSec/rows[0].EntriesPerSec,
			rows[1].BytesPerEntry-rows[0].BytesPerEntry)
	}
}
