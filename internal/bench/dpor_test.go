package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/racecheck"
	"repro/internal/sched"
)

// dporSubjects is the differential set: every planted-bug subject both
// strategies are expected to crack — the lock-based exploration subjects
// plus the weak-memory atomics subjects. Under the race detector the
// lock-based bugs are intentional data races (the detector aborts before
// the checker verdicts), so only the atomics subjects — whose accesses are
// all atomic and race-invisible — remain.
func dporSubjects(t *testing.T) []bench.Subject {
	t.Helper()
	subs := bench.WeakMemorySubjects()
	if racecheck.Enabled {
		t.Log("race detector on: restricting to the atomics subjects")
		return subs
	}
	return append(bench.ExplorationSubjects(), subs...)
}

// replayIdentical re-runs a found schedule from its spec alone and requires
// byte-identical log bytes and a structurally identical verdict — the
// repro-string contract: what exploration found, anyone can replay.
func replayIdentical(t *testing.T, sub bench.Subject, found *explore.Found) {
	t.Helper()
	r, err := explore.RunSpec(sub.Buggy, found.Run.Spec)
	if err != nil {
		t.Fatalf("%s: replay: %v", sub.Name, err)
	}
	if r.Sched.FreeRun {
		t.Fatalf("%s: replay fell back to free-running\nrepro: %s", sub.Name, found.Run.Spec.Repro())
	}
	if !explore.SameVerdict(found.Run, r) {
		t.Fatalf("%s: replay diverged from the exploration run\nrepro: %s", sub.Name, found.Run.Spec.Repro())
	}
}

// TestStrategyDifferential is the PCT-vs-DPOR A/B over every planted-bug
// subject: both strategies must find a violation within their budget, every
// found schedule must replay byte-for-byte from its repro spec (so DPOR
// scripts round-trip exactly like PCT seeds), and DPOR must need strictly
// fewer schedules than PCT on every subject — the reduction claim of this
// PR, pinned as a regression test. Budgets are asymmetric on purpose: PCT's
// worst observed case is 141 schedules (TreiberStack-PublishRace), DPOR's
// is 26 (BLinkTree-DroppedLock).
func TestStrategyDifferential(t *testing.T) {
	for _, s := range dporSubjects(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := bench.ExploreSpec(s.Name)

			dpor, dst, err := explore.ExploreDPOR(s.Buggy, base, 80)
			if err != nil {
				t.Fatalf("dpor: %v", err)
			}
			if dpor == nil {
				t.Fatalf("dpor found no violation in 80 schedules (classes=%d pruned=%d exhausted=%v)",
					dst.Classes, dst.Pruned, dst.Exhausted)
			}
			replayIdentical(t, s, dpor)

			pct, _, err := explore.Explore(s.Buggy, base, 300)
			if err != nil {
				t.Fatalf("pct: %v", err)
			}
			if pct == nil {
				t.Fatal("pct found no violation in 300 schedules")
			}
			replayIdentical(t, s, pct)

			t.Logf("schedules to first violation: dpor %d (%s), pct %d (%s)",
				dpor.SchedulesTried, dpor.Run.FirstKind(),
				pct.SchedulesTried, pct.Run.FirstKind())
			if dpor.SchedulesTried >= pct.SchedulesTried {
				t.Errorf("dpor needed %d schedules, pct %d: partial-order reduction regressed",
					dpor.SchedulesTried, pct.SchedulesTried)
			}
		})
	}
}

// TestWeakMemoryCleanVariants runs the correct implementation of each
// atomics subject under 25 controlled schedules per strategy and requires
// silence: the planted windows, not the lock-free algorithms themselves,
// are what the strategies flag.
func TestWeakMemoryCleanVariants(t *testing.T) {
	for _, s := range bench.WeakMemorySubjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := bench.ExploreSpec(s.Name)
			for _, strat := range bench.ExploreStrategies {
				var found *explore.Found
				var err error
				if strat == sched.StrategyDPOR {
					found, _, err = explore.ExploreDPOR(s.Correct, base, 25)
				} else {
					found, _, err = explore.Explore(s.Correct, base, 25)
				}
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if found != nil {
					t.Fatalf("%s flagged the correct implementation at schedule %d (%s)\nrepro: %s",
						strat, found.SchedulesTried, found.Run.FirstKind(), found.Run.Spec.Repro())
				}
			}
		})
	}
}
