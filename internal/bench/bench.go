// Package bench regenerates the paper's evaluation tables (Section 7): the
// time-to-detection comparison of I/O vs view refinement (Table 1), the
// logging overhead by level (Table 2), and the running-time breakdown of
// program / logging / online checking / offline checking (Table 3).
//
// Absolute times are this machine's, not the paper's 2.4 GHz Pentium; the
// comparisons of interest are the shapes: view refinement detects
// state-corrupting bugs after fewer methods than I/O refinement (but no
// earlier for the Vector observer bug), view-level logging costs more than
// I/O-level logging (markedly so for write-heavy subjects), and online
// checking adds tolerable overhead.
package bench

import (
	"time"

	"repro/internal/blinkstore"
	"repro/internal/blinktree"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/jsbuffer"
	"repro/internal/jvector"
	"repro/internal/ledger"
	"repro/internal/mstree"
	"repro/internal/msvector"
	"repro/internal/multiset"
	"repro/internal/scanfs"
	"repro/internal/seqlock"
	"repro/internal/tstack"
	"repro/vyrd"
)

// Subject pairs a buggy and a correct target for one paper row.
type Subject struct {
	Name    string
	BugName string
	Correct harness.Target
	Buggy   harness.Target
}

// Subjects returns the paper's evaluation subjects in Table 1 order.
func Subjects() []Subject {
	return []Subject{
		{
			Name:    "Multiset-Vector",
			BugName: "Moving acquire in FindSlot",
			Correct: msvector.Target(msvector.BugNone),
			Buggy:   msvector.Target(msvector.BugFindSlotAcquire),
		},
		{
			Name:    "Multiset-BinaryTree",
			BugName: "Unlocking parent before insertion",
			Correct: mstree.Target(mstree.BugNone),
			Buggy:   mstree.Target(mstree.BugUnlockParent),
		},
		{
			Name:    "java.util.Vector",
			BugName: "Taking length non-atomically in lastIndexOf()",
			Correct: jvector.Target(jvector.BugNone),
			Buggy:   jvector.Target(jvector.BugLastIndexOf),
		},
		{
			Name:    "java.util.StringBuffer",
			BugName: "Copying from an unprotected StringBuffer",
			Correct: jsbuffer.Target(jsbuffer.BugNone),
			Buggy:   jsbuffer.Target(jsbuffer.BugUnprotectedCopy),
		},
		{
			Name:    "BLinkTree",
			BugName: "Allowing duplicated data nodes",
			Correct: blinktree.Target(6, blinktree.BugNone),
			Buggy:   blinktree.Target(6, blinktree.BugDuplicateInsert),
		},
		{
			Name:    "Cache",
			BugName: "Writing an unprotected dirty cache entry",
			Correct: cache.Target(cache.BugNone),
			Buggy:   cache.Target(cache.BugUnprotectedWrite),
		},
	}
}

// ExtraSubjects returns checkable subjects beyond the paper's Table 1
// rows: the array multiset of the running example (Figs. 2-6) and the Scan
// file system of Section 7.3.
func ExtraSubjects() []Subject {
	return []Subject{
		{
			Name:    "Multiset-Array",
			BugName: "Fig. 5: acquire moved after the emptiness check",
			Correct: multiset.Target(64, multiset.BugNone),
			Buggy:   multiset.Target(32, multiset.BugFindSlotAcquire),
		},
		{
			Name:    "ScanFS",
			BugName: "Writing an unprotected dirty cache block (Section 7.3)",
			Correct: scanfs.Target(scanfs.BugNone),
			Buggy:   scanfs.Target(scanfs.BugUnprotectedBlockWrite),
		},
		{
			Name:    "BLinkTree-on-Cache",
			BugName: "Allowing duplicated data nodes (over the Fig. 10 storage stack)",
			Correct: blinkstore.Target(6, blinkstore.BugNone),
			Buggy:   blinkstore.Target(6, blinkstore.BugDuplicateInsert),
		},
	}
}

// AllSubjects returns the Table 1 subjects followed by the extras.
func AllSubjects() []Subject {
	return append(Subjects(), ExtraSubjects()...)
}

// ExplorationSubjects returns the planted-bug variants that schedule
// exploration (cmd/vyrdx, internal/explore) must find: races whose windows
// contain no Gosched widening — only controlled-scheduler yield points —
// so they are essentially unschedulable under wall-clock stress but
// reachable (and reproducible) under seeded PCT scheduling. Sizes are
// smaller than the stress subjects': shorter schedules to search and
// shrink.
func ExplorationSubjects() []Subject {
	return []Subject{
		{
			Name:    "Multiset-TornPair",
			BugName: "Torn two-slot validation in InsertPair (no Gosched window)",
			Correct: multiset.Target(16, multiset.BugNone),
			Buggy:   multiset.Target(16, multiset.BugTornPair),
		},
		{
			Name:    "BLinkTree-DroppedLock",
			BugName: "Leaf lock dropped between presence check and add",
			Correct: blinktree.Target(4, blinktree.BugNone),
			Buggy:   blinktree.Target(4, blinktree.BugDroppedLock),
		},
		{
			Name:    "Cache-TornUpdate",
			BugName: "Torn in-place dirty-entry copy (no Gosched window)",
			Correct: cache.TargetSized(cache.BugNone, 3, 32),
			Buggy:   cache.TargetSized(cache.BugTornUpdate, 3, 32),
		},
	}
}

// WeakMemorySubjects returns the lock-free atomics subjects in the spirit
// of the C11 weak-memory library benchmarks: no mutual exclusion anywhere,
// every shared access an annotated atomic, correctness resting entirely on
// operation ordering. Their planted bugs are invisible to the race detector
// (all accesses are atomic) and to wall-clock stress (the windows are one
// scheduler step wide); they are aimed at DPOR exploration, whose
// access-typed yields see exactly which loads and stores conflict. They
// are checked in I/O mode — their return values are self-validating — so
// they are kept out of ExplorationSubjects (a view-mode list).
func WeakMemorySubjects() []Subject {
	return []Subject{
		{
			Name:    "TreiberStack-PublishRace",
			BugName: "CAS publishes node before linking next (one-step window)",
			Correct: tstack.Target(tstack.BugNone),
			Buggy:   tstack.Target(tstack.BugPublishBeforeLink),
		},
		{
			Name:    "Seqlock-TornRead",
			BugName: "Reader skips sequence validation, accepts torn word pair",
			Correct: seqlock.Target(seqlock.BugNone),
			Buggy:   seqlock.Target(seqlock.BugTornRead),
		},
	}
}

// TemporalSubjects returns the planted-bug variants aimed at the temporal
// engine (ModeLTL): bugs that corrupt no state — refinement and
// linearizability stay clean — but leave a forbidden pattern in the log.
// The ledger's reversed lock acquisition is the canonical example: the
// transfer still moves the money atomically, only the locking discipline
// (observable through its lock-acq/lock-rel write actions) is broken.
func TemporalSubjects() []Subject {
	return []Subject{
		{
			Name:    "Ledger-LockPair",
			BugName: "Hint-gated reversed lock order in Transfer (no Gosched window)",
			Correct: ledger.Target(ledger.BugNone),
			Buggy:   ledger.Target(ledger.BugReversedLocks),
		},
	}
}

// LinearizeOnlySubjects returns subjects only the linearizability engine
// can verify: their instrumentation is call/return-only (no commit
// actions), so refinement rejects every run by construction
// (ViolationInstrumentation) — the black-box library class the engine
// opens up. They are excluded from the evaluation tables and the
// differential agreement suite.
func LinearizeOnlySubjects() []Subject {
	return []Subject{
		{
			Name:    "Multiset-NoCommit",
			BugName: "Moving acquire in FindSlot (annotation-free wrapper)",
			Correct: multiset.NoCommitTarget(64, multiset.BugNone),
			Buggy:   multiset.NoCommitTarget(8, multiset.BugFindSlotAcquire),
		},
	}
}

// SubjectByName returns the subject with the given name, or false. It
// searches the evaluation subjects, the exploration variants and the
// linearize-only subjects.
func SubjectByName(name string) (Subject, bool) {
	all := append(AllSubjects(), ExplorationSubjects()...)
	all = append(all, WeakMemorySubjects()...)
	all = append(all, TemporalSubjects()...)
	all = append(all, LinearizeOnlySubjects()...)
	for _, s := range all {
		if s.Name == name {
			return s, true
		}
	}
	return Subject{}, false
}

// baseConfig is the shared harness shape for table runs.
func baseConfig(threads, ops int, seed int64, level vyrd.Level) harness.Config {
	return harness.Config{
		Threads:      threads,
		OpsPerThread: ops,
		KeyPool:      16,
		Shrink:       true,
		Seed:         seed,
		Level:        level,
	}
}

// checkTimed offline-checks a trace and measures the CPU-side wall time of
// the check itself (the verification thread's work).
func checkTimed(t harness.Target, res harness.Result, mode core.Mode, failFast bool) (*core.Report, time.Duration, error) {
	entries := res.Log.Snapshot()
	opts := []core.Option{core.WithMode(mode), core.WithFailFast(failFast)}
	if mode == core.ModeView {
		opts = append(opts, core.WithReplayer(t.NewReplayer()))
	}
	start := time.Now()
	rep, err := core.CheckEntries(entries, t.NewSpec(), opts...)
	return rep, time.Since(start), err
}
