package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fleet"
	"repro/internal/fleet/load"
	"repro/internal/harness"
	"repro/internal/linearize"
	"repro/internal/remote"
	"repro/internal/wal"
	"repro/vyrd"
)

// multiEngine adapts the synchronous Multi fan-out to the scheduler's
// Engine: the worker thread drives both checkers inline, slice by slice.
type multiEngine struct {
	m   *core.Multi
	cur wal.Reader
}

func (e *multiEngine) Feed(ev vyrd.Entry) { e.m.FeedSync(ev) }
func (e *multiEngine) Finish() []core.ModuleReport {
	logErr := ""
	if err := e.cur.Err(); err != nil {
		logErr = err.Error()
	}
	return e.m.FinishSync(logErr)
}

// DifferentialScheduled is DifferentialOnline with the checker pipeline
// driven by a fleet scheduler task instead of a dedicated goroutine — the
// parity seam for the bounded-pool deployment: same entries, same Multi
// fan-out, verdicts must be identical to the goroutine baseline. The
// scheduler is shared by the caller so many subjects can contend for the
// same bounded pool, which is the condition the parity claim is about.
func DifferentialScheduled(subject string, t harness.Target, entries []vyrd.Entry, repro string, sched *fleet.Scheduler) (DifferentialVerdict, error) {
	sp, err := LinearizeSpec(subject)
	if err != nil {
		return DifferentialVerdict{}, err
	}
	all := func(vyrd.Entry) bool { return true }
	refOpts := []core.Option{core.WithMode(explore.Mode(t))}
	if explore.Mode(t) == core.ModeView {
		refOpts = append(refOpts, core.WithReplayer(t.NewReplayer()))
	}
	m, err := core.NewMulti(
		core.Module{Name: "refinement", Spec: t.NewSpec(), Filter: all, Opts: refOpts},
		core.Module{Name: "linearize", Filter: all, NewChecker: func() (core.EntryChecker, error) {
			return linearize.NewChecker(sp, linearize.Options{MaxStates: linearizeBudget}), nil
		}},
	)
	if err != nil {
		return DifferentialVerdict{}, err
	}

	lg := wal.Open(wal.LevelView, wal.Options{Window: 1 << 12})
	cur := lg.Reader()
	var recv atomic.Int64
	task := sched.Register(subject, cur, &multiEngine{m: m, cur: cur}, recv.Load, nil)
	go func() {
		for _, e := range entries {
			lg.Append(e)
			recv.Store(e.Seq)
			task.Wake()
		}
		lg.Close()
		task.Close(int64(len(entries)))
	}()
	reports := task.Wait()

	d := DifferentialVerdict{Subject: subject, Repro: repro}
	for _, mr := range reports {
		switch mr.Module {
		case "refinement":
			d.Refinement = mr.Report
		case "linearize":
			d.Linearize = mr.Report
		}
	}
	if d.Refinement == nil || d.Linearize == nil {
		return DifferentialVerdict{}, fmt.Errorf("bench: scheduled fan-out lost a module report")
	}
	if d.Linearize.LogErr != "" {
		return DifferentialVerdict{}, fmt.Errorf("bench: linearize gave up on %s: %s", subject, d.Linearize.LogErr)
	}
	return d, nil
}

// FleetConfig sizes one fleet capacity run: how many concurrent sessions
// to hold open against an in-process vyrdd whose checkers multiplex over
// a bounded worker pool.
type FleetConfig struct {
	// Sessions is the concurrent-session target (the max-sessions/box
	// claim is "this many were simultaneously open").
	Sessions int
	// Workers bounds the checker pool (0 = 2×GOMAXPROCS, the fleet
	// deployment default).
	Workers int
	// Subject is the registry subject each session streams; Seed picks
	// the recorded run.
	Subject string
	Seed    int64
}

// DefaultFleetConfig targets the ISSUE acceptance bar: 1000 concurrent
// sessions on one box with a pool no wider than 2×GOMAXPROCS.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Sessions: 1000,
		Workers:  2 * runtime.GOMAXPROCS(0),
		Subject:  "Multiset-Array",
		Seed:     1,
	}
}

// FleetRow is one measured fleet capacity point.
type FleetRow struct {
	Subject string
	// Sessions is the configured target; Opened is how many were
	// verifiably open at once (each past its handshake, none finished);
	// PeakActive is the server's own sessions_active gauge at that moment.
	Sessions   int
	Opened     int
	PeakActive int
	Workers    int
	// EntriesPerSession is the recorded log length; Entries the total
	// streamed in the measured phase across all sessions.
	EntriesPerSession int
	Entries           int64
	EntriesPerSec     float64
	ElapsedSec        float64
	// VerdictsOk counts sessions whose verdict passed (must equal
	// Sessions on a clean subject); Failed counts errored sessions.
	VerdictsOk int
	Failed     int
	// SchedSlices and PeakUtilization describe the pool: cooperative
	// slices executed over the whole run, and the busy fraction sampled
	// at peak concurrency.
	SchedSlices     int64
	PeakUtilization float64
}

// FleetTable runs the load generator against an in-process scheduler-mode
// server over a loopback listener and returns the capacity row — the
// numbers behind the "max-sessions/box, entries/sec" claim in BENCH_PR8.
func FleetTable(cfg FleetConfig) ([]FleetRow, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = DefaultFleetConfig().Sessions
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Subject == "" {
		cfg.Subject = DefaultFleetConfig().Subject
	}
	s, ok := SubjectByName(cfg.Subject)
	if !ok {
		return nil, fmt.Errorf("bench: unknown fleet subject %q", cfg.Subject)
	}
	entries := CleanRun(s, cfg.Seed)

	srv, err := remote.NewServer(remote.ServerOptions{
		Registry: Registry(),
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	peakActive := 0
	peakUtil := 0.0
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	st, err := load.Run(load.Config{
		Addr:     ln.Addr().String(),
		Sessions: cfg.Sessions,
		Spec:     s.Name,
		Tenant:   "bench",
		Entries:  entries,
		AtPeak: func() {
			peakActive = srv.Metrics().SessionsActive
			// The barrier itself is idle by construction; the pool's peak
			// busy fraction is sampled across the measured phase instead.
			sampleWG.Add(1)
			go func() {
				defer sampleWG.Done()
				for {
					select {
					case <-stopSample:
						return
					default:
					}
					if m := srv.Metrics(); m.Sched != nil {
						if u := m.Sched.Utilization(); u > peakUtil {
							peakUtil = u
						}
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
		},
	})
	close(stopSample)
	sampleWG.Wait()
	if err != nil {
		return nil, err
	}

	row := FleetRow{
		Subject:           s.Name,
		Sessions:          cfg.Sessions,
		Opened:            st.Opened,
		PeakActive:        peakActive,
		Workers:           cfg.Workers,
		EntriesPerSession: len(entries),
		Entries:           st.Entries,
		EntriesPerSec:     st.EntriesPerSec,
		ElapsedSec:        float64(st.ElapsedNS) / 1e9,
		VerdictsOk:        st.VerdictsOk,
		Failed:            st.Failed,
		PeakUtilization:   peakUtil,
	}
	if m := srv.Metrics(); m.Sched != nil {
		row.SchedSlices = m.Sched.Slices
	}
	return []FleetRow{row}, nil
}

// WriteFleetTable renders fleet capacity rows for terminals.
func WriteFleetTable(w io.Writer, rows []FleetRow) {
	fmt.Fprintf(w, "Fleet capacity: concurrent sessions multiplexed over a bounded checker pool\n")
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "subject\tsessions\topen@peak\tsrv-active\tworkers\tutil@peak\tentries\tentries/sec\telapsed\tverdicts-ok\tfailed\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f\t%d\t%.0f\t%.2fs\t%d\t%d\n",
			r.Subject, r.Sessions, r.Opened, r.PeakActive, r.Workers,
			r.PeakUtilization, r.Entries, r.EntriesPerSec, r.ElapsedSec,
			r.VerdictsOk, r.Failed)
	}
	tw.Flush()
}
