// Package jsbuffer reimplements the subset of java.util.StringBuffer the
// paper checks (Section 7.4.1): synchronized growable character buffers,
// including the previously reported concurrency error in append(StringBuffer).
//
// The injected bug is the one named in Table 1 — "Copying from an
// unprotected StringBuffer": AppendBuffer(dst, src) reads src's length and
// then copies src's characters in two separately synchronized steps without
// holding src's lock across both. If another thread shrinks src in between,
// the copy terminates exceptionally (Java throws
// ArrayIndexOutOfBoundsException), which the specification does not permit;
// if src merely changes, the destination receives a mixture the atomic
// specification could never produce, which view refinement catches at the
// commit.
//
// The package manages a small family of buffers addressed by integer ids so
// the cross-buffer append is a method of one instrumented structure.
package jsbuffer

import (
	"runtime"
	"sync"

	"repro/internal/event"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugUnprotectedCopy performs the length read and the character copy of
	// the source buffer as two separately locked steps (Table 1: "Copying
	// from an unprotected StringBuffer").
	BugUnprotectedCopy
)

type buffer struct {
	mu   sync.Mutex
	data []byte
}

// Buffers is a family of string buffers with identifiers 0..n-1.
type Buffers struct {
	bufs []*buffer
	bug  Bug

	// RaceWindow, when non-nil, runs in the buggy AppendBuffer between the
	// length read and the character copy.
	RaceWindow func(staleLen int)
}

// New returns n empty buffers.
func New(n int, bug Bug) *Buffers {
	b := &Buffers{bug: bug}
	for i := 0; i < n; i++ {
		b.bufs = append(b.bufs, &buffer{})
	}
	return b
}

// Count returns the number of buffers.
func (b *Buffers) Count() int { return len(b.bufs) }

// length is the synchronized length read (java length()).
func (bf *buffer) length() int {
	bf.mu.Lock()
	defer bf.mu.Unlock()
	return len(bf.data)
}

// getChars is the synchronized bounded copy (java getChars(0, n, ...)): it
// fails when n exceeds the current length.
func (bf *buffer) getChars(n int) ([]byte, bool) {
	bf.mu.Lock()
	defer bf.mu.Unlock()
	if n > len(bf.data) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, bf.data[:n])
	return out, true
}

// Append appends the string s to buffer id.
func (b *Buffers) Append(p *vyrd.Probe, id int, s string) {
	inv := p.Call("Append", id, s)
	bf := b.bufs[id]
	bf.mu.Lock()
	bf.data = append(bf.data, s...)
	inv.CommitWrite("appended", "sb-append", id, s)
	bf.mu.Unlock()
	inv.Return(nil)
}

// AppendBuffer appends the contents of buffer src to buffer dst. The
// correct version holds both buffer locks (in id order) across the whole
// copy; the buggy version reads src's length and characters in two
// separately synchronized steps.
func (b *Buffers) AppendBuffer(p *vyrd.Probe, dst, src int) error {
	inv := p.Call("AppendBuffer", dst, src)
	d, s := b.bufs[dst], b.bufs[src]

	if b.bug == BugUnprotectedCopy {
		n := s.length() // BUG: src can change before the copy below
		if b.RaceWindow != nil {
			b.RaceWindow(n)
		} else {
			runtime.Gosched() // model preemption in the race window
		}
		p.Yield() // controlled-scheduler preemption point inside the race window
		copied, ok := s.getChars(n)
		d.mu.Lock()
		if !ok {
			inv.Commit("exceptional")
			d.mu.Unlock()
			exc := event.Exceptional{Reason: "array index out of bounds"}
			inv.Return(exc)
			return exc
		}
		d.data = append(d.data, copied...)
		inv.CommitWrite("copied", "sb-append", dst, string(copied))
		d.mu.Unlock()
		inv.Return(nil)
		return nil
	}

	// Correct: lock both buffers in id order (one lock when dst == src).
	lo, hi := d, s
	if dst > src {
		lo, hi = s, d
	}
	lo.mu.Lock()
	if hi != lo {
		hi.mu.Lock()
	}
	copied := make([]byte, len(s.data))
	copy(copied, s.data)
	d.data = append(d.data, copied...)
	inv.CommitWrite("copied", "sb-append", dst, string(copied))
	if hi != lo {
		hi.mu.Unlock()
	}
	lo.mu.Unlock()
	inv.Return(nil)
	return nil
}

// Delete removes the characters in [start, end) from buffer id, clipping
// end to the current length; invalid ranges terminate exceptionally, as in
// Java.
func (b *Buffers) Delete(p *vyrd.Probe, id, start, end int) error {
	inv := p.Call("Delete", id, start, end)
	bf := b.bufs[id]
	bf.mu.Lock()
	n := len(bf.data)
	if start < 0 || start > n || start > end {
		inv.Commit("exceptional")
		bf.mu.Unlock()
		exc := event.Exceptional{Reason: "string index out of range"}
		inv.Return(exc)
		return exc
	}
	if end > n {
		end = n
	}
	bf.data = append(bf.data[:start], bf.data[end:]...)
	inv.CommitWrite("deleted", "sb-del", id, start, end)
	bf.mu.Unlock()
	inv.Return(nil)
	return nil
}

// SetLength truncates or zero-extends buffer id to length n; a negative
// length terminates exceptionally.
func (b *Buffers) SetLength(p *vyrd.Probe, id, n int) error {
	inv := p.Call("SetLength", id, n)
	bf := b.bufs[id]
	bf.mu.Lock()
	if n < 0 {
		inv.Commit("exceptional")
		bf.mu.Unlock()
		exc := event.Exceptional{Reason: "negative length"}
		inv.Return(exc)
		return exc
	}
	if n <= len(bf.data) {
		bf.data = bf.data[:n]
	} else {
		bf.data = append(bf.data, make([]byte, n-len(bf.data))...)
	}
	inv.CommitWrite("set-length", "sb-setlen", id, n)
	bf.mu.Unlock()
	inv.Return(nil)
	return nil
}

// ToString returns the contents of buffer id (observer).
func (b *Buffers) ToString(p *vyrd.Probe, id int) string {
	inv := p.Call("ToString", id)
	bf := b.bufs[id]
	bf.mu.Lock()
	s := string(bf.data)
	bf.mu.Unlock()
	inv.Return(s)
	return s
}

// Length returns the length of buffer id (observer).
func (b *Buffers) Length(p *vyrd.Probe, id int) int {
	inv := p.Call("Length", id)
	bf := b.bufs[id]
	bf.mu.Lock()
	n := len(bf.data)
	bf.mu.Unlock()
	inv.Return(n)
	return n
}
