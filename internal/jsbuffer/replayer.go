package jsbuffer

import (
	"fmt"
	"strconv"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the buffer family from the logged writes and
// maintains viewI in the canonical form of the StringBuffers specification:
// "sb:<id>" -> contents.
//
// Write operations:
//
//	"sb-append" id s        append string
//	"sb-del" id start end   delete range (end already validated; clipped here)
//	"sb-setlen" id n        truncate or zero-extend
type Replayer struct {
	n     int
	bufs  []string
	table *view.Table
}

// NewReplayer returns a replica of n empty buffers.
func NewReplayer(n int) *Replayer {
	r := &Replayer{n: n}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.bufs = make([]string, r.n)
	r.table = view.NewTable()
	for i := 0; i < r.n; i++ {
		r.table.Set("sb:"+strconv.Itoa(i), "")
	}
}

// View implements core.Replayer.
func (r *Replayer) View() *view.Table { return r.table }

func (r *Replayer) set(id int, content string) {
	r.bufs[id] = content
	r.table.Set("sb:"+strconv.Itoa(id), content)
}

func (r *Replayer) id(args []event.Value) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("jsbuffer replay: missing buffer id")
	}
	id, ok := event.Int(args[0])
	if !ok || id < 0 || id >= r.n {
		return 0, fmt.Errorf("jsbuffer replay: bad buffer id %v", args[0])
	}
	return id, nil
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "sb-append":
		id, err := r.id(args)
		if err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("jsbuffer replay: sb-append wants id and string, got %v", args)
		}
		s, ok := args[1].(string)
		if !ok {
			return fmt.Errorf("jsbuffer replay: sb-append non-string payload %v", args[1])
		}
		r.set(id, r.bufs[id]+s)
		return nil

	case "sb-del":
		id, err := r.id(args)
		if err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("jsbuffer replay: sb-del wants id, start, end, got %v", args)
		}
		start, ok1 := event.Int(args[1])
		end, ok2 := event.Int(args[2])
		if !ok1 || !ok2 {
			return fmt.Errorf("jsbuffer replay: sb-del non-integer range %v", args)
		}
		content := r.bufs[id]
		if start < 0 || start > len(content) || start > end {
			return fmt.Errorf("jsbuffer replay: sb-del range [%d,%d) invalid for length %d", start, end, len(content))
		}
		if end > len(content) {
			end = len(content)
		}
		r.set(id, content[:start]+content[end:])
		return nil

	case "sb-setlen":
		id, err := r.id(args)
		if err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("jsbuffer replay: sb-setlen wants id and length, got %v", args)
		}
		n, ok := event.Int(args[1])
		if !ok || n < 0 {
			return fmt.Errorf("jsbuffer replay: sb-setlen bad length %v", args[1])
		}
		content := r.bufs[id]
		if n <= len(content) {
			r.set(id, content[:n])
		} else {
			r.set(id, content+string(make([]byte, n-len(content))))
		}
		return nil
	}
	return fmt.Errorf("jsbuffer replay: unknown op %q", op)
}

// Invariants implements core.Replayer; buffers have no internal invariants
// beyond their view.
func (r *Replayer) Invariants() error { return nil }

// Content exposes a reconstructed buffer, for tests.
func (r *Replayer) Content(id int) string { return r.bufs[id] }
