package jsbuffer

import (
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// targetBuffers is the number of buffers in the harness family.
const targetBuffers = 4

// Target adapts the StringBuffer family to the random test harness
// (Section 7.1). The mix interleaves cross-buffer appends with shrinking
// operations on the source buffers, the combination that triggers the
// known bug.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "java.util.StringBuffer",
		New: func(log *vyrd.Log) harness.Instance {
			b := New(targetBuffers, bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Append", Weight: 30, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						b.Append(p, rng.Intn(targetBuffers), strconv.Itoa(pick()))
					}},
					{Name: "AppendBuffer", Weight: 20, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						dst := rng.Intn(targetBuffers)
						src := rng.Intn(targetBuffers)
						// Keep contents from growing without bound.
						if b.contentLen(src) < 512 {
							b.AppendBuffer(p, dst, src)
						} else {
							b.SetLength(p, src, 8)
						}
					}},
					{Name: "Delete", Weight: 15, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						id := rng.Intn(targetBuffers)
						start := rng.Intn(16)
						b.Delete(p, id, start, start+rng.Intn(16))
					}},
					{Name: "SetLength", Weight: 10, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						b.SetLength(p, rng.Intn(targetBuffers), rng.Intn(32))
					}},
					{Name: "ToString", Weight: 15, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						b.ToString(p, rng.Intn(targetBuffers))
					}},
					{Name: "Length", Weight: 10, Run: func(p *vyrd.Probe, rng *rand.Rand, _ func() int) {
						b.Length(p, rng.Intn(targetBuffers))
					}},
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewStringBuffers(targetBuffers) },
		NewReplayer: func() core.Replayer { return NewReplayer(targetBuffers) },
	}
}

// contentLen reads a buffer's length without logging, for harness-internal
// flow control.
func (b *Buffers) contentLen(id int) int {
	bf := b.bufs[id]
	bf.mu.Lock()
	defer bf.mu.Unlock()
	return len(bf.data)
}
