package jsbuffer

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode, n int) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer(n)), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewStringBuffers(n), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	b := New(2, BugNone)
	b.Append(p, 0, "hello")
	b.Append(p, 1, " world")
	if err := b.AppendBuffer(p, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s := b.ToString(p, 0); s != "hello world" {
		t.Fatalf("contents %q", s)
	}
	if n := b.Length(p, 0); n != 11 {
		t.Fatalf("length %d", n)
	}
	if err := b.Delete(p, 0, 0, 6); err != nil {
		t.Fatal(err)
	}
	if s := b.ToString(p, 0); s != "world" {
		t.Fatalf("after delete: %q", s)
	}
	if err := b.SetLength(p, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.SetLength(p, 0, 4); err != nil {
		t.Fatal(err)
	}
	if s := b.ToString(p, 0); s != "wo\x00\x00" {
		t.Fatalf("after set-length: %q", s)
	}
	// Exceptional paths.
	if err := b.Delete(p, 0, 9, 12); err == nil {
		t.Fatal("invalid delete range succeeded")
	}
	if err := b.SetLength(p, 0, -1); err == nil {
		t.Fatal("negative set-length succeeded")
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode, 2); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestSelfAppend(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	b := New(1, BugNone)
	b.Append(p, 0, "ab")
	if err := b.AppendBuffer(p, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s := b.ToString(p, 0); s != "abab" {
		t.Fatalf("self-append: %q", s)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView, 1); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministicException forces the classic AIOOBE: the source
// shrinks between the length read and the copy.
func TestBugDeterministicException(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	b := New(2, BugUnprotectedCopy)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	b.Append(p1, 1, "abcdefgh")

	inWindow := make(chan struct{})
	shrunk := make(chan struct{})
	var once sync.Once
	b.RaceWindow = func(staleLen int) {
		once.Do(func() {
			close(inWindow)
			<-shrunk
		})
	}

	done := make(chan error)
	go func() { done <- b.AppendBuffer(p2, 0, 1) }()
	<-inWindow
	if err := b.SetLength(p1, 1, 2); err != nil {
		t.Fatal(err)
	}
	close(shrunk)
	if err := <-done; err == nil {
		t.Fatal("expected an exceptional AppendBuffer")
	}
	log.Close()

	rep := checkLog(t, log, vyrd.ModeIO, 2)
	if rep.Ok() {
		t.Fatalf("I/O refinement missed the exceptional AppendBuffer:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationIO {
		t.Fatalf("expected an I/O violation at the commit, got %v", rep.First())
	}
}

// TestBugDeterministicStaleCopy forces the subtler manifestation: the
// source changes contents (same length) between the length read and the
// copy, so the destination receives a mix no atomic execution could
// produce; view refinement catches it at the commit.
func TestBugDeterministicStaleCopy(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	b := New(2, BugUnprotectedCopy)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	b.Append(p1, 1, "aaaa")

	inWindow := make(chan struct{})
	mutated := make(chan struct{})
	var once sync.Once
	b.RaceWindow = func(int) {
		once.Do(func() {
			close(inWindow)
			<-mutated
		})
	}

	done := make(chan error)
	go func() { done <- b.AppendBuffer(p2, 0, 1) }()
	<-inWindow
	// Replace the contents, keeping the length: delete all + append bbbb.
	if err := b.Delete(p1, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	b.Append(p1, 1, "bbbb")
	close(mutated)
	if err := <-done; err != nil {
		t.Fatalf("AppendBuffer unexpectedly failed: %v", err)
	}
	log.Close()

	// The copy observed "bbbb" (post-mutation) or a mix; the witness
	// interleaving orders the delete+append before or after the
	// AppendBuffer commit, and whichever way, viewS and viewI agree only if
	// the copy was atomic. A violation is expected in view mode unless the
	// copy happened to land entirely after both mutations in commit order
	// AND copied the final contents — in which case the trace is genuinely
	// linearizable and no violation is due. Assert only on the non-
	// linearizable outcome.
	rep := checkLog(t, log, vyrd.ModeView, 2)
	dst := b.ToString(nil, 0)
	if dst != "bbbb" && rep.Ok() {
		t.Fatalf("destination %q is not explainable atomically but no violation reported", dst)
	}
}

func TestReplayerMatchesImplementation(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	b := New(3, BugNone)
	b.Append(p, 0, "xy")
	b.Append(p, 1, "12345")
	b.AppendBuffer(p, 2, 1)
	b.Delete(p, 1, 1, 3)
	b.SetLength(p, 2, 3)
	log.Close()

	r := NewReplayer(3)
	for _, e := range log.Snapshot() {
		if e.Kind == event.KindWrite {
			if err := r.Apply(e.Method, e.Args); err != nil {
				t.Fatal(err)
			}
		}
		if e.WOp != "" {
			if err := r.Apply(e.WOp, e.WArgs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id := 0; id < 3; id++ {
		if got, want := r.Content(id), b.ToString(nil, id); got != want {
			t.Fatalf("buffer %d: replica %q impl %q", id, got, want)
		}
	}
}

func TestReplayerRejectsMalformed(t *testing.T) {
	r := NewReplayer(2)
	bad := []struct {
		op   string
		args []event.Value
	}{
		{"sb-append", []event.Value{9, "x"}}, // bad id
		{"sb-append", []event.Value{0, 42}},  // non-string
		{"sb-del", []event.Value{0, 5, 9}},   // invalid range for empty
		{"sb-setlen", []event.Value{0, -1}},  // negative
		{"sb-unknown", []event.Value{0}},     // unknown op
		{"sb-del", []event.Value{0}},         // missing args
	}
	for _, c := range bad {
		if err := r.Apply(c.op, c.args); err == nil {
			t.Fatalf("accepted %s%v", c.op, c.args)
		}
	}
}

func TestConcurrentCorrect(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	b := New(3, BugNone)
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*7 + 5
			for i := 0; i < 200; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				id := x % 3
				switch x % 5 {
				case 0:
					b.Append(p, id, strings.Repeat("z", 1+x%4))
				case 1:
					b.AppendBuffer(p, id, (id+1)%3)
				case 2:
					b.SetLength(p, id, x%24)
				case 3:
					b.Delete(p, id, x%8, x%8+x%6)
				case 4:
					b.ToString(p, id)
				}
			}
		}(th)
	}
	wg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode, 3); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}
