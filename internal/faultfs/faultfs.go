// Package faultfs is an in-process fault-injection filesystem seam. The
// durability layer (wal sinks, cmd/vyrd -save/-load, the soak harness)
// opens files through the FS interface instead of the os package directly;
// production code passes OS, tests and the chaos harness pass a Faulty
// wrapper that injects short writes, write errors, fsync failures, and
// crash-at-byte-N truncation from a seeded, reproducible schedule.
//
// The remote layer grew the same seam for the network in PR 3 (the
// fault-injection dialer); this is its disk counterpart. Leucker's note on
// runtime verification of concurrent systems makes the stakes concrete: a
// monitor is only as trustworthy as the trace it consumes, so the trace's
// path to disk has to be tested under the failures disks actually exhibit.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
)

// File is the slice of *os.File the durability layer needs. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Name returns the name of the file as presented to Open/Create.
	Name() string
}

// FS creates and opens files. The zero-dependency production
// implementation is OS.
type FS interface {
	// Create truncates-or-creates a file for writing (os.Create).
	Create(name string) (File, error)
	// Open opens a file for reading (os.Open).
	Open(name string) (File, error)
	// OpenRW opens an existing file for reading and writing, preserving
	// its contents — what recovery needs to truncate a torn tail in
	// place.
	OpenRW(name string) (File, error)
}

// *os.File must keep satisfying File: the production path has no wrapper.
var _ File = (*os.File)(nil)

// OS is the real filesystem: straight delegation to the os package.
type OS struct{}

// Create implements FS via os.Create.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS via os.Open.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// OpenRW implements FS via os.OpenFile(O_RDWR).
func (OS) OpenRW(name string) (File, error) { return os.OpenFile(name, os.O_RDWR, 0) }

// Config is a seeded fault schedule. The zero value injects nothing. All
// byte/count thresholds are cumulative per file, so a schedule names exact
// points in a file's write history and replays identically from the seed.
type Config struct {
	// Seed drives the randomized faults (ShortWriteEvery jitter). Two
	// Faulty instances with equal Config produce identical fault
	// sequences.
	Seed int64
	// CrashAtByte, when > 0, models the process (or kernel) dying after N
	// bytes reached the file: every byte past the threshold is silently
	// dropped while the writer keeps seeing successful writes, syncs and
	// closes — exactly what a log writer observes before a crash, since
	// the data loss is only discovered on reopen.
	CrashAtByte int64
	// FailWriteAt, when > 0, makes the Nth write call (1-based, counted
	// per file) fail with ErrInjectedWrite after writing nothing.
	FailWriteAt int
	// FailSyncAt, when > 0, makes the Nth Sync call (1-based, per file)
	// fail with ErrInjectedSync.
	FailSyncAt int
	// FailReadAt, when > 0, makes the Nth Read call (1-based, per file)
	// fail with ErrInjectedRead.
	FailReadAt int
	// ShortWriteEvery, when > 0, truncates roughly every Nth write call to
	// a random prefix (possibly empty) and returns io.ErrShortWrite, as a
	// disk-full or signal-interrupted write would.
	ShortWriteEvery int
}

// Injected errors, distinguishable from real filesystem failures in test
// assertions.
var (
	ErrInjectedWrite = fmt.Errorf("faultfs: injected write error")
	ErrInjectedSync  = fmt.Errorf("faultfs: injected sync failure")
	ErrInjectedRead  = fmt.Errorf("faultfs: injected read error")
)

// Faulty wraps an FS with a fault schedule. Each file opened through it
// carries its own counters, all derived from Config.
type Faulty struct {
	fs  FS
	cfg Config
}

// New wraps fs with the fault schedule cfg.
func New(fs FS, cfg Config) *Faulty { return &Faulty{fs: fs, cfg: cfg} }

// Create opens a faulty file for writing.
func (f *Faulty) Create(name string) (File, error) {
	inner, err := f.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return newFaultyFile(inner, f.cfg), nil
}

// Open opens a faulty file for reading.
func (f *Faulty) Open(name string) (File, error) {
	inner, err := f.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return newFaultyFile(inner, f.cfg), nil
}

// OpenRW opens a faulty file for reading and writing.
func (f *Faulty) OpenRW(name string) (File, error) {
	inner, err := f.fs.OpenRW(name)
	if err != nil {
		return nil, err
	}
	return newFaultyFile(inner, f.cfg), nil
}

// faultyFile injects the schedule around one file. The mutex serializes the
// counters; the wal sink writes from one goroutine, but tests may probe a
// file concurrently.
type faultyFile struct {
	inner File
	cfg   Config
	rng   *rand.Rand

	mu      sync.Mutex
	written int64 // bytes the caller believes reached the file
	writes  int
	syncs   int
	reads   int
}

func newFaultyFile(inner File, cfg Config) *faultyFile {
	return &faultyFile{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Write applies the schedule: injected failures first, then short writes,
// then the crash-at-byte cutoff (which lies to the caller — the write
// "succeeds" but bytes past the threshold never reach the inner file).
func (f *faultyFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.cfg.FailWriteAt > 0 && f.writes == f.cfg.FailWriteAt {
		return 0, ErrInjectedWrite
	}
	if f.cfg.ShortWriteEvery > 0 && f.writes%f.cfg.ShortWriteEvery == 0 && len(p) > 0 {
		keep := f.rng.Intn(len(p))
		n, err := f.passthrough(p[:keep])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return f.passthrough(p)
}

// passthrough writes p honoring CrashAtByte. Callers hold f.mu.
func (f *faultyFile) passthrough(p []byte) (int, error) {
	if f.cfg.CrashAtByte <= 0 {
		n, err := f.inner.Write(p)
		f.written += int64(n)
		return n, err
	}
	room := f.cfg.CrashAtByte - f.written
	if room < 0 {
		room = 0
	}
	keep := int64(len(p))
	if keep > room {
		keep = room
	}
	if keep > 0 {
		n, err := f.inner.Write(p[:keep])
		f.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	// Bytes past the cutoff vanish, but the caller sees full success: a
	// crashing machine acknowledges writes it will never persist.
	f.written += int64(len(p)) - keep
	return len(p), nil
}

// Read applies FailReadAt, then delegates.
func (f *faultyFile) Read(p []byte) (int, error) {
	f.mu.Lock()
	f.reads++
	fail := f.cfg.FailReadAt > 0 && f.reads == f.cfg.FailReadAt
	f.mu.Unlock()
	if fail {
		return 0, ErrInjectedRead
	}
	return f.inner.Read(p)
}

// Sync applies FailSyncAt; past the CrashAtByte cutoff it also succeeds
// without doing anything, like an fsync acknowledged by a dying kernel.
func (f *faultyFile) Sync() error {
	f.mu.Lock()
	f.syncs++
	fail := f.cfg.FailSyncAt > 0 && f.syncs == f.cfg.FailSyncAt
	crashed := f.cfg.CrashAtByte > 0 && f.written >= f.cfg.CrashAtByte
	f.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	if crashed {
		return nil
	}
	return f.inner.Sync()
}

// Truncate delegates; the fault schedule does not model truncation
// failures (recovery's Truncate runs after the crash, on a healthy
// filesystem).
func (f *faultyFile) Truncate(size int64) error { return f.inner.Truncate(size) }

// Close always closes the inner file; past the crash cutoff the result is
// reported as success regardless.
func (f *faultyFile) Close() error {
	err := f.inner.Close()
	f.mu.Lock()
	crashed := f.cfg.CrashAtByte > 0 && f.written >= f.cfg.CrashAtByte
	f.mu.Unlock()
	if crashed {
		return nil
	}
	return err
}

// Name reports the inner file's name.
func (f *faultyFile) Name() string { return f.inner.Name() }

// Written returns how many bytes the caller believes it wrote (including
// bytes dropped past the crash cutoff). Test helpers use it to compute
// expected truncation points.
func (f *faultyFile) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}
