package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// writeChunks writes data to f in chunks of n bytes, tolerating short
// writes, and returns the first error.
func writeChunks(f File, data []byte, n int) error {
	for len(data) > 0 {
		c := n
		if c > len(data) {
			c = len(data)
		}
		if _, err := f.Write(data[:c]); err != nil && err != io.ErrShortWrite {
			return err
		}
		data = data[c:]
	}
	return nil
}

func TestCrashAtByteDropsTailSilently(t *testing.T) {
	mem := NewMemFS()
	fs := New(mem, Config{CrashAtByte: 37})
	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xab}, 100)
	// Every write, sync and close reports success: the data loss is only
	// discoverable on reopen, as after a real crash.
	if err := writeChunks(f, data, 9); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := mem.Bytes("log")
	if len(got) != 37 {
		t.Fatalf("crash file holds %d bytes, want exactly 37", len(got))
	}
	if !bytes.Equal(got, data[:37]) {
		t.Fatalf("crash file is not a prefix of the written data")
	}
}

func TestInjectedFailuresFireAtScheduledCalls(t *testing.T) {
	fs := New(NewMemFS(), Config{FailWriteAt: 3, FailSyncAt: 2, FailReadAt: 1})
	f, err := fs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		_, werr := f.Write([]byte("x"))
		if (i == 3) != errors.Is(werr, ErrInjectedWrite) {
			t.Fatalf("write %d: err %v", i, werr)
		}
	}
	for i := 1; i <= 3; i++ {
		serr := f.Sync()
		if (i == 2) != errors.Is(serr, ErrInjectedSync) {
			t.Fatalf("sync %d: err %v", i, serr)
		}
	}
	r, err := fs.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := r.Read(make([]byte, 1)); !errors.Is(rerr, ErrInjectedRead) {
		t.Fatalf("read 1: err %v, want injected", rerr)
	}
	if _, rerr := r.Read(make([]byte, 8)); rerr != nil {
		t.Fatalf("read 2: %v", rerr)
	}
}

func TestShortWritesAreSeededAndDeterministic(t *testing.T) {
	run := func() []byte {
		mem := NewMemFS()
		fs := New(mem, Config{Seed: 7, ShortWriteEvery: 2})
		f, _ := fs.Create("log")
		for i := 0; i < 20; i++ {
			if _, err := f.Write([]byte("abcdefgh")); err != nil && err != io.ErrShortWrite {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return mem.Bytes("log")
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different short-write patterns: %d vs %d bytes", len(a), len(b))
	}
	if len(a) == 20*8 {
		t.Fatalf("no write came up short under ShortWriteEvery=2")
	}
}

func TestMemFSReopenAndTruncate(t *testing.T) {
	mem := NewMemFS()
	f, err := mem.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	r, err := mem.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "hello world" {
		t.Fatalf("read back %q, %v", all, err)
	}
	if err := r.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if got := mem.Bytes("f"); string(got) != "hello" {
		t.Fatalf("after truncate: %q", got)
	}
	if _, err := mem.Open("missing"); err == nil {
		t.Fatal("open of a missing file succeeded")
	}
}
