package faultfs

import (
	"fmt"
	"io"
	"sync"
)

// MemFS is an in-memory FS for tests and the fast soak mode: crash/recover
// cycles without disk I/O. Files persist across Create/Open pairs within
// one MemFS, mirroring a reopen after a crash.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memData)} }

// memData is one file's contents, shared by every handle opened on it.
type memData struct {
	mu   sync.Mutex
	data []byte
}

// Create truncates-or-creates name and returns a write handle.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[name]
	if !ok {
		d = &memData{}
		m.files[name] = d
	}
	d.mu.Lock()
	d.data = d.data[:0]
	d.mu.Unlock()
	return &MemFile{d: d, name: name}, nil
}

// Open returns a read handle positioned at the start of name.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	d, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: file does not exist", name)
	}
	return &MemFile{d: d, name: name}, nil
}

// OpenRW is identical to Open: every MemFile handle can read, append and
// truncate.
func (m *MemFS) OpenRW(name string) (File, error) { return m.Open(name) }

// Bytes returns a copy of name's current contents (nil if absent).
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	d, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

// MemFile is one handle on a MemFS file: writes append to the shared
// contents, reads consume from this handle's own offset.
type MemFile struct {
	d    *memData
	name string
	off  int64
}

// Write appends p to the file.
func (f *MemFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	f.d.data = append(f.d.data, p...)
	return len(p), nil
}

// Read reads from the handle's offset.
func (f *MemFile) Read(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[f.off:])
	f.off += int64(n)
	return n, nil
}

// Sync is a no-op: memory is as stable as MemFS storage gets.
func (f *MemFile) Sync() error { return nil }

// Truncate shrinks (or zero-extends) the file to size.
func (f *MemFile) Truncate(size int64) error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("faultfs: truncate %s: negative size", f.name)
	}
	for int64(len(f.d.data)) < size {
		f.d.data = append(f.d.data, 0)
	}
	f.d.data = f.d.data[:size]
	return nil
}

// Close is a no-op.
func (f *MemFile) Close() error { return nil }

// Name reports the file's name.
func (f *MemFile) Name() string { return f.name }
