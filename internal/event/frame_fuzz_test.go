package event

import (
	"errors"
	"testing"
)

// decodeStream runs the frame decoder to exhaustion over buf, enforcing
// the properties the network ingest path depends on: the decoder never
// panics, always makes progress (no infinite loop on a stuck prefix), and
// never reads past the buffer it was handed.
func decodeStream(t *testing.T, buf []byte) (entries int, err error) {
	t.Helper()
	p := buf
	for len(p) > 0 {
		e, rest, derr := DecodeEntryFrame(p)
		if derr != nil {
			return entries, derr
		}
		if len(rest) >= len(p) {
			t.Fatalf("decoder made no progress at offset %d of %d", len(buf)-len(p), len(buf))
		}
		if e.Method != "" && e.Sym != InternSym(e.Method) {
			t.Fatalf("decoded entry #%d without a re-interned method sym", e.Seq)
		}
		p = rest
		entries++
	}
	return entries, nil
}

// FuzzTornFrames models the network boundary of remote log shipping: a
// connection can die mid-frame, so the decoder sees streams cut at every
// byte position — mid-length-prefix, mid-payload — and streams with
// corrupted bytes. Truncating a valid stream must always yield the
// distinguished ErrShortFrame (the "wait for more bytes" signal the
// server's ingest loop relies on, never a panic or a misparse), and
// arbitrary corruption must error cleanly.
func FuzzTornFrames(f *testing.F) {
	f.Add(int64(42), "Insert", []byte{1, 2, 3}, uint16(5), uint16(0), byte(0xff))
	f.Add(int64(-1), "", []byte(nil), uint16(0), uint16(3), byte(0x80))
	f.Add(int64(1<<40), "Delete\x00x", []byte("payload"), uint16(130), uint16(1), byte(0x01))
	f.Fuzz(func(t *testing.T, iarg int64, method string, barg []byte, cut uint16, mutAt uint16, mutXor byte) {
		if len(barg) > 1<<10 {
			barg = barg[:1<<10]
		}
		// The first entry carries a >127-byte blob so its frame needs a
		// multi-byte length prefix: cuts inside the prefix itself are a
		// distinct failure mode from cuts inside the payload.
		blob := make([]byte, 160)
		copy(blob, barg)
		entries := []Entry{
			{Seq: 1, Tid: 1, Kind: KindCall, Method: method, Args: []Value{int(iarg), blob, method}},
			{Seq: 2, Tid: 2, Kind: KindReturn, Method: method, Ret: iarg},
		}
		var stream []byte
		var err error
		for _, e := range entries {
			stream, err = AppendEntryFrame(stream, e)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
		}

		// The intact stream decodes completely.
		n, err := decodeStream(t, stream)
		if err != nil {
			t.Fatalf("intact stream failed to decode: %v", err)
		}
		if n != len(entries) {
			t.Fatalf("intact stream decoded %d entries, want %d", n, len(entries))
		}

		// Every truncation of a valid stream is "short frame", nothing
		// else: whole frames up to the tear decode, then ErrShortFrame.
		for c := 0; c < len(stream); c++ {
			n, err := decodeStream(t, stream[:c])
			if err != nil && !errors.Is(err, ErrShortFrame) {
				t.Fatalf("cut at %d: error %v, want ErrShortFrame", c, err)
			}
			if err == nil && n != 1 {
				// Only one interior frame boundary exists; a cut decoding
				// cleanly must sit exactly on it (or at 0, handled by the
				// loop bound).
				if c != 0 {
					t.Fatalf("cut at %d decoded %d entries with no error", c, n)
				}
			}
		}

		// One fuzz-chosen tear plus a byte flip: corruption may misparse a
		// length or a field, but the decoder must fail (or succeed) cleanly
		// — no panic, no over-read, no stuck loop. decodeStream asserts
		// all three.
		torn := append([]byte(nil), stream[:int(cut)%(len(stream)+1)]...)
		if len(torn) > 0 {
			torn[int(mutAt)%len(torn)] ^= mutXor
		}
		decodeStream(t, torn)

		// The flipped byte alone over the full stream.
		mut := append([]byte(nil), stream...)
		mut[int(mutAt)%len(mut)] ^= mutXor
		decodeStream(t, mut)
	})
}
