package event

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzEntries builds a two-entry stream from the fuzz inputs: one entry
// exercising every field (args of several registered types, a commit write,
// a module tag, an Exceptional return) and one minimal entry, so the
// round-trip covers both the header and encoder state reuse across records.
func fuzzEntries(tid int32, kind uint8, method, label, sarg string, iarg int64, barg []byte,
	flag bool, reason string, wop string, wargs int64) []Entry {
	k := Kind(kind%6) + 1
	first := Entry{
		Seq:    1,
		Tid:    tid,
		Kind:   k,
		Method: method,
		Args: []Value{
			int(iarg), iarg, sarg, flag, barg,
			[]int{int(iarg), int(tid)}, []string{sarg, method},
		},
		Ret:    Exceptional{Reason: reason},
		Label:  label,
		Worker: flag,
		WOp:    wop,
		WArgs:  []Value{wargs, sarg},
		Module: label,
	}
	second := Entry{Seq: 2, Tid: tid + 1, Kind: KindReturn, Method: method, Ret: flag}
	return []Entry{first, second}
}

// encodeAll serializes entries with a fresh Encoder and returns the bytes.
func encodeAll(t *testing.T, c Codec, entries []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoderCodec(&buf, c)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return buf.Bytes()
}

// roundTrip checks the codec's load-bearing properties over arbitrary field
// contents: decoding is loss-free (every field comes back equal, including
// interface-typed Args/Ret/WArgs holding registered slice types and
// Exceptional), re-encoding the decoded entries reproduces the original
// byte stream (so persisted artifacts are stable and diffable), and a
// truncated stream fails with the explicit format error.
func roundTrip(t *testing.T, c Codec, entries []Entry) {
	t.Helper()
	raw := encodeAll(t, c, entries)

	dec := NewDecoderCodec(bytes.NewReader(raw), c)
	decoded, err := dec.DecodeAll()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(decoded), len(entries))
	}
	for i := range entries {
		a, b := entries[i], decoded[i]
		// Sym/WSym/Mod are process-local and never persisted; decoders
		// re-intern them, so only the string fields are compared.
		if a.Seq != b.Seq || a.Tid != b.Tid || a.Kind != b.Kind || a.Method != b.Method ||
			a.Label != b.Label || a.Worker != b.Worker || a.WOp != b.WOp || a.Module != b.Module {
			t.Fatalf("entry %d scalar fields differ:\n %+v\n %+v", i, a, b)
		}
		if b.Method != "" && b.Sym != InternSym(b.Method) {
			t.Fatalf("entry %d decoded without an interned method sym", i)
		}
		if !Equal(a.Ret, b.Ret) {
			t.Fatalf("entry %d ret differs: %#v vs %#v", i, a.Ret, b.Ret)
		}
		if len(a.Args) != len(b.Args) || len(a.WArgs) != len(b.WArgs) {
			t.Fatalf("entry %d arg counts differ", i)
		}
		for j := range a.Args {
			if !Equal(a.Args[j], b.Args[j]) {
				t.Fatalf("entry %d arg %d differs: %#v vs %#v", i, j, a.Args[j], b.Args[j])
			}
		}
		for j := range a.WArgs {
			if !Equal(a.WArgs[j], b.WArgs[j]) {
				t.Fatalf("entry %d warg %d differs: %#v vs %#v", i, j, a.WArgs[j], b.WArgs[j])
			}
		}
	}

	// Byte-stable re-encode: a fresh encoder over the decoded entries
	// must reproduce the stream bit for bit.
	if re := encodeAll(t, c, decoded); !bytes.Equal(raw, re) {
		t.Fatalf("re-encode not byte-stable:\n first  %x\n second %x", raw, re)
	}

	// A truncated stream must fail with the explicit format error, never
	// silently succeed with a short header.
	if len(raw) > 3 {
		_, err := NewDecoderCodec(bytes.NewReader(raw[:3]), c).Decode()
		if err == nil || err == io.EOF || !errors.Is(err, ErrFormatMismatch) {
			t.Fatalf("3-byte stream decoded without format error: %v", err)
		}
	}

	// The other codec's decoder must reject the stream with the explicit
	// version-mismatch error, not a decode panic: this is the guard that
	// keeps old artifacts from being misread as the new format.
	other := CodecGob
	if c == CodecGob {
		other = CodecBinary
	}
	if _, err := NewDecoderCodec(bytes.NewReader(raw), other).Decode(); !errors.Is(err, ErrFormatMismatch) {
		t.Fatalf("%s decoder accepted a %s stream: %v", other, c, err)
	}

	// Binary streams additionally round-trip through the parallel decoder
	// with the order preserved.
	if c == CodecBinary {
		par, err := DecodeAllParallel(bytes.NewReader(raw), 4)
		if err != nil {
			t.Fatalf("parallel decode: %v", err)
		}
		if len(par) != len(decoded) {
			t.Fatalf("parallel decoded %d entries, want %d", len(par), len(decoded))
		}
		for i := range par {
			if par[i].Seq != decoded[i].Seq || par[i].Method != decoded[i].Method {
				t.Fatalf("parallel decode out of order at %d: %+v vs %+v", i, par[i], decoded[i])
			}
		}
	}
}

func addSeeds(f *testing.F) {
	f.Add(int32(1), uint8(0), "Insert", "lbl", "s", int64(42), []byte{1, 2}, true, "overflow", "bump", int64(-7))
	f.Add(int32(-9), uint8(3), "", "", "", int64(0), []byte(nil), false, "", "", int64(1))
	f.Add(int32(7), uint8(255), "Delete\x00x", "π", "日本", int64(-1), []byte("gob"), true, "r", "sclear", int64(1<<40))
}

// FuzzEntryRoundTrip exercises the current binary codec (format version 2).
func FuzzEntryRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, tid int32, kind uint8, method, label, sarg string, iarg int64,
		barg []byte, flag bool, reason string, wop string, wargs int64) {
		roundTrip(t, CodecBinary, fuzzEntries(tid, kind, method, label, sarg, iarg, barg, flag, reason, wop, wargs))
	})
}

// FuzzEntryRoundTripGob exercises the retained legacy gob codec (format
// version 1), which must keep reading and writing committed v1 artifacts.
func FuzzEntryRoundTripGob(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, tid int32, kind uint8, method, label, sarg string, iarg int64,
		barg []byte, flag bool, reason string, wop string, wargs int64) {
		roundTrip(t, CodecGob, fuzzEntries(tid, kind, method, label, sarg, iarg, barg, flag, reason, wop, wargs))
	})
}
