// Package event defines the action vocabulary of the VYRD log.
//
// A run of an instrumented implementation is recorded as a totally ordered
// sequence of entries. Call, return and commit actions (Section 3 and 4 of
// the paper) are required for I/O refinement checking; shared-variable write
// actions and commit-block delimiters (Section 5) are additionally required
// for view refinement checking.
package event

import "fmt"

// Kind identifies the action class an Entry records.
type Kind uint8

const (
	// KindCall records the invocation of a public method by a thread,
	// together with the actual arguments.
	KindCall Kind = iota + 1
	// KindReturn records the return of the matching open invocation,
	// together with the returned value.
	KindReturn
	// KindCommit records the unique commit action of a mutator method
	// execution. The order of commit actions induces the witness
	// interleaving used to drive the specification.
	KindCommit
	// KindWrite records an update to a shared variable in the support of
	// viewI, at either fine (single variable) or coarse (data-structure
	// task) granularity. Replayed into the replica by a core.Replayer.
	KindWrite
	// KindBeginBlock marks the start of a commit block (Section 5.2):
	// writes up to the matching KindEndBlock are treated as atomic at the
	// block's commit action when reconstructing the equivalent trace t'.
	KindBeginBlock
	// KindEndBlock marks the end of a commit block.
	KindEndBlock
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindCommit:
		return "commit"
	case KindWrite:
		return "write"
	case KindBeginBlock:
		return "begin-block"
	case KindEndBlock:
		return "end-block"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a logged argument, return value or written datum. Concrete types
// stored in a Value must be registered with the gob codec (see codec.go) if
// the log is persisted.
type Value = any

// Entry is one logged action. Seq is assigned by the log at append time and
// gives the total order of the execution's visible actions.
type Entry struct {
	Seq    int64   // position in the total order, starting at 1
	Tid    int32   // identifier of the acting thread
	Kind   Kind    // action class
	Method string  // method name (call/return/commit) or write-op name (write)
	Args   []Value // call arguments, or write-operation operands
	Ret    Value   // return value (return entries only)
	Label  string  // commit-point label, for diagnostics (commit entries)
	Worker bool    // true for internal data-structure worker threads (Tid_ds)

	// WOp/WArgs, when WOp is non-empty on a commit entry, record the single
	// shared-state update performed atomically with the commit action (the
	// common "commit action is a write" shape of Section 4.1). The checker
	// applies it to the replica at the commit's position in the witness
	// interleaving.
	WOp   string
	WArgs []Value

	// Module tags the entry with the verified module that produced it, for
	// modular per-structure checking (Section 7.2, Fig. 10): one execution
	// log, one refinement checker per module. Empty outside modular runs.
	Module string

	// Sym, WSym and Mod are the process-local interned ids of Method, WOp
	// and Module (see InternSym). They are assigned at log time by probes
	// and restored by decoders, and are NEVER persisted: ids from another
	// process would be meaningless here. Code receiving entries from an
	// unknown source calls Intern to normalize them.
	Sym  Sym
	WSym Sym
	Mod  Sym
}

// Intern populates the symbol ids from the string fields. It is idempotent
// and cheap once the names are known to the interner.
func (e *Entry) Intern() {
	if e.Sym == 0 && e.Method != "" {
		e.Sym = InternSym(e.Method)
	}
	if e.WSym == 0 && e.WOp != "" {
		e.WSym = InternSym(e.WOp)
	}
	if e.Mod == 0 && e.Module != "" {
		e.Mod = InternSym(e.Module)
	}
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	switch e.Kind {
	case KindCall:
		return fmt.Sprintf("#%d t%d call %s%v", e.Seq, e.Tid, e.Method, e.Args)
	case KindReturn:
		return fmt.Sprintf("#%d t%d return %s -> %v", e.Seq, e.Tid, e.Method, e.Ret)
	case KindCommit:
		if e.Label != "" {
			return fmt.Sprintf("#%d t%d commit %s [%s]", e.Seq, e.Tid, e.Method, e.Label)
		}
		return fmt.Sprintf("#%d t%d commit %s", e.Seq, e.Tid, e.Method)
	case KindWrite:
		return fmt.Sprintf("#%d t%d write %s%v", e.Seq, e.Tid, e.Method, e.Args)
	case KindBeginBlock, KindEndBlock:
		return fmt.Sprintf("#%d t%d %s", e.Seq, e.Tid, e.Kind)
	}
	return fmt.Sprintf("#%d t%d %s %s", e.Seq, e.Tid, e.Kind, e.Method)
}

// Signature is the externally visible summary of one method execution:
// thread, method, arguments and return value (Section 3.2).
type Signature struct {
	Tid    int32
	Method string
	Args   []Value
	Ret    Value
}

// String renders the signature for diagnostics.
func (s Signature) String() string {
	return fmt.Sprintf("t%d %s%v -> %v", s.Tid, s.Method, s.Args, s.Ret)
}

// Exceptional models the exceptional termination of a method as a special
// return value (Section 3: "exceptional terminations for methods are modeled
// by special return values"). Specifications decide per method whether an
// exceptional termination is permitted; permissive specs are exactly what
// distinguishes refinement from atomicity (Section 1).
type Exceptional struct {
	// Reason describes the failure, e.g. "index out of range".
	Reason string
}

// Error makes Exceptional usable as an error value inside implementations.
func (e Exceptional) Error() string { return "exceptional: " + e.Reason }

// IsExceptional reports whether a logged return value records an
// exceptional termination.
func IsExceptional(v Value) bool {
	_, ok := v.(Exceptional)
	return ok
}
