package event

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindCall:       "call",
		KindReturn:     "return",
		KindCommit:     "commit",
		KindWrite:      "write",
		KindBeginBlock: "begin-block",
		KindEndBlock:   "end-block",
		Kind(99):       "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestEntryString(t *testing.T) {
	cases := []struct {
		e    Entry
		want string
	}{
		{Entry{Seq: 1, Tid: 2, Kind: KindCall, Method: "Insert", Args: []Value{3}}, "call Insert[3]"},
		{Entry{Seq: 2, Tid: 2, Kind: KindReturn, Method: "Insert", Ret: true}, "return Insert -> true"},
		{Entry{Seq: 3, Tid: 2, Kind: KindCommit, Method: "Insert", Label: "cp1"}, "commit Insert [cp1]"},
		{Entry{Seq: 4, Tid: 2, Kind: KindCommit, Method: "Insert"}, "commit Insert"},
		{Entry{Seq: 5, Tid: 2, Kind: KindWrite, Method: "slot-elt", Args: []Value{0, 5}}, "write slot-elt[0 5]"},
		{Entry{Seq: 6, Tid: 2, Kind: KindBeginBlock}, "begin-block"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Fatalf("entry %v renders as %q, missing %q", c.e, got, c.want)
		}
	}
}

func TestSignatureString(t *testing.T) {
	s := Signature{Tid: 4, Method: "LookUp", Args: []Value{3}, Ret: true}
	if got := s.String(); !strings.Contains(got, "t4") || !strings.Contains(got, "LookUp") {
		t.Fatalf("signature renders as %q", got)
	}
}

func TestExceptional(t *testing.T) {
	e := Exceptional{Reason: "index out of range"}
	if !IsExceptional(e) {
		t.Fatal("IsExceptional(Exceptional{}) = false")
	}
	if IsExceptional(nil) || IsExceptional(42) || IsExceptional("x") {
		t.Fatal("IsExceptional accepted a non-exceptional value")
	}
	if !strings.Contains(e.Error(), "index out of range") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{nil, nil, true},
		{nil, 0, false},
		{1, 1, true},
		{1, 2, false},
		{int64(1), int64(1), true},
		{"a", "a", true},
		{"a", "b", false},
		{true, true, true},
		{true, false, false},
		{[]byte{1, 2}, []byte{1, 2}, true},
		{[]byte{1, 2}, []byte{1, 3}, false},
		{Exceptional{Reason: "x"}, Exceptional{Reason: "x"}, true},
		{Exceptional{Reason: "x"}, Exceptional{Reason: "y"}, false},
		{1, "1", false},
		{[]int{1, 2}, []int{1, 2}, true}, // DeepEqual fallback
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Fatalf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatCanonical(t *testing.T) {
	if s := Format(nil); s != "<nil>" {
		t.Fatalf("Format(nil) = %q", s)
	}
	if s := Format("hi"); s != `"hi"` {
		t.Fatalf("Format(string) = %q", s)
	}
	if s := Format([]byte{0xde, 0xad}); s != "0xdead" {
		t.Fatalf("Format(bytes) = %q", s)
	}
	if s := Format(Exceptional{Reason: "r"}); s != "exceptional(r)" {
		t.Fatalf("Format(exceptional) = %q", s)
	}
	// Maps render with sorted keys, so the form is canonical.
	m := map[string]string{"b": "2", "a": "1"}
	if s := Format(m); s != "{a:1 b:2}" {
		t.Fatalf("Format(map) = %q", s)
	}
}

func TestIntConversions(t *testing.T) {
	for _, v := range []Value{int(7), int8(7), int16(7), int32(7), int64(7)} {
		n, ok := Int(v)
		if !ok || n != 7 {
			t.Fatalf("Int(%T) = %d, %v", v, n, ok)
		}
	}
	if _, ok := Int("7"); ok {
		t.Fatal("Int accepted a string")
	}
	if MustInt(int64(9)) != 9 {
		t.Fatal("MustInt failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustInt on a string did not panic")
		}
	}()
	MustInt("x")
}

func TestStringBytesBoolExtractors(t *testing.T) {
	if s, ok := String("x"); !ok || s != "x" {
		t.Fatal("String extractor")
	}
	if _, ok := String(1); ok {
		t.Fatal("String accepted an int")
	}
	if b, ok := Bytes([]byte{1}); !ok || len(b) != 1 {
		t.Fatal("Bytes extractor")
	}
	if v, ok := Bool(true); !ok || !v {
		t.Fatal("Bool extractor")
	}
	if MustString("s") != "s" || MustBool(true) != true || string(MustBytes([]byte("b"))) != "b" {
		t.Fatal("Must* extractors")
	}
}

func TestCloneBytes(t *testing.T) {
	if CloneBytes(nil) != nil {
		t.Fatal("CloneBytes(nil) != nil")
	}
	src := []byte{1, 2, 3}
	c := CloneBytes(src)
	src[0] = 9
	if c[0] != 1 {
		t.Fatal("clone aliases the source")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Tid: 1, Kind: KindCall, Method: "Write", Args: []Value{7, []byte{1, 2, 3}}},
		{Seq: 2, Tid: 1, Kind: KindCommit, Method: "Write", Label: "cp1", WOp: "mk-dirty", WArgs: []Value{7, []byte{1, 2, 3}}},
		{Seq: 3, Tid: 1, Kind: KindReturn, Method: "Write"},
		{Seq: 4, Tid: 2, Kind: KindReturn, Method: "Bad", Ret: Exceptional{Reason: "oops"}},
		{Seq: 5, Tid: 3, Kind: KindWrite, Method: "sb-append", Args: []Value{0, "text"}, Worker: true},
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	got, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		a, b := entries[i], got[i]
		if a.Seq != b.Seq || a.Tid != b.Tid || a.Kind != b.Kind || a.Method != b.Method ||
			a.Label != b.Label || a.WOp != b.WOp || a.Worker != b.Worker {
			t.Fatalf("entry %d fields differ:\n%+v\n%+v", i, a, b)
		}
	}
	// Exceptional survives the interface round trip.
	if !IsExceptional(got[3].Ret) {
		t.Fatalf("exceptional ret decoded as %T", got[3].Ret)
	}
}

func TestDecodeEmptyStream(t *testing.T) {
	dec := NewDecoder(bytes.NewReader(nil))
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	got, err := NewDecoder(bytes.NewReader(nil)).DecodeAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("DecodeAll on empty stream: %v, %v", got, err)
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(Entry{Seq: 1, Tid: 1, Kind: KindCall, Method: "M", Args: []Value{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-4]
	dec := NewDecoder(bytes.NewReader(truncated))
	if _, err := dec.Decode(); err == nil || err == io.EOF {
		t.Fatalf("expected a decode error on a truncated stream, got %v", err)
	}
}

// TestQuickCodecIntRoundTrip: integer arguments survive serialization with
// their numeric value intact (possibly as a different Go integer width).
func TestQuickCodecIntRoundTrip(t *testing.T) {
	f := func(tid int32, vals []int64) bool {
		args := make([]Value, len(vals))
		for i, v := range vals {
			args[i] = int(v)
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(Entry{Seq: 1, Tid: tid, Kind: KindWrite, Method: "w", Args: args}); err != nil {
			return false
		}
		got, err := NewDecoder(&buf).Decode()
		if err != nil || got.Tid != tid || len(got.Args) != len(args) {
			return false
		}
		for i := range args {
			n, ok := Int(got.Args[i])
			if !ok || n != int(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
