package event

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary codec (format versions 2 and 3). Each entry is one frame:
//
//	uvarint payload-length | payload              (version 2)
//	uvarint payload-length | payload | crc32c     (version 3)
//
// and the payload is:
//
//	uvarint Seq | varint Tid | byte Kind | byte field-flags
//	| string Method
//	| [string Label] [string WOp] [string Module]        (per flags)
//	| [uvarint n, n values Args] [value Ret] [uvarint n, n values WArgs]
//
// Strings are uvarint length + raw bytes. Values are a tag byte followed by
// the tag-specific payload; the common logged types (ints, strings, bools,
// byte buffers, int/string slices, Exceptional) encode natively and any
// other registered type (RegisterValue) falls back to a self-contained gob
// blob. The frame shape is what makes parallel offline decode possible:
// frame scanning only reads length prefixes, so a single reader can slice
// the stream into batches for a decode worker pool (parallel.go) while the
// checker consumes entries strictly in order.
//
// Version 3 adds crash consistency: every frame carries a trailing CRC32-C
// of its payload (the length prefix is implicitly covered — a corrupt
// prefix either points past the buffer or frames a payload whose checksum
// cannot match), and the stream is punctuated by sync markers: distinguished
// frames whose payload is `0x00 | uvarint last-seq`. Entry payloads always
// start with the uvarint of a sequence number >= 1, so a leading zero byte
// unambiguously identifies a marker. The durable sink (internal/wal) flushes
// and fsyncs at each marker, and wal.Recover uses checksums, markers and
// sequence contiguity to find the last valid frame boundary of a torn file.

// maxFrameSize bounds a single frame so a corrupt length prefix cannot ask
// for gigabytes. Logged values are method arguments and small buffers; 16MB
// is far above anything a probe writes.
const maxFrameSize = 16 << 20

// frameCRCSize is the trailing checksum of a version-3 frame.
const frameCRCSize = 4

// castagnoli is the CRC32-C polynomial table (the checksum of iSCSI, ext4
// and Snappy; hardware-accelerated on amd64/arm64 through hash/crc32).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Field-presence flags in the payload header byte.
const (
	flagWorker = 1 << iota
	flagLabel
	flagWOp
	flagModule
	flagRet
	flagArgs
	flagWArgs
)

// Value tags.
const (
	tagNil byte = iota
	tagInt
	tagInt64
	tagString
	tagTrue
	tagFalse
	tagBytes
	tagInts
	tagStrings
	tagExceptional
	tagGob // registered custom type: uvarint length + fresh gob stream
)

// appendFrame appends the framed version-3 encoding of e (length prefix,
// payload, CRC32-C) to buf.
func appendFrame(buf []byte, e Entry) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0) // room for the common 1-3 byte length prefix
	body := len(buf)
	var err error
	if buf, err = appendPayload(buf, e); err != nil {
		return buf, err
	}
	return sealFrameCRC(buf, start, body), nil
}

// appendFrameNoCRC appends the version-2 frame shape (no checksum),
// byte-identical to the historical v2 encoder's output.
func appendFrameNoCRC(buf []byte, e Entry) ([]byte, error) {
	// Encode the payload after a reserved length prefix, then move it into
	// place: payload sizes are small, so re-copying beats encoding twice.
	start := len(buf)
	buf = append(buf, 0, 0, 0)
	body := len(buf)
	var err error
	if buf, err = appendPayload(buf, e); err != nil {
		return buf, err
	}
	return sealFrame(buf, start, body), nil
}

// sealFrame writes the length prefix for the payload occupying buf[body:]
// into the space reserved at buf[start:body] (shifting the payload when the
// uvarint needs a different width) and returns the framed buffer.
func sealFrame(buf []byte, start, body int) []byte {
	size := uint64(len(buf) - body)
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], size)
	if n != body-start {
		// Rare: the prefix needs a different width than reserved; shift.
		buf = append(buf[:start+n], buf[body:]...)
	}
	copy(buf[start:], pfx[:n])
	return buf
}

// sealFrameCRC seals the frame like sealFrame and appends the CRC32-C of
// the payload, completing a version-3 frame. The checksum is computed
// before sealing moves the payload, so it covers exactly buf[body:].
func sealFrameCRC(buf []byte, start, body int) []byte {
	sum := crc32.Checksum(buf[body:], castagnoli)
	buf = sealFrame(buf, start, body)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// appendSyncMarker appends a version-3 sync marker frame recording that
// every entry up to and including lastSeq precedes it in the stream. The
// durable sink flushes and fsyncs after writing one, so recovery can trust
// that everything before a marker was meant to reach disk.
func appendSyncMarker(buf []byte, lastSeq int64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0)
	body := len(buf)
	buf = append(buf, 0x00) // the marker discriminator: entry seqs are >= 1
	buf = binary.AppendUvarint(buf, uint64(lastSeq))
	return sealFrameCRC(buf, start, body)
}

// isSyncMarker reports whether a frame payload is a sync marker rather
// than an entry: entry payloads begin with the uvarint of a sequence
// number >= 1, so a leading zero byte is unambiguous.
func isSyncMarker(payload []byte) bool { return len(payload) > 0 && payload[0] == 0x00 }

// decodeSyncMarker extracts the last-seq value of a marker payload.
func decodeSyncMarker(payload []byte) (lastSeq int64, ok bool) {
	if !isSyncMarker(payload) {
		return 0, false
	}
	v, n := binary.Uvarint(payload[1:])
	if n <= 0 || 1+n != len(payload) || v > 1<<62 {
		return 0, false
	}
	return int64(v), true
}

// appendPayload appends the payload encoding of e (no length prefix).
func appendPayload(buf []byte, e Entry) ([]byte, error) {
	if e.Seq < 0 {
		return buf, fmt.Errorf("negative seq %d", e.Seq)
	}
	buf = binary.AppendUvarint(buf, uint64(e.Seq))
	buf = binary.AppendVarint(buf, int64(e.Tid))
	var flags byte
	if e.Worker {
		flags |= flagWorker
	}
	if e.Label != "" {
		flags |= flagLabel
	}
	if e.WOp != "" {
		flags |= flagWOp
	}
	if e.Module != "" {
		flags |= flagModule
	}
	if e.Ret != nil {
		flags |= flagRet
	}
	if len(e.Args) > 0 {
		flags |= flagArgs
	}
	if len(e.WArgs) > 0 {
		flags |= flagWArgs
	}
	buf = append(buf, byte(e.Kind), flags)
	buf = appendString(buf, e.Method)
	if flags&flagLabel != 0 {
		buf = appendString(buf, e.Label)
	}
	if flags&flagWOp != 0 {
		buf = appendString(buf, e.WOp)
	}
	if flags&flagModule != 0 {
		buf = appendString(buf, e.Module)
	}
	var err error
	if flags&flagArgs != 0 {
		if buf, err = appendValues(buf, e.Args); err != nil {
			return buf, err
		}
	}
	if flags&flagRet != 0 {
		if buf, err = appendValue(buf, e.Ret); err != nil {
			return buf, err
		}
	}
	if flags&flagWArgs != 0 {
		if buf, err = appendValues(buf, e.WArgs); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValues(buf []byte, vs []Value) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	var err error
	for _, v := range vs {
		if buf, err = appendValue(buf, v); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

func appendValue(buf []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case int:
		return binary.AppendVarint(append(buf, tagInt), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(buf, tagInt64), x), nil
	case string:
		return appendString(append(buf, tagString), x), nil
	case bool:
		if x {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	case []byte:
		buf = binary.AppendUvarint(append(buf, tagBytes), uint64(len(x)))
		return append(buf, x...), nil
	case []int:
		buf = binary.AppendUvarint(append(buf, tagInts), uint64(len(x)))
		for _, n := range x {
			buf = binary.AppendVarint(buf, int64(n))
		}
		return buf, nil
	case []string:
		buf = binary.AppendUvarint(append(buf, tagStrings), uint64(len(x)))
		for _, s := range x {
			buf = appendString(buf, s)
		}
		return buf, nil
	case Exceptional:
		return appendString(append(buf, tagExceptional), x.Reason), nil
	default:
		// Registered custom type: self-contained gob blob. Cold path — the
		// default value vocabulary covers everything the built-in subjects
		// log.
		var blob bytes.Buffer
		if err := gob.NewEncoder(&blob).Encode(&v); err != nil {
			return buf, fmt.Errorf("encode value %T: %w (missing event.RegisterValue?)", v, err)
		}
		buf = binary.AppendUvarint(append(buf, tagGob), uint64(blob.Len()))
		return append(buf, blob.Bytes()...), nil
	}
}

// decodeEntry decodes one frame payload. Strings for Method/Label/WOp/Module
// resolve through the symbol interner, so steady-state decoding of a hot
// method name allocates nothing for those fields.
func decodeEntry(p []byte) (Entry, error) {
	var e Entry
	seq, p, err := takeUvarint(p)
	if err != nil {
		return e, fmt.Errorf("event: decode seq: %w", err)
	}
	e.Seq = int64(seq)
	tid, p, err := takeVarint(p)
	if err != nil {
		return e, fmt.Errorf("event: decode tid: %w", err)
	}
	e.Tid = int32(tid)
	if len(p) < 2 {
		return e, fmt.Errorf("event: decode entry #%d: truncated header", e.Seq)
	}
	e.Kind, p = Kind(p[0]), p[1:]
	flags := p[0]
	p = p[1:]
	e.Worker = flags&flagWorker != 0
	if e.Sym, e.Method, p, err = takeSym(p); err != nil {
		return e, fmt.Errorf("event: decode entry #%d method: %w", e.Seq, err)
	}
	if flags&flagLabel != 0 {
		if _, e.Label, p, err = takeSym(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d label: %w", e.Seq, err)
		}
	}
	if flags&flagWOp != 0 {
		if e.WSym, e.WOp, p, err = takeSym(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d wop: %w", e.Seq, err)
		}
	}
	if flags&flagModule != 0 {
		if e.Mod, e.Module, p, err = takeSym(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d module: %w", e.Seq, err)
		}
	}
	if flags&flagArgs != 0 {
		if e.Args, p, err = takeValues(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d args: %w", e.Seq, err)
		}
	}
	if flags&flagRet != 0 {
		if e.Ret, p, err = takeValue(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d ret: %w", e.Seq, err)
		}
	}
	if flags&flagWArgs != 0 {
		if e.WArgs, p, err = takeValues(p); err != nil {
			return e, fmt.Errorf("event: decode entry #%d wargs: %w", e.Seq, err)
		}
	}
	if len(p) != 0 {
		return e, fmt.Errorf("event: decode entry #%d: %d trailing bytes in frame", e.Seq, len(p))
	}
	return e, nil
}

var errTruncated = fmt.Errorf("truncated field")

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, errTruncated
	}
	return v, p[n:], nil
}

func takeVarint(p []byte) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, p, errTruncated
	}
	return v, p[n:], nil
}

// takeBytes takes a length-prefixed byte field, aliasing the frame buffer.
func takeBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, p, err
	}
	if uint64(len(p)) < n {
		return nil, p, errTruncated
	}
	return p[:n], p[n:], nil
}

// takeSym takes a length-prefixed string field through the interner: the
// returned string is the canonical interned copy, so decoding a hot name
// allocates nothing.
func takeSym(p []byte) (Sym, string, []byte, error) {
	b, p, err := takeBytes(p)
	if err != nil {
		return 0, "", p, err
	}
	s, name := internBytes(b)
	return s, name, p, nil
}

func takeString(p []byte) (string, []byte, error) {
	b, p, err := takeBytes(p)
	if err != nil {
		return "", p, err
	}
	return string(b), p, nil
}

func takeValues(p []byte) ([]Value, []byte, error) {
	n, p, err := takeUvarint(p)
	if err != nil {
		return nil, p, err
	}
	if n > uint64(len(p)) { // each value is at least one byte
		return nil, p, errTruncated
	}
	vs := make([]Value, n)
	for i := range vs {
		if vs[i], p, err = takeValue(p); err != nil {
			return nil, p, err
		}
	}
	return vs, p, nil
}

func takeValue(p []byte) (Value, []byte, error) {
	if len(p) == 0 {
		return nil, p, errTruncated
	}
	tag := p[0]
	p = p[1:]
	switch tag {
	case tagNil:
		return nil, p, nil
	case tagInt:
		v, p, err := takeVarint(p)
		return int(v), p, err
	case tagInt64:
		v, p, err := takeVarint(p)
		return v, p, err
	case tagString:
		v, p, err := takeString(p)
		return v, p, err
	case tagTrue:
		return true, p, nil
	case tagFalse:
		return false, p, nil
	case tagBytes:
		b, p, err := takeBytes(p)
		if err != nil {
			return nil, p, err
		}
		return append([]byte(nil), b...), p, nil
	case tagInts:
		n, p, err := takeUvarint(p)
		if err != nil {
			return nil, p, err
		}
		if n > uint64(len(p)) {
			return nil, p, errTruncated
		}
		ns := make([]int, n)
		for i := range ns {
			var v int64
			if v, p, err = takeVarint(p); err != nil {
				return nil, p, err
			}
			ns[i] = int(v)
		}
		return ns, p, nil
	case tagStrings:
		n, p, err := takeUvarint(p)
		if err != nil {
			return nil, p, err
		}
		if n > uint64(len(p)) {
			return nil, p, errTruncated
		}
		ss := make([]string, n)
		for i := range ss {
			if ss[i], p, err = takeString(p); err != nil {
				return nil, p, err
			}
		}
		return ss, p, nil
	case tagExceptional:
		reason, p, err := takeString(p)
		return Exceptional{Reason: reason}, p, err
	case tagGob:
		blob, p, err := takeBytes(p)
		if err != nil {
			return nil, p, err
		}
		var v Value
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			return nil, p, fmt.Errorf("gob value: %w", err)
		}
		return v, p, nil
	default:
		return nil, p, fmt.Errorf("unknown value tag %d", tag)
	}
}

// readUvarint reads a uvarint from br, distinguishing a clean EOF (no bytes)
// from a truncated prefix.
func readUvarint(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && i == 0 {
				return 0, io.EOF
			}
			return 0, io.ErrUnexpectedEOF
		}
		if shift >= 64 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
