package event

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// The paper's logging mechanism uses the binary object serialization of the
// .NET platform to restore record objects as they were saved at runtime
// (Section 6.1). This package plays the same role with two codecs:
//
//   - CodecBinary (format version 2, the default): a hand-rolled
//     length-prefixed framed encoding (see binary.go). Every record is an
//     independent frame, so offline replay can scan frame boundaries cheaply
//     and decode frames on a worker pool (see StreamParallel).
//   - CodecGob (format version 1): the original encoding/gob stream, kept for
//     reading old artifacts and as the A/B comparison point in benchmarks.
//
// Persisted streams start with a fixed header (magic + format version); the
// version byte identifies the codec. Entry layout drift — a field added to
// Entry, a renumbered kind — then fails decoding with an explicit "log format
// version mismatch" instead of an opaque decode error deep in the stream.
// Bump FormatVersion whenever the binary wire shape of Entry changes;
// committed artifacts are regenerated with `go generate ./vyrd` (see
// cmd/genfig6).

// FormatVersion is the current (binary-codec) log stream format. Version
// history:
//
//	1: initial versioned format (header + gob-encoded Entry records)
//	2: length-prefixed framed binary records (binary.go), gob retained
//	   behind CodecGob for old-log reads and A/B benchmarks
const FormatVersion = 2

// formatVersionGob is the stream version written and read by CodecGob.
const formatVersionGob = 1

// formatMagic identifies a VYRD log stream; the byte after it carries the
// format version.
const formatMagic = "VYRDLOG"

// ErrFormatMismatch reports that a stream is not a VYRD log of the version
// this decoder reads. Use errors.Is to detect it.
var ErrFormatMismatch = errors.New("log format version mismatch")

// Codec selects the stream encoding.
type Codec uint8

const (
	// CodecBinary is the current framed binary encoding (format version 2).
	CodecBinary Codec = iota
	// CodecGob is the legacy encoding/gob stream (format version 1).
	CodecGob
)

// String returns the codec name as used in benchmarks and CLI flags.
func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// version returns the header version byte a codec writes and accepts.
func (c Codec) version() byte {
	if c == CodecGob {
		return formatVersionGob
	}
	return FormatVersion
}

func init() {
	// Concrete types that may appear in Entry.Args/Entry.Ret. Anything else
	// must be registered by the package that logs it (RegisterValue). The
	// binary codec encodes these natively and falls back to a per-value gob
	// blob for registered custom types.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]string(nil))
	gob.Register(Exceptional{})
}

// RegisterValue registers a concrete value type for log persistence. It must
// be called (typically from an init function) by any package that logs
// values of types not covered by the defaults.
func RegisterValue(v Value) { gob.Register(v) }

// Encoder serializes entries to a stream, prefixed with the format header.
type Encoder struct {
	w      io.Writer
	codec  Codec
	enc    *gob.Encoder // CodecGob only
	buf    []byte       // CodecBinary frame scratch
	headed bool
}

// NewEncoder returns an Encoder writing the current binary format to w. The
// header is written lazily with the first entry, so constructing an encoder
// performs no I/O.
func NewEncoder(w io.Writer) *Encoder { return NewEncoderCodec(w, CodecBinary) }

// NewEncoderCodec returns an Encoder writing the chosen codec to w.
func NewEncoderCodec(w io.Writer, c Codec) *Encoder {
	e := &Encoder{w: w, codec: c}
	if c == CodecGob {
		e.enc = gob.NewEncoder(w)
	}
	return e
}

// Encode appends one entry to the stream.
func (e *Encoder) Encode(entry Entry) error {
	if !e.headed {
		if _, err := e.w.Write(append([]byte(formatMagic), e.codec.version())); err != nil {
			return fmt.Errorf("event: write stream header: %w", err)
		}
		e.headed = true
	}
	if e.codec == CodecGob {
		// Symbol ids are process-local; never let them reach the wire.
		entry.Sym, entry.WSym, entry.Mod = 0, 0, 0
		if err := e.enc.Encode(entry); err != nil {
			return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
		}
		return nil
	}
	buf, err := appendFrame(e.buf[:0], entry)
	if err != nil {
		return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
	}
	e.buf = buf // keep the grown scratch for the next entry
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("event: write entry #%d: %w", entry.Seq, err)
	}
	return nil
}

// Decoder deserializes entries from a stream produced by Encoder. A Decoder
// reads exactly one codec: the default binary Decoder rejects version-1
// (gob) streams with ErrFormatMismatch, and vice versa — old artifacts are
// read explicitly with NewDecoderCodec(r, CodecGob).
type Decoder struct {
	r      io.Reader
	codec  Codec
	dec    *gob.Decoder  // CodecGob only
	br     *bufio.Reader // CodecBinary only
	buf    []byte        // CodecBinary payload scratch
	headed bool
}

// NewDecoder returns a Decoder reading the current binary format from r.
func NewDecoder(r io.Reader) *Decoder { return NewDecoderCodec(r, CodecBinary) }

// NewDecoderCodec returns a Decoder reading the chosen codec from r.
func NewDecoderCodec(r io.Reader, c Codec) *Decoder {
	d := &Decoder{r: r, codec: c}
	if c == CodecGob {
		d.dec = gob.NewDecoder(r)
	} else {
		if br, ok := r.(*bufio.Reader); ok {
			d.br = br
		} else {
			d.br = bufio.NewReaderSize(r, 1<<16)
		}
	}
	return d
}

// readHeader consumes and validates the stream header against rd, the
// reader the stream bytes come from.
func readHeader(rd io.Reader, c Codec) error {
	hdr := make([]byte, len(formatMagic)+1)
	n, err := io.ReadFull(rd, hdr)
	if err == io.EOF && n == 0 {
		return io.EOF // empty stream: no entries, not a format error
	}
	if err != nil {
		return fmt.Errorf("event: %w: stream too short for a VYRDLOG header", ErrFormatMismatch)
	}
	if string(hdr[:len(formatMagic)]) != formatMagic {
		return fmt.Errorf("event: %w: stream has no VYRDLOG header (pre-versioning artifact? regenerate it, e.g. go generate ./vyrd)", ErrFormatMismatch)
	}
	if v := hdr[len(formatMagic)]; v != c.version() {
		return fmt.Errorf("event: %w: stream has format version %d, this %s decoder reads version %d",
			ErrFormatMismatch, v, c, c.version())
	}
	return nil
}

// Decode reads the next entry. It returns io.EOF at end of stream. Decoded
// entries carry freshly interned Sym/WSym/Mod ids.
func (d *Decoder) Decode() (Entry, error) {
	if !d.headed {
		rd := d.r
		if d.br != nil {
			rd = d.br
		}
		if err := readHeader(rd, d.codec); err != nil {
			return Entry{}, err
		}
		d.headed = true
	}
	if d.codec == CodecGob {
		var entry Entry
		if err := d.dec.Decode(&entry); err != nil {
			if err == io.EOF {
				return Entry{}, io.EOF
			}
			return Entry{}, fmt.Errorf("event: decode entry: %w", err)
		}
		entry.Intern()
		return entry, nil
	}
	payload, err := readFrame(d.br, &d.buf)
	if err != nil {
		return Entry{}, err
	}
	entry, err := decodeEntry(payload)
	if err != nil {
		return Entry{}, err
	}
	return entry, nil
}

// readFrame reads one length-prefixed frame into *scratch (grown as needed)
// and returns the payload slice, valid until the next call.
func readFrame(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	size, err := readUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("event: read frame length: %w", err)
	}
	if size > maxFrameSize {
		return nil, fmt.Errorf("event: frame length %d exceeds limit %d (corrupt stream?)", size, maxFrameSize)
	}
	if uint64(cap(*scratch)) < size {
		*scratch = make([]byte, size, size*2)
	}
	payload := (*scratch)[:size]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("event: read frame payload: %w", err)
	}
	return payload, nil
}

// DecodeAll reads every remaining entry from the stream.
func (d *Decoder) DecodeAll() ([]Entry, error) {
	var entries []Entry
	for {
		e, err := d.Decode()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return entries, err
		}
		entries = append(entries, e)
	}
}
