package event

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// The paper's logging mechanism uses the binary object serialization of the
// .NET platform to restore record objects as they were saved at runtime
// (Section 6.1). This codec plays the same role with encoding/gob.
//
// Persisted streams start with a fixed header (magic + format version).
// Entry layout drift — a field added to Entry, a renumbered kind — then
// fails decoding with an explicit "log format version mismatch" instead of
// an opaque "gob: bad data" deep in the stream. Bump FormatVersion whenever
// the wire shape of Entry changes; committed artifacts are regenerated with
// `go generate ./vyrd` (see cmd/genfig6).

// FormatVersion is the current log stream format. Version history:
//
//	1: initial versioned format (header + gob-encoded Entry records)
const FormatVersion = 1

// formatMagic identifies a VYRD log stream; the byte after it carries the
// format version.
const formatMagic = "VYRDLOG"

// ErrFormatMismatch reports that a stream is not a VYRD log of the version
// this build reads. Use errors.Is to detect it.
var ErrFormatMismatch = errors.New("log format version mismatch")

func init() {
	// Concrete types that may appear in Entry.Args/Entry.Ret. Anything else
	// must be registered by the package that logs it (RegisterValue).
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]string(nil))
	gob.Register(Exceptional{})
}

// RegisterValue registers a concrete value type for log persistence. It must
// be called (typically from an init function) by any package that logs
// values of types not covered by the defaults.
func RegisterValue(v Value) { gob.Register(v) }

// Encoder serializes entries to a stream, prefixed with the format header.
type Encoder struct {
	w      io.Writer
	enc    *gob.Encoder
	headed bool
}

// NewEncoder returns an Encoder writing to w. The header is written lazily
// with the first entry, so constructing an encoder performs no I/O.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, enc: gob.NewEncoder(w)}
}

// Encode appends one entry to the stream.
func (e *Encoder) Encode(entry Entry) error {
	if !e.headed {
		if _, err := e.w.Write(append([]byte(formatMagic), FormatVersion)); err != nil {
			return fmt.Errorf("event: write stream header: %w", err)
		}
		e.headed = true
	}
	if err := e.enc.Encode(entry); err != nil {
		return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
	}
	return nil
}

// Decoder deserializes entries from a stream produced by Encoder.
type Decoder struct {
	r      io.Reader
	dec    *gob.Decoder
	headed bool
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, dec: gob.NewDecoder(r)}
}

// readHeader consumes and validates the stream header.
func (d *Decoder) readHeader() error {
	hdr := make([]byte, len(formatMagic)+1)
	n, err := io.ReadFull(d.r, hdr)
	if err == io.EOF && n == 0 {
		return io.EOF // empty stream: no entries, not a format error
	}
	if err != nil {
		return fmt.Errorf("event: %w: stream too short for a VYRDLOG header", ErrFormatMismatch)
	}
	if string(hdr[:len(formatMagic)]) != formatMagic {
		return fmt.Errorf("event: %w: stream has no VYRDLOG header (pre-versioning artifact? regenerate it, e.g. go generate ./vyrd)", ErrFormatMismatch)
	}
	if v := hdr[len(formatMagic)]; v != FormatVersion {
		return fmt.Errorf("event: %w: stream has format version %d, this build reads version %d", ErrFormatMismatch, v, FormatVersion)
	}
	d.headed = true
	return nil
}

// Decode reads the next entry. It returns io.EOF at end of stream.
func (d *Decoder) Decode() (Entry, error) {
	if !d.headed {
		if err := d.readHeader(); err != nil {
			return Entry{}, err
		}
	}
	var entry Entry
	if err := d.dec.Decode(&entry); err != nil {
		if err == io.EOF {
			return Entry{}, io.EOF
		}
		return Entry{}, fmt.Errorf("event: decode entry: %w", err)
	}
	return entry, nil
}

// DecodeAll reads every remaining entry from the stream.
func (d *Decoder) DecodeAll() ([]Entry, error) {
	var entries []Entry
	for {
		e, err := d.Decode()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return entries, err
		}
		entries = append(entries, e)
	}
}
