package event

import (
	"encoding/gob"
	"fmt"
	"io"
)

// The paper's logging mechanism uses the binary object serialization of the
// .NET platform to restore record objects as they were saved at runtime
// (Section 6.1). This codec plays the same role with encoding/gob.

func init() {
	// Concrete types that may appear in Entry.Args/Entry.Ret. Anything else
	// must be registered by the package that logs it (RegisterValue).
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]string(nil))
	gob.Register(Exceptional{})
}

// RegisterValue registers a concrete value type for log persistence. It must
// be called (typically from an init function) by any package that logs
// values of types not covered by the defaults.
func RegisterValue(v Value) { gob.Register(v) }

// Encoder serializes entries to a stream.
type Encoder struct {
	enc *gob.Encoder
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{enc: gob.NewEncoder(w)}
}

// Encode appends one entry to the stream.
func (e *Encoder) Encode(entry Entry) error {
	if err := e.enc.Encode(entry); err != nil {
		return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
	}
	return nil
}

// Decoder deserializes entries from a stream produced by Encoder.
type Decoder struct {
	dec *gob.Decoder
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: gob.NewDecoder(r)}
}

// Decode reads the next entry. It returns io.EOF at end of stream.
func (d *Decoder) Decode() (Entry, error) {
	var entry Entry
	if err := d.dec.Decode(&entry); err != nil {
		if err == io.EOF {
			return Entry{}, io.EOF
		}
		return Entry{}, fmt.Errorf("event: decode entry: %w", err)
	}
	return entry, nil
}

// DecodeAll reads every remaining entry from the stream.
func (d *Decoder) DecodeAll() ([]Entry, error) {
	var entries []Entry
	for {
		e, err := d.Decode()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return entries, err
		}
		entries = append(entries, e)
	}
}
