package event

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// The paper's logging mechanism uses the binary object serialization of the
// .NET platform to restore record objects as they were saved at runtime
// (Section 6.1). This package plays the same role with three codecs:
//
//   - CodecBinary (format version 3, the default): the hand-rolled
//     length-prefixed framed encoding (see binary.go) with a trailing
//     CRC32-C per frame and periodic sync markers for crash recovery.
//     Every record is an independent frame, so offline replay can scan
//     frame boundaries cheaply and decode frames on a worker pool (see
//     StreamParallel).
//   - CodecBinaryV2 (format version 2): the same framing without checksums
//     or markers; kept for regenerating old artifacts and as the CRC
//     overhead A/B point in benchmarks.
//   - CodecGob (format version 1): the original encoding/gob stream, kept
//     for reading old artifacts.
//
// Persisted streams start with a fixed header (magic + format version); the
// version byte identifies the codec. The binary decoders read both versions
// 2 and 3 (a per-stream flag tracks whether frames carry checksums), so old
// v2 artifacts stay readable. Entry layout drift — a field added to Entry,
// a renumbered kind — fails decoding with an explicit "log format version
// mismatch" instead of an opaque decode error deep in the stream. Bump
// FormatVersion whenever the binary wire shape of Entry changes; committed
// artifacts are regenerated with `go generate ./vyrd` (see cmd/genfig6).

// FormatVersion is the current (binary-codec) log stream format. Version
// history:
//
//	1: initial versioned format (header + gob-encoded Entry records)
//	2: length-prefixed framed binary records (binary.go), gob retained
//	   behind CodecGob for old-log reads and A/B benchmarks
//	3: version 2 plus a trailing CRC32-C per frame and sync marker frames,
//	   enabling torn-tail recovery (wal.Recover); version 2 stays readable
const FormatVersion = 3

// formatVersionGob is the stream version written and read by CodecGob.
const formatVersionGob = 1

// formatVersionBinaryV2 is the pre-checksum framed binary stream version.
const formatVersionBinaryV2 = 2

// formatMagic identifies a VYRD log stream; the byte after it carries the
// format version.
const formatMagic = "VYRDLOG"

// ErrFormatMismatch reports that a stream is not a VYRD log of the version
// this decoder reads. Use errors.Is to detect it.
var ErrFormatMismatch = errors.New("log format version mismatch")

// Codec selects the stream encoding.
type Codec uint8

const (
	// CodecBinary is the current framed binary encoding (format version 3:
	// per-frame CRC32-C + sync markers).
	CodecBinary Codec = iota
	// CodecGob is the legacy encoding/gob stream (format version 1).
	CodecGob
	// CodecBinaryV2 is the pre-checksum framed binary encoding (format
	// version 2), kept for regenerating old artifacts and measuring the
	// checksum overhead.
	CodecBinaryV2
)

// String returns the codec name as used in benchmarks and CLI flags.
func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinaryV2:
		return "binary-v2"
	}
	return "binary"
}

// version returns the header version byte a codec writes.
func (c Codec) version() byte {
	switch c {
	case CodecGob:
		return formatVersionGob
	case CodecBinaryV2:
		return formatVersionBinaryV2
	}
	return FormatVersion
}

// reads reports whether a decoder of codec c accepts a stream of header
// version v. The binary decoders read both the checksummed (3) and the
// pre-checksum (2) framing; gob is exactly version 1.
func (c Codec) reads(v byte) bool {
	if c == CodecGob {
		return v == formatVersionGob
	}
	return v == formatVersionBinaryV2 || v == FormatVersion
}

func init() {
	// Concrete types that may appear in Entry.Args/Entry.Ret. Anything else
	// must be registered by the package that logs it (RegisterValue). The
	// binary codec encodes these natively and falls back to a per-value gob
	// blob for registered custom types.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]byte(nil))
	gob.Register([]int(nil))
	gob.Register([]string(nil))
	gob.Register(Exceptional{})
}

// RegisterValue registers a concrete value type for log persistence. It must
// be called (typically from an init function) by any package that logs
// values of types not covered by the defaults.
func RegisterValue(v Value) { gob.Register(v) }

// Encoder serializes entries to a stream, prefixed with the format header.
type Encoder struct {
	w      io.Writer
	codec  Codec
	enc    *gob.Encoder // CodecGob only
	buf    []byte       // CodecBinary frame scratch
	headed bool
}

// NewEncoder returns an Encoder writing the current binary format to w. The
// header is written lazily with the first entry, so constructing an encoder
// performs no I/O.
func NewEncoder(w io.Writer) *Encoder { return NewEncoderCodec(w, CodecBinary) }

// NewEncoderCodec returns an Encoder writing the chosen codec to w.
func NewEncoderCodec(w io.Writer, c Codec) *Encoder {
	e := &Encoder{w: w, codec: c}
	if c == CodecGob {
		e.enc = gob.NewEncoder(w)
	}
	return e
}

// writeHeader emits the stream header once, before the first record.
func (e *Encoder) writeHeader() error {
	if _, err := e.w.Write(append([]byte(formatMagic), e.codec.version())); err != nil {
		return fmt.Errorf("event: write stream header: %w", err)
	}
	e.headed = true
	return nil
}

// Encode appends one entry to the stream.
func (e *Encoder) Encode(entry Entry) error {
	if !e.headed {
		if err := e.writeHeader(); err != nil {
			return err
		}
	}
	if e.codec == CodecGob {
		// Symbol ids are process-local; never let them reach the wire.
		entry.Sym, entry.WSym, entry.Mod = 0, 0, 0
		if err := e.enc.Encode(entry); err != nil {
			return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
		}
		return nil
	}
	var buf []byte
	var err error
	if e.codec == CodecBinaryV2 {
		buf, err = appendFrameNoCRC(e.buf[:0], entry)
	} else {
		buf, err = appendFrame(e.buf[:0], entry)
	}
	if err != nil {
		return fmt.Errorf("event: encode entry #%d: %w", entry.Seq, err)
	}
	e.buf = buf // keep the grown scratch for the next entry
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("event: write entry #%d: %w", entry.Seq, err)
	}
	return nil
}

// SyncMarker appends a sync marker frame recording that every entry with
// sequence number <= lastSeq precedes it in the stream. Markers exist only
// in the version-3 format; for other codecs — and before any entry has
// been written — SyncMarker is a no-op, so callers can emit markers on a
// fixed cadence without caring which codec is attached.
func (e *Encoder) SyncMarker(lastSeq int64) error {
	if e.codec != CodecBinary || !e.headed {
		return nil
	}
	buf := appendSyncMarker(e.buf[:0], lastSeq)
	e.buf = buf
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("event: write sync marker: %w", err)
	}
	return nil
}

// Decoder deserializes entries from a stream produced by Encoder. A Decoder
// reads exactly one codec: the default binary Decoder rejects version-1
// (gob) streams with ErrFormatMismatch, and vice versa — old artifacts are
// read explicitly with NewDecoderCodec(r, CodecGob).
type Decoder struct {
	r      io.Reader
	codec  Codec
	dec    *gob.Decoder  // CodecGob only
	br     *bufio.Reader // binary codecs only
	buf    []byte        // binary payload scratch
	headed bool
	crc    bool // stream is version 3: frames checksummed, markers present
}

// NewDecoder returns a Decoder reading the current binary format from r.
func NewDecoder(r io.Reader) *Decoder { return NewDecoderCodec(r, CodecBinary) }

// NewDecoderCodec returns a Decoder reading the chosen codec from r.
func NewDecoderCodec(r io.Reader, c Codec) *Decoder {
	d := &Decoder{r: r, codec: c}
	if c == CodecGob {
		d.dec = gob.NewDecoder(r)
	} else {
		if br, ok := r.(*bufio.Reader); ok {
			d.br = br
		} else {
			d.br = bufio.NewReaderSize(r, 1<<16)
		}
	}
	return d
}

// readHeader consumes and validates the stream header against rd, the
// reader the stream bytes come from, and returns the stream's format
// version (the binary decoders accept more than one).
func readHeader(rd io.Reader, c Codec) (byte, error) {
	hdr := make([]byte, len(formatMagic)+1)
	n, err := io.ReadFull(rd, hdr)
	if err == io.EOF && n == 0 {
		return 0, io.EOF // empty stream: no entries, not a format error
	}
	if err != nil {
		return 0, fmt.Errorf("event: %w: stream too short for a VYRDLOG header", ErrFormatMismatch)
	}
	if string(hdr[:len(formatMagic)]) != formatMagic {
		return 0, fmt.Errorf("event: %w: stream has no VYRDLOG header (pre-versioning artifact? regenerate it, e.g. go generate ./vyrd)", ErrFormatMismatch)
	}
	v := hdr[len(formatMagic)]
	if !c.reads(v) {
		if c == CodecGob {
			return 0, fmt.Errorf("event: %w: stream has format version %d, this %s decoder reads version %d",
				ErrFormatMismatch, v, c, formatVersionGob)
		}
		return 0, fmt.Errorf("event: %w: stream has format version %d, this %s decoder reads versions %d-%d",
			ErrFormatMismatch, v, c, formatVersionBinaryV2, FormatVersion)
	}
	return v, nil
}

// Decode reads the next entry, transparently skipping sync marker frames.
// It returns io.EOF at end of stream. Decoded entries carry freshly
// interned Sym/WSym/Mod ids.
func (d *Decoder) Decode() (Entry, error) {
	if !d.headed {
		rd := d.r
		if d.br != nil {
			rd = d.br
		}
		v, err := readHeader(rd, d.codec)
		if err != nil {
			return Entry{}, err
		}
		d.headed = true
		d.crc = v == FormatVersion
	}
	if d.codec == CodecGob {
		var entry Entry
		if err := d.dec.Decode(&entry); err != nil {
			if err == io.EOF {
				return Entry{}, io.EOF
			}
			return Entry{}, fmt.Errorf("event: decode entry: %w", err)
		}
		entry.Intern()
		return entry, nil
	}
	for {
		payload, err := readFrame(d.br, &d.buf, d.crc)
		if err != nil {
			return Entry{}, err
		}
		if d.crc && isSyncMarker(payload) {
			if _, ok := decodeSyncMarker(payload); !ok {
				return Entry{}, fmt.Errorf("event: malformed sync marker frame")
			}
			continue
		}
		entry, err := decodeEntry(payload)
		if err != nil {
			return Entry{}, err
		}
		return entry, nil
	}
}

// readFrame reads one length-prefixed frame into *scratch (grown as needed)
// and returns the payload slice, valid until the next call. With crc set
// the trailing checksum is read alongside the payload and verified.
func readFrame(br *bufio.Reader, scratch *[]byte, crc bool) ([]byte, error) {
	size, err := readUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("event: read frame length: %w", err)
	}
	if size > maxFrameSize {
		return nil, fmt.Errorf("event: frame length %d exceeds limit %d (corrupt stream?)", size, maxFrameSize)
	}
	whole := size
	if crc {
		whole += frameCRCSize
	}
	if uint64(cap(*scratch)) < whole {
		*scratch = make([]byte, whole, whole*2)
	}
	buf := (*scratch)[:whole]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("event: read frame payload: %w", err)
	}
	payload := buf[:size]
	if crc {
		if err := verifyFrameCRC(payload, buf[size:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// DecodeAll reads every remaining entry from the stream.
func (d *Decoder) DecodeAll() ([]Entry, error) {
	var entries []Entry
	for {
		e, err := d.Decode()
		if err == io.EOF {
			return entries, nil
		}
		if err != nil {
			return entries, err
		}
		entries = append(entries, e)
	}
}
