package event

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Equal compares two logged values structurally. It fast-paths the small set
// of types that appear in practice (integers, strings, booleans, byte
// slices, Exceptional) and falls back to reflect.DeepEqual for the rest.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch av := a.(type) {
	case int:
		bv, ok := b.(int)
		return ok && av == bv
	case int64:
		bv, ok := b.(int64)
		return ok && av == bv
	case uint64:
		bv, ok := b.(uint64)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case []byte:
		bv, ok := b.([]byte)
		return ok && string(av) == string(bv)
	case Exceptional:
		bv, ok := b.(Exceptional)
		return ok && av == bv
	}
	return reflect.DeepEqual(a, b)
}

// Format renders a value canonically, so that digests and diagnostics are
// stable across runs. Maps are rendered with sorted keys.
func Format(v Value) string {
	switch vv := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return fmt.Sprintf("%q", vv)
	case []byte:
		return fmt.Sprintf("0x%x", vv)
	case Exceptional:
		return "exceptional(" + vv.Reason + ")"
	case map[string]string:
		keys := make([]string, 0, len(vv))
		for k := range vv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%s", k, vv[k])
		}
		b.WriteByte('}')
		return b.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Int extracts an int from a logged value, accepting the integer widths the
// gob codec may round-trip through. ok is false for non-integer values.
func Int(v Value) (n int, ok bool) {
	switch vv := v.(type) {
	case int:
		return vv, true
	case int8:
		return int(vv), true
	case int16:
		return int(vv), true
	case int32:
		return int(vv), true
	case int64:
		return int(vv), true
	}
	return 0, false
}

// MustInt is Int for values the caller knows to be integers; it panics with
// a descriptive message otherwise. Intended for spec/replayer code decoding
// entries it produced itself.
func MustInt(v Value) int {
	n, ok := Int(v)
	if !ok {
		panic(fmt.Sprintf("event: value %v (%T) is not an integer", v, v))
	}
	return n
}

// String extracts a string from a logged value.
func String(v Value) (s string, ok bool) {
	s, ok = v.(string)
	return s, ok
}

// MustString is String for values the caller knows to be strings.
func MustString(v Value) string {
	s, ok := v.(string)
	if !ok {
		panic(fmt.Sprintf("event: value %v (%T) is not a string", v, v))
	}
	return s
}

// Bytes extracts a byte slice from a logged value.
func Bytes(v Value) (b []byte, ok bool) {
	b, ok = v.([]byte)
	return b, ok
}

// MustBytes is Bytes for values the caller knows to be byte slices.
func MustBytes(v Value) []byte {
	b, ok := v.([]byte)
	if !ok {
		panic(fmt.Sprintf("event: value %v (%T) is not a byte slice", v, v))
	}
	return b
}

// Bool extracts a bool from a logged value.
func Bool(v Value) (b, ok bool) {
	b, ok = v.(bool)
	return b, ok
}

// MustBool is Bool for values the caller knows to be booleans.
func MustBool(v Value) bool {
	b, ok := v.(bool)
	if !ok {
		panic(fmt.Sprintf("event: value %v (%T) is not a bool", v, v))
	}
	return b
}

// CloneBytes copies b. Implementations must log snapshots, not aliases, of
// mutable buffers: the log records observed values (DESIGN.md Section 3),
// and an aliased buffer could be mutated after the entry is appended.
func CloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
