package event

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Exported frame surface of the binary codec (format version 3), for
// consumers that embed entry frames inside their own framing instead of
// reading a whole VYRDLOG stream — the remote verification protocol ships
// batches of entry frames as the payload of its data frames, with the
// format version negotiated once in the handshake rather than carried in a
// per-stream header.

// AppendEntryFrame appends the framed binary encoding of e (uvarint
// payload-length prefix + payload + CRC32-C, exactly the record shape of a
// FormatVersion-3 VYRDLOG stream) to buf and returns the extended buffer.
func AppendEntryFrame(buf []byte, e Entry) ([]byte, error) {
	return appendFrame(buf, e)
}

// DecodeEntryFrame decodes the first entry frame in p and returns the entry
// and the remaining bytes. Any truncation — a cut inside the length prefix,
// the payload, or the trailing checksum — is reported as ErrShortFrame so
// stream reassembly can wait for more bytes; other errors (including a
// checksum mismatch) mean the stream is corrupt.
func DecodeEntryFrame(p []byte) (Entry, []byte, error) {
	size, n := binary.Uvarint(p)
	if n == 0 {
		return Entry{}, p, ErrShortFrame
	}
	if n < 0 {
		return Entry{}, p, fmt.Errorf("event: malformed frame length prefix")
	}
	if size > maxFrameSize {
		return Entry{}, p, fmt.Errorf("event: frame length %d exceeds limit %d (corrupt stream?)", size, maxFrameSize)
	}
	rest := p[n:]
	if uint64(len(rest)) < size+frameCRCSize {
		return Entry{}, p, ErrShortFrame
	}
	payload := rest[:size]
	if err := verifyFrameCRC(payload, rest[size:size+frameCRCSize]); err != nil {
		return Entry{}, p, err
	}
	e, err := decodeEntry(payload)
	if err != nil {
		return Entry{}, p, err
	}
	return e, rest[size+frameCRCSize:], nil
}

// verifyFrameCRC checks a frame payload against its trailing checksum
// bytes (little-endian CRC32-C).
func verifyFrameCRC(payload, crc []byte) error {
	want := binary.LittleEndian.Uint32(crc)
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return fmt.Errorf("event: frame checksum mismatch (got %08x, want %08x): corrupt stream", got, want)
	}
	return nil
}

// ErrShortFrame reports that a buffer ends before the frame it starts is
// complete (a torn read); the caller should retry with more bytes.
var ErrShortFrame = fmt.Errorf("event: short frame")
