package event

import (
	"encoding/binary"
	"fmt"
)

// Exported frame surface of the binary codec (format version 2), for
// consumers that embed entry frames inside their own framing instead of
// reading a whole VYRDLOG stream — the remote verification protocol ships
// batches of entry frames as the payload of its data frames, with the
// format version negotiated once in the handshake rather than carried in a
// per-stream header.

// AppendEntryFrame appends the framed binary encoding of e (uvarint
// payload-length prefix + payload, exactly the record shape of a
// FormatVersion-2 VYRDLOG stream) to buf and returns the extended buffer.
func AppendEntryFrame(buf []byte, e Entry) ([]byte, error) {
	return appendFrame(buf, e)
}

// DecodeEntryFrame decodes the first entry frame in p and returns the entry
// and the remaining bytes. Any truncation — a cut inside the length prefix
// or inside the payload — is reported as ErrShortFrame so stream reassembly
// can wait for more bytes; other errors mean the stream is corrupt.
func DecodeEntryFrame(p []byte) (Entry, []byte, error) {
	size, n := binary.Uvarint(p)
	if n == 0 {
		return Entry{}, p, ErrShortFrame
	}
	if n < 0 {
		return Entry{}, p, fmt.Errorf("event: malformed frame length prefix")
	}
	if size > maxFrameSize {
		return Entry{}, p, fmt.Errorf("event: frame length %d exceeds limit %d (corrupt stream?)", size, maxFrameSize)
	}
	rest := p[n:]
	if uint64(len(rest)) < size {
		return Entry{}, p, ErrShortFrame
	}
	e, err := decodeEntry(rest[:size])
	if err != nil {
		return Entry{}, p, err
	}
	return e, rest[size:], nil
}

// ErrShortFrame reports that a buffer ends before the frame it starts is
// complete (a torn read); the caller should retry with more bytes.
var ErrShortFrame = fmt.Errorf("event: short frame")
