package event

import (
	"sync"
	"sync/atomic"
)

// Symbol interning gives method names, write-op names and module tags dense
// process-local integer identities. Probes intern at log time and decoders
// re-intern after reading, so the checker's hot path (mutator
// classification, per-space view updates) can key by small integers instead
// of hashing strings. Symbol IDs are process-local by construction: they are
// never persisted, and every consumer of a decoded entry sees freshly
// re-interned IDs (see Entry.Intern).

// Sym is a process-local interned name. The zero Sym means "no symbol";
// real symbols start at 1 and stay dense, so slices indexed by Sym work as
// per-symbol caches.
type Sym uint32

// symState is an immutable interner snapshot. Lookups read the current
// snapshot without locking; interning a new name copies it under symMu and
// publishes the successor, so steady-state decode never contends.
type symState struct {
	ids   map[string]Sym
	names []string // names[s-1] is the canonical string for Sym s
}

var symTab atomic.Pointer[symState]
var symMu sync.Mutex

func init() {
	symTab.Store(&symState{ids: map[string]Sym{}})
}

// InternSym returns the dense id for name, allocating one on first use.
// The empty string interns to the zero Sym.
func InternSym(name string) Sym {
	if name == "" {
		return 0
	}
	if s, ok := symTab.Load().ids[name]; ok {
		return s
	}
	s, _ := internSlow(name)
	return s
}

// internBytes is InternSym for a transient byte slice (a decoder's reusable
// frame buffer). The common hit path performs no allocation: Go elides the
// []byte→string conversion used only as a map key, and the canonical string
// comes from the interner, not from b.
func internBytes(b []byte) (Sym, string) {
	if len(b) == 0 {
		return 0, ""
	}
	st := symTab.Load()
	if s, ok := st.ids[string(b)]; ok {
		return s, st.names[s-1]
	}
	return internSlow(string(b))
}

// internSlow registers a new name, copying the snapshot so concurrent
// readers keep lock-free access.
func internSlow(name string) (Sym, string) {
	symMu.Lock()
	defer symMu.Unlock()
	st := symTab.Load()
	if s, ok := st.ids[name]; ok { // raced with another interner
		return s, st.names[s-1]
	}
	next := &symState{
		ids:   make(map[string]Sym, len(st.ids)+1),
		names: make([]string, len(st.names), len(st.names)+1),
	}
	for k, v := range st.ids {
		next.ids[k] = v
	}
	copy(next.names, st.names)
	next.names = append(next.names, name)
	s := Sym(len(next.names))
	next.ids[name] = s
	symTab.Store(next)
	return s, name
}

// Name returns the interned string for s, or "" for the zero Sym.
func (s Sym) Name() string {
	if s == 0 {
		return ""
	}
	st := symTab.Load()
	if int(s) > len(st.names) {
		return ""
	}
	return st.names[s-1]
}

// NumSyms returns the number of interned symbols; Sym values are always in
// [1, NumSyms]. Per-symbol caches size themselves from this.
func NumSyms() int { return len(symTab.Load().names) }
