package event

import "encoding/binary"

// Torn-tail recovery scanner. A crashed producer leaves a log file whose
// tail may be cut mid-frame (the kernel flushed a partial page) or contain
// garbage past the last fsync'd sync marker. ScanRecover walks the framed
// binary stream from the front and finds the longest prefix that is fully
// valid: header intact, every frame complete with a matching checksum
// (version 3), every entry decodable with contiguous sequence numbers from
// 1, every sync marker consistent with the entries before it. Everything
// after that prefix is the torn tail; wal.Recover truncates it away.

// ScanResult describes the valid prefix ScanRecover found.
type ScanResult struct {
	// Version is the stream's format version byte (0 when the input has no
	// readable VYRDLOG header at all).
	Version byte
	// Entries holds the decoded entries of the valid prefix, in order.
	Entries []Entry
	// Frames counts the valid frames kept (entries plus sync markers).
	Frames int
	// SyncMarkers counts the sync marker frames within the prefix.
	SyncMarkers int
	// LastSeq is the sequence number of the last kept entry (0 if none).
	LastSeq int64
	// BytesKept is the length of the valid prefix. A reader handed exactly
	// data[:BytesKept] decodes it without error.
	BytesKept int64
	// BadOffset is the offset of the first byte that could not be
	// validated, or -1 when the entire input is a valid stream.
	BadOffset int64
}

// Clean reports whether the whole input was valid (nothing to truncate).
func (r ScanResult) Clean() bool { return r.BadOffset < 0 }

// headerSize is the byte length of the VYRDLOG stream header.
const headerSize = len(formatMagic) + 1

// ScanRecover scans data as a framed binary VYRDLOG stream and returns its
// longest valid prefix. It never panics on arbitrary input. Inputs without
// a readable binary-format header (too short, wrong magic, a gob version-1
// stream, an unknown version byte) yield BytesKept == 0; the caller
// decides what that means — wal.Recover refuses to touch version-1 files
// rather than truncating a readable artifact to nothing.
func ScanRecover(data []byte) ScanResult {
	res := ScanResult{BadOffset: -1}
	if len(data) == 0 {
		return res // an empty file is a valid empty stream
	}
	if len(data) < headerSize || string(data[:len(formatMagic)]) != formatMagic {
		res.BadOffset = 0
		return res
	}
	res.Version = data[len(formatMagic)]
	if res.Version != formatVersionBinaryV2 && res.Version != FormatVersion {
		// Gob streams are stateful and cannot be frame-scanned; unknown
		// versions cannot be scanned either. Report the header as the
		// first unvalidated byte and keep nothing.
		res.BadOffset = 0
		return res
	}
	crc := res.Version == FormatVersion

	pos := headerSize
	res.BytesKept = int64(pos)
	for pos < len(data) {
		size, n := binary.Uvarint(data[pos:])
		if n <= 0 || size > maxFrameSize {
			// Torn or corrupt length prefix (n==0: the buffer ends inside
			// the uvarint; n<0 or oversize: garbage).
			res.BadOffset = int64(pos)
			return res
		}
		frameEnd := pos + n + int(size)
		if crc {
			frameEnd += frameCRCSize
		}
		if frameEnd > len(data) {
			res.BadOffset = int64(pos) // frame cut short: the torn tail
			return res
		}
		payload := data[pos+n : pos+n+int(size)]
		if crc {
			if verifyFrameCRC(payload, data[pos+n+int(size):frameEnd]) != nil {
				res.BadOffset = int64(pos)
				return res
			}
		}
		if crc && isSyncMarker(payload) {
			last, ok := decodeSyncMarker(payload)
			if !ok || last != res.LastSeq {
				// A marker disagreeing with the entries before it means
				// the stream was spliced or corrupted in a way the
				// per-frame checksum cannot see; stop here.
				res.BadOffset = int64(pos)
				return res
			}
			res.SyncMarkers++
		} else {
			e, err := decodeEntry(payload)
			if err != nil || e.Seq != res.LastSeq+1 {
				// Undetected corruption (version 2 has no checksums) or a
				// sequence gap: the prefix up to here is still coherent.
				res.BadOffset = int64(pos)
				return res
			}
			res.Entries = append(res.Entries, e)
			res.LastSeq = e.Seq
		}
		res.Frames++
		pos = frameEnd
		res.BytesKept = int64(pos)
	}
	return res
}
