package event

import "hash/fnv"

// Access classifies what one scheduling step touches, for dynamic
// partial-order reduction (internal/sched). Every probe action — and every
// explicit yield an implementation annotates — declares an Access before it
// parks, so the scheduler knows, at each decision, what each enabled task
// is *about* to do. Two steps of different threads are independent exactly
// when swapping their order cannot change any later observation: the DPOR
// engine only explores one order of each independent adjacent pair.
//
// The vocabulary distinguishes the two universes a step can touch:
//
//   - the execution log and the specification state it drives (logged call,
//     return, write and commit actions), keyed by the probe's module; and
//   - annotated shared memory (YieldLoad/YieldStore/YieldRMW on named
//     variables), keyed by (module, variable).
//
// A bare Probe.Yield carries no information and is AccessOpaque: it marks
// an unannotated shared access (the legacy planted-bug windows), so it is
// conservatively dependent with everything except provably-local steps.
type Access struct {
	// Kind is the access class; the zero value is AccessOpaque, so an
	// undeclared access is conservatively dependent with everything.
	Kind AccessKind
	// Module is the key of the probe's module scope for logged actions
	// (AccessRead of the spec state, AccessWrite of a logged variable,
	// AccessCommit); 0 for annotated memory accesses, which never conflict
	// with log-order-only actions.
	Module uint64
	// Var is the accessed variable's key (VarKey) for AccessRead and
	// AccessWrite; unused for the other kinds.
	Var uint64
	// Spin marks a retry iteration of a spin-wait: granting this step again
	// cannot make progress until some other task changes the awaited state.
	// It is a scheduling hint only — a cooperative scheduler deprioritizes
	// spin-parked tasks so lock-free retry loops cannot livelock the run —
	// and does not participate in the dependence relation (the step's read
	// is still a real read).
	Spin bool
}

// AccessKind is the dependency class of an Access.
type AccessKind uint8

const (
	// AccessOpaque marks an unannotated shared access (a bare Probe.Yield,
	// or a step whose declared access cannot be trusted, e.g. one whose
	// turn was stolen mid-flight). Dependent with every non-local access.
	AccessOpaque AccessKind = iota
	// AccessLocal marks a step that touches nothing shared: harness
	// operation boundaries, thread-private setup. Independent of everything.
	AccessLocal
	// AccessRead reads variable Var (an annotated atomic load, or a logged
	// call/return action reading the module's spec-state trajectory —
	// observer return values are judged against the spec states spanned by
	// the call/return window, so their log positions relative to commits
	// matter, but two reads never conflict with each other).
	AccessRead
	// AccessWrite writes variable Var (an annotated atomic store or RMW,
	// or a logged write action keyed by its operation and first argument).
	AccessWrite
	// AccessCommit is a logged commit action: it advances the module's
	// specification state and — in view mode — compares a digest over the
	// module's whole replica, so it conflicts with every logged action of
	// the same module, while commuting with annotated memory accesses
	// (which append nothing to the log).
	AccessCommit
)

// String names the kind for traces and test failures.
func (k AccessKind) String() string {
	switch k {
	case AccessOpaque:
		return "opaque"
	case AccessLocal:
		return "local"
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessCommit:
		return "commit"
	}
	return "invalid"
}

// Dependent reports whether two accesses by *different* threads conflict:
// swapping adjacent steps with these accesses could change a later
// observation. Same-thread steps are always ordered by the program and
// must not be passed here. The relation is symmetric and errs toward
// dependence: only pairs proven commutative are independent.
func Dependent(a, b Access) bool {
	if a.Kind == AccessLocal || b.Kind == AccessLocal {
		return false
	}
	if a.Kind == AccessOpaque || b.Kind == AccessOpaque {
		return true
	}
	if a.Kind == AccessCommit || b.Kind == AccessCommit {
		// A commit conflicts with every logged action of its module
		// (Module != 0) and commutes with annotated memory accesses
		// (Module == 0 on the other side never matches).
		return a.Module == b.Module
	}
	if a.Kind == AccessRead && b.Kind == AccessRead {
		return false
	}
	// read/write or write/write: conflict exactly on the same variable.
	return a.Var == b.Var
}

// VarKey hashes a variable identity from its string parts (FNV-64a with a
// separator between parts, so ("ab","c") and ("a","bc") differ). Callers
// namespace the parts: annotated memory variables use ("m", module, name),
// logged write actions use ("w", module, op[, arg]).
func VarKey(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
