package event

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
)

// Parallel offline decode (binary codec only). Offline replay used to
// interleave decode with checking on one goroutine; here the stages split:
// a reader goroutine scans frame boundaries (length prefixes only — no
// entry decoding) and slices the stream into batches, a bounded worker pool
// decodes batches concurrently, and the caller consumes batches strictly in
// stream order, so the necessarily-sequential checker still sees the total
// order of the log. Gob streams cannot be frame-scanned without decoding
// (the stream is stateful), which is exactly why the binary codec frames
// every record.

// ErrStop is returned by a StreamParallel callback to stop the stream early
// without reporting an error.
var ErrStop = errors.New("event: stop streaming")

// batch thresholds: big enough to amortize channel hops, small enough to
// keep all workers busy on mid-sized logs.
const (
	batchBytes  = 128 << 10
	batchFrames = 2048
)

type decBatch struct {
	raw     []byte  // concatenated frames (payload, plus checksum when crc)
	bounds  []int   // frame end offsets into raw
	entries []Entry // decoded by a worker
	crc     bool    // version-3 stream: frames checksummed, markers present
	err     error
	done    chan struct{}
}

// StreamParallel decodes a binary-codec stream with a pool of decode
// workers, invoking fn for every entry in stream order on the calling
// goroutine. workers <= 0 uses GOMAXPROCS. If fn returns ErrStop the stream
// stops cleanly with a nil error; any other fn error aborts and is
// returned.
func StreamParallel(r io.Reader, workers int, fn func(Entry) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<20)
	}
	v, err := readHeader(br, CodecBinary)
	if err != nil {
		if err == io.EOF {
			return nil // empty stream: no entries
		}
		return err
	}
	crc := v == FormatVersion
	if workers == 1 {
		return streamSequential(br, crc, fn)
	}

	jobs := make(chan *decBatch, workers)      // workers pull here
	ordered := make(chan *decBatch, workers*2) // caller consumes in read order
	free := make(chan *decBatch, workers*2+2)  // recycled batches
	var stop atomic.Bool
	var readErr error

	for i := 0; i < workers; i++ {
		go func() {
			for b := range jobs {
				decodeBatch(b)
				close(b.done)
			}
		}()
	}
	go func() {
		defer close(jobs)
		defer close(ordered)
		for !stop.Load() {
			var b *decBatch
			select {
			case b = <-free:
				b.raw, b.bounds, b.entries, b.err = b.raw[:0], b.bounds[:0], b.entries[:0], nil
			default:
				b = &decBatch{}
			}
			b.done = make(chan struct{})
			b.crc = crc
			eof, err := fillBatch(br, b)
			if err != nil {
				readErr = err
				return
			}
			if len(b.bounds) > 0 {
				jobs <- b
				ordered <- b
			}
			if eof {
				return
			}
		}
	}()

	err = nil
	for b := range ordered {
		<-b.done
		if err == nil {
			if b.err != nil {
				err = b.err
				stop.Store(true)
			} else {
				for i := range b.entries {
					if ferr := fn(b.entries[i]); ferr != nil {
						err = ferr
						stop.Store(true)
						break
					}
				}
			}
		}
		select {
		case free <- b:
		default:
		}
	}
	if err == ErrStop {
		err = nil
	}
	if err == nil {
		err = readErr
	}
	return err
}

// streamSequential is the workers==1 shortcut: plain decode loop, no
// goroutines.
func streamSequential(br *bufio.Reader, crc bool, fn func(Entry) error) error {
	var scratch []byte
	for {
		payload, err := readFrame(br, &scratch, crc)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if crc && isSyncMarker(payload) {
			if _, ok := decodeSyncMarker(payload); !ok {
				return fmt.Errorf("event: malformed sync marker frame")
			}
			continue
		}
		e, err := decodeEntry(payload)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			if err == ErrStop {
				return nil
			}
			return err
		}
	}
}

// fillBatch reads frames into b until a size threshold or EOF. It reports
// eof=true at a clean end of stream and errors on truncated frames. The
// reader only scans length prefixes; checksum verification (like entry
// decoding) is deferred to the workers.
func fillBatch(br *bufio.Reader, b *decBatch) (eof bool, err error) {
	for len(b.raw) < batchBytes && len(b.bounds) < batchFrames {
		size, err := readUvarint(br)
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("event: read frame length: %w", err)
		}
		if size > maxFrameSize {
			return false, fmt.Errorf("event: frame length %d exceeds limit %d (corrupt stream?)", size, maxFrameSize)
		}
		if b.crc {
			size += frameCRCSize
		}
		start := len(b.raw)
		if uint64(cap(b.raw)-start) < size {
			grown := make([]byte, start, start+int(size)+batchBytes/4)
			copy(grown, b.raw)
			b.raw = grown
		}
		b.raw = b.raw[:start+int(size)]
		if _, err := io.ReadFull(br, b.raw[start:]); err != nil {
			return false, fmt.Errorf("event: read frame payload: %w", err)
		}
		b.bounds = append(b.bounds, len(b.raw))
	}
	return false, nil
}

// decodeBatch decodes every frame in b.raw into b.entries, verifying
// checksums and dropping sync markers on version-3 batches.
func decodeBatch(b *decBatch) {
	if cap(b.entries) < len(b.bounds) {
		b.entries = make([]Entry, 0, len(b.bounds))
	}
	start := 0
	for _, end := range b.bounds {
		payload := b.raw[start:end]
		start = end
		if b.crc {
			n := len(payload) - frameCRCSize
			if n < 0 {
				b.err = fmt.Errorf("event: frame shorter than its checksum")
				return
			}
			if err := verifyFrameCRC(payload[:n], payload[n:]); err != nil {
				b.err = err
				return
			}
			payload = payload[:n]
			if isSyncMarker(payload) {
				if _, ok := decodeSyncMarker(payload); !ok {
					b.err = fmt.Errorf("event: malformed sync marker frame")
					return
				}
				continue
			}
		}
		e, err := decodeEntry(payload)
		if err != nil {
			b.err = err
			return
		}
		b.entries = append(b.entries, e)
	}
}

// DecodeAllParallel reads every entry of a binary-codec stream using a
// parallel decode pool, preserving stream order.
func DecodeAllParallel(r io.Reader, workers int) ([]Entry, error) {
	var entries []Entry
	err := StreamParallel(r, workers, func(e Entry) error {
		entries = append(entries, e)
		return nil
	})
	return entries, err
}
