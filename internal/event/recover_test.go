package event

import (
	"bytes"
	"testing"
)

// buildStream encodes entries (seq 1..n assigned here) with the given
// codec, inserting a sync marker every markEvery entries for CodecBinary,
// and returns the stream bytes plus the end offset of every frame.
func buildStream(t *testing.T, c Codec, n, markEvery int) (data []byte, frameEnds []int, entrySeqs []int64) {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoderCodec(&buf, c)
	for i := 1; i <= n; i++ {
		e := Entry{
			Seq:    int64(i),
			Tid:    int32(i%3 + 1),
			Kind:   KindCall,
			Method: "Insert",
			Args:   []Value{i, "key"},
		}
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
		frameEnds = append(frameEnds, buf.Len())
		entrySeqs = append(entrySeqs, int64(i))
		if markEvery > 0 && i%markEvery == 0 {
			if err := enc.SyncMarker(int64(i)); err != nil {
				t.Fatalf("marker: %v", err)
			}
			if c == CodecBinary {
				frameEnds = append(frameEnds, buf.Len())
				entrySeqs = append(entrySeqs, 0) // 0 = marker frame
			}
		}
	}
	return buf.Bytes(), frameEnds, entrySeqs
}

// TestScanRecoverEveryCrashOffset is the core recovery property: for every
// possible crash offset of a valid log, the scanner keeps exactly the
// frames whose last byte precedes the offset — no valid frame is dropped,
// no partial frame is kept.
func TestScanRecoverEveryCrashOffset(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecBinaryV2} {
		data, frameEnds, entrySeqs := buildStream(t, codec, 23, 5)
		for cut := 0; cut <= len(data); cut++ {
			res := ScanRecover(data[:cut])
			// Expected: the largest frame end <= cut (or the bare header).
			wantBytes, wantFrames, wantEntries := 0, 0, 0
			if cut >= headerSize {
				wantBytes = headerSize
				for i, end := range frameEnds {
					if end > cut {
						break
					}
					wantBytes = end
					wantFrames = i + 1
					if entrySeqs[i] != 0 {
						wantEntries++
					}
				}
			}
			if res.BytesKept != int64(wantBytes) {
				t.Fatalf("%s cut %d: kept %d bytes, want %d", codec, cut, res.BytesKept, wantBytes)
			}
			if res.Frames != wantFrames || len(res.Entries) != wantEntries {
				t.Fatalf("%s cut %d: kept %d frames / %d entries, want %d / %d",
					codec, cut, res.Frames, len(res.Entries), wantFrames, wantEntries)
			}
			for i, e := range res.Entries {
				if e.Seq != int64(i+1) {
					t.Fatalf("%s cut %d: entry %d has seq %d", codec, cut, i, e.Seq)
				}
			}
			// The scan is clean exactly when the cut sits on a frame
			// boundary (or before any content): nothing was left over.
			if res.Clean() != (cut == wantBytes) {
				t.Fatalf("%s cut %d: clean=%v with %d bytes kept", codec, cut, res.Clean(), wantBytes)
			}
		}
	}
}

// TestScanRecoverCorruptByte flips every byte of a small v3 stream in turn
// and checks the scanner never keeps the corrupted frame: the checksum (or
// a decode/sequence check) stops the scan at or before the damaged frame.
func TestScanRecoverCorruptByte(t *testing.T) {
	data, frameEnds, _ := buildStream(t, CodecBinary, 8, 3)
	clean := ScanRecover(data)
	if !clean.Clean() || clean.LastSeq != 8 {
		t.Fatalf("clean scan: %+v", clean)
	}
	for pos := headerSize; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x41
		res := ScanRecover(mut)
		// The frame containing pos starts at the previous frame end.
		frameStart := headerSize
		for _, end := range frameEnds {
			if end > pos {
				break
			}
			frameStart = end
		}
		if res.BytesKept > int64(frameStart) {
			t.Fatalf("flip at %d: kept %d bytes, beyond the damaged frame's start %d", pos, res.BytesKept, frameStart)
		}
	}
}

// TestScanRecoverRejectsSplicedMarker pins the marker consistency check: a
// marker whose recorded seq disagrees with the entries before it ends the
// valid prefix even though its checksum is fine.
func TestScanRecoverRejectsSplicedMarker(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoderCodec(&buf, CodecBinary)
	for i := 1; i <= 3; i++ {
		if err := enc.Encode(Entry{Seq: int64(i), Tid: 1, Kind: KindCall, Method: "M"}); err != nil {
			t.Fatal(err)
		}
	}
	good := buf.Len()
	// A well-formed, correctly checksummed marker claiming the wrong seq.
	spliced := appendSyncMarker(buf.Bytes(), 7)
	res := ScanRecover(spliced)
	if res.BytesKept != int64(good) || len(res.Entries) != 3 || res.Clean() {
		t.Fatalf("spliced marker survived the scan: %+v", res)
	}
}

// FuzzRecoverArbitraryBytes feeds the scanner byte soup. Whatever comes
// in, it must not panic, must keep a prefix the default reader accepts
// without error, and must report internally consistent numbers.
func FuzzRecoverArbitraryBytes(f *testing.F) {
	var seed bytes.Buffer
	enc := NewEncoder(&seed)
	for i := 1; i <= 6; i++ {
		if err := enc.Encode(Entry{Seq: int64(i), Tid: 1, Kind: KindCall, Method: "M", Args: []Value{i}}); err != nil {
			f.Fatal(err)
		}
		if i%2 == 0 {
			if err := enc.SyncMarker(int64(i)); err != nil {
				f.Fatal(err)
			}
		}
	}
	valid := seed.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte("VYRDLOG\x03garbage"))
	f.Add([]byte("VYRDLOG\x01gobgobgob"))
	f.Add([]byte("not a log at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res := ScanRecover(data)
		if res.BytesKept < 0 || res.BytesKept > int64(len(data)) {
			t.Fatalf("BytesKept %d outside [0,%d]", res.BytesKept, len(data))
		}
		if res.BadOffset >= 0 && res.BadOffset < res.BytesKept {
			t.Fatalf("BadOffset %d inside the kept prefix (%d)", res.BadOffset, res.BytesKept)
		}
		if res.Version == 1 {
			return // gob: recovery refuses, nothing further to check
		}
		prefix := data[:res.BytesKept]
		entries, err := NewDecoder(bytes.NewReader(prefix)).DecodeAll()
		if err != nil {
			t.Fatalf("reader rejected the recovered prefix: %v", err)
		}
		if len(entries) != len(res.Entries) {
			t.Fatalf("reader saw %d entries, scanner kept %d", len(entries), len(res.Entries))
		}
		for i := range entries {
			if entries[i].Seq != int64(i+1) {
				t.Fatalf("recovered entry %d has seq %d", i, entries[i].Seq)
			}
		}
		if res.LastSeq != int64(len(entries)) {
			t.Fatalf("LastSeq %d with %d entries", res.LastSeq, len(entries))
		}
	})
}
