package explore

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tstack"
	"repro/vyrd"
)

// tornRegister is a test-only lock-free subject built for exhaustive
// enumeration: a two-word register with NO synchronization at all, checked
// against spec.Register. Unlike the real subjects it has no retry loops
// and no locks, so every thread's step count is schedule-independent and
// the interleaving tree is finite and small. The torn variant stores the
// two words in separate scheduler steps — a reader between them observes a
// torn pair, an observer violation; the atomic variant fuses both stores
// into one step and is correct under every interleaving.
type tornRegister struct {
	a, b atomic.Int64
	torn bool
}

func (r *tornRegister) write(p *vyrd.Probe, v int) {
	inv := p.Call("Write", v)
	if r.torn {
		p.YieldStore("a")
		r.a.Store(int64(v))
		p.YieldStore("b") // the torn window: a new, b still old
		r.b.Store(int64(v))
	} else {
		p.Yield()
		r.a.Store(int64(v))
		r.b.Store(int64(v))
	}
	inv.CommitFused("stored")
	inv.Return(nil)
}

func (r *tornRegister) read(p *vyrd.Probe) int {
	inv := p.Call("Read")
	p.YieldLoad("a")
	v1 := int(r.a.Load())
	p.YieldLoad("b")
	v2 := int(r.b.Load())
	ret := v1<<spec.RegisterShift | v2
	inv.Return(ret)
	return ret
}

func tornRegisterTarget(torn bool) harness.Target {
	return harness.Target{
		Name: "TornRegister",
		New: func(log *vyrd.Log) harness.Instance {
			r := &tornRegister{torn: torn}
			return harness.Instance{Methods: []harness.Method{
				{Name: "Write", Weight: 50, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
					r.write(p, pick())
				}},
				{Name: "Read", Weight: 50, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
					r.read(p)
				}},
			}}
		},
		NewSpec: func() core.Spec { return spec.NewRegister() },
	}
}

// tinySpec is a configuration small enough to enumerate exhaustively: two
// threads, two operations each. Seed 0 is schedule-clean (no interleaving
// of its operation mix triggers the planted bug); seed 3's mix reaches the
// publish race, so its class partition carries more than one verdict.
func tinySpec(seed int64) sched.Spec {
	return sched.Spec{
		Subject: "TreiberStack-PublishRace",
		Threads: 2, Ops: 2, KeyPool: 2,
		D: 3, K: 300, Seed: seed,
	}
}

// verdict compresses a run's checker outcome for class comparison: "ok"
// or the ordered list of violation kinds.
func verdict(r *Run) string {
	if !r.Violating() {
		return "ok"
	}
	s := "violating:"
	seen := map[core.ViolationKind]bool{}
	for _, v := range r.Report.Violations {
		if !seen[v.Kind] {
			seen[v.Kind] = true
			s += " " + v.Kind.String()
		}
	}
	return s
}

// exhaustDPOR drives the DPOR engine to frontier exhaustion without
// stopping at violations, returning fingerprint -> verdict over every
// schedule-faithful run (the engine is fed only faithful traces, so its
// tree is exact).
func exhaustDPOR(t *testing.T, tgt harness.Target, base sched.Spec, budget int) (map[uint64]string, int) {
	t.Helper()
	eng := sched.NewDPOR()
	classes := make(map[uint64]string)
	schedules := 0
	for {
		script, ok := eng.Next()
		if !ok {
			return classes, schedules
		}
		if schedules >= budget {
			t.Fatalf("DPOR did not exhaust within %d schedules", budget)
		}
		sp := base
		sp.Strategy = sched.StrategyDPOR
		sp.Script = script
		r, err := enumRun(tgt, sp, Refinement())
		if err != nil {
			t.Fatalf("dpor run: %v", err)
		}
		schedules++
		eng.Observe(r.Trace)
		fp := sched.Fingerprint(r.Trace)
		v := verdict(r)
		if prev, seen := classes[fp]; seen && prev != v {
			t.Fatalf("class %x visited with two verdicts: %q then %q", fp, prev, v)
		}
		classes[fp] = v
	}
}

// TestDPORCoversAllEquivalenceClasses is the soundness gate for the
// sleep-set pruning and the trace fingerprint: exhaustively enumerate
// every interleaving of a tiny configuration, partition the runs into
// Mazurkiewicz classes by fingerprint, and require that DPOR run to
// frontier exhaustion (1) visits at least one representative of every
// class, (2) agrees with the enumeration on every class's checker verdict,
// and (3) sees every distinct verdict the full interleaving space
// produces. Over-pruning — a sleep set or a missed backtrack point
// dropping a class — fails (1); an unsound dependence relation — two
// "equivalent" interleavings with different outcomes — fails the
// uniformity check inside the partition.
func TestDPORCoversAllEquivalenceClasses(t *testing.T) {
	cases := []struct {
		name string
		tgt  harness.Target
		base sched.Spec
		// wantViolating requires the interleaving space to produce more
		// than one verdict (the planted bug is schedule-reachable).
		wantViolating bool
	}{
		{
			// A real registry subject, clean under every interleaving of
			// this seed's operation mix: tests pure class coverage.
			name: "treiber-clean-mix",
			tgt:  tstack.Target(tstack.BugPublishBeforeLink),
			base: tinySpec(0),
		},
		{
			// The retry-free torn register at the minimal violating mix —
			// one writer, one reader: interleavings parking the writer
			// between its two stores observe the torn pair, so the class
			// partition carries both verdicts.
			name:          "torn-register",
			tgt:           tornRegisterTarget(true),
			base:          sched.Spec{Subject: "TornRegister", Threads: 2, Ops: 1, KeyPool: 4, D: 3, K: 300, Seed: 3},
			wantViolating: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			runs, err := EnumerateAll(c.tgt, c.base, 30000, Refinement())
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			enum := make(map[uint64]string)
			enumVerdicts := make(map[string]bool)
			for _, r := range runs {
				fp := sched.Fingerprint(r.Trace)
				v := verdict(r)
				if prev, seen := enum[fp]; seen && prev != v {
					t.Fatalf("dependence relation unsound: class %x holds runs with verdicts %q and %q", fp, prev, v)
				}
				enum[fp] = v
				enumVerdicts[v] = true
			}
			t.Logf("%d interleavings, %d classes, %d distinct verdicts",
				len(runs), len(enum), len(enumVerdicts))

			dpor, schedules := exhaustDPOR(t, c.tgt, c.base, len(runs)+1)
			t.Logf("DPOR exhausted after %d schedules, %d classes", schedules, len(dpor))

			missed := 0
			for fp, v := range enum {
				dv, ok := dpor[fp]
				if !ok {
					missed++
					t.Errorf("class %x (verdict %q) never visited by DPOR", fp, v)
					continue
				}
				if dv != v {
					t.Errorf("class %x: enumeration verdict %q, DPOR verdict %q", fp, v, dv)
				}
			}
			if missed > 0 {
				t.Fatalf("DPOR missed %d of %d equivalence classes", missed, len(enum))
			}
			dporVerdicts := make(map[string]bool)
			for _, v := range dpor {
				dporVerdicts[v] = true
			}
			for v := range enumVerdicts {
				if !dporVerdicts[v] {
					t.Errorf("verdict %q produced by some interleaving but never by DPOR", v)
				}
			}
			if c.wantViolating && len(enumVerdicts) < 2 {
				t.Fatalf("mix should reach the planted bug; got only verdicts %v", enumVerdicts)
			}
			if schedules > len(enum)*3 {
				t.Errorf("DPOR ran %d schedules for %d classes; reduction is not working", schedules, len(enum))
			}
		})
	}
}
