// Package explore drives schedule exploration: it runs harness subjects
// under the controlled scheduler (internal/sched) across many seeds, checks
// each run's log for refinement violations, replays violating seeds
// deterministically, minimizes them with the schedule shrinker, and renders
// human-readable violation reports.
//
// The package sits between sched/harness and the subject registry: it knows
// how to execute a sched.Spec against a harness.Target, but subject-name
// resolution (bench.SubjectByName) belongs to the caller, keeping the
// dependency order sched < harness < explore < bench < cmds.
package explore

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ltl"
	"repro/internal/sched"
	"repro/vyrd"
)

// Run is the outcome of executing one schedule spec against a target.
type Run struct {
	Spec sched.Spec
	// Report is the offline checker's verdict over the run's log (view
	// mode when the target supports it, I/O mode otherwise).
	Report *core.Report
	// LogBytes is the run's entry log in the framed binary format
	// (FormatVersion 2). Re-running the same spec must reproduce these
	// bytes exactly — the determinism contract explored seeds rely on.
	LogBytes []byte
	// Entries is the decoded log, kept for witness rendering in reports.
	Entries []vyrd.Entry
	// Sched is the controlled scheduler's run stats.
	Sched sched.Stats
	// Trace is the recorded decision sequence (always captured): the raw
	// material for DPOR's race analysis and the equivalence-class
	// fingerprint (sched.Fingerprint).
	Trace []sched.Step
	// Methods is the number of harness operations issued.
	Methods int64
	// Elapsed is the wall time of the harness run (excluding checking).
	Elapsed time.Duration
}

// Violating reports whether the run's log failed the refinement check.
func (r *Run) Violating() bool { return len(r.Report.Violations) > 0 }

// FirstKind returns the kind of the first detected violation (0 if none).
func (r *Run) FirstKind() core.ViolationKind {
	if len(r.Report.Violations) == 0 {
		return 0
	}
	return r.Report.Violations[0].Kind
}

// Level returns the log level exploration uses for a target: view
// refinement when the target has a replayer, I/O refinement otherwise.
func Level(t harness.Target) vyrd.Level {
	if t.NewReplayer != nil {
		return vyrd.LevelView
	}
	return vyrd.LevelIO
}

// Mode returns the checking mode matching Level.
func Mode(t harness.Target) core.Mode {
	if t.NewReplayer != nil {
		return core.ModeView
	}
	return core.ModeIO
}

// Verifier turns one run's decoded log into a verdict report. Exploration,
// shrinking, stress and report rendering are all parameterized over it, so
// the same machinery searches schedules for refinement violations
// (Refinement, the default) or temporal-property violations (Temporal).
// The diagnostics flag requests an expensive diagnosis pass (view diffs)
// where the engine supports one.
type Verifier func(t harness.Target, entries []vyrd.Entry, diagnostics bool) (*core.Report, error)

// Refinement is the default verifier: the offline refinement checker, view
// mode when the target has a replayer, I/O mode otherwise.
func Refinement() Verifier {
	return func(t harness.Target, entries []vyrd.Entry, diagnostics bool) (*core.Report, error) {
		opts := []core.Option{core.WithMode(Mode(t)), core.WithDiagnostics(diagnostics)}
		if Mode(t) == core.ModeView {
			opts = append(opts, core.WithReplayer(t.NewReplayer()))
		}
		return core.CheckEntries(entries, t.NewSpec(), opts...)
	}
}

// Temporal builds a verifier that checks each run's log against the given
// temporal property sources (see internal/ltl). The set is parsed once;
// every run gets fresh monitor state over the shared formula arena.
func Temporal(props []string) (Verifier, error) {
	set := ltl.NewSet()
	for _, src := range props {
		if err := set.AddSource(src); err != nil {
			return nil, err
		}
	}
	if len(set.Props()) == 0 {
		return nil, fmt.Errorf("explore: empty temporal property set")
	}
	return func(_ harness.Target, entries []vyrd.Entry, _ bool) (*core.Report, error) {
		return ltl.CheckEntries(set, entries), nil
	}, nil
}

// RunSpec executes one controlled run of sp against t and checks its log.
// The run's interleaving — and therefore LogBytes — is a pure function of
// the spec (unless Sched.FreeRun is set, which marks the run unusable for
// reproduction: the target deadlocked and the valve released it).
func RunSpec(t harness.Target, sp sched.Spec) (*Run, error) {
	return runSpec(t, sp, Refinement(), false)
}

// RunSpecWith is RunSpec under an explicit verifier.
func RunSpecWith(t harness.Target, sp sched.Spec, v Verifier) (*Run, error) {
	return runSpec(t, sp, v, false)
}

func runSpec(t harness.Target, sp sched.Spec, verify Verifier, diagnostics bool) (*Run, error) {
	o := sp.Options()
	o.Record = true
	sch := sched.New(o)
	lvl := Level(t)
	log := vyrd.NewLogWith(lvl, vyrd.LogOptions{})
	var buf bytes.Buffer
	if err := log.AttachSink(&buf); err != nil {
		return nil, err
	}
	cfg := harness.Config{
		Threads:      sp.Threads,
		OpsPerThread: sp.Ops,
		KeyPool:      sp.KeyPool,
		Seed:         sp.Seed,
		Level:        lvl,
		Sched:        sch,
		WorkerSteps:  sp.WorkerSteps,
	}
	if len(sp.Skips) > 0 {
		skips := sp.SkipSet()
		cfg.SkipOp = func(th, op int) bool { return skips[sched.Skip{Thread: th, Op: op}] }
	}
	res := harness.RunOnLog(t, cfg, log)
	stats := sch.Wait()
	if err := log.SinkErr(); err != nil {
		return nil, fmt.Errorf("explore: log sink: %w", err)
	}

	entries := log.Snapshot()
	rep, err := verify(t, entries, diagnostics)
	if err != nil {
		return nil, err
	}
	return &Run{
		Spec:     sp,
		Report:   rep,
		LogBytes: append([]byte(nil), buf.Bytes()...),
		Entries:  entries,
		Sched:    stats,
		Trace:    sch.Trace(),
		Methods:  res.Methods,
		Elapsed:  res.Elapsed,
	}, nil
}

// Found describes the first violating schedule of an exploration.
type Found struct {
	// SchedulesTried counts schedules executed up to and including the
	// violating one.
	SchedulesTried int
	Run            *Run
}

// Stats summarizes one exploration.
type Stats struct {
	Schedules int
	FreeRuns  int
	// Classes counts distinct Mazurkiewicz equivalence classes among the
	// reproducible schedules executed (sched.Fingerprint dedup): the
	// exploration's effective coverage, as opposed to raw run count.
	Classes int
	// Pruned counts schedules the DPOR engine skipped via sleep sets
	// (always 0 for PCT).
	Pruned int
	// Exhausted is true when the DPOR frontier emptied before the budget:
	// every reversible race observed has been explored or pruned.
	Exhausted bool
	Elapsed   time.Duration
}

// SchedulesPerSec returns the exploration throughput.
func (s Stats) SchedulesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Schedules) / s.Elapsed.Seconds()
}

// Explore runs up to `seeds` schedules of base (seeds base.Seed,
// base.Seed+1, ...) against t and returns the first violating one, or nil
// when the budget is exhausted without a violation. Change points and
// skips are re-derived per seed (a seed is a schedule). Runs that fell
// back to free-running execution are discarded: their schedules are not
// reproducible, so a violation found in one is not a usable counterexample.
func Explore(t harness.Target, base sched.Spec, seeds int) (*Found, Stats, error) {
	return ExploreWith(t, base, seeds, Refinement())
}

// ExploreWith is Explore under an explicit verifier.
func ExploreWith(t harness.Target, base sched.Spec, seeds int, v Verifier) (*Found, Stats, error) {
	start := time.Now()
	var st Stats
	classes := make(map[uint64]bool)
	for i := 0; i < seeds; i++ {
		sp := base
		sp.Seed = base.Seed + int64(i)
		sp.ChangePoints = nil
		sp.Skips = nil
		r, err := RunSpecWith(t, sp, v)
		if err != nil {
			return nil, st, err
		}
		st.Schedules++
		if r.Sched.FreeRun {
			st.FreeRuns++
			continue
		}
		classes[sched.Fingerprint(r.Trace)] = true
		st.Classes = len(classes)
		if r.Violating() {
			st.Elapsed = time.Since(start)
			return &Found{SchedulesTried: i + 1, Run: r}, st, nil
		}
	}
	st.Elapsed = time.Since(start)
	return nil, st, nil
}

// ExploreDPOR drives exploration from the DPOR engine instead of PCT
// seeds: the first schedule is the pure run-to-completion one, and every
// later schedule reverses one observed dependent cross-task pair at a
// backtrack point the engine planted (internal/sched dpor.go). base.Seed
// still fixes the harness's per-operation randomness; Strategy and Script
// on the returned run's spec make the violating schedule replayable via
// the repro string. Exploration stops at the first violation, when
// maxSchedules runs have executed, or when the frontier empties —
// Stats.Exhausted then reports that every reversible race seen has been
// covered.
func ExploreDPOR(t harness.Target, base sched.Spec, maxSchedules int) (*Found, Stats, error) {
	return ExploreDPORWith(t, base, maxSchedules, Refinement())
}

// ExploreDPORWith is ExploreDPOR under an explicit verifier.
func ExploreDPORWith(t harness.Target, base sched.Spec, maxSchedules int, v Verifier) (*Found, Stats, error) {
	start := time.Now()
	eng := sched.NewDPOR()
	var st Stats
	classes := make(map[uint64]bool)
	for st.Schedules < maxSchedules {
		script, ok := eng.Next()
		if !ok {
			st.Exhausted = true
			break
		}
		sp := base
		sp.Strategy = sched.StrategyDPOR
		sp.Script = script
		sp.ChangePoints = nil
		sp.Skips = nil
		r, err := RunSpecWith(t, sp, v)
		if err != nil {
			return nil, st, err
		}
		st.Schedules++
		st.Pruned = eng.Stats().Pruned
		if r.Sched.FreeRun {
			// Do not feed a free-run trace to the engine: past the valve
			// the decisions are not the scheduler's.
			st.FreeRuns++
			continue
		}
		eng.Observe(r.Trace)
		classes[sched.Fingerprint(r.Trace)] = true
		st.Classes = len(classes)
		if r.Violating() {
			st.Elapsed = time.Since(start)
			return &Found{SchedulesTried: st.Schedules, Run: r}, st, nil
		}
	}
	st.Pruned = eng.Stats().Pruned
	st.Elapsed = time.Since(start)
	return nil, st, nil
}

// EnumerateAll executes every maximal interleaving the controlled
// scheduler can produce for base's configuration, by systematic script
// extension: run a script, then for every decision at depth >= the
// script's length and every enabled-but-not-chosen task there, queue the
// observed prefix plus that divergence. Extending only at depths past the
// script's end visits each maximal interleaving exactly once. It is the
// ground truth the exhaustive DPOR soundness test partitions into
// equivalence classes; keep configurations tiny (2-3 threads, <=4 ops).
// limit bounds the number of runs — exceeding it, or any free-run or
// script divergence (both break the "all interleavings" claim), is an
// error.
func EnumerateAll(t harness.Target, base sched.Spec, limit int, v Verifier) ([]*Run, error) {
	stack := [][]int{{}}
	var runs []*Run
	for len(stack) > 0 {
		script := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(runs) >= limit {
			return nil, fmt.Errorf("explore: enumeration exceeds %d runs", limit)
		}
		sp := base
		sp.Strategy = sched.StrategyDPOR
		sp.Script = script
		r, err := enumRun(t, sp, v)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
		for d := len(script); d < len(r.Trace); d++ {
			st := r.Trace[d]
			for _, q := range st.Enabled {
				if q == st.Task {
					continue
				}
				ext := make([]int, d+1)
				for i := 0; i < d; i++ {
					ext[i] = r.Trace[i].Task
				}
				ext[d] = q
				stack = append(stack, ext)
			}
		}
	}
	return runs, nil
}

// enumRun executes one enumeration script, retrying runs whose trace is
// not schedule-faithful: a free-run (deadlock valve), a stolen turn (the
// 1ms anti-block steal can fire spuriously when the host is loaded, and a
// stolen task dashes through scheduling points uncontrolled), or a
// divergence from the script. All three are wall-clock artifacts on a
// lock-free subject, so a few retries get a clean replay; persistent
// failure is a real infidelity and errors out.
func enumRun(t harness.Target, sp sched.Spec, v Verifier) (*Run, error) {
	const attempts = 5
	var reason string
	for a := 0; a < attempts; a++ {
		r, err := RunSpecWith(t, sp, v)
		if err != nil {
			return nil, err
		}
		if r.Sched.FreeRun {
			reason = "went free-run"
			continue
		}
		if r.Sched.Steals > 0 {
			reason = "had a stolen turn"
			continue
		}
		faithful := true
		for i, want := range sp.Script {
			if i >= len(r.Trace) || r.Trace[i].Task != want {
				faithful = false
				break
			}
		}
		if !faithful {
			reason = "diverged from its script"
			continue
		}
		return r, nil
	}
	return nil, fmt.Errorf("explore: enumeration run %s %d times (script %v)", reason, attempts, sp.Script)
}

// ShrinkRun minimizes a violating run's schedule with the delta-debugging
// shrinker, preserving the first violation's kind, and returns the
// minimized run (re-executed, so its Report/LogBytes describe the final
// spec) along with the shrinker's stats.
func ShrinkRun(t harness.Target, r *Run) (*Run, sched.ShrinkStats, error) {
	return ShrinkRunWith(t, r, Refinement())
}

// ShrinkRunWith is ShrinkRun under an explicit verifier.
func ShrinkRunWith(t harness.Target, r *Run, v Verifier) (*Run, sched.ShrinkStats, error) {
	kind := r.FirstKind()
	min, st, err := sched.Shrink(r.Spec, func(sp sched.Spec) (sched.Outcome, error) {
		cand, err := RunSpecWith(t, sp, v)
		if err != nil {
			return sched.Outcome{}, err
		}
		if cand.Sched.FreeRun {
			// Unusable candidate: not reproducible. Treated as
			// non-violating by the shrinker.
			return sched.Outcome{}, fmt.Errorf("explore: candidate schedule fell back to free-running")
		}
		return sched.Outcome{
			Violating: cand.Violating() && cand.FirstKind() == kind,
			Steps:     cand.Sched.Steps,
		}, nil
	})
	if err != nil {
		return nil, st, err
	}
	out, err := RunSpecWith(t, min, v)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// Stress runs the plain uncontrolled harness repeatedly with the same
// shape and budget as an exploration, for the controlled-vs-stress
// comparison: it returns the 1-based index of the first violating run (0
// when none violates within the budget).
func Stress(t harness.Target, base sched.Spec, runs int) (int, time.Duration, error) {
	return StressWith(t, base, runs, Refinement())
}

// StressWith is Stress under an explicit verifier.
func StressWith(t harness.Target, base sched.Spec, runs int, v Verifier) (int, time.Duration, error) {
	start := time.Now()
	for i := 0; i < runs; i++ {
		cfg := harness.Config{
			Threads:      base.Threads,
			OpsPerThread: base.Ops,
			KeyPool:      base.KeyPool,
			Seed:         base.Seed + int64(i),
			Level:        Level(t),
		}
		res := harness.Run(t, cfg)
		rep, err := v(t, res.Log.Snapshot(), false)
		if err != nil {
			return 0, time.Since(start), err
		}
		if len(rep.Violations) > 0 {
			return i + 1, time.Since(start), nil
		}
	}
	return 0, time.Since(start), nil
}

// maxWitnessEntries bounds the interleaving rendered in a report; shrunk
// schedules fit comfortably, unshrunk ones are elided past the cap.
const maxWitnessEntries = 200

// WriteReport renders a human-readable violation report for a (typically
// shrunk) violating run: the repro string, scheduling stats, each recorded
// violation — re-checked with diagnostics enabled, so view violations
// carry the exact viewI/viewS diff — and the witness interleaving.
func WriteReport(w io.Writer, t harness.Target, r *Run) error {
	return WriteReportWith(w, t, r, Refinement())
}

// WriteReportWith is WriteReport under an explicit verifier.
func WriteReportWith(w io.Writer, t harness.Target, r *Run, v Verifier) error {
	diag, err := runSpec(t, r.Spec, v, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "subject: %s (target %s)\n", r.Spec.Subject, t.Name)
	fmt.Fprintf(w, "repro:   %s\n", r.Spec.Repro())
	fmt.Fprintf(w, "sched:   %s\n", diag.Sched)
	fmt.Fprintf(w, "log:     %d entries, %d bytes\n", len(diag.Entries), len(diag.LogBytes))
	if len(diag.Report.Violations) == 0 {
		fmt.Fprintf(w, "verdict: PASS (no violation)\n")
		return nil
	}
	fmt.Fprintf(w, "verdict: %d violation(s), first: %s\n",
		diag.Report.TotalViolations, diag.Report.Violations[0].Kind)
	for i, v := range diag.Report.Violations {
		if i == 3 {
			fmt.Fprintf(w, "  ... %d more\n", len(diag.Report.Violations)-i)
			break
		}
		fmt.Fprintf(w, "  %s\n", v.String())
	}
	if len(diag.Entries) <= maxWitnessEntries {
		fmt.Fprintf(w, "witness interleaving:\n")
		vyrd.WriteWitness(w, diag.Entries)
	} else {
		fmt.Fprintf(w, "witness interleaving elided (%d entries > %d); shrink the schedule first\n",
			len(diag.Entries), maxWitnessEntries)
	}
	return nil
}

// SameVerdict reports whether two runs agree byte-for-byte on the log and
// structurally on the verdict (violation kinds at the same sequence
// numbers) — the replay-determinism contract `vyrdx -repro` asserts.
func SameVerdict(a, b *Run) bool {
	if !bytes.Equal(a.LogBytes, b.LogBytes) {
		return false
	}
	if len(a.Report.Violations) != len(b.Report.Violations) {
		return false
	}
	for i := range a.Report.Violations {
		va, vb := a.Report.Violations[i], b.Report.Violations[i]
		if va.Kind != vb.Kind || va.Seq != vb.Seq || va.Method != vb.Method {
			return false
		}
	}
	return true
}
