package explore_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/racecheck"
	"repro/internal/sched"
)

// exploreBudget is the ISSUE 4 acceptance budget: every planted bug must
// be found within this many schedules. The observed first-violation seeds
// are far lower (tens of schedules); the full budget is headroom, not
// expectation.
const exploreBudget = 2000

// findPlanted explores one planted-bug subject and fails the test if no
// violation is found within the acceptance budget.
func findPlanted(t *testing.T, name string) (*bench.Subject, *explore.Found) {
	t.Helper()
	sub, ok := bench.SubjectByName(name)
	if !ok {
		t.Fatalf("unknown subject %s", name)
	}
	found, st, err := explore.Explore(sub.Buggy, bench.ExploreSpec(name), exploreBudget)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Fatalf("%s: no violation within %d schedules (%d free-runs, %.0f sched/s)",
			name, exploreBudget, st.FreeRuns, st.SchedulesPerSec())
	}
	t.Logf("%s: found at schedule %d (%s), steps=%d steals=%d, %.0f sched/s",
		name, found.SchedulesTried, found.Run.FirstKind(), found.Run.Sched.Steps,
		found.Run.Sched.Steals, st.SchedulesPerSec())
	return &sub, found
}

// TestExploreSmoke is the CI gate for the ISSUE 4 acceptance criteria:
// each planted-bug target is found within the schedule budget, every
// violating seed replays to a byte-identical log and verdict, and the
// minimized schedule still violates with the same kind and replays from
// its repro string.
func TestExploreSmoke(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("planted bugs are real data races; exploration runs without -race")
	}
	for _, name := range []string{"Multiset-TornPair", "BLinkTree-DroppedLock", "Cache-TornUpdate"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sub, found := findPlanted(t, name)

			// Replay determinism: the violating seed reproduces the log
			// byte for byte and the verdict exactly.
			again, err := explore.RunSpec(sub.Buggy, found.Run.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.LogBytes, found.Run.LogBytes) {
				t.Fatalf("violating seed did not replay to identical log bytes (%d vs %d)",
					len(again.LogBytes), len(found.Run.LogBytes))
			}
			if !explore.SameVerdict(again, found.Run) {
				t.Fatal("violating seed did not replay to the same verdict")
			}

			// Shrinking: the minimized schedule still violates identically.
			min, shr, err := explore.ShrinkRun(sub.Buggy, found.Run)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: shrink %d -> %d steps (%d runs, %d ops dropped, cps %d -> %d, wsteps %d -> %d)",
				name, shr.StepsBefore, shr.StepsAfter, shr.Runs, shr.OpsDropped,
				shr.ChangePointsBefore, shr.ChangePointsAfter,
				shr.WorkerStepsBefore, shr.WorkerStepsAfter)
			if !min.Violating() || min.FirstKind() != found.Run.FirstKind() {
				t.Fatalf("minimized schedule lost the violation: violating=%v kind=%v",
					min.Violating(), min.FirstKind())
			}

			// The repro string round-trips and replays to the same verdict.
			sp, err := sched.ParseRepro(min.Spec.Repro())
			if err != nil {
				t.Fatalf("minimized repro does not parse: %v", err)
			}
			replay, err := explore.RunSpec(sub.Buggy, sp)
			if err != nil {
				t.Fatal(err)
			}
			if !explore.SameVerdict(replay, min) {
				t.Fatal("repro string did not replay to the same verdict")
			}

			// The report renders without error and names the violation.
			var report strings.Builder
			if err := explore.WriteReport(&report, sub.Buggy, min); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"repro:", "verdict:", min.FirstKind().String()} {
				if !strings.Contains(report.String(), want) {
					t.Errorf("report missing %q:\n%s", want, report.String())
				}
			}
		})
	}
}

// TestExploreTemporalFindsLockReversal is the CI gate for the ISSUE 9
// acceptance criteria: exploration with the temporal verifier finds the
// planted lock-order inversion in Ledger-LockPair within the schedule
// budget, the shrunk witness keeps the temporal kind and replays from its
// repro string to the same verdict, and uncontrolled stress over the same
// shape misses the bug (the hint window has no Gosched, so only a
// controlled schedule parks a thread inside it).
func TestExploreTemporalFindsLockReversal(t *testing.T) {
	const name = "Ledger-LockPair"
	sub, ok := bench.SubjectByName(name)
	if !ok {
		t.Fatalf("unknown subject %s", name)
	}
	verifier, err := explore.Temporal(bench.BuiltinProps(name))
	if err != nil {
		t.Fatal(err)
	}
	base := bench.ExploreSpec(name)

	found, st, err := explore.ExploreWith(sub.Buggy, base, exploreBudget, verifier)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Fatalf("%s: no temporal violation within %d schedules (%d free-runs, %.0f sched/s)",
			name, exploreBudget, st.FreeRuns, st.SchedulesPerSec())
	}
	if found.Run.FirstKind() != core.ViolationTemporal {
		t.Fatalf("violation kind %v, want temporal", found.Run.FirstKind())
	}
	t.Logf("%s: found at schedule %d, steps=%d, %.0f sched/s",
		name, found.SchedulesTried, found.Run.Sched.Steps, st.SchedulesPerSec())

	// The violating seed replays byte-identically with the same verdict.
	again, err := explore.RunSpecWith(sub.Buggy, found.Run.Spec, verifier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.LogBytes, found.Run.LogBytes) || !explore.SameVerdict(again, found.Run) {
		t.Fatal("violating seed did not replay to the same log and verdict")
	}

	// Shrinking preserves the temporal violation, and the minimized repro
	// string round-trips to the same verdict.
	min, shr, err := explore.ShrinkRunWith(sub.Buggy, found.Run, verifier)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: shrink %d -> %d steps (%d runs)", name, shr.StepsBefore, shr.StepsAfter, shr.Runs)
	if !min.Violating() || min.FirstKind() != core.ViolationTemporal {
		t.Fatalf("minimized schedule lost the temporal violation: violating=%v kind=%v",
			min.Violating(), min.FirstKind())
	}
	sp, err := sched.ParseRepro(min.Spec.Repro())
	if err != nil {
		t.Fatalf("minimized repro does not parse: %v", err)
	}
	replay, err := explore.RunSpecWith(sub.Buggy, sp, verifier)
	if err != nil {
		t.Fatal(err)
	}
	if !explore.SameVerdict(replay, min) {
		t.Fatal("repro string did not replay to the same verdict")
	}

	// The report names the refuted property.
	var report strings.Builder
	if err := explore.WriteReportWith(&report, sub.Buggy, min, verifier); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"repro:", "verdict:", "temporal"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}

	// Stress-miss leg: without the controlled scheduler the reversed-lock
	// path is gated on catching another thread inside a few-instruction
	// window, which uncontrolled stress does not hit in a modest budget.
	at, elapsed, err := explore.StressWith(sub.Buggy, base, 200, verifier)
	if err != nil {
		t.Fatal(err)
	}
	if at > 0 {
		t.Fatalf("uncontrolled stress found the inversion at run %d (%v); the bug must be schedule-gated", at, elapsed)
	}
}

// TestShrinkHalvesScheduleLength is the acceptance criterion that the
// shrinker reduces violating schedule length by >= 50% on at least two
// exemplars.
func TestShrinkHalvesScheduleLength(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("planted bugs are real data races; exploration runs without -race")
	}
	halved := 0
	for _, name := range []string{"Multiset-TornPair", "BLinkTree-DroppedLock"} {
		sub, found := findPlanted(t, name)
		_, shr, err := explore.ShrinkRun(sub.Buggy, found.Run)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d -> %d steps", name, shr.StepsBefore, shr.StepsAfter)
		if shr.StepsAfter*2 <= shr.StepsBefore {
			halved++
		}
	}
	if halved < 2 {
		t.Errorf("shrinker halved schedule length on %d/2 exemplars", halved)
	}
}

// TestCorrectTargetsStayClean guards against false positives: the correct
// implementations must pass the checker under controlled schedules too.
func TestCorrectTargetsStayClean(t *testing.T) {
	for _, s := range bench.ExplorationSubjects() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := bench.ExploreSpec(s.Name)
			found, st, err := explore.Explore(s.Correct, base, 25)
			if err != nil {
				t.Fatal(err)
			}
			if found != nil {
				t.Fatalf("correct implementation flagged at schedule %d: %v",
					found.SchedulesTried, found.Run.Report.Violations[0])
			}
			if st.FreeRuns == st.Schedules {
				t.Error("every schedule fell back to free-running")
			}
		})
	}
}
