package ltl

import (
	"encoding/binary"
	"sort"
	"strings"
)

// arena hash-conses formula nodes and memoizes progression steps. One arena
// backs one property Set; it is not safe for concurrent use (an EntryChecker
// is driven by a single goroutine, per the core contract).
type arena struct {
	nodes   []*Node
	dedup   map[string]*Node // structural key -> node
	atoms   []*Atom          // atom universe, deduplicated by canonical source
	atomIdx map[string]int
	tt, ff  *Node

	memo map[progKey]*Node // (residual id, valuation) -> next residual
}

// progKey keys one memoized progression step: the residual node and the
// truth valuation of the whole atom universe at the current entry.
type progKey struct {
	id  uint32
	val string
}

// memoCap bounds the progression memo. The reachable state space is finite
// (boolean combinations over the formula closure × observed valuations) and
// small in practice; the cap is a backstop against pathological formulas,
// and clearing it only costs recomputation.
const memoCap = 1 << 20

func newArena() *arena {
	a := &arena{
		dedup:   make(map[string]*Node),
		atomIdx: make(map[string]int),
		memo:    make(map[progKey]*Node),
	}
	a.tt = a.cons(OpTrue, 0, nil)
	a.ff = a.cons(OpFalse, 0, nil)
	return a
}

// cons interns a node by structural identity.
func (a *arena) cons(op Op, atom int, kids []*Node) *Node {
	var key []byte
	key = append(key, byte(op))
	key = binary.AppendUvarint(key, uint64(atom))
	for _, k := range kids {
		key = binary.AppendUvarint(key, uint64(k.id))
	}
	if n, ok := a.dedup[string(key)]; ok {
		return n
	}
	n := &Node{id: uint32(len(a.nodes)), op: op, atom: atom, kids: kids}
	a.nodes = append(a.nodes, n)
	a.dedup[string(key)] = n
	return n
}

// internAtom adds an atom to the universe, deduplicating by canonical
// source so identical predicates share one valuation bit.
func (a *arena) internAtom(at *Atom) *Node {
	key := at.String()
	if i, ok := a.atomIdx[key]; ok {
		return a.cons(OpAtom, i, nil)
	}
	i := len(a.atoms)
	a.atoms = append(a.atoms, at)
	a.atomIdx[key] = i
	return a.cons(OpAtom, i, nil)
}

// Smart constructors. These apply a fixed simplification rule set; the
// naive reference evaluator (naive.go) implements the SAME rules
// independently, and the differential test pins the two against each other.
// The rules:
//
//	not:  !true = false, !false = true, !!f = f
//	and:  flatten nested ands; drop true; any false -> false; sort and
//	      deduplicate operands; f ∧ !f -> false; 0 operands -> true,
//	      1 operand -> itself
//	or:   the boolean dual
//	next: X true = true, X false = false
//	until:   f U true = true, f U false = false, false U g = g,
//	         true U g = F g, f U f = f
//	release: f R true = true, f R false = false, true R g = g,
//	         false R g = G g, f R f = f
//	F: F true = true, F false = false, F F f = F f
//	G: G true = true, G false = false, G G f = G f

func (a *arena) newNot(x *Node) *Node {
	switch {
	case x == a.tt:
		return a.ff
	case x == a.ff:
		return a.tt
	case x.op == OpNot:
		return x.kids[0]
	}
	return a.cons(OpNot, 0, []*Node{x})
}

// gather flattens same-op operands into out, skipping the identity element.
func gather(op Op, identity *Node, xs []*Node, out []*Node) []*Node {
	for _, x := range xs {
		if x == identity {
			continue
		}
		if x.op == op {
			out = gather(op, identity, x.kids, out)
			continue
		}
		out = append(out, x)
	}
	return out
}

// normalize sorts by node id, deduplicates, and reports whether the set
// contains a complementary pair f, !f.
func normalize(kids []*Node) (_ []*Node, complement bool) {
	sort.Slice(kids, func(i, j int) bool { return kids[i].id < kids[j].id })
	uniq := kids[:0]
	for i, k := range kids {
		if i > 0 && k == kids[i-1] {
			continue
		}
		uniq = append(uniq, k)
	}
	present := make(map[uint32]bool, len(uniq))
	for _, k := range uniq {
		present[k.id] = true
	}
	for _, k := range uniq {
		if k.op == OpNot && present[k.kids[0].id] {
			return uniq, true
		}
	}
	return uniq, false
}

func (a *arena) newAnd(xs ...*Node) *Node {
	kids := gather(OpAnd, a.tt, xs, make([]*Node, 0, len(xs)))
	for _, k := range kids {
		if k == a.ff {
			return a.ff
		}
	}
	kids, complement := normalize(kids)
	if complement {
		return a.ff
	}
	switch len(kids) {
	case 0:
		return a.tt
	case 1:
		return kids[0]
	}
	return a.cons(OpAnd, 0, kids)
}

func (a *arena) newOr(xs ...*Node) *Node {
	kids := gather(OpOr, a.ff, xs, make([]*Node, 0, len(xs)))
	for _, k := range kids {
		if k == a.tt {
			return a.tt
		}
	}
	kids, complement := normalize(kids)
	if complement {
		return a.tt
	}
	switch len(kids) {
	case 0:
		return a.ff
	case 1:
		return kids[0]
	}
	return a.cons(OpOr, 0, kids)
}

func (a *arena) newNext(x *Node) *Node {
	if x == a.tt || x == a.ff {
		return x
	}
	return a.cons(OpNext, 0, []*Node{x})
}

func (a *arena) newUntil(f, g *Node) *Node {
	switch {
	case g == a.tt || g == a.ff:
		return g
	case f == a.ff:
		return g
	case f == a.tt:
		return a.newEventually(g)
	case f == g:
		return f
	}
	return a.cons(OpUntil, 0, []*Node{f, g})
}

func (a *arena) newRelease(f, g *Node) *Node {
	switch {
	case g == a.tt || g == a.ff:
		return g
	case f == a.tt:
		return g
	case f == a.ff:
		return a.newAlways(g)
	case f == g:
		return f
	}
	return a.cons(OpRelease, 0, []*Node{f, g})
}

func (a *arena) newEventually(x *Node) *Node {
	if x == a.tt || x == a.ff || x.op == OpEventually {
		return x
	}
	return a.cons(OpEventually, 0, []*Node{x})
}

func (a *arena) newAlways(x *Node) *Node {
	if x == a.tt || x == a.ff || x.op == OpAlways {
		return x
	}
	return a.cons(OpAlways, 0, []*Node{x})
}

// prog rewrites the residual n by one trace step under the atom valuation
// val (bitset over the arena's atom universe; key is its string form, the
// memo key). The result is the residual that must hold over the rest of
// the trace.
func (a *arena) prog(n *Node, val []uint64, key string) *Node {
	switch n.op {
	case OpTrue, OpFalse:
		return n
	case OpAtom:
		if val[n.atom>>6]&(1<<(uint(n.atom)&63)) != 0 {
			return a.tt
		}
		return a.ff
	}
	mk := progKey{n.id, key}
	if r, ok := a.memo[mk]; ok {
		return r
	}
	var r *Node
	switch n.op {
	case OpNot:
		r = a.newNot(a.prog(n.kids[0], val, key))
	case OpAnd:
		ks := make([]*Node, len(n.kids))
		for i, k := range n.kids {
			ks[i] = a.prog(k, val, key)
		}
		r = a.newAnd(ks...)
	case OpOr:
		ks := make([]*Node, len(n.kids))
		for i, k := range n.kids {
			ks[i] = a.prog(k, val, key)
		}
		r = a.newOr(ks...)
	case OpNext:
		r = n.kids[0]
	case OpUntil:
		f, g := n.kids[0], n.kids[1]
		r = a.newOr(a.prog(g, val, key), a.newAnd(a.prog(f, val, key), n))
	case OpRelease:
		f, g := n.kids[0], n.kids[1]
		r = a.newAnd(a.prog(g, val, key), a.newOr(a.prog(f, val, key), n))
	case OpEventually:
		r = a.newOr(a.prog(n.kids[0], val, key), n)
	case OpAlways:
		r = a.newAnd(a.prog(n.kids[0], val, key), n)
	default:
		panic("ltl: bad op") // unreachable: nodes come from the constructors
	}
	if len(a.memo) >= memoCap {
		a.memo = make(map[progKey]*Node)
	}
	a.memo[mk] = r
	return r
}

// Printing. The printer is canonical: parsing its output through the same
// arena yields the identical node, and through a fresh arena a structurally
// equal one (the fuzz target pins this round trip).

// opPrec orders operators for minimal parenthesization: || < && < U/R <
// unary < primary.
func opPrec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpUntil, OpRelease:
		return 3
	case OpNot, OpNext, OpEventually, OpAlways:
		return 4
	}
	return 5
}

func (a *arena) format(b *strings.Builder, n *Node, parentPrec int) {
	prec := opPrec(n.op)
	if prec < parentPrec {
		b.WriteByte('(')
		defer b.WriteByte(')')
	}
	switch n.op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpAtom:
		b.WriteString(a.atoms[n.atom].String())
	case OpNot:
		b.WriteByte('!')
		a.format(b, n.kids[0], prec+1)
	case OpNext, OpEventually, OpAlways:
		switch n.op {
		case OpNext:
			b.WriteString("X ")
		case OpEventually:
			b.WriteString("F ")
		case OpAlways:
			b.WriteString("G ")
		}
		a.format(b, n.kids[0], prec)
	case OpUntil, OpRelease:
		// Right-associative: the left side needs parens at equal
		// precedence, the right does not.
		a.format(b, n.kids[0], prec+1)
		if n.op == OpUntil {
			b.WriteString(" U ")
		} else {
			b.WriteString(" R ")
		}
		a.format(b, n.kids[1], prec)
	case OpAnd, OpOr:
		sep := " && "
		if n.op == OpOr {
			sep = " || "
		}
		for i, k := range n.kids {
			if i > 0 {
				b.WriteString(sep)
			}
			a.format(b, k, prec+1)
		}
	}
}

func (a *arena) formatNode(n *Node) string {
	var b strings.Builder
	a.format(&b, n, 0)
	return b.String()
}
