package ltl

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Prop is one named, compiled property.
type Prop struct {
	Name   string
	root   *Node
	source string // canonical printed form
	set    *Set
}

// Source returns the canonical source of the property's formula (the
// printer's output; reparsing it yields the same formula).
func (p *Prop) Source() string { return p.source }

// String renders "name: formula".
func (p *Prop) String() string { return p.Name + ": " + p.source }

// Set is a compiled collection of properties sharing one formula arena, so
// common subformulas and atoms are evaluated once. A Set is built once and
// then drives any number of (sequential) evaluations; it is not safe for
// concurrent use by multiple evaluators.
type Set struct {
	ar     *arena
	props  []*Prop
	names  map[string]bool
	digest DigestFunc

	valIntern map[string]string // valuation bitset -> interned memo key
}

// NewSet returns an empty property set.
func NewSet() *Set {
	return &Set{ar: newArena(), names: make(map[string]bool), valIntern: make(map[string]string)}
}

// SetDigest installs the hook backing `digest=` atoms. Without one, digest
// atoms evaluate to false.
func (s *Set) SetDigest(fn DigestFunc) { s.digest = fn }

// Props returns the compiled properties in addition order.
func (s *Set) Props() []*Prop { return s.props }

// Sources returns the properties as "name: formula" lines — the shape the
// remote Hello handshake ships and ParseProps accepts back.
func (s *Set) Sources() []string {
	out := make([]string, len(s.props))
	for i, p := range s.props {
		out[i] = p.String()
	}
	return out
}

// Add parses one formula and adds it under the given name.
func (s *Set) Add(name, formula string) (*Prop, error) {
	if !validPropName(name) {
		return nil, fmt.Errorf("ltl: bad property name %q", name)
	}
	if s.names[name] {
		return nil, fmt.Errorf("ltl: duplicate property name %q", name)
	}
	root, err := parseFormula(s.ar, formula)
	if err != nil {
		return nil, fmt.Errorf("ltl: property %q: %w", name, err)
	}
	p := &Prop{Name: name, root: root, source: s.ar.formatNode(root), set: s}
	s.names[name] = true
	s.props = append(s.props, p)
	return p, nil
}

// AddSource parses a property document (named or bare formulas, one per
// line, '#' comments) into the set. Bare formulas are named prop1, prop2,
// ... by position.
func (s *Set) AddSource(src string) error {
	for i, line := range strings.Split(src, "\n") {
		text := strings.TrimSpace(line)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, formula := splitProp(text)
		if name == "" {
			name = fmt.Sprintf("prop%d", len(s.props)+1)
		}
		if _, err := s.Add(name, formula); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return nil
}

// splitProp splits a "name: formula" line; a line without a name prefix is
// all formula.
func splitProp(line string) (name, formula string) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", line
	}
	cand := strings.TrimSpace(line[:i])
	if !validPropName(cand) {
		return "", line
	}
	return cand, line[i+1:]
}

func validPropName(name string) bool {
	if name == "" || !isIdentStart(rune(name[0])) {
		return false
	}
	for _, r := range name {
		if !(isIdentRune(r) || r == '.' || r == '-') {
			return false
		}
	}
	return true
}

// ParseProps parses a property document into a fresh Set. It never panics,
// whatever the input.
func ParseProps(src string) (*Set, error) {
	s := NewSet()
	if err := s.AddSource(src); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseProp parses a single property line ("name: formula" or a bare
// formula) into a fresh single-property Set and returns the property. It
// never panics, whatever the input.
func ParseProp(line string) (*Prop, error) {
	s := NewSet()
	if err := s.AddSource(line); err != nil {
		return nil, err
	}
	if len(s.props) != 1 {
		return nil, fmt.Errorf("ltl: expected exactly one property, got %d", len(s.props))
	}
	return s.props[0], nil
}

// Monitor is the streaming LTL3 state of one property: the residual formula
// that must hold over the remainder of the trace.
type Monitor struct {
	Prop    *Prop
	cur     *Node
	verdict Verdict
	decided bool
	witness int64 // seq of the deciding entry; -1 while undecided
}

// Verdict returns the monitor's current LTL3 verdict; Inconclusive until
// (and unless) the residual collapses.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// Decided reports whether the verdict is final (further entries cannot
// change it).
func (m *Monitor) Decided() bool { return m.decided }

// Witness returns the log sequence number of the entry that decided the
// verdict, or -1 while undecided. For a violation this is the witness
// position: the step at which every infinite extension became refuting.
func (m *Monitor) Witness() int64 { return m.witness }

// Residual renders the current residual formula — what still has to hold —
// for diagnostics on inconclusive verdicts.
func (m *Monitor) Residual() string { return m.Prop.set.ar.formatNode(m.cur) }

// Eval steps every property of a Set over one pass of the log. Not safe
// for concurrent use.
type Eval struct {
	set       *Set
	mons      []*Monitor
	natoms    int
	val       []uint64
	keyBuf    []byte
	undecided int
	fresh     []*Monitor // scratch: monitors decided by the last Step
}

// NewEval starts a fresh evaluation of the set's properties. The atom
// universe is frozen at this point; adding properties to the set afterwards
// requires a new Eval.
func (s *Set) NewEval() *Eval {
	e := &Eval{
		set:    s,
		natoms: len(s.ar.atoms),
	}
	e.val = make([]uint64, (e.natoms+63)/64)
	e.keyBuf = make([]byte, 8*len(e.val))
	for _, p := range s.props {
		m := &Monitor{Prop: p, cur: p.root, witness: -1}
		// A constant formula is decided before any entry.
		switch p.root {
		case s.ar.tt:
			m.verdict, m.decided = Satisfied, true
		case s.ar.ff:
			m.verdict, m.decided = Violated, true
		default:
			e.undecided++
		}
		e.mons = append(e.mons, m)
	}
	return e
}

// Monitors returns the per-property monitors, in set order.
func (e *Eval) Monitors() []*Monitor { return e.mons }

// Decided reports whether every property has reached a final verdict, so
// further entries cannot change anything.
func (e *Eval) Decided() bool { return e.undecided == 0 }

// Step advances every undecided monitor by one entry and returns the
// monitors whose verdict this entry decided (the slice is reused by the
// next Step).
func (e *Eval) Step(en *event.Entry) []*Monitor {
	e.fresh = e.fresh[:0]
	if e.undecided == 0 {
		return e.fresh
	}
	ar := e.set.ar
	for i := range e.val {
		e.val[i] = 0
	}
	for i, at := range ar.atoms[:e.natoms] {
		if at.Match(en, e.set.digest) {
			e.val[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	for i, w := range e.val {
		for b := 0; b < 8; b++ {
			e.keyBuf[8*i+b] = byte(w >> (8 * b))
		}
	}
	key, ok := e.set.valIntern[string(e.keyBuf)]
	if !ok {
		key = string(e.keyBuf)
		e.set.valIntern[key] = key
	}
	for _, m := range e.mons {
		if m.decided {
			continue
		}
		m.cur = ar.prog(m.cur, e.val, key)
		switch m.cur {
		case ar.tt:
			m.verdict, m.decided, m.witness = Satisfied, true, en.Seq
		case ar.ff:
			m.verdict, m.decided, m.witness = Violated, true, en.Seq
		default:
			continue
		}
		e.undecided--
		e.fresh = append(e.fresh, m)
	}
	return e.fresh
}
