package ltl

import (
	"fmt"
	"strings"
)

// Built-in property generators. Each returns "name: formula" source lines
// (ParseProps / Set.AddSource input) rather than compiled formulas, so the
// same strings serve local checking, the vyrdd Hello handshake and the
// property-file format uniformly.

// LockReversalProp builds the lock-order-inversion (deadlock-potential)
// property over lock acquire/release events logged as write entries
// `{kind=write, method=<acqOp>, arg0=<lock>}` (and relOp for releases):
// no two nestings in opposite order may both occur, by any pair of
// threads. The returned formula is the negation of
//
//	OR over lock pairs x<y, thread pairs (t,s):
//	    nested(t,x,y) && nested(s,y,x)
//
// where nested(t,x,y) = F(acq(t,x) && X(!rel(t,x) U acq(t,y))) — thread t
// acquires y while still holding x. Violated exactly when the trace
// completes both orders of some lock pair; the witness points at the
// acquire that completed the second order.
func LockReversalProp(name, acqOp, relOp string, locks []int, tids []int) string {
	nested := func(t, x, y int) string {
		return fmt.Sprintf(
			"F({kind=write, method=%s, tid=%d, arg0=%d} && X(!{kind=write, method=%s, tid=%d, arg0=%d} U {kind=write, method=%s, tid=%d, arg0=%d}))",
			acqOp, t, x, relOp, t, x, acqOp, t, y)
	}
	var pairs []string
	for i, x := range locks {
		for _, y := range locks[i+1:] {
			for _, t := range tids {
				for _, s := range tids {
					pairs = append(pairs, fmt.Sprintf("(%s && %s)", nested(t, x, y), nested(s, y, x)))
				}
			}
		}
	}
	if len(pairs) == 0 {
		return name + ": true"
	}
	return fmt.Sprintf("%s: !(%s)", name, strings.Join(pairs, " || "))
}

// CallsReturnProps builds one property per thread: every call on the
// thread is eventually followed by a return on it. A pure liveness
// property: on finite traces it is never violated and never satisfied —
// the verdict is honestly inconclusive — but its residual names the
// threads with open invocations at log end.
func CallsReturnProps(tids []int) []string {
	out := make([]string, 0, len(tids))
	for _, t := range tids {
		out = append(out, fmt.Sprintf(
			"calls-return-t%d: G({kind=call, tid=%d} -> F {kind=return, tid=%d})", t, t, t))
	}
	return out
}

// CommitBeforeReturnProps builds the commit-discipline property per
// (mutator method, thread): after a call of the method on the thread, no
// return of it on that thread may happen before its commit. Violated (with
// the return as witness) exactly when a mutator execution returns
// uncommitted — the instrumentation bug the refinement checker reports as
// ViolationInstrumentation, here caught by a pure log-shape property.
func CommitBeforeReturnProps(methods []string, tids []int) []string {
	var out []string
	for _, m := range methods {
		for _, t := range tids {
			out = append(out, fmt.Sprintf(
				"commit-before-return-%s-t%d: G({kind=call, method=%s, tid=%d} -> X(!{kind=return, method=%s, tid=%d} U {kind=commit, method=%s, tid=%d}))",
				m, t, m, t, m, t, m, t))
		}
	}
	return out
}

// SealedKeyProps builds the per-key monotonicity (one-way latch)
// property: once a key is sealed (written via sealOp), it is never
// written via setOp again. Violated with the offending write as witness.
func SealedKeyProps(setOp, sealOp string, keys []int) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf(
			"sealed-key-%d: G({kind=write, method=%s, arg0=%d} -> G !{kind=write, method=%s, arg0=%d})",
			k, sealOp, k, setOp, k))
	}
	return out
}
