// Package ltl implements streaming runtime verification of linear temporal
// logic properties over the VYRD execution log — the third first-class
// verdict mode next to refinement (internal/core) and linearizability
// (internal/linearize).
//
// The log is a totally-ordered trace of entries; a property is an LTL
// formula over atomic predicates on those entries (method name, module,
// tid, kind, argument/return matchers, view digests). Because the trace is
// finite, verdicts follow the LTL3 semantics:
//
//   - Violated: every infinite extension of the observed prefix refutes
//     the formula. A witness pointer records the log position whose entry
//     collapsed the formula.
//   - Satisfied: every infinite extension satisfies it.
//   - Inconclusive: the prefix decided neither (the honest answer for
//     e.g. a G-property that has not yet been refuted).
//
// The evaluator works by formula progression (expansion/derivatives): each
// entry rewrites the residual formula by one step,
//
//	prog(X f)     = f
//	prog(f U g)   = prog(g) ∨ (prog(f) ∧ f U g)
//	prog(f R g)   = prog(g) ∧ (prog(f) ∨ f R g)
//	prog(F g)     = prog(g) ∨ F g
//	prog(G f)     = prog(f) ∧ G f
//
// with the boolean connectives distributed through. Residuals live in a
// hash-consed arena whose smart constructors apply a fixed, documented set
// of propositional simplifications (see newAnd/newOr/newNot); a residual
// that collapses to the false node is a violation, the true node a
// satisfaction. Progression never invents new atoms or temporal operators,
// so every residual is a boolean combination over the closure of the
// original formula: the monitor state is bounded by the formula, not the
// trace, and no trace buffering happens beyond the formula's own
// obligations. Steps are memoized on (residual node, atom valuation), so
// steady-state evaluation is a handful of hash lookups per entry.
package ltl

import "fmt"

// Verdict is the LTL3 outcome of one property over a finite trace.
type Verdict uint8

const (
	// Inconclusive: the finite trace decided neither way.
	Inconclusive Verdict = iota
	// Satisfied: every infinite extension of the trace satisfies the
	// property.
	Satisfied
	// Violated: every infinite extension refutes the property.
	Violated
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Inconclusive:
		return "inconclusive"
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Op is a formula node operator.
type Op uint8

const (
	// OpTrue and OpFalse are the boolean constants; each arena holds one
	// node of each, so constant checks are pointer comparisons.
	OpTrue Op = iota
	OpFalse
	// OpAtom is an atomic predicate over one log entry.
	OpAtom
	// OpNot, OpAnd, OpOr are the boolean connectives. And/Or are n-ary:
	// operands are flattened, sorted and deduplicated by the constructors.
	OpNot
	OpAnd
	OpOr
	// OpNext (X), OpUntil (U), OpRelease (R), OpEventually (F) and
	// OpAlways (G) are the temporal operators. F and G are kept as
	// first-class nodes (rather than desugared to U/R) so formulas print
	// the way users wrote them and progression stays one rule per node.
	OpNext
	OpUntil
	OpRelease
	OpEventually
	OpAlways
)

// Node is an immutable, hash-consed formula node. Nodes are created only by
// an arena's smart constructors; within one arena, pointer equality is
// formula equality up to the constructors' simplification rules.
type Node struct {
	id   uint32
	op   Op
	atom int     // index into the arena's atom universe when op == OpAtom
	kids []*Node // 1 operand for Not/Next/F/G, 2 for U/R, n for And/Or
}

// Op returns the node operator.
func (n *Node) Op() Op { return n.op }
