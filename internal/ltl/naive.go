package ltl

import (
	"sort"
	"strings"

	"repro/internal/event"
)

// Naive reference evaluator.
//
// An independent implementation of the same LTL3 progression semantics,
// used by the differential test to pin the streaming evaluator: plain
// formula trees instead of a hash-consed arena, canonical-string equality
// instead of pointer identity, no memoization, no sharing. It applies the
// SAME simplification rule set the arena constructors document — verdicts
// are defined by progression-up-to-those-rules, so a reference that
// simplified differently would genuinely disagree (e.g. on tautologies
// like (aUb) || !(aUb)).

type nnode struct {
	op   Op
	atom *Atom
	kids []*nnode
}

var (
	naiveTrue  = &nnode{op: OpTrue}
	naiveFalse = &nnode{op: OpFalse}
)

func (n *nnode) isTrue() bool  { return n.op == OpTrue }
func (n *nnode) isFalse() bool { return n.op == OpFalse }

// key renders a canonical structural identity string.
func (n *nnode) key() string {
	var b strings.Builder
	n.writeKey(&b)
	return b.String()
}

func (n *nnode) writeKey(b *strings.Builder) {
	b.WriteByte(byte('A' + n.op))
	if n.op == OpAtom {
		b.WriteString(n.atom.String())
	}
	b.WriteByte('(')
	for _, k := range n.kids {
		k.writeKey(b)
	}
	b.WriteByte(')')
}

// convertNaive copies an arena formula into a plain tree.
func convertNaive(a *arena, n *Node) *nnode {
	switch n.op {
	case OpTrue:
		return naiveTrue
	case OpFalse:
		return naiveFalse
	case OpAtom:
		return &nnode{op: OpAtom, atom: a.atoms[n.atom]}
	}
	kids := make([]*nnode, len(n.kids))
	for i, k := range n.kids {
		kids[i] = convertNaive(a, k)
	}
	return &nnode{op: n.op, kids: kids}
}

func nNot(x *nnode) *nnode {
	switch {
	case x.isTrue():
		return naiveFalse
	case x.isFalse():
		return naiveTrue
	case x.op == OpNot:
		return x.kids[0]
	}
	return &nnode{op: OpNot, kids: []*nnode{x}}
}

func nGather(op Op, skip func(*nnode) bool, xs, out []*nnode) []*nnode {
	for _, x := range xs {
		if skip(x) {
			continue
		}
		if x.op == op {
			out = nGather(op, skip, x.kids, out)
			continue
		}
		out = append(out, x)
	}
	return out
}

// nJunction implements the shared and/or algebra on trees: flatten, drop
// the identity, annihilate, sort+dedup by canonical key, and collapse
// complementary pairs.
func nJunction(op Op, xs []*nnode) *nnode {
	identity, annihilator := naiveTrue, naiveFalse
	if op == OpOr {
		identity, annihilator = naiveFalse, naiveTrue
	}
	kids := nGather(op, func(n *nnode) bool { return n.op == identity.op }, xs, nil)
	for _, k := range kids {
		if k.op == annihilator.op {
			return annihilator
		}
	}
	type keyed struct {
		k string
		n *nnode
	}
	ks := make([]keyed, len(kids))
	for i, k := range kids {
		ks[i] = keyed{k.key(), k}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].k < ks[j].k })
	uniq := ks[:0]
	for i, k := range ks {
		if i > 0 && k.k == ks[i-1].k {
			continue
		}
		uniq = append(uniq, k)
	}
	present := make(map[string]bool, len(uniq))
	for _, k := range uniq {
		present[k.k] = true
	}
	for _, k := range uniq {
		if k.n.op == OpNot && present[k.n.kids[0].key()] {
			return annihilator
		}
	}
	switch len(uniq) {
	case 0:
		return identity
	case 1:
		return uniq[0].n
	}
	out := make([]*nnode, len(uniq))
	for i, k := range uniq {
		out[i] = k.n
	}
	return &nnode{op: op, kids: out}
}

func nAnd(xs ...*nnode) *nnode { return nJunction(OpAnd, xs) }
func nOr(xs ...*nnode) *nnode  { return nJunction(OpOr, xs) }

func nNext(x *nnode) *nnode {
	if x.isTrue() || x.isFalse() {
		return x
	}
	return &nnode{op: OpNext, kids: []*nnode{x}}
}

func nEventually(x *nnode) *nnode {
	if x.isTrue() || x.isFalse() || x.op == OpEventually {
		return x
	}
	return &nnode{op: OpEventually, kids: []*nnode{x}}
}

func nAlways(x *nnode) *nnode {
	if x.isTrue() || x.isFalse() || x.op == OpAlways {
		return x
	}
	return &nnode{op: OpAlways, kids: []*nnode{x}}
}

func nUntil(f, g *nnode) *nnode {
	switch {
	case g.isTrue() || g.isFalse():
		return g
	case f.isFalse():
		return g
	case f.isTrue():
		return nEventually(g)
	case f.key() == g.key():
		return f
	}
	return &nnode{op: OpUntil, kids: []*nnode{f, g}}
}

func nRelease(f, g *nnode) *nnode {
	switch {
	case g.isTrue() || g.isFalse():
		return g
	case f.isTrue():
		return g
	case f.isFalse():
		return nAlways(g)
	case f.key() == g.key():
		return f
	}
	return &nnode{op: OpRelease, kids: []*nnode{f, g}}
}

// nProg is one progression step on the tree, structurally recursive with no
// sharing or caching.
func nProg(n *nnode, e *event.Entry, digest DigestFunc) *nnode {
	switch n.op {
	case OpTrue, OpFalse:
		return n
	case OpAtom:
		if n.atom.Match(e, digest) {
			return naiveTrue
		}
		return naiveFalse
	case OpNot:
		return nNot(nProg(n.kids[0], e, digest))
	case OpAnd:
		ks := make([]*nnode, len(n.kids))
		for i, k := range n.kids {
			ks[i] = nProg(k, e, digest)
		}
		return nAnd(ks...)
	case OpOr:
		ks := make([]*nnode, len(n.kids))
		for i, k := range n.kids {
			ks[i] = nProg(k, e, digest)
		}
		return nOr(ks...)
	case OpNext:
		return n.kids[0]
	case OpUntil:
		f, g := n.kids[0], n.kids[1]
		return nOr(nProg(g, e, digest), nAnd(nProg(f, e, digest), n))
	case OpRelease:
		f, g := n.kids[0], n.kids[1]
		return nAnd(nProg(g, e, digest), nOr(nProg(f, e, digest), n))
	case OpEventually:
		return nOr(nProg(n.kids[0], e, digest), n)
	case OpAlways:
		return nAnd(nProg(n.kids[0], e, digest), n)
	}
	return n
}

// NaiveVerdict evaluates one property over a whole trace by tree
// progression and returns the LTL3 verdict and witness seq (-1 if
// undecided). The differential test pins the streaming evaluator against
// this.
func NaiveVerdict(p *Prop, entries []event.Entry, digest DigestFunc) (Verdict, int64) {
	cur := convertNaive(p.set.ar, p.root)
	if cur.isTrue() {
		return Satisfied, -1
	}
	if cur.isFalse() {
		return Violated, -1
	}
	for i := range entries {
		cur = nProg(cur, &entries[i], digest)
		if cur.isTrue() {
			return Satisfied, entries[i].Seq
		}
		if cur.isFalse() {
			return Violated, entries[i].Seq
		}
	}
	return Inconclusive, -1
}
