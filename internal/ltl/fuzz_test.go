package ltl

import "testing"

// FuzzParseProp: arbitrary bytes never panic the parser, and anything that
// parses prints canonically — parse(print(f)) succeeds and is a fixed
// point of the printer.
func FuzzParseProp(f *testing.F) {
	seeds := []string{
		"",
		"true",
		"name: G({kind=call, tid=1} -> F {kind=return, tid=1})",
		"{method=Ins*, arg0=5} U ({kind=commit} && !{worker=true})",
		"F({kind=write, method=lock-acq, tid=1, arg0=0} && X(!{kind=write, method=lock-rel, tid=1, arg0=0} U {kind=write, method=lock-acq, tid=1, arg0=1}))",
		"a: {ret=\"quo\\\"ted\"} R {label=x}",
		"¬{kind=call} ∧ ({tid=2} ∨ true) → X false",
		"p: {digest=0xdeadbeef} || {arg3=nil} || {warg1=-7}",
		"#comment\n\nx: true\ny: false",
		"((((true))))",
		"{kind=call,}",
		"{tid=999999999999999999999}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseProps(src) // must never panic
		if err != nil {
			return
		}
		for _, p := range s.Props() {
			// The canonical print must reparse to the identical node in
			// the same arena (printer/parser fixed point)...
			again, err := parseFormula(s.ar, p.Source())
			if err != nil {
				t.Fatalf("reparse canonical %q: %v", p.Source(), err)
			}
			if again != p.root {
				t.Fatalf("parse(print) not a fixed point: %q -> %q", p.Source(), s.ar.formatNode(again))
			}
			// ...and through a fresh arena print the same source.
			p2, err := ParseProp(p.Name + ": " + p.Source())
			if err != nil {
				t.Fatalf("fresh reparse %q: %v", p.Source(), err)
			}
			if p2.Source() != p.Source() {
				t.Fatalf("fresh arena print mismatch: %q vs %q", p2.Source(), p.Source())
			}
		}
	})
}
