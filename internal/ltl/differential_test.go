package ltl

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/event"
)

// randFormula generates a random formula source string over a small atom
// alphabet, exercising the parser alongside both evaluators.
func randFormula(r *rand.Rand, budget int) string {
	atoms := []string{
		"{kind=call}", "{kind=return}", "{kind=commit}", "{kind=write}",
		"{method=A}", "{method=B}", "{tid=1}", "{tid=2}",
		"{arg0=1}", "{arg0=2}", "{method=A, tid=1}", "{kind=write, arg0=1}",
		"true", "false",
	}
	if budget <= 1 {
		return atoms[r.Intn(len(atoms))]
	}
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("!(%s)", randFormula(r, budget-1))
	case 1:
		return fmt.Sprintf("X(%s)", randFormula(r, budget-1))
	case 2:
		return fmt.Sprintf("F(%s)", randFormula(r, budget-1))
	case 3:
		return fmt.Sprintf("G(%s)", randFormula(r, budget-1))
	case 4:
		h := budget / 2
		return fmt.Sprintf("(%s) && (%s)", randFormula(r, h), randFormula(r, budget-h))
	case 5:
		h := budget / 2
		return fmt.Sprintf("(%s) || (%s)", randFormula(r, h), randFormula(r, budget-h))
	case 6:
		h := budget / 2
		return fmt.Sprintf("(%s) U (%s)", randFormula(r, h), randFormula(r, budget-h))
	default:
		h := budget / 2
		return fmt.Sprintf("(%s) R (%s)", randFormula(r, h), randFormula(r, budget-h))
	}
}

func randTrace(r *rand.Rand, n int) []event.Entry {
	kinds := []event.Kind{event.KindCall, event.KindReturn, event.KindCommit, event.KindWrite}
	methods := []string{"A", "B", "C"}
	out := make([]event.Entry, n)
	for i := range out {
		out[i] = event.Entry{
			Seq:    int64(i + 1),
			Kind:   kinds[r.Intn(len(kinds))],
			Method: methods[r.Intn(len(methods))],
			Tid:    int32(1 + r.Intn(3)),
			Args:   []event.Value{r.Intn(3)},
		}
	}
	return out
}

// TestDifferentialStreamingVsNaive pins the streaming hash-consed,
// memoized evaluator against the independent whole-trace tree evaluator:
// same verdict and same witness position on randomized formulas and
// traces. This is the guard against memoization and simplification bugs —
// a memo key collision or a divergent rewrite shows up as a verdict or
// witness mismatch here.
func TestDifferentialStreamingVsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 400; round++ {
		src := randFormula(r, 2+r.Intn(12))
		p, err := ParseProp("p: " + src)
		if err != nil {
			t.Fatalf("round %d: parse %q: %v", round, src, err)
		}
		tr := randTrace(r, 1+r.Intn(40))

		wantV, wantW := NaiveVerdict(p, tr, nil)

		e := p.set.NewEval()
		for i := range tr {
			e.Step(&tr[i])
			if e.Decided() {
				break
			}
		}
		m := e.Monitors()[0]
		if m.Verdict() != wantV || m.Witness() != wantW {
			t.Fatalf("round %d: formula %q (canonical %q): streaming %v@%d, naive %v@%d",
				round, src, p.Source(), m.Verdict(), m.Witness(), wantV, wantW)
		}
	}
}

// TestDifferentialSharedSet runs many properties through ONE shared-arena
// set (the production shape: shared atoms, shared memo) and pins each
// against the naive evaluator individually.
func TestDifferentialSharedSet(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for round := 0; round < 40; round++ {
		s := NewSet()
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			if _, err := s.Add(fmt.Sprintf("p%d", i), randFormula(r, 2+r.Intn(10))); err != nil {
				t.Fatal(err)
			}
		}
		tr := randTrace(r, 1+r.Intn(60))
		e := s.NewEval()
		for i := range tr {
			e.Step(&tr[i])
			if e.Decided() {
				break
			}
		}
		for _, m := range e.Monitors() {
			wantV, wantW := NaiveVerdict(m.Prop, tr, nil)
			// A monitor that decided early has the same verdict the
			// full-trace naive run reaches (verdicts are final).
			if m.Verdict() != wantV || m.Witness() != wantW {
				t.Fatalf("round %d: prop %s: streaming %v@%d, naive %v@%d",
					round, m.Prop, m.Verdict(), m.Witness(), wantV, wantW)
			}
		}
	}
}
