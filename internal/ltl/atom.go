package ltl

import (
	"strconv"
	"strings"

	"repro/internal/event"
)

// DigestFunc resolves the `digest=` atom key: given an entry, it returns a
// digest of the abstract view at that log position (and whether one is
// available there). Typically wired to a view-table hash at commits. With
// no hook installed, digest atoms are simply false.
type DigestFunc func(*event.Entry) (uint64, bool)

// matchKey identifies which entry field a matcher inspects.
type matchKey uint8

const (
	mKind matchKey = iota
	mMethod
	mModule
	mLabel
	mWOp
	mTid
	mWorker
	mDigest
	mArg
	mWArg
	mRet
)

// valKind is the parsed type of a matcher's right-hand side.
type valKind uint8

const (
	vString valKind = iota
	vInt
	vUint
	vBool
	vNil
)

// matcher is one key=value (or key!=value) predicate inside an atom.
type matcher struct {
	key    matchKey
	keyStr string // canonical key text ("method", "arg0", ...)
	idx    int    // arg/warg index
	neg    bool   // != instead of =

	vk     valKind
	s      string
	i      int64
	u      uint64
	b      bool
	prefix bool // trailing * on a string value: prefix match
	kind   event.Kind
}

// Match evaluates the matcher on an entry. A != matcher is the exact
// negation of its = form, so e.g. `arg0!=5` also matches entries with no
// argument 0 at all.
func (m *matcher) match(e *event.Entry, digest DigestFunc) bool {
	ok := m.matchPos(e, digest)
	if m.neg {
		return !ok
	}
	return ok
}

func (m *matcher) matchPos(e *event.Entry, digest DigestFunc) bool {
	switch m.key {
	case mKind:
		return e.Kind == m.kind
	case mMethod:
		return m.matchStr(e.Method)
	case mModule:
		return m.matchStr(e.Module)
	case mLabel:
		return m.matchStr(e.Label)
	case mWOp:
		return m.matchStr(e.WOp)
	case mTid:
		return int64(e.Tid) == m.i
	case mWorker:
		return e.Worker == m.b
	case mDigest:
		if digest == nil {
			return false
		}
		d, ok := digest(e)
		return ok && d == m.u
	case mArg:
		if m.idx >= len(e.Args) {
			return false
		}
		return m.matchVal(e.Args[m.idx])
	case mWArg:
		if m.idx >= len(e.WArgs) {
			return false
		}
		return m.matchVal(e.WArgs[m.idx])
	case mRet:
		return m.matchVal(e.Ret)
	}
	return false
}

func (m *matcher) matchStr(s string) bool {
	if m.prefix {
		return strings.HasPrefix(s, m.s)
	}
	return s == m.s
}

// matchVal compares a logged value (argument, commit-write argument or
// return) against the matcher. Numeric log values of any signed/unsigned
// width compare against int matchers by value.
func (m *matcher) matchVal(v event.Value) bool {
	switch m.vk {
	case vNil:
		return v == nil
	case vBool:
		b, ok := v.(bool)
		return ok && b == m.b
	case vInt, vUint:
		i, ok := asInt64(v)
		return ok && i == m.i
	case vString:
		s, ok := v.(string)
		return ok && m.matchStr(s)
	}
	return false
}

func asInt64(v event.Value) (int64, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case uint:
		return int64(x), true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint64:
		return int64(x), true
	}
	return 0, false
}

// valueString renders the matcher's right-hand side canonically, so that
// reparsing yields the identical matcher.
func (m *matcher) valueString() string {
	var s string
	switch m.vk {
	case vNil:
		return "nil"
	case vBool:
		return strconv.FormatBool(m.b)
	case vInt:
		return strconv.FormatInt(m.i, 10)
	case vUint:
		return "0x" + strconv.FormatUint(m.u, 16)
	case vString:
		s = m.s
	}
	if m.key == mKind {
		return m.kind.String()
	}
	if bareSafe(s) {
		if m.prefix {
			return s + "*"
		}
		return s
	}
	q := strconv.Quote(s)
	if m.prefix {
		return q + "*"
	}
	return q
}

// bareSafe reports whether a string value can print unquoted and reparse to
// the same string matcher (not confusable with an int/bool/nil literal, and
// containing only bareword runes).
func bareSafe(s string) bool {
	if s == "" || s == "true" || s == "false" || s == "nil" {
		return false
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return false
	}
	for _, r := range s {
		if !isBareRune(r) {
			return false
		}
	}
	return true
}

func isBareRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_' || r == '.' || r == '-' || r == '/' || r == ':' || r == '+':
		return true
	}
	return false
}

// Atom is an atomic predicate over one log entry: the conjunction of its
// matchers. `{}` (no matchers) would match every entry and is canonicalized
// to `true` by the parser, so a constructed Atom always has at least one.
type Atom struct {
	ms  []matcher
	src string // canonical source, computed at construction
}

// Match evaluates the atom on an entry.
func (at *Atom) Match(e *event.Entry, digest DigestFunc) bool {
	for i := range at.ms {
		if !at.ms[i].match(e, digest) {
			return false
		}
	}
	return true
}

// String returns the canonical source of the atom.
func (at *Atom) String() string { return at.src }

func newAtom(ms []matcher) *Atom {
	var b strings.Builder
	b.WriteByte('{')
	for i := range ms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ms[i].keyStr)
		if ms[i].neg {
			b.WriteString("!=")
		} else {
			b.WriteString("=")
		}
		b.WriteString(ms[i].valueString())
	}
	b.WriteByte('}')
	return &Atom{ms: ms, src: b.String()}
}

// kindByName maps atom kind values to event kinds.
func kindByName(s string) (event.Kind, bool) {
	for k := event.KindCall; k <= event.KindEndBlock; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}
