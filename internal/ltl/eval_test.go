package ltl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// trace builds a toy log. Each spec is "kind method tid" with optional
// args; Seq is assigned densely from 1.
type tentry struct {
	kind   event.Kind
	method string
	tid    int32
	args   []event.Value
	ret    event.Value
}

func mkTrace(specs []tentry) []event.Entry {
	out := make([]event.Entry, len(specs))
	for i, s := range specs {
		out[i] = event.Entry{
			Seq: int64(i + 1), Kind: s.kind, Method: s.method, Tid: s.tid,
			Args: s.args, Ret: s.ret,
		}
	}
	return out
}

func call(m string, t int32, args ...event.Value) tentry {
	return tentry{kind: event.KindCall, method: m, tid: t, args: args}
}
func ret(m string, t int32, v event.Value) tentry {
	return tentry{kind: event.KindReturn, method: m, tid: t, ret: v}
}
func commit(m string, t int32) tentry { return tentry{kind: event.KindCommit, method: m, tid: t} }
func write(op string, t int32, args ...event.Value) tentry {
	return tentry{kind: event.KindWrite, method: op, tid: t, args: args}
}

func evalOne(t *testing.T, formula string, entries []event.Entry) (Verdict, int64) {
	t.Helper()
	s := NewSet()
	if _, err := s.Add("p", formula); err != nil {
		t.Fatalf("Add(%q): %v", formula, err)
	}
	e := s.NewEval()
	for i := range entries {
		e.Step(&entries[i])
		if e.Decided() {
			break
		}
	}
	m := e.Monitors()[0]
	return m.Verdict(), m.Witness()
}

func TestEvalVerdicts(t *testing.T) {
	tr := mkTrace([]tentry{
		call("Insert", 1, 5),
		commit("Insert", 1),
		ret("Insert", 1, true),
		call("Lookup", 2, 5),
		ret("Lookup", 2, true),
	})
	cases := []struct {
		formula string
		want    Verdict
		witness int64
	}{
		// F resolves at the first match.
		{"F {kind=commit}", Satisfied, 2},
		// F of something absent stays inconclusive.
		{"F {method=Delete}", Inconclusive, -1},
		// G is refuted by the first counterexample.
		{"G {tid=1}", Violated, 4},
		// G of an invariant that holds stays inconclusive (LTL3-honest).
		{"G({kind=call} -> F {kind=return})", Inconclusive, -1},
		// X steps exactly one entry.
		{"X {kind=commit}", Satisfied, 2},
		{"X {kind=return}", Violated, 2},
		// Until resolves on its right arm...
		{"{tid=1} U {kind=return, method=Insert}", Satisfied, 3},
		// ...and is violated when the left arm breaks first.
		{"{kind=call} U {method=Delete}", Violated, 2},
		// Release: the planted commit-discipline shape.
		{"G({kind=call, method=Insert, tid=1} -> X(!{kind=return, method=Insert, tid=1} U {kind=commit, method=Insert, tid=1}))",
			Inconclusive, -1},
		// Atom matchers: args, rets, negation.
		{"F {kind=call, arg0=5}", Satisfied, 1},
		{"F {kind=call, arg0=6}", Inconclusive, -1},
		{"F {kind=return, ret=true, method=Lookup}", Satisfied, 5},
		{"G {method!=Delete}", Inconclusive, -1},
		{"F {method=Look*}", Satisfied, 4},
	}
	for _, c := range cases {
		v, w := evalOne(t, c.formula, tr)
		if v != c.want || w != c.witness {
			t.Errorf("%q: verdict %v witness %d, want %v %d", c.formula, v, w, c.want, c.witness)
		}
	}
}

func TestEvalCommitDisciplineViolated(t *testing.T) {
	// A mutator that returns before committing violates the discipline
	// property with the return as witness.
	tr := mkTrace([]tentry{
		call("Insert", 1, 5),
		ret("Insert", 1, true),
		commit("Insert", 1),
	})
	src := CommitBeforeReturnProps([]string{"Insert"}, []int{1})[0]
	p, err := ParseProp(src)
	if err != nil {
		t.Fatal(err)
	}
	e := p.set.NewEval()
	for i := range tr {
		e.Step(&tr[i])
	}
	m := e.Monitors()[0]
	if m.Verdict() != Violated || m.Witness() != 2 {
		t.Fatalf("verdict %v witness %d, want violated at 2", m.Verdict(), m.Witness())
	}
}

func TestEvalLockReversal(t *testing.T) {
	src := LockReversalProp("rev", "lock-acq", "lock-rel", []int{0, 1}, []int{1, 2})
	p, err := ParseProp(src)
	if err != nil {
		t.Fatal(err)
	}

	// Clean: both threads acquire in canonical order.
	clean := mkTrace([]tentry{
		write("lock-acq", 1, 0), write("lock-acq", 1, 1),
		write("lock-rel", 1, 1), write("lock-rel", 1, 0),
		write("lock-acq", 2, 0), write("lock-acq", 2, 1),
		write("lock-rel", 2, 1), write("lock-rel", 2, 0),
	})
	if v, _ := NaiveVerdict(p, clean, nil); v != Inconclusive {
		t.Fatalf("clean trace: naive verdict %v, want inconclusive", v)
	}
	e := p.set.NewEval()
	for i := range clean {
		e.Step(&clean[i])
	}
	if v := e.Monitors()[0].Verdict(); v != Inconclusive {
		t.Fatalf("clean trace: verdict %v, want inconclusive", v)
	}

	// Reversed: thread 2 nests 1-then-0 after thread 1 nested 0-then-1.
	// The second acquire of the reversed nesting is the witness.
	bad := mkTrace([]tentry{
		write("lock-acq", 1, 0), write("lock-acq", 1, 1),
		write("lock-rel", 1, 1), write("lock-rel", 1, 0),
		write("lock-acq", 2, 1), write("lock-acq", 2, 0),
		write("lock-rel", 2, 0), write("lock-rel", 2, 1),
	})
	e = p.set.NewEval()
	var decided *Monitor
	for i := range bad {
		for _, m := range e.Step(&bad[i]) {
			decided = m
		}
	}
	if decided == nil || decided.Verdict() != Violated || decided.Witness() != 6 {
		t.Fatalf("reversed trace: want violation at 6, got %+v", decided)
	}

	// An interleaved release breaks the nesting: no violation.
	released := mkTrace([]tentry{
		write("lock-acq", 1, 0), write("lock-acq", 1, 1),
		write("lock-rel", 1, 1), write("lock-rel", 1, 0),
		write("lock-acq", 2, 1), write("lock-rel", 2, 1),
		write("lock-acq", 2, 0), write("lock-rel", 2, 0),
	})
	e = p.set.NewEval()
	for i := range released {
		e.Step(&released[i])
	}
	if v := e.Monitors()[0].Verdict(); v != Inconclusive {
		t.Fatalf("released trace: verdict %v, want inconclusive", v)
	}
}

func TestEvalSealedKeyLatch(t *testing.T) {
	src := SealedKeyProps("acct-set", "acct-seal", []int{0, 1})
	s := NewSet()
	for _, line := range src {
		if err := s.AddSource(line); err != nil {
			t.Fatal(err)
		}
	}
	tr := mkTrace([]tentry{
		write("acct-set", 1, 0, 10),
		write("acct-seal", 1, 0),
		write("acct-set", 2, 1, 5),  // key 1 not sealed: fine
		write("acct-set", 2, 0, 11), // key 0 sealed: violation
	})
	rep := CheckEntries(s, tr)
	if rep.TotalViolations != 1 || rep.PropsViolated != 1 {
		t.Fatalf("want exactly one violated prop, got %+v", rep)
	}
	if v := rep.First(); v.Kind != core.ViolationTemporal || v.Seq != 4 {
		t.Fatalf("violation = %+v, want temporal at seq 4", v)
	}
	if rep.PropsInconclusive != 1 {
		t.Fatalf("props inconclusive = %d, want 1", rep.PropsInconclusive)
	}
}

func TestCheckerContract(t *testing.T) {
	// Feed after Done is tolerated; Finish is idempotent; fail-fast stops.
	s := NewSet()
	if _, err := s.Add("never", "G {kind=call}"); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(s, WithFailFast(true))
	tr := mkTrace([]tentry{call("A", 1), ret("A", 1, nil), call("B", 1)})
	for i := range tr {
		c.Feed(tr[i])
	}
	if !c.Done() {
		t.Fatal("fail-fast checker not done after violation")
	}
	if got := c.Report().EntriesProcessed; got != 2 {
		t.Fatalf("entries processed = %d, want 2 (fed after done ignored)", got)
	}
	rep := c.Finish()
	if rep != c.Finish() {
		t.Fatal("Finish not idempotent")
	}
	if rep.PropsViolated != 1 || rep.Ok() {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Mode != core.ModeLTL {
		t.Fatalf("mode = %v, want ltl", rep.Mode)
	}
}

func TestModeAndViolationKindRoundTrip(t *testing.T) {
	// The new enum members survive the JSON round trip the remote
	// protocol depends on.
	var m core.Mode
	if err := m.UnmarshalJSON([]byte(`"ltl"`)); err != nil || m != core.ModeLTL {
		t.Fatalf("mode round trip: %v %v", m, err)
	}
	var k core.ViolationKind
	if err := k.UnmarshalJSON([]byte(`"temporal"`)); err != nil || k != core.ViolationTemporal {
		t.Fatalf("kind round trip: %v %v", k, err)
	}
}

func TestDigestAtom(t *testing.T) {
	s := NewSet()
	if _, err := s.Add("d", "F {kind=commit, digest=0x2a}"); err != nil {
		t.Fatal(err)
	}
	tr := mkTrace([]tentry{commit("A", 1), commit("B", 1)})

	// Without a hook, digest atoms are false: inconclusive.
	if rep := CheckEntries(s, tr); rep.PropsInconclusive != 1 {
		t.Fatalf("no hook: %+v", rep)
	}

	s2 := NewSet()
	s2.SetDigest(func(e *event.Entry) (uint64, bool) {
		if e.Method == "B" {
			return 42, true
		}
		return 0, false
	})
	if _, err := s2.Add("d", "F {kind=commit, digest=0x2a}"); err != nil {
		t.Fatal(err)
	}
	rep := CheckEntries(s2, tr)
	if rep.PropsSatisfied != 1 {
		t.Fatalf("with hook: %+v", rep)
	}
}
