package ltl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
)

// CheckerOption configures a Checker.
type CheckerOption func(*Checker)

// WithFailFast stops checking at the first violated property.
func WithFailFast(on bool) CheckerOption { return func(c *Checker) { c.failFast = on } }

// WithMaxViolations caps recorded violations (TotalViolations still counts
// all of them). Default 16, mirroring the refinement checker.
func WithMaxViolations(n int) CheckerOption { return func(c *Checker) { c.maxViolations = n } }

// Checker adapts a property Set evaluation to core.EntryChecker, so LTL
// checking rides every existing driver unchanged: the offline cursor
// driver, core.Multi fan-out, the online wal pipeline and the fleet
// scheduler. One incremental evaluator step per entry; state is the
// residual formulas, never the trace.
type Checker struct {
	ev            *Eval
	rep           *core.Report
	maxViolations int
	failFast      bool
	done          bool
	finished      bool
}

var _ core.EntryChecker = (*Checker)(nil)

// NewChecker starts a checking run over the set's properties.
func NewChecker(s *Set, opts ...CheckerOption) *Checker {
	c := &Checker{
		ev:            s.NewEval(),
		rep:           &core.Report{Mode: core.ModeLTL},
		maxViolations: 16,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Feed advances every undecided property by one entry. Calls after Done or
// Finish are tolerated and ignored.
func (c *Checker) Feed(e event.Entry) {
	if c.finished || c.done {
		return
	}
	c.rep.EntriesProcessed++
	switch e.Kind {
	case event.KindReturn:
		c.rep.MethodsCompleted++
	case event.KindCommit:
		c.rep.CommitsApplied++
	}
	for _, m := range c.ev.Step(&e) {
		if m.Verdict() != Violated {
			continue
		}
		c.rep.TotalViolations++
		if len(c.rep.Violations) < c.maxViolations {
			c.rep.Violations = append(c.rep.Violations, core.Violation{
				Kind:             core.ViolationTemporal,
				Seq:              m.Witness(),
				Tid:              e.Tid,
				Method:           e.Method,
				Detail:           fmt.Sprintf("property %q refuted: %s", m.Prop.Name, truncate(m.Prop.Source(), 160)),
				MethodsCompleted: c.rep.MethodsCompleted,
			})
		}
	}
	if c.ev.Decided() || (c.failFast && c.rep.TotalViolations > 0) {
		c.done = true
	}
}

// Finish freezes the verdict: undecided properties become Inconclusive (the
// honest LTL3 answer at log end) and the per-verdict counters are filled.
func (c *Checker) Finish() *core.Report {
	if c.finished {
		return c.rep
	}
	c.finished = true
	for _, m := range c.ev.Monitors() {
		switch m.Verdict() {
		case Satisfied:
			c.rep.PropsSatisfied++
		case Violated:
			c.rep.PropsViolated++
		default:
			c.rep.PropsInconclusive++
		}
	}
	return c.rep
}

// Done reports whether the checker needs no further entries.
func (c *Checker) Done() bool { return c.done }

// Report returns the current report; complete only after Finish.
func (c *Checker) Report() *core.Report { return c.rep }

// Monitors exposes the per-property monitors for diagnostics (residuals of
// inconclusive properties, witnesses of decided ones).
func (c *Checker) Monitors() []*Monitor { return c.ev.Monitors() }

// CheckEntries evaluates the set over a decoded log, offline.
func CheckEntries(s *Set, entries []event.Entry, opts ...CheckerOption) *core.Report {
	c := NewChecker(s, opts...)
	for i := range entries {
		if c.Done() {
			break
		}
		c.Feed(entries[i])
	}
	return c.Finish()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
