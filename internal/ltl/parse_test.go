package ltl

import (
	"strings"
	"testing"
)

func TestParseCanonicalRoundTrip(t *testing.T) {
	// Each case: input formula and its canonical print. Reparsing the
	// canonical form must be a fixed point (same node in the same arena).
	cases := []struct{ in, want string }{
		{"true", "true"},
		{"false", "false"},
		{"{}", "true"},
		{"{kind=call}", "{kind=call}"},
		{"{ kind = call , tid = 3 }", "{kind=call, tid=3}"},
		{"{method=Insert, arg0=5, ret=true}", "{method=Insert, arg0=5, ret=true}"},
		{"{method=Ins*}", "{method=Ins*}"},
		{"{method=\"odd name\"}", `{method="odd name"}`},
		{"{arg0=\"5\"}", `{arg0="5"}`},
		{"{arg1=nil}", "{arg1=nil}"},
		{"{tid!=2}", "{tid!=2}"},
		{"{digest=0xff}", "{digest=0xff}"},
		{"{digest=255}", "{digest=0xff}"},
		{"!{kind=call}", "!{kind=call}"},
		{"!!{kind=call}", "{kind=call}"},
		{"X {kind=call}", "X {kind=call}"},
		{"F F {kind=call}", "F {kind=call}"},
		{"G(G {kind=call})", "G {kind=call}"},
		{"{kind=call} && true", "{kind=call}"},
		{"{kind=call} && false", "false"},
		{"{kind=call} || true", "true"},
		{"{kind=call} && {kind=call}", "{kind=call}"},
		{"{kind=call} && !{kind=call}", "false"},
		{"{kind=call} || !{kind=call}", "true"},
		{"{kind=call} U true", "true"},
		{"true U {kind=call}", "F {kind=call}"},
		{"false U {kind=call}", "{kind=call}"},
		{"false R {kind=call}", "G {kind=call}"},
		// Or operands sort by arena creation order, so the implication's
		// right side (created before the negation node) prints first.
		{"{kind=call} -> {kind=return}", "{kind=return} || !{kind=call}"},
		{"¬{kind=call} ∧ true", "!{kind=call}"},
		{"{kind=call} → {kind=return}", "{kind=return} || !{kind=call}"},
		{
			"G({kind=call, tid=1} -> F {kind=return, tid=1})",
			"G (F {kind=return, tid=1} || !{kind=call, tid=1})",
		},
		{
			"{kind=call} U ({kind=return} U {kind=commit})",
			"{kind=call} U {kind=return} U {kind=commit}",
		},
		{
			"({kind=call} U {kind=return}) U {kind=commit}",
			"({kind=call} U {kind=return}) U {kind=commit}",
		},
	}
	for _, c := range cases {
		s := NewSet()
		root, err := parseFormula(s.ar, c.in)
		if err != nil {
			t.Errorf("parse %q: %v", c.in, err)
			continue
		}
		got := s.ar.formatNode(root)
		if got != c.want {
			t.Errorf("parse %q: printed %q, want %q", c.in, got, c.want)
			continue
		}
		again, err := parseFormula(s.ar, got)
		if err != nil {
			t.Errorf("reparse %q: %v", got, err)
			continue
		}
		if again != root {
			t.Errorf("reparse %q: not a fixed point (printed %q)", got, s.ar.formatNode(again))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(",
		")",
		"{kind=call",
		"{kind=zebra}",
		"{frobs=1}",
		"{tid=x}",
		"{worker=maybe}",
		"{arg0=}",
		"{arg99=1}",
		"{kind=call,}",
		"{kind=call} &&",
		"{kind=call} {kind=call}",
		"U {kind=call}",
		"{kind=call} -",
		"name with spaces: true",
		strings.Repeat("!", 2000) + "true",
		strings.Repeat("(", 2000) + "true" + strings.Repeat(")", 2000),
		strings.Repeat("true->", 1000) + "true",
	}
	for _, src := range bad {
		if _, err := ParseProp(src); err == nil {
			t.Errorf("ParseProp(%.40q): expected error, got none", src)
		}
	}
}

func TestParsePropsDocument(t *testing.T) {
	src := `
# lock discipline
no-reversal: !F({kind=write, method=lock-acq, arg0=0})
G({kind=call} -> F {kind=return})

liveness.t2: G({kind=call, tid=2} -> F {kind=return, tid=2})
`
	s, err := ParseProps(src)
	if err != nil {
		t.Fatalf("ParseProps: %v", err)
	}
	props := s.Props()
	if len(props) != 3 {
		t.Fatalf("got %d props, want 3", len(props))
	}
	wantNames := []string{"no-reversal", "prop2", "liveness.t2"}
	for i, p := range props {
		if p.Name != wantNames[i] {
			t.Errorf("prop %d name = %q, want %q", i, p.Name, wantNames[i])
		}
	}
	// Sources round-trip through ParseProps (the Hello handshake path).
	again, err := ParseProps(strings.Join(s.Sources(), "\n"))
	if err != nil {
		t.Fatalf("reparse sources: %v", err)
	}
	for i, p := range again.Props() {
		if p.String() != props[i].String() {
			t.Errorf("source round trip: %q != %q", p, props[i])
		}
	}
}

func TestParsePropsDuplicateName(t *testing.T) {
	if _, err := ParseProps("a: true\na: false"); err == nil {
		t.Fatal("duplicate names: expected error")
	}
}
