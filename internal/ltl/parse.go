package ltl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Property syntax
//
// A property document is line-oriented: blank lines and `#` comments are
// skipped, every other line is one property, either named or bare:
//
//	# lock discipline for tids 1..2
//	no-reversal: !(F({kind=write, method=lock-acq, tid=1, arg0=0}) && ...)
//	G({kind=call, tid=1} -> F {kind=return, tid=1})
//
// Formula grammar, loosest-binding first (-> and U/R associate right):
//
//	formula := or [ '->' formula ]
//	or      := and { '||' and }
//	and     := until { '&&' until }
//	until   := unary [ ('U' | 'R') until ]
//	unary   := ('!' | 'X' | 'F' | 'G') unary | '(' formula ')'
//	         | 'true' | 'false' | atom
//	atom    := '{' [ key ('='|'!=') value { ',' key ('='|'!=') value } ] '}'
//
// `->` desugars to material implication. The unicode spellings ¬ ∧ ∨ →
// and single `&`/`|` are accepted aliases. Atom keys: kind, method,
// module, label, wop, tid, worker, digest, ret, argN, wargN. Values are
// integers, true/false, nil, 0x-hex digests, or strings (bare or quoted;
// a trailing `*` makes a prefix match). An empty atom `{}` matches every
// entry and parses as `true`.

// maxParseDepth bounds parser recursion so adversarial inputs (deep `!` or
// `->` chains) return an error instead of exhausting the stack.
const maxParseDepth = 500

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tAtom
	tLParen
	tRParen
	tNot
	tAndOp
	tOrOp
	tArrow
)

type token struct {
	kind tokKind
	text string // ident text, or atom body without braces
	pos  int
}

type parser struct {
	ar    *arena
	src   string
	pos   int
	tok   token
	depth int
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("ltl: col %d: %s", pos+1, fmt.Sprintf(format, args...))
}

// next scans the next token. Lexing errors are returned, never panicked.
func (p *parser) next() error {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			p.pos++
			continue
		}
		break
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tEOF, pos: start}
		return nil
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		p.tok = token{kind: tLParen, pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tRParen, pos: start}
	case c == '!':
		p.pos++
		p.tok = token{kind: tNot, pos: start}
	case c == '&':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '&' {
			p.pos++
		}
		p.tok = token{kind: tAndOp, pos: start}
	case c == '|':
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '|' {
			p.pos++
		}
		p.tok = token{kind: tOrOp, pos: start}
	case c == '-':
		if p.pos+1 < len(p.src) && p.src[p.pos+1] == '>' {
			p.pos += 2
			p.tok = token{kind: tArrow, pos: start}
			return nil
		}
		return p.errf(start, "unexpected %q (did you mean '->'?)", "-")
	case c == '{':
		body, end, err := scanAtomBody(p.src, p.pos)
		if err != nil {
			return err
		}
		p.pos = end
		p.tok = token{kind: tAtom, text: body, pos: start}
	case isIdentStart(rune(c)):
		end := p.pos
		for end < len(p.src) && isIdentRune(rune(p.src[end])) {
			end++
		}
		p.tok = token{kind: tIdent, text: p.src[p.pos:end], pos: start}
		p.pos = end
	default:
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		switch r {
		case '¬':
			p.pos += size
			p.tok = token{kind: tNot, pos: start}
		case '∧':
			p.pos += size
			p.tok = token{kind: tAndOp, pos: start}
		case '∨':
			p.pos += size
			p.tok = token{kind: tOrOp, pos: start}
		case '→':
			p.pos += size
			p.tok = token{kind: tArrow, pos: start}
		default:
			return p.errf(start, "unexpected character %q", r)
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

func isIdentRune(r rune) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}

// scanAtomBody consumes a `{...}` atom starting at open, honoring quoted
// strings (backslash escapes included), and returns the body and the
// position just past the closing brace.
func scanAtomBody(src string, open int) (string, int, error) {
	i := open + 1
	for i < len(src) {
		switch src[i] {
		case '}':
			return src[open+1 : i], i + 1, nil
		case '"':
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(src) {
				return "", 0, fmt.Errorf("ltl: col %d: unterminated string in atom", open+1)
			}
			i++
		default:
			i++
		}
	}
	return "", 0, fmt.Errorf("ltl: col %d: unterminated atom (missing '}')", open+1)
}

// formula parses the top level: or [ '->' formula ].
func (p *parser) formula() (*Node, error) {
	if p.depth++; p.depth > maxParseDepth {
		return nil, p.errf(p.tok.pos, "formula too deeply nested")
	}
	defer func() { p.depth-- }()
	left, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tArrow {
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.formula()
		if err != nil {
			return nil, err
		}
		return p.ar.newOr(p.ar.newNot(left), right), nil
	}
	return left, nil
}

func (p *parser) or() (*Node, error) {
	part, err := p.and()
	if err != nil {
		return nil, err
	}
	parts := []*Node{part}
	for p.tok.kind == tOrOp {
		if err := p.next(); err != nil {
			return nil, err
		}
		part, err := p.and()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return p.ar.newOr(parts...), nil
}

func (p *parser) and() (*Node, error) {
	part, err := p.until()
	if err != nil {
		return nil, err
	}
	parts := []*Node{part}
	for p.tok.kind == tAndOp {
		if err := p.next(); err != nil {
			return nil, err
		}
		part, err := p.until()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return p.ar.newAnd(parts...), nil
}

func (p *parser) until() (*Node, error) {
	if p.depth++; p.depth > maxParseDepth {
		return nil, p.errf(p.tok.pos, "formula too deeply nested")
	}
	defer func() { p.depth-- }()
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tIdent && (p.tok.text == "U" || p.tok.text == "R") {
		op := p.tok.text
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.until()
		if err != nil {
			return nil, err
		}
		if op == "U" {
			return p.ar.newUntil(left, right), nil
		}
		return p.ar.newRelease(left, right), nil
	}
	return left, nil
}

func (p *parser) unary() (*Node, error) {
	if p.depth++; p.depth > maxParseDepth {
		return nil, p.errf(p.tok.pos, "formula too deeply nested")
	}
	defer func() { p.depth-- }()
	switch p.tok.kind {
	case tNot:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return p.ar.newNot(x), nil
	case tLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.formula()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.errf(p.tok.pos, "expected ')'")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return x, nil
	case tAtom:
		n, err := p.parseAtom(p.tok.text, p.tok.pos)
		if err != nil {
			return nil, err
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return n, nil
	case tIdent:
		name, pos := p.tok.text, p.tok.pos
		switch name {
		case "true":
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.ar.tt, nil
		case "false":
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.ar.ff, nil
		case "X", "F", "G":
			if err := p.next(); err != nil {
				return nil, err
			}
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			switch name {
			case "X":
				return p.ar.newNext(x), nil
			case "F":
				return p.ar.newEventually(x), nil
			default:
				return p.ar.newAlways(x), nil
			}
		}
		return nil, p.errf(pos, "unexpected identifier %q (expected atom, 'true', 'false' or an operator)", name)
	case tEOF:
		return nil, p.errf(p.tok.pos, "unexpected end of formula")
	}
	return nil, p.errf(p.tok.pos, "unexpected token")
}

// parseAtom parses the body of a `{...}` atom into a node. An empty body
// matches every entry and canonicalizes to `true`.
func (p *parser) parseAtom(body string, atomPos int) (*Node, error) {
	s := atomScanner{src: body, base: atomPos + 1}
	s.skipSpace()
	if s.eof() {
		return p.ar.tt, nil
	}
	var ms []matcher
	for {
		m, err := s.matcher()
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
		s.skipSpace()
		if s.eof() {
			break
		}
		if !s.consume(',') {
			return nil, fmt.Errorf("ltl: col %d: expected ',' between atom fields", s.base+s.pos+1)
		}
		s.skipSpace()
		if s.eof() {
			return nil, fmt.Errorf("ltl: col %d: trailing ',' in atom", s.base+s.pos+1)
		}
	}
	return p.ar.internAtom(newAtom(ms)), nil
}

// atomScanner parses the comma-separated key=value list inside an atom.
type atomScanner struct {
	src  string
	pos  int
	base int // source offset of src, for error positions
}

func (s *atomScanner) eof() bool { return s.pos >= len(s.src) }

func (s *atomScanner) skipSpace() {
	for !s.eof() {
		switch s.src[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func (s *atomScanner) consume(c byte) bool {
	if !s.eof() && s.src[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

func (s *atomScanner) errf(format string, args ...any) error {
	return fmt.Errorf("ltl: col %d: %s", s.base+s.pos+1, fmt.Sprintf(format, args...))
}

func (s *atomScanner) matcher() (matcher, error) {
	s.skipSpace()
	start := s.pos
	for !s.eof() && isIdentRune(rune(s.src[s.pos])) {
		s.pos++
	}
	key := s.src[start:s.pos]
	if key == "" {
		return matcher{}, s.errf("expected atom key")
	}
	s.skipSpace()
	neg := false
	if s.consume('!') {
		neg = true
	}
	if !s.consume('=') {
		return matcher{}, s.errf("expected '=' after atom key %q", key)
	}
	s.skipSpace()
	raw, quoted, prefix, err := s.value()
	if err != nil {
		return matcher{}, err
	}
	return buildMatcher(key, raw, quoted, prefix, neg, s)
}

// value scans one right-hand side: a quoted string or a bareword, each with
// an optional trailing '*'.
func (s *atomScanner) value() (raw string, quoted, prefix bool, err error) {
	if s.eof() {
		return "", false, false, s.errf("expected atom value")
	}
	if s.src[s.pos] == '"' {
		start := s.pos
		s.pos++
		for !s.eof() && s.src[s.pos] != '"' {
			if s.src[s.pos] == '\\' {
				s.pos++
			}
			s.pos++
		}
		if s.eof() {
			return "", false, false, s.errf("unterminated quoted value")
		}
		s.pos++
		unq, uerr := strconv.Unquote(s.src[start:s.pos])
		if uerr != nil {
			return "", false, false, s.errf("bad quoted value %s", s.src[start:s.pos])
		}
		return unq, true, s.consume('*'), nil
	}
	start := s.pos
	for !s.eof() && isBareRune(rune(s.src[s.pos])) && s.src[s.pos] != ',' {
		s.pos++
	}
	raw = s.src[start:s.pos]
	if raw == "" {
		return "", false, false, s.errf("expected atom value")
	}
	return raw, false, s.consume('*'), nil
}

// buildMatcher types and validates one key=value pair.
func buildMatcher(key, raw string, quoted, prefix, neg bool, s *atomScanner) (matcher, error) {
	m := matcher{keyStr: key, neg: neg, prefix: prefix}
	stringVal := func() {
		m.vk = vString
		m.s = raw
	}
	switch key {
	case "kind":
		k, ok := kindByName(raw)
		if !ok || prefix {
			return matcher{}, s.errf("unknown entry kind %q (call, return, commit, write, begin-block, end-block)", raw)
		}
		m.key, m.kind = mKind, k
		stringVal()
		m.prefix = false
	case "method", "module", "label", "wop":
		switch key {
		case "method":
			m.key = mMethod
		case "module":
			m.key = mModule
		case "label":
			m.key = mLabel
		case "wop":
			m.key = mWOp
		}
		stringVal()
	case "tid":
		i, err := strconv.ParseInt(raw, 10, 32)
		if err != nil || quoted || prefix {
			return matcher{}, s.errf("tid wants an integer, got %q", raw)
		}
		m.key, m.vk, m.i = mTid, vInt, i
	case "worker":
		switch raw {
		case "true", "false":
			m.key, m.vk, m.b = mWorker, vBool, raw == "true"
		default:
			return matcher{}, s.errf("worker wants true or false, got %q", raw)
		}
		if quoted || prefix {
			return matcher{}, s.errf("worker wants a bare true or false")
		}
	case "digest":
		u, err := strconv.ParseUint(raw, 0, 64)
		if err != nil || quoted || prefix {
			return matcher{}, s.errf("digest wants an unsigned integer, got %q", raw)
		}
		m.key, m.vk, m.u = mDigest, vUint, u
	case "ret":
		m.key = mRet
		typeValue(&m, raw, quoted)
	default:
		base, rest := "", ""
		switch {
		case strings.HasPrefix(key, "arg"):
			base, rest = "arg", key[3:]
		case strings.HasPrefix(key, "warg"):
			base, rest = "warg", key[4:]
		}
		idx, err := strconv.Atoi(rest)
		if base == "" || err != nil || idx < 0 || idx > 64 || (rest != "0" && strings.HasPrefix(rest, "0")) {
			return matcher{}, s.errf("unknown atom key %q (kind, method, module, label, wop, tid, worker, digest, ret, argN, wargN)", key)
		}
		if base == "arg" {
			m.key = mArg
		} else {
			m.key = mWArg
		}
		m.idx = idx
		typeValue(&m, raw, quoted)
	}
	return m, nil
}

// typeValue types a value-position right-hand side (ret/argN/wargN): bare
// integers, true/false and nil are typed literals; everything else is a
// string matcher. Quoting forces string.
func typeValue(m *matcher, raw string, quoted bool) {
	if !quoted && !m.prefix {
		if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
			m.vk, m.i = vInt, i
			return
		}
		switch raw {
		case "true", "false":
			m.vk, m.b = vBool, raw == "true"
			return
		case "nil":
			m.vk = vNil
			return
		}
	}
	m.vk, m.s = vString, raw
}

// parseFormula parses one formula into the arena.
func parseFormula(ar *arena, src string) (*Node, error) {
	p := &parser{ar: ar, src: src}
	if err := p.next(); err != nil {
		return nil, err
	}
	n, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf(p.tok.pos, "unexpected trailing input")
	}
	return n, nil
}
