// Package msvector is the paper's "Multiset-Vector" subject (Section 7.4.2):
// a multiset with a growable, vector-based slot representation, per-slot
// locking, and an internal compression thread that compacts valid elements
// toward the front of the vector without changing the multiset contents.
//
// The injected bug is the one named in Table 1 — "Moving acquire in
// FindSlot": the slot-emptiness check is performed before the slot lock is
// acquired (the Fig. 5 race), so concurrent FindSlot calls can reserve the
// same slot and overwrite each other's element.
//
// The package shares the multiset specification and log-replay vocabulary
// with internal/multiset ("slot-elt", "slot-valid", "slot-clear",
// "slot-move"), so the same Replayer reconstructs viewI for both.
package msvector

import (
	"runtime"
	"sync"

	"repro/internal/event"

	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugFindSlotAcquire performs the emptiness check before acquiring the
	// slot lock (Table 1: "Moving acquire in FindSlot").
	BugFindSlotAcquire
)

type slot struct {
	mu       sync.Mutex
	elt      int
	occupied bool
	valid    bool
}

// Multiset is the vector-based multiset. The header lock guards the slot
// vector itself (growth and compaction); per-slot locks guard slot contents.
// Method scans hold the header read lock so the vector cannot be compacted
// under them; reservations (occupied, not yet valid) pin a slot in place —
// the compressor only relocates valid slots.
type Multiset struct {
	header sync.RWMutex
	slots  []*slot
	bug    Bug

	// RaceWindow, when non-nil, runs in the buggy FindSlot between the
	// unprotected emptiness check and the lock acquisition.
	RaceWindow func(i int)
}

// New returns an empty multiset with the given initial capacity.
func New(initialCap int, bug Bug) *Multiset {
	m := &Multiset{bug: bug}
	m.slots = make([]*slot, 0, initialCap)
	for i := 0; i < initialCap; i++ {
		m.slots = append(m.slots, &slot{})
	}
	return m
}

// Len reports the current vector length (for tests).
func (m *Multiset) Len() int {
	m.header.RLock()
	defer m.header.RUnlock()
	return len(m.slots)
}

// grow appends fresh slots, doubling the vector, and returns the index of
// the first new slot. seen is the length the caller observed when its scan
// failed: if the vector has already grown past it (a concurrent grower got
// here first), grow does nothing — otherwise N threads failing a scan of
// the same full vector would stack N doublings. Caller must not hold the
// header lock.
func (m *Multiset) grow(seen int) int {
	m.header.Lock()
	defer m.header.Unlock()
	first := len(m.slots)
	if first > seen {
		return first
	}
	n := len(m.slots)
	if n == 0 {
		n = 4
	}
	for i := 0; i < n; i++ {
		m.slots = append(m.slots, &slot{})
	}
	return first
}

// findSlot reserves a slot for x and returns its index. The vector grows on
// demand, so reservation only fails pathologically; -1 is still possible
// under extreme contention and is treated as an unsuccessful termination.
func (m *Multiset) findSlot(p *vyrd.Probe, x int) int {
	for attempt := 0; attempt < 4; attempt++ {
		m.header.RLock()
		n := len(m.slots)
		for i := 0; i < n; i++ {
			s := m.slots[i]
			if m.bug == BugFindSlotAcquire {
				if !s.occupied { // BUG: the slot should be locked here
					if m.RaceWindow != nil {
						m.RaceWindow(i)
					} else {
						runtime.Gosched() // model preemption in the race window
					}
					p.Yield() // controlled-scheduler preemption point inside the race window
					s.mu.Lock()
					s.occupied = true
					s.elt = x
					p.Write("slot-elt", i, x)
					s.mu.Unlock()
					m.header.RUnlock()
					return i
				}
				continue
			}
			s.mu.Lock()
			if !s.occupied {
				s.occupied = true
				s.elt = x
				p.Write("slot-elt", i, x)
				s.mu.Unlock()
				m.header.RUnlock()
				return i
			}
			s.mu.Unlock()
		}
		m.header.RUnlock()
		m.grow(n)
	}
	return -1
}

func (m *Multiset) release(p *vyrd.Probe, i int) {
	m.header.RLock()
	if i >= len(m.slots) {
		m.header.RUnlock()
		return
	}
	s := m.slots[i]
	s.mu.Lock()
	s.occupied = false
	s.valid = false
	p.Write("slot-clear", i)
	s.mu.Unlock()
	m.header.RUnlock()
}

// Insert adds one copy of x.
func (m *Multiset) Insert(p *vyrd.Probe, x int) bool {
	inv := p.Call("Insert", x)
	i := m.findSlot(p, x)
	if i == -1 {
		inv.Commit("full")
		inv.Return(false)
		return false
	}
	m.header.RLock()
	if i >= len(m.slots) {
		// Only reachable under the injected FindSlot bug: the reservation
		// was stolen, deleted and compacted away. The real system would
		// crash here; model it as an exceptional (unsuccessful) termination.
		m.header.RUnlock()
		inv.Commit("lost-slot")
		inv.Return(event.Exceptional{Reason: "slot reservation lost"})
		return false
	}
	s := m.slots[i]
	s.mu.Lock()
	s.valid = true
	inv.CommitWrite("validated", "slot-valid", i, true)
	s.mu.Unlock()
	m.header.RUnlock()
	inv.Return(true)
	return true
}

// InsertPair adds one copy of each of x and y, or neither.
func (m *Multiset) InsertPair(p *vyrd.Probe, x, y int) bool {
	inv := p.Call("InsertPair", x, y)
	i := m.findSlot(p, x)
	if i == -1 {
		inv.Commit("full-x")
		inv.Return(false)
		return false
	}
	j := m.findSlot(p, y)
	if j == -1 {
		m.release(p, i)
		inv.Commit("full-y")
		inv.Return(false)
		return false
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	m.header.RLock()
	if hi >= len(m.slots) {
		// See Insert: a stolen reservation was compacted away (injected
		// bug only); terminate exceptionally without touching state.
		m.header.RUnlock()
		inv.Commit("lost-slot")
		inv.Return(event.Exceptional{Reason: "slot reservation lost"})
		return false
	}
	inv.BeginCommitBlock()
	m.slots[lo].mu.Lock()
	if hi != lo {
		m.slots[hi].mu.Lock()
	}
	m.slots[i].valid = true
	p.Write("slot-valid", i, true)
	m.slots[j].valid = true
	p.Write("slot-valid", j, true)
	inv.Commit("pair")
	if hi != lo {
		m.slots[hi].mu.Unlock()
	}
	m.slots[lo].mu.Unlock()
	inv.EndCommitBlock()
	m.header.RUnlock()
	inv.Return(true)
	return true
}

// Delete removes one copy of x if found; false ("not found") is always a
// permitted outcome.
func (m *Multiset) Delete(p *vyrd.Probe, x int) bool {
	inv := p.Call("Delete", x)
	m.header.RLock()
	for i, s := range m.slots {
		s.mu.Lock()
		if s.occupied && s.valid && s.elt == x {
			inv.BeginCommitBlock()
			s.valid = false
			p.Write("slot-valid", i, false)
			s.occupied = false
			p.Write("slot-clear", i)
			inv.Commit("deleted")
			inv.EndCommitBlock()
			s.mu.Unlock()
			m.header.RUnlock()
			inv.Return(true)
			return true
		}
		s.mu.Unlock()
	}
	m.header.RUnlock()
	inv.Commit("not-found")
	inv.Return(false)
	return false
}

// LookUp reports membership of x (observer).
func (m *Multiset) LookUp(p *vyrd.Probe, x int) bool {
	inv := p.Call("LookUp", x)
	found := false
	m.header.RLock()
	for _, s := range m.slots {
		s.mu.Lock()
		hit := s.occupied && s.valid && s.elt == x
		s.mu.Unlock()
		if hit {
			found = true
			break
		}
	}
	m.header.RUnlock()
	inv.Return(found)
	return found
}

// Compress performs one compaction pass: valid elements are moved into
// empty slots closer to the front and the empty tail is trimmed. It runs
// under the exclusive header lock, so the whole pass is atomic; the moves
// are logged inside a commit block of the Compress pseudo-method and must
// leave the multiset contents — the view — unchanged (Section 7.2.3).
func (m *Multiset) Compress(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	m.header.Lock()
	inv.BeginCommitBlock()
	dst := 0
	for src := 0; src < len(m.slots); src++ {
		s := m.slots[src]
		if !s.occupied {
			continue
		}
		if !s.valid {
			// A reservation in flight pins its own index; leave it, but
			// later valid slots may still move into free slots before it.
			continue
		}
		// Advance dst to the first free slot before src.
		for dst < src && m.slots[dst].occupied {
			dst++
		}
		if dst >= src {
			continue
		}
		d := m.slots[dst]
		d.elt, d.occupied, d.valid = s.elt, true, true
		s.elt, s.occupied, s.valid = 0, false, false
		p.Write("slot-move", src, dst)
		dst++
	}
	// Trim the empty tail, keeping a small minimum capacity.
	last := len(m.slots)
	for last > 4 && !m.slots[last-1].occupied {
		last--
	}
	m.slots = m.slots[:last]
	inv.Commit("compacted")
	inv.EndCommitBlock()
	m.header.Unlock()
	inv.Return(nil)
}

// Contents returns the current multiset contents; for quiesced tests only.
func (m *Multiset) Contents() map[int]int {
	out := make(map[int]int)
	m.header.RLock()
	defer m.header.RUnlock()
	for _, s := range m.slots {
		s.mu.Lock()
		if s.occupied && s.valid {
			out[s.elt]++
		}
		s.mu.Unlock()
	}
	return out
}
