package msvector

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/multiset"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(multiset.NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewMultiset(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialOperations(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(4, BugNone)
	if !m.Insert(p, 1) || !m.InsertPair(p, 2, 3) {
		t.Fatal("inserts failed")
	}
	if !m.LookUp(p, 1) || !m.LookUp(p, 2) || !m.LookUp(p, 3) || m.LookUp(p, 4) {
		t.Fatal("lookup results wrong")
	}
	if !m.Delete(p, 2) || m.Delete(p, 2) {
		t.Fatal("delete results wrong")
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestGrowthBeyondInitialCapacity(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(2, BugNone)
	for i := 0; i < 40; i++ {
		if !m.Insert(p, i) {
			t.Fatalf("Insert(%d) failed despite growth", i)
		}
	}
	if m.Len() < 40 {
		t.Fatalf("vector did not grow: len %d", m.Len())
	}
	for i := 0; i < 40; i++ {
		if !m.LookUp(p, i) {
			t.Fatalf("LookUp(%d) failed", i)
		}
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("view check: %s", rep)
	}
}

func TestCompressPreservesContentsAndShrinks(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(4, BugNone)
	for i := 0; i < 32; i++ {
		m.Insert(p, i)
	}
	for i := 0; i < 32; i += 2 {
		if !m.Delete(p, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	before := m.Contents()
	lenBefore := m.Len()
	wp := log.NewWorkerProbe()
	m.Compress(wp)
	after := m.Contents()
	if len(before) != len(after) {
		t.Fatalf("compress changed contents: %v vs %v", before, after)
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("compress changed count of %d", k)
		}
	}
	if m.Len() > lenBefore {
		t.Fatalf("compress grew the vector: %d -> %d", lenBefore, m.Len())
	}
	log.Close()
	// The Compress pseudo-method's view must be unchanged — the checker
	// verifies it at the Compress commit.
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("view check: %s", rep)
	}
}

func TestCompressConcurrentWithMutators(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(8, BugNone)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Compress(wp)
			}
		}
	}()

	var appWg sync.WaitGroup
	for th := 0; th < 4; th++ {
		appWg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer appWg.Done()
			x := seed
			for i := 0; i < 300; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				k := x % 12
				switch x % 4 {
				case 0:
					m.Insert(p, k)
				case 1:
					m.InsertPair(p, k, (k+1)%12)
				case 2:
					m.Delete(p, k)
				case 3:
					m.LookUp(p, k)
				}
			}
		}(th + 1)
	}
	appWg.Wait()
	close(stop)
	wg.Wait()
	log.Close()

	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive under compression, %v mode:\n%s", mode, rep)
		}
	}
}

// TestBugDeterministic forces the FindSlot overwrite with the race-window
// hook, as in the multiset package's Fig. 6 test.
func TestBugDeterministic(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	m := New(8, BugFindSlotAcquire)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	t2Entered := make(chan struct{})
	t1Done := make(chan struct{})
	var once sync.Once
	m.RaceWindow = func(i int) {
		if i == 0 {
			once.Do(func() {
				close(t2Entered)
				<-t1Done
			})
		}
	}

	done := make(chan bool)
	go func() { done <- m.InsertPair(p2, 7, 8) }()
	<-t2Entered
	m.RaceWindow = func(int) {}
	if !m.InsertPair(p1, 5, 6) {
		t.Fatal("T1 InsertPair failed")
	}
	close(t1Done)
	if !<-done {
		t.Fatal("T2 InsertPair failed")
	}
	log.Close()

	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the overwrite:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("expected a view violation, got %v", rep.First())
	}
}

func TestReservationPinsSlotAgainstCompaction(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	m := New(4, BugNone)
	// Fill, then delete the low slots so compaction has somewhere to move.
	for i := 0; i < 8; i++ {
		m.Insert(p, i)
	}
	for i := 0; i < 4; i++ {
		m.Delete(p, i)
	}
	// A reservation in flight (simulated by pausing InsertPair inside its
	// window via the insert of a pair whose second FindSlot grows): compress
	// while a reservation exists must not corrupt anything. Easiest honest
	// check: run compress and verify the view checker stays clean.
	wp := log.NewWorkerProbe()
	m.Compress(wp)
	m.Compress(wp)
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("view check: %s", rep)
	}
}
