package msvector

import (
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/multiset"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the Multiset-Vector to the random test harness
// (Section 7.1), including its continuously running compression thread.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "Multiset-Vector",
		New: func(log *vyrd.Log) harness.Instance {
			m := New(16, bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Insert", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.Insert(p, pick())
					}},
					{Name: "InsertPair", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.InsertPair(p, pick(), pick())
					}},
					{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.Delete(p, pick())
					}},
					{Name: "LookUp", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						m.LookUp(p, pick())
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					m.Compress(p)
					runtime.Gosched()
				},
			}
		},
		NewSpec: func() core.Spec { return spec.NewMultiset() },
		// The slot-array replayer from internal/multiset understands this
		// package's log vocabulary, including compaction's "slot-move".
		NewReplayer: func() core.Replayer { return multiset.NewReplayer() },
	}
}
