package scanfs

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the file system's directory, inodes, block cache
// and block store from the logged writes and maintains viewI: each file's
// contents assembled from its referenced blocks (dirty entry, else clean
// entry, else store), truncated to the inode size — the same canonical form
// as the FS specification's viewS.
//
// Replica invariants, checked after every committed update:
//
//	(i)   a clean cache block's bytes equal the store's
//	(ii)  no block is in both cache lists
//	(iii) no block is referenced by two files (allocator soundness)
//
// Invariant (i) is how the Scan cache bug surfaces at the flushing commit,
// exactly as in the Boxwood cache (Section 7.2.2 / 7.3).
type Replayer struct {
	files map[string]*rfile
	dirty map[int][]byte
	clean map[int][]byte
	store map[int][]byte
	table *view.Table

	// refs maps each referenced block to the set of files referencing it
	// (more than one only under an allocator violation).
	refs map[int]map[string]bool

	mismatched  map[int]bool // invariant (i)
	overlapping map[int]bool // invariant (ii)
	shared      map[int]bool // invariant (iii)
}

type rfile struct {
	blocks []int
	size   int
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.files = make(map[string]*rfile)
	r.dirty = make(map[int][]byte)
	r.clean = make(map[int][]byte)
	r.store = make(map[int][]byte)
	r.table = view.NewTable()
	r.refs = make(map[int]map[string]bool)
	r.mismatched = make(map[int]bool)
	r.overlapping = make(map[int]bool)
	r.shared = make(map[int]bool)
}

// View implements core.Replayer.
func (r *Replayer) View() *view.Table { return r.table }

// effective returns the current bytes of a block (dirty > clean > store),
// zero-filled when nowhere.
func (r *Replayer) effective(blk int) []byte {
	if b, ok := r.dirty[blk]; ok {
		return b
	}
	if b, ok := r.clean[blk]; ok {
		return b
	}
	if b, ok := r.store[blk]; ok {
		return b
	}
	return make([]byte, BlockSize)
}

// refreshFile recomputes one file's view entry.
func (r *Replayer) refreshFile(name string) {
	f, ok := r.files[name]
	if !ok {
		r.table.Delete("f:" + name)
		return
	}
	data := make([]byte, 0, f.size)
	for _, blk := range f.blocks {
		data = append(data, r.effective(blk)...)
	}
	if f.size <= len(data) {
		data = data[:f.size]
	} else {
		data = append(data, make([]byte, f.size-len(data))...)
	}
	r.table.Set("f:"+name, event.Format(data))
}

// refreshBlock recomputes the invariant membership of one block and the
// view entry of the file referencing it.
func (r *Replayer) refreshBlock(blk int) {
	cb, inClean := r.clean[blk]
	_, inDirty := r.dirty[blk]
	if inClean && inDirty {
		r.overlapping[blk] = true
	} else {
		delete(r.overlapping, blk)
	}
	if inClean {
		if sb, ok := r.store[blk]; !ok || string(sb) != string(cb) {
			r.mismatched[blk] = true
		} else {
			delete(r.mismatched, blk)
		}
	} else {
		delete(r.mismatched, blk)
	}
	for name := range r.refs[blk] {
		r.refreshFile(name)
	}
}

// setRefs rebinds a file's block references, flagging blocks referenced by
// more than one file.
func (r *Replayer) setRefs(name string, old, blocks []int) {
	for _, blk := range old {
		if owners := r.refs[blk]; owners != nil {
			delete(owners, name)
			if len(owners) == 0 {
				delete(r.refs, blk)
			}
			r.markShared(blk)
		}
	}
	for _, blk := range blocks {
		owners := r.refs[blk]
		if owners == nil {
			owners = make(map[string]bool)
			r.refs[blk] = owners
		}
		owners[name] = true
		r.markShared(blk)
	}
}

func (r *Replayer) markShared(blk int) {
	if len(r.refs[blk]) > 1 {
		r.shared[blk] = true
	} else {
		delete(r.shared, blk)
	}
}

func blkAndBytes(op string, args []event.Value) (int, []byte, error) {
	if len(args) != 2 {
		return 0, nil, fmt.Errorf("scanfs replay: %s wants block and bytes, got %v", op, args)
	}
	blk, ok := event.Int(args[0])
	if !ok {
		return 0, nil, fmt.Errorf("scanfs replay: %s non-integer block %v", op, args[0])
	}
	b, ok := event.Bytes(args[1])
	if !ok {
		return 0, nil, fmt.Errorf("scanfs replay: %s payload is not bytes: %T", op, args[1])
	}
	return blk, b, nil
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "dir-set":
		if len(args) != 1 {
			return fmt.Errorf("scanfs replay: dir-set wants a name, got %v", args)
		}
		name, ok := args[0].(string)
		if !ok {
			return fmt.Errorf("scanfs replay: dir-set non-string name %v", args[0])
		}
		if _, exists := r.files[name]; exists {
			return fmt.Errorf("scanfs replay: dir-set for existing file %q", name)
		}
		r.files[name] = &rfile{}
		r.refreshFile(name)
		return nil

	case "dir-del":
		if len(args) != 1 {
			return fmt.Errorf("scanfs replay: dir-del wants a name, got %v", args)
		}
		name, ok := args[0].(string)
		if !ok {
			return fmt.Errorf("scanfs replay: dir-del non-string name %v", args[0])
		}
		f, exists := r.files[name]
		if !exists {
			return fmt.Errorf("scanfs replay: dir-del for unknown file %q", name)
		}
		r.setRefs(name, f.blocks, nil)
		delete(r.files, name)
		r.refreshFile(name)
		return nil

	case "ino-set":
		if len(args) != 3 {
			return fmt.Errorf("scanfs replay: ino-set wants name, blocks, size, got %v", args)
		}
		name, okn := args[0].(string)
		size, oks := event.Int(args[2])
		if !okn || !oks {
			return fmt.Errorf("scanfs replay: ino-set bad args %v", args)
		}
		blocks, err := intSlice(args[1])
		if err != nil {
			return fmt.Errorf("scanfs replay: ino-set blocks: %v", err)
		}
		f, exists := r.files[name]
		if !exists {
			return fmt.Errorf("scanfs replay: ino-set for unknown file %q", name)
		}
		old := f.blocks
		f.blocks = blocks
		f.size = size
		r.setRefs(name, old, blocks)
		r.refreshFile(name)
		return nil

	case "blk-dirty":
		blk, b, err := blkAndBytes(op, args)
		if err != nil {
			return err
		}
		r.dirty[blk] = b
		r.refreshBlock(blk)
		return nil

	case "blk-rm-clean":
		if len(args) != 1 {
			return fmt.Errorf("scanfs replay: blk-rm-clean wants a block, got %v", args)
		}
		blk, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("scanfs replay: blk-rm-clean non-integer block %v", args[0])
		}
		delete(r.clean, blk)
		r.refreshBlock(blk)
		return nil

	case "blk-clean":
		if len(args) != 1 {
			return fmt.Errorf("scanfs replay: blk-clean wants a block, got %v", args)
		}
		blk, ok := event.Int(args[0])
		if !ok {
			return fmt.Errorf("scanfs replay: blk-clean non-integer block %v", args[0])
		}
		b, ok := r.dirty[blk]
		if !ok {
			return fmt.Errorf("scanfs replay: blk-clean for block %d with no dirty entry", blk)
		}
		delete(r.dirty, blk)
		r.clean[blk] = b
		r.refreshBlock(blk)
		return nil

	case "blk-flush":
		blk, b, err := blkAndBytes(op, args)
		if err != nil {
			return err
		}
		r.store[blk] = b
		r.refreshBlock(blk)
		return nil

	case "blk-load":
		blk, b, err := blkAndBytes(op, args)
		if err != nil {
			return err
		}
		r.clean[blk] = b
		r.refreshBlock(blk)
		return nil
	}
	return fmt.Errorf("scanfs replay: unknown op %q", op)
}

// intSlice decodes a logged []int value, tolerating the []any form gob may
// produce.
func intSlice(v event.Value) ([]int, error) {
	switch vv := v.(type) {
	case []int:
		return append([]int(nil), vv...), nil
	case []any:
		out := make([]int, len(vv))
		for i, e := range vv {
			n, ok := event.Int(e)
			if !ok {
				return nil, fmt.Errorf("element %d is %T", i, e)
			}
			out[i] = n
		}
		return out, nil
	}
	return nil, fmt.Errorf("not an integer slice: %T", v)
}

// Invariants implements core.Replayer.
func (r *Replayer) Invariants() error {
	for blk := range r.mismatched {
		return fmt.Errorf("invariant (i) violated: clean block %d differs from the block store", blk)
	}
	for blk := range r.overlapping {
		return fmt.Errorf("invariant (ii) violated: block %d is in both cache lists", blk)
	}
	for blk := range r.shared {
		return fmt.Errorf("invariant (iii) violated: block %d is referenced by two files", blk)
	}
	return nil
}

// Files exposes the reconstructed file map, for tests.
func (r *Replayer) Files() map[string][]byte {
	out := make(map[string][]byte)
	for name, f := range r.files {
		data := make([]byte, 0, f.size)
		for _, blk := range f.blocks {
			data = append(data, r.effective(blk)...)
		}
		if f.size <= len(data) {
			data = data[:f.size]
		} else {
			data = append(data, make([]byte, f.size-len(data))...)
		}
		out[name] = data
	}
	return out
}
