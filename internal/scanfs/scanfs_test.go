package scanfs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewFS(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialFileLifecycle(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	fs := New(BugNone)

	if !fs.Create(p, "a") || fs.Create(p, "a") {
		t.Fatal("create semantics wrong")
	}
	if data, ok := fs.ReadFile(p, "a"); !ok || len(data) != 0 {
		t.Fatalf("fresh file: %q %v", data, ok)
	}
	content := []byte("hello, scan file system! this spans multiple blocks.")
	if !fs.WriteFile(p, "a", content) {
		t.Fatal("write failed")
	}
	if data, _ := fs.ReadFile(p, "a"); !bytes.Equal(data, content) {
		t.Fatalf("read back %q", data)
	}
	if !fs.Append(p, "a", []byte(" more")) {
		t.Fatal("append failed")
	}
	if data, _ := fs.ReadFile(p, "a"); !bytes.Equal(data, append(append([]byte{}, content...), []byte(" more")...)) {
		t.Fatalf("after append: %q", data)
	}
	if fs.WriteFile(p, "missing", []byte("x")) {
		t.Fatal("write to a missing file succeeded")
	}
	if !fs.Delete(p, "a") || fs.Delete(p, "a") {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := fs.ReadFile(p, "a"); ok {
		t.Fatal("deleted file still readable")
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestAppendAcrossBlockBoundaries(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	fs := New(BugNone)
	fs.Create(p, "a")
	var want []byte
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i)}, 1+i*3)
		if !fs.Append(p, "a", chunk) {
			t.Fatalf("append %d failed", i)
		}
		want = append(want, chunk...)
	}
	if data, _ := fs.ReadFile(p, "a"); !bytes.Equal(data, want) {
		t.Fatalf("contents diverged:\n%q\n%q", data, want)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestMaintainAndDefragPreserveContents(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	wp := log.NewWorkerProbe()
	fs := New(BugNone)
	fs.Create(p, "a")
	fs.Create(p, "b")
	fs.WriteFile(p, "a", []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	fs.WriteFile(p, "b", []byte("bb"))
	before := fs.Contents()
	for i := 0; i < 6; i++ {
		fs.Maintain(wp)
		fs.Evict(wp)
		fs.Defrag(wp)
	}
	after := fs.Contents()
	for name, want := range before {
		if !bytes.Equal(after[name], want) {
			t.Fatalf("maintenance changed %q: %q -> %q", name, want, after[name])
		}
	}
	log.Close()
	// View refinement verifies every maintenance commit left the view
	// unchanged.
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestBlockReuseAfterDelete(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	fs := New(BugNone)
	fs.Create(p, "a")
	fs.WriteFile(p, "a", bytes.Repeat([]byte{1}, BlockSize*3))
	fs.Delete(p, "a")
	fs.Create(p, "b")
	// Reuses a's freed blocks (LIFO allocator).
	fs.WriteFile(p, "b", bytes.Repeat([]byte{2}, BlockSize*3))
	if data, _ := fs.ReadFile(p, "b"); !bytes.Equal(data, bytes.Repeat([]byte{2}, BlockSize*3)) {
		t.Fatalf("reused blocks corrupted: %x", data)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministicTornBlockFlush forces the Scan cache bug: an
// unprotected in-place dirty-block update races a flush, the store receives
// a torn block, and replica invariant (i) fails at the maintenance commit.
func TestBugDeterministicTornBlockFlush(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	fs := New(BugUnprotectedBlockWrite)
	p1 := log.NewProbe()
	p2 := log.NewProbe()
	wp := log.NewWorkerProbe()

	fs.Create(p1, "a")
	old := bytes.Repeat([]byte{0xaa}, BlockSize)
	new_ := bytes.Repeat([]byte{0xbb}, BlockSize)
	// Two writes: the second frees the first write's block while it is
	// still dirty in the cache, so the raced third write reallocates it
	// (LIFO) and takes the in-place dirty-update path the bug lives on.
	fs.WriteFile(p1, "a", bytes.Repeat([]byte{0xcc}, BlockSize))
	fs.WriteFile(p1, "a", old)

	halfway := make(chan struct{})
	flushed := make(chan struct{})
	var once sync.Once
	fs.SetRaceWindow(func(blk, i int) {
		if i == BlockSize/2 {
			once.Do(func() {
				close(halfway)
				<-flushed
			})
		}
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Rewriting the same single-block file reuses the same block (the
		// freed block is reallocated LIFO), hitting the in-place dirty
		// update path.
		fs.WriteFile(p2, "a", new_)
	}()
	<-halfway
	fs.SetRaceWindow(nil)
	fs.Maintain(wp) // flushes the half-copied block and marks it clean
	close(flushed)
	<-done
	log.Close()

	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the torn block flush:\n%s", rep)
	}
	v := rep.First()
	if v.Kind != vyrd.ViolationInvariant && v.Kind != vyrd.ViolationView {
		t.Fatalf("expected an invariant/view violation, got %v", v)
	}
}

func TestReplayerMatchesImplementation(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	wp := log.NewWorkerProbe()
	fs := New(BugNone)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		name := fileName(rng.Intn(6))
		switch rng.Intn(6) {
		case 0:
			fs.Create(p, name)
		case 1, 2:
			fs.WriteFile(p, name, randBytes(rng, 3))
		case 3:
			fs.Append(p, name, randBytes(rng, 1))
		case 4:
			fs.Delete(p, name)
		case 5:
			fs.Maintain(wp)
			fs.Evict(wp)
		}
	}
	log.Close()

	r := NewReplayer()
	for _, e := range log.Snapshot() {
		if e.Kind == event.KindWrite {
			if err := r.Apply(e.Method, e.Args); err != nil {
				t.Fatalf("replay: %v", err)
			}
		}
		if e.WOp != "" {
			if err := r.Apply(e.WOp, e.WArgs); err != nil {
				t.Fatalf("replay commit-write: %v", err)
			}
		}
	}
	want := fs.Contents()
	got := r.Files()
	if len(want) != len(got) {
		t.Fatalf("file sets differ: replica %d impl %d", len(got), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("file %q: replica %x impl %x", name, got[name], data)
		}
	}
	if err := r.Invariants(); err != nil {
		t.Fatalf("invariants on a correct run: %v", err)
	}
}

func TestReplayerInvariantShared(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	apply("dir-set", "a")
	apply("dir-set", "b")
	apply("blk-dirty", 1, make([]byte, BlockSize))
	apply("ino-set", "a", []int{1}, 4)
	if err := r.Invariants(); err != nil {
		t.Fatal(err)
	}
	apply("ino-set", "b", []int{1}, 4) // block 1 now shared
	if err := r.Invariants(); err == nil {
		t.Fatal("shared block not reported")
	}
	apply("ino-set", "b", []int{2}, 4)
	if err := r.Invariants(); err != nil {
		t.Fatalf("invariant did not clear: %v", err)
	}
}

func TestReplayerRejectsMalformed(t *testing.T) {
	r := NewReplayer()
	bad := []struct {
		op   string
		args []event.Value
	}{
		{"dir-del", []event.Value{"ghost"}},
		{"ino-set", []event.Value{"ghost", []int{1}, 4}},
		{"blk-clean", []event.Value{7}}, // no dirty entry
		{"dir-set", []event.Value{42}},  // non-string
		{"nope", nil},
	}
	for _, c := range bad {
		if err := r.Apply(c.op, c.args); err == nil {
			t.Fatalf("accepted %s%v", c.op, c.args)
		}
	}
	if err := r.Apply("dir-set", []event.Value{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("dir-set", []event.Value{"a"}); err == nil {
		t.Fatal("duplicate dir-set accepted")
	}
}

func TestConcurrentCorrectWithMaintenance(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	fs := New(BugNone)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wwg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				switch i % 3 {
				case 0:
					fs.Maintain(wp)
				case 1:
					fs.Evict(wp)
				case 2:
					fs.Defrag(wp)
				}
				i++
			}
		}
	}()
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				name := fileName(rng.Intn(6))
				switch rng.Intn(5) {
				case 0:
					fs.Create(p, name)
				case 1:
					fs.WriteFile(p, name, randBytes(rng, 2))
				case 2:
					fs.Append(p, name, randBytes(rng, 1))
				case 3:
					fs.Delete(p, name)
				case 4:
					fs.ReadFile(p, name)
				}
			}
		}(int64(th) + 1)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}

// TestQuickSequentialAgainstModel: the file system agrees with a map model
// under random single-threaded operations.
func TestQuickSequentialAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New(BugNone)
		model := map[string][]byte{}
		for i := 0; i < int(n); i++ {
			name := fileName(rng.Intn(4))
			switch rng.Intn(5) {
			case 0:
				_, exists := model[name]
				if fs.Create(nil, name) == exists {
					return false
				}
				if !exists {
					model[name] = nil
				}
			case 1:
				data := randBytes(rng, 2)
				_, exists := model[name]
				if fs.WriteFile(nil, name, data) != exists {
					return false
				}
				if exists {
					model[name] = data
				}
			case 2:
				data := randBytes(rng, 1)
				old, exists := model[name]
				if fs.Append(nil, name, data) != exists {
					return false
				}
				if exists {
					model[name] = append(append([]byte{}, old...), data...)
				}
			case 3:
				_, exists := model[name]
				if fs.Delete(nil, name) != exists {
					return false
				}
				delete(model, name)
			case 4:
				want, exists := model[name]
				got, ok := fs.ReadFile(nil, name)
				if ok != exists || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		contents := fs.Contents()
		if len(contents) != len(model) {
			return false
		}
		for name, want := range model {
			if !bytes.Equal(contents[name], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
