package scanfs

import (
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// targetFiles bounds the name space so operations collide.
const targetFiles = 6

func fileName(k int) string { return "f" + strconv.Itoa(k%targetFiles) }

func randBytes(rng *rand.Rand, maxBlocks int) []byte {
	n := rng.Intn(maxBlocks*BlockSize + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// Target adapts the Scan-style file system to the random test harness
// (Section 7.1), with its maintenance daemons (flush/evict and the
// defragmenter) running continuously as the worker.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "ScanFS",
		New: func(log *vyrd.Log) harness.Instance {
			fs := New(bug)
			step := 0
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Create", Weight: 15, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						fs.Create(p, fileName(pick()))
					}},
					{Name: "WriteFile", Weight: 30, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						fs.WriteFile(p, fileName(pick()), randBytes(rng, 3))
					}},
					{Name: "Append", Weight: 15, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						fs.Append(p, fileName(pick()), randBytes(rng, 1))
					}},
					{Name: "Delete", Weight: 10, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						fs.Delete(p, fileName(pick()))
					}},
					{Name: "ReadFile", Weight: 30, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						fs.ReadFile(p, fileName(pick()))
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					// Rotate the maintenance activities, as Scan's daemons
					// would: flush, reclaim, defragment.
					switch step % 3 {
					case 0:
						fs.Maintain(p)
					case 1:
						fs.Evict(p)
					case 2:
						fs.Defrag(p)
					}
					step++
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewFS() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}
