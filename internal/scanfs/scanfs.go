// Package scanfs reimplements the data path of the Scan file system the
// paper's earlier VYRD prototype was applied to (Section 7.3): a small
// write-optimized file system with a directory, per-file inodes (block
// lists), a write-back block cache over a block store, and background
// maintenance — flushing, cache reclaim, and a scanning defragmenter that
// relocates file blocks without changing file contents.
//
// The abstraction checked is the file map (spec.FS): names to contents.
// Updates are copy-on-write at block granularity: a mutator writes fresh
// blocks (unreferenced, hence outside the view) and then publishes them
// with a single inode update — the commit action, in the same pattern as
// the B-link tree's single visible leaf write.
//
// The injected bug is the one the paper reports finding in Scan: "these
// bugs were also in the cache module and were very similar to those found
// in Boxwood's Cache" — an in-place update of a dirty cached block without
// the cache lock, so a concurrent flush writes a torn block to the store
// and marks it clean.
//
// Log-replay vocabulary (see Replayer):
//
//	"dir-set" name            create an (empty) directory entry
//	"dir-del" name            remove a directory entry
//	"ino-set" name blocks size  publish a file's block list and size (commits)
//	"blk-dirty" blk bytes     install/update a dirty cache block
//	"blk-rm-clean" blk        drop a block from the clean list
//	"blk-clean" blk           move a dirty block to the clean list
//	"blk-flush" blk bytes     write-through to the block store
//	"blk-load" blk bytes      load a block into the clean list
package scanfs

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/event"
	"repro/internal/spec"
	"repro/vyrd"
)

// BlockSize is the fixed block size of the store; file sizes truncate the
// final block.
const BlockSize = 16

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugUnprotectedBlockWrite updates an existing dirty cache block in
	// place without holding the cache lock (the Scan cache bug of
	// Section 7.3, the sibling of Boxwood's Section 7.2.2 bug).
	BugUnprotectedBlockWrite
)

// disk is the block store beneath the cache (assumed correct, like the
// Chunk Manager in Section 7.2).
type disk struct {
	mu     sync.Mutex
	blocks map[int][]byte
}

func newDisk() *disk { return &disk{blocks: make(map[int][]byte)} }

func (d *disk) write(blk int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.blocks[blk] = cp
	d.mu.Unlock()
}

func (d *disk) read(blk int) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[blk]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, true
}

// blockCache is the write-back block cache. Unlike the public Boxwood
// cache module (internal/cache), its operations are internal to file
// system methods: they log plain write actions through the caller's probe,
// not call/commit pairs of their own.
type blockCache struct {
	disk *disk
	mu   sync.Mutex // LOCK(clean)

	clean map[int][]byte
	dirty map[int][]byte

	bug Bug
	// RaceWindow, when non-nil, runs between the bytes of the buggy
	// unprotected in-place copy.
	RaceWindow func(blk, i int)
}

func newBlockCache(d *disk, bug Bug) *blockCache {
	return &blockCache{
		disk:  d,
		clean: make(map[int][]byte),
		dirty: make(map[int][]byte),
		bug:   bug,
	}
}

// write installs data (exactly BlockSize bytes) as the dirty contents of
// blk.
func (c *blockCache) write(p *vyrd.Probe, blk int, data []byte) {
	logData := event.CloneBytes(data)
	c.mu.Lock()
	if buf, ok := c.dirty[blk]; ok {
		// In-place update of an existing dirty block.
		if c.bug == BugUnprotectedBlockWrite {
			c.mu.Unlock()
			// BUG: the copy should hold the cache lock; a concurrent flush
			// can snapshot the block mid-copy.
			c.copyInPlace(blk, buf, data)
			p.Write("blk-dirty", blk, logData)
			return
		}
		c.copyInPlace(blk, buf, data)
		p.Write("blk-dirty", blk, logData)
		c.mu.Unlock()
		return
	}
	if buf, ok := c.clean[blk]; ok {
		delete(c.clean, blk)
		copy(buf, data)
		c.dirty[blk] = buf
		p.Write("blk-rm-clean", blk)
		p.Write("blk-dirty", blk, logData)
		c.mu.Unlock()
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.dirty[blk] = buf
	p.Write("blk-dirty", blk, logData)
	c.mu.Unlock()
}

func (c *blockCache) copyInPlace(blk int, dst, src []byte) {
	for i := 0; i < len(src) && i < len(dst); i++ {
		if c.RaceWindow != nil {
			c.RaceWindow(blk, i)
		} else if c.bug == BugUnprotectedBlockWrite && i == len(src)/2 {
			runtime.Gosched() // model preemption mid-copy
		}
		dst[i] = src[i]
	}
}

// read returns the block's current bytes, loading a miss into the clean
// list.
func (c *blockCache) read(p *vyrd.Probe, blk int) ([]byte, bool) {
	c.mu.Lock()
	if buf, ok := c.dirty[blk]; ok {
		out := event.CloneBytes(buf)
		c.mu.Unlock()
		return out, true
	}
	if buf, ok := c.clean[blk]; ok {
		out := event.CloneBytes(buf)
		c.mu.Unlock()
		return out, true
	}
	data, ok := c.disk.read(blk)
	if ok {
		c.clean[blk] = event.CloneBytes(data)
		p.Write("blk-load", blk, data)
	}
	c.mu.Unlock()
	return data, ok
}

// flushLocked writes every dirty block to the store and moves it to the
// clean list. The caller holds c.mu for the whole enclosing commit block:
// Section 5.2 requires the block to be atomic, and the lock is what makes
// it so.
func (c *blockCache) flushLocked(p *vyrd.Probe) {
	blks := make([]int, 0, len(c.dirty))
	for blk := range c.dirty {
		blks = append(blks, blk)
	}
	sort.Ints(blks)
	for _, blk := range blks {
		data := event.CloneBytes(c.dirty[blk]) // may be torn under the bug
		c.disk.write(blk, data)
		p.Write("blk-flush", blk, data)
	}
	for _, blk := range blks {
		c.clean[blk] = c.dirty[blk]
		delete(c.dirty, blk)
		p.Write("blk-clean", blk)
	}
}

// evictLocked drops every clean block. The caller holds c.mu (see
// flushLocked).
func (c *blockCache) evictLocked(p *vyrd.Probe) {
	blks := make([]int, 0, len(c.clean))
	for blk := range c.clean {
		blks = append(blks, blk)
	}
	sort.Ints(blks)
	for _, blk := range blks {
		delete(c.clean, blk)
		p.Write("blk-rm-clean", blk)
	}
}

// file is an inode: the block list and byte size, guarded by its own lock.
type file struct {
	mu      sync.Mutex
	blocks  []int
	size    int
	deleted bool
}

// allocator hands out block numbers, reusing freed ones LIFO — which is
// what routes rewrites onto blocks still sitting dirty in the cache, the
// surface the injected bug needs.
type allocator struct {
	mu   sync.Mutex
	next int
	free []int
}

func (a *allocator) alloc(n int) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, 0, n)
	for len(out) < n && len(a.free) > 0 {
		out = append(out, a.free[len(a.free)-1])
		a.free = a.free[:len(a.free)-1]
	}
	for len(out) < n {
		a.next++
		out = append(out, a.next)
	}
	return out
}

func (a *allocator) release(blks []int) {
	if len(blks) == 0 {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, blks...)
	a.mu.Unlock()
}

// FS is the Scan-style file system.
type FS struct {
	dirMu sync.Mutex
	dir   map[string]*file
	cache *blockCache
	alloc allocator
	// defragCursor round-robins the defragmenter over files.
	defragCursor int
}

// New returns an empty file system.
func New(bug Bug) *FS {
	return &FS{
		dir:   make(map[string]*file),
		cache: newBlockCache(newDisk(), bug),
	}
}

// SetRaceWindow installs the deterministic-schedule hook of the buggy
// in-place block copy.
func (fs *FS) SetRaceWindow(f func(blk, i int)) { fs.cache.RaceWindow = f }

// Create makes an empty file, returning false if the name exists.
func (fs *FS) Create(p *vyrd.Probe, name string) bool {
	inv := p.Call("Create", name)
	fs.dirMu.Lock()
	if _, ok := fs.dir[name]; ok {
		inv.Commit("exists")
		fs.dirMu.Unlock()
		inv.Return(false)
		return false
	}
	fs.dir[name] = &file{}
	inv.CommitWrite("created", "dir-set", name)
	fs.dirMu.Unlock()
	inv.Return(true)
	return true
}

// lookup fetches the live file object for name.
func (fs *FS) lookup(name string) *file {
	fs.dirMu.Lock()
	f := fs.dir[name]
	fs.dirMu.Unlock()
	return f
}

// writeBlocks splits data into BlockSize chunks, writes them to freshly
// allocated blocks through the cache and returns the block list. The
// blocks are unreferenced until the caller's inode commit, so these writes
// are view-neutral.
func (fs *FS) writeBlocks(p *vyrd.Probe, data []byte) []int {
	n := (len(data) + BlockSize - 1) / BlockSize
	blks := fs.alloc.alloc(n)
	for i, blk := range blks {
		chunk := make([]byte, BlockSize)
		copy(chunk, data[i*BlockSize:min(len(data), (i+1)*BlockSize)])
		fs.cache.write(p, blk, chunk)
	}
	return blks
}

// blocksValue converts a block list to a loggable value.
func blocksValue(blks []int) []int {
	return append([]int(nil), blks...)
}

// WriteFile replaces the file's contents, returning false if the file does
// not exist. The inode update is the commit action: it is the single write
// that makes the new contents visible to readers.
func (fs *FS) WriteFile(p *vyrd.Probe, name string, data []byte) bool {
	logData := event.CloneBytes(data)
	inv := p.Call("WriteFile", name, logData)
	var f *file
	for {
		fs.dirMu.Lock()
		f = fs.dir[name]
		if f == nil {
			// The absent-path commit must be atomic with the directory
			// check: committing after releasing the lock would let a racing
			// Create land before this commit in the witness interleaving
			// and falsify the "absent" claim.
			inv.Commit("absent")
			fs.dirMu.Unlock()
			inv.Return(false)
			return false
		}
		fs.dirMu.Unlock()
		f.mu.Lock()
		if f.deleted {
			// Stale handle: the file was deleted (and possibly re-created)
			// after the directory lookup. Retry from the directory; a
			// "deleted" commit here would race re-creation.
			f.mu.Unlock()
			continue
		}
		break
	}
	blks := fs.writeBlocks(p, data)
	old := f.blocks
	f.blocks = blks
	f.size = len(data)
	inv.CommitWrite("written", "ino-set", name, blocksValue(blks), len(data))
	f.mu.Unlock()
	fs.alloc.release(old)
	inv.Return(true)
	return true
}

// Append extends the file, copy-on-write at the tail block: the partially
// filled last block is re-written into a fresh block, so no referenced
// block is ever mutated in place by the file layer.
func (fs *FS) Append(p *vyrd.Probe, name string, data []byte) bool {
	logData := event.CloneBytes(data)
	inv := p.Call("Append", name, logData)
	var f *file
	for {
		fs.dirMu.Lock()
		f = fs.dir[name]
		if f == nil {
			inv.Commit("absent") // atomic with the directory check
			fs.dirMu.Unlock()
			inv.Return(false)
			return false
		}
		fs.dirMu.Unlock()
		f.mu.Lock()
		if f.deleted {
			f.mu.Unlock() // stale handle: retry, as in WriteFile
			continue
		}
		break
	}
	keep := f.size / BlockSize // fully used blocks stay
	tailLen := f.size % BlockSize
	tail := make([]byte, 0, tailLen+len(data))
	if tailLen > 0 {
		blkData, ok := fs.cache.read(p, f.blocks[keep])
		if ok {
			tail = append(tail, blkData[:tailLen]...)
		} else {
			tail = append(tail, make([]byte, tailLen)...)
		}
	}
	tail = append(tail, data...)
	newBlks := fs.writeBlocks(p, tail)

	var replaced []int
	blocks := append([]int(nil), f.blocks[:keep]...)
	if tailLen > 0 {
		replaced = f.blocks[keep:]
	}
	blocks = append(blocks, newBlks...)
	f.blocks = blocks
	f.size += len(data)
	inv.CommitWrite("appended", "ino-set", name, blocksValue(blocks), f.size)
	f.mu.Unlock()
	fs.alloc.release(replaced)
	inv.Return(true)
	return true
}

// Delete removes the file, returning false if it does not exist.
func (fs *FS) Delete(p *vyrd.Probe, name string) bool {
	inv := p.Call("Delete", name)
	fs.dirMu.Lock()
	f := fs.dir[name]
	if f == nil {
		inv.Commit("absent")
		fs.dirMu.Unlock()
		inv.Return(false)
		return false
	}
	f.mu.Lock()
	delete(fs.dir, name)
	f.deleted = true
	inv.CommitWrite("deleted", "dir-del", name)
	blks := f.blocks
	f.blocks = nil
	f.mu.Unlock()
	fs.dirMu.Unlock()
	fs.alloc.release(blks)
	inv.Return(true)
	return true
}

// ReadFile returns the file's contents, or nil when absent (observer).
func (fs *FS) ReadFile(p *vyrd.Probe, name string) ([]byte, bool) {
	inv := p.Call("ReadFile", name)
	f := fs.lookup(name)
	if f == nil {
		inv.Return(nil)
		return nil, false
	}
	f.mu.Lock()
	if f.deleted {
		f.mu.Unlock()
		inv.Return(nil)
		return nil, false
	}
	data := make([]byte, 0, f.size)
	for _, blk := range f.blocks {
		blkData, ok := fs.cache.read(p, blk)
		if !ok {
			blkData = make([]byte, BlockSize)
		}
		data = append(data, blkData...)
	}
	data = data[:f.size]
	f.mu.Unlock()
	inv.Return(event.CloneBytes(data))
	return data, true
}

// Maintain flushes the block cache as the Compress pseudo-method: every
// dirty block is written to the store and moved to the clean list. The
// whole pass is one commit block under the cache lock; the view must be
// unchanged, and replica invariant (i) — clean blocks match the store — is
// checked at its commit, which is where the injected bug surfaces. Eviction
// is a separate operation (Evict), as in Boxwood: folding it into the same
// commit block would discard the mismatched clean entry before the
// end-of-block invariant check could see it.
func (fs *FS) Maintain(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	fs.cache.mu.Lock()
	inv.BeginCommitBlock()
	fs.cache.flushLocked(p)
	inv.Commit("flushed")
	inv.EndCommitBlock()
	fs.cache.mu.Unlock()
	inv.Return(nil)
}

// Evict drops every clean block from the cache (the reclaim daemon), as
// the Compress pseudo-method. Clean blocks equal the store by invariant
// (i), so eviction never changes the view.
func (fs *FS) Evict(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	fs.cache.mu.Lock()
	inv.BeginCommitBlock()
	fs.cache.evictLocked(p)
	inv.Commit("evicted")
	inv.EndCommitBlock()
	fs.cache.mu.Unlock()
	inv.Return(nil)
}

// Defrag relocates one file's blocks to freshly allocated (contiguous-ish)
// blocks — the "scan-based layout" maintenance — without changing its
// contents. Runs as the Compress pseudo-method; the inode update is the
// commit and the view must be unchanged.
func (fs *FS) Defrag(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	fs.dirMu.Lock()
	names := make([]string, 0, len(fs.dir))
	for name := range fs.dir {
		names = append(names, name)
	}
	sort.Strings(names)
	var f *file
	var name string
	if len(names) > 0 {
		name = names[fs.defragCursor%len(names)]
		fs.defragCursor++
		f = fs.dir[name]
	}
	fs.dirMu.Unlock()
	if f == nil {
		inv.Commit("nothing")
		inv.Return(nil)
		return
	}
	f.mu.Lock()
	if f.deleted || len(f.blocks) == 0 {
		inv.Commit("nothing")
		f.mu.Unlock()
		inv.Return(nil)
		return
	}
	data := make([]byte, 0, f.size)
	for _, blk := range f.blocks {
		blkData, ok := fs.cache.read(p, blk)
		if !ok {
			blkData = make([]byte, BlockSize)
		}
		data = append(data, blkData...)
	}
	data = data[:f.size]
	newBlks := fs.writeBlocks(p, data)
	old := f.blocks
	f.blocks = newBlks
	inv.CommitWrite("relocated", "ino-set", name, blocksValue(newBlks), f.size)
	f.mu.Unlock()
	fs.alloc.release(old)
	inv.Return(nil)
}

// Contents returns the current file map; for quiesced tests only.
func (fs *FS) Contents() map[string][]byte {
	out := make(map[string][]byte)
	fs.dirMu.Lock()
	defer fs.dirMu.Unlock()
	for name, f := range fs.dir {
		f.mu.Lock()
		data := make([]byte, 0, f.size)
		for _, blk := range f.blocks {
			blkData, ok := fs.cache.read(nil, blk)
			if !ok {
				blkData = make([]byte, BlockSize)
			}
			data = append(data, blkData...)
		}
		out[name] = data[:f.size]
		f.mu.Unlock()
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
