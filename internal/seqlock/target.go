package seqlock

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the seqlock register to the random test harness. Writes
// and Reads are balanced: the planted torn read needs a reader inside a
// writer's two-store window, and both sides park at every annotated
// atomic access. No maintenance worker, no replayer — the subject is
// checked in I/O mode, where the packed two-word return value is
// self-validating.
func Target(bug Bug) harness.Target {
	return harness.Target{
		Name: "Seqlock-TornRead",
		New: func(log *vyrd.Log) harness.Instance {
			l := New(bug)
			return harness.Instance{Methods: methods(l)}
		},
		NewSpec: func() core.Spec { return spec.NewRegister() },
	}
}

func methods(l *Lock) []harness.Method {
	return []harness.Method{
		{Name: "Write", Weight: 50, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
			l.Write(p, pick())
		}},
		{Name: "Read", Weight: 50, Run: func(p *vyrd.Probe, _ *rand.Rand, _ func() int) {
			l.Read(p)
		}},
	}
}
