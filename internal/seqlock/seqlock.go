// Package seqlock implements a sequence lock protecting a two-word
// register: writers bump an atomic sequence counter to odd, store both
// data words, and publish by restoring the counter to the next even value;
// readers snapshot the counter, read both words, and retry unless the
// counter was even and unchanged across the reads. It is an atomics-based
// subject in the spirit of the C11 weak-memory library benchmarks
// (Dalvandi & Dongol): correctness rests entirely on the acquire/release
// ordering of the sequence counter, with no mutual exclusion anywhere.
// Every shared access is annotated for DPOR through the probe's
// access-typed yields.
//
// The planted bug (BugTornRead) drops the reader's validation re-read: the
// reader returns whatever the two words held, so a schedule that parks a
// writer between its two stores hands the reader one old and one new word.
// The packed return value then matches no state of the Register
// specification — an observer I/O refinement violation — while every
// access stays atomic and the race detector sees nothing.
package seqlock

import (
	"sync/atomic"

	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation: readers validate the sequence
	// counter after reading and retry on interference.
	BugNone Bug = iota
	// BugTornRead omits the reader's validation re-read of the sequence
	// counter, accepting torn word pairs.
	BugTornRead
)

// Lock is the seqlock-protected register.
type Lock struct {
	seq atomic.Uint64
	d1  atomic.Int64
	d2  atomic.Int64
	bug Bug
}

// New returns a register holding zero.
func New(bug Bug) *Lock {
	return &Lock{bug: bug}
}

// Write sets the register to v, which must fit in spec.RegisterShift bits.
// The CAS to an odd sequence number admits one writer; the two data stores
// are separate scheduling points (the torn-read window); the final store
// restoring the even sequence publishes, with the commit fused into its
// step (a park between publication and the commit append would let a
// concurrent Read commit against the old specification state after
// observing the new words).
func (l *Lock) Write(p *vyrd.Probe, v int) {
	inv := p.Call("Write", v)
	var s uint64
	for spin := false; ; {
		if spin {
			p.YieldSpinLoad("seq")
		} else {
			p.YieldLoad("seq")
		}
		s = l.seq.Load()
		if s&1 == 1 {
			// Another writer holds the sequence: this retry cannot make
			// progress until that writer runs, so mark it a spin-wait.
			spin = true
			continue
		}
		spin = false
		p.YieldRMW("seq")
		if l.seq.CompareAndSwap(s, s+1) {
			break
		}
		// CAS failure means the counter moved under us; the reload can
		// succeed without any other task running, so no spin mark.
	}
	p.YieldStore("d1")
	l.d1.Store(int64(v))
	p.YieldStore("d2")
	l.d2.Store(int64(v))
	p.Yield() // opaque: publishing store + fused commit
	l.seq.Store(s + 2)
	inv.CommitFused("published")
	inv.Return(nil)
}

// Read returns the packed register value hi<<RegisterShift|lo. The correct
// protocol re-reads the sequence counter and retries when it changed or
// was odd; under BugTornRead the words are returned unvalidated.
func (l *Lock) Read(p *vyrd.Probe) int {
	inv := p.Call("Read")
	for spin := false; ; {
		if spin {
			p.YieldSpinLoad("seq")
		} else {
			p.YieldLoad("seq")
		}
		s1 := l.seq.Load()
		if s1&1 == 1 {
			if l.bug == BugTornRead {
				// The buggy reader does not even skip write windows; it
				// reads the words below regardless.
			} else {
				// Waiting out a writer's window: spin until it publishes.
				spin = true
				continue
			}
		} else {
			spin = false
		}
		p.YieldLoad("d1")
		v1 := int(l.d1.Load())
		p.YieldLoad("d2")
		v2 := int(l.d2.Load())
		if l.bug == BugTornRead {
			// BUG: no validation re-read; v1 and v2 may straddle a write.
			ret := v1<<spec.RegisterShift | v2
			inv.Return(ret)
			return ret
		}
		p.YieldLoad("seq")
		if l.seq.Load() == s1 {
			ret := v1<<spec.RegisterShift | v2
			inv.Return(ret)
			return ret
		}
	}
}
