package seqlock

import (
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/vyrd"
)

// pack mirrors the register's packed return encoding.
func pack(v int) int { return v<<spec.RegisterShift | v }

// TestSequentialRoundTrip pins the uncontended semantics of both variants:
// without interference the torn-read window never opens, so the buggy
// reader too returns exactly what was written.
func TestSequentialRoundTrip(t *testing.T) {
	for _, bug := range []Bug{BugNone, BugTornRead} {
		l := New(bug)
		log := vyrd.NewLog(vyrd.LevelIO)
		p := log.NewProbe()
		if got := l.Read(p); got != pack(0) {
			t.Fatalf("bug=%d: initial Read = %#x, want %#x", bug, got, pack(0))
		}
		for _, v := range []int{1, 42, 0, 1<<spec.RegisterShift - 1} {
			l.Write(p, v)
			if got := l.Read(p); got != pack(v) {
				t.Fatalf("bug=%d: Read after Write(%d) = %#x, want %#x", bug, v, got, pack(v))
			}
		}
		log.Close()
	}
}

// TestConcurrentCorrectNeverTears runs real writers against real readers
// (free-running: yields are no-ops without a scheduler) and requires every
// validated read to be untorn — the two words agree. Under -race this also
// certifies the protocol is detector-clean: all accesses are atomic, which
// is what makes the planted torn read a refinement-only catch.
func TestConcurrentCorrectNeverTears(t *testing.T) {
	const writers, readers, iters = 2, 2, 2000
	l := New(BugNone)
	log := vyrd.NewLog(vyrd.LevelIO)
	defer log.Close()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := log.NewProbe()
			for i := 0; i < iters; i++ {
				l.Write(p, (w*iters+i)%(1<<spec.RegisterShift))
			}
		}()
	}
	errs := make(chan int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := log.NewProbe()
			for i := 0; i < iters; i++ {
				v := l.Read(p)
				hi, lo := v>>spec.RegisterShift, v&(1<<spec.RegisterShift-1)
				if hi != lo {
					select {
					case errs <- v:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case v := <-errs:
		t.Fatalf("validated read returned a torn pair %#x", v)
	default:
	}
}
