package core

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// ViolationKind classifies a refinement violation.
type ViolationKind uint8

const (
	// ViolationIO: the specification cannot execute the committing method
	// with the observed return value at the current state of the witness
	// interleaving (Section 4).
	ViolationIO ViolationKind = iota + 1
	// ViolationObserver: an observer's return value is not permitted at any
	// specification state between its call and return (Section 4.3).
	ViolationObserver
	// ViolationView: viewI differs from viewS at a mutator commit
	// (Section 5).
	ViolationView
	// ViolationInvariant: a replica invariant failed after a committed
	// update was applied (Section 7.2.1).
	ViolationInvariant
	// ViolationInstrumentation: the log itself is malformed — a mutator
	// execution without a commit action, a commit outside a method, a
	// commit in an observer, an unterminated commit block, or a write the
	// replayer cannot apply. These usually mean the commit-point annotation
	// must be re-examined (Section 4.1).
	ViolationInstrumentation
	// ViolationLinearizability: no linearization of the completed method
	// executions exists — every total order consistent with the real-time
	// call/return order is rejected by the sequential specification. Reported
	// by the linearize engine (ModeLinearize), never by the refinement
	// checker.
	ViolationLinearizability
	// ViolationTemporal: an LTL3 property over the log collapsed to false —
	// the finite trace already refutes it on every infinite extension.
	// Reported by the temporal engine (ModeLTL), never by the refinement
	// checker; Seq points at the log position whose entry collapsed the
	// formula (the witness position).
	ViolationTemporal
)

// String returns the name of the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationIO:
		return "io-refinement"
	case ViolationObserver:
		return "observer"
	case ViolationView:
		return "view-refinement"
	case ViolationInvariant:
		return "invariant"
	case ViolationInstrumentation:
		return "instrumentation"
	case ViolationLinearizability:
		return "linearizability"
	case ViolationTemporal:
		return "temporal"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// MarshalJSON renders the kind by name in machine-readable reports.
func (k ViolationKind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// UnmarshalJSON parses a kind by name, the inverse of MarshalJSON, so
// reports survive a JSON round trip (the remote protocol ships verdicts as
// JSON report frames).
func (k *ViolationKind) UnmarshalJSON(b []byte) error {
	for cand := ViolationIO; cand <= ViolationTemporal; cand++ {
		if string(b) == fmt.Sprintf("%q", cand.String()) {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown violation kind %s", b)
}

// Violation describes one detected refinement violation.
type Violation struct {
	Kind   ViolationKind
	Seq    int64  // log sequence number of the entry that triggered detection
	Tid    int32  // thread whose action triggered detection
	Method string // method involved, when known
	Detail string // human-readable diagnosis

	// MethodsCompleted is the number of method executions that had
	// completed (returned) in the witness interleaving when the violation
	// was detected; the paper's Table 1 metric.
	MethodsCompleted int64
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation at #%d (t%d %s): %s", v.Kind, v.Seq, v.Tid, v.Method, v.Detail)
}

// Report summarizes one checking run.
type Report struct {
	Mode Mode

	// Violations holds the recorded violations in detection order, capped
	// by WithMaxViolations. TotalViolations counts all of them.
	Violations      []Violation
	TotalViolations int64

	// MethodsCompleted counts processed return actions (application and
	// worker threads combined).
	MethodsCompleted int64
	// CommitsApplied counts mutator commits driven through the spec.
	CommitsApplied int64
	// ObserversChecked counts observer executions validated.
	ObserversChecked int64
	// WritesReplayed counts write actions applied to the replica.
	WritesReplayed int64
	// ViewsCompared counts viewI/viewS comparisons performed.
	ViewsCompared int64
	// EntriesProcessed counts log entries consumed.
	EntriesProcessed int64

	// PropsSatisfied / PropsViolated / PropsInconclusive count temporal
	// properties by their LTL3 verdict at log end (ModeLTL only). Every
	// monitored property lands in exactly one bucket: satisfied (true on
	// every infinite extension), violated (false on every extension), or
	// inconclusive (the finite trace decided neither).
	PropsSatisfied    int64 `json:",omitempty"`
	PropsViolated     int64 `json:",omitempty"`
	PropsInconclusive int64 `json:",omitempty"`

	// LogErr records a failure of the log the checker read — a sink that
	// could not persist entries, a stream that failed to decode. The
	// verdict is not trustworthy when set: part of the execution may be
	// missing from what was checked.
	LogErr string `json:",omitempty"`
}

// Ok reports whether no violation was detected and the log was read
// without failure.
func (r *Report) Ok() bool { return r.TotalViolations == 0 && r.LogErr == "" }

// Summary is the compact machine-readable digest of a Report: one
// serialization shared by every surface that reports verdicts as JSON (the
// vyrdd /metrics endpoint, vyrdbench -json snapshot rows), so dashboards
// parse a single shape regardless of which tool produced it.
type Summary struct {
	Mode             Mode  `json:"mode"`
	Ok               bool  `json:"ok"`
	TotalViolations  int64 `json:"total_violations"`
	EntriesProcessed int64 `json:"entries_processed"`
	MethodsCompleted int64 `json:"methods_completed"`
	CommitsApplied   int64 `json:"commits_applied"`
	ObserversChecked int64 `json:"observers_checked"`
	WritesReplayed   int64 `json:"writes_replayed,omitempty"`
	ViewsCompared    int64 `json:"views_compared,omitempty"`

	PropsSatisfied    int64 `json:"props_satisfied,omitempty"`
	PropsViolated     int64 `json:"props_violated,omitempty"`
	PropsInconclusive int64 `json:"props_inconclusive,omitempty"`

	FirstViolation string `json:"first_violation,omitempty"`
	LogErr         string `json:"log_err,omitempty"`
}

// Summary digests the report.
func (r *Report) Summary() Summary {
	s := Summary{
		Mode:             r.Mode,
		Ok:               r.Ok(),
		TotalViolations:  r.TotalViolations,
		EntriesProcessed: r.EntriesProcessed,
		MethodsCompleted: r.MethodsCompleted,
		CommitsApplied:   r.CommitsApplied,
		ObserversChecked: r.ObserversChecked,
		WritesReplayed:   r.WritesReplayed,
		ViewsCompared:    r.ViewsCompared,

		PropsSatisfied:    r.PropsSatisfied,
		PropsViolated:     r.PropsViolated,
		PropsInconclusive: r.PropsInconclusive,

		LogErr: r.LogErr,
	}
	if v := r.First(); v != nil {
		s.FirstViolation = v.String()
	}
	return s
}

// First returns the first detected violation, or nil if none.
func (r *Report) First() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// String renders a summary suitable for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s entries=%d methods=%d commits=%d observers=%d",
		r.Mode, r.EntriesProcessed, r.MethodsCompleted, r.CommitsApplied, r.ObserversChecked)
	if r.Mode == ModeView {
		fmt.Fprintf(&b, " writes=%d view-compares=%d", r.WritesReplayed, r.ViewsCompared)
	}
	if r.Mode == ModeLTL {
		fmt.Fprintf(&b, " props=%d/%d/%d (satisfied/inconclusive/violated)",
			r.PropsSatisfied, r.PropsInconclusive, r.PropsViolated)
	}
	if r.LogErr != "" {
		fmt.Fprintf(&b, "\nlog error (verdict incomplete): %s", r.LogErr)
	}
	if r.Ok() {
		switch r.Mode {
		case ModeLinearize:
			b.WriteString("\nno linearizability violations detected")
		case ModeLTL:
			b.WriteString("\nno temporal property violations detected")
		default:
			b.WriteString("\nno refinement violations detected")
		}
		return b.String()
	}
	fmt.Fprintf(&b, "\n%d violation(s) detected:", r.TotalViolations)
	for i := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(r.Violations[i].String())
	}
	if int64(len(r.Violations)) < r.TotalViolations {
		fmt.Fprintf(&b, "\n  ... and %d more", r.TotalViolations-int64(len(r.Violations)))
	}
	return b.String()
}

// signatureString renders the signature of an invocation for diagnostics.
func signatureString(tid int32, method string, args []event.Value, ret event.Value) string {
	return event.Signature{Tid: tid, Method: method, Args: args, Ret: ret}.String()
}
