package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
)

// FuzzCheckerRobustness feeds arbitrary (including thoroughly malformed)
// entry sequences to the checker in both modes and requires that it never
// panics and never hangs: malformed logs must surface as instrumentation
// violations or be ignored, not crash the verification thread. The fuzzer
// drives the byte string as a little program over a small alphabet of
// entry shapes.
func FuzzCheckerRobustness(f *testing.F) {
	// Seeds: a well-formed trace, a truncated one, and adversarial noise.
	f.Add([]byte{0, 10, 2, 20, 1, 30, 3, 40})
	f.Add([]byte{2, 2, 2, 5, 5, 4, 4, 3, 3})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{6, 7, 8, 9, 250, 13})
	f.Add([]byte{0, 3, 4, 2, 5, 1})

	methods := []string{"Insert", "Delete", "LookUp", "InsertPair", "Compress", "Bogus"}
	rets := []event.Value{nil, true, false, 7, "x", event.Exceptional{Reason: "f"}}

	f.Fuzz(func(t *testing.T, program []byte) {
		var entries []event.Entry
		seq := int64(0)
		add := func(e event.Entry) {
			seq++
			e.Seq = seq
			entries = append(entries, e)
		}
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i], program[i+1]
			tid := int32(arg%4) + 1
			switch op % 8 {
			case 0:
				add(event.Entry{Tid: tid, Kind: event.KindCall,
					Method: methods[int(arg)%len(methods)], Args: []event.Value{int(arg)}})
			case 1:
				add(event.Entry{Tid: tid, Kind: event.KindReturn,
					Method: methods[int(arg)%len(methods)], Ret: rets[int(arg)%len(rets)]})
			case 2:
				add(event.Entry{Tid: tid, Kind: event.KindCommit,
					Method: methods[int(arg)%len(methods)]})
			case 3:
				add(event.Entry{Tid: tid, Kind: event.KindCommit,
					Method: methods[int(arg)%len(methods)], WOp: "bump",
					WArgs: []event.Value{int(arg), 1}})
			case 4:
				add(event.Entry{Tid: tid, Kind: event.KindWrite,
					Method: "bump", Args: []event.Value{int(arg), 1}})
			case 5:
				add(event.Entry{Tid: tid, Kind: event.KindWrite,
					Method: "nonsense-op", Args: []event.Value{"junk"}})
			case 6:
				add(event.Entry{Tid: tid, Kind: event.KindBeginBlock})
			case 7:
				add(event.Entry{Tid: tid, Kind: event.KindEndBlock})
			}
		}

		for _, opts := range [][]Option{
			nil,
			{WithReplayer(newKVReplayer())},
			{WithReplayer(newKVReplayer()), WithQuiescentViewOnly(true)},
		} {
			rep, err := CheckEntries(entries, spec.NewMultiset(), opts...)
			if err != nil {
				t.Fatalf("constructor error on options: %v", err)
			}
			if rep == nil {
				t.Fatal("nil report")
			}
			// Counters must stay coherent even on garbage.
			if int64(len(rep.Violations)) > rep.TotalViolations {
				t.Fatalf("stored violations exceed the total: %+v", rep)
			}
		}
	})
}
