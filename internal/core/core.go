// Package core implements the VYRD refinement checker (Sections 3-5 of the
// paper): a verification engine that consumes the totally ordered execution
// log of an instrumented concurrent implementation and checks that the
// execution refines a method-atomic, deterministic executable specification.
//
// Two refinement notions are supported. In I/O refinement mode the checker
// builds the witness interleaving from the order of commit actions and
// drives the specification one method at a time with the observed arguments
// and return values; observer methods, which carry no commit annotation, are
// accepted if their return value is legal at any specification state between
// their call and return (Section 4.3). In view refinement mode the checker
// additionally reconstructs a replica of the implementation state from the
// logged writes, computes the viewI digest at every mutator commit (with
// commit blocks applied atomically, Section 5.2), and requires it to equal
// the viewS digest of the specification at the corresponding point of the
// witness interleaving.
package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/view"
)

// Spec is an executable specification: a method-atomic, deterministic state
// transition system (Section 3.2). The checker owns the Spec instance and
// calls it from a single goroutine.
//
// Determinism here is the paper's notion: given a method, its arguments and
// its return value, the successor state is unique. Nondeterminism in return
// values (e.g. an Insert that may terminate exceptionally) is expressed by
// ApplyMutator accepting several ret values at the same state.
type Spec interface {
	// ApplyMutator atomically executes mutator method with the given
	// arguments and the return value observed in the implementation. It
	// returns a non-nil error, and leaves the state unchanged, if the
	// return value is not permitted at the current state or the transition
	// is otherwise impossible.
	ApplyMutator(method string, args []event.Value, ret event.Value) error

	// CheckObserver reports whether ret is a permitted return value for the
	// observer method with the given arguments at the current state. It
	// must not modify the state.
	CheckObserver(method string, args []event.Value, ret event.Value) bool

	// IsMutator reports whether the named method is a mutator. Observer
	// methods must not modify specification state (Section 3).
	IsMutator(method string) bool

	// View returns the specification's live view table (viewS). The checker
	// snapshots its fingerprint at each commit. Specs that do not support
	// view refinement may return nil, restricting them to ModeIO.
	View() *view.Table

	// Reset returns the specification to its initial state.
	Reset()
}

// Replayer reconstructs implementation state (the replica) from logged write
// actions, and exposes the viewI digest over it. Replay methods that
// reconstruct data-structure state from coarse-grained log entries are
// provided by the data structure's author (Section 6.2). The checker owns
// the Replayer instance and calls it from a single goroutine.
type Replayer interface {
	// Apply replays one logged write into the replica. A non-nil error is
	// reported as a replay violation (typically a malformed or impossible
	// entry, indicating an instrumentation or logging bug).
	Apply(op string, args []event.Value) error

	// View returns the live viewI table over the replica.
	View() *view.Table

	// Invariants checks the data-structure invariants the author chose to
	// verify at runtime on the replica state (Section 7.2.1 checks, for
	// example, that clean cache entries match the chunk manager). It is
	// invoked after each committed update is applied. A nil Replayer
	// invariant error means the state is consistent.
	Invariants() error

	// Reset returns the replica to the initial state.
	Reset()
}

// EntryChecker is the minimal surface a verdict engine presents to the log
// pipeline: feed entries in sequence order, finish, read the report. The
// refinement Checker implements it; so does the linearize engine's streaming
// checker. The Multi fan-out and the remote server drive checkers through
// this interface, which is what lets "linearize" ride the same FormatVersion
// framed logs, cursors and module routing as refinement.
//
// Implementations must tolerate Feed after Done (a fail-fast engine that
// stopped early still sees the rest of the stream from a draining router)
// and must make Report complete only after Finish.
type EntryChecker interface {
	// Feed consumes one log entry. Entries arrive in sequence order.
	Feed(e event.Entry)
	// Finish marks end-of-log, completes pending diagnostics and returns
	// the final report.
	Finish() *Report
	// Done reports whether the checker stopped early (fail-fast).
	Done() bool
	// Report returns the current report; complete only after Finish.
	Report() *Report
}

// Mode selects the refinement notion to check.
type Mode uint8

const (
	// ModeIO checks I/O refinement (Section 4).
	ModeIO Mode = iota + 1
	// ModeView checks view refinement (Section 5), which subsumes the I/O
	// checks and additionally compares viewI against viewS at each commit.
	ModeView
	// ModeLinearize checks linearizability instead of refinement: it ignores
	// commit annotations entirely and searches for ANY witness interleaving
	// consistent with the call/return order (internal/linearize implements
	// the search). The mode exists on core.Mode so reports, CLI flags and the
	// remote-protocol handshake name all three verdict notions uniformly; the
	// core Checker itself rejects it — construct a linearize checker instead.
	ModeLinearize
	// ModeLTL checks temporal-logic properties over the log instead of
	// refinement: an LTL3 monitor per property steps once per entry
	// (internal/ltl implements the evaluator). Like ModeLinearize, the mode
	// lives on core.Mode so reports, CLI flags and the remote handshake name
	// all verdict notions uniformly; the core Checker rejects it.
	ModeLTL
)

// String returns the name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeIO:
		return "io"
	case ModeView:
		return "view"
	case ModeLinearize:
		return "linearize"
	case ModeLTL:
		return "ltl"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// MarshalJSON renders the mode by name in machine-readable reports.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// UnmarshalJSON parses a mode by name, so reports and remote-protocol
// handshakes round-trip through JSON.
func (m *Mode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"io"`:
		*m = ModeIO
	case `"view"`:
		*m = ModeView
	case `"linearize"`:
		*m = ModeLinearize
	case `"ltl"`:
		*m = ModeLTL
	default:
		return fmt.Errorf("core: unknown mode %s", b)
	}
	return nil
}

// Option configures a Checker.
type Option func(*Checker)

// WithMode forces the refinement mode. The default is ModeView when a
// replayer is configured and ModeIO otherwise.
func WithMode(m Mode) Option { return func(c *Checker) { c.mode = m } }

// WithReplayer supplies the replica used for view refinement.
func WithReplayer(r Replayer) Option { return func(c *Checker) { c.replayer = r } }

// WithFailFast stops checking at the first violation. This is how the
// time-to-first-detection experiments (Table 1) run.
func WithFailFast(on bool) Option { return func(c *Checker) { c.failFast = on } }

// WithMaxViolations caps the number of recorded violations when not failing
// fast (default 64); checking continues but further violations are counted,
// not stored.
func WithMaxViolations(n int) Option { return func(c *Checker) { c.maxViolations = n } }

// WithDiagnostics makes the checker keep a clone of viewS at each commit so
// that view violations report an exact key-level diff. Costs a table copy
// per commit; intended for debugging and small runs, not benchmarks.
func WithDiagnostics(on bool) Option { return func(c *Checker) { c.diagnostics = on } }

// WithQuiescentViewOnly restricts view comparison to quiescent states —
// log positions where no method execution is in flight — instead of every
// mutator commit. This reproduces the state-checking granularity of
// Flanagan's commit-atomicity (Section 8: "refinement checking is done
// only at quiescent points rather than at each commit point") as an
// ablation: under realistic continuous load quiescent points are very rare
// (Section 5.2), so errors are detected late or not at all. Replica
// invariants are likewise only checked at quiescent points in this mode.
func WithQuiescentViewOnly(on bool) Option { return func(c *Checker) { c.quiescentOnly = on } }
