package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
	"repro/internal/view"
)

// logBuilder assembles synthetic logs for checker tests.
type logBuilder struct {
	seq     int64
	entries []event.Entry
}

func (b *logBuilder) add(e event.Entry) *logBuilder {
	b.seq++
	e.Seq = b.seq
	b.entries = append(b.entries, e)
	return b
}

func (b *logBuilder) call(tid int32, m string, args ...event.Value) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindCall, Method: m, Args: args})
}

func (b *logBuilder) ret(tid int32, m string, v event.Value) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindReturn, Method: m, Ret: v})
}

func (b *logBuilder) commit(tid int32, m string) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindCommit, Method: m})
}

func (b *logBuilder) commitWrite(tid int32, m, op string, args ...event.Value) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindCommit, Method: m, WOp: op, WArgs: args})
}

func (b *logBuilder) write(tid int32, op string, args ...event.Value) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindWrite, Method: op, Args: args})
}

func (b *logBuilder) begin(tid int32) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindBeginBlock})
}

func (b *logBuilder) end(tid int32) *logBuilder {
	return b.add(event.Entry{Tid: tid, Kind: event.KindEndBlock})
}

func mustCheck(t *testing.T, entries []event.Entry, s Spec, opts ...Option) *Report {
	t.Helper()
	rep, err := CheckEntries(entries, s, opts...)
	if err != nil {
		t.Fatalf("CheckEntries: %v", err)
	}
	return rep
}

func wantOk(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.Ok() {
		t.Fatalf("unexpected violations:\n%s", rep)
	}
}

func wantViolation(t *testing.T, rep *Report, kind ViolationKind, substr string) {
	t.Helper()
	if rep.Ok() {
		t.Fatalf("expected a %v violation, report clean:\n%s", kind, rep)
	}
	v := rep.First()
	if v.Kind != kind {
		t.Fatalf("expected %v violation, got %v:\n%s", kind, v.Kind, rep)
	}
	if substr != "" && !strings.Contains(v.Detail, substr) {
		t.Fatalf("violation detail %q does not contain %q", v.Detail, substr)
	}
}

// TestFig3Witness reproduces the Fig. 3 scenario: LookUp(3) starts before
// Insert(3) and returns before Insert(3) returns, yet returning true is
// correct because Insert(3)'s commit precedes a state in LookUp's window.
func TestFig3Witness(t *testing.T) {
	var b logBuilder
	// Threads: 1 LookUp(3), 2 Insert(3), 3 Insert(4), 4 Delete(3).
	b.call(1, "LookUp", 3)
	b.call(2, "Insert", 3)
	b.call(3, "Insert", 4)
	b.call(4, "Delete", 3)
	b.commit(2, "Insert") // Insert(3) commits
	b.ret(1, "LookUp", true)
	b.ret(2, "Insert", true)
	b.commit(3, "Insert")
	b.ret(3, "Insert", true)
	b.commit(4, "Delete") // Delete(3) commits after Insert(3)
	b.ret(4, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantOk(t, rep)
	if rep.CommitsApplied != 3 || rep.ObserversChecked != 1 {
		t.Fatalf("unexpected counters: %+v", rep)
	}
}

// TestFig3LookupFalseAlsoValid checks the dual: LookUp(3) -> false is valid
// at the state before Insert(3)'s commit (s0 of its window).
func TestFig3LookupFalseAlsoValid(t *testing.T) {
	var b logBuilder
	b.call(1, "LookUp", 3)
	b.call(2, "Insert", 3)
	b.commit(2, "Insert")
	b.ret(2, "Insert", true)
	b.ret(1, "LookUp", false)
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestObserverOutsideWindow: a LookUp performed entirely after Insert(3) and
// Delete(3) must return false; true is a violation.
func TestObserverOutsideWindow(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert").ret(1, "Insert", true)
	b.call(1, "Delete", 3).commit(1, "Delete").ret(1, "Delete", true)
	b.call(1, "LookUp", 3).ret(1, "LookUp", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationObserver, "LookUp")
}

// TestObserverWindowMidState: the observer's return value is valid only at
// an intermediate state of its window (after one commit, before the next).
func TestObserverWindowMidState(t *testing.T) {
	var b logBuilder
	b.call(1, "LookUp", 7)
	b.call(2, "Insert", 7)
	b.commit(2, "Insert")
	b.ret(2, "Insert", true)
	b.call(2, "Delete", 7)
	b.commit(2, "Delete")
	b.ret(2, "Delete", true)
	b.ret(1, "LookUp", true) // valid at the state between the two commits
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestIOViolationReturnValue: the spec rejects a Delete(x) -> true when x
// was never inserted.
func TestIOViolationReturnValue(t *testing.T) {
	var b logBuilder
	b.call(1, "Delete", 9).commit(1, "Delete").ret(1, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationIO, "absent")
}

// TestInsertFailureIsPermitted: unsuccessful Insert terminations are allowed
// and leave the state unchanged (the refinement-vs-atomicity point of
// Section 1).
func TestInsertFailureIsPermitted(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 5).commit(1, "Insert").ret(1, "Insert", false)
	b.call(1, "LookUp", 5).ret(1, "LookUp", false)
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestExceptionalInsertPermitted: exceptional termination is a special
// return value accepted as an unsuccessful outcome.
func TestExceptionalInsertPermitted(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 5).commit(1, "Insert")
	b.ret(1, "Insert", event.Exceptional{Reason: "contention"})
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestCommitOrderDecides: Insert(3) and Delete(3) overlap; the commit order
// Insert-then-Delete makes Delete(3) -> true valid even though Delete was
// called first.
func TestCommitOrderDecides(t *testing.T) {
	var b logBuilder
	b.call(1, "Delete", 3)
	b.call(2, "Insert", 3)
	b.commit(2, "Insert")
	b.commit(1, "Delete")
	b.ret(1, "Delete", true)
	b.ret(2, "Insert", true)
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestMissingCommit: a mutator execution without a commit action is an
// instrumentation violation (Section 4.1: exactly one per execution path).
func TestMissingCommit(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "without a commit action")
}

// TestDoubleCommit: two commit actions in one execution are rejected.
func TestDoubleCommit(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert").commit(1, "Insert").ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "second commit")
}

// TestCommitInObserver: observers must not be annotated with commits.
func TestCommitInObserver(t *testing.T) {
	var b logBuilder
	b.call(1, "LookUp", 3).commit(1, "LookUp").ret(1, "LookUp", false)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "observer")
}

// TestCommitOutsideMethod: a commit with no open invocation is rejected.
func TestCommitOutsideMethod(t *testing.T) {
	var b logBuilder
	b.commit(1, "Insert")
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "outside")
}

// TestReturnWithoutCall and mismatched method names are malformed runs.
func TestReturnWithoutCall(t *testing.T) {
	var b logBuilder
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "without a matching call")
}

func TestMismatchedReturn(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).ret(1, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "while")
}

func TestNestedCallSameThread(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).call(1, "Insert", 4)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "well-formed")
}

// TestLogEndsMidMethod: a commit whose method never returns is diagnosed at
// Finish rather than hanging the pipeline.
func TestLogEndsMidMethod(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert")
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationInstrumentation, "log ends")
}

// kvReplayer is a minimal replica for view-mechanics tests: op "set" k v
// maintains element counts in the multiset's canonical form ("e:<x>" ->
// count), op "bump" x d adjusts a count, op "fail" always errors, and op
// "poison" arms an invariant failure.
type kvReplayer struct {
	tbl      *view.Table
	counts   map[int]int
	poisoned bool
}

func newKVReplayer() *kvReplayer {
	r := &kvReplayer{}
	r.Reset()
	return r
}

func (r *kvReplayer) Reset() {
	r.tbl = view.NewTable()
	r.counts = make(map[int]int)
	r.poisoned = false
}

func (r *kvReplayer) View() *view.Table { return r.tbl }

func (r *kvReplayer) Invariants() error {
	if r.poisoned {
		return errPoisoned
	}
	return nil
}

var errPoisoned = fmt.Errorf("replica poisoned")

// spaceE matches the multiset specification's view key universe.
var spaceE = view.NewSpace("e")

func (r *kvReplayer) Apply(op string, args []event.Value) error {
	switch op {
	case "bump":
		x := event.MustInt(args[0])
		d := event.MustInt(args[1])
		n := r.counts[x] + d
		if n <= 0 {
			delete(r.counts, x)
			r.tbl.DeleteInt(spaceE, int64(x))
		} else {
			r.counts[x] = n
			r.tbl.SetInt(spaceE, int64(x), int64(n))
		}
		return nil
	case "poison":
		r.poisoned = true
		return nil
	case "fail":
		return fmt.Errorf("cannot apply")
	}
	return fmt.Errorf("unknown op %q", op)
}

// TestViewMatchCommitWrite: a commit-write that mirrors the spec transition
// keeps the views equal.
func TestViewMatchCommitWrite(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3)
	b.commitWrite(1, "Insert", "bump", 3, 1)
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantOk(t, rep)
	if rep.Mode != ModeView || rep.ViewsCompared != 1 || rep.WritesReplayed != 1 {
		t.Fatalf("unexpected counters: %+v", rep)
	}
}

// TestViewMismatchDetected: the implementation's committed write disagrees
// with the spec transition (wrong element), so viewI != viewS.
func TestViewMismatchDetected(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3)
	b.commitWrite(1, "Insert", "bump", 4, 1) // wrote 4, claimed to insert 3
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()), WithDiagnostics(true))
	wantViolation(t, rep, ViolationView, "viewI")
	if !strings.Contains(rep.First().Detail, "e:4") {
		t.Fatalf("diagnostic diff missing key detail: %s", rep.First().Detail)
	}
}

// TestViewMismatchEarlyDetection is the Section 5 claim: with no observers
// at all, I/O refinement passes while view refinement catches the error.
func TestViewMismatchEarlyDetection(t *testing.T) {
	var b logBuilder
	b.call(1, "InsertPair", 2, 2)
	// The implementation only inserted one copy of 2.
	b.commitWrite(1, "InsertPair", "bump", 2, 1)
	b.ret(1, "InsertPair", true)
	entries := b.entries

	io := mustCheck(t, entries, spec.NewMultiset())
	wantOk(t, io)

	vw := mustCheck(t, entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, vw, ViolationView, "InsertPair")
}

// TestCommitBlockAtomicity: writes inside a commit block are applied
// atomically at the commit, so a pair insert never exposes a dirty
// one-element state (the Section 5.2 scenario).
func TestCommitBlockAtomicity(t *testing.T) {
	var b logBuilder
	// Thread 1 inserts (1,2) in a block; thread 2's commit lands in the log
	// between thread 1's first and second block write. Thread 1's block
	// must nonetheless flush atomically in commit order.
	b.call(1, "InsertPair", 1, 2)
	b.call(2, "Insert", 5)
	b.begin(1)
	b.write(1, "bump", 1, 1)
	b.commitWrite(2, "Insert", "bump", 5, 1)
	b.ret(2, "Insert", true)
	b.write(1, "bump", 2, 1)
	b.commit(1, "InsertPair")
	b.end(1)
	b.ret(1, "InsertPair", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantOk(t, rep)
	if rep.ViewsCompared != 2 {
		t.Fatalf("expected 2 view comparisons, got %+v", rep)
	}
}

// TestOverlappingBlocksFlushInCommitOrder: block B1 commits before B2 but
// ends after B2 ends; the flush queue must nevertheless apply B1 first and
// compare each block against the viewS snapshot taken at its own commit.
func TestOverlappingBlocksFlushInCommitOrder(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 1)
	b.call(2, "Insert", 2)
	b.begin(1)
	b.write(1, "bump", 1, 1)
	b.commit(1, "Insert") // B1 commits first
	b.begin(2)
	b.write(2, "bump", 2, 1)
	b.commit(2, "Insert") // B2 commits second...
	b.end(2)              // ...but ends first
	b.end(1)
	b.ret(1, "Insert", true)
	b.ret(2, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantOk(t, rep)
}

// TestInvariantViolation: replica invariants are checked after each
// committed flush.
func TestInvariantViolation(t *testing.T) {
	var b logBuilder
	b.call(1, "Compress")
	b.commitWrite(1, "Compress", "poison")
	b.ret(1, "Compress", nil)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInvariant, "poisoned")
}

// TestReplayFailure: an inapplicable write is an instrumentation violation.
func TestReplayFailure(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3)
	b.commitWrite(1, "Insert", "fail")
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInstrumentation, "cannot apply")
}

// TestUnclosedBlockDiagnosed: a block that never ends is caught at Finish.
func TestUnclosedBlockDiagnosed(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 1)
	b.begin(1)
	b.write(1, "bump", 1, 1)
	b.commit(1, "Insert")
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInstrumentation, "")
}

// TestFailFastStopsAtFirst: fail-fast checking records exactly one
// violation and stops consuming entries.
func TestFailFastStopsAtFirst(t *testing.T) {
	var b logBuilder
	b.call(1, "Delete", 9).commit(1, "Delete").ret(1, "Delete", true)
	b.call(1, "Delete", 8).commit(1, "Delete").ret(1, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithFailFast(true))
	if rep.TotalViolations != 1 {
		t.Fatalf("expected exactly one violation, got %d", rep.TotalViolations)
	}
}

// TestMaxViolationsCaps: without fail-fast, violations beyond the cap are
// counted but not stored.
func TestMaxViolationsCaps(t *testing.T) {
	var b logBuilder
	for i := 0; i < 5; i++ {
		b.call(1, "Delete", 100+i).commit(1, "Delete").ret(1, "Delete", true)
	}
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithMaxViolations(2))
	if rep.TotalViolations != 5 || len(rep.Violations) != 2 {
		t.Fatalf("expected 5 total / 2 stored, got %d / %d", rep.TotalViolations, len(rep.Violations))
	}
}

// TestViewModeRequiresReplayer validates constructor checks.
func TestViewModeRequiresReplayer(t *testing.T) {
	if _, err := New(spec.NewMultiset(), WithMode(ModeView)); err == nil {
		t.Fatal("expected an error constructing view mode without a replayer")
	}
}

// TestMethodsCompletedAtDetection tracks the Table 1 metric.
func TestMethodsCompletedAtDetection(t *testing.T) {
	var b logBuilder
	for i := 0; i < 3; i++ {
		b.call(1, "Insert", i).commit(1, "Insert").ret(1, "Insert", true)
	}
	b.call(1, "Delete", 99).commit(1, "Delete").ret(1, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	if rep.First() == nil || rep.First().MethodsCompleted != 3 {
		t.Fatalf("expected detection after 3 completed methods, got %+v", rep.First())
	}
}

// TestWorkerCompressNoOp: worker pseudo-methods drive a no-op spec
// transition and must not disturb the abstract state.
func TestWorkerCompressNoOp(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert").ret(1, "Insert", true)
	b.add(event.Entry{Tid: 9, Kind: event.KindCall, Method: spec.MethodCompress, Worker: true})
	b.add(event.Entry{Tid: 9, Kind: event.KindCommit, Method: spec.MethodCompress, Worker: true})
	b.add(event.Entry{Tid: 9, Kind: event.KindReturn, Method: spec.MethodCompress, Worker: true})
	b.call(1, "LookUp", 3).ret(1, "LookUp", true)
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}
