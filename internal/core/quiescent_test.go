package core

import (
	"testing"

	"repro/internal/spec"
)

// The WithQuiescentViewOnly ablation reproduces the state-checking
// granularity of commit-atomicity (Section 8). These tests pin down the
// paper's two arguments for per-commit checking (Section 5.2): quiescent
// checking detects persistent corruption late, and transient corruption —
// overwritten before the system next quiesces — not at all.

// quiescentOpts builds view-mode options with the ablation enabled.
func quiescentOpts(extra ...Option) []Option {
	return append([]Option{WithReplayer(newKVReplayer()), WithQuiescentViewOnly(true)}, extra...)
}

// TestQuiescentDetectsPersistentCorruptionLate: a corrupted commit inside a
// busy span is detected by per-commit checking at the commit, but by
// quiescent-only checking only when the last in-flight method returns.
func TestQuiescentDetectsPersistentCorruptionLate(t *testing.T) {
	var b logBuilder
	// A long-running method keeps the system non-quiescent.
	b.call(9, "Insert", 99)
	// The corrupting commit: claims Insert(3), writes element 4.
	b.call(1, "Insert", 3)
	b.commitWrite(1, "Insert", "bump", 4, 1)
	b.ret(1, "Insert", true)
	// More correct work while still non-quiescent.
	for i := 0; i < 5; i++ {
		b.call(2, "Insert", i)
		b.commitWrite(2, "Insert", "bump", i, 1)
		b.ret(2, "Insert", true)
	}
	// The long-running method finally commits and returns: quiescence.
	b.commitWrite(9, "Insert", "bump", 99, 1)
	b.ret(9, "Insert", true)
	entries := b.entries

	perCommit := mustCheck(t, entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	if perCommit.Ok() || perCommit.First().Kind != ViolationView {
		t.Fatalf("per-commit checking missed the corruption:\n%s", perCommit)
	}
	if perCommit.First().MethodsCompleted != 0 {
		t.Fatalf("per-commit detection should precede any completed method, got %d",
			perCommit.First().MethodsCompleted)
	}

	quiescent := mustCheck(t, entries, spec.NewMultiset(), quiescentOpts()...)
	if quiescent.Ok() || quiescent.First().Kind != ViolationView {
		t.Fatalf("quiescent checking missed persistent corruption:\n%s", quiescent)
	}
	if quiescent.First().MethodsCompleted != 7 {
		t.Fatalf("quiescent detection should wait for the system to quiesce (7 methods), got %d",
			quiescent.First().MethodsCompleted)
	}
}

// TestQuiescentMissesTransientCorruption: corruption that is overwritten
// before the next quiescent point is invisible to quiescent-only checking —
// the Section 5.2 "errors may be overwritten" argument.
func TestQuiescentMissesTransientCorruption(t *testing.T) {
	var b logBuilder
	b.call(9, "Insert", 99) // keeps the system busy
	// Corruption: Insert(3) writes element 4.
	b.call(1, "Insert", 3)
	b.commitWrite(1, "Insert", "bump", 4, 1)
	b.ret(1, "Insert", true)
	// The corruption is "repaired" before quiescence: a delete of 4 that
	// claims (and spec-removes) 3 — mirroring a later operation that
	// happens to cancel the discrepancy.
	b.call(1, "Delete", 3)
	b.commitWrite(1, "Delete", "bump", 4, -1)
	b.ret(1, "Delete", true)
	b.commitWrite(9, "Insert", "bump", 99, 1)
	b.ret(9, "Insert", true)
	entries := b.entries

	perCommit := mustCheck(t, entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	if perCommit.Ok() {
		t.Fatalf("per-commit checking missed the transient corruption:\n%s", perCommit)
	}

	quiescent := mustCheck(t, entries, spec.NewMultiset(), quiescentOpts()...)
	if !quiescent.Ok() {
		t.Fatalf("quiescent-only checking was expected to miss the overwritten corruption:\n%s", quiescent)
	}
}

// TestQuiescentCleanRunsStayClean: correct overlapped traces pass under the
// ablation too (no false positives at quiescent points).
func TestQuiescentCleanRunsStayClean(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := newViewTraceGen(seed, 4)
		for i := 0; i < 150; i++ {
			g.step()
		}
		g.drain()
		rep := mustCheck(t, g.b.entries, spec.NewMultiset(), quiescentOpts()...)
		if !rep.Ok() {
			t.Fatalf("seed %d: false positive under quiescent-only checking:\n%s", seed, rep)
		}
	}
}

// TestQuiescentComparisonCountsAreSparse: under continuous overlapped load,
// quiescent points are far rarer than commits (the Section 5.2 rationale).
func TestQuiescentComparisonCountsAreSparse(t *testing.T) {
	g := newViewTraceGen(3, 8) // 8 threads: near-continuous overlap
	for i := 0; i < 2000; i++ {
		g.step()
	}
	g.drain()
	entries := g.b.entries

	perCommit := mustCheck(t, entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	quiescent := mustCheck(t, entries, spec.NewMultiset(), quiescentOpts()...)
	if !perCommit.Ok() || !quiescent.Ok() {
		t.Fatalf("clean traces flagged: %v %v", perCommit.Ok(), quiescent.Ok())
	}
	if quiescent.ViewsCompared >= perCommit.ViewsCompared/4 {
		t.Fatalf("quiescent points not rare under load: %d quiescent vs %d commits",
			quiescent.ViewsCompared, perCommit.ViewsCompared)
	}
	t.Logf("comparisons: per-commit %d, quiescent-only %d", perCommit.ViewsCompared, quiescent.ViewsCompared)
}
