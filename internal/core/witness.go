package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/event"
)

// Section 4.1 of the paper: "The runtime refinement check could fail either
// because the implementation truly does not refine the specification or
// because the witness interleaving obtained using the commit actions is
// wrong. Comparing the witness interleaving with the implementation trace
// reveals which one is the case." This file provides that comparison as a
// reusable analysis: the witness interleaving extracted from a log, plus a
// rendering that shows each method execution's span and commit position.

// WitnessEntry is one method execution, positioned in the witness
// interleaving.
type WitnessEntry struct {
	Tid    int32
	Method string
	Args   []event.Value
	Ret    event.Value
	Worker bool

	CallSeq   int64
	CommitSeq int64 // 0 for observers (no commit action)
	RetSeq    int64 // 0 if the log ended mid-method
	Label     string

	// Position is the execution's index in the witness interleaving:
	// mutators are ordered by commit action; an observer is placed after
	// the last mutator whose commit precedes the observer's return (its
	// latest possible position, sn of its window).
	Position int
}

// Mutator reports whether the execution carries a commit action.
func (w WitnessEntry) Mutator() bool { return w.CommitSeq != 0 }

// Witness extracts the witness interleaving from a recorded log: the
// method executions serialized in commit-action order (Section 4). It does
// not validate the trace; pair it with a Checker for that.
func Witness(entries []event.Entry) []WitnessEntry {
	open := make(map[int32]*WitnessEntry)
	var done []*WitnessEntry
	for _, e := range entries {
		switch e.Kind {
		case event.KindCall:
			w := &WitnessEntry{
				Tid: e.Tid, Method: e.Method, Args: e.Args,
				Worker: e.Worker, CallSeq: e.Seq,
			}
			open[e.Tid] = w
		case event.KindCommit:
			if w := open[e.Tid]; w != nil && w.CommitSeq == 0 {
				w.CommitSeq = e.Seq
				w.Label = e.Label
			}
		case event.KindReturn:
			if w := open[e.Tid]; w != nil {
				w.Ret = e.Ret
				w.RetSeq = e.Seq
				done = append(done, w)
				delete(open, e.Tid)
			}
		}
	}
	// Unreturned executions still appear, at the end of per-thread order.
	for _, w := range open {
		done = append(done, w)
	}

	// Order: mutators by commit; an execution without a commit (observer or
	// unfinished) by the latest state of its window — its return (or call,
	// when unreturned).
	sort.SliceStable(done, func(i, j int) bool {
		return witnessKey(done[i]) < witnessKey(done[j])
	})
	out := make([]WitnessEntry, len(done))
	for i, w := range done {
		w.Position = i
		out[i] = *w
	}
	return out
}

func witnessKey(w *WitnessEntry) int64 {
	if w.CommitSeq != 0 {
		return w.CommitSeq
	}
	if w.RetSeq != 0 {
		return w.RetSeq
	}
	return w.CallSeq
}

// WriteWitness renders the witness interleaving next to the implementation
// trace spans, the Section 4.1 debugging view for commit-point selection.
func WriteWitness(w io.Writer, entries []event.Entry) {
	ws := Witness(entries)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tthread\tmethod\tcall@\tcommit@\treturn@\tresult")
	for _, e := range ws {
		tid := fmt.Sprintf("t%d", e.Tid)
		if e.Worker {
			tid += "*"
		}
		commit := "-"
		if e.CommitSeq != 0 {
			commit = fmt.Sprintf("%d", e.CommitSeq)
			if e.Label != "" {
				commit += " [" + e.Label + "]"
			}
		}
		ret := "-"
		if e.RetSeq != 0 {
			ret = fmt.Sprintf("%d", e.RetSeq)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s%v\t%d\t%s\t%s\t%v\n",
			e.Position, tid, e.Method, e.Args, e.CallSeq, commit, ret, e.Ret)
	}
	tw.Flush()
}

// OverlapStats summarizes the concurrency structure of a trace: how many
// method executions overlapped each execution's span. Useful for judging
// whether a harness actually produced contention.
type OverlapStats struct {
	Executions  int
	MaxOverlap  int
	MeanOverlap float64
}

// Overlaps computes overlap statistics over a recorded log.
func Overlaps(entries []event.Entry) OverlapStats {
	ws := Witness(entries)
	var stats OverlapStats
	stats.Executions = len(ws)
	if len(ws) == 0 {
		return stats
	}
	total := 0
	for i, a := range ws {
		if a.RetSeq == 0 {
			continue
		}
		n := 0
		for j, b := range ws {
			if i == j || b.RetSeq == 0 {
				continue
			}
			if a.CallSeq < b.RetSeq && b.CallSeq < a.RetSeq {
				n++
			}
		}
		total += n
		if n > stats.MaxOverlap {
			stats.MaxOverlap = n
		}
	}
	stats.MeanOverlap = float64(total) / float64(len(ws))
	return stats
}
