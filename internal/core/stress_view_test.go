package core

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
)

// viewTraceGen extends the I/O trace generator to view refinement: every
// successful mutator carries a commit-write (or a commit block) whose
// replayed effect on the kvReplayer replica matches the specification
// transition, so generated traces are view-correct by construction.
type viewTraceGen struct {
	rng      *rand.Rand
	b        logBuilder
	counts   map[int]int
	inflight map[int32]*viewGenInv
	tids     []int32
}

type viewGenInv struct {
	tid      int32
	method   string
	x, y     int
	ret      event.Value
	retKnown bool
	phase    int // 0 = called, 1 = committed (mutators)
}

func newViewTraceGen(seed int64, threads int) *viewTraceGen {
	g := &viewTraceGen{
		rng:      rand.New(rand.NewSource(seed)),
		counts:   map[int]int{},
		inflight: map[int32]*viewGenInv{},
	}
	for t := 1; t <= threads; t++ {
		g.tids = append(g.tids, int32(t))
	}
	return g
}

func (g *viewTraceGen) step() {
	tid := g.tids[g.rng.Intn(len(g.tids))]
	inv := g.inflight[tid]
	if inv == nil {
		g.start(tid)
		return
	}
	switch {
	case inv.method == "LookUp":
		g.finish(inv)
	case inv.phase == 0:
		g.commit(inv)
	default:
		g.finish(inv)
	}
}

func (g *viewTraceGen) start(tid int32) {
	x := g.rng.Intn(8)
	switch g.rng.Intn(4) {
	case 0:
		g.inflight[tid] = &viewGenInv{tid: tid, method: "Insert", x: x}
		g.b.call(tid, "Insert", x)
	case 1:
		g.inflight[tid] = &viewGenInv{tid: tid, method: "InsertPair", x: x, y: (x + 1) % 8}
		g.b.call(tid, "InsertPair", x, (x+1)%8)
	case 2:
		g.inflight[tid] = &viewGenInv{tid: tid, method: "Delete", x: x}
		g.b.call(tid, "Delete", x)
	case 3:
		g.inflight[tid] = &viewGenInv{tid: tid, method: "LookUp", x: x, ret: g.counts[x] > 0, retKnown: true}
		g.b.call(tid, "LookUp", x)
	}
}

func (g *viewTraceGen) commit(inv *viewGenInv) {
	inv.phase = 1
	switch inv.method {
	case "Insert":
		success := g.rng.Intn(4) != 0
		inv.ret = success
		if success {
			g.counts[inv.x]++
			g.b.commitWrite(inv.tid, "Insert", "bump", inv.x, 1)
		} else {
			g.b.commit(inv.tid, "Insert")
		}
	case "InsertPair":
		success := g.rng.Intn(4) != 0
		inv.ret = success
		if success {
			g.counts[inv.x]++
			g.counts[inv.y]++
			// A commit block carrying both updates atomically (§5.2).
			g.b.begin(inv.tid)
			g.b.write(inv.tid, "bump", inv.x, 1)
			g.b.write(inv.tid, "bump", inv.y, 1)
			g.b.commit(inv.tid, "InsertPair")
			g.b.end(inv.tid)
		} else {
			g.b.commit(inv.tid, "InsertPair")
		}
	case "Delete":
		if g.counts[inv.x] > 0 && g.rng.Intn(3) != 0 {
			g.counts[inv.x]--
			inv.ret = true
			g.b.commitWrite(inv.tid, "Delete", "bump", inv.x, -1)
		} else {
			inv.ret = false
			g.b.commit(inv.tid, "Delete")
		}
	}
	inv.retKnown = true
}

func (g *viewTraceGen) finish(inv *viewGenInv) {
	if !inv.retKnown {
		inv.ret = g.counts[inv.x] > 0
		inv.retKnown = true
	}
	g.b.ret(inv.tid, inv.method, inv.ret)
	delete(g.inflight, inv.tid)
}

func (g *viewTraceGen) drain() {
	for _, tid := range g.tids {
		inv := g.inflight[tid]
		if inv == nil {
			continue
		}
		if inv.method != "LookUp" && inv.phase == 0 {
			g.commit(inv)
		}
		g.finish(inv)
	}
}

// TestStressViewGeneratedTracesAccepted: random view-correct traces with
// overlapping commit blocks must pass view refinement.
func TestStressViewGeneratedTracesAccepted(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		g := newViewTraceGen(seed, 2+int(seed%6))
		steps := 50 + g.rng.Intn(300)
		for i := 0; i < steps; i++ {
			g.step()
		}
		g.drain()
		rep := mustCheck(t, g.b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
		if !rep.Ok() {
			t.Fatalf("seed %d: view-correct trace rejected:\n%s", seed, rep)
		}
		if rep.ViewsCompared != rep.CommitsApplied {
			t.Fatalf("seed %d: %d views compared for %d commits", seed, rep.ViewsCompared, rep.CommitsApplied)
		}
	}
}

// TestStressViewMutationsRejected corrupts view-correct traces in ways I/O
// refinement cannot see and requires view refinement to flag each.
func TestStressViewMutationsRejected(t *testing.T) {
	base := func(seed int64) []event.Entry {
		g := newViewTraceGen(seed, 4)
		for i := 0; i < 200; i++ {
			g.step()
		}
		g.drain()
		return g.b.entries
	}

	t.Run("corrupt-commit-write-element", func(t *testing.T) {
		tested := 0
		for seed := int64(0); seed < 40 && tested < 15; seed++ {
			entries := base(seed)
			idx := -1
			for i, e := range entries {
				if e.Kind == event.KindCommit && e.WOp == "bump" {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			mutated := append([]event.Entry{}, entries...)
			// The implementation wrote a different element than the method
			// claims: a silent corruption invisible to I/O refinement on
			// this trace prefix.
			wargs := append([]event.Value{}, mutated[idx].WArgs...)
			wargs[0] = event.MustInt(wargs[0]) + 100
			mutated[idx].WArgs = wargs

			viewRep := mustCheck(t, mutated, spec.NewMultiset(), WithReplayer(newKVReplayer()))
			if viewRep.Ok() {
				t.Fatalf("seed %d: corrupted commit-write not flagged by view refinement", seed)
			}
			if viewRep.First().Kind != ViolationView {
				t.Fatalf("seed %d: expected a view violation, got %v", seed, viewRep.First())
			}
			tested++
		}
		if tested == 0 {
			t.Fatal("no commit-write found to corrupt")
		}
	})

	t.Run("drop-block-write", func(t *testing.T) {
		tested := 0
		for seed := int64(0); seed < 40 && tested < 15; seed++ {
			entries := base(seed)
			// Drop one write inside a commit block: the pair insert then
			// only inserted one element — the Section 5 early-detection
			// scenario, invisible to I/O refinement without observers.
			idx := -1
			for i := 1; i < len(entries); i++ {
				if entries[i].Kind == event.KindWrite && entries[i-1].Kind == event.KindBeginBlock {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			mutated := append(append([]event.Entry{}, entries[:idx]...), entries[idx+1:]...)
			viewRep := mustCheck(t, mutated, spec.NewMultiset(), WithReplayer(newKVReplayer()))
			if viewRep.Ok() {
				t.Fatalf("seed %d: dropped block write not flagged", seed)
			}
			if viewRep.First().Kind != ViolationView {
				t.Fatalf("seed %d: expected a view violation, got %v", seed, viewRep.First())
			}
			tested++
		}
		if tested == 0 {
			t.Fatal("no block write found to drop")
		}
	})

	t.Run("extra-phantom-write", func(t *testing.T) {
		for seed := int64(0); seed < 10; seed++ {
			entries := base(seed)
			// Insert a phantom committed update: a worker-style commit whose
			// write has no specification counterpart.
			var b logBuilder
			b.seq = int64(len(entries))
			b.entries = entries
			b.call(77, spec.MethodCompress)
			b.commitWrite(77, spec.MethodCompress, "bump", 3, 1)
			b.ret(77, spec.MethodCompress, nil)
			viewRep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
			if viewRep.Ok() {
				t.Fatalf("seed %d: maintenance that modified the view not flagged", seed)
			}
			if viewRep.First().Kind != ViolationView {
				t.Fatalf("seed %d: expected a view violation, got %v", seed, viewRep.First())
			}
		}
	})
}
