package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/event"
)

// TestWitnessOrdersByCommit: the Fig. 3 trace serializes in commit order,
// not call or return order.
func TestWitnessOrdersByCommit(t *testing.T) {
	var b logBuilder
	b.call(1, "LookUp", 3) // observer
	b.call(2, "Insert", 3) // commits first
	b.call(3, "Insert", 4) // commits second
	b.call(4, "Delete", 3) // commits third
	b.commit(2, "Insert")
	b.ret(1, "LookUp", true)
	b.ret(2, "Insert", true)
	b.commit(3, "Insert")
	b.ret(3, "Insert", true)
	b.commit(4, "Delete")
	b.ret(4, "Delete", true)

	ws := Witness(b.entries)
	if len(ws) != 4 {
		t.Fatalf("%d entries", len(ws))
	}
	// Order: Insert(3) committed at seq 5; LookUp returned at seq 6 (its
	// latest window state is after Insert(3)); Insert(4); Delete(3).
	wantMethods := []string{"Insert", "LookUp", "Insert", "Delete"}
	wantTids := []int32{2, 1, 3, 4}
	for i := range ws {
		if ws[i].Method != wantMethods[i] || ws[i].Tid != wantTids[i] {
			t.Fatalf("position %d: t%d %s", i, ws[i].Tid, ws[i].Method)
		}
		if ws[i].Position != i {
			t.Fatalf("position field %d at index %d", ws[i].Position, i)
		}
	}
	if !ws[0].Mutator() || ws[1].Mutator() {
		t.Fatal("mutator classification wrong")
	}
}

func TestWitnessHandlesUnfinishedExecutions(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 1)
	b.commit(1, "Insert")
	b.call(2, "LookUp", 1) // never returns
	ws := Witness(b.entries)
	if len(ws) != 2 {
		t.Fatalf("%d entries", len(ws))
	}
	for _, w := range ws {
		if w.Method == "LookUp" && w.RetSeq != 0 {
			t.Fatal("unfinished execution has a return seq")
		}
	}
}

func TestWriteWitnessRendering(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 7)
	b.add(entryCommitLabeled(1, "Insert", "cp2"))
	b.ret(1, "Insert", true)
	var buf bytes.Buffer
	WriteWitness(&buf, b.entries)
	out := buf.String()
	for _, want := range []string{"Insert[7]", "cp2", "t1", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestOverlapStats(t *testing.T) {
	var b logBuilder
	// Two fully overlapped executions plus one disjoint.
	b.call(1, "Insert", 1)
	b.call(2, "Insert", 2)
	b.commit(1, "Insert")
	b.commit(2, "Insert")
	b.ret(1, "Insert", true)
	b.ret(2, "Insert", true)
	b.call(3, "Insert", 3)
	b.commit(3, "Insert")
	b.ret(3, "Insert", true)

	stats := Overlaps(b.entries)
	if stats.Executions != 3 || stats.MaxOverlap != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.MeanOverlap <= 0 {
		t.Fatalf("mean overlap: %+v", stats)
	}
	if s := Overlaps(nil); s.Executions != 0 {
		t.Fatalf("empty trace stats: %+v", s)
	}
}

// entryCommitLabeled builds a labeled commit entry (helper beyond
// logBuilder's plain commit).
func entryCommitLabeled(tid int32, m, label string) event.Entry {
	return event.Entry{Tid: tid, Kind: event.KindCommit, Method: m, Label: label}
}
