package core

import (
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
)

// modTag stamps a module name (and its interned symbol) on an entry, the
// way a module-scoped probe does.
func modTag(e event.Entry, module string) event.Entry {
	e.Module = module
	e.Mod = event.InternSym(module)
	return e
}

// twoModuleLog interleaves two independent multiset histories, one per
// module tag. Module "a" is clean; module "b" claims a removal of an absent
// element (an I/O violation the fan-out must pin on "b" alone).
func twoModuleLog() []event.Entry {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert").ret(1, "Insert", true)
	b.call(2, "Delete", 9).commit(2, "Delete").ret(2, "Delete", true) // b's bogus removal
	b.call(1, "LookUp", 3).ret(1, "LookUp", true)
	b.call(2, "Insert", 5).commit(2, "Insert").ret(2, "Insert", true)
	out := make([]event.Entry, len(b.entries))
	for i, e := range b.entries {
		if e.Tid == 1 {
			out[i] = modTag(e, "a")
		} else {
			out[i] = modTag(e, "b")
		}
	}
	return out
}

func multiMods() []Module {
	return []Module{
		{Name: "a", Spec: spec.NewMultiset()},
		{Name: "b", Spec: spec.NewMultiset()},
	}
}

// TestMultiRoutesByModuleTag: each module checker sees only its own
// entries, and a violation lands on the module that produced it.
func TestMultiRoutesByModuleTag(t *testing.T) {
	reports, err := CheckEntriesMulti(twoModuleLog(), multiMods()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	a, b := reports[0], reports[1]
	if a.Module != "a" || b.Module != "b" {
		t.Fatalf("module order: %s, %s", a.Module, b.Module)
	}
	if !a.Report.Ok() {
		t.Fatalf("clean module flagged:\n%s", a.Report)
	}
	if b.Report.Ok() {
		t.Fatal("bogus removal not flagged on module b")
	}
	if got := b.Report.First().Kind; got != ViolationIO {
		t.Fatalf("module b violation kind = %v", got)
	}
	if a.Report.EntriesProcessed != 5 || b.Report.EntriesProcessed != 6 {
		t.Fatalf("projection sizes: a=%d b=%d",
			a.Report.EntriesProcessed, b.Report.EntriesProcessed)
	}
	if Ok(reports) {
		t.Fatal("Ok must be false when any module fails")
	}
}

// TestMultiMatchesSequentialProjection: the concurrent fan-out reaches the
// verdicts of checking each module's projection alone.
func TestMultiMatchesSequentialProjection(t *testing.T) {
	entries := twoModuleLog()
	multi, err := CheckEntriesMulti(entries, multiMods()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range multi {
		f := FilterModule(mr.Module)
		var projected []event.Entry
		for _, e := range entries {
			if f(e) {
				projected = append(projected, e)
			}
		}
		seq := mustCheck(t, projected, spec.NewMultiset())
		if mr.Report.Ok() != seq.Ok() || mr.Report.TotalViolations != seq.TotalViolations ||
			mr.Report.MethodsCompleted != seq.MethodsCompleted {
			t.Fatalf("module %s: multi (ok=%v v=%d m=%d) != sequential (ok=%v v=%d m=%d)",
				mr.Module, mr.Report.Ok(), mr.Report.TotalViolations, mr.Report.MethodsCompleted,
				seq.Ok(), seq.TotalViolations, seq.MethodsCompleted)
		}
	}
}

// TestMultiCustomFilter: an explicit filter (here by thread) overrides the
// module-tag default.
func TestMultiCustomFilter(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3).commit(1, "Insert").ret(1, "Insert", true)
	b.call(2, "Insert", 4).commit(2, "Insert").ret(2, "Insert", true)
	byTid := func(tid int32) func(event.Entry) bool {
		return func(e event.Entry) bool { return e.Tid == tid }
	}
	reports, err := CheckEntriesMulti(b.entries,
		Module{Name: "t1", Spec: spec.NewMultiset(), Filter: byTid(1)},
		Module{Name: "t2", Spec: spec.NewMultiset(), Filter: byTid(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range reports {
		if !mr.Report.Ok() || mr.Report.MethodsCompleted != 1 {
			t.Fatalf("module %s: ok=%v methods=%d", mr.Module, mr.Report.Ok(), mr.Report.MethodsCompleted)
		}
	}
}

// TestFilterModuleStringFallback: entries whose Mod symbol was never
// interned (e.g. hand-built logs) still route by the Module string.
func TestFilterModuleStringFallback(t *testing.T) {
	f := FilterModule("m")
	if !f(event.Entry{Module: "m"}) {
		t.Fatal("string-tagged entry rejected")
	}
	if f(event.Entry{Module: "other"}) || f(event.Entry{}) {
		t.Fatal("foreign/untagged entry accepted")
	}
	tagged := modTag(event.Entry{}, "m")
	if !f(tagged) {
		t.Fatal("sym-tagged entry rejected")
	}
}

// TestNewMultiRejectsBadModule: checker construction errors surface per
// module before any entry is consumed.
func TestNewMultiRejectsBadModule(t *testing.T) {
	_, err := NewMulti(Module{Name: "bad", Spec: spec.NewMultiset(),
		Opts: []Option{WithMode(ModeView)}}) // view mode without a replayer
	if err == nil {
		t.Fatal("expected a construction error")
	}
	if _, err := NewMulti(); err == nil {
		t.Fatal("expected an error for zero modules")
	}
}
