package core

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
	"repro/internal/wal"
)

// traceGen generates random well-formed multiset traces that are correct by
// construction: mutator effects are applied to a model at their commit
// actions, and observer return values are captured from the model at their
// call or return (both inside the observer's window). The checker must
// accept every generated trace; targeted mutations of a generated trace
// must be rejected. This is the oracle test of the checker pipeline itself:
// overlap structure, lookahead stalls, witness ordering and window checks
// are all exercised by construction rather than by real scheduling.
type traceGen struct {
	rng    *rand.Rand
	b      logBuilder
	counts map[int]int
	// inflight invocations per thread.
	inflight map[int32]*genInv
	tids     []int32
}

type genInv struct {
	tid      int32
	method   string
	arg      int
	ret      event.Value
	retKnown bool
	// committed marks that the commit action has been emitted (observers
	// are created committed: they never emit one).
	committed bool
}

func newTraceGen(seed int64, threads int) *traceGen {
	g := &traceGen{
		rng:      rand.New(rand.NewSource(seed)),
		counts:   map[int]int{},
		inflight: map[int32]*genInv{},
	}
	for t := 1; t <= threads; t++ {
		g.tids = append(g.tids, int32(t))
	}
	return g
}

// step performs one random action: start, commit or return an invocation.
func (g *traceGen) step() {
	tid := g.tids[g.rng.Intn(len(g.tids))]
	inv := g.inflight[tid]
	if inv == nil {
		g.start(tid)
		return
	}
	if inv.method == "LookUp" || inv.retKnown {
		g.finish(inv)
		return
	}
	g.commit(inv)
}

func (g *traceGen) start(tid int32) {
	x := g.rng.Intn(8)
	switch g.rng.Intn(4) {
	case 0:
		inv := &genInv{tid: tid, method: "Insert", arg: x}
		g.inflight[tid] = inv
		g.b.call(tid, "Insert", x)
	case 1:
		inv := &genInv{tid: tid, method: "Delete", arg: x}
		g.inflight[tid] = inv
		g.b.call(tid, "Delete", x)
	case 2:
		// Observer capturing its return value at call time (state s0).
		inv := &genInv{tid: tid, method: "LookUp", arg: x, ret: g.counts[x] > 0, retKnown: true, committed: true}
		g.inflight[tid] = inv
		g.b.call(tid, "LookUp", x)
	case 3:
		// Observer capturing its return value at return time (state sn):
		// retKnown stays false until finish.
		inv := &genInv{tid: tid, method: "LookUp", arg: x, committed: true}
		g.inflight[tid] = inv
		g.b.call(tid, "LookUp", x)
	}
}

func (g *traceGen) commit(inv *genInv) {
	switch inv.method {
	case "Insert":
		success := g.rng.Intn(4) != 0 // occasionally fail, as contention would
		if success {
			g.counts[inv.arg]++
		}
		inv.ret = success
	case "Delete":
		if g.counts[inv.arg] > 0 && g.rng.Intn(3) != 0 {
			g.counts[inv.arg]--
			inv.ret = true
		} else {
			inv.ret = false // always permitted
		}
	}
	inv.retKnown = true
	inv.committed = true
	g.b.commit(inv.tid, inv.method)
}

func (g *traceGen) finish(inv *genInv) {
	if !inv.retKnown { // observer capturing at return time
		inv.ret = g.counts[inv.arg] > 0
		inv.retKnown = true
	}
	g.b.ret(inv.tid, inv.method, inv.ret)
	delete(g.inflight, inv.tid)
}

// drain completes all in-flight invocations.
func (g *traceGen) drain() {
	for _, tid := range g.tids {
		inv := g.inflight[tid]
		if inv == nil {
			continue
		}
		if inv.method != "LookUp" && !inv.committed {
			g.commit(inv)
		}
		g.finish(inv)
	}
}

// TestStressGeneratedTracesAccepted: thousands of random correct traces
// with heavy overlap must all pass I/O refinement.
func TestStressGeneratedTracesAccepted(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		g := newTraceGen(seed, 2+int(seed%6))
		steps := 50 + g.rng.Intn(300)
		for i := 0; i < steps; i++ {
			g.step()
		}
		g.drain()
		rep := mustCheck(t, g.b.entries, spec.NewMultiset())
		if !rep.Ok() {
			t.Fatalf("seed %d: correct-by-construction trace rejected:\n%s", seed, rep)
		}
	}
}

// TestStressMutatedTracesRejected applies targeted corruptions to correct
// traces and requires each to be flagged.
func TestStressMutatedTracesRejected(t *testing.T) {
	base := func(seed int64) []event.Entry {
		g := newTraceGen(seed, 4)
		for i := 0; i < 200; i++ {
			g.step()
		}
		g.drain()
		return g.b.entries
	}

	t.Run("drop-commit", func(t *testing.T) {
		for seed := int64(0); seed < 30; seed++ {
			entries := base(seed)
			idx := -1
			for i, e := range entries {
				if e.Kind == event.KindCommit {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			mutated := append(append([]event.Entry{}, entries[:idx]...), entries[idx+1:]...)
			rep := mustCheck(t, mutated, spec.NewMultiset())
			if rep.Ok() {
				t.Fatalf("seed %d: dropped commit not flagged", seed)
			}
		}
	})

	t.Run("duplicate-commit", func(t *testing.T) {
		for seed := int64(0); seed < 30; seed++ {
			entries := base(seed)
			idx := -1
			for i, e := range entries {
				if e.Kind == event.KindCommit {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			mutated := make([]event.Entry, 0, len(entries)+1)
			mutated = append(mutated, entries[:idx+1]...)
			mutated = append(mutated, entries[idx]) // duplicate commit
			mutated = append(mutated, entries[idx+1:]...)
			rep := mustCheck(t, mutated, spec.NewMultiset())
			if rep.Ok() {
				t.Fatalf("seed %d: duplicated commit not flagged", seed)
			}
		}
	})

	t.Run("flip-quiet-observer", func(t *testing.T) {
		flipped := 0
		for seed := int64(0); seed < 60 && flipped < 20; seed++ {
			entries := base(seed)
			// Find a LookUp whose window contains no commits: its answer is
			// unique, so flipping it must be flagged.
			idx := -1
			for i, e := range entries {
				if e.Kind != event.KindReturn || e.Method != "LookUp" {
					continue
				}
				callIdx := -1
				for j := i - 1; j >= 0; j-- {
					if entries[j].Tid == e.Tid && entries[j].Kind == event.KindCall {
						callIdx = j
						break
					}
				}
				quiet := true
				for j := callIdx + 1; j < i; j++ {
					if entries[j].Kind == event.KindCommit {
						quiet = false
						break
					}
				}
				if quiet {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			mutated := append([]event.Entry{}, entries...)
			mutated[idx].Ret = !mutated[idx].Ret.(bool)
			rep := mustCheck(t, mutated, spec.NewMultiset())
			if rep.Ok() {
				t.Fatalf("seed %d: flipped commit-free observer not flagged", seed)
			}
			flipped++
		}
		if flipped == 0 {
			t.Fatal("no quiet observer found across seeds; generator broken")
		}
	})

	t.Run("insert-claims-success-spec-rejects-delete", func(t *testing.T) {
		// Appending Delete(x) -> true for a never-inserted element is the
		// canonical I/O violation.
		for seed := int64(0); seed < 10; seed++ {
			entries := base(seed)
			var b logBuilder
			b.seq = int64(len(entries))
			b.entries = entries
			b.call(99, "Delete", 777).commit(99, "Delete").ret(99, "Delete", true)
			rep := mustCheck(t, b.entries, spec.NewMultiset())
			if rep.Ok() {
				t.Fatalf("seed %d: impossible delete not flagged", seed)
			}
		}
	})
}

// TestStressPipelineBufferCompaction exercises the internal buffer
// compaction path: one thread's invocation stays open (stalling nothing,
// since observers stall only until their own return) while thousands of
// entries stream past.
func TestStressPipelineBufferCompaction(t *testing.T) {
	var b logBuilder
	// A long-running mutator: call now, commit and return at the very end.
	b.call(1, "Insert", 1)
	for i := 0; i < 5000; i++ {
		tid := int32(2 + i%4)
		b.call(tid, "Insert", i%8)
		b.commit(tid, "Insert")
		b.ret(tid, "Insert", true)
	}
	b.commit(1, "Insert")
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	if !rep.Ok() {
		t.Fatalf("long-lived invocation broke the pipeline:\n%s", rep)
	}
	if rep.MethodsCompleted != 5001 {
		t.Fatalf("methods completed: %d", rep.MethodsCompleted)
	}
}

// TestStressLongStalledCommit: a commit whose return value arrives after
// thousands of interleaved entries exercises the lookahead buffer.
func TestStressLongStalledCommit(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 5)
	b.commit(1, "Insert") // stalls until the return at the very end
	for i := 0; i < 3000; i++ {
		tid := int32(2 + i%3)
		b.call(tid, "LookUp", 5)
		// The commit entry precedes every observer's call in the log, so in
		// the witness interleaving the insert has already happened: every
		// observer must see the element, even though the checker's pipeline
		// is still stalled waiting for the insert's return value.
		b.ret(tid, "LookUp", true)
	}
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	if !rep.Ok() {
		t.Fatalf("stalled commit broke the pipeline:\n%s", rep)
	}
}

// TestStressOnlineTruncatedWindow: a long online run through a windowed,
// truncating log. The checker consumes a cursor concurrently with the
// producer; backpressure and consumed-prefix truncation must keep peak
// retained entries at O(window) while the check still accepts the
// correct-by-construction trace. This is the bounded-memory claim of the
// log pipeline verified end to end against the real checker.
func TestStressOnlineTruncatedWindow(t *testing.T) {
	const (
		segSize = 128
		window  = 1 << 10
	)
	g := newTraceGen(1, 6)
	for i := 0; i < 20_000; i++ {
		g.step()
	}
	g.drain()
	entries := g.b.entries
	if len(entries) < 10*window {
		t.Fatalf("trace too short to exercise truncation: %d entries", len(entries))
	}

	l := wal.NewWithOptions(wal.LevelIO, wal.Options{SegmentSize: segSize, Window: window})
	cur := l.Cursor() // register the reader before the first append
	c, err := New(spec.NewMultiset())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Report, 1)
	go func() { done <- c.Run(cur) }()
	for _, e := range entries {
		l.Append(e)
	}
	l.Close()
	rep := <-done
	if !rep.Ok() {
		t.Fatalf("correct trace rejected under the windowed log:\n%s", rep)
	}

	st := l.Stats()
	if bound := int64(window + 2*segSize); st.PeakRetainedEntries > bound {
		t.Fatalf("peak retained %d entries exceeds window bound %d (stats: %s)", st.PeakRetainedEntries, bound, st)
	}
	if st.TruncatedSegments == 0 {
		t.Fatalf("long run released nothing (stats: %s)", st)
	}
}
