package core

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
)

// Additional edge-case coverage for the checker pipeline beyond the main
// semantics tests in checker_test.go.

func TestEndBlockWithoutBegin(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 1)
	b.end(1) // no matching begin
	b.commit(1, "Insert")
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInstrumentation, "without a beginning")
}

func TestBlockOutsideMethod(t *testing.T) {
	var b logBuilder
	b.begin(7)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInstrumentation, "outside any method")
}

func TestNestedBlockRejected(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 1)
	b.begin(1)
	b.begin(1)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationInstrumentation, "nested")
}

// TestIOModeIgnoresViewEntries: a view-level log checked in I/O mode skips
// writes and blocks entirely.
func TestIOModeIgnoresViewEntries(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3)
	b.begin(1)
	b.write(1, "bump", 3, 1)
	b.commit(1, "Insert")
	b.end(1)
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithMode(ModeIO))
	wantOk(t, rep)
	if rep.WritesReplayed != 0 || rep.ViewsCompared != 0 {
		t.Fatalf("I/O mode touched the replica: %+v", rep)
	}
}

// TestWorkerWriteOutsideMethod: a write by a thread with no open invocation
// applies to the replica immediately (maintenance threads may perform
// view-neutral bookkeeping between pseudo-method executions).
func TestWorkerWriteOutsideMethod(t *testing.T) {
	var b logBuilder
	// The write changes the replica view, and the next commit's comparison
	// sees the divergence — proving it was applied.
	b.write(9, "bump", 5, 1)
	b.call(1, "Insert", 1)
	b.commitWrite(1, "Insert", "bump", 1, 1)
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantViolation(t, rep, ViolationView, "Insert")
	if rep.WritesReplayed != 2 {
		t.Fatalf("writes replayed: %+v", rep)
	}
}

// TestSpecStateSurvivesRejectedMutator: a rejected transition leaves the
// spec state unchanged, so subsequent checking continues coherently when
// not failing fast.
func TestSpecStateSurvivesRejectedMutator(t *testing.T) {
	var b logBuilder
	b.call(1, "Delete", 5).commit(1, "Delete").ret(1, "Delete", true) // invalid: 5 absent
	b.call(1, "Insert", 5).commit(1, "Insert").ret(1, "Insert", true)
	b.call(1, "LookUp", 5).ret(1, "LookUp", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	if rep.TotalViolations != 1 {
		t.Fatalf("expected exactly the delete violation:\n%s", rep)
	}
	if rep.First().Method != "Delete" {
		t.Fatalf("wrong violation: %v", rep.First())
	}
}

// TestExceptionalDeleteRejected: the multiset spec requires a bool from
// Delete; an exceptional termination is not permitted.
func TestExceptionalDeleteRejected(t *testing.T) {
	var b logBuilder
	b.call(1, "Delete", 5).commit(1, "Delete")
	b.ret(1, "Delete", event.Exceptional{Reason: "boom"})
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantViolation(t, rep, ViolationIO, "bool")
}

// TestManyPendingObservers: several unresolved observers across windows
// with interleaved commits all resolve at their respective valid states.
func TestManyPendingObservers(t *testing.T) {
	var b logBuilder
	// Observers 1..4 each claim element i present; element i is inserted
	// while observer i's window is open.
	for i := 1; i <= 4; i++ {
		b.call(int32(i), "LookUp", i)
	}
	for i := 1; i <= 4; i++ {
		tid := int32(i + 10)
		b.call(tid, "Insert", i)
		b.commit(tid, "Insert")
		b.ret(tid, "Insert", true)
		b.ret(int32(i), "LookUp", true)
	}
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	wantOk(t, rep)
	if rep.ObserversChecked != 4 {
		t.Fatalf("observers checked: %+v", rep)
	}
}

// TestObserverResolvedEarlyNotRecheckedToFailure: once an observer's return
// value is valid at some window state, later commits cannot invalidate it.
func TestObserverResolvedEarlyNotRecheckedToFailure(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 7).commit(1, "Insert").ret(1, "Insert", true)
	b.call(2, "LookUp", 7) // s0 has 7: true is valid immediately
	b.call(3, "Delete", 7)
	b.commit(3, "Delete")
	b.ret(3, "Delete", true)
	b.ret(2, "LookUp", true) // still fine: validated at s0
	wantOk(t, mustCheck(t, b.entries, spec.NewMultiset()))
}

// TestCommitWriteInsideBlockPrefersBlockWrites: a CommitWrite issued inside
// an open block contributes the block's writes, not the WOp payload (the
// probe API uses one or the other; the checker defines the precedence).
func TestCommitWriteInsideBlockPrefersBlockWrites(t *testing.T) {
	var b logBuilder
	b.call(1, "Insert", 3)
	b.begin(1)
	b.write(1, "bump", 3, 1)
	// Commit carrying a (redundant, conflicting) WOp while the block is
	// open: the block's writes win.
	b.commitWrite(1, "Insert", "bump", 999, 1)
	b.end(1)
	b.ret(1, "Insert", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newKVReplayer()))
	wantOk(t, rep) // had the WOp applied too, viewI would hold a phantom 999
}

// TestViolationStringRendering sanity-checks the human-readable output the
// CLI prints.
func TestViolationStringRendering(t *testing.T) {
	var b logBuilder
	b.call(4, "Delete", 9).commit(4, "Delete").ret(4, "Delete", true)
	rep := mustCheck(t, b.entries, spec.NewMultiset())
	out := rep.String()
	for _, want := range []string{"io-refinement", "t4", "Delete", "violation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, out)
		}
	}
	v := rep.First().String()
	if !strings.Contains(v, "Delete") || !strings.Contains(v, "#") {
		t.Fatalf("violation rendering: %s", v)
	}
}

// TestEmptyLog: checking an empty trace yields a clean report.
func TestEmptyLog(t *testing.T) {
	rep := mustCheck(t, nil, spec.NewMultiset())
	wantOk(t, rep)
	if rep.EntriesProcessed != 0 || rep.MethodsCompleted != 0 {
		t.Fatalf("counters on empty log: %+v", rep)
	}
}

// TestModeStringAndKindString cover the enum renderings.
func TestModeStringAndKindString(t *testing.T) {
	if ModeIO.String() != "io" || ModeView.String() != "view" || Mode(9).String() != "mode(9)" {
		t.Fatal("mode strings")
	}
	kinds := map[ViolationKind]string{
		ViolationIO:              "io-refinement",
		ViolationObserver:        "observer",
		ViolationView:            "view-refinement",
		ViolationInvariant:       "invariant",
		ViolationInstrumentation: "instrumentation",
		ViolationKind(99):        "violation(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d renders as %q, want %q", k, k.String(), want)
		}
	}
}
