package core

import (
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/view"
	"repro/internal/wal"
)

// invocation tracks one method execution from its call action to the point
// its effects have been fully checked. Invocations are pooled: the checker
// recycles a record once the execution is fully checked (see
// releaseInvocation), so the steady-state hot path allocates none.
type invocation struct {
	tid    int32
	method string
	args   []event.Value
	worker bool

	callSeq  int64
	retSeq   int64
	ret      event.Value
	retKnown bool

	mutator     bool
	committed   bool
	commitSeq   int64
	commitLabel string

	// Observer bookkeeping: resolved means some spec state in the window
	// accepted the return value.
	resolved bool

	// Commit-block bookkeeping (view mode).
	inBlock     bool
	sawBlock    bool
	blockWrites []event.Entry

	// Pooling lifecycle: retDone is set when the return action has been
	// processed, flushDone when the commit's flush task has drained. A
	// mutator's task can drain after its return is processed (a stalled
	// block ahead of it in the flush queue), so the record recycles only
	// when both are true.
	retDone   bool
	flushDone bool

	// viewS fingerprint snapshotted when the spec executed this method.
	viewSHash uint64
	// viewSClone is kept only under WithDiagnostics, for exact diffs.
	viewSClone *view.Table
}

// item pairs a buffered log entry with the invocation it belongs to.
type item struct {
	e   event.Entry
	inv *invocation
}

// flushTask is one committed update awaiting application to the replica, in
// commit order. ready becomes true when all of the update's writes are known
// (immediately for commit-writes; at end-of-block for commit blocks).
// Tasks are pooled like invocations; the single-write shapes (commit-writes
// and queued non-block writes) borrow the inline array instead of
// allocating a slice.
type flushTask struct {
	inv    *invocation
	writes []event.Entry
	ready  bool
	inline [1]event.Entry
}

// Checker is the refinement verification engine. It is not safe for
// concurrent use; the verification thread owns it.
type Checker struct {
	spec     Spec
	replayer Replayer
	mode     Mode

	failFast      bool
	maxViolations int
	diagnostics   bool
	quiescentOnly bool

	// openCount tracks in-flight method executions at the current pipeline
	// position; zero means the state is quiescent (Section 3.1).
	openCount int

	// open maps each thread to its currently executing method (well-formed
	// runs have at most one; Section 3.2).
	open map[int32]*invocation

	// buf holds entries that have been fed but not yet processed. head
	// indexes the next entry to process; the head entry may stall until
	// its invocation's return value is known (lookahead, Section 4).
	buf  []item
	head int

	// pending holds unresolved observers whose window is open: each new
	// specification state (each applied commit) re-checks them
	// (Section 4.3).
	pending []*invocation

	// flushQ holds committed updates awaiting replica application, in
	// commit order (Section 5.2: blocks are atomic at their commit action).
	// flushHead indexes the first unflushed task; popping advances it so the
	// backing array is reused instead of resliced away (reslicing from the
	// front would force append to reallocate on every commit).
	flushQ    []*flushTask
	flushHead int

	// mutCache caches Spec.IsMutator by interned method symbol (0 unknown,
	// 1 mutator, 2 observer), turning the per-call classification into a
	// slice index.
	mutCache []uint8

	// invFree/taskFree are the recycle pools. The checker is owned by one
	// goroutine, so plain slices suffice.
	invFree  []*invocation
	taskFree []*flushTask

	report   Report
	done     bool
	finished bool
}

// newInvocation takes a zeroed record from the pool.
func (c *Checker) newInvocation() *invocation {
	if n := len(c.invFree); n > 0 {
		inv := c.invFree[n-1]
		c.invFree[n-1] = nil
		c.invFree = c.invFree[:n-1]
		return inv
	}
	return &invocation{}
}

// releaseInvocation recycles a record that nothing references anymore: its
// entries are processed, it is out of open/pending, and its flush task (if
// any) has drained.
func (c *Checker) releaseInvocation(inv *invocation) {
	*inv = invocation{}
	c.invFree = append(c.invFree, inv)
}

func (c *Checker) newTask() *flushTask {
	if n := len(c.taskFree); n > 0 {
		t := c.taskFree[n-1]
		c.taskFree[n-1] = nil
		c.taskFree = c.taskFree[:n-1]
		return t
	}
	return &flushTask{}
}

func (c *Checker) releaseTask(t *flushTask) {
	t.inv = nil
	t.writes = nil
	t.ready = false
	t.inline[0] = event.Entry{}
	c.taskFree = append(c.taskFree, t)
}

// isMutator classifies a method by its interned symbol, caching the spec's
// answer in a dense slice.
func (c *Checker) isMutator(sym event.Sym, method string) bool {
	if int(sym) >= len(c.mutCache) {
		grown := make([]uint8, event.NumSyms()+1)
		copy(grown, c.mutCache)
		c.mutCache = grown
	}
	if v := c.mutCache[sym]; v != 0 {
		return v == 1
	}
	m := c.spec.IsMutator(method)
	if m {
		c.mutCache[sym] = 1
	} else {
		c.mutCache[sym] = 2
	}
	return m
}

// New constructs a checker over the given specification. The spec is Reset
// before use. In ModeView a replayer must be supplied and the spec must
// support views.
func New(spec Spec, opts ...Option) (*Checker, error) {
	c := &Checker{
		spec:          spec,
		maxViolations: 64,
		open:          make(map[int32]*invocation),
	}
	for _, o := range opts {
		o(c)
	}
	if c.mode == 0 {
		if c.replayer != nil {
			c.mode = ModeView
		} else {
			c.mode = ModeIO
		}
	}
	if c.mode == ModeView {
		if c.replayer == nil {
			return nil, fmt.Errorf("core: view mode requires a replayer")
		}
		if spec.View() == nil {
			return nil, fmt.Errorf("core: view mode requires a spec with view support")
		}
		c.replayer.Reset()
	}
	if c.mode == ModeLinearize {
		return nil, fmt.Errorf("core: linearize mode is checked by internal/linearize, not the refinement checker")
	}
	spec.Reset()
	c.report.Mode = c.mode
	return c, nil
}

// Done reports whether the checker stopped early (fail-fast after a
// violation).
func (c *Checker) Done() bool { return c.done }

// Report returns the current report. It is only complete after Finish.
func (c *Checker) Report() *Report { return &c.report }

func (c *Checker) violate(kind ViolationKind, seq int64, tid int32, method, detail string) {
	c.report.TotalViolations++
	if len(c.report.Violations) < c.maxViolations {
		c.report.Violations = append(c.report.Violations, Violation{
			Kind:             kind,
			Seq:              seq,
			Tid:              tid,
			Method:           method,
			Detail:           detail,
			MethodsCompleted: c.report.MethodsCompleted,
		})
	}
	if c.failFast {
		c.done = true
	}
}

// Feed consumes one log entry. Entries must be fed in sequence order.
// Feeding a finished checker panics: a Checker verifies one execution.
func (c *Checker) Feed(e event.Entry) {
	if c.finished {
		panic("core: Feed after Finish; construct a new Checker per execution")
	}
	if c.done {
		return
	}
	c.report.EntriesProcessed++
	it := item{e: e}

	// Intake phase: maintain the per-thread open-invocation map and record
	// return values as soon as they are seen, so that stalled head entries
	// (commits and observer calls awaiting their return value) can proceed.
	switch e.Kind {
	case event.KindCall:
		if prev := c.open[e.Tid]; prev != nil {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
				fmt.Sprintf("call while %s is still executing: run is not well-formed", prev.method))
			return
		}
		sym := e.Sym
		if sym == 0 && e.Method != "" {
			sym = event.InternSym(e.Method)
		}
		inv := c.newInvocation()
		inv.tid = e.Tid
		inv.method = e.Method
		inv.args = e.Args
		inv.worker = e.Worker
		inv.callSeq = e.Seq
		inv.mutator = c.isMutator(sym, e.Method)
		c.open[e.Tid] = inv
		it.inv = inv
	case event.KindReturn:
		inv := c.open[e.Tid]
		if inv == nil {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method, "return without a matching call")
			return
		}
		if inv.method != e.Method {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
				fmt.Sprintf("return from %s while %s is executing", e.Method, inv.method))
			return
		}
		inv.ret = e.Ret
		inv.retKnown = true
		inv.retSeq = e.Seq
		delete(c.open, e.Tid)
		it.inv = inv
	default:
		// Commit, write and block entries belong to the thread's open
		// invocation, if any (writes by worker threads between their
		// pseudo-method executions apply immediately).
		it.inv = c.open[e.Tid]
	}

	c.buf = append(c.buf, it)
	c.pump()
}

// pump processes buffered entries in order while the head is processable.
func (c *Checker) pump() {
	for !c.done && c.head < len(c.buf) {
		it := c.buf[c.head]
		if !c.processable(it) {
			return
		}
		c.buf[c.head] = item{} // release references
		c.head++
		c.process(it)
	}
	// Compact the buffer once the consumed prefix dominates.
	if c.head > 1024 && c.head*2 > len(c.buf) {
		c.buf = append(c.buf[:0], c.buf[c.head:]...)
		c.head = 0
	}
}

// processable reports whether the head entry can be processed now. Commits
// of mutators and calls of observers stall until the invocation's return
// value is known: the specification is driven with the observed return value
// (Section 4: "derived by looking ahead in the implementation's execution").
func (c *Checker) processable(it item) bool {
	switch it.e.Kind {
	case event.KindCall:
		if it.inv != nil && !it.inv.mutator {
			return it.inv.retKnown
		}
	case event.KindCommit:
		if it.inv != nil {
			return it.inv.retKnown
		}
	}
	return true
}

func (c *Checker) process(it item) {
	e := it.e
	inv := it.inv
	switch e.Kind {
	case event.KindCall:
		c.openCount++
		if inv != nil && !inv.mutator {
			// Observer: check at the state s0 in effect at its call; if not
			// yet acceptable keep it pending for the states s1..sn produced
			// by commits inside its window (Section 4.3).
			c.report.ObserversChecked++
			if c.spec.CheckObserver(inv.method, inv.args, inv.ret) {
				inv.resolved = true
			} else {
				c.pending = append(c.pending, inv)
			}
		}

	case event.KindReturn:
		c.report.MethodsCompleted++
		c.openCount--
		defer c.maybeQuiescentCheck(e)
		if inv == nil {
			return
		}
		if inv.mutator {
			if !inv.committed {
				c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
					"mutator execution finished without a commit action: re-examine the commit-point annotation")
				c.releaseInvocation(inv) // never got a flush task
				return
			}
			if inv.sawBlock && inv.inBlock {
				c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
					"commit block not closed before return")
				return // its task never becomes ready; leave the record to the GC
			}
			inv.retDone = true
			if c.mode != ModeView || inv.flushDone {
				// ModeIO mutators have no flush task; in view mode the task
				// usually drained at the commit entry. Either way the record
				// is dead here.
				c.releaseInvocation(inv)
			}
			return
		}
		// Observer: last chance at the current state sn.
		if !inv.resolved {
			if c.spec.CheckObserver(inv.method, inv.args, inv.ret) {
				inv.resolved = true
			} else {
				c.violate(ViolationObserver, e.Seq, e.Tid, e.Method,
					fmt.Sprintf("return value not permitted at any specification state in the window: %s",
						signatureString(inv.tid, inv.method, inv.args, inv.ret)))
			}
		}
		c.removePending(inv)
		c.releaseInvocation(inv)

	case event.KindCommit:
		if inv == nil {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method, "commit action outside any method execution")
			return
		}
		if !inv.mutator {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
				"commit action in an observer method: observers must not be annotated (Section 4.3)")
			return
		}
		if inv.committed {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
				"second commit action in one method execution: exactly one is required")
			return
		}
		inv.committed = true
		inv.commitSeq = e.Seq
		inv.commitLabel = e.Label

		// Drive the specification at this point of the witness
		// interleaving. Commit actions are processed in log order, which is
		// their order of occurrence, so this realizes the serialization the
		// commit points define.
		if err := c.spec.ApplyMutator(inv.method, inv.args, inv.ret); err != nil {
			c.violate(ViolationIO, e.Seq, e.Tid, e.Method,
				fmt.Sprintf("specification cannot execute %s: %v",
					signatureString(inv.tid, inv.method, inv.args, inv.ret), err))
			if c.done {
				return
			}
		}
		c.report.CommitsApplied++

		if c.mode == ModeView {
			inv.viewSHash = c.spec.View().Hash()
			if c.diagnostics {
				inv.viewSClone = c.spec.View().Clone()
			}
			task := c.newTask()
			task.inv = inv
			switch {
			case inv.inBlock:
				// Writes arrive until the block closes (markBlockReady).
			case inv.sawBlock:
				// Block closed before the commit action (e.g. the commit is
				// the lock release following the block): flush its writes.
				task.writes = inv.blockWrites
				inv.blockWrites = nil
				task.ready = true
			default:
				if e.WOp != "" {
					task.inline[0] = event.Entry{Seq: e.Seq, Tid: e.Tid, Kind: event.KindWrite,
						Method: e.WOp, Sym: e.WSym, Args: e.WArgs}
					task.writes = task.inline[:1]
				}
				task.ready = true
			}
			c.flushQ = append(c.flushQ, task)
			c.drainFlush()
			if c.done {
				return
			}
		}

		// The new specification state may validate pending observers.
		c.recheckPending()

	case event.KindWrite:
		if c.mode != ModeView {
			return
		}
		if inv != nil && inv.inBlock {
			inv.blockWrites = append(inv.blockWrites, e)
			return
		}
		// Writes outside commit blocks apply at their log position: they are
		// restructuring updates outside the view's support, or preparation
		// writes (e.g. reserving a slot before its valid bit is set) whose
		// view effect is gated by a committed write. If an open commit block
		// is stalling the flush queue, the write queues behind it — in the
		// witness trace t' it follows every commit action that precedes it
		// in the log, so it must not overtake those blocks' queued writes.
		if c.flushHead < len(c.flushQ) {
			t := c.newTask()
			t.inline[0] = e
			t.writes = t.inline[:1]
			t.ready = true
			c.flushQ = append(c.flushQ, t)
			return
		}
		c.applyWrite(e)

	case event.KindBeginBlock:
		if c.mode != ModeView {
			return
		}
		if inv == nil {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, "", "commit block outside any method execution")
			return
		}
		if inv.inBlock {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, inv.method, "nested commit block")
			return
		}
		inv.inBlock = true
		inv.sawBlock = true

	case event.KindEndBlock:
		if c.mode != ModeView {
			return
		}
		if inv == nil || !inv.inBlock {
			c.violate(ViolationInstrumentation, e.Seq, e.Tid, "", "end of commit block without a beginning")
			return
		}
		inv.inBlock = false
		// The block's writes become flushable once the block has committed;
		// a block that ends without having committed keeps its writes until
		// the commit arrives (the commit may follow the block's end only if
		// the annotation places it there; normally it is inside).
		if inv.committed {
			c.markBlockReady(inv)
			c.drainFlush()
		}
	}
}

// markBlockReady transfers the block's buffered writes to its flush task.
func (c *Checker) markBlockReady(inv *invocation) {
	for _, t := range c.flushQ[c.flushHead:] {
		if t.inv == inv {
			t.writes = inv.blockWrites
			inv.blockWrites = nil
			t.ready = true
			return
		}
	}
}

// drainFlush applies ready committed updates to the replica in commit order
// and performs the view comparison and invariant checks for each
// (Section 5.2: conceptually the checker constructs the equivalent trace t'
// in which each commit block executes atomically at its commit action).
func (c *Checker) drainFlush() {
	for c.flushHead < len(c.flushQ) && c.flushQ[c.flushHead].ready && !c.done {
		t := c.flushQ[c.flushHead]
		c.flushQ[c.flushHead] = nil
		c.flushHead++
		if c.flushHead == len(c.flushQ) {
			c.flushQ = c.flushQ[:0]
			c.flushHead = 0
		}
		for _, w := range t.writes {
			c.applyWrite(w)
		}
		if t.inv == nil {
			c.releaseTask(t) // a queued non-block write; there is no commit to compare at
			continue
		}
		c.compareViews(t.inv)
		if c.done {
			return
		}
		if !c.quiescentOnly {
			if err := c.replayer.Invariants(); err != nil {
				c.violate(ViolationInvariant, t.inv.commitSeq, t.inv.tid, t.inv.method,
					fmt.Sprintf("replica invariant failed after commit: %v", err))
			}
		}
		t.inv.flushDone = true
		if t.inv.retDone {
			c.releaseInvocation(t.inv)
		}
		c.releaseTask(t)
	}
}

func (c *Checker) applyWrite(e event.Entry) {
	c.report.WritesReplayed++
	if err := c.replayer.Apply(e.Method, e.Args); err != nil {
		c.violate(ViolationInstrumentation, e.Seq, e.Tid, e.Method,
			fmt.Sprintf("replayer cannot apply write: %v", err))
	}
}

// maybeQuiescentCheck performs the commit-atomicity-style state comparison
// at quiescent log positions when WithQuiescentViewOnly is set.
func (c *Checker) maybeQuiescentCheck(e event.Entry) {
	if !c.quiescentOnly || c.mode != ModeView || c.openCount != 0 || c.done {
		return
	}
	c.report.ViewsCompared++
	vi := c.replayer.View()
	vs := c.spec.View()
	if vi.Hash() != vs.Hash() {
		detail := fmt.Sprintf("viewI fingerprint %016x != viewS fingerprint %016x at the quiescent state after %s",
			vi.Hash(), vs.Hash(), e.Method)
		if c.diagnostics {
			detail += ": " + view.FormatDeltas(vi.Diff(vs, 8))
		}
		c.violate(ViolationView, e.Seq, e.Tid, e.Method, detail)
		if c.done {
			return
		}
	}
	if err := c.replayer.Invariants(); err != nil {
		c.violate(ViolationInvariant, e.Seq, e.Tid, e.Method,
			fmt.Sprintf("replica invariant failed at a quiescent state: %v", err))
	}
}

func (c *Checker) compareViews(inv *invocation) {
	if c.quiescentOnly {
		return
	}
	c.report.ViewsCompared++
	vi := c.replayer.View()
	if vi.Hash() == inv.viewSHash {
		return
	}
	detail := fmt.Sprintf("viewI fingerprint %016x != viewS fingerprint %016x after %s",
		vi.Hash(), inv.viewSHash, signatureString(inv.tid, inv.method, inv.args, inv.ret))
	if inv.viewSClone != nil {
		detail += ": " + view.FormatDeltas(vi.Diff(inv.viewSClone, 8))
	}
	c.violate(ViolationView, inv.commitSeq, inv.tid, inv.method, detail)
}

// recheckPending re-validates unresolved observers against the new
// specification state, dropping the ones that pass.
func (c *Checker) recheckPending() {
	if len(c.pending) == 0 {
		return
	}
	kept := c.pending[:0]
	for _, obs := range c.pending {
		if c.spec.CheckObserver(obs.method, obs.args, obs.ret) {
			obs.resolved = true
			continue
		}
		kept = append(kept, obs)
	}
	c.pending = kept
}

func (c *Checker) removePending(inv *invocation) {
	for i, obs := range c.pending {
		if obs == inv {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// Finish completes checking after the last entry has been fed and returns
// the final report. Entries still stalled at the head (method executions the
// log ends in the middle of) are diagnosed.
func (c *Checker) Finish() *Report {
	if !c.done {
		// Anything still buffered is stalled on a return value the log
		// never delivered: the execution ended mid-method. This is normal
		// for crashed programs; diagnose only entries that would have been
		// checked.
		for _, it := range c.buf[c.head:] {
			if it.e.Kind == event.KindCommit && it.inv != nil && !it.inv.retKnown {
				c.violate(ViolationInstrumentation, it.e.Seq, it.e.Tid, it.e.Method,
					"log ends before the committed method returned; cannot validate its return value")
				if c.done {
					break
				}
			}
		}
		if !c.done {
			for _, t := range c.flushQ[c.flushHead:] {
				if !t.ready {
					c.violate(ViolationInstrumentation, t.inv.commitSeq, t.inv.tid, t.inv.method,
						"log ends before the commit block closed")
					if c.done {
						break
					}
				}
			}
		}
	}
	c.buf = nil
	c.head = 0
	c.finished = true
	return &c.report
}

// Run consumes entries from the cursor until the log is closed and drained
// (or a violation stops a fail-fast checker) and returns the final report.
// This is the online mode of Table 3: the verification thread runs
// concurrently with the instrumented program. Failures of the log the
// cursor reads (a sink that could not persist entries, say) surface in
// Report.LogErr rather than ending the run silently.
func (c *Checker) Run(cur wal.Reader) *Report {
	for !c.done {
		e, ok := cur.Next()
		if !ok {
			break
		}
		c.Feed(e)
	}
	if err := cur.Err(); err != nil {
		c.report.LogErr = err.Error()
	}
	return c.Finish()
}

// RunChecker drives any EntryChecker over a log cursor until the log is
// closed and drained (or the checker stops early) and returns the finished
// report, recording any cursor error. It is the engine-agnostic form of
// (*Checker).Run: the online and remote pipelines use it to host
// alternative verdict engines (a linearizability checker, say) behind the
// same plumbing as the refinement checker.
func RunChecker(c EntryChecker, cur wal.Reader) *Report {
	for !c.Done() {
		e, ok := cur.Next()
		if !ok {
			break
		}
		c.Feed(e)
	}
	rep := c.Finish()
	if err := cur.Err(); err != nil && rep.LogErr == "" {
		rep.LogErr = err.Error()
	}
	return rep
}

// CheckEntries checks a completed execution offline: the log was recorded
// (possibly to a file, Section 4.2) and is verified afterwards.
func CheckEntries(entries []event.Entry, spec Spec, opts ...Option) (*Report, error) {
	c, err := New(spec, opts...)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		c.Feed(e)
		if c.done {
			break
		}
	}
	return c.Finish(), nil
}

// CheckStream verifies a persisted binary-format log stream offline,
// decoding frames on a parallel worker pool (workers <= 0 uses GOMAXPROCS)
// while the checker consumes entries in strict log order — decode is the
// parallelizable stage, checking stays sequential. Decode errors are
// returned and also recorded in the (partial) report's LogErr.
func CheckStream(r io.Reader, workers int, spec Spec, opts ...Option) (*Report, error) {
	c, err := New(spec, opts...)
	if err != nil {
		return nil, err
	}
	err = event.StreamParallel(r, workers, func(e event.Entry) error {
		c.Feed(e)
		if c.done {
			return event.ErrStop
		}
		return nil
	})
	rep := c.Finish()
	if err != nil {
		rep.LogErr = err.Error()
	}
	return rep, err
}
