package core

import (
	"fmt"
	"testing"

	"repro/internal/event"
	"repro/internal/spec"
	"repro/internal/view"
)

// slotReplayer is a strict slot-protocol replica in the shape of the
// multiset subjects: "selt" i x reserves an unoccupied slot, "svalid" i b
// publishes or retracts it, "sclear" i frees it. Unlike kvReplayer's
// additive counts, these ops do not commute, so misordered replay fails
// loudly instead of cancelling out.
type slotReplayer struct {
	tbl   *view.Table
	elt   map[int]int
	occ   map[int]bool
	valid map[int]bool
	count map[int]int
}

func newSlotReplayer() *slotReplayer {
	r := &slotReplayer{}
	r.Reset()
	return r
}

func (r *slotReplayer) Reset() {
	r.tbl = view.NewTable()
	r.elt = map[int]int{}
	r.occ = map[int]bool{}
	r.valid = map[int]bool{}
	r.count = map[int]int{}
}

func (r *slotReplayer) View() *view.Table { return r.tbl }
func (r *slotReplayer) Invariants() error { return nil }

func (r *slotReplayer) bump(x, d int) {
	n := r.count[x] + d
	if n <= 0 {
		delete(r.count, x)
		r.tbl.DeleteInt(spaceE, int64(x))
	} else {
		r.count[x] = n
		r.tbl.SetInt(spaceE, int64(x), int64(n))
	}
}

func (r *slotReplayer) Apply(op string, args []event.Value) error {
	switch op {
	case "selt":
		i, x := event.MustInt(args[0]), event.MustInt(args[1])
		if r.occ[i] {
			return fmt.Errorf("selt: slot %d already occupied", i)
		}
		r.occ[i], r.elt[i], r.valid[i] = true, x, false
		return nil
	case "svalid":
		i, b := event.MustInt(args[0]), args[1].(bool)
		if !r.occ[i] {
			return fmt.Errorf("svalid: slot %d not occupied", i)
		}
		if b && !r.valid[i] {
			r.bump(r.elt[i], 1)
		}
		if !b && r.valid[i] {
			r.bump(r.elt[i], -1)
		}
		r.valid[i] = b
		return nil
	case "sclear":
		i := event.MustInt(args[0])
		if !r.occ[i] {
			return fmt.Errorf("sclear: slot %d not occupied", i)
		}
		if r.valid[i] {
			r.bump(r.elt[i], -1)
		}
		r.occ[i], r.valid[i] = false, false
		return nil
	}
	return fmt.Errorf("unknown op %q", op)
}

// TestWriteBehindStalledBlockKeepsLogOrder reproduces the misordering the
// lock-free log's backpressure exposed: while one commit block is open
// (committed but not yet ended, stalling the flush queue), another thread
// completes a Delete block (queued behind the stall) and a third thread
// re-reserves the just-freed slot with a non-block write. The reservation
// follows the Delete in the log, so in the witness trace t' it must apply
// after the Delete's queued writes — applying it immediately hits a
// still-occupied slot and corrupts the replica.
func TestWriteBehindStalledBlockKeepsLogOrder(t *testing.T) {
	var b logBuilder
	// t9 seeds slot 0 with element 5.
	b.call(9, "Insert", 5)
	b.write(9, "selt", 0, 5)
	b.commitWrite(9, "Insert", "svalid", 0, true)
	b.ret(9, "Insert", true)
	// t1 opens an InsertPair block and commits; the block stays open.
	b.call(1, "InsertPair", 1, 2)
	b.write(1, "selt", 1, 1)
	b.write(1, "selt", 2, 2)
	b.begin(1)
	b.write(1, "svalid", 1, true)
	b.write(1, "svalid", 2, true)
	b.commit(1, "InsertPair")
	// t2 deletes element 5, freeing slot 0; its task queues behind t1's.
	b.call(2, "Delete", 5)
	b.begin(2)
	b.write(2, "svalid", 0, false)
	b.write(2, "sclear", 0)
	b.commit(2, "Delete")
	b.end(2)
	b.ret(2, "Delete", true)
	// t3 re-reserves slot 0 — legal in memory, and logged after the Delete.
	b.call(3, "Insert", 7)
	b.write(3, "selt", 0, 7)
	b.commitWrite(3, "Insert", "svalid", 0, true)
	b.ret(3, "Insert", true)
	// t1's block finally closes.
	b.end(1)
	b.ret(1, "InsertPair", true)

	rep := mustCheck(t, b.entries, spec.NewMultiset(), WithReplayer(newSlotReplayer()))
	wantOk(t, rep)
	if rep.ViewsCompared != 4 {
		t.Fatalf("expected 4 view comparisons, got %+v", rep)
	}
}
