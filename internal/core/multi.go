package core

import (
	"fmt"
	"sync"

	"repro/internal/event"
	"repro/internal/wal"
)

// Modular checker fan-out (Section 7.2, Fig. 10): the Boxwood experiment
// verifies the B-link tree and the cache/chunk store as separate refinement
// checks over ONE totally ordered execution log. Each module sees the
// projection of the log onto its own vocabulary, and the checks are
// independent — embarrassingly parallel. Multi drives them that way: a
// single cursor/stream is read once, each entry is routed to the modules
// whose filter accepts it, and every module's Checker runs on its own
// goroutine behind a bounded queue (so one slow module backpressures the
// router instead of ballooning memory).

// Module is one verified module: a name, its specification, and the filter
// that projects the shared log onto the module's entries.
type Module struct {
	// Name identifies the module in its ModuleReport.
	Name string
	// Spec is the module's specification; each module gets its own Checker
	// constructed from it.
	Spec Spec
	// Filter selects the module's entries. Nil filters by the entry's
	// Module tag equal to Name (the tag written by module-scoped probes).
	Filter func(e event.Entry) bool
	// Opts configure the module's Checker (mode, replayer, diagnostics...).
	Opts []Option
	// NewChecker, when set, constructs the module's engine instead of the
	// refinement Checker — e.g. a linearize streaming checker. Spec and
	// Opts are ignored for such a module.
	NewChecker func() (EntryChecker, error)
}

// FilterModule returns a filter accepting entries tagged with the given
// module name (see event.Entry.Module).
func FilterModule(name string) func(event.Entry) bool {
	sym := event.InternSym(name)
	return func(e event.Entry) bool {
		if e.Mod != 0 || e.Module == "" {
			return e.Mod == sym
		}
		return e.Module == name
	}
}

// ModuleReport pairs a module's name with its checking report.
type ModuleReport struct {
	Module string
	Report *Report
}

// Ok reports whether every module's check passed.
func Ok(reports []ModuleReport) bool {
	for _, mr := range reports {
		if !mr.Report.Ok() {
			return false
		}
	}
	return true
}

// batchSize is the routing granularity: entries are handed to module
// goroutines in batches to amortize channel synchronization.
const batchSize = 256

// queueDepth bounds each module's queue (in batches); a stalled module
// blocks the router once its queue fills.
const queueDepth = 8

// Multi fans one log out to per-module checkers.
type Multi struct {
	mods     []Module
	checkers []EntryChecker
	filters  []func(event.Entry) bool

	queues  []chan []event.Entry
	pending [][]event.Entry
	wg      sync.WaitGroup
	started bool
}

// NewMulti constructs one Checker per module. Checker construction errors
// (a view-mode module without a replayer, say) surface here, before any
// entry is consumed.
func NewMulti(mods ...Module) (*Multi, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("core: NewMulti requires at least one module")
	}
	m := &Multi{mods: mods}
	for _, mod := range mods {
		var c EntryChecker
		var err error
		if mod.NewChecker != nil {
			c, err = mod.NewChecker()
		} else {
			c, err = New(mod.Spec, mod.Opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("core: module %s: %w", mod.Name, err)
		}
		m.checkers = append(m.checkers, c)
		f := mod.Filter
		if f == nil {
			f = FilterModule(mod.Name)
		}
		m.filters = append(m.filters, f)
	}
	return m, nil
}

// start launches the module goroutines. Each drains its queue into its
// Checker and finishes when the queue closes.
func (m *Multi) start() {
	m.queues = make([]chan []event.Entry, len(m.mods))
	m.pending = make([][]event.Entry, len(m.mods))
	for i := range m.mods {
		q := make(chan []event.Entry, queueDepth)
		m.queues[i] = q
		c := m.checkers[i]
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for batch := range q {
				for _, e := range batch {
					c.Feed(e)
				}
			}
			c.Finish()
		}()
	}
	m.started = true
}

// route hands one entry to every module whose filter accepts it.
func (m *Multi) route(e event.Entry) {
	for i, f := range m.filters {
		if !f(e) {
			continue
		}
		if m.pending[i] == nil {
			m.pending[i] = make([]event.Entry, 0, batchSize)
		}
		m.pending[i] = append(m.pending[i], e)
		if len(m.pending[i]) == batchSize {
			m.queues[i] <- m.pending[i]
			m.pending[i] = nil
		}
	}
}

// finish flushes partial batches, closes the queues, waits for the module
// goroutines and collects the reports. logErr, when non-empty, is recorded
// on every module's report: all modules read the same log.
func (m *Multi) finish(logErr string) []ModuleReport {
	for i, p := range m.pending {
		if len(p) > 0 {
			m.queues[i] <- p
			m.pending[i] = nil
		}
	}
	for _, q := range m.queues {
		close(q)
	}
	m.wg.Wait()
	out := make([]ModuleReport, len(m.mods))
	for i, c := range m.checkers {
		rep := c.Report()
		if logErr != "" {
			rep.LogErr = logErr
		}
		out[i] = ModuleReport{Module: m.mods[i].Name, Report: rep}
	}
	return out
}

// FeedSync routes one entry to every accepting module's checker on the
// calling goroutine — the scheduler-driven mode, where a bounded worker
// pool time-slices many sessions and per-module goroutines would evade
// its accounting. Exclusive with Run/CheckEntries: a Multi is either
// goroutine-fanned or synchronously driven, never both.
func (m *Multi) FeedSync(e event.Entry) {
	for i, f := range m.filters {
		if f(e) {
			m.checkers[i].Feed(e)
		}
	}
}

// FinishSync finishes every module's checker after synchronous feeding
// and collects the reports; logErr, when non-empty, is recorded on all
// of them (all modules read the same log).
func (m *Multi) FinishSync(logErr string) []ModuleReport {
	out := make([]ModuleReport, len(m.mods))
	for i, c := range m.checkers {
		rep := c.Finish()
		if logErr != "" {
			rep.LogErr = logErr
		}
		out[i] = ModuleReport{Module: m.mods[i].Name, Report: rep}
	}
	return out
}

// Run consumes the cursor until the log is closed and drained, fanning
// entries out to the module checkers, and returns the merged per-module
// reports. This is the online modular mode: it runs concurrently with the
// instrumented program, one goroutine per module plus the calling router.
func (m *Multi) Run(cur wal.Reader) []ModuleReport {
	m.start()
	for {
		e, ok := cur.Next()
		if !ok {
			break
		}
		m.route(e)
	}
	var logErr string
	if err := cur.Err(); err != nil {
		logErr = err.Error()
	}
	return m.finish(logErr)
}

// CheckEntries verifies a recorded execution offline through the modular
// fan-out, returning per-module reports.
func (m *Multi) CheckEntries(entries []event.Entry) []ModuleReport {
	m.start()
	for _, e := range entries {
		m.route(e)
	}
	return m.finish("")
}

// CheckEntriesMulti is the convenience wrapper: construct, fan out, merge.
func CheckEntriesMulti(entries []event.Entry, mods ...Module) ([]ModuleReport, error) {
	m, err := NewMulti(mods...)
	if err != nil {
		return nil, err
	}
	return m.CheckEntries(entries), nil
}
