// Package blinktree reimplements the Boxwood B-link tree module
// (Section 7.2.3): a highly concurrent B-link tree in the style of Sagiv
// and Lehman-Yao, with per-node locks, right links and high keys, move-right
// traversal, node splits that never block readers, and an internal
// compression thread that re-arranges leaf contents without modifying the
// set of (key, data) pairs.
//
// Commit points follow Fig. 9: each mutator's effect is reflected in the
// data structure state by a single write to a leaf — overwriting an
// existing key (commit point 1), adding a key to a leaf with room (2), or
// adding it to one of the halves of a split (3/4, including the root-leaf
// case) — while the remaining writes restructure the tree and are abstracted
// away by viewI, the sorted list of (key, data) pairs (Section 7.2.4). This
// is exactly the Section 8 example of a structure that reduction-based
// atomicity checking cannot handle but refinement checking can.
//
// The injected bug is the one named in Table 1 — "Allowing duplicated data
// nodes": the buggy Insert performs its key-presence check against the leaf
// before acquiring the leaf's lock, so two concurrent inserts of the same
// fresh key can both conclude the key is absent and both add a data entry.
//
// Log-replay vocabulary (see Replayer). Every leaf content write carries
// the leaf's post-write version number, mirroring Boxwood's versioned
// variables (Section 7.2.4's viewI includes version numbers); the replica
// checks they increase strictly per leaf:
//
//	"leaf-add" leaf key data ver     add a (key, data) entry (commits)
//	"leaf-set" leaf key data ver     overwrite the entry for key (commit)
//	"leaf-del" leaf key ver          remove the entry for key (commit)
//	"leaf-split" old new sep over nver  move entries with key >= sep to the
//	                                 fresh leaf `new` (restructuring)
//	"leaf-move" src dst sep sver dver   move entries with key >= sep to the
//	                                 right sibling (compression)
package blinktree

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/spec"
	"repro/vyrd"
)

// Bug selects an injected concurrency error.
type Bug uint8

const (
	// BugNone is the correct implementation.
	BugNone Bug = iota
	// BugDuplicateInsert checks key presence before acquiring the leaf lock
	// (Table 1: "Allowing duplicated data nodes").
	BugDuplicateInsert
	// BugDroppedLock checks presence under the leaf lock but then drops the
	// lock before performing the add: the same "duplicated data nodes"
	// failure as BugDuplicateInsert, but with no Gosched widening the
	// window — between unlock and re-descend there is only a controlled-
	// scheduler yield (vyrd.Probe.Yield), so wall-clock stress essentially
	// never lands in the window while schedule exploration can park a
	// second inserter of the same key inside it. The planted bug for
	// exploration.
	BugDroppedLock
)

// maxInt is the high key of rightmost nodes.
const maxInt = math.MaxInt

type node struct {
	mu    sync.Mutex
	id    int
	level int // 0 for leaves
	keys  []int
	vals  []int   // leaves: data for keys[i]
	kids  []*node // internal: len(keys)+1 children
	high  int     // exclusive upper bound of this node's key range
	right *node   // right sibling at the same level
	// ver counts content writes to a leaf, mirroring Boxwood's versioned
	// variables: Section 7.2.4 includes version numbers in viewI, and the
	// replica checks they increase monotonically per node.
	ver int
}

// Tree is the concurrent B-link tree.
type Tree struct {
	rootMu sync.Mutex // guards the root pointer only
	root   *node
	order  int // maximum keys per node before splitting
	nextID atomic.Int64
	bug    Bug

	// RaceWindow, when non-nil, runs in the buggy Insert between the
	// unlocked presence check and the leaf lock acquisition.
	RaceWindow func(key int)
}

// New returns an empty tree. order is the maximum number of keys per node
// (minimum 3).
func New(order int, bug Bug) *Tree {
	if order < 3 {
		order = 3
	}
	t := &Tree{order: order, bug: bug}
	t.root = &node{id: t.newID(), level: 0, high: maxInt}
	return t
}

func (t *Tree) newID() int { return int(t.nextID.Add(1)) }

// childFor returns the child covering key in an internal node. Boundaries
// are left-inclusive on the right child: child i covers [keys[i-1], keys[i]).
func (n *node) childFor(key int) *node {
	i := sort.SearchInts(n.keys, key+1)
	return n.kids[i]
}

// leafIndex returns the position of key in a leaf, or -1.
func (n *node) leafIndex(key int) int {
	i := sort.SearchInts(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return i
	}
	return -1
}

// descendToLeaf walks from the root to the leaf covering key, moving right
// past splits, and returns that leaf locked.
func (t *Tree) descendToLeaf(key int) *node {
	t.rootMu.Lock()
	cur := t.root
	t.rootMu.Unlock()
	for {
		cur.mu.Lock()
		if key >= cur.high && cur.right != nil {
			next := cur.right
			cur.mu.Unlock()
			cur = next
			continue
		}
		if cur.level == 0 {
			return cur
		}
		next := cur.childFor(key)
		cur.mu.Unlock()
		cur = next
	}
}

// Insert sets key to data, inserting or overwriting. Like Boxwood's INSERT
// it returns nothing observable; the commit carries the single leaf write.
func (t *Tree) Insert(p *vyrd.Probe, key, data int) {
	inv := p.Call("Insert", key, data)

	if t.bug == BugDuplicateInsert {
		t.insertBuggy(p, inv, key, data)
		return
	}
	if t.bug == BugDroppedLock {
		t.insertDroppedLock(p, inv, key, data)
		return
	}

	leaf := t.descendToLeaf(key)
	if i := leaf.leafIndex(key); i >= 0 {
		leaf.vals[i] = data
		leaf.ver++
		inv.CommitWrite("cp1-overwrite", "leaf-set", leaf.id, key, data, leaf.ver)
		leaf.mu.Unlock()
		inv.Return(nil)
		return
	}
	t.insertIntoLeaf(p, inv, leaf, key, data)
	inv.Return(nil)
}

// insertBuggy checks presence against the leaf before locking it; two
// concurrent inserts of the same fresh key both take the blind-add path.
func (t *Tree) insertBuggy(p *vyrd.Probe, inv *vyrd.Invocation, key, data int) {
	// Unlocked pre-check: walk to the leaf, peek, release.
	leaf := t.descendToLeaf(key)
	present := leaf.leafIndex(key) >= 0
	leaf.mu.Unlock()

	if t.RaceWindow != nil {
		t.RaceWindow(key)
	} else {
		runtime.Gosched() // model preemption in the race window
	}
	p.Yield() // controlled-scheduler preemption point inside the race window

	leaf = t.descendToLeaf(key)
	if present {
		// Overwrite path: trusts the stale pre-check, but re-locates the
		// key; if it vanished, fall through to a blind add.
		if i := leaf.leafIndex(key); i >= 0 {
			leaf.vals[i] = data
			leaf.ver++
			inv.CommitWrite("cp1-overwrite", "leaf-set", leaf.id, key, data, leaf.ver)
			leaf.mu.Unlock()
			inv.Return(nil)
			return
		}
	}
	// BUG: blind add without re-checking presence under the lock.
	t.insertIntoLeaf(p, inv, leaf, key, data)
	inv.Return(nil)
}

// insertDroppedLock checks presence correctly under the leaf lock, but
// drops the lock before the add: two concurrent inserts of the same fresh
// key can both observe it absent, both park at the yield, and both
// blind-add — duplicated data nodes, caught by the view replica.
func (t *Tree) insertDroppedLock(p *vyrd.Probe, inv *vyrd.Invocation, key, data int) {
	leaf := t.descendToLeaf(key)
	if i := leaf.leafIndex(key); i >= 0 {
		leaf.vals[i] = data
		leaf.ver++
		inv.CommitWrite("cp1-overwrite", "leaf-set", leaf.id, key, data, leaf.ver)
		leaf.mu.Unlock()
		inv.Return(nil)
		return
	}
	// BUG: the lock is released between the presence check and the add.
	leaf.mu.Unlock()
	if t.RaceWindow != nil {
		t.RaceWindow(key)
	}
	p.Yield() // controlled-scheduler preemption point inside the race window
	leaf = t.descendToLeaf(key)
	t.insertIntoLeaf(p, inv, leaf, key, data)
	inv.Return(nil)
}

// insertIntoLeaf adds (key, data) to the locked leaf, splitting when full.
// It unlocks the leaf (and completes any separator propagation) before
// returning.
func (t *Tree) insertIntoLeaf(p *vyrd.Probe, inv *vyrd.Invocation, leaf *node, key, data int) {
	if len(leaf.keys) < t.order {
		i := sort.SearchInts(leaf.keys, key)
		leaf.keys = append(leaf.keys, 0)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		leaf.keys[i] = key
		leaf.vals = append(leaf.vals, 0)
		copy(leaf.vals[i+1:], leaf.vals[i:])
		leaf.vals[i] = data
		leaf.ver++
		inv.CommitWrite("cp2-insert", "leaf-add", leaf.id, key, data, leaf.ver)
		leaf.mu.Unlock()
		return
	}

	// Split the leaf: the upper half moves to a fresh right sibling. The
	// split itself is restructuring (view-neutral); the commit is the add
	// of the new key into the appropriate half (Fig. 9 commit points 3/4).
	mid := len(leaf.keys) / 2
	sep := leaf.keys[mid]
	right := &node{
		id:    t.newID(),
		level: 0,
		keys:  append([]int(nil), leaf.keys[mid:]...),
		vals:  append([]int(nil), leaf.vals[mid:]...),
		high:  leaf.high,
		right: leaf.right,
	}
	leaf.ver++
	p.Write("leaf-split", leaf.id, right.id, sep, leaf.ver, right.ver)
	leaf.keys = leaf.keys[:mid:mid]
	leaf.vals = leaf.vals[:mid:mid]
	leaf.high = sep
	leaf.right = right

	target := leaf
	label := "cp3-insert-split-left"
	if key >= sep {
		target = right
		label = "cp4-insert-split-right"
	}
	i := sort.SearchInts(target.keys, key)
	target.keys = append(target.keys, 0)
	copy(target.keys[i+1:], target.keys[i:])
	target.keys[i] = key
	target.vals = append(target.vals, 0)
	copy(target.vals[i+1:], target.vals[i:])
	target.vals[i] = data
	target.ver++
	inv.CommitWrite(label, "leaf-add", target.id, key, data, target.ver)
	level := leaf.level
	leaf.mu.Unlock()

	t.insertSeparator(level+1, sep, right)
}

// insertSeparator installs (sep, right) into the parent level, splitting
// internal nodes and growing the root as needed. Internal restructuring is
// outside the view's support and is not logged.
func (t *Tree) insertSeparator(level, sep int, right *node) {
	for {
		t.rootMu.Lock()
		if t.root.level < level {
			// The split node was the root: grow the tree.
			old := t.root
			t.root = &node{
				id:    t.newID(),
				level: level,
				keys:  []int{sep},
				kids:  []*node{old, right},
				high:  maxInt,
			}
			t.rootMu.Unlock()
			return
		}
		t.rootMu.Unlock()

		parent := t.parentAt(level, sep)
		i := sort.SearchInts(parent.keys, sep)
		parent.keys = append(parent.keys, 0)
		copy(parent.keys[i+1:], parent.keys[i:])
		parent.keys[i] = sep
		parent.kids = append(parent.kids, nil)
		copy(parent.kids[i+2:], parent.kids[i+1:])
		parent.kids[i+1] = right

		if len(parent.keys) <= t.order {
			parent.mu.Unlock()
			return
		}

		// Split the internal node; the median key is promoted.
		mid := len(parent.keys) / 2
		promote := parent.keys[mid]
		newRight := &node{
			id:    t.newID(),
			level: parent.level,
			keys:  append([]int(nil), parent.keys[mid+1:]...),
			kids:  append([]*node(nil), parent.kids[mid+1:]...),
			high:  parent.high,
			right: parent.right,
		}
		parent.keys = parent.keys[:mid:mid]
		parent.kids = parent.kids[: mid+1 : mid+1]
		parent.high = promote
		parent.right = newRight
		parent.mu.Unlock()

		level, sep, right = level+1, promote, newRight
	}
}

// parentAt walks to the node at the given level whose range covers key,
// moving right as needed, and returns it locked.
func (t *Tree) parentAt(level, key int) *node {
	t.rootMu.Lock()
	cur := t.root
	t.rootMu.Unlock()
	for {
		cur.mu.Lock()
		if key >= cur.high && cur.right != nil {
			next := cur.right
			cur.mu.Unlock()
			cur = next
			continue
		}
		if cur.level == level {
			return cur
		}
		next := cur.childFor(key)
		cur.mu.Unlock()
		cur = next
	}
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(p *vyrd.Probe, key int) bool {
	inv := p.Call("Delete", key)
	leaf := t.descendToLeaf(key)
	i := leaf.leafIndex(key)
	if i < 0 {
		inv.Commit("not-found")
		leaf.mu.Unlock()
		inv.Return(false)
		return false
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	leaf.ver++
	inv.CommitWrite("deleted", "leaf-del", leaf.id, key, leaf.ver)
	leaf.mu.Unlock()
	inv.Return(true)
	return true
}

// Lookup returns the data stored under key, or -1 (observer).
func (t *Tree) Lookup(p *vyrd.Probe, key int) int {
	inv := p.Call("Lookup", key)
	leaf := t.descendToLeaf(key)
	data := -1
	if i := leaf.leafIndex(key); i >= 0 {
		data = leaf.vals[i]
	}
	leaf.mu.Unlock()
	inv.Return(data)
	return data
}

// Compress performs one compression pass as the tree's internal maintenance
// thread (Section 7.2.3): it shifts the top keys of an overfull-ish leaf to
// its right sibling when the sibling has room, re-arranging the structure
// without modifying the set of (key, data) pairs. The move is the commit
// block of the Compress pseudo-method, so view refinement checks that the
// abstract contents are indeed unchanged.
func (t *Tree) Compress(p *vyrd.Probe) {
	inv := p.Call(spec.MethodCompress)
	// Find the leftmost leaf.
	t.rootMu.Lock()
	cur := t.root
	t.rootMu.Unlock()
	for {
		cur.mu.Lock()
		if cur.level == 0 {
			break
		}
		next := cur.kids[0]
		cur.mu.Unlock()
		cur = next
	}
	// Walk the leaf chain left to right looking for a movable pair.
	for {
		r := cur.right
		if r == nil {
			cur.mu.Unlock()
			inv.Commit("nothing")
			inv.Return(nil)
			return
		}
		r.mu.Lock()
		if len(cur.keys) >= 2 && len(r.keys)+1 <= t.order {
			sep := cur.keys[len(cur.keys)-1]
			inv.BeginCommitBlock()
			// Move the top key of cur into r (r's keys are all >= cur's,
			// so it lands at the front) and shrink cur's range.
			r.keys = append([]int{sep}, r.keys...)
			r.vals = append([]int{cur.vals[len(cur.vals)-1]}, r.vals...)
			cur.keys = cur.keys[:len(cur.keys)-1]
			cur.vals = cur.vals[:len(cur.vals)-1]
			cur.high = sep
			cur.ver++
			r.ver++
			p.Write("leaf-move", cur.id, r.id, sep, cur.ver, r.ver)
			inv.Commit("moved")
			inv.EndCommitBlock()
			r.mu.Unlock()
			cur.mu.Unlock()
			inv.Return(nil)
			return
		}
		cur.mu.Unlock()
		cur = r
	}
}

// Contents returns the reachable (key, data) pairs; for quiesced tests
// only. Duplicate keys (only possible under the injected bug) are reported
// with the leftmost occurrence winning and counted in dups.
func (t *Tree) Contents() (pairs map[int]int, dups int) {
	pairs = make(map[int]int)
	t.rootMu.Lock()
	cur := t.root
	t.rootMu.Unlock()
	for cur.level != 0 {
		cur = cur.kids[0]
	}
	for cur != nil {
		for i, k := range cur.keys {
			if _, seen := pairs[k]; seen {
				dups++
				continue
			}
			pairs[k] = cur.vals[i]
		}
		cur = cur.right
	}
	return pairs, dups
}

// CheckStructure verifies the tree's structural invariants on a quiesced
// instance: sorted leaves, ranges respecting high keys, and right-link
// reachability of every key. It returns a count of violations (0 for a
// healthy tree).
func (t *Tree) CheckStructure() int {
	bad := 0
	t.rootMu.Lock()
	cur := t.root
	t.rootMu.Unlock()
	for cur.level != 0 {
		cur = cur.kids[0]
	}
	low := math.MinInt
	for cur != nil {
		prev := low
		for _, k := range cur.keys {
			if k < prev {
				bad++
			}
			prev = k
			if k >= cur.high {
				bad++
			}
		}
		low = cur.high
		if low == maxInt && cur.right != nil {
			bad++
		}
		cur = cur.right
	}
	return bad
}
