package blinktree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/view"
)

// Replayer reconstructs the tree's leaf contents from the logged writes and
// maintains viewI: the set of (key, data) pairs across all leaves, in the
// same canonical form as the KV specification's viewS — except that a key
// stored more than once renders as a "dup(...)" value, which can never
// equal a specification value. That is how "allowing duplicated data nodes"
// surfaces at the very commit that creates the duplicate, while I/O
// refinement has to wait for an unlucky observer (the Table 1 contrast).
//
// Restructuring entries ("leaf-split", "leaf-move") relocate pairs between
// leaves without touching the key index, so they can never change the view
// — mirroring Section 7.2.4's abstraction of the indexing structure.
type Replayer struct {
	leaves map[int][]rpair
	keys   map[int]*keyinfo
	table  *view.Table
	// unsorted counts leaves whose pair list violates sortedness, tracked
	// per mutation of the affected leaf.
	unsorted map[int]bool
	// vers holds the last version number seen per leaf; nonMonotonic counts
	// leaves whose logged versions failed to increase strictly — the
	// invariant Boxwood's per-variable version numbers provide.
	vers         map[int]int
	nonMonotonic map[int]bool
}

type rpair struct {
	key, val int
}

type keyinfo struct {
	count int
	vals  map[int]int // data value -> multiplicity
}

// NewReplayer returns an empty replica.
func NewReplayer() *Replayer {
	r := &Replayer{}
	r.Reset()
	return r
}

// Reset implements core.Replayer.
func (r *Replayer) Reset() {
	r.leaves = make(map[int][]rpair)
	r.keys = make(map[int]*keyinfo)
	r.table = view.NewTable()
	r.unsorted = make(map[int]bool)
	r.vers = make(map[int]int)
	r.nonMonotonic = make(map[int]bool)
}

// View implements core.Replayer. Keys are "k:<key>"; values are the data,
// or a dup(...) marker when a key occurs more than once.
func (r *Replayer) View() *view.Table { return r.table }

// spaceK is the view key family of stored keys, shared by name with the KV
// specification so both views land in the same key universe. A duplicated
// key leaves the integer universe and renders as a "k:<key>" -> "dup(...)"
// string entry instead — a shape no specification view ever produces, so
// the fingerprints diverge at the very commit that creates the duplicate.
var spaceK = view.NewSpace("k")

func (r *Replayer) refreshKey(key int) {
	ki := r.keys[key]
	if ki == nil || ki.count == 0 {
		// The record stays in r.keys for reuse: with a bounded key pool the
		// same keys cycle in and out constantly, and reallocating the record
		// (and its vals map) per cycle dominated the replay allocation
		// profile.
		r.table.DeleteInt(spaceK, int64(key))
		r.table.Delete("k:" + strconv.Itoa(key))
		return
	}
	if ki.count == 1 {
		for v, n := range ki.vals {
			if n > 0 {
				r.table.Delete("k:" + strconv.Itoa(key))
				r.table.SetInt(spaceK, int64(key), int64(v))
				return
			}
		}
	}
	// Duplicate occurrences: render a canonical marker.
	vals := make([]string, 0, len(ki.vals))
	for v, n := range ki.vals {
		if n > 0 {
			vals = append(vals, fmt.Sprintf("%d*%d", v, n))
		}
	}
	sort.Strings(vals)
	r.table.DeleteInt(spaceK, int64(key))
	r.table.Set("k:"+strconv.Itoa(key), fmt.Sprintf("dup(%s)", strings.Join(vals, ",")))
}

func (r *Replayer) addOccurrence(key, val, delta int) {
	ki := r.keys[key]
	if ki == nil {
		ki = &keyinfo{vals: make(map[int]int)}
		r.keys[key] = ki
	}
	ki.count += delta
	ki.vals[val] += delta
	if ki.vals[val] <= 0 {
		delete(ki.vals, val)
	}
	r.refreshKey(key)
}

// bumpVer records a logged leaf version, flagging non-monotonic sequences.
func (r *Replayer) bumpVer(leaf, ver int) {
	if ver <= r.vers[leaf] {
		r.nonMonotonic[leaf] = true
	}
	r.vers[leaf] = ver
}

func (r *Replayer) checkSorted(leaf int) {
	ps := r.leaves[leaf]
	for i := 1; i < len(ps); i++ {
		if ps[i].key < ps[i-1].key {
			r.unsorted[leaf] = true
			return
		}
	}
	delete(r.unsorted, leaf)
}

func threeInts(op string, args []event.Value) (a, b, c int, err error) {
	if len(args) != 3 {
		return 0, 0, 0, fmt.Errorf("blinktree replay: %s wants three integers, got %v", op, args)
	}
	var ok [3]bool
	a, ok[0] = event.Int(args[0])
	b, ok[1] = event.Int(args[1])
	c, ok[2] = event.Int(args[2])
	if !ok[0] || !ok[1] || !ok[2] {
		return 0, 0, 0, fmt.Errorf("blinktree replay: %s non-integer args %v", op, args)
	}
	return a, b, c, nil
}

func fourInts(op string, args []event.Value) (a, b, c, d int, err error) {
	if len(args) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("blinktree replay: %s wants four integers, got %v", op, args)
	}
	a, b, c, err = threeInts(op, args[:3])
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var ok bool
	d, ok = event.Int(args[3])
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("blinktree replay: %s non-integer version %v", op, args[3])
	}
	return a, b, c, d, nil
}

// Apply implements core.Replayer.
func (r *Replayer) Apply(op string, args []event.Value) error {
	switch op {
	case "leaf-add":
		leaf, key, data, ver, err := fourInts(op, args)
		if err != nil {
			return err
		}
		r.bumpVer(leaf, ver)
		ps := r.leaves[leaf]
		i := sort.Search(len(ps), func(i int) bool { return ps[i].key >= key })
		ps = append(ps, rpair{})
		copy(ps[i+1:], ps[i:])
		ps[i] = rpair{key: key, val: data}
		r.leaves[leaf] = ps
		r.addOccurrence(key, data, 1)
		r.checkSorted(leaf)
		return nil

	case "leaf-set":
		leaf, key, data, ver, err := fourInts(op, args)
		if err != nil {
			return err
		}
		r.bumpVer(leaf, ver)
		ps := r.leaves[leaf]
		for i := range ps {
			if ps[i].key == key {
				old := ps[i].val
				ps[i].val = data
				r.addOccurrence(key, old, -1)
				r.addOccurrence(key, data, 1)
				return nil
			}
		}
		return fmt.Errorf("blinktree replay: leaf-set for key %d absent from leaf %d", key, leaf)

	case "leaf-del":
		leaf, key, ver, err := threeInts(op, args)
		if err != nil {
			return err
		}
		r.bumpVer(leaf, ver)
		ps := r.leaves[leaf]
		for i := range ps {
			if ps[i].key == key {
				val := ps[i].val
				r.leaves[leaf] = append(ps[:i], ps[i+1:]...)
				r.addOccurrence(key, val, -1)
				r.checkSorted(leaf)
				return nil
			}
		}
		return fmt.Errorf("blinktree replay: leaf-del for key %d absent from leaf %d", key, leaf)

	case "leaf-split", "leaf-move":
		if len(args) != 5 {
			return fmt.Errorf("blinktree replay: %s wants src, dst, sep, srcVer, dstVer, got %v", op, args)
		}
		src, dst, sep, err := threeInts(op, args[:3])
		if err != nil {
			return err
		}
		srcVer, ok1 := event.Int(args[3])
		dstVer, ok2 := event.Int(args[4])
		if !ok1 || !ok2 {
			return fmt.Errorf("blinktree replay: %s non-integer versions %v", op, args)
		}
		r.bumpVer(src, srcVer)
		if op == "leaf-move" {
			r.bumpVer(dst, dstVer)
		} else {
			r.vers[dst] = dstVer // fresh leaf's initial version
		}
		ps := r.leaves[src]
		i := sort.Search(len(ps), func(i int) bool { return ps[i].key >= sep })
		moved := append([]rpair(nil), ps[i:]...)
		r.leaves[src] = ps[:i:i]
		if op == "leaf-split" {
			if _, exists := r.leaves[dst]; exists {
				return fmt.Errorf("blinktree replay: leaf-split target %d already exists", dst)
			}
			r.leaves[dst] = moved
		} else {
			// Compression moves to an existing right sibling; the moved
			// pairs precede its contents.
			r.leaves[dst] = append(moved, r.leaves[dst]...)
		}
		r.checkSorted(src)
		r.checkSorted(dst)
		return nil
	}
	return fmt.Errorf("blinktree replay: unknown op %q", op)
}

// Invariants implements core.Replayer: every leaf's pair list must be
// sorted by key, and every leaf's logged version numbers must increase
// strictly.
func (r *Replayer) Invariants() error {
	for leaf := range r.unsorted {
		return fmt.Errorf("leaf %d is not sorted by key", leaf)
	}
	for leaf := range r.nonMonotonic {
		return fmt.Errorf("leaf %d version numbers are not strictly increasing", leaf)
	}
	return nil
}

// Pairs exposes the reconstructed key index: key -> data for unique keys;
// duplicated keys are reported in dups. Records with count 0 are absent
// keys retained for reuse. For tests.
func (r *Replayer) Pairs() (pairs map[int]int, dups int) {
	pairs = make(map[int]int)
	for key, ki := range r.keys {
		if ki.count == 1 {
			for v := range ki.vals {
				pairs[key] = v
			}
		} else if ki.count > 1 {
			dups++
		}
	}
	return pairs, dups
}
