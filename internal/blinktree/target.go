package blinktree

import (
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/spec"
	"repro/vyrd"
)

// Target adapts the B-link tree to the random test harness (Section 7.1),
// including its continuously running compression thread. order is the
// maximum keys per node (small orders split often, exercising the
// restructuring paths).
func Target(order int, bug Bug) harness.Target {
	return harness.Target{
		Name: "BLinkTree",
		New: func(log *vyrd.Log) harness.Instance {
			t := New(order, bug)
			return harness.Instance{
				Methods: []harness.Method{
					{Name: "Insert", Weight: 40, Run: func(p *vyrd.Probe, rng *rand.Rand, pick func() int) {
						t.Insert(p, pick(), rng.Intn(1000))
					}},
					{Name: "Delete", Weight: 20, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Delete(p, pick())
					}},
					{Name: "Lookup", Weight: 40, Run: func(p *vyrd.Probe, _ *rand.Rand, pick func() int) {
						t.Lookup(p, pick())
					}},
				},
				WorkerStep: func(p *vyrd.Probe) {
					t.Compress(p)
					runtime.Gosched()
				},
			}
		},
		NewSpec:     func() core.Spec { return spec.NewKV() },
		NewReplayer: func() core.Replayer { return NewReplayer() },
	}
}
