package blinktree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/racecheck"
	"repro/internal/spec"
	"repro/vyrd"
)

func checkLog(t *testing.T, log *vyrd.Log, mode core.Mode) *vyrd.Report {
	t.Helper()
	opts := []vyrd.Option{vyrd.WithMode(mode)}
	if mode == vyrd.ModeView {
		opts = append(opts, vyrd.WithReplayer(NewReplayer()), vyrd.WithDiagnostics(true))
	}
	rep, err := vyrd.Check(log, spec.NewKV(), opts...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return rep
}

func TestSequentialInsertLookupDelete(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	tr := New(4, BugNone)
	for i := 0; i < 50; i++ {
		tr.Insert(p, i*3%50, i)
	}
	for i := 0; i < 50; i++ {
		k := i * 3 % 50
		if got := tr.Lookup(p, k); got == -1 {
			t.Fatalf("Lookup(%d) = -1", k)
		}
	}
	if tr.Lookup(p, 999) != -1 {
		t.Fatal("phantom key")
	}
	if !tr.Delete(p, 0) || tr.Delete(p, 0) {
		t.Fatal("delete semantics wrong")
	}
	if tr.Lookup(p, 0) != -1 {
		t.Fatal("deleted key still present")
	}
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations: %d", bad)
	}
	log.Close()
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("%v: %s", mode, rep)
		}
	}
}

func TestOverwriteKeepsSingleEntry(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	tr := New(4, BugNone)
	tr.Insert(p, 5, 100)
	tr.Insert(p, 5, 200) // commit point 1: overwrite
	if got := tr.Lookup(p, 5); got != 200 {
		t.Fatalf("Lookup(5) = %d", got)
	}
	pairs, dups := tr.Contents()
	if dups != 0 || len(pairs) != 1 {
		t.Fatalf("pairs %v dups %d", pairs, dups)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestSplitsProduceValidStructure(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	tr := New(3, BugNone) // tiny order: splits constantly
	const n = 200
	for i := 0; i < n; i++ {
		tr.Insert(p, (i*37)%n, i)
	}
	pairs, dups := tr.Contents()
	if dups != 0 {
		t.Fatalf("%d duplicate keys", dups)
	}
	if len(pairs) > n {
		t.Fatalf("%d pairs", len(pairs))
	}
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations: %d", bad)
	}
	log.Close()
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

func TestCompressPreservesPairs(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	p := log.NewProbe()
	wp := log.NewWorkerProbe()
	tr := New(4, BugNone)
	for i := 0; i < 60; i++ {
		tr.Insert(p, i, i*10)
	}
	before, _ := tr.Contents()
	for i := 0; i < 10; i++ {
		tr.Compress(wp)
	}
	after, dups := tr.Contents()
	if dups != 0 || len(after) != len(before) {
		t.Fatalf("compression changed contents: %d vs %d (dups %d)", len(after), len(before), dups)
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("compression changed pair %d", k)
		}
	}
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations after compression: %d", bad)
	}
	log.Close()
	// View refinement verifies each Compress commit left the view unchanged.
	if rep := checkLog(t, log, vyrd.ModeView); !rep.Ok() {
		t.Fatalf("%s", rep)
	}
}

// TestBugDeterministicDuplicate forces the duplicated-data-nodes scenario:
// two inserts of the same fresh key race through the unlocked presence
// check and both add an entry.
func TestBugDeterministicDuplicate(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("intentional data race: the injected bug would trip the race detector before VYRD sees it")
	}
	log := vyrd.NewLog(vyrd.LevelView)
	tr := New(6, BugDuplicateInsert)
	p1 := log.NewProbe()
	p2 := log.NewProbe()

	paused := make(chan struct{})
	resume := make(chan struct{})
	var once sync.Once
	tr.RaceWindow = func(key int) {
		once.Do(func() {
			close(paused)
			<-resume
		})
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		tr.Insert(p2, 42, 1) // pauses after its presence pre-check
	}()
	<-paused
	tr.RaceWindow = func(int) {}
	tr.Insert(p1, 42, 2) // inserts 42 first
	close(resume)        // T2 blind-adds a duplicate 42
	<-done
	log.Close()

	if _, dups := tr.Contents(); dups == 0 {
		t.Fatal("schedule did not produce a duplicate")
	}
	rep := checkLog(t, log, vyrd.ModeView)
	if rep.Ok() {
		t.Fatalf("view refinement missed the duplicate:\n%s", rep)
	}
	if rep.First().Kind != vyrd.ViolationView {
		t.Fatalf("expected a view violation, got %v", rep.First())
	}
	// I/O refinement cannot reject anything on this trace: Insert returns
	// nothing, and no observer ran after the duplicate (the paper's reason
	// Table 1 shows late I/O detection for this bug).
	ioRep := checkLog(t, log, vyrd.ModeIO)
	if !ioRep.Ok() {
		t.Fatalf("I/O refinement unexpectedly flagged the observer-free trace:\n%s", ioRep)
	}
}

func TestReplayerDuplicateEncoding(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	apply("leaf-add", 1, 42, 100, 1)
	if v, _ := r.View().GetInt(spaceK, 42); v != 100 {
		t.Fatalf("single entry renders as %d", v)
	}
	apply("leaf-add", 2, 42, 200, 1)
	if v, _ := r.View().Get("k:42"); v != "dup(100*1,200*1)" {
		t.Fatalf("duplicate renders as %q", v)
	}
	if _, ok := r.View().GetInt(spaceK, 42); ok {
		t.Fatal("duplicated key still in the integer universe")
	}
	apply("leaf-del", 2, 42, 2)
	if v, _ := r.View().GetInt(spaceK, 42); v != 100 {
		t.Fatalf("after removing one dup: %d", v)
	}
	if _, ok := r.View().Get("k:42"); ok {
		t.Fatal("resolved duplicate left its string-universe marker behind")
	}
	pairs, dups := r.Pairs()
	if dups != 0 || pairs[42] != 100 {
		t.Fatalf("pairs %v dups %d", pairs, dups)
	}
}

func TestReplayerSplitAndMoveAreViewNeutral(t *testing.T) {
	r := NewReplayer()
	apply := func(op string, args ...event.Value) {
		t.Helper()
		if err := r.Apply(op, args); err != nil {
			t.Fatalf("%s%v: %v", op, args, err)
		}
	}
	for i := 0; i < 6; i++ {
		apply("leaf-add", 1, i*10, i, i+1)
	}
	h := r.View().Hash()
	apply("leaf-split", 1, 2, 30, 7, 0) // move keys >= 30 to leaf 2
	if r.View().Hash() != h {
		t.Fatal("split changed the view")
	}
	apply("leaf-move", 1, 2, 20, 8, 1) // compression move
	if r.View().Hash() != h {
		t.Fatal("move changed the view")
	}
	if err := r.Invariants(); err != nil {
		t.Fatal(err)
	}
	// Moved pairs live in the destination afterwards.
	apply("leaf-del", 2, 30, 2)
	if _, ok := r.View().GetInt(spaceK, 30); ok {
		t.Fatal("delete from destination leaf failed")
	}
}

func TestReplayerRejectsMalformed(t *testing.T) {
	r := NewReplayer()
	if err := r.Apply("leaf-set", []event.Value{1, 5, 5, 1}); err == nil {
		t.Fatal("leaf-set on an absent key accepted")
	}
	if err := r.Apply("leaf-del", []event.Value{1, 5, 1}); err == nil {
		t.Fatal("leaf-del on an absent key accepted")
	}
	if err := r.Apply("nope", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := r.Apply("leaf-add", []event.Value{1, 1, 1}); err == nil {
		t.Fatal("leaf-add without a version accepted")
	}
	if err := r.Apply("leaf-add", []event.Value{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("leaf-split", []event.Value{1, 1, 1, 2, 0}); err == nil {
		t.Fatal("split onto an existing leaf accepted")
	}
}

// TestReplayerVersionMonotonicity: repeated or regressing leaf versions are
// an invariant violation — the property Boxwood's per-variable version
// numbers provide (Section 7.2.4).
func TestReplayerVersionMonotonicity(t *testing.T) {
	r := NewReplayer()
	if err := r.Apply("leaf-add", []event.Value{1, 10, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply("leaf-add", []event.Value{1, 20, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Invariants(); err != nil {
		t.Fatal(err)
	}
	// A stale version (2 again) marks the leaf non-monotonic.
	if err := r.Apply("leaf-add", []event.Value{1, 30, 0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Invariants(); err == nil {
		t.Fatal("version regression not reported")
	}
}

func TestConcurrentCorrectWithCompression(t *testing.T) {
	log := vyrd.NewLog(vyrd.LevelView)
	tr := New(4, BugNone)
	stop := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	wp := log.NewWorkerProbe()
	go func() {
		defer wwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Compress(wp)
			}
		}
	}()
	var wg sync.WaitGroup
	for th := 0; th < 6; th++ {
		wg.Add(1)
		p := log.NewProbe()
		go func(seed int) {
			defer wg.Done()
			x := seed*89 + 3
			for i := 0; i < 300; i++ {
				x = (x*1103515245 + 12345) & 0x7fffffff
				k := x % 24
				switch x % 3 {
				case 0:
					tr.Insert(p, k, x%1000)
				case 1:
					tr.Delete(p, k)
				case 2:
					tr.Lookup(p, k)
				}
			}
		}(th)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	log.Close()
	if bad := tr.CheckStructure(); bad != 0 {
		t.Fatalf("structure violations: %d", bad)
	}
	for _, mode := range []core.Mode{vyrd.ModeIO, vyrd.ModeView} {
		if rep := checkLog(t, log, mode); !rep.Ok() {
			t.Fatalf("false positive, %v:\n%s", mode, rep)
		}
	}
}

// TestQuickSequentialAgainstMap: the tree agrees with a map model under
// random single-threaded operations across orders.
func TestQuickSequentialAgainstMap(t *testing.T) {
	f := func(seed int64, orderSel uint8, n uint8) bool {
		order := 3 + int(orderSel)%6
		rng := rand.New(rand.NewSource(seed))
		tr := New(order, BugNone)
		model := map[int]int{}
		for i := 0; i < int(n); i++ {
			k := rng.Intn(30)
			switch rng.Intn(3) {
			case 0:
				d := rng.Intn(100)
				tr.Insert(nil, k, d)
				model[k] = d
			case 1:
				_, present := model[k]
				if tr.Delete(nil, k) != present {
					return false
				}
				delete(model, k)
			case 2:
				want := -1
				if d, ok := model[k]; ok {
					want = d
				}
				if tr.Lookup(nil, k) != want {
					return false
				}
			}
		}
		pairs, dups := tr.Contents()
		if dups != 0 || len(pairs) != len(model) {
			return false
		}
		for k, d := range model {
			if pairs[k] != d {
				return false
			}
		}
		return tr.CheckStructure() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
