package wal

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/event"
)

func entry(tid int32, m string) event.Entry {
	return event.Entry{Tid: tid, Kind: event.KindCall, Method: m}
}

func TestAppendAssignsDenseSequence(t *testing.T) {
	l := New(LevelIO)
	for i := 1; i <= 5; i++ {
		if seq := l.Append(entry(1, "M")); seq != int64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("len = %d", l.Len())
	}
	snap := l.Snapshot()
	for i, e := range snap {
		if e.Seq != int64(i+1) {
			t.Fatalf("snapshot seq %d at index %d", e.Seq, i)
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	l := New(LevelIO)
	l.Append(entry(1, "A"))
	snap := l.Snapshot()
	snap[0].Method = "mutated"
	if l.Snapshot()[0].Method != "A" {
		t.Fatal("snapshot aliases the log")
	}
}

func TestConcurrentAppendTotalOrder(t *testing.T) {
	l := New(LevelIO)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		tid := l.NewTid()
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Append(entry(tid, "M"))
			}
		}()
	}
	wg.Wait()
	if l.Len() != goroutines*perG {
		t.Fatalf("lost entries: %d", l.Len())
	}
	// Sequence numbers are dense and strictly increasing.
	for i, e := range l.Snapshot() {
		if e.Seq != int64(i+1) {
			t.Fatalf("hole at index %d: seq %d", i, e.Seq)
		}
	}
}

func TestNewTidUnique(t *testing.T) {
	l := New(LevelIO)
	seen := make(map[int32]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tid := l.NewTid()
				mu.Lock()
				if seen[tid] {
					t.Errorf("duplicate tid %d", tid)
				}
				seen[tid] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCursorDrainsThenEnds(t *testing.T) {
	l := New(LevelIO)
	for i := 0; i < 10; i++ {
		l.Append(entry(1, "M"))
	}
	l.Close()
	cur := l.Cursor()
	n := 0
	for {
		_, ok := cur.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("cursor read %d entries", n)
	}
	if cur.Pos() != 10 {
		t.Fatalf("cursor pos %d", cur.Pos())
	}
}

func TestCursorBlocksUntilAppend(t *testing.T) {
	l := New(LevelIO)
	cur := l.Cursor()
	got := make(chan event.Entry, 1)
	go func() {
		e, ok := cur.Next()
		if !ok {
			t.Error("cursor ended unexpectedly")
		}
		got <- e
	}()
	l.Append(entry(7, "X"))
	e := <-got
	if e.Tid != 7 || e.Method != "X" {
		t.Fatalf("wrong entry: %v", e)
	}
}

func TestCursorUnblocksOnClose(t *testing.T) {
	l := New(LevelIO)
	cur := l.Cursor()
	done := make(chan bool, 1)
	go func() {
		_, ok := cur.Next()
		done <- ok
	}()
	l.Close()
	if ok := <-done; ok {
		t.Fatal("cursor returned an entry from an empty closed log")
	}
	if !l.Closed() {
		t.Fatal("log not marked closed")
	}
}

func TestTryNextNonBlocking(t *testing.T) {
	l := New(LevelIO)
	cur := l.Cursor()
	if _, ok := cur.TryNext(); ok {
		t.Fatal("TryNext returned an entry from an empty log")
	}
	l.Append(entry(1, "M"))
	if _, ok := cur.TryNext(); !ok {
		t.Fatal("TryNext missed an available entry")
	}
}

func TestAppendAfterClosePanics(t *testing.T) {
	l := New(LevelIO)
	l.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("append to a closed log did not panic")
		}
	}()
	l.Append(entry(1, "M"))
}

func TestCloseIdempotent(t *testing.T) {
	l := New(LevelIO)
	l.Close()
	l.Close()
}

func TestPersistenceRoundTrip(t *testing.T) {
	l := New(LevelView)
	var buf bytes.Buffer
	// Entries appended before the sink attaches must be written too.
	l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "Insert", Args: []event.Value{3}})
	if err := l.AttachSink(&buf); err != nil {
		t.Fatal(err)
	}
	l.Append(event.Entry{Tid: 1, Kind: event.KindCommit, Method: "Insert", WOp: "bump", WArgs: []event.Value{3, 1}})
	l.Append(event.Entry{Tid: 1, Kind: event.KindReturn, Method: "Insert", Ret: true})
	l.Append(event.Entry{Tid: 2, Kind: event.KindWrite, Method: "raw", Args: []event.Value{[]byte{1, 2, 3}}})
	l.Close()
	if err := l.SinkErr(); err != nil {
		t.Fatal(err)
	}

	restored, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := l.Snapshot()
	if len(restored) != len(orig) {
		t.Fatalf("restored %d entries, want %d", len(restored), len(orig))
	}
	for i := range orig {
		a, b := orig[i], restored[i]
		if a.Seq != b.Seq || a.Tid != b.Tid || a.Kind != b.Kind || a.Method != b.Method {
			t.Fatalf("entry %d differs: %v vs %v", i, a, b)
		}
		if !event.Equal(a.Ret, b.Ret) {
			t.Fatalf("entry %d ret differs: %v vs %v", i, a.Ret, b.Ret)
		}
		for j := range a.Args {
			av, bv := a.Args[j], b.Args[j]
			// gob round-trips ints as int64 inside interfaces registered as
			// int; accept numerically equal integers.
			ai, aok := event.Int(av)
			bi, bok := event.Int(bv)
			if aok && bok {
				if ai != bi {
					t.Fatalf("entry %d arg %d differs: %v vs %v", i, j, av, bv)
				}
				continue
			}
			if !event.Equal(av, bv) {
				t.Fatalf("entry %d arg %d differs: %v vs %v", i, j, av, bv)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LevelOff: "off", LevelIO: "io", LevelView: "view", Level(9): "level(9)"} {
		if l.String() != want {
			t.Fatalf("Level(%d).String() = %q", l, l.String())
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	l := New(LevelView)
	e := entry(1, "M")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(e)
	}
}

// BenchmarkAppendParallel measures the concurrent append path in isolation:
// a truncating log with no registered reader discards consumed-by-nobody
// segments from the append side and recycles them, so the live heap stays
// at O(segment) and the measurement reflects sequence reservation and slot
// publication rather than the garbage collector walking an ever-growing
// log, and no serial consumer caps the aggregate rate. Its A/B partner over
// the old single-mutex log is BenchmarkAppendParallelMutex
// (pipeline_test.go); run both with -cpu 1,4 to compare scaling. The
// end-to-end rate with a verifier draining the log is what
// BenchmarkOnlinePipeline (repo root) measures.
func BenchmarkAppendParallel(b *testing.B) {
	l := NewWithOptions(LevelView, Options{SegmentSize: 1024, Truncate: true})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tid := l.NewTid()
		e := entry(tid, "M")
		for pb.Next() {
			l.Append(e)
		}
	})
	b.StopTimer()
	l.Close()
}
