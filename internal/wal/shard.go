package wal

// Sharded per-core log capture.
//
// The segmented Log removed every lock from the append fast path but kept
// one global atomic counter assigning the total order, and the A/B numbers
// show what that costs: AppendParallel is flat from 1 to 4 CPUs because
// every producer core bounces the counter's cache line. The counter is
// also a stronger primitive than the checker needs — the refinement
// witness consumes *commit order*, and fine-grained writes only need
// per-variable order, so any legal linearization of the capture yields the
// same verdict (PAPER.md Section 4.1's commit-order argument).
//
// ShardedLog therefore splits capture across per-shard segment chains:
//
//   - Each probe (thread) is pinned to one shard via its tid, so a
//     thread's entries stay in program order within its shard and no two
//     cores share an append line in the steady state.
//   - Capture sequence numbers are reserved in thread-local *batches*:
//     one global fetch-add per ShardBatch appends instead of one per
//     entry. Within a shard the capture seqs are strictly increasing;
//     across shards they are unique but deliberately not ordered.
//   - Every entry is stamped with a monotonic capture timestamp read
//     under the shard's lock. The clock is core-local (a vDSO read on
//     Linux), so stamping scales with cores; the shard lock only ever
//     sees contention from threads hashed to the same shard.
//   - A deterministic k-way merge (MergeCursor) reconstructs a total
//     order at checker ingest: entries are emitted in (timestamp,
//     capture-seq) order and renumbered densely, so the stream the
//     checker, the persistence sink, the remote client and recovery see
//     is shaped exactly like a single-counter log — the on-disk format
//     is unchanged (merge-at-persist; see DESIGN.md "Sharded capture").
//
// Why the merge is sound: an entry's timestamp is taken while the
// instrumented code holds the locks that make the logged action visible
// (the same discipline the single counter relied on). If action A is
// visible before action B touches the same state, A's critical section
// ends before B's begins, so A's clock read completes before B's starts
// and CLOCK_MONOTONIC guarantees ts(A) <= ts(B). Emission requires a
// *strictly* smaller key than every other shard's bound, and equal-ts
// cross-shard entries are causally unrelated as long as the clock tick is
// finer than a lock handoff — NewSharded measures the clock at
// construction and, if its granularity is too coarse to separate
// handoffs (coarseClockLimit, set below a ~50-200ns handoff cost),
// degrades to per-entry global tickets: the exact single-counter
// ordering, sharded storage only. Options.Tickets forces that mode
// regardless of the clock — single-goroutine ingest of an
// already-ordered stream (the remote server's per-session logs, online
// replay) is ordered by stream position, not by instrumented-program
// lock handoffs, so only a per-log counter key preserves it. The merge
// then still removes the reader/writer line sharing, but the scaling
// headline requires the fine clock. Within a shard no clock assumption
// is needed at all: capture seqs break ties in append order.
//
// Idle shards and the watermark protocol: the merge may only emit a head
// once no shard can later publish a smaller key. An idle shard would
// stall the merge forever, so each shard maintains a published watermark
// (every future entry's ts is >= wm). The merge always loads the
// watermark bound *before* peeking the shard — an empty peek taken after
// the load is what proves no unseen entry can undercut the bound (see
// shardCannotUndercut). When an empty shard's watermark is behind the
// candidate, the merge try-locks the shard and raises wm to "now" —
// holding the shard lock proves no append is in flight, and any later
// append reads the clock after the bump, so the raised watermark is a
// true bound. If the try-lock fails the shard is actively appending and
// its head will appear on the next poll.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// DefaultShardBatch is the default capture-seq batch size: one global
// fetch-add per this many appends on a shard.
const DefaultShardBatch = 256

// coarseClockLimit is the monotonic-clock granularity above which sharded
// capture degrades to per-entry global tickets. The soundness argument
// needs equal-timestamp cross-shard entries to be causally unrelated,
// which holds only when the clock tick is finer than a lock handoff — and
// an uncontended handoff costs on the order of 50-200ns on modern
// hardware. The limit therefore sits below that cost: a tick coarser than
// this could let two causally ordered appends on different shards tie and
// be merge-ordered by their unrelated batch-reserved seqs.
const coarseClockLimit = 100 * time.Nanosecond

// shard is one capture lane: a private segmented Log for storage plus the
// batch-reservation and timestamp state. The lock serializes (clock read,
// batch take, slot publish) so the shard's stream is sorted by the merge
// key; it is core-local in the steady state — only threads pinned to the
// same shard, and the merge's idle-watermark bump, ever touch it.
type shard struct {
	log *Log

	mu        sync.Mutex
	batchNext int64 // last capture seq handed out
	batchEnd  int64 // end of the reserved batch (exclusive upper = batchEnd)

	// wm is the shard's published watermark: every entry this shard
	// publishes from now on has ts >= wm. Raised by producers on every
	// append and by the merge's idle-shard bump.
	wm atomic.Int64
	_  [64 - 8]byte
}

// ShardedLog is the sharded capture backend. Construct with NewSharded
// (or wal.Open with Options.Shards > 1). It implements Backend: probes
// append through per-tid pinned shards, readers consume the deterministic
// k-way merge.
type ShardedLog struct {
	level Level
	opts  Options // normalized; Window/SegmentSize are per-shard values
	batch int64
	mono  bool // fine-grained clock available; else per-entry tickets
	epoch time.Time

	// reserved is the only globally shared append-path atomic: the
	// capture-seq batcher (one RMW per batch), or the per-entry ticket
	// counter in degraded (coarse-clock) mode.
	reserved atomic.Int64
	_        [64 - 8]byte

	nextTid atomic.Int32
	closed  atomic.Bool

	shards []*shard

	mu           sync.Mutex
	sinkAttached bool
	sinkWG       sync.WaitGroup
	sinkErr      atomic.Value
	sinkBroken   atomic.Bool
	sinkPos      atomic.Int64

	mergeWaits atomic.Int64
}

// NewSharded returns an empty sharded capture log. opts.Shards <= 0
// defaults to GOMAXPROCS; opts.Window is a global budget split evenly
// across the shards; opts.SegmentSize applies per shard.
func NewSharded(level Level, opts Options) *ShardedLog {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.ShardBatch <= 0 {
		opts.ShardBatch = DefaultShardBatch
	}
	shardOpts := Options{
		SegmentSize: opts.SegmentSize,
		Truncate:    opts.Truncate,
	}
	if opts.Window > 0 {
		shardOpts.Window = opts.Window / n
		if shardOpts.Window < 1 {
			shardOpts.Window = 1
		}
	}
	g := &ShardedLog{
		level: level,
		opts:  opts,
		batch: int64(opts.ShardBatch),
		mono:  !opts.Tickets && fineMonotonicClock(),
		epoch: time.Now(),
	}
	g.shards = make([]*shard, n)
	for i := range g.shards {
		g.shards[i] = &shard{log: NewWithOptions(level, shardOpts)}
	}
	return g
}

// fineMonotonicClock measures the runtime monotonic clock and reports
// whether its granularity is fine enough (<= coarseClockLimit) for
// timestamps to order cross-shard lock handoffs.
func fineMonotonicClock() bool {
	base := time.Now()
	last := time.Since(base)
	var minStep time.Duration = -1
	steps := 0
	for i := 0; i < 1<<13 && steps < 8; i++ {
		d := time.Since(base)
		if d > last {
			if step := d - last; minStep < 0 || step < minStep {
				minStep = step
			}
			last = d
			steps++
		}
	}
	return steps >= 8 && minStep <= coarseClockLimit
}

// now reads the capture clock (>= 1 so the zero watermark is below every
// timestamp).
func (g *ShardedLog) now() int64 {
	ts := int64(time.Since(g.epoch))
	if ts < 1 {
		ts = 1
	}
	return ts
}

// Level reports the recording level.
func (g *ShardedLog) Level() Level { return g.level }

// NewTid allocates a fresh thread identifier.
func (g *ShardedLog) NewTid() int32 { return g.nextTid.Add(1) }

// Shards reports the shard count.
func (g *ShardedLog) Shards() int { return len(g.shards) }

// Monotonic reports whether capture runs on fine-grained timestamps
// (true) or per-entry global tickets (false: coarse host clock, or
// ticket mode forced via Options.Tickets).
func (g *ShardedLog) Monotonic() bool { return g.mono }

// shardFor maps a thread id onto its pinned shard.
func (g *ShardedLog) shardFor(tid int32) *shard {
	idx := int(tid-1) % len(g.shards)
	if idx < 0 {
		idx += len(g.shards)
	}
	return g.shards[idx]
}

// AppenderFor returns the append surface pinned to the thread's shard.
// Every entry a thread appends lands in one shard, which is what keeps a
// thread's entries in program order through the merge.
func (g *ShardedLog) AppenderFor(tid int32) Appender {
	return shardAppender{g: g, s: g.shardFor(tid)}
}

// Append routes the entry by its Tid — the single-goroutine ingest
// convenience of the Backend surface. Hot paths hold an AppenderFor
// result instead of re-hashing per entry.
func (g *ShardedLog) Append(e event.Entry) int64 {
	return shardAppender{g: g, s: g.shardFor(e.Tid)}.Append(e)
}

// shardAppender is a probe's pinned append handle.
type shardAppender struct {
	g *ShardedLog
	s *shard
}

// Append stamps the entry with its capture identity (batch-reserved seq +
// timestamp) and publishes it into the shard. The admission gate (closed
// panic, fail-stop, window backpressure) runs before the shard lock so a
// parked producer never holds the lock the merge's watermark bump needs.
func (a shardAppender) Append(e event.Entry) int64 {
	g, s := a.g, a.s
	if g.opts.FailStop && g.sinkBroken.Load() {
		panic(fmt.Sprintf("wal: fail-stop: sink error: %v", g.SinkErr()))
	}
	s.log.appendGate()
	s.mu.Lock()
	var ts int64
	if g.mono {
		if s.batchNext == s.batchEnd {
			s.batchEnd = g.reserved.Add(g.batch)
			s.batchNext = s.batchEnd - g.batch
		}
		s.batchNext++
		e.Seq = s.batchNext
		ts = g.now()
	} else {
		// Degraded mode: the ticket doubles as capture seq and merge key,
		// reproducing the single-counter total order over sharded storage.
		e.Seq = g.reserved.Add(1)
		ts = e.Seq
	}
	s.log.appendStamped(e, ts)
	if ts > s.wm.Load() {
		s.wm.Store(ts)
	}
	s.mu.Unlock()
	return e.Seq
}

// Len reports the number of entries appended so far, across all shards.
func (g *ShardedLog) Len() int {
	n := 0
	for _, s := range g.shards {
		n += s.log.Len()
	}
	return n
}

// Close marks the capture complete: closes every shard (releasing parked
// producers and readers) and waits for the attached merge sink, if any,
// to drain and flush. Closing twice is a no-op.
func (g *ShardedLog) Close() {
	g.closed.Store(true)
	for _, s := range g.shards {
		s.log.Close()
	}
	g.sinkWG.Wait()
}

// Closed reports whether Close has been called.
func (g *ShardedLog) Closed() bool { return g.closed.Load() }

// Stats aggregates the per-shard counters. Each shard keeps its own
// padded counters (the hot-path metrics never share a line across
// shards); this read-side aggregation is the only place they meet.
// PeakRetainedEntries sums the per-shard peaks, an upper bound on the
// true simultaneous peak.
func (g *ShardedLog) Stats() Stats {
	var st Stats
	for _, s := range g.shards {
		ss := s.log.Stats()
		st.Appends += ss.Appends
		st.BlockedWaits += ss.BlockedWaits
		st.RetainedSegments += ss.RetainedSegments
		st.RetainedEntries += ss.RetainedEntries
		st.PeakRetainedEntries += ss.PeakRetainedEntries
		st.TruncatedSegments += ss.TruncatedSegments
		st.TruncatedEntries += ss.TruncatedEntries
		if ss.MaxVerifierLag > st.MaxVerifierLag {
			st.MaxVerifierLag = ss.MaxVerifierLag
		}
	}
	st.Shards = int64(len(g.shards))
	st.MergeWaits = g.mergeWaits.Load()
	g.mu.Lock()
	attached := g.sinkAttached
	g.mu.Unlock()
	if attached {
		if d := st.Appends - g.sinkPos.Load(); d > 0 {
			st.SinkQueueDepth = d
		}
	}
	return st
}

// tsEntry pairs an entry with its merge key timestamp.
type tsEntry struct {
	ts int64
	e  event.Entry
}

// keyLess is the merge order: timestamp, then capture seq. Capture seqs
// are globally unique, so the order is total and the merge deterministic.
func keyLess(ts1, seq1, ts2, seq2 int64) bool {
	if ts1 != ts2 {
		return ts1 < ts2
	}
	return seq1 < seq2
}

// Snapshot merges the retained entries of every shard into the total
// order and renumbers them densely, for offline checking of a completed
// (or quiesced) execution. As with Log.Snapshot, truncated prefixes are
// gone and in-flight appends end each shard's contribution early; the
// numbering resumes after the truncated prefix (seq truncated+1 onward,
// where the base is the summed per-shard truncated-entry count — the
// same positional base MergeCursor uses), so snapshot seqs line up with
// sink and recovery positions exactly as a single-counter log's do. With
// no truncation the snapshot runs 1..n.
func (g *ShardedLog) Snapshot() []event.Entry {
	var all []tsEntry
	var base int64
	for _, s := range g.shards {
		all = append(all, s.log.snapshotTS()...)
		base += s.log.truncatedEntryCount()
	}
	sort.Slice(all, func(i, j int) bool {
		return keyLess(all[i].ts, all[i].e.Seq, all[j].ts, all[j].e.Seq)
	})
	out := make([]event.Entry, len(all))
	for i, te := range all {
		te.e.Seq = base + int64(i+1)
		out[i] = te.e
	}
	return out
}

// Reader returns a fresh merge cursor over the total order. Like Log
// cursors, it registers with every shard: truncation never outruns it and
// it participates in the window backpressure.
func (g *ShardedLog) Reader() Reader {
	m := &MergeCursor{g: g, curs: make([]*Cursor, len(g.shards))}
	for i, s := range g.shards {
		m.curs[i] = s.log.Cursor()
		m.base += int64(m.curs[i].Pos())
	}
	return m
}

// SinkErr returns the first error encountered while draining the merge
// into the attached sink, if any. Final once Close has returned.
func (g *ShardedLog) SinkErr() error {
	if err, ok := g.sinkErr.Load().(error); ok {
		return err
	}
	return nil
}

func (g *ShardedLog) failSink(err error) {
	if err == nil {
		return
	}
	if g.sinkErr.CompareAndSwap(nil, err) {
		g.sinkBroken.Store(true)
	}
}

// AttachSink starts persisting the *merged* stream to w using the event
// codec — merge-at-persist: the bytes on disk are a standard
// FormatVersion-3 stream with dense sequence numbers, so offline readers,
// the torn-tail recovery scanner and the soak harness are oblivious to
// how capture was sharded. Sync-marker cadence and codec follow the
// group's Options, exactly as on a single-counter log.
func (g *ShardedLog) AttachSink(w io.Writer) error {
	return g.AttachEntrySink(newEncoderSink(w, g.opts))
}

// AttachEntrySink starts draining the merged total order into es on a
// dedicated goroutine; Close waits for the drain and for es.Flush.
// Attaching a second sink is an error.
func (g *ShardedLog) AttachEntrySink(es EntrySink) error {
	g.mu.Lock()
	if g.sinkAttached {
		g.mu.Unlock()
		return fmt.Errorf("wal: sink already attached")
	}
	g.sinkAttached = true
	g.mu.Unlock()
	r := g.Reader()
	g.sinkWG.Add(1)
	go func() {
		defer g.sinkWG.Done()
		for {
			e, ok := r.Next()
			if !ok {
				break
			}
			if g.sinkErr.Load() == nil {
				g.failSink(es.WriteEntry(e))
			}
			g.sinkPos.Add(1)
		}
		if g.sinkErr.Load() == nil {
			g.failSink(es.Flush())
		}
	}()
	return nil
}

// MergeCursor is the deterministic k-way merge over the per-shard
// streams: it emits entries in (timestamp, capture-seq) order and
// renumbers them densely from the merge position, so consumers see the
// same shape a single-counter log produces. Owned by a single goroutine.
type MergeCursor struct {
	g    *ShardedLog
	curs []*Cursor
	base int64 // entries truncated before this cursor registered
	out  int64 // entries emitted
}

// mergeSleepMin/Max bound the poll backoff when nothing is emittable: the
// merge cannot park on a condition variable (it must keep advancing idle
// shards' watermarks), so it escalates short sleeps instead.
const (
	mergeSleepMin = 10 * time.Microsecond
	mergeSleepMax = 500 * time.Microsecond
)

// Next blocks until the next entry of the total order is available, or
// returns ok=false once every shard is closed and drained.
func (m *MergeCursor) Next() (event.Entry, bool) {
	spins := 0
	sleep := mergeSleepMin
	for {
		if e, ok := m.tryEmit(); ok {
			return e, true
		}
		if m.drained() {
			return event.Entry{}, false
		}
		if spins < readerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		m.g.mergeWaits.Add(1)
		time.Sleep(sleep)
		if sleep *= 2; sleep > mergeSleepMax {
			sleep = mergeSleepMax
		}
	}
}

// TryNext returns the next entry of the total order without blocking. A
// false return means no entry could be *proven* next yet — entries may be
// published but unordered until idle shards' watermarks pass them.
func (m *MergeCursor) TryNext() (event.Entry, bool) { return m.tryEmit() }

// Pos reports how many entries this cursor has consumed.
func (m *MergeCursor) Pos() int { return int(m.out) }

// Err reports the first failure of the log the cursor reads (the merge
// sink's persistence error, if one is attached).
func (m *MergeCursor) Err() error { return m.g.SinkErr() }

// drained reports that every shard is closed and fully consumed.
func (m *MergeCursor) drained() bool {
	for _, c := range m.curs {
		if !c.drained() {
			return false
		}
	}
	return true
}

// tryEmit attempts one merge step: pick the smallest head, prove no shard
// can later publish a smaller key, consume and renumber. Returns false
// when no head exists or the proof fails this round (the caller polls).
func (m *MergeCursor) tryEmit() (event.Entry, bool) {
	best := -1
	var bestE event.Entry
	var bestTS int64
	for i, c := range m.curs {
		if e, ts, ok := c.peek(); ok {
			if best < 0 || keyLess(ts, e.Seq, bestTS, bestE.Seq) {
				best, bestE, bestTS = i, e, ts
			}
		}
	}
	if best < 0 {
		return event.Entry{}, false
	}
	for i, c := range m.curs {
		if i == best {
			continue
		}
		if !m.shardCannotUndercut(i, c, bestTS, bestE.Seq) {
			return event.Entry{}, false
		}
	}
	m.curs[best].consume()
	m.out++
	bestE.Seq = m.base + m.out
	return bestE, true
}

// shardCannotUndercut proves shard i will never publish an entry with a
// key below the candidate's: either its visible head is already at or
// above the candidate (the shard stream is sorted, so nothing behind the
// head can be smaller), it is closed and drained, or its watermark
// strictly exceeds the candidate timestamp.
//
// The watermark bound is loaded BEFORE the peek, and the order matters.
// A watermark store shares one shard critical section with the publish
// it covers, and every later append's clock read post-dates the stored
// value (the shard lock serializes the sections, the clock is
// monotonic). So for any watermark value already observed: an entry that
// could undercut it was published — and therefore visible — before the
// load, and an empty peek taken after the load proves no such entry
// exists. Peeking first would invert that proof: a producer preempted
// between its clock read and its publish can publish right after the
// failed peek, a subsequent append then raises the watermark past the
// candidate, and a stale `ts < wm` check would emit the candidate ahead
// of the smaller-key entry it never re-peeked.
//
// For an idle shard the merge raises the watermark itself under the
// shard lock; a failed try-lock means the shard is mid-append and the
// caller must re-poll.
func (m *MergeCursor) shardCannotUndercut(i int, c *Cursor, ts, seq int64) bool {
	s := m.g.shards[i]
	for {
		wm := s.wm.Load()
		if e2, ts2, ok := c.peek(); ok {
			// A head at or above the candidate bounds the whole shard.
			// A smaller head invalidates the candidate; fail so the
			// caller re-scans and picks the smaller head instead.
			return !keyLess(ts2, e2.Seq, ts, seq)
		}
		if c.drained() {
			return true
		}
		if ts < wm {
			return true
		}
		if !m.bumpWatermark(s) {
			return false
		}
		if ts >= s.wm.Load() {
			// The clock has not advanced past the candidate yet (possible
			// only within one tick). Yield to the caller rather than spin.
			return false
		}
		// The bump raised the watermark past the candidate: loop to
		// re-load the bound and re-peek, so an entry published between
		// the peek and the bump is compared, never skipped.
	}
}

// bumpWatermark raises an idle shard's watermark to "now". Holding the
// shard lock proves no append is in flight on the shard, and any later
// append reads the clock (or reserves its ticket) after the lock is
// released, so the raised watermark is a sound lower bound on every
// future timestamp. Returns false when the shard lock is contended — the
// shard is actively appending and its head will appear shortly.
func (m *MergeCursor) bumpWatermark(s *shard) bool {
	if !s.mu.TryLock() {
		return false
	}
	var now int64
	if m.g.mono {
		now = m.g.now()
	} else {
		now = m.g.reserved.Load() + 1
	}
	if now > s.wm.Load() {
		s.wm.Store(now)
	}
	s.mu.Unlock()
	return true
}
