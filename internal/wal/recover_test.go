package wal

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultfs"
)

// writeLogThrough runs a small append workload with the encoder sink
// attached to w and returns the sequence numbers appended.
func writeLogThrough(t *testing.T, w interface{ Write([]byte) (int, error) }, opts Options, n int) {
	t.Helper()
	l := NewWithOptions(LevelView, opts)
	if err := l.AttachSink(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "Insert", Args: []event.Value{i}})
	}
	l.Close()
}

// TestRecoverCrashedFile is the end-to-end crash loop on one file: a log
// written through a crash-at-byte faultfs file loses its tail silently;
// Recover truncates the torn frame away, the recovered entries are a
// prefix of the full run, and the repaired file satisfies the ordinary
// readers.
func TestRecoverCrashedFile(t *testing.T) {
	// Reference run: same entries, no faults.
	var ref bytes.Buffer
	writeLogThrough(t, &ref, Options{SyncEvery: 8}, 100)

	for _, crashAt := range []int64{9, 57, 200, 1000, int64(ref.Len()) - 1} {
		mem := faultfs.NewMemFS()
		fs := faultfs.New(mem, faultfs.Config{CrashAtByte: crashAt})
		f, err := fs.Create("crash.log")
		if err != nil {
			t.Fatal(err)
		}
		writeLogThrough(t, f, Options{SyncEvery: 8}, 100)
		f.Close()

		entries, rep, err := RecoverPath(mem, "crash.log")
		if err != nil {
			t.Fatalf("crash@%d: recover: %v", crashAt, err)
		}
		// A crash offset can land exactly on a frame boundary, in which
		// case the file is already valid; otherwise the torn frame must
		// have been cut away.
		if rep.Truncated == rep.Clean() {
			t.Fatalf("crash@%d: Truncated=%v but Clean=%v: %s", crashAt, rep.Truncated, rep.Clean(), rep)
		}
		// The recovered entries are exactly the first LastSeq of the run.
		if int64(len(entries)) != rep.LastSeq {
			t.Fatalf("crash@%d: %d entries but LastSeq %d", crashAt, len(entries), rep.LastSeq)
		}
		for i, e := range entries {
			if e.Seq != int64(i+1) {
				t.Fatalf("crash@%d: entry %d has seq %d", crashAt, i, e.Seq)
			}
		}
		// The repaired file is byte-for-byte a prefix of the reference
		// stream (entry-count sync cadence makes the bytes deterministic)
		// and the ordinary readers accept it.
		repaired := mem.Bytes("crash.log")
		if int64(len(repaired)) != rep.BytesKept {
			t.Fatalf("crash@%d: file is %d bytes, report says %d", crashAt, len(repaired), rep.BytesKept)
		}
		if !bytes.HasPrefix(ref.Bytes(), repaired) {
			t.Fatalf("crash@%d: repaired file is not a prefix of the reference stream", crashAt)
		}
		again, err := ReadFile(bytes.NewReader(repaired))
		if err != nil {
			t.Fatalf("crash@%d: ReadFile after recovery: %v", crashAt, err)
		}
		if len(again) != len(entries) {
			t.Fatalf("crash@%d: ReadFile saw %d entries, recovery %d", crashAt, len(again), len(entries))
		}
		par, err := ReadFileParallel(bytes.NewReader(repaired), 4)
		if err != nil || len(par) != len(entries) {
			t.Fatalf("crash@%d: parallel read after recovery: %d entries, %v", crashAt, len(par), err)
		}
		// Recovering a recovered file is a no-op.
		_, rep2, err := RecoverPath(mem, "crash.log")
		if err != nil || !rep2.Clean() {
			t.Fatalf("crash@%d: second recovery not clean: %s, %v", crashAt, rep2, err)
		}
	}
}

// TestRecoverCleanAndEmpty pins the no-op paths.
func TestRecoverCleanAndEmpty(t *testing.T) {
	mem := faultfs.NewMemFS()
	f, _ := mem.Create("clean.log")
	writeLogThrough(t, f, Options{SyncEvery: 4}, 10)
	entries, rep, err := RecoverPath(mem, "clean.log")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Truncated || len(entries) != 10 || rep.SyncMarkers == 0 {
		t.Fatalf("clean file: %s (%d entries)", rep, len(entries))
	}

	mem.Create("empty.log")
	entries, rep, err = RecoverPath(mem, "empty.log")
	if err != nil || !rep.Clean() || len(entries) != 0 {
		t.Fatalf("empty file: %s, %d entries, %v", rep, len(entries), err)
	}
}

// TestRecoverRefusesGob: a readable version-1 artifact must not be
// destroyed by pointing recovery at it.
func TestRecoverRefusesGob(t *testing.T) {
	mem := faultfs.NewMemFS()
	f, _ := mem.Create("old.log")
	enc := event.NewEncoderCodec(f, event.CodecGob)
	if err := enc.Encode(event.Entry{Seq: 1, Tid: 1, Kind: event.KindCall, Method: "M"}); err != nil {
		t.Fatal(err)
	}
	before := mem.Bytes("old.log")
	_, _, err := RecoverPath(mem, "old.log")
	if !errors.Is(err, event.ErrFormatMismatch) {
		t.Fatalf("gob recover error: %v", err)
	}
	if !bytes.Equal(before, mem.Bytes("old.log")) {
		t.Fatal("recovery modified a gob artifact it refused")
	}
}

// TestRecoverNonLogTruncatesToEmpty: junk that was never a log becomes an
// empty (valid) stream, per the documented contract.
func TestRecoverNonLogTruncatesToEmpty(t *testing.T) {
	mem := faultfs.NewMemFS()
	f, _ := mem.Create("junk")
	f.Write([]byte("definitely not a VYRDLOG"))
	entries, rep, err := RecoverPath(mem, "junk")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || rep.BytesKept != 0 || !rep.Truncated {
		t.Fatalf("junk file: %s, %d entries", rep, len(entries))
	}
	if len(mem.Bytes("junk")) != 0 {
		t.Fatal("junk file not truncated to empty")
	}
}

// TestSinkErrSurfacesMidRun is the regression test for the silent-absorb
// bug: a write error injected mid-run used to hide in the bufio buffer
// until Close. With sync points the sink flushes on cadence, so SinkErr
// turns non-nil while the run is still appending.
func TestSinkErrSurfacesMidRun(t *testing.T) {
	mem := faultfs.NewMemFS()
	fs := faultfs.New(mem, faultfs.Config{FailWriteAt: 1})
	f, err := fs.Create("broken.log")
	if err != nil {
		t.Fatal(err)
	}
	l := NewWithOptions(LevelView, Options{SyncEvery: 4})
	if err := l.AttachSink(f); err != nil {
		t.Fatal(err)
	}
	// Trip the first sync point, then keep the run alive while polling:
	// the error must surface before Close.
	for i := 0; i < 8; i++ {
		l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.SinkErr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("SinkErr still nil mid-run; error was absorbed until close")
		}
		time.Sleep(time.Millisecond)
		l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
	}
	if !errors.Is(l.SinkErr(), faultfs.ErrInjectedWrite) {
		t.Fatalf("SinkErr = %v, want the injected write error", l.SinkErr())
	}
	l.Close()
}

// TestFailStopAppendPanics: with FailStop set, the producer is stopped at
// the next Append after the sink latches, instead of racing ahead of a log
// that cannot be persisted.
func TestFailStopAppendPanics(t *testing.T) {
	fs := faultfs.New(faultfs.NewMemFS(), faultfs.Config{FailWriteAt: 1})
	f, err := fs.Create("broken.log")
	if err != nil {
		t.Fatal(err)
	}
	l := NewWithOptions(LevelView, Options{SyncEvery: 2, FailStop: true})
	if err := l.AttachSink(f); err != nil {
		t.Fatal(err)
	}
	panicked := make(chan any, 1)
	append1 := func() (p any) {
		defer func() { p = recover() }()
		l.Append(event.Entry{Tid: 1, Kind: event.KindCall, Method: "M"})
		return nil
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if p := append1(); p != nil {
			panicked <- p
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Append never observed the latched sink error under FailStop")
		}
		time.Sleep(time.Millisecond)
	}
	<-panicked
	if !errors.Is(l.SinkErr(), faultfs.ErrInjectedWrite) {
		t.Fatalf("SinkErr = %v", l.SinkErr())
	}
}
